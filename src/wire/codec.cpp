#include "wire/codec.hpp"

#include <array>

#include "util/assert.hpp"

namespace ssr::wire {

void put_varint(Bytes& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::optional<std::uint64_t> get_varint(ByteView data, std::size_t& offset) {
  std::uint64_t value = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (offset >= data.size()) return std::nullopt;
    const std::uint8_t byte = data[offset++];
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return std::nullopt;  // over-long encoding
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = make_crc_table();
  return table;
}

}  // namespace

std::uint32_t crc32(ByteView data) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string to_string(DecodeError error) {
  switch (error) {
    case DecodeError::kNone:
      return "none";
    case DecodeError::kTruncated:
      return "truncated";
    case DecodeError::kBadMagic:
      return "bad-magic";
    case DecodeError::kBadVersion:
      return "bad-version";
    case DecodeError::kBadLength:
      return "bad-length";
    case DecodeError::kBadChecksum:
      return "bad-checksum";
  }
  return "unknown";
}

Bytes encode_frame(std::uint64_t sender, ByteView payload) {
  Bytes out;
  out.reserve(payload.size() + 12);
  out.push_back(kMagic);
  out.push_back(kVersion);
  put_varint(out, sender);
  put_varint(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t crc = crc32(out);
  out.push_back(static_cast<std::uint8_t>(crc));
  out.push_back(static_cast<std::uint8_t>(crc >> 8));
  out.push_back(static_cast<std::uint8_t>(crc >> 16));
  out.push_back(static_cast<std::uint8_t>(crc >> 24));
  return out;
}

std::optional<Frame> decode_frame(ByteView data, DecodeError* error) {
  auto fail = [&](DecodeError e) -> std::optional<Frame> {
    if (error != nullptr) *error = e;
    return std::nullopt;
  };
  if (error != nullptr) *error = DecodeError::kNone;
  if (data.size() < 2 + 1 + 1 + 4) return fail(DecodeError::kTruncated);
  if (data[0] != kMagic) return fail(DecodeError::kBadMagic);
  if (data[1] != kVersion) return fail(DecodeError::kBadVersion);
  std::size_t offset = 2;
  const auto sender = get_varint(data, offset);
  if (!sender) return fail(DecodeError::kTruncated);
  const auto length = get_varint(data, offset);
  if (!length) return fail(DecodeError::kTruncated);
  if (*length > data.size() || offset + *length + 4 != data.size()) {
    return fail(DecodeError::kBadLength);
  }
  const std::size_t crc_offset = offset + *length;
  const std::uint32_t stored =
      static_cast<std::uint32_t>(data[crc_offset]) |
      (static_cast<std::uint32_t>(data[crc_offset + 1]) << 8) |
      (static_cast<std::uint32_t>(data[crc_offset + 2]) << 16) |
      (static_cast<std::uint32_t>(data[crc_offset + 3]) << 24);
  if (crc32(data.first(crc_offset)) != stored) {
    return fail(DecodeError::kBadChecksum);
  }
  Frame frame;
  frame.sender = *sender;
  frame.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(offset),
                       data.begin() + static_cast<std::ptrdiff_t>(crc_offset));
  return frame;
}

void encode_frame_v2_into(Bytes& out, std::uint64_t ring_id,
                          std::uint64_t sender, ByteView payload) {
  const std::size_t start = out.size();
  out.push_back(kMagic);
  out.push_back(kVersion2);
  put_varint(out, ring_id);
  put_varint(out, sender);
  put_varint(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t crc =
      crc32(ByteView(out.data() + start, out.size() - start));
  out.push_back(static_cast<std::uint8_t>(crc));
  out.push_back(static_cast<std::uint8_t>(crc >> 8));
  out.push_back(static_cast<std::uint8_t>(crc >> 16));
  out.push_back(static_cast<std::uint8_t>(crc >> 24));
}

Bytes encode_frame_v2(std::uint64_t ring_id, std::uint64_t sender,
                      ByteView payload) {
  Bytes out;
  out.reserve(payload.size() + 20);
  encode_frame_v2_into(out, ring_id, sender, payload);
  return out;
}

std::optional<FrameV2> decode_frame_any(ByteView data, DecodeError* error) {
  auto fail = [&](DecodeError e) -> std::optional<FrameV2> {
    if (error != nullptr) *error = e;
    return std::nullopt;
  };
  if (error != nullptr) *error = DecodeError::kNone;
  if (data.size() < 2 + 1 + 1 + 4) return fail(DecodeError::kTruncated);
  if (data[0] != kMagic) return fail(DecodeError::kBadMagic);
  const std::uint8_t version = data[1];
  if (version != kVersion && version != kVersion2) {
    return fail(DecodeError::kBadVersion);
  }
  std::size_t offset = 2;
  std::uint64_t ring_id = 0;
  if (version == kVersion2) {
    const auto ring = get_varint(data, offset);
    if (!ring) return fail(DecodeError::kTruncated);
    ring_id = *ring;
  }
  const auto sender = get_varint(data, offset);
  if (!sender) return fail(DecodeError::kTruncated);
  const auto length = get_varint(data, offset);
  if (!length) return fail(DecodeError::kTruncated);
  if (*length > data.size() || offset + *length + 4 != data.size()) {
    return fail(DecodeError::kBadLength);
  }
  const std::size_t crc_offset = offset + *length;
  const std::uint32_t stored =
      static_cast<std::uint32_t>(data[crc_offset]) |
      (static_cast<std::uint32_t>(data[crc_offset + 1]) << 8) |
      (static_cast<std::uint32_t>(data[crc_offset + 2]) << 16) |
      (static_cast<std::uint32_t>(data[crc_offset + 3]) << 24);
  if (crc32(data.first(crc_offset)) != stored) {
    return fail(DecodeError::kBadChecksum);
  }
  FrameV2 frame;
  frame.version = version;
  frame.ring_id = ring_id;
  frame.sender = *sender;
  frame.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(offset),
                       data.begin() + static_cast<std::ptrdiff_t>(crc_offset));
  return frame;
}

void corrupt_bits(Bytes& frame, Rng& rng, std::size_t flips) {
  SSR_REQUIRE(!frame.empty(), "cannot corrupt an empty frame");
  for (std::size_t i = 0; i < flips; ++i) {
    const auto byte = static_cast<std::size_t>(rng.below(frame.size()));
    const auto bit = static_cast<int>(rng.below(8));
    frame[byte] ^= static_cast<std::uint8_t>(1u << bit);
  }
}

Bytes encode_state(const core::SsrState& state) {
  Bytes out;
  put_varint(out, state.x);
  out.push_back(static_cast<std::uint8_t>((state.rts ? 2 : 0) |
                                          (state.tra ? 1 : 0)));
  return out;
}

std::optional<core::SsrState> decode_ssr_state(ByteView payload) {
  std::size_t offset = 0;
  const auto x = get_varint(payload, offset);
  if (!x || *x > UINT32_MAX) return std::nullopt;
  if (offset + 1 != payload.size()) return std::nullopt;
  const std::uint8_t flags = payload[offset];
  if (flags > 3) return std::nullopt;
  core::SsrState s;
  s.x = static_cast<std::uint32_t>(*x);
  s.rts = (flags & 2) != 0;
  s.tra = (flags & 1) != 0;
  return s;
}

Bytes encode_state(const dijkstra::KStateLocal& state) {
  Bytes out;
  put_varint(out, state.x);
  return out;
}

std::optional<dijkstra::KStateLocal> decode_kstate(ByteView payload) {
  std::size_t offset = 0;
  const auto x = get_varint(payload, offset);
  if (!x || *x > UINT32_MAX || offset != payload.size()) return std::nullopt;
  return dijkstra::KStateLocal{static_cast<std::uint32_t>(*x)};
}

Bytes encode_state(const dijkstra::DualLocal& state) {
  Bytes out;
  put_varint(out, state.a);
  put_varint(out, state.b);
  return out;
}

std::optional<dijkstra::DualLocal> decode_dual(ByteView payload) {
  std::size_t offset = 0;
  const auto a = get_varint(payload, offset);
  if (!a || *a > UINT32_MAX) return std::nullopt;
  const auto b = get_varint(payload, offset);
  if (!b || *b > UINT32_MAX || offset != payload.size()) return std::nullopt;
  return dijkstra::DualLocal{static_cast<std::uint32_t>(*a),
                             static_cast<std::uint32_t>(*b)};
}

}  // namespace ssr::wire
