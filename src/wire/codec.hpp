// Wire format for state messages — the "boilerplate of real messaging".
//
// The paper's fault model (§2.2) includes message corruption, loss and
// duplication. Self-stabilization handles loss and duplication natively
// (CST rebroadcasts full states); corruption is handled the way deployed
// systems handle it: an end-to-end checksum turns a corrupted frame into a
// *dropped* frame, which Lemma 9's loss analysis already covers. This
// module provides:
//
//   * LEB128-style varint encoding for integers,
//   * CRC-32 (IEEE 802.3 polynomial, table-driven),
//   * a framed message format:
//       magic(0xA5) | version(1) | sender varint | payload-length varint |
//       payload bytes | crc32 (little-endian, over everything before it)
//   * a v2 framed format for multiplexed transports, identical except for a
//     ring-id varint between the version byte and the sender:
//       magic(0xA5) | version(2) | ring-id varint | sender varint |
//       payload-length varint | payload bytes | crc32
//     decode_frame_any() decodes both versions (a v1 frame reports ring 0),
//     which is what lets the MultiRingReactor share sockets with the
//     single-ring runtimes during a migration;
//   * per-protocol state payload codecs (SSRmin, K-state, dual K-state).
//
// decode_frame() never throws on malformed input: every parse failure —
// truncation, bad magic, bad version, length mismatch, checksum mismatch —
// returns std::nullopt with a reason, because "garbage from the network"
// is an expected input, not a programming error.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/state.hpp"
#include "dijkstra/dual.hpp"
#include "dijkstra/kstate.hpp"
#include "util/rng.hpp"

namespace ssr::wire {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Appends a LEB128 varint.
void put_varint(Bytes& out, std::uint64_t value);

/// Reads a LEB128 varint at @p offset, advancing it. Returns nullopt on
/// truncation or on encodings longer than 10 bytes.
std::optional<std::uint64_t> get_varint(ByteView data, std::size_t& offset);

/// CRC-32 (IEEE) of the byte range.
std::uint32_t crc32(ByteView data);

/// Why a frame failed to decode (for observability counters).
enum class DecodeError {
  kNone,
  kTruncated,
  kBadMagic,
  kBadVersion,
  kBadLength,
  kBadChecksum,
};

std::string to_string(DecodeError error);

/// A decoded state frame.
struct Frame {
  std::uint64_t sender = 0;
  Bytes payload;
};

/// A decoded frame from either wire version. A v1 frame reports version = 1
/// and ring_id = 0 (single-ring runtimes predate the ring-id field).
struct FrameV2 {
  std::uint8_t version = 2;
  std::uint64_t ring_id = 0;
  std::uint64_t sender = 0;
  Bytes payload;
};

inline constexpr std::uint8_t kMagic = 0xA5;
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::uint8_t kVersion2 = 2;

/// Builds a complete frame around @p payload.
Bytes encode_frame(std::uint64_t sender, ByteView payload);

/// Parses a frame; on failure returns nullopt and sets @p error (if given).
std::optional<Frame> decode_frame(ByteView data, DecodeError* error = nullptr);

/// Appends a complete v2 frame (ring-id keyed) to @p out. The append form
/// is the reactor's hot path: frames for one sendmmsg batch share a single
/// arena buffer instead of allocating per frame.
void encode_frame_v2_into(Bytes& out, std::uint64_t ring_id,
                          std::uint64_t sender, ByteView payload);

/// Builds a complete v2 frame around @p payload.
Bytes encode_frame_v2(std::uint64_t ring_id, std::uint64_t sender,
                      ByteView payload);

/// Parses a frame of either version: v2 yields its ring-id; a v1 frame is
/// accepted for backward compatibility and reports ring_id = 0 with
/// version = 1 (callers that care can dispatch on .version). Any other
/// version byte fails with kBadVersion.
std::optional<FrameV2> decode_frame_any(ByteView data,
                                        DecodeError* error = nullptr);

/// Flips @p flips random bits of @p frame in place (fault injection).
void corrupt_bits(Bytes& frame, Rng& rng, std::size_t flips = 1);

// --- per-protocol payload codecs ------------------------------------------

/// SSRmin local state: varint x, then one flag byte (bit0 = tra,
/// bit1 = rts).
Bytes encode_state(const core::SsrState& state);
std::optional<core::SsrState> decode_ssr_state(ByteView payload);

/// K-state local state: varint x.
Bytes encode_state(const dijkstra::KStateLocal& state);
std::optional<dijkstra::KStateLocal> decode_kstate(ByteView payload);

/// Dual K-state local state: varint a, varint b.
Bytes encode_state(const dijkstra::DualLocal& state);
std::optional<dijkstra::DualLocal> decode_dual(ByteView payload);

/// Convenience: frame a protocol state directly.
template <typename State>
Bytes encode_state_frame(std::uint64_t sender, const State& state) {
  const Bytes payload = encode_state(state);
  return encode_frame(sender, payload);
}

}  // namespace ssr::wire
