// The paper's complexity bounds as first-class, testable quantities.
// Every named bound in the lemmas/theorems gets a function here, so tests
// and benches can assert "measured <= bound" against the exact published
// expression rather than ad-hoc constants.
#pragma once

#include <cstdint>

namespace ssr::core {

/// Lemma 5: the maximum length of an execution containing no Rule 2/4
/// move.
constexpr std::uint64_t lemma5_rule_free_bound(std::size_t n) {
  return 3ULL * n;
}

/// Convergence bound of the embedded Dijkstra ring under the unfair
/// distributed daemon, 3n(n-1)/2 (Altisen et al., used in Lemma 8).
constexpr std::uint64_t dijkstra_move_bound(std::size_t n) {
  return 3ULL * n * (n - 1) / 2;
}

/// Lemma 7: once the Dijkstra part is legitimate, SSRmin converges within
/// 3n*n + 4 steps.
constexpr std::uint64_t lemma7_bound(std::size_t n) {
  return 3ULL * n * n + 4;
}

/// Lemma 8's prefix length T1 = 3(L+1)M n^2 with the paper's constants
/// L = 9 (domination size) and M = 2 (time-delay bound): 60 n^2 steps
/// suffice for 3n(n-1)/2 Dijkstra moves to occur.
constexpr std::uint64_t lemma8_domination_size() { return 9; }
constexpr std::uint64_t lemma8_time_delay() { return 2; }
constexpr std::uint64_t lemma8_prefix_bound(std::size_t n) {
  return 3ULL * (lemma8_domination_size() + 1) * lemma8_time_delay() * n * n;
}

/// Theorem 2: total convergence bound T1 + (3n^2 + 4).
constexpr std::uint64_t theorem2_bound(std::size_t n) {
  return lemma8_prefix_bound(n) + lemma7_bound(n);
}

/// Theorem 1(2): states per process, 4K.
constexpr std::uint64_t states_per_process(std::uint32_t K) {
  return 4ULL * K;
}

/// |Lambda| = 3nK (Definition 1: three shapes x n holders x K values).
constexpr std::uint64_t legitimate_count(std::size_t n, std::uint32_t K) {
  return 3ULL * n * K;
}

/// Steps per revolution of the two-token inchworm in Lambda (Lemma 1's
/// cycle structure): 3 per hop, n hops.
constexpr std::uint64_t revolution_steps(std::size_t n) { return 3ULL * n; }

}  // namespace ssr::core
