// Bit-sliced SSRmin kernel: one lane per bit of the lane word W (64 for
// u64, 256/512 for the WideWord SIMD backends).
//
// The per-process state of Algorithm 3 is 2 + ceil(log2 K) bits (rts, tra,
// and the Dijkstra digit), so the whole protocol bit-slices: every plane
// word holds one bit of one process across kLanes independent trials, and
// the five prioritized rules become straight-line bitwise expressions
// derived from SsrMinRing::enabled_rule. With G = G_i, f<ab>self/pred/succ
// the <rts.tra> flag tests, and priority made explicit (a plane only covers
// configurations no higher rule claims):
//
//   rule1 =  G & ~f10self
//   rule2 =  G &  f10self &  f01succ
//   rule4 =  G &  f10self & ~f01succ & ~(f00pred & f00succ)
//   rule3 = ~G &  f10pred & ~f01self
//   rule5 = ~G & ~f10pred & ~f00self
//
// (rule5's published guard overlaps rule 3; the plane above is the guard
// minus rule 3, which is what the scalar priority chain computes.) The
// planes are provably disjoint, and a differential test pins every plane
// against SsrMinRing::enabled_rule per lane per step.
//
// Legitimacy (Definition 1) is also evaluated bit-parallel: "exactly one
// guard" by the incrementally maintained per-lane guard counts, the
// Dijkstra x-part step shape by util::BasicSlicedDigits::step_shape, and
// the flag families (a)-(c) by one AND-reduced word per process:
//
//   ok_i = (G_i & (f01 | f10))                        — the holder
//        | (~G_i & (f00 | (G_pred & f01 & f10pred)))  — others / shape (c)
//
// Plane maintenance is incremental, mirroring stab::Engine: a step that
// moves the lanes of processes in set M only dirties M and its ring
// neighbors, so compute() re-derives neq/G/rule words for those indices
// only. load_lane touches arbitrary planes and marks everything dirty;
// fill_lanes (the bulk run-decomposed fill the sliced Phase A uses) only
// dirties the touched process and its neighbors.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/ssrmin.hpp"
#include "core/state.hpp"
#include "util/assert.hpp"
#include "util/bitplane.hpp"

namespace ssr::core {

template <typename W>
class BasicSlicedSsrMin {
 public:
  using Ring = SsrMinRing;
  using Config = SsrConfig;
  using Word = W;
  using Traits = util::LaneTraits<W>;

  static constexpr int kRuleCount = 5;
  static constexpr unsigned kLanes = Traits::kLanes;

  explicit BasicSlicedSsrMin(const SsrMinRing& ring)
      : ring_(ring),
        n_(ring.size()),
        digits_(n_, ring.modulus()),
        rts_(n_, Traits::zero()),
        tra_(n_, Traits::zero()),
        g_(n_, Traits::zero()),
        enabled_(n_, Traits::zero()),
        mx_(n_, Traits::zero()),
        dirty_mark_(n_, 0) {
    for (auto& plane : rules_) plane.assign(n_, Traits::zero());
  }

  std::size_t size() const { return n_; }
  const SsrMinRing& ring() const { return ring_; }

  /// Installs a full scalar configuration into one lane. Marks every plane
  /// dirty (lane refill is rare; correctness beats incrementality here).
  void load_lane(unsigned lane, const Config& config) {
    SSR_REQUIRE(config.size() == n_, "configuration/ring size mismatch");
    const W bit = Traits::lane_bit(lane);
    for (std::size_t i = 0; i < n_; ++i) {
      digits_.set_lane(i, lane, config[i].x);
      rts_[i] = config[i].rts ? (rts_[i] | bit) : (rts_[i] & ~bit);
      tra_[i] = config[i].tra ? (tra_[i] | bit) : (tra_[i] & ~bit);
    }
    all_dirty_ = true;
  }

  /// Bulk masked write of one process's state: every lane in `mask` takes
  /// digit `x` and flags `rts`/`tra`. Dirties only the process and its
  /// ring neighbors, so a run-decomposed refill (sliced Phase A) keeps
  /// compute() incremental. Flags outside the mask are untouched.
  void fill_lanes(std::size_t i, const W& mask, std::uint32_t x, bool rts,
                  bool tra) {
    digits_.set_lanes_masked(i, mask, x);
    rts_[i] = rts ? (rts_[i] | mask) : (rts_[i] & ~mask);
    tra_[i] = tra ? (tra_[i] | mask) : (tra_[i] & ~mask);
    mark_dirty(i == 0 ? n_ - 1 : i - 1);
    mark_dirty(i);
    mark_dirty(i + 1 == n_ ? 0 : i + 1);
  }

  /// Reads one lane back out as a scalar configuration.
  Config extract_lane(unsigned lane) const {
    Config config(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      config[i].x = digits_.get_lane(i, lane);
      config[i].rts = Traits::test(rts_[i], lane);
      config[i].tra = Traits::test(tra_[i], lane);
    }
    return config;
  }

  /// Re-derives the neq/G/rule planes for every index dirtied since the
  /// last compute (or all of them after construction/load_lane). Must be
  /// called before enabled()/rule()/legit_masks() and between apply()s.
  void compute() {
    enabled_changes_.clear();
    if (all_dirty_) {
      for (std::size_t i = 0; i < n_; ++i) refresh_guard(i);
      for (std::size_t i = 0; i < n_; ++i) refresh_rules(i);
      all_dirty_ = false;
      full_rebuild_ = true;
      recount();
    } else {
      full_rebuild_ = false;
      for (std::size_t i : dirty_) {
        const W old = g_[i];
        refresh_guard(i);
        bump(g_count_, old, g_[i]);
      }
      for (std::size_t i : dirty_) {
        const W old = enabled_[i];
        refresh_rules(i);
        const W diff = old ^ enabled_[i];
        if (Traits::any(diff)) {
          bump(en_count_, old, enabled_[i]);
          enabled_changes_.emplace_back(i, diff);
        }
      }
    }
    for (std::size_t i : dirty_) dirty_mark_[i] = 0;
    dirty_.clear();
  }

  /// True iff the last compute() rebuilt every plane (enabled_changes()
  /// is then meaningless and any cached transposition must be redone).
  bool full_rebuild() const { return full_rebuild_; }

  /// (index, old XOR new) pairs for every enabled-plane word the last
  /// incremental compute() changed — what lets BatchEngine patch its
  /// lane-major bitmaps in O(changed bits) instead of re-transposing.
  const std::vector<std::pair<std::size_t, W>>& enabled_changes() const {
    return enabled_changes_;
  }

  /// Forces the next compute() to rebuild every plane; the incremental-vs-
  /// full differential test uses this as its oracle switch.
  void mark_all_dirty() { all_dirty_ = true; }

  /// Lanewise "some rule enabled" per process (n words).
  const std::vector<W>& enabled() const { return enabled_; }

  /// Enabled-process count of one lane, maintained incrementally from the
  /// plane diffs (fresh after compute()). O(1) per query — this is what
  /// keeps the per-step daemon bookkeeping off the O(n) plane passes.
  std::uint32_t enabled_count(unsigned lane) const { return en_count_[lane]; }

  /// Lanewise "at least one process enabled" mask, derived from the
  /// per-lane counts (kLanes reads instead of an n-word OR pass).
  W any_enabled_mask() const {
    W any = Traits::zero();
    for (unsigned g = 0; g < Traits::kLimbs; ++g) {
      std::uint64_t bits = 0;
      for (unsigned b = 0; b < 64; ++b) {
        bits |= static_cast<std::uint64_t>(en_count_[g * 64 + b] != 0) << b;
      }
      Traits::set_limb(any, g, bits);
    }
    return any;
  }

  /// Lanewise plane of rule r (1..5) per process.
  const std::vector<W>& rule(int r) const {
    SSR_REQUIRE(r >= 1 && r <= kRuleCount, "SSRmin rule id out of range");
    return rules_[static_cast<std::size_t>(r - 1)];
  }

  /// Lanewise G_i planes (fresh after compute()).
  const std::vector<W>& guards() const { return g_; }

  /// Lanewise "P_i holds a token" (Definition 2: the primary guard or a
  /// secondary handover flag): G_i | tra_i | (rts_i & f00succ). Fresh
  /// after compute(); the sliced Phase A transposes these planes to count
  /// privileged processes per configuration lane.
  W privileged_plane(std::size_t i) const {
    const std::size_t s = i + 1 == n_ ? 0 : i + 1;
    const W f00succ = ~(rts_[s] | tra_[s]);
    return g_[i] | tra_[i] | (rts_[i] & f00succ);
  }

  /// One composite-atomicity step: sel[i] is the lane mask of processes
  /// moving at i. Every selected (process, lane) must be enabled per the
  /// planes of the last compute(); all reads are pre-step.
  void apply(const std::vector<W>& sel) {
    SSR_REQUIRE(sel.size() == n_, "selection/ring size mismatch");
    moved_.clear();
    for (std::size_t i = 0; i < n_; ++i) {
      if (Traits::any(sel[i])) moved_.push_back(i);
    }
    for (std::size_t i : moved_) {
      const W s = sel[i];
      SSR_ASSERT(!Traits::any(s & ~enabled_[i]),
                 "selected a disabled (process, lane)");
      // Rules 2..5 clear both flags; rule 1 sets <1.0>, rule 3 sets <0.1>.
      rts_[i] = (rts_[i] & ~s) | (s & rules_[0][i]);
      tra_[i] = (tra_[i] & ~s) | (s & rules_[2][i]);
      // Rules 2 and 4 additionally run C_i.
      mx_[i] = s & (rules_[1][i] | rules_[3][i]);
    }
    digits_.apply_command(mx_.data());
    for (std::size_t i : moved_) {
      mx_[i] = Traits::zero();
      mark_dirty(i == 0 ? n_ - 1 : i - 1);
      mark_dirty(i);
      mark_dirty(i + 1 == n_ ? 0 : i + 1);
    }
  }

  struct LegitMasks {
    W milestone = Traits::zero();   ///< dijkstra_part_legitimate per lane
    W legitimate = Traits::zero();  ///< Definition 1 per lane
  };

  /// Lanewise legitimacy of the current planes (fresh after compute()).
  /// "Exactly one guard" comes from the incrementally maintained per-lane
  /// guard counts (kLanes reads, not an n-word vertical counter); the
  /// expensive x-shape and flag reductions only run for lanes that pass
  /// it, which is rare before convergence.
  LegitMasks legit_masks() const {
    W one = Traits::zero();
    for (unsigned g = 0; g < Traits::kLimbs; ++g) {
      std::uint64_t bits = 0;
      for (unsigned b = 0; b < 64; ++b) {
        bits |= static_cast<std::uint64_t>(g_count_[g * 64 + b] == 1) << b;
      }
      Traits::set_limb(one, g, bits);
    }
    if (!Traits::any(one)) return {};
    LegitMasks masks;
    masks.milestone = digits_.step_shape(one);
    W ok = masks.milestone;
    for (std::size_t i = 0; i < n_ && Traits::any(ok); ++i) {
      const std::size_t p = i == 0 ? n_ - 1 : i - 1;
      const W f01 = ~rts_[i] & tra_[i];
      const W f10 = rts_[i] & ~tra_[i];
      const W f00 = ~(rts_[i] | tra_[i]);
      const W f10p = rts_[p] & ~tra_[p];
      ok &= (g_[i] & (f01 | f10)) | (~g_[i] & (f00 | (g_[p] & f01 & f10p)));
    }
    masks.legitimate = ok;
    return masks;
  }

 private:
  void refresh_guard(std::size_t i) {
    digits_.update_neq(i);
    g_[i] = i == 0 ? ~digits_.neq(0) : digits_.neq(i);
  }

  void refresh_rules(std::size_t i) {
    const std::size_t p = i == 0 ? n_ - 1 : i - 1;
    const std::size_t s = i + 1 == n_ ? 0 : i + 1;
    const W g = g_[i];
    const W f10self = rts_[i] & ~tra_[i];
    const W f01self = ~rts_[i] & tra_[i];
    const W f00self = ~(rts_[i] | tra_[i]);
    const W f10pred = rts_[p] & ~tra_[p];
    const W f00pred = ~(rts_[p] | tra_[p]);
    const W f01succ = ~rts_[s] & tra_[s];
    const W f00succ = ~(rts_[s] | tra_[s]);
    const W r1 = g & ~f10self;
    const W r2 = g & f10self & f01succ;
    const W r4 = g & f10self & ~f01succ & ~(f00pred & f00succ);
    const W r3 = ~g & f10pred & ~f01self;
    const W r5 = ~g & ~f10pred & ~f00self;
    rules_[0][i] = r1;
    rules_[1][i] = r2;
    rules_[2][i] = r3;
    rules_[3][i] = r4;
    rules_[4][i] = r5;
    enabled_[i] = r1 | r2 | r3 | r4 | r5;
  }

  void mark_dirty(std::size_t i) {
    if (all_dirty_ || dirty_mark_[i]) return;
    dirty_mark_[i] = 1;
    dirty_.push_back(i);
  }

  /// Applies a one-word plane change to a per-lane count array.
  static void bump(std::array<std::uint32_t, kLanes>& count, const W& before,
                   const W& after) {
    Traits::for_each_lane(after & ~before,
                          [&](unsigned lane) { ++count[lane]; });
    Traits::for_each_lane(before & ~after,
                          [&](unsigned lane) { --count[lane]; });
  }

  /// Full recount after an all-dirty rebuild (lane loads are rare).
  void recount() {
    g_count_.fill(0);
    en_count_.fill(0);
    for (std::size_t i = 0; i < n_; ++i) {
      Traits::for_each_lane(g_[i], [&](unsigned lane) { ++g_count_[lane]; });
      Traits::for_each_lane(enabled_[i],
                            [&](unsigned lane) { ++en_count_[lane]; });
    }
  }

  SsrMinRing ring_;  // small value type; copied so the kernel is movable
  std::size_t n_;
  util::BasicSlicedDigits<W> digits_;
  std::vector<W> rts_;
  std::vector<W> tra_;
  std::vector<W> g_;
  std::vector<W> rules_[kRuleCount];
  std::vector<W> enabled_;
  // Per-lane guard / enabled-process counts, kept in lockstep with the
  // planes by compute() (diff-bumped incrementally, recounted on loads).
  std::array<std::uint32_t, kLanes> g_count_{};
  std::array<std::uint32_t, kLanes> en_count_{};
  std::vector<std::pair<std::size_t, W>> enabled_changes_;
  bool full_rebuild_ = false;
  // Scratch: C_i lane masks (kept zeroed between steps) and the dirty set.
  std::vector<W> mx_;
  std::vector<std::uint8_t> dirty_mark_;
  std::vector<std::size_t> dirty_;
  std::vector<std::size_t> moved_;
  bool all_dirty_ = true;
};

/// The classic 64-lane kernel every scalar-u64 call site keeps using.
using SlicedSsrMin = BasicSlicedSsrMin<std::uint64_t>;

}  // namespace ssr::core
