#include "core/ssrmin.hpp"

#include "util/assert.hpp"

namespace ssr::core {

SsrMinRing::SsrMinRing(std::size_t n, std::uint32_t K) : n_(n), k_(K) {
  SSR_REQUIRE(n >= 3, "SSRmin requires n >= 3 (Algorithm 3 line 2)");
  SSR_REQUIRE(K > n, "SSRmin requires K > n (Algorithm 3 line 3)");
}

int SsrMinRing::enabled_rule(std::size_t i, const State& self,
                             const State& pred, const State& succ) const {
  const bool g = guard(i, self, pred);
  const std::uint32_t sf = self.flags();
  const std::uint32_t pf = pred.flags();
  const std::uint32_t cf = succ.flags();
  if (g) {
    // Rule 1: self in {<0.0>, <0.1>, <1.1>}.
    if (sf == kFlags00 || sf == kFlags01 || sf == kFlags11)
      return kRuleReadyToSend;
    // Rule 2: self = <1.0>, successor = <0.1>.
    if (sf == kFlags10 && cf == kFlags01) return kRuleSendPrimary;
    // Rule 4: the whole window differs from <0.0, 1.0, 0.0>. After rules 1
    // and 2, self is necessarily <1.0> here, so this triggers unless the
    // process is simply waiting for its successor's acknowledgment.
    if (!(pf == kFlags00 && sf == kFlags10 && cf == kFlags00))
      return kRuleFixGuardTrue;
    return stab::kDisabled;
  }
  // Rule 3: predecessor offers the secondary token (<1.0>) and self can
  // accept: <0.0> in legitimate runs, <1.0>/<1.1> during convergence.
  if (pf == kFlags10 && (sf == kFlags00 || sf == kFlags10 || sf == kFlags11))
    return kRuleReceiveSecondary;
  // Rule 5: anything else with a nonzero flag pair is locally inconsistent,
  // except the stable holder pattern <pred, self> = <1.0, 0.1>.
  if (!(pf == kFlags10 && sf == kFlags01) && sf != kFlags00)
    return kRuleFixGuardFalse;
  return stab::kDisabled;
}

SsrMinRing::State SsrMinRing::apply(std::size_t i, int rule, const State& self,
                                    const State& pred,
                                    const State& succ) const {
  SSR_REQUIRE(enabled_rule(i, self, pred, succ) == rule,
              "rule applied while not the enabled rule");
  State next = self;
  switch (rule) {
    case kRuleReadyToSend:  // <rts.tra> := <1.0>
      next.rts = true;
      next.tra = false;
      break;
    case kRuleSendPrimary:  // <rts.tra> := <0.0>; C_i
      next.rts = false;
      next.tra = false;
      next.x = dijkstra::kstate_command(i, pred.x, k_);
      break;
    case kRuleReceiveSecondary:  // <rts.tra> := <0.1>
      next.rts = false;
      next.tra = true;
      break;
    case kRuleFixGuardTrue:  // <rts.tra> := <0.0>; C_i
      next.rts = false;
      next.tra = false;
      next.x = dijkstra::kstate_command(i, pred.x, k_);
      break;
    case kRuleFixGuardFalse:  // <rts.tra> := <0.0>
      next.rts = false;
      next.tra = false;
      break;
    default:
      SSR_REQUIRE(false, "unknown SSRmin rule id");
  }
  return next;
}

std::vector<TokenHoldings> token_holdings(const SsrMinRing& ring,
                                          const SsrConfig& config) {
  SSR_REQUIRE(config.size() == ring.size(), "configuration/ring size mismatch");
  const std::size_t n = config.size();
  std::vector<TokenHoldings> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const SsrState& self = config[i];
    const SsrState& pred = config[stab::pred_index(i, n)];
    const SsrState& succ = config[stab::succ_index(i, n)];
    out[i].primary = ring.holds_primary(i, self, pred);
    out[i].secondary = ring.holds_secondary(self, succ);
  }
  return out;
}

std::size_t primary_token_count(const SsrMinRing& ring,
                                const SsrConfig& config) {
  std::size_t count = 0;
  for (const auto& h : token_holdings(ring, config))
    if (h.primary) ++count;
  return count;
}

std::size_t secondary_token_count(const SsrMinRing& ring,
                                  const SsrConfig& config) {
  std::size_t count = 0;
  for (const auto& h : token_holdings(ring, config))
    if (h.secondary) ++count;
  return count;
}

std::size_t privileged_count(const SsrMinRing& ring, const SsrConfig& config) {
  std::size_t count = 0;
  for (const auto& h : token_holdings(ring, config))
    if (h.primary || h.secondary) ++count;
  return count;
}

SsrConfig random_config(const SsrMinRing& ring, Rng& rng) {
  SsrConfig c(ring.size());
  for (auto& s : c) {
    s.x = static_cast<std::uint32_t>(rng.below(ring.modulus()));
    s.rts = rng.bernoulli(0.5);
    s.tra = rng.bernoulli(0.5);
  }
  return c;
}

stab::TraceStyle<SsrState> trace_style(const SsrMinRing& ring) {
  stab::TraceStyle<SsrState> style;
  style.format_state = [](const SsrState& s) { return format_state(s); };
  style.annotate = [ring](const std::vector<SsrState>& config,
                          std::size_t i) -> std::string {
    const std::size_t n = config.size();
    const SsrState& self = config[i];
    const SsrState& pred = config[stab::pred_index(i, n)];
    const SsrState& succ = config[stab::succ_index(i, n)];
    std::string marks;
    if (ring.holds_primary(i, self, pred)) marks += 'P';
    if (ring.holds_secondary(self, succ)) marks += 'S';
    return marks;
  };
  return style;
}

}  // namespace ssr::core
