#include "core/legitimacy.hpp"

#include "util/assert.hpp"

namespace ssr::core {

namespace {

/// Finds the unique process with G_i true, or nullopt if there is not
/// exactly one.
std::optional<std::size_t> unique_guard_holder(const SsrMinRing& ring,
                                               const SsrConfig& config) {
  const std::size_t n = config.size();
  std::optional<std::size_t> holder;
  for (std::size_t i = 0; i < n; ++i) {
    if (ring.guard(i, config[i], config[stab::pred_index(i, n)])) {
      if (holder.has_value()) return std::nullopt;
      holder = i;
    }
  }
  return holder;
}

}  // namespace

bool dijkstra_part_legitimate(const SsrMinRing& ring,
                              const SsrConfig& config) {
  SSR_REQUIRE(config.size() == ring.size(), "configuration/ring size mismatch");
  const std::size_t n = config.size();
  const auto holder = unique_guard_holder(ring, config);
  if (!holder.has_value()) return false;
  const std::size_t t = *holder;
  const std::uint32_t K = ring.modulus();
  const std::uint32_t x = config[t].x;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t expected = (i < t) ? (x + 1) % K : x;
    if (config[i].x != expected) return false;
  }
  return true;
}

std::optional<LegitimacyInfo> classify_legitimate(const SsrMinRing& ring,
                                                  const SsrConfig& config) {
  SSR_REQUIRE(config.size() == ring.size(), "configuration/ring size mismatch");
  const std::size_t n = config.size();

  const auto holder = unique_guard_holder(ring, config);
  if (!holder.has_value()) return std::nullopt;
  const std::size_t t = *holder;
  const std::size_t t_succ = stab::succ_index(t, n);

  // Definition 1 fixes the x-part shape: the processes ahead of the holder
  // carry exactly x+1 (mod K), the holder and everyone after carry x. A
  // unique guard holder only guarantees a two-level step; the step height
  // must be exactly one.
  const std::uint32_t K = ring.modulus();
  const std::uint32_t x = config[t].x;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t expected = (i < t) ? (x + 1) % K : x;
    if (config[i].x != expected) return std::nullopt;
  }

  // Every flag pair must be <0.0> except at t (and possibly t+1).
  for (std::size_t i = 0; i < n; ++i) {
    if (i == t || i == t_succ) continue;
    if (config[i].flags() != kFlags00) return std::nullopt;
  }

  const std::uint32_t ft = config[t].flags();
  const std::uint32_t fs = config[t_succ].flags();
  LegitimacyInfo info;
  info.primary_holder = t;
  if (ft == kFlags01 && fs == kFlags00) {
    info.shape = LegitimateShape::kHolderTra;
    return info;
  }
  if (ft == kFlags10 && fs == kFlags00) {
    info.shape = LegitimateShape::kHolderRts;
    return info;
  }
  if (ft == kFlags10 && fs == kFlags01) {
    info.shape = LegitimateShape::kHandoffPending;
    return info;
  }
  return std::nullopt;
}

bool is_legitimate(const SsrMinRing& ring, const SsrConfig& config) {
  return classify_legitimate(ring, config).has_value();
}

std::vector<SsrConfig> enumerate_legitimate(const SsrMinRing& ring) {
  const std::size_t n = ring.size();
  const std::uint32_t K = ring.modulus();
  std::vector<SsrConfig> out;
  out.reserve(static_cast<std::size_t>(K) * n * 3);
  for (std::uint32_t x = 0; x < K; ++x) {
    for (std::size_t t = 0; t < n; ++t) {
      // Dijkstra-legitimate x-part with the token at P_t: the first t
      // entries carry x+1, the rest x (t = 0: all equal).
      SsrConfig base(n);
      for (std::size_t i = 0; i < n; ++i) {
        base[i].x = (i < t) ? (x + 1) % K : x;
      }
      // Shape (a): holder <0.1>.
      SsrConfig a = base;
      a[t].tra = true;
      out.push_back(std::move(a));
      // Shape (b): holder <1.0>.
      SsrConfig b = base;
      b[t].rts = true;
      out.push_back(std::move(b));
      // Shape (c): holder <1.0>, successor <0.1>.
      SsrConfig c = base;
      c[t].rts = true;
      c[stab::succ_index(t, n)].tra = true;
      out.push_back(std::move(c));
    }
  }
  return out;
}

SsrConfig canonical_legitimate(const SsrMinRing& ring, std::uint32_t x) {
  SSR_REQUIRE(x < ring.modulus(), "x out of range");
  SsrConfig c(ring.size());
  for (auto& s : c) s.x = x;
  c[0].tra = true;
  return c;
}

}  // namespace ssr::core
