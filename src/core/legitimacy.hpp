// Legitimate configurations of SSRmin (paper Definition 1).
//
// A configuration is legitimate iff, for some x (arithmetic mod K) and some
// holder position t, the x-part is Dijkstra-legitimate with its unique token
// at P_t (all values equal with t = 0, or exactly the first t entries equal
// to x+1 and the rest x), every <rts.tra> pair is <0.0> except:
//
//   (a) P_t = <0.1>                    — P_t holds primary + secondary;
//   (b) P_t = <1.0>                    — P_t holds primary + secondary
//                                        (offer not yet accepted);
//   (c) P_t = <1.0>, P_{t+1} = <0.1>   — P_t holds primary, P_{t+1} holds
//                                        the secondary token.
//
// Definition 1 lists these as six families; (a)-(c) over all holders t cover
// exactly the same set including the wrap-around case t = n-1 where the
// successor is P_0.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/ssrmin.hpp"

namespace ssr::core {

/// Which of the three legitimate shapes a configuration matches.
enum class LegitimateShape {
  kHolderTra,        ///< (a): holder has <0.1>
  kHolderRts,        ///< (b): holder has <1.0>
  kHandoffPending,   ///< (c): holder <1.0>, successor <0.1>
};

/// Decomposition of a legitimate configuration.
struct LegitimacyInfo {
  std::size_t primary_holder = 0;   ///< P_t, unique process with G_t true
  LegitimateShape shape = LegitimateShape::kHolderTra;
};

/// Returns the decomposition if the configuration is legitimate, nullopt
/// otherwise.
std::optional<LegitimacyInfo> classify_legitimate(const SsrMinRing& ring,
                                                  const SsrConfig& config);

/// Definition 1 membership test.
bool is_legitimate(const SsrMinRing& ring, const SsrConfig& config);

/// All legitimate configurations: 3nK of them (three shapes, n holders,
/// K values of x).
std::vector<SsrConfig> enumerate_legitimate(const SsrMinRing& ring);

/// The canonical legitimate configuration gamma_0 = (x.0.1, x.0.0, ...,
/// x.0.0) used as the start of the closure proof (Lemma 1) and Figure 4.
SsrConfig canonical_legitimate(const SsrMinRing& ring, std::uint32_t x);

/// True iff the x-part alone is a legitimate Dijkstra configuration
/// (exactly one process with G_i true) — the intermediate convergence
/// milestone of Lemmas 7-8.
bool dijkstra_part_legitimate(const SsrMinRing& ring, const SsrConfig& config);

}  // namespace ssr::core
