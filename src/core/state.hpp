// Local state of an SSRmin process (paper Algorithm 3, lines 4-7):
//   x   in {0..K-1} — the embedded Dijkstra K-state counter
//   rts in {0,1}    — "ready to send" the secondary token
//   tra in {0,1}    — "token receipt acknowledged" for the secondary token
//
// The paper writes a local state as "x.rts.tra" (e.g. "3.0.1"); format_state
// reproduces that notation. Theorem 1: the state space per process has size
// 4K, and encode/decode provide the dense 0..4K-1 numbering the exhaustive
// model checker uses.
#pragma once

#include <cstdint>
#include <string>

#include "util/assert.hpp"

namespace ssr::core {

struct SsrState {
  std::uint32_t x = 0;
  bool rts = false;
  bool tra = false;

  friend auto operator<=>(const SsrState&, const SsrState&) = default;

  /// The <rts.tra> pair as a 2-bit code: 0b(rts)(tra), i.e. 0 = <0.0>,
  /// 1 = <0.1>, 2 = <1.0>, 3 = <1.1>. Used to express the guard patterns of
  /// Algorithm 3 compactly.
  constexpr std::uint32_t flags() const {
    return (rts ? 2u : 0u) | (tra ? 1u : 0u);
  }
};

/// Flag-pair codes matching the paper's <rts.tra> notation.
inline constexpr std::uint32_t kFlags00 = 0;
inline constexpr std::uint32_t kFlags01 = 1;
inline constexpr std::uint32_t kFlags10 = 2;
inline constexpr std::uint32_t kFlags11 = 3;

/// Paper notation "x.rts.tra", e.g. "3.0.1".
inline std::string format_state(const SsrState& s) {
  return std::to_string(s.x) + (s.rts ? ".1" : ".0") + (s.tra ? ".1" : ".0");
}

/// Dense code in [0, 4K): x * 4 + flags.
inline std::uint32_t encode_state(const SsrState& s, std::uint32_t K) {
  SSR_REQUIRE(s.x < K, "state.x out of range for modulus K");
  return s.x * 4 + s.flags();
}

inline SsrState decode_state(std::uint32_t code, std::uint32_t K) {
  SSR_REQUIRE(code < 4 * K, "state code out of range");
  return SsrState{code / 4, ((code >> 1) & 1u) != 0, (code & 1u) != 0};
}

}  // namespace ssr::core
