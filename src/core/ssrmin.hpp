// SSRmin — the paper's self-stabilizing mutual-inclusion algorithm
// (Algorithm 3). Two tokens circulate a bidirectional ring like an
// inchworm:
//
//   * the *primary* token is Dijkstra's K-state token (condition G_i);
//   * the *secondary* token is the head of the inchworm, passed one hop
//     ahead of the primary through an rts/tra handshake.
//
// Five prioritized rules (1 highest .. 5 lowest; a process is enabled by at
// most one rule):
//
//   Rule 1 (alpha_1, "ready to send the secondary token"):
//       G_i  &&  <rts_i.tra_i> in {<0.0>, <0.1>, <1.1>}
//       -> <rts_i.tra_i> := <1.0>
//   Rule 2 (alpha_2, "send the primary token"):
//       G_i  &&  <rts_i.tra_i> = <1.0>  &&  <rts_{i+1}.tra_{i+1}> = <0.1>
//       -> <rts_i.tra_i> := <0.0>;  C_i
//   Rule 3 (beta, "receive the secondary token"):
//       !G_i  &&  <rts_{i-1}.tra_{i-1}> = <1.0>
//             &&  <rts_i.tra_i> in {<0.0>, <1.0>, <1.1>}
//       -> <rts_i.tra_i> := <0.1>
//   Rule 4 (fix, G_i true):
//       G_i  &&  <pred, self, succ> != <0.0, 1.0, 0.0>
//       -> <rts_i.tra_i> := <0.0>;  C_i
//   Rule 5 (fix, G_i false):
//       !G_i  &&  <pred, self> != <1.0, 0.1>  &&  self != <0.0>
//       -> <rts_i.tra_i> := <0.0>
//
// Token conditions (Algorithm 3 lines 37-40):
//   primary:   G_i
//   secondary: tra_i = 1,  or  rts_i = 1 && <rts_{i+1}.tra_{i+1}> = <0.0>
//
// The second disjunct of the secondary-token condition is what gives the
// algorithm its *model gap tolerance* (paper §5): the sender keeps holding
// the secondary token until the receiver's acknowledgment is visible, so in
// the message-passing model there is never an instant with zero tokens.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/state.hpp"
#include "dijkstra/kstate.hpp"
#include "stabilizing/protocol.hpp"
#include "stabilizing/trace.hpp"
#include "util/rng.hpp"

namespace ssr::core {

/// The SSRmin protocol (satisfies stab::RingProtocol).
class SsrMinRing {
 public:
  using State = SsrState;

  static constexpr int kRuleReadyToSend = 1;
  static constexpr int kRuleSendPrimary = 2;
  static constexpr int kRuleReceiveSecondary = 3;
  static constexpr int kRuleFixGuardTrue = 4;
  static constexpr int kRuleFixGuardFalse = 5;

  /// Paper constraints: n >= 3 processes, K > n (Algorithm 3 lines 2-3).
  SsrMinRing(std::size_t n, std::uint32_t K);

  std::size_t size() const { return n_; }
  std::uint32_t modulus() const { return k_; }

  /// Theorem 1(2): number of distinct local states per process.
  std::uint32_t states_per_process() const { return 4 * k_; }

  /// G_i — the guard of the embedded Dijkstra ring (primary-token
  /// condition).
  bool guard(std::size_t i, const State& self, const State& pred) const {
    return dijkstra::kstate_guard(i, self.x, pred.x);
  }

  /// Highest-priority enabled rule (1..5) or stab::kDisabled.
  int enabled_rule(std::size_t i, const State& self, const State& pred,
                   const State& succ) const;

  State apply(std::size_t i, int rule, const State& self, const State& pred,
              const State& succ) const;

  /// Primary token condition: G_i.
  bool holds_primary(std::size_t i, const State& self, const State& pred) const {
    return guard(i, self, pred);
  }

  /// Secondary token condition: tra_i = 1, or rts_i = 1 with the successor
  /// showing <0.0>.
  bool holds_secondary(const State& self, const State& succ) const {
    return self.tra || (self.rts && succ.flags() == kFlags00);
  }

  /// The *rejected* secondary-token condition the paper discusses in §3.1:
  /// tra_i = 1 alone. Under it the secondary token goes extinct whenever
  /// the two tokens are co-located (shape <1.0> of Definition 1) — fine in
  /// the state-reading model, but it forfeits the always-one-secondary
  /// property the full condition provides. Kept for the ablation
  /// experiments (E14).
  bool holds_secondary_weak(const State& self) const { return self.tra; }

  /// A process is privileged (may be in the critical section) iff it holds
  /// the primary or the secondary token.
  bool holds_token(std::size_t i, const State& self, const State& pred,
                   const State& succ) const {
    return holds_primary(i, self, pred) || holds_secondary(self, succ);
  }

 private:
  std::size_t n_;
  std::uint32_t k_;
};

using SsrConfig = std::vector<SsrState>;

/// Which tokens each process holds in a configuration.
struct TokenHoldings {
  bool primary = false;
  bool secondary = false;
};

std::vector<TokenHoldings> token_holdings(const SsrMinRing& ring,
                                          const SsrConfig& config);

std::size_t primary_token_count(const SsrMinRing& ring,
                                const SsrConfig& config);
std::size_t secondary_token_count(const SsrMinRing& ring,
                                  const SsrConfig& config);

/// Number of privileged processes (holding >= 1 token). Theorem 1 asserts
/// this is in [1, 2] for every legitimate configuration.
std::size_t privileged_count(const SsrMinRing& ring, const SsrConfig& config);

/// Uniformly random configuration over the full state space {0..K-1} x
/// {0,1} x {0,1} per process (the arbitrary-initial-configuration workload
/// of the convergence experiments).
SsrConfig random_config(const SsrMinRing& ring, Rng& rng);

/// Trace formatting hooks reproducing the paper's Figure 4 cells, e.g.
/// "3.0.1PS" (state, then 'P'/'S' marks).
stab::TraceStyle<SsrState> trace_style(const SsrMinRing& ring);

}  // namespace ssr::core
