// Minimal JSON value tree + serializer — enough for machine-readable
// experiment exports (no parsing, no dependencies). Strings are escaped
// per RFC 8259; numbers use shortest-round-trip formatting via
// format_double for doubles.
#pragma once

#include <concepts>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace ssr {

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(const char* s) : value_(std::string(s)) {}
  /// Any integral type (stored as int64).
  template <typename T>
    requires std::integral<T> && (!std::same_as<T, bool>)
  Json(T i) : value_(static_cast<std::int64_t>(i)) {}

  static Json object() {
    Json j;
    j.value_ = Object{};
    return j;
  }
  static Json array() {
    Json j;
    j.value_ = Array{};
    return j;
  }

  bool is_object() const { return std::holds_alternative<Object>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }

  /// Sets a key on an object (converts a null value to an object first).
  Json& set(const std::string& key, Json value);

  /// Appends to an array (converts a null value to an array first).
  Json& push(Json value);

  std::size_t size() const;

  /// Serializes; indent = 0 gives compact output, > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  /// RFC 8259 string escaping (without the surrounding quotes).
  static std::string escape(const std::string& s);

 private:
  struct Object {
    // Insertion-ordered map keeps exports stable and diff-friendly.
    std::vector<std::pair<std::string, Json>> entries;
  };
  using Array = std::vector<Json>;
  using Value = std::variant<std::nullptr_t, bool, std::int64_t, double,
                             std::string, Object, Array>;

  void dump_impl(std::string& out, int indent, int depth) const;

  Value value_;
};

}  // namespace ssr
