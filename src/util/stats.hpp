// Streaming and batch statistics used by the benchmark harness and the
// runtime monitors: Welford online moments, percentile summaries, and a
// fixed-bucket histogram.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ssr {

/// Numerically stable streaming mean/variance (Welford's algorithm) with
/// min/max tracking. O(1) memory; suitable for long monitor runs.
class OnlineStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const OnlineStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary over a retained sample vector; supports exact percentiles.
///
/// Every statistic is a function of the sorted sample multiset: mean and
/// stddev fold over the sorted vector, so two SampleSets holding the same
/// samples report bit-identical doubles regardless of insertion or merge
/// order. That is what lets the parallel trial sweeps (sim::TrialSweep)
/// merge per-trial partials in any order and still emit byte-identical
/// tables at every worker count.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { samples_.reserve(n); }

  /// Absorbs another sample set (order-independent: the result depends
  /// only on the combined multiset of samples).
  void merge(const SampleSet& other);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Exact percentile with linear interpolation, q in [0, 100].
  /// Sorts lazily on first call after insertion.
  double percentile(double q) const;
  double median() const { return percentile(50.0); }

  /// The retained samples. Sorted ascending whenever a statistic has been
  /// computed since the last insertion; callers must not rely on
  /// insertion order.
  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-width bucket histogram over [lo, hi); out-of-range samples land in
/// saturating under/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t bucket(std::size_t i) const { return counts_.at(i); }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  /// Multi-line ASCII rendering (one row per non-empty bucket) for bench
  /// output.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace ssr
