// Runtime selection of the bit-sliced lane width.
//
// The sliced kernels are templated on the lane word (util/bitplane.hpp);
// the 256/512-lane instantiations live in dedicated translation units
// compiled with -mavx2 / -mavx512f (see src/sim and src/verify CMake
// files), so one generic binary carries all backends and picks at runtime
// via cpuid. This decouples SIMD use from -march=native: an
// SSRING_NATIVE_ARCH=ON binary moved to an older host can still SIGILL in
// *other* native-compiled code, but every sliced-kernel entry point routed
// through detect_lane_backend() is guaranteed a u64 fallback.
#pragma once

namespace ssr::util {

enum class LaneBackend {
  kU64,     // portable 64-lane words (always available)
  kAvx2,    // 256-lane WideWord<4>, TU compiled with -mavx2
  kAvx512,  // 512-lane WideWord<8>, TU compiled with -mavx512f
};

/// True if the named backend was compiled into this binary AND the running
/// CPU supports its instruction set. kU64 is always available.
bool lane_backend_available(LaneBackend backend);

/// Best available backend, honouring the SSRING_LANE_BACKEND environment
/// variable ("u64"/"scalar", "avx2", "avx512", "auto"). An explicit request
/// degrades to the best available backend at or below the requested width —
/// forcing "u64" is the guaranteed-portable fallback path; requesting a
/// width the CPU or build lacks silently falls back rather than failing.
LaneBackend detect_lane_backend();

/// Human-readable backend name ("u64", "avx2", "avx512").
const char* lane_backend_name(LaneBackend backend);

/// Lane count of the backend's word (64 / 256 / 512).
unsigned lane_backend_lanes(LaneBackend backend);

}  // namespace ssr::util
