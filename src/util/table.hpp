// Plain-text table rendering used by the benchmark harness to print the
// rows/series each experiment reports (the paper-figure reproductions).
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace ssr {

/// Column-aligned text table. Cells are strings; numeric convenience
/// overloads format with a fixed precision. Rendering right-aligns cells
/// that parse as numbers and left-aligns everything else.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row; subsequent cell() calls append to it.
  TextTable& row();
  TextTable& cell(std::string value);
  TextTable& cell(const char* value);
  TextTable& cell(double value, int precision = 3);
  TextTable& cell(bool value);
  /// Any integral type.
  template <typename T>
    requires std::integral<T> && (!std::same_as<T, bool>)
  TextTable& cell(T value) {
    return cell(std::to_string(value));
  }

  /// Appends a full row in one call.
  TextTable& add_row(std::initializer_list<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with a header rule, e.g.
  ///   n    steps  bound
  ///   ---- ------ ------
  ///   5    42     60
  std::string render() const;

  /// RFC-4180-style CSV (header row first; cells quoted when needed).
  std::string to_csv() const;

  /// JSON array of row objects keyed by the header names. Cells that parse
  /// as numbers are emitted as numbers, "yes"/"no" as booleans, everything
  /// else as strings.
  std::string to_json(int indent = 2) const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of significant decimals, trimming
/// trailing zeros ("3.100" -> "3.1", "4.000" -> "4").
std::string format_double(double value, int precision = 3);

}  // namespace ssr
