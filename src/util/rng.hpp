// Deterministic, seedable pseudo-random number generation.
//
// Every stochastic component in the library (daemons, delay models, loss
// models, workload generators) takes an explicit ssr::Rng so that every
// experiment is exactly reproducible from its seed. We implement
// xoshiro256** (Blackman & Vigna) seeded through splitmix64, which is the
// standard recipe: fast, high quality, and — unlike std::mt19937 — with a
// guaranteed stable output sequence across standard library versions.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace ssr {

/// One step of the splitmix64 generator; used to expand a 64-bit seed into
/// the 256-bit xoshiro state. Advances @p state in place.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via splitmix64.
  explicit constexpr Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method to avoid modulo bias. @p bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) {
    SSR_REQUIRE(bound != 0, "Rng::below requires a positive bound");
    // Fast path multiply; reject the biased low range.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    SSR_REQUIRE(lo <= hi, "Rng::range requires lo <= hi");
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    // span == 0 means the full 64-bit range (hi - lo wrapped); then any draw
    // is uniform already.
    const std::uint64_t draw = (span == 0) ? (*this)() : below(span);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability @p p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean) {
    SSR_REQUIRE(mean > 0.0, "Rng::exponential requires a positive mean");
    // -mean * log(1 - u); 1 - uniform01() is in (0, 1].
    double u = 1.0 - uniform01();
    // log is not constexpr-friendly; plain call is fine here.
    return -mean * __builtin_log(u);
  }

  /// Derives an independent child generator; useful to give each node or
  /// each repetition its own stream without correlated draws.
  ///
  /// Derivation (stable across versions; golden values pinned by
  /// tests/test_rng.cpp): draw one 64-bit value from this generator —
  /// advancing the parent's state, so successive split() calls yield
  /// distinct children — XOR it with the splitmix64 golden gamma, and
  /// seed a fresh Rng from the result through the usual splitmix64
  /// expansion. Sequential splits are the right tool when the *call
  /// order* is deterministic; when trials are scheduled dynamically
  /// across workers, derive streams from (seed, trial index) instead
  /// (sim::trial_rng).
  Rng split() { return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL); }

  /// Fisher–Yates shuffle of a random-access container.
  // (see also ssr::stream_rng below for order-independent stream
  // derivation from a (seed, stream index) pair)
  template <typename Container>
  void shuffle(Container& c) {
    const auto n = c.size();
    if (n < 2) return;
    for (std::size_t i = n - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derives the independent child stream number @p stream of @p seed by
/// jumping the splitmix64 generator seeded with `seed` directly to
/// position `stream` (the splitmix state advance is += golden gamma per
/// output) and expanding one output into a full xoshiro state. Unlike
/// Rng::split(), the derivation is a pure function of (seed, stream):
/// streams can be created in any order, on any worker, and still match —
/// the property the parallel trial sweeps (sim::trial_rng) and the
/// sharded CST simulator's per-node streams both build on. Golden values
/// are pinned by tests/test_sim_sweep.cpp.
inline Rng stream_rng(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t state = seed + stream * 0x9e3779b97f4a7c15ULL;
  return Rng(splitmix64_next(state));
}

}  // namespace ssr
