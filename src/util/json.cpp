#include "util/json.hpp"

#include <cstdio>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace ssr {

Json& Json::set(const std::string& key, Json value) {
  if (is_null()) value_ = Object{};
  SSR_REQUIRE(is_object(), "set() requires an object");
  auto& entries = std::get<Object>(value_).entries;
  for (auto& [k, v] : entries) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  entries.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (is_null()) value_ = Array{};
  SSR_REQUIRE(is_array(), "push() requires an array");
  std::get<Array>(value_).push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  if (is_object()) return std::get<Object>(value_).entries.size();
  if (is_array()) return std::get<Array>(value_).size();
  return 0;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

void Json::dump_impl(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                   static_cast<std::size_t>(depth + 1),
                               ' ')
                 : "";
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                   static_cast<std::size_t>(depth),
                               ' ')
                 : "";
  const char* nl = indent > 0 ? "\n" : "";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (std::holds_alternative<bool>(value_)) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (std::holds_alternative<std::int64_t>(value_)) {
    out += std::to_string(std::get<std::int64_t>(value_));
  } else if (std::holds_alternative<double>(value_)) {
    out += format_double(std::get<double>(value_), 9);
  } else if (std::holds_alternative<std::string>(value_)) {
    out += '"';
    out += escape(std::get<std::string>(value_));
    out += '"';
  } else if (std::holds_alternative<Array>(value_)) {
    const auto& arr = std::get<Array>(value_);
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (std::size_t i = 0; i < arr.size(); ++i) {
      out += pad;
      arr[i].dump_impl(out, indent, depth + 1);
      if (i + 1 < arr.size()) out += ',';
      out += nl;
    }
    out += close_pad;
    out += ']';
  } else {
    const auto& obj = std::get<Object>(value_);
    if (obj.entries.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    for (std::size_t i = 0; i < obj.entries.size(); ++i) {
      out += pad;
      out += '"';
      out += escape(obj.entries[i].first);
      out += indent > 0 ? "\": " : "\":";
      obj.entries[i].second.dump_impl(out, indent, depth + 1);
      if (i + 1 < obj.entries.size()) out += ',';
      out += nl;
    }
    out += close_pad;
    out += '}';
  }
}

}  // namespace ssr
