#include "util/table.hpp"

#include "util/json.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace ssr {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  bool digit_seen = false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '-' && c != '+' &&
               c != '%' && c != 'x') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  SSR_REQUIRE(!header_.empty(), "TextTable needs at least one column");
}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(std::string value) {
  SSR_REQUIRE(!rows_.empty(), "call row() before cell()");
  SSR_REQUIRE(rows_.back().size() < header_.size(),
              "row has more cells than header columns");
  rows_.back().push_back(std::move(value));
  return *this;
}

TextTable& TextTable::cell(const char* value) { return cell(std::string(value)); }

TextTable& TextTable::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

TextTable& TextTable::cell(bool value) {
  return cell(std::string(value ? "yes" : "no"));
}

TextTable& TextTable::add_row(std::initializer_list<std::string> cells) {
  row();
  for (const auto& c : cells) cell(c);
  return *this;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells, bool align) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      const std::size_t pad = widths[c] - v.size();
      if (align && looks_numeric(v)) {
        os << std::string(pad, ' ') << v;
      } else {
        os << v << std::string(pad, ' ');
      }
      os << (c + 1 == header_.size() ? "" : "  ");
    }
    os << '\n';
  };
  emit(header_, /*align=*/false);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c], '-') << (c + 1 == header_.size() ? "" : "  ");
  }
  os << '\n';
  for (const auto& r : rows_) emit(r, /*align=*/true);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.render();
}

namespace {

std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TextTable::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << csv_quote(header_[c]) << (c + 1 == header_.size() ? "" : ",");
  }
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << (c < r.size() ? csv_quote(r[c]) : std::string())
         << (c + 1 == header_.size() ? "" : ",");
    }
    os << '\n';
  }
  return os.str();
}

std::string TextTable::to_json(int indent) const {
  Json rows = Json::array();
  for (const auto& r : rows_) {
    Json row = Json::object();
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < r.size() ? r[c] : std::string();
      if (v == "yes") {
        row.set(header_[c], Json(true));
      } else if (v == "no") {
        row.set(header_[c], Json(false));
      } else if (looks_numeric(v) && v.find('%') == std::string::npos &&
                 v.find('x') == std::string::npos) {
        char* end = nullptr;
        const double d = std::strtod(v.c_str(), &end);
        if (end != nullptr && *end == '\0') {
          if (v.find('.') == std::string::npos &&
              v.find('e') == std::string::npos &&
              v.find('E') == std::string::npos) {
            row.set(header_[c], Json(static_cast<std::int64_t>(
                                    std::strtoll(v.c_str(), nullptr, 10))));
          } else {
            row.set(header_[c], Json(d));
          }
        } else {
          row.set(header_[c], Json(v));
        }
      } else {
        row.set(header_[c], Json(v));
      }
    }
    rows.push(std::move(row));
  }
  return rows.dump(indent);
}

}  // namespace ssr
