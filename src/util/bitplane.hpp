// Bit-plane primitives for the bit-sliced batch kernels.
//
// Layout convention (shared by core::BasicSlicedSsrMin and
// dijkstra::BasicSlicedKState): one lane word holds one bit of one process
// across kLanes Monte-Carlo lanes ("trial-major"); bit `l` of the word
// belongs to lane `l`. A b-bit per-process quantity (the Dijkstra digit)
// becomes b consecutive plane words per process, least-significant bit
// first. All helpers here are straight-line bitwise code over that layout:
// lanewise compare, lanewise +1 mod K, masked plane copy, and the 64x64
// transpose that converts the process-major enabled planes into per-lane
// bitmaps for daemon selection.
//
// The lane word is a template parameter: `std::uint64_t` gives the classic
// 64-lane engine, `WideWord<4>`/`WideWord<8>` give 256/512 lanes. WideWord
// is a plain array of u64 limbs with bitwise operators written as limb
// loops — no intrinsics — so the same header compiles everywhere and the
// per-TU SIMD backends (see sim/batch_dispatch.cpp) get their vector
// codegen purely from compiler flags on those translation units.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace ssr::util {

/// Upper bound on digit planes per process. K is a u32, so bit_width(K-1)
/// never exceeds 32; the fixed-size digit scratch buffers below rely on it
/// and the SlicedDigits constructor enforces it explicitly.
inline constexpr unsigned kMaxDigitPlanes = 32;

/// Number of bit planes needed for values in [0, K). K >= 2.
inline unsigned digit_plane_count(std::uint32_t K) {
  SSR_REQUIRE(K >= 2, "digit planes need a modulus of at least 2");
  return static_cast<unsigned>(std::bit_width(K - 1));
}

/// In-place 64x64 bit-matrix transpose (Hacker's Delight §7-3, oriented so
/// bit position == column index): after the call, bit r of a[c] equals the
/// old bit c of a[r]. Wider lane words transpose one 64-lane limb group at
/// a time through this same routine.
inline void transpose64(std::uint64_t a[64]) {
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (unsigned j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (unsigned k = 0; k < 64; k = ((k | j) + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k | j]) & m;
      a[k] ^= t << j;
      a[k | j] ^= t;
    }
  }
}

/// A lane word of 64 * NW lanes: a plain limb array with bitwise operators.
/// Limb g covers lanes [64g, 64g + 64). The alignment matches the natural
/// vector register width so the auto-vectorized limb loops load aligned.
template <std::size_t NW>
struct alignas(8 * NW) WideWord {
  static_assert(NW >= 2 && (NW & (NW - 1)) == 0,
                "WideWord limb count must be a power of two >= 2");
  std::uint64_t limb[NW];

  friend WideWord operator&(WideWord a, const WideWord& b) {
    for (std::size_t g = 0; g < NW; ++g) a.limb[g] &= b.limb[g];
    return a;
  }
  friend WideWord operator|(WideWord a, const WideWord& b) {
    for (std::size_t g = 0; g < NW; ++g) a.limb[g] |= b.limb[g];
    return a;
  }
  friend WideWord operator^(WideWord a, const WideWord& b) {
    for (std::size_t g = 0; g < NW; ++g) a.limb[g] ^= b.limb[g];
    return a;
  }
  WideWord operator~() const {
    WideWord r;
    for (std::size_t g = 0; g < NW; ++g) r.limb[g] = ~limb[g];
    return r;
  }
  WideWord& operator&=(const WideWord& b) {
    for (std::size_t g = 0; g < NW; ++g) limb[g] &= b.limb[g];
    return *this;
  }
  WideWord& operator|=(const WideWord& b) {
    for (std::size_t g = 0; g < NW; ++g) limb[g] |= b.limb[g];
    return *this;
  }
  WideWord& operator^=(const WideWord& b) {
    for (std::size_t g = 0; g < NW; ++g) limb[g] ^= b.limb[g];
    return *this;
  }
  friend bool operator==(const WideWord&, const WideWord&) = default;
};

using Lane256 = WideWord<4>;
using Lane512 = WideWord<8>;

/// Uniform lane access over the lane-word types. Everything the sliced
/// kernels need beyond the bitwise operators lives here, so generic code
/// never branches on the concrete word type.
template <typename W>
struct LaneTraits;

template <>
struct LaneTraits<std::uint64_t> {
  using Word = std::uint64_t;
  static constexpr unsigned kLanes = 64;
  static constexpr unsigned kLimbs = 1;

  static constexpr Word zero() { return 0; }
  static constexpr Word ones() { return ~0ULL; }
  static constexpr bool any(Word w) { return w != 0; }
  static constexpr bool test(Word w, unsigned lane) {
    return (w >> lane) & 1u;
  }
  static constexpr Word lane_bit(unsigned lane) { return 1ULL << lane; }
  static constexpr void set(Word& w, unsigned lane) { w |= 1ULL << lane; }
  /// Mask of lanes [lo, hi). Both bounds saturate at 64, so an empty
  /// window at the very end (lo == hi == 64) is a valid empty mask rather
  /// than a shift-by-width.
  static constexpr Word range_mask(unsigned lo, unsigned hi) {
    const Word upto = hi >= 64 ? ~0ULL : (1ULL << hi) - 1;
    const Word below = lo >= 64 ? ~0ULL : (1ULL << lo) - 1;
    return upto & ~below;
  }
  static constexpr unsigned popcount(Word w) {
    return static_cast<unsigned>(std::popcount(w));
  }
  static constexpr std::uint64_t limb(Word w, unsigned) { return w; }
  static constexpr void set_limb(Word& w, unsigned, std::uint64_t v) { w = v; }
  template <typename Fn>
  static void for_each_lane(Word w, Fn&& fn) {
    while (w != 0) {
      fn(static_cast<unsigned>(std::countr_zero(w)));
      w &= w - 1;
    }
  }
};

template <std::size_t NW>
struct LaneTraits<WideWord<NW>> {
  using Word = WideWord<NW>;
  static constexpr unsigned kLanes = 64 * NW;
  static constexpr unsigned kLimbs = NW;

  static constexpr Word zero() { return Word{}; }
  static constexpr Word ones() {
    Word w{};
    for (std::size_t g = 0; g < NW; ++g) w.limb[g] = ~0ULL;
    return w;
  }
  static constexpr bool any(const Word& w) {
    std::uint64_t acc = 0;
    for (std::size_t g = 0; g < NW; ++g) acc |= w.limb[g];
    return acc != 0;
  }
  static constexpr bool test(const Word& w, unsigned lane) {
    return (w.limb[lane / 64] >> (lane % 64)) & 1u;
  }
  static constexpr Word lane_bit(unsigned lane) {
    Word w{};
    w.limb[lane / 64] = 1ULL << (lane % 64);
    return w;
  }
  static constexpr void set(Word& w, unsigned lane) {
    w.limb[lane / 64] |= 1ULL << (lane % 64);
  }
  /// Mask of lanes [lo, hi).
  static constexpr Word range_mask(unsigned lo, unsigned hi) {
    Word w{};
    for (unsigned g = 0; g < NW; ++g) {
      const unsigned base = g * 64;
      const unsigned a = lo > base ? lo - base : 0;
      const unsigned b = hi > base ? hi - base : 0;
      if (a >= 64 || b == 0) continue;
      w.limb[g] = LaneTraits<std::uint64_t>::range_mask(a, b > 64 ? 64 : b);
    }
    return w;
  }
  static constexpr unsigned popcount(const Word& w) {
    unsigned c = 0;
    for (std::size_t g = 0; g < NW; ++g) {
      c += static_cast<unsigned>(std::popcount(w.limb[g]));
    }
    return c;
  }
  static constexpr std::uint64_t limb(const Word& w, unsigned g) {
    return w.limb[g];
  }
  static constexpr void set_limb(Word& w, unsigned g, std::uint64_t v) {
    w.limb[g] = v;
  }
  template <typename Fn>
  static void for_each_lane(const Word& w, Fn&& fn) {
    for (std::size_t g = 0; g < NW; ++g) {
      std::uint64_t bits = w.limb[g];
      const unsigned base = static_cast<unsigned>(g) * 64;
      while (bits != 0) {
        fn(base + static_cast<unsigned>(std::countr_zero(bits)));
        bits &= bits - 1;
      }
    }
  }
};

/// Lanewise inequality of two d-plane digits: lane l of the result is set
/// iff lane l's values differ.
template <typename W>
inline W digit_neq(const W* a, const W* b, unsigned d) {
  W neq = LaneTraits<W>::zero();
  for (unsigned bit = 0; bit < d; ++bit) neq |= a[bit] ^ b[bit];
  return neq;
}

/// Lanewise (x + 1) mod K into out[0..d). Inputs must hold values < K;
/// handles both the x+1 == K wrap and the K == 2^d carry-out case (there
/// the +1 overflows the d planes and the all-ones carry word is the only
/// wrap witness, since K mod 2^d == 0 makes the neq_k compare vacuous for
/// the overflowed lanes).
template <typename W>
inline void digit_inc_mod(const W* x, W* out, unsigned d, std::uint32_t K) {
  using T = LaneTraits<W>;
  W carry = T::ones();
  for (unsigned bit = 0; bit < d; ++bit) {
    out[bit] = x[bit] ^ carry;
    carry &= x[bit];
  }
  W neq_k = T::zero();
  for (unsigned bit = 0; bit < d; ++bit) {
    neq_k |= (K >> bit) & 1u ? ~out[bit] : out[bit];
  }
  const W wrap = carry | ~neq_k;
  for (unsigned bit = 0; bit < d; ++bit) out[bit] &= ~wrap;
}

/// dst = (dst & ~mask) | (src & mask), plane by plane.
template <typename W>
inline void digit_copy_masked(W* dst, const W* src, unsigned d,
                              const W& mask) {
  for (unsigned bit = 0; bit < d; ++bit) {
    dst[bit] = (dst[bit] & ~mask) | (src[bit] & mask);
  }
}

/// dst = (dst & ~mask) | (value broadcast & mask): writes one constant
/// digit into every masked lane. The bulk form the run-decomposed fills
/// (batch refill, sliced Phase A) use.
template <typename W>
inline void digit_fill_masked(W* dst, std::uint32_t value, unsigned d,
                              const W& mask) {
  for (unsigned bit = 0; bit < d; ++bit) {
    dst[bit] = (value >> bit) & 1u ? (dst[bit] | mask) : (dst[bit] & ~mask);
  }
}

/// Writes lane `lane` of a d-plane digit.
template <typename W>
inline void digit_set_lane(W* x, unsigned d, unsigned lane,
                           std::uint32_t value) {
  using T = LaneTraits<W>;
  const unsigned g = lane / 64;
  const std::uint64_t bit = 1ULL << (lane % 64);
  for (unsigned b = 0; b < d; ++b) {
    std::uint64_t w = T::limb(x[b], g);
    w = (value >> b) & 1u ? (w | bit) : (w & ~bit);
    T::set_limb(x[b], g, w);
  }
}

/// Reads lane `lane` of a d-plane digit.
template <typename W>
inline std::uint32_t digit_get_lane(const W* x, unsigned d, unsigned lane) {
  using T = LaneTraits<W>;
  const unsigned g = lane / 64;
  const unsigned b0 = lane % 64;
  std::uint32_t value = 0;
  for (unsigned b = 0; b < d; ++b) {
    value |= static_cast<std::uint32_t>((T::limb(x[b], g) >> b0) & 1u) << b;
  }
  return value;
}

/// The shared Dijkstra-digit portion of the sliced kernels: the x counter
/// of every process as bit planes, its lanewise x_i != x_{i-1} words, the
/// masked command application (P_0 increments its predecessor's value mod
/// K, everyone else copies it), and the lanewise "legitimate step shape"
/// predicate over the x-part.
template <typename W>
class BasicSlicedDigits {
 public:
  using Word = W;
  using Traits = LaneTraits<W>;

  BasicSlicedDigits(std::size_t n, std::uint32_t K)
      : n_(n),
        k_(K),
        d_(digit_plane_count(K)),
        x_(n * d_, Traits::zero()),
        neq_(n, Traits::zero()) {
    SSR_REQUIRE(n >= 2, "sliced digit ring needs at least two processes");
    // The rolling-save scratch in apply_command/step_shape is sized for
    // kMaxDigitPlanes planes; a u32 modulus can never need more, but keep
    // the bound checked rather than silently assumed.
    SSR_REQUIRE(d_ <= kMaxDigitPlanes,
                "digit planes exceed the fixed scratch bound");
    // All-zero planes are a valid configuration (every lane x = 0), so
    // unloaded lanes always hold in-range values.
    for (std::size_t i = 0; i < n_; ++i) update_neq(i);
  }

  std::size_t size() const { return n_; }
  std::uint32_t modulus() const { return k_; }
  unsigned digits() const { return d_; }

  const W* digit(std::size_t i) const { return &x_[i * d_]; }

  void set_lane(std::size_t i, unsigned lane, std::uint32_t value) {
    SSR_REQUIRE(value < k_, "digit value out of range for modulus K");
    digit_set_lane(&x_[i * d_], d_, lane, value);
  }

  std::uint32_t get_lane(std::size_t i, unsigned lane) const {
    return digit_get_lane(&x_[i * d_], d_, lane);
  }

  /// Writes one constant value into every masked lane of process i's digit
  /// in a single plane pass (the bulk form of set_lane for run-decomposed
  /// fills). Does NOT refresh neq; the caller repairs the dirtied entries.
  void set_lanes_masked(std::size_t i, const W& mask, std::uint32_t value) {
    SSR_REQUIRE(value < k_, "digit value out of range for modulus K");
    digit_fill_masked(&x_[i * d_], value, d_, mask);
  }

  /// Lanewise x_i != x_{i-1} (the raw material of G_i). neq(0) compares
  /// against x_{n-1}.
  const W& neq(std::size_t i) const { return neq_[i]; }

  /// Recomputes neq(i) from the current planes.
  void update_neq(std::size_t i) {
    const std::size_t p = i == 0 ? n_ - 1 : i - 1;
    neq_[i] = digit_neq(&x_[i * d_], &x_[p * d_], d_);
  }

  /// Applies C_i under the per-process lane masks `mx` (n words): in every
  /// masked lane, P_0 takes (old x_{n-1} + 1) mod K and P_i (i > 0) copies
  /// old x_{i-1}. Reads are pre-step: a single rolling saved digit carries
  /// each overwritten predecessor to its successor. Does NOT refresh neq;
  /// the caller repairs the dirtied entries.
  void apply_command(const W* mx) {
    W saved[kMaxDigitPlanes];
    W inc[kMaxDigitPlanes];
    bool saved_is_pred = false;  // saved[] holds the pre-step x_{i-1}
    for (std::size_t i = 0; i < n_; ++i) {
      W* self = &x_[i * d_];
      // P_{i+1} reads the pre-step x_i; stash it before overwriting. P_0
      // never needs a stash for x_{n-1}: it is processed first, and x_{n-1}
      // is written last.
      const bool succ_needs_old = i + 1 < n_ && Traits::any(mx[i + 1]);
      if (Traits::any(mx[i])) {
        const W* pred = i == 0 ? &x_[(n_ - 1) * d_]
                               : (saved_is_pred ? saved : &x_[(i - 1) * d_]);
        if (succ_needs_old) {
          for (unsigned b = 0; b < d_; ++b) inc[b] = self[b];
        }
        if (i == 0) {
          W bumped[kMaxDigitPlanes];
          digit_inc_mod(pred, bumped, d_, k_);
          digit_copy_masked(self, bumped, d_, mx[i]);
        } else {
          digit_copy_masked(self, pred, d_, mx[i]);
        }
        if (succ_needs_old) {
          for (unsigned b = 0; b < d_; ++b) saved[b] = inc[b];
          saved_is_pred = true;
          continue;
        }
      } else if (succ_needs_old) {
        for (unsigned b = 0; b < d_; ++b) saved[b] = self[b];
        saved_is_pred = true;
        continue;
      }
      saved_is_pred = false;
    }
  }

  /// Restricted to the candidate lanes, which of them have an x-part of
  /// the legitimate step shape: every boundary with x_i != x_{i-1} at
  /// i >= 1 must satisfy x_{i-1} == (x_i + 1) mod K. Combined with
  /// "exactly one guard" this is exactly Dijkstra legitimacy (all equal,
  /// or one +1-step with the token at the unique mismatch / at P_0).
  /// Requires neq to be current.
  W step_shape(const W& candidates) const {
    W ok = candidates;
    W inc[kMaxDigitPlanes];
    for (std::size_t i = 1; i < n_ && Traits::any(ok); ++i) {
      const W need = neq_[i] & ok;
      if (!Traits::any(need)) continue;
      digit_inc_mod(&x_[i * d_], inc, d_, k_);
      const W bad = digit_neq(&x_[(i - 1) * d_], inc, d_);
      ok &= ~(need & bad);
    }
    return ok;
  }

 private:
  std::size_t n_;
  std::uint32_t k_;
  unsigned d_;
  std::vector<W> x_;    // process-major: x_[i * d_ + bit]
  std::vector<W> neq_;  // lanewise x_i != x_{i-1}
};

/// The classic 64-lane engine everything scalar-u64 keeps using by name.
using SlicedDigits = BasicSlicedDigits<std::uint64_t>;

}  // namespace ssr::util
