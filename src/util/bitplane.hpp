// Bit-plane primitives for the bit-sliced batch kernels.
//
// Layout convention (shared by core::SlicedSsrMin and dijkstra::SlicedKState):
// one u64 word holds one bit of one process across 64 Monte-Carlo lanes
// ("trial-major"); bit `l` of the word belongs to lane `l`. A b-bit per-
// process quantity (the Dijkstra digit) becomes b consecutive plane words
// per process, least-significant bit first. All helpers here are straight-
// line bitwise code over that layout: lanewise compare, lanewise +1 mod K,
// masked plane copy, and the 64x64 transpose that converts the process-major
// enabled planes into per-lane bitmaps for daemon selection.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace ssr::util {

/// Number of bit planes needed for values in [0, K). K >= 2.
inline unsigned digit_plane_count(std::uint32_t K) {
  SSR_REQUIRE(K >= 2, "digit planes need a modulus of at least 2");
  return static_cast<unsigned>(std::bit_width(K - 1));
}

/// In-place 64x64 bit-matrix transpose (Hacker's Delight §7-3, oriented so
/// bit position == column index): after the call, bit r of a[c] equals the
/// old bit c of a[r].
inline void transpose64(std::uint64_t a[64]) {
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (unsigned j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (unsigned k = 0; k < 64; k = ((k | j) + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k | j]) & m;
      a[k] ^= t << j;
      a[k | j] ^= t;
    }
  }
}

/// Lanewise inequality of two d-plane digits: bit l of the result is set
/// iff lane l's values differ.
inline std::uint64_t digit_neq(const std::uint64_t* a, const std::uint64_t* b,
                               unsigned d) {
  std::uint64_t neq = 0;
  for (unsigned bit = 0; bit < d; ++bit) neq |= a[bit] ^ b[bit];
  return neq;
}

/// Lanewise (x + 1) mod K into out[0..d). Inputs must hold values < K;
/// handles both the x+1 == K wrap and the K == 2^d carry-out case.
inline void digit_inc_mod(const std::uint64_t* x, std::uint64_t* out,
                          unsigned d, std::uint32_t K) {
  std::uint64_t carry = ~0ULL;
  for (unsigned bit = 0; bit < d; ++bit) {
    out[bit] = x[bit] ^ carry;
    carry &= x[bit];
  }
  std::uint64_t neq_k = 0;
  for (unsigned bit = 0; bit < d; ++bit) {
    const std::uint64_t k_bit = (K >> bit) & 1u ? ~0ULL : 0ULL;
    neq_k |= out[bit] ^ k_bit;
  }
  const std::uint64_t wrap = carry | ~neq_k;
  for (unsigned bit = 0; bit < d; ++bit) out[bit] &= ~wrap;
}

/// dst = (dst & ~mask) | (src & mask), plane by plane.
inline void digit_copy_masked(std::uint64_t* dst, const std::uint64_t* src,
                              unsigned d, std::uint64_t mask) {
  for (unsigned bit = 0; bit < d; ++bit) {
    dst[bit] = (dst[bit] & ~mask) | (src[bit] & mask);
  }
}

/// Writes lane `lane` of a d-plane digit.
inline void digit_set_lane(std::uint64_t* x, unsigned d, unsigned lane,
                           std::uint32_t value) {
  const std::uint64_t bit = 1ULL << lane;
  for (unsigned b = 0; b < d; ++b) {
    x[b] = (value >> b) & 1u ? (x[b] | bit) : (x[b] & ~bit);
  }
}

/// Reads lane `lane` of a d-plane digit.
inline std::uint32_t digit_get_lane(const std::uint64_t* x, unsigned d,
                                    unsigned lane) {
  std::uint32_t value = 0;
  for (unsigned b = 0; b < d; ++b) {
    value |= static_cast<std::uint32_t>((x[b] >> lane) & 1u) << b;
  }
  return value;
}

/// The shared Dijkstra-digit portion of the sliced kernels: the x counter
/// of every process as bit planes, its lanewise x_i != x_{i-1} words, the
/// masked command application (P_0 increments its predecessor's value mod
/// K, everyone else copies it), and the lanewise "legitimate step shape"
/// predicate over the x-part.
class SlicedDigits {
 public:
  SlicedDigits(std::size_t n, std::uint32_t K)
      : n_(n), k_(K), d_(digit_plane_count(K)), x_(n * d_, 0), neq_(n, 0) {
    SSR_REQUIRE(n >= 2, "sliced digit ring needs at least two processes");
    // All-zero planes are a valid configuration (every lane x = 0), so
    // unloaded lanes always hold in-range values.
    for (std::size_t i = 0; i < n_; ++i) update_neq(i);
  }

  std::size_t size() const { return n_; }
  std::uint32_t modulus() const { return k_; }
  unsigned digits() const { return d_; }

  const std::uint64_t* digit(std::size_t i) const { return &x_[i * d_]; }

  void set_lane(std::size_t i, unsigned lane, std::uint32_t value) {
    SSR_REQUIRE(value < k_, "digit value out of range for modulus K");
    digit_set_lane(&x_[i * d_], d_, lane, value);
  }

  std::uint32_t get_lane(std::size_t i, unsigned lane) const {
    return digit_get_lane(&x_[i * d_], d_, lane);
  }

  /// Lanewise x_i != x_{i-1} (the raw material of G_i). neq(0) compares
  /// against x_{n-1}.
  std::uint64_t neq(std::size_t i) const { return neq_[i]; }

  /// Recomputes neq(i) from the current planes.
  void update_neq(std::size_t i) {
    const std::size_t p = i == 0 ? n_ - 1 : i - 1;
    neq_[i] = digit_neq(&x_[i * d_], &x_[p * d_], d_);
  }

  /// Applies C_i under the per-process lane masks `mx` (n words): in every
  /// masked lane, P_0 takes (old x_{n-1} + 1) mod K and P_i (i > 0) copies
  /// old x_{i-1}. Reads are pre-step: a single rolling saved digit carries
  /// each overwritten predecessor to its successor. Does NOT refresh neq;
  /// the caller repairs the dirtied entries.
  void apply_command(const std::uint64_t* mx) {
    std::uint64_t saved[32];
    std::uint64_t inc[32];
    bool saved_is_pred = false;  // saved[] holds the pre-step x_{i-1}
    for (std::size_t i = 0; i < n_; ++i) {
      std::uint64_t* self = &x_[i * d_];
      // P_{i+1} reads the pre-step x_i; stash it before overwriting. P_0
      // never needs a stash for x_{n-1}: it is processed first, and x_{n-1}
      // is written last.
      const bool succ_needs_old = i + 1 < n_ && mx[i + 1] != 0;
      if (mx[i] != 0) {
        const std::uint64_t* pred =
            i == 0 ? &x_[(n_ - 1) * d_]
                   : (saved_is_pred ? saved : &x_[(i - 1) * d_]);
        if (succ_needs_old) {
          for (unsigned b = 0; b < d_; ++b) inc[b] = self[b];
        }
        if (i == 0) {
          std::uint64_t bumped[32];
          digit_inc_mod(pred, bumped, d_, k_);
          digit_copy_masked(self, bumped, d_, mx[i]);
        } else {
          digit_copy_masked(self, pred, d_, mx[i]);
        }
        if (succ_needs_old) {
          for (unsigned b = 0; b < d_; ++b) saved[b] = inc[b];
          saved_is_pred = true;
          continue;
        }
      } else if (succ_needs_old) {
        for (unsigned b = 0; b < d_; ++b) saved[b] = self[b];
        saved_is_pred = true;
        continue;
      }
      saved_is_pred = false;
    }
  }

  /// Restricted to the candidate lanes, which of them have an x-part of
  /// the legitimate step shape: every boundary with x_i != x_{i-1} at
  /// i >= 1 must satisfy x_{i-1} == (x_i + 1) mod K. Combined with
  /// "exactly one guard" this is exactly Dijkstra legitimacy (all equal,
  /// or one +1-step with the token at the unique mismatch / at P_0).
  /// Requires neq to be current.
  std::uint64_t step_shape(std::uint64_t candidates) const {
    std::uint64_t ok = candidates;
    std::uint64_t inc[32];
    for (std::size_t i = 1; i < n_ && ok != 0; ++i) {
      const std::uint64_t need = neq_[i] & ok;
      if (need == 0) continue;
      digit_inc_mod(&x_[i * d_], inc, d_, k_);
      const std::uint64_t bad = digit_neq(&x_[(i - 1) * d_], inc, d_);
      ok &= ~(need & bad);
    }
    return ok;
  }

 private:
  std::size_t n_;
  std::uint32_t k_;
  unsigned d_;
  std::vector<std::uint64_t> x_;    // process-major: x_[i * d_ + bit]
  std::vector<std::uint64_t> neq_;  // lanewise x_i != x_{i-1}
};

}  // namespace ssr::util
