#include "util/lane_backend.hpp"

#include <cstdlib>
#include <string>

namespace ssr::util {
namespace {

bool cpu_supports(LaneBackend backend) {
#if defined(__x86_64__) || defined(__i386__)
  switch (backend) {
    case LaneBackend::kU64:
      return true;
    case LaneBackend::kAvx2:
      return __builtin_cpu_supports("avx2");
    case LaneBackend::kAvx512:
      return __builtin_cpu_supports("avx512f");
  }
  return false;
#else
  return backend == LaneBackend::kU64;
#endif
}

bool compiled_in(LaneBackend backend) {
  switch (backend) {
    case LaneBackend::kU64:
      return true;
    case LaneBackend::kAvx2:
#if defined(SSRING_LANE_AVX2)
      return true;
#else
      return false;
#endif
    case LaneBackend::kAvx512:
#if defined(SSRING_LANE_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

}  // namespace

bool lane_backend_available(LaneBackend backend) {
  return compiled_in(backend) && cpu_supports(backend);
}

LaneBackend detect_lane_backend() {
  LaneBackend cap = LaneBackend::kAvx512;
  if (const char* env = std::getenv("SSRING_LANE_BACKEND")) {
    const std::string want(env);
    if (want == "u64" || want == "scalar") {
      cap = LaneBackend::kU64;
    } else if (want == "avx2") {
      cap = LaneBackend::kAvx2;
    } else if (want == "avx512" || want == "auto" || want.empty()) {
      cap = LaneBackend::kAvx512;
    }
    // Unknown values fall through as "auto": never fail a run over an
    // env-var typo, the dispatch is a performance knob, not a contract.
  }
  if (cap == LaneBackend::kAvx512 && lane_backend_available(LaneBackend::kAvx512)) {
    return LaneBackend::kAvx512;
  }
  if (cap != LaneBackend::kU64 && lane_backend_available(LaneBackend::kAvx2)) {
    return LaneBackend::kAvx2;
  }
  return LaneBackend::kU64;
}

const char* lane_backend_name(LaneBackend backend) {
  switch (backend) {
    case LaneBackend::kU64:
      return "u64";
    case LaneBackend::kAvx2:
      return "avx2";
    case LaneBackend::kAvx512:
      return "avx512";
  }
  return "?";
}

unsigned lane_backend_lanes(LaneBackend backend) {
  switch (backend) {
    case LaneBackend::kU64:
      return 64;
    case LaneBackend::kAvx2:
      return 256;
    case LaneBackend::kAvx512:
      return 512;
  }
  return 64;
}

}  // namespace ssr::util
