#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace ssr {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::merge(const SampleSet& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  // Fold in sorted order so the float sum — and therefore the reported
  // mean — depends only on the sample multiset, not on insertion order.
  ensure_sorted();
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  ensure_sorted();
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  SSR_REQUIRE(!samples_.empty(), "SampleSet::min on empty set");
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  SSR_REQUIRE(!samples_.empty(), "SampleSet::max on empty set");
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::percentile(double q) const {
  SSR_REQUIRE(!samples_.empty(), "SampleSet::percentile on empty set");
  SSR_REQUIRE(q >= 0.0 && q <= 100.0, "percentile must be in [0, 100]");
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double rank = q / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  SSR_REQUIRE(hi > lo, "Histogram range must be nonempty");
  SSR_REQUIRE(buckets > 0, "Histogram needs at least one bucket");
  bucket_width_ = (hi - lo) / static_cast<double>(buckets);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bucket_width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // float edge safety
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const {
  SSR_REQUIRE(i < counts_.size(), "bucket index out of range");
  return lo_ + bucket_width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return bucket_lo(i) + bucket_width_;
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream os;
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = counts_[i] * width / peak;
    os << '[' << bucket_lo(i) << ", " << bucket_hi(i) << ") "
       << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  if (underflow_ != 0) os << "underflow: " << underflow_ << '\n';
  if (overflow_ != 0) os << "overflow: " << overflow_ << '\n';
  return os.str();
}

}  // namespace ssr
