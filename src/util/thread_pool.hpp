// A small reusable pool of persistent workers for data-parallel sweeps.
//
// Built for the exhaustive model checker's sharded configuration sweeps,
// but generic: any index range can be split into dynamically claimed
// chunks (runtime/ can reuse it for batched simulation fan-out). Two
// design points matter for the checker:
//
//  * the calling thread participates as worker 0, so ThreadPool(1) spawns
//    no threads at all and runs everything inline — the sequential path is
//    the one-worker special case of the parallel path, not separate code;
//  * workers are identified by a dense id in [0, size()), so callers can
//    keep per-worker scratch/partial-result slots and merge them in a
//    fixed order afterwards, which is how the checker keeps its reports
//    bit-identical at every thread count.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace ssr::util {

class ThreadPool {
 public:
  /// @param threads total workers including the caller (0 = one per
  /// hardware thread).
  explicit ThreadPool(std::size_t threads = 0) {
    SSR_REQUIRE(threads <= 1024,
                "thread count out of range (wrapped negative value?)");
    const std::size_t n =
        threads != 0 ? threads
                     : std::max<std::size_t>(
                           1, std::thread::hardware_concurrency());
    workers_.reserve(n - 1);
    for (std::size_t id = 1; id < n; ++id) {
      workers_.emplace_back([this, id] { worker_loop(id); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, caller included (>= 1).
  std::size_t size() const { return workers_.size() + 1; }

  /// Invokes task(worker_id) once on every worker — the caller runs as
  /// worker 0 — and blocks until all invocations return. An exception
  /// thrown by any worker is rethrown on the caller (first one wins).
  template <typename Task>
  void run_on_all(Task&& task) {
    if (workers_.empty()) {
      task(std::size_t{0});
      return;
    }
    {
      std::lock_guard lock(mutex_);
      job_ = [&task](std::size_t id) { task(id); };
      ++generation_;
      running_ = workers_.size();
    }
    work_cv_.notify_all();
    try {
      task(std::size_t{0});
    } catch (...) {
      record_error(std::current_exception());
    }
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [this] { return running_ == 0; });
    job_ = nullptr;
    if (error_ != nullptr) {
      std::exception_ptr e = std::exchange(error_, nullptr);
      lock.unlock();
      std::rethrow_exception(e);
    }
  }

  /// Splits [begin, end) into chunks of at most @p chunk indices, claimed
  /// dynamically by the workers, and calls body(worker_id, lo, hi) once
  /// per claimed chunk. Blocks until the whole range is processed.
  template <typename Body>
  void for_chunks(std::uint64_t begin, std::uint64_t end, std::uint64_t chunk,
                  Body&& body) {
    if (begin >= end) return;
    SSR_REQUIRE(chunk > 0, "chunk size must be positive");
    std::atomic<std::uint64_t> next{begin};
    run_on_all([&](std::size_t id) {
      for (;;) {
        const std::uint64_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
        if (lo >= end) break;
        body(id, lo, std::min(lo + chunk, end));
      }
    });
  }

 private:
  void worker_loop(std::size_t id) {
    std::uint64_t seen = 0;
    for (;;) {
      std::function<void(std::size_t)> job;
      {
        std::unique_lock lock(mutex_);
        work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job = job_;
      }
      try {
        job(id);
      } catch (...) {
        record_error(std::current_exception());
      }
      {
        std::lock_guard lock(mutex_);
        if (--running_ == 0) done_cv_.notify_all();
      }
    }
  }

  void record_error(std::exception_ptr e) {
    std::lock_guard lock(mutex_);
    if (error_ == nullptr) error_ = e;
  }

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::function<void(std::size_t)> job_;
  std::uint64_t generation_ = 0;
  std::size_t running_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace ssr::util
