// Internal assertion helpers for the ssring library.
//
// SSR_REQUIRE is used for precondition validation on public API boundaries:
// it throws std::invalid_argument so misuse is reportable and testable.
// SSR_ASSERT is used for internal invariants: it throws std::logic_error,
// which deliberately stays enabled in release builds — this library's whole
// purpose is verifying invariants of a distributed algorithm, so invariant
// checks are part of the product, not debug scaffolding.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ssr {

[[noreturn]] inline void throw_requirement_failure(const char* expr,
                                                   const char* file, int line,
                                                   const std::string& msg) {
  std::ostringstream os;
  os << "requirement violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_invariant_failure(const char* expr,
                                                 const char* file, int line,
                                                 const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace ssr

#define SSR_REQUIRE(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) ::ssr::throw_requirement_failure(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define SSR_ASSERT(cond, msg)                                           \
  do {                                                                  \
    if (!(cond)) ::ssr::throw_invariant_failure(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
