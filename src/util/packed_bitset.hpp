// Two-level packed bitset for the model checker's huge per-configuration
// flag tables (Lambda membership, the Phase B active set).
//
// Level 0 is a plain u64 word array (1 bit per index). Level 1 is a
// summary bitmap with one bit per level-0 *word*, so one summary word
// covers 64 * 64 = 4096 indices — `for_each_set` skips empty 4096-index
// blocks with a single load, which is what keeps late reverse-induction
// rounds (a near-empty active set over hundreds of millions of
// configurations) cheap.
//
// Concurrency contract: there are no atomics here. Writers must partition
// the index space so that no two threads touch the same level-0 word —
// the checker guarantees this by aligning its work chunks to kBlockBits
// (4096) indices, which also keeps each summary word single-writer.
// Reads of foreign blocks are only valid after a barrier.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace ssr::util {

class TwoLevelBitset {
 public:
  /// Indices covered by one summary word (64 level-0 words of 64 bits).
  /// Work chunks aligned to this are single-writer at both levels.
  static constexpr std::uint64_t kBlockBits = 64 * 64;

  TwoLevelBitset() = default;
  explicit TwoLevelBitset(std::uint64_t size) { reset(size); }

  void reset(std::uint64_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
    summary_.assign((words_.size() + 63) / 64, 0);
  }

  std::uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Heap bytes held by both levels (memory telemetry).
  std::uint64_t bytes() const {
    return (words_.capacity() + summary_.capacity()) * sizeof(std::uint64_t);
  }

  bool test(std::uint64_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::uint64_t i) {
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
    summary_[i >> 12] |= std::uint64_t{1} << ((i >> 6) & 63);
  }

  /// ORs 64 bits into the level-0 word covering the 64-aligned index
  /// `base`, maintaining the summary — the bulk form of set() the sliced
  /// Phase A uses to install one lane word of legitimacy bits at a time.
  /// Same single-writer contract as set(): the caller owns the word.
  void set_word(std::uint64_t base, std::uint64_t bits) {
    if (bits == 0) return;
    words_[base >> 6] |= bits;
    summary_[base >> 12] |= std::uint64_t{1} << ((base >> 6) & 63);
  }

  /// Reads the level-0 word covering the 64-aligned index `base` (bit l of
  /// the result is index base + l). Valid under the same visibility rules
  /// as test().
  std::uint64_t word(std::uint64_t base) const { return words_[base >> 6]; }

  /// The summary bit is left set (it means "may contain bits");
  /// for_each_set reconciles it once a block drains.
  void clear(std::uint64_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  /// Number of set bits.
  std::uint64_t count() const {
    std::uint64_t c = 0;
    for (std::uint64_t w : words_) {
      c += static_cast<std::uint64_t>(std::popcount(w));
    }
    return c;
  }

  /// Lowest set index, or size() if none.
  std::uint64_t find_first() const {
    for (std::uint64_t s = 0; s < summary_.size(); ++s) {
      if (summary_[s] == 0) continue;
      const std::uint64_t whi = std::min<std::uint64_t>(words_.size(), (s + 1) << 6);
      for (std::uint64_t w = s << 6; w < whi; ++w) {
        if (words_[w] != 0) {
          return w * 64 +
                 static_cast<std::uint64_t>(std::countr_zero(words_[w]));
        }
      }
    }
    return size_;
  }

  /// Invokes fn(index) for every bit set in [lo, hi) at the moment that
  /// bit's word is visited. fn may clear bits (its own index or any index
  /// in the same caller-owned range) but must never set bits; each word is
  /// snapshotted before iterating, so clears take effect from the next
  /// word on. lo/hi should be kBlockBits-aligned for full summary skips
  /// (hi = size() is fine). When a fully-covered summary block scans
  /// empty, its summary bit is cleared, so drained blocks cost O(1) in
  /// later passes.
  template <typename Fn>
  void for_each_set(std::uint64_t lo, std::uint64_t hi, Fn&& fn) {
    hi = std::min(hi, size_);
    if (lo >= hi) return;
    const std::uint64_t wbegin = lo >> 6;
    const std::uint64_t wend = (hi + 63) >> 6;  // exclusive
    for (std::uint64_t s = wbegin >> 6; (s << 6) < wend; ++s) {
      if (summary_[s] == 0) continue;
      const std::uint64_t wlo = std::max(wbegin, s << 6);
      const std::uint64_t whi = std::min(wend, (s + 1) << 6);
      bool any = false;
      for (std::uint64_t w = wlo; w < whi; ++w) {
        std::uint64_t bits = words_[w];
        if (w == wbegin && (lo & 63) != 0) bits &= ~std::uint64_t{0} << (lo & 63);
        if (w == wend - 1 && (hi & 63) != 0) {
          bits &= (std::uint64_t{1} << (hi & 63)) - 1;
        }
        if (bits == 0) continue;
        any = true;
        while (bits != 0) {
          const auto b = static_cast<std::uint64_t>(std::countr_zero(bits));
          bits &= bits - 1;
          fn(w * 64 + b);
        }
      }
      // Safe to reconcile only when this call owned the whole summary
      // block (single-writer contract) and saw it empty.
      const bool whole_block =
          wlo == (s << 6) &&
          whi == std::min<std::uint64_t>(words_.size(), (s + 1) << 6);
      if (!any && whole_block) summary_[s] = 0;
    }
  }

 private:
  std::uint64_t size_ = 0;
  std::vector<std::uint64_t> words_;
  std::vector<std::uint64_t> summary_;
};

}  // namespace ssr::util
