#include "msgpass/factories.hpp"

#include "util/assert.hpp"

namespace ssr::msgpass {

void NetworkParams::validate() const {
  SSR_REQUIRE(delay_min > 0.0, "message delay must be positive");
  SSR_REQUIRE(delay_max >= delay_min, "delay_max must be >= delay_min");
  SSR_REQUIRE(loss_probability >= 0.0 && loss_probability < 1.0,
              "loss probability must be in [0, 1)");
  SSR_REQUIRE(duplicate_probability >= 0.0 && duplicate_probability < 1.0,
              "duplicate probability must be in [0, 1)");
  SSR_REQUIRE(refresh_interval > 0.0, "refresh interval must be positive");
  SSR_REQUIRE(service_min > 0.0, "service time must be positive");
  SSR_REQUIRE(service_max >= service_min, "service_max must be >= service_min");
}

double NetworkParams::draw_delay(Rng& rng) const {
  switch (delay_model) {
    case DelayModel::kUniform:
      return delay_min + rng.uniform01() * (delay_max - delay_min);
    case DelayModel::kExponentialTail: {
      const double spread = delay_max - delay_min;
      // Degenerate spread keeps the model total (fixed delay).
      if (spread <= 0.0) return delay_min;
      return delay_min + rng.exponential(spread);
    }
  }
  SSR_ASSERT(false, "unknown delay model");
}

CstSimulation<core::SsrMinRing> make_ssrmin_cst(const core::SsrMinRing& ring,
                                                core::SsrConfig initial,
                                                NetworkParams params) {
  auto token = [ring](std::size_t i, const core::SsrState& self,
                      const core::SsrState& pred_view,
                      const core::SsrState& succ_view) {
    return ring.holds_primary(i, self, pred_view) ||
           ring.holds_secondary(self, succ_view);
  };
  return CstSimulation<core::SsrMinRing>(ring, std::move(initial),
                                         std::move(token), params);
}

RoundSimulation<core::SsrMinRing> make_ssrmin_rounds(
    const core::SsrMinRing& ring, core::SsrConfig initial,
    RoundParams params) {
  auto token = [ring](std::size_t i, const core::SsrState& self,
                      const core::SsrState& pred_view,
                      const core::SsrState& succ_view) {
    return ring.holds_primary(i, self, pred_view) ||
           ring.holds_secondary(self, succ_view);
  };
  return RoundSimulation<core::SsrMinRing>(ring, std::move(initial),
                                           std::move(token), params);
}

RoundSimulation<dijkstra::KStateRing> make_kstate_rounds(
    const dijkstra::KStateRing& ring, dijkstra::KStateConfig initial,
    RoundParams params) {
  auto token = [ring](std::size_t i, const dijkstra::KStateLocal& self,
                      const dijkstra::KStateLocal& pred_view,
                      const dijkstra::KStateLocal& /*succ_view*/) {
    return ring.holds_token(i, self, pred_view);
  };
  return RoundSimulation<dijkstra::KStateRing>(ring, std::move(initial),
                                               std::move(token), params);
}

CstSimulation<core::SsrMinRing> make_ssrmin_weak_cst(
    const core::SsrMinRing& ring, core::SsrConfig initial,
    NetworkParams params) {
  auto token = [ring](std::size_t i, const core::SsrState& self,
                      const core::SsrState& pred_view,
                      const core::SsrState& /*succ_view*/) {
    return ring.holds_primary(i, self, pred_view) ||
           ring.holds_secondary_weak(self);
  };
  return CstSimulation<core::SsrMinRing>(ring, std::move(initial),
                                         std::move(token), params);
}

CstSimulation<core::SsrMinRing> make_ssrmin_secondary_only_cst(
    const core::SsrMinRing& ring, core::SsrConfig initial,
    NetworkParams params, bool strong_condition) {
  auto token = [ring, strong_condition](std::size_t /*i*/,
                                        const core::SsrState& self,
                                        const core::SsrState& /*pred_view*/,
                                        const core::SsrState& succ_view) {
    return strong_condition ? ring.holds_secondary(self, succ_view)
                            : ring.holds_secondary_weak(self);
  };
  return CstSimulation<core::SsrMinRing>(ring, std::move(initial),
                                         std::move(token), params);
}

CstSimulation<dijkstra::KStateRing> make_kstate_cst(
    const dijkstra::KStateRing& ring, dijkstra::KStateConfig initial,
    NetworkParams params) {
  auto token = [ring](std::size_t i, const dijkstra::KStateLocal& self,
                      const dijkstra::KStateLocal& pred_view,
                      const dijkstra::KStateLocal& /*succ_view*/) {
    return ring.holds_token(i, self, pred_view);
  };
  return CstSimulation<dijkstra::KStateRing>(ring, std::move(initial),
                                             std::move(token), params);
}

CstSimulation<dijkstra::DualKStateRing> make_dual_cst(
    const dijkstra::DualKStateRing& ring, dijkstra::DualConfig initial,
    NetworkParams params) {
  auto token = [ring](std::size_t i, const dijkstra::DualLocal& self,
                      const dijkstra::DualLocal& pred_view,
                      const dijkstra::DualLocal& /*succ_view*/) {
    return ring.holds_token(i, self, pred_view);
  };
  return CstSimulation<dijkstra::DualKStateRing>(ring, std::move(initial),
                                                 std::move(token), params);
}

}  // namespace ssr::msgpass
