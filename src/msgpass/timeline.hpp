// ASCII token-timeline renderer — the visual reproduction of the paper's
// Figures 11-13. One row per node, one character column per time slice:
// '#' while the node holds a token (by its local view), '.' while it does
// not; a summary row marks slices with zero holders with '!' (the paper's
// "no token" windows) and with '2' where two nodes hold tokens.
//
// Wire a TimelineRecorder to CstSimulation::set_observer and render after
// the run.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "msgpass/cst.hpp"
#include "util/assert.hpp"

namespace ssr::msgpass {

class TimelineRecorder {
 public:
  /// @param nodes       ring size (rows)
  /// @param resolution  simulated-time width of one character column
  /// @param start       simulated time of the first column
  TimelineRecorder(std::size_t nodes, double resolution, Time start = 0.0)
      : nodes_(nodes), resolution_(resolution), start_(start) {
    SSR_REQUIRE(nodes > 0, "timeline needs at least one node");
    SSR_REQUIRE(resolution > 0.0, "resolution must be positive");
  }

  /// Observer hook: the holder set @p holders was in force on [from, to).
  /// Columns are sampled at their left edge.
  void record(Time from, Time to, const std::vector<bool>& holders) {
    SSR_REQUIRE(holders.size() == nodes_, "holder vector size mismatch");
    if (to <= start_) return;
    // First column whose left edge is >= max(from, start_).
    const double lo = std::max(from, start_);
    auto col = static_cast<std::size_t>((lo - start_) / resolution_);
    // Snap up to the first edge inside the interval.
    while (start_ + static_cast<double>(col) * resolution_ < lo) ++col;
    for (; start_ + static_cast<double>(col) * resolution_ < to; ++col) {
      ensure_column(col);
      for (std::size_t i = 0; i < nodes_; ++i) {
        columns_[col][i] = holders[i];
      }
    }
  }

  /// Binds this recorder to a simulation as its interval observer.
  template <typename Protocol>
  void attach(CstSimulation<Protocol>& sim) {
    sim.set_observer([this](Time from, Time to,
                            const std::vector<bool>& holders) {
      record(from, to, holders);
    });
  }

  std::size_t column_count() const { return columns_.size(); }

  /// Renders at most @p max_cols columns (truncating on the right), e.g.
  ///
  ///   v0 |###....#######..
  ///   v1 |...####.........
  ///   any|###!###########!   ('!' = zero-token instant, '2' = two holders)
  std::string render(std::size_t max_cols = 100) const {
    const std::size_t cols = std::min(columns_.size(), max_cols);
    std::string out;
    for (std::size_t i = 0; i < nodes_; ++i) {
      out += "v" + std::to_string(i);
      out.append(i < 10 ? 2 : 1, ' ');
      out += '|';
      for (std::size_t c = 0; c < cols; ++c) {
        out += columns_[c][i] ? '#' : '.';
      }
      out += '\n';
    }
    out += "any |";
    for (std::size_t c = 0; c < cols; ++c) {
      std::size_t holders = 0;
      for (std::size_t i = 0; i < nodes_; ++i) {
        if (columns_[c][i]) ++holders;
      }
      out += holders == 0 ? '!' : (holders >= 2 ? '2' : '#');
    }
    out += '\n';
    return out;
  }

  /// Fraction of recorded columns with zero holders.
  double zero_fraction() const {
    if (columns_.empty()) return 0.0;
    std::size_t zeros = 0;
    for (const auto& col : columns_) {
      bool any = false;
      for (bool b : col) any = any || b;
      if (!any) ++zeros;
    }
    return static_cast<double>(zeros) / static_cast<double>(columns_.size());
  }

 private:
  void ensure_column(std::size_t col) {
    if (col >= columns_.size()) {
      columns_.resize(col + 1, std::vector<bool>(nodes_, false));
    }
  }

  std::size_t nodes_;
  double resolution_;
  Time start_;
  std::vector<std::vector<bool>> columns_;
};

}  // namespace ssr::msgpass
