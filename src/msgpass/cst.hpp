// Message-passing execution via the cached sensornet transform (CST,
// paper Algorithm 4, after Herman 2003) on a discrete-event network
// simulator.
//
// Each node v_i runs the untouched state-reading protocol against a local
// *cache* Z_i[v_k] of each neighbor's state. Whenever v_i receives a
// neighbor's state it updates the cache, executes (at most) one enabled
// rule, and broadcasts its own state to both neighbors; a periodic timer
// also rebroadcasts the state so lost messages are eventually repaired.
//
// The network model follows paper §5 ¶1: each directed link carries at most
// one message at a time. A send onto a busy link parks the *latest* state
// as pending and transmits it the moment the link frees (a node
// broadcasting its current state never needs to queue more than the newest
// value). Message loss (for Lemma 9 / Theorem 4) is decided per
// transmission with a uniform probability; a lost message still occupies
// the link for its transit time.
//
// Token accounting is the heart of the model-gap experiments (Figs. 11-13,
// Theorem 3): a node holds a token according to the protocol's token
// predicate evaluated on its *local view* (own state + caches), because
// that is the information an implementation would use to decide whether it
// may be active. The simulation integrates, over simulated time, how long
// the system spends with zero / one / two token holders.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "runtime/fault_plan.hpp"
#include "stabilizing/protocol.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ssr::msgpass {

/// Simulated time, in abstract ticks.
using Time = double;

/// Shape of the per-message transit delay distribution.
enum class DelayModel : std::uint8_t {
  /// Uniform in [delay_min, delay_max] — bounded, the regime Theorem 3's
  /// proof describes.
  kUniform,
  /// delay_min + Exponential(mean = (delay_max - delay_min)) — unbounded
  /// tail. Used to probe the freshness boundary of the graceful-handover
  /// guarantee (finding F1 / experiment E22): a single message outliving a
  /// whole handshake cycle lets a stale acknowledgment trigger Rule 2
  /// early.
  kExponentialTail,
};

/// Tunable network parameters.
struct NetworkParams {
  /// Per-message transit delay (see DelayModel).
  double delay_min = 0.5;
  double delay_max = 1.5;
  DelayModel delay_model = DelayModel::kUniform;
  /// Probability that any single transmission is lost.
  double loss_probability = 0.0;
  /// Probability that a delivered message is delivered a second time after
  /// an extra transit delay (the duplication fault of paper §2.2; state
  /// messages are idempotent, so duplication must be harmless).
  double duplicate_probability = 0.0;
  /// Period of the CST refresh timer (Algorithm 4 line 11).
  double refresh_interval = 8.0;
  /// Critical-section service time: once a rule becomes enabled, the node
  /// executes it after a uniform delay in [service_min, service_max]. This
  /// is the time a privileged node actually spends doing its privileged
  /// work (monitoring, in the camera application) before moving on — with
  /// instantaneous execution a Dijkstra token would be held for zero
  /// simulated time and coverage comparisons would be meaningless.
  double service_min = 0.5;
  double service_max = 1.0;
  /// RNG seed for delays, losses and timer jitter.
  std::uint64_t seed = 1;
  /// Shared fault schedule (runtime/fault_plan.hpp). An empty plan is
  /// completely inert: it consumes no RNG draws, so seeded runs reproduce
  /// the pre-fault-plan trajectories bit for bit. Window drops count as
  /// losses; corruption behind a checksum is loss (Lemma 9), so corrupt
  /// frames are marked lost too.
  runtime::FaultPlan fault_plan;
  /// Scale between the simulator's abstract ticks and the fault clock /
  /// telemetry microseconds (window times, exported timestamps).
  double microseconds_per_tick = 1000.0;

  void validate() const;

  /// Draws one transit delay according to the configured model.
  double draw_delay(Rng& rng) const;
};

/// Aggregate results of a simulation window.
struct CoverageStats {
  Time observed_time = 0.0;     ///< simulated time integrated
  Time zero_token_time = 0.0;   ///< time with no token-holding node
  std::size_t zero_intervals = 0;  ///< maximal intervals with zero holders
  std::size_t min_holders = std::numeric_limits<std::size_t>::max();
  std::size_t max_holders = 0;
  std::uint64_t events = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t transmissions = 0;  ///< sends that entered a link
  std::uint64_t losses = 0;         ///< random + window-dropped + corrupted
  std::uint64_t rule_executions = 0;
  std::uint64_t crash_restarts = 0;
  /// Number of times the set of token-holding nodes changed.
  std::uint64_t handovers = 0;

  /// Fraction of observed time with at least one holder (the paper's
  /// continuous-observation guarantee).
  double coverage() const {
    return observed_time > 0.0 ? 1.0 - zero_token_time / observed_time : 1.0;
  }
};

/// CST execution of a RingProtocol over the event-driven network.
template <stab::RingProtocol P>
class CstSimulation {
 public:
  using State = typename P::State;
  using Config = std::vector<State>;
  /// Token predicate on a node's local view: (i, self, pred_view,
  /// succ_view) -> holds a token.
  using TokenFn =
      std::function<bool(std::size_t, const State&, const State&, const State&)>;

  CstSimulation(P protocol, Config initial, TokenFn token, NetworkParams params)
      : protocol_(std::move(protocol)),
        params_(params),
        token_(std::move(token)),
        rng_(params.seed),
        states_(std::move(initial)),
        caches_(states_.size()),
        links_(states_.size()),
        exec_pending_(states_.size(), 0),
        injector_(params_.fault_plan, states_.size() >= 2 ? states_.size() : 2),
        has_plan_(!params_.fault_plan.empty()),
        has_windows_(!params_.fault_plan.windows.empty()) {
    params_.validate();
    SSR_REQUIRE(states_.size() == protocol_.size(),
                "configuration size must equal ring size");
    SSR_REQUIRE(states_.size() >= 2, "ring needs at least two processes");
    make_caches_coherent();
    schedule_initial_timers();
    for (std::size_t i = 0; i < states_.size(); ++i)
      maybe_schedule_execution(i);
    holders_ = compute_holders();
    holder_count_ = count_holders(holders_);
  }

  std::size_t size() const { return states_.size(); }
  Time now() const { return now_; }
  /// Current simulated time on the fault/telemetry clock (microseconds).
  double fault_clock_us() const { return now_ * params_.microseconds_per_tick; }
  const P& protocol() const { return protocol_; }

  /// True state of node i (omniscient view).
  const State& node_state(std::size_t i) const { return states_.at(i); }

  /// Node i's cached view of its predecessor / successor.
  const State& cache_pred(std::size_t i) const { return caches_.at(i).pred; }
  const State& cache_succ(std::size_t i) const { return caches_.at(i).succ; }

  Config global_config() const { return states_; }

  /// Definition 2: every cache equals the neighbor's current state.
  bool coherent() const {
    const std::size_t n = states_.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (!(caches_[i].pred == states_[stab::pred_index(i, n)])) return false;
      if (!(caches_[i].succ == states_[stab::succ_index(i, n)])) return false;
    }
    return true;
  }

  /// Resets every cache to the neighbor's true state (the "legitimate
  /// configuration with cache-coherence" hypothesis of Theorem 3).
  void make_caches_coherent() {
    const std::size_t n = states_.size();
    for (std::size_t i = 0; i < n; ++i) {
      caches_[i].pred = states_[stab::pred_index(i, n)];
      caches_[i].succ = states_[stab::succ_index(i, n)];
    }
  }

  /// Fills every cache with an arbitrary state produced by @p gen (the
  /// "arbitrary cache values" hypothesis of Lemma 9 — bad incoherence).
  void randomize_caches(const std::function<State(Rng&)>& gen) {
    for (auto& c : caches_) {
      c.pred = gen(rng_);
      c.succ = gen(rng_);
    }
    holders_ = compute_holders();
    holder_count_ = count_holders(holders_);
  }

  /// Per-node token holding, each node judging from its local view.
  std::vector<bool> token_view() const { return compute_holders(); }
  std::size_t holder_count() const { return holder_count_; }

  /// Observer invoked once per inter-event interval [from, to) with the
  /// holder set that was in force throughout it. Gives application layers
  /// (e.g. the camera-energy model) an exact time integration of who was
  /// active when.
  using IntervalObserver =
      std::function<void(Time from, Time to, const std::vector<bool>& holders)>;
  void set_observer(IntervalObserver observer) {
    observer_ = std::move(observer);
  }

  /// Runs until simulated time advances by @p duration, accumulating
  /// coverage statistics for the window.
  CoverageStats run(Time duration) {
    return run_impl(now_ + duration, [](const CstSimulation&) { return false; });
  }

  /// Runs until @p stop(*this) holds (checked after every event) or the
  /// deadline passes. Returns the stats; stopped_early tells which.
  template <typename StopFn>
  CoverageStats run_until(StopFn&& stop, Time deadline, bool* stopped_early) {
    CoverageStats s = run_impl(deadline, std::forward<StopFn>(stop));
    if (stopped_early != nullptr) *stopped_early = stopped_;
    return s;
  }

 private:
  struct Caches {
    State pred{};
    State succ{};
  };

  /// Direction of an outgoing link.
  enum class Dir : std::uint8_t { kToPred = 0, kToSucc = 1 };

  struct Link {
    bool busy = false;
    std::optional<State> pending;  ///< newest state waiting for the link
  };

  struct Event {
    Time time = 0.0;
    std::uint64_t seq = 0;  ///< FIFO tie-break for equal times
    enum class Kind : std::uint8_t { kDelivery, kTimer, kExecute } kind =
        Kind::kTimer;
    std::size_t node = 0;  ///< receiver (delivery) or owner (timer)
    std::size_t sender = 0;
    Dir dir = Dir::kToPred;  ///< direction the message travelled
    State payload{};
    bool lost = false;
    bool duplicate = false;
    bool force_duplicate = false;  ///< injector-scripted duplication

    friend bool operator>(const Event& a, const Event& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::size_t neighbor(std::size_t i, Dir d) const {
    const std::size_t n = states_.size();
    return d == Dir::kToPred ? stab::pred_index(i, n) : stab::succ_index(i, n);
  }

  Link& link(std::size_t i, Dir d) {
    return links_[i][static_cast<std::size_t>(d)];
  }

  void schedule_initial_timers() {
    for (std::size_t i = 0; i < states_.size(); ++i) {
      push_timer(i, rng_.uniform01() * params_.refresh_interval);
    }
  }

  void push_timer(std::size_t i, Time at) {
    Event e;
    e.time = at;
    e.seq = next_seq_++;
    e.kind = Event::Kind::kTimer;
    e.node = i;
    queue_.push(std::move(e));
  }

  /// Starts a transmission of node i's current state along direction d, or
  /// parks it as pending if the link is occupied (overwriting any older
  /// pending value — only the newest state matters).
  void send(std::size_t i, Dir d) {
    Link& l = link(i, d);
    if (l.busy) {
      l.pending = states_[i];
      return;
    }
    transmit(i, d, states_[i]);
  }

  void transmit(std::size_t i, Dir d, const State& payload) {
    Link& l = link(i, d);
    l.busy = true;
    ++transmissions_;
    Event e;
    double delay = params_.draw_delay(rng_);
    e.seq = next_seq_++;
    e.kind = Event::Kind::kDelivery;
    e.node = neighbor(i, d);
    e.sender = i;
    e.dir = d;
    e.payload = payload;
    e.lost = rng_.bernoulli(params_.loss_probability);
    if (has_plan_) {
      // The injector draws in a fixed order (and an inert probability
      // consumes no draws), so the whole trajectory stays a pure function
      // of (seed, plan).
      const runtime::FrameFate fate =
          injector_.on_send(i, e.node, fault_clock_us(), rng_);
      // Corruption behind a checksum is loss (Lemma 9); a window drop
      // still occupies the link for its transit time, like any loss.
      if (fate.drop || fate.corrupt_bits > 0) e.lost = true;
      if (fate.duplicate) e.force_duplicate = true;
      // Reordering on a one-message-at-a-time link = the frame arriving
      // stale: stretch its transit past the frames that overtake it.
      if (fate.reorder) {
        delay += params_.draw_delay(rng_) + params_.draw_delay(rng_);
      }
    }
    e.time = now_ + delay;
    queue_.push(std::move(e));
  }

  /// Algorithm 4 "on receipt": cache update, one rule execution, broadcast.
  void handle_delivery(const Event& e, CoverageStats& stats) {
    ++stats.deliveries;
    if (!e.duplicate) {
      // The transmission completed: free the link and flush any parked
      // state. (A duplicate is a ghost copy; it never occupied the link.)
      Link& l = link(e.sender, e.dir);
      SSR_ASSERT(l.busy, "delivery on an idle link");
      l.busy = false;
      if (l.pending.has_value()) {
        State parked = *l.pending;
        l.pending.reset();
        transmit(e.sender, e.dir, parked);
      }
    }
    if (e.lost) {
      ++stats.losses;
      return;
    }
    // A frame addressed to a scripted-down node was sent before the window
    // opened (frames sent during it are dropped at the sender): the radio
    // is off, so it is lost on arrival.
    if (has_windows_ && injector_.node_down(e.node, fault_clock_us())) {
      ++stats.losses;
      return;
    }
    // Duplication fault: replay this delivery once more after a fresh
    // delay. Duplicates can themselves not duplicate (one replay max).
    if (!e.duplicate && (rng_.bernoulli(params_.duplicate_probability) ||
                         e.force_duplicate)) {
      Event ghost = e;
      ghost.duplicate = true;
      ghost.seq = next_seq_++;
      ghost.time = now_ + params_.draw_delay(rng_);
      queue_.push(std::move(ghost));
    }
    const std::size_t i = e.node;
    // The message came from our predecessor iff the sender sent toward its
    // successor.
    if (e.dir == Dir::kToSucc) {
      caches_[i].pred = e.payload;
    } else {
      caches_[i].succ = e.payload;
    }
    maybe_schedule_execution(i);
    send(i, Dir::kToPred);
    send(i, Dir::kToSucc);
  }

  /// If a rule is enabled at node i and no execution is already pending,
  /// schedule one after the service (critical-section occupancy) delay.
  void maybe_schedule_execution(std::size_t i) {
    if (exec_pending_[i]) return;
    const int rule = protocol_.enabled_rule(i, states_[i], caches_[i].pred,
                                            caches_[i].succ);
    if (rule == stab::kDisabled) return;
    exec_pending_[i] = true;
    const double service =
        params_.service_min +
        rng_.uniform01() * (params_.service_max - params_.service_min);
    Event e;
    e.time = now_ + service;
    e.seq = next_seq_++;
    e.kind = Event::Kind::kExecute;
    e.node = i;
    queue_.push(std::move(e));
  }

  /// The deferred rule execution: re-evaluate against the current caches
  /// (they may have changed during the service window), apply, broadcast,
  /// and re-arm if the node is still enabled.
  void handle_execute(const Event& e, CoverageStats& stats) {
    const std::size_t i = e.node;
    SSR_ASSERT(exec_pending_[i], "execute event without a pending flag");
    exec_pending_[i] = false;
    const int rule = protocol_.enabled_rule(i, states_[i], caches_[i].pred,
                                            caches_[i].succ);
    if (rule == stab::kDisabled) return;
    states_[i] =
        protocol_.apply(i, rule, states_[i], caches_[i].pred, caches_[i].succ);
    ++stats.rule_executions;
    send(i, Dir::kToPred);
    send(i, Dir::kToSucc);
    // Convergence rules can chain (e.g. Rule 5 then Rule 3) without any
    // further message arriving; keep the node scheduled while enabled.
    maybe_schedule_execution(i);
  }

  void handle_timer(const Event& e) {
    send(e.node, Dir::kToPred);
    send(e.node, Dir::kToSucc);
    // Mild jitter avoids artificial lock-step among the nodes' timers.
    const double jitter = 0.9 + 0.2 * rng_.uniform01();
    push_timer(e.node, now_ + params_.refresh_interval * jitter);
  }

  std::vector<bool> compute_holders() const {
    const std::size_t n = states_.size();
    std::vector<bool> holders(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      holders[i] = token_(i, states_[i], caches_[i].pred, caches_[i].succ);
    }
    return holders;
  }

  static std::size_t count_holders(const std::vector<bool>& h) {
    std::size_t c = 0;
    for (bool b : h)
      if (b) ++c;
    return c;
  }

  template <typename StopFn>
  CoverageStats run_impl(Time deadline, StopFn&& stop) {
    CoverageStats stats;
    const std::uint64_t transmissions_before = transmissions_;
    stopped_ = false;
    bool in_zero_interval = (holder_count_ == 0);
    if (stop(*this)) {
      stopped_ = true;
      return stats;
    }
    while (!queue_.empty() && queue_.top().time <= deadline) {
      const Event e = queue_.top();
      queue_.pop();
      // Integrate the (constant) holder count over [now_, e.time).
      const Time dt = e.time - now_;
      SSR_ASSERT(dt >= 0.0, "event queue went backwards in time");
      stats.observed_time += dt;
      if (holder_count_ == 0) stats.zero_token_time += dt;
      if (observer_ && dt > 0.0) observer_(now_, e.time, holders_);
      now_ = e.time;

      bool node_is_down = false;
      if (has_windows_) {
        // Scripted crash/pause windows, checked on the event's own node.
        // Timers fire every refresh interval, so the crash reset lands
        // within one interval of the window opening.
        const double t_us = fault_clock_us();
        if (injector_.take_crash(e.node, t_us)) {
          states_[e.node] = State{};
          caches_[e.node] = Caches{};
          ++stats.crash_restarts;
        }
        node_is_down = injector_.node_down(e.node, t_us);
      }
      switch (e.kind) {
        case Event::Kind::kDelivery:
          // Delivered even while the receiver is down: handle_delivery
          // frees the sender's link, then discards the frame (see the
          // node_down check there).
          handle_delivery(e, stats);
          break;
        case Event::Kind::kTimer:
          if (node_is_down) {
            // The radio is off; keep the timer armed so the node resumes
            // broadcasting when the window closes. (Its outgoing frames
            // would be window-dropped at the injector anyway.)
            push_timer(e.node, now_ + params_.refresh_interval);
          } else {
            handle_timer(e);
          }
          break;
        case Event::Kind::kExecute:
          if (node_is_down) {
            // A down node executes no rules; drop the pending execution.
            // It will be rescheduled by the first delivery after the
            // window closes.
            exec_pending_[e.node] = false;
          } else {
            handle_execute(e, stats);
          }
          break;
      }
      ++stats.events;

      // Refresh the holder view; record extinction intervals and handovers.
      std::vector<bool> holders = compute_holders();
      const std::size_t count = count_holders(holders);
      if (holders != holders_) ++stats.handovers;
      if (count == 0 && !in_zero_interval) {
        ++stats.zero_intervals;
        in_zero_interval = true;
      } else if (count > 0) {
        in_zero_interval = false;
      }
      stats.min_holders = std::min(stats.min_holders, count);
      stats.max_holders = std::max(stats.max_holders, count);
      holders_ = std::move(holders);
      holder_count_ = count;

      if (stop(*this)) {
        stopped_ = true;
        return stats;
      }
    }
    // Advance the clock to the deadline even if the queue ran dry early.
    if (now_ < deadline) {
      const Time dt = deadline - now_;
      stats.observed_time += dt;
      if (holder_count_ == 0) stats.zero_token_time += dt;
      if (observer_ && dt > 0.0) observer_(now_, deadline, holders_);
      now_ = deadline;
    }
    if (stats.min_holders == std::numeric_limits<std::size_t>::max()) {
      stats.min_holders = holder_count_;
      stats.max_holders = std::max(stats.max_holders, holder_count_);
    }
    stats.transmissions = transmissions_ - transmissions_before;
    return stats;
  }

  P protocol_;
  NetworkParams params_;
  TokenFn token_;
  IntervalObserver observer_;
  Rng rng_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;

  Config states_;
  std::vector<Caches> caches_;
  std::vector<std::array<Link, 2>> links_;
  std::vector<std::uint8_t> exec_pending_;
  runtime::FaultInjector injector_;
  bool has_plan_ = false;
  bool has_windows_ = false;
  std::uint64_t transmissions_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;

  std::vector<bool> holders_;
  std::size_t holder_count_ = 0;
};

}  // namespace ssr::msgpass
