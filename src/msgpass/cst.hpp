// Message-passing execution via the cached sensornet transform (CST,
// paper Algorithm 4, after Herman 2003) on a sharded conservative
// parallel discrete-event network simulator.
//
// Each node v_i runs the untouched state-reading protocol against a local
// *cache* Z_i[v_k] of each neighbor's state. Whenever v_i receives a
// neighbor's state it updates the cache, executes (at most) one enabled
// rule, and broadcasts its own state to both neighbors; a periodic timer
// also rebroadcasts the state so lost messages are eventually repaired.
//
// The network model follows paper §5 ¶1: each directed link carries at most
// one message at a time. A send onto a busy link parks the *latest* state
// as pending and transmits it the moment the link frees (a node
// broadcasting its current state never needs to queue more than the newest
// value). Message loss (for Lemma 9 / Theorem 4) is decided per
// transmission with a uniform probability; a lost message still occupies
// the link for its transit time.
//
// Token accounting is the heart of the model-gap experiments (Figs. 11-13,
// Theorem 3): a node holds a token according to the protocol's token
// predicate evaluated on its *local view* (own state + caches), because
// that is the information an implementation would use to decide whether it
// may be active. The simulation integrates, over simulated time, how long
// the system spends with zero / one / two token holders.
//
// Execution engine (see pdes.hpp for the synchronization and determinism
// contract): the ring is cut into NetworkParams::workers contiguous arcs,
// each owned by one worker with its own event heap, payload slab and flip
// log. Per round, the coordinator computes the global minimum pending
// event time T_next, every worker processes its events with time in
// [T_next, T_next + delay_min) — safe because a message needs at least
// delay_min to cross any link, including the two boundary links of each
// arc — and boundary deliveries are exchanged at the barrier. All
// randomness comes from per-node streams (stream_rng(seed, i)), all event
// keys are (time, creator, seq), and all order-sensitive statistics are
// reduced from a key-ordered merge, so results are byte-identical at any
// worker count. A node's predicate depends only on its own state and
// caches, so each event can flip only the acting node's token bit; the
// engine evaluates one predicate per event instead of the legacy O(n)
// holder rescan, which is what makes million-node rings tractable.
//
// Because every node draws from its own stream, trajectories differ from
// the pre-sharding engine (which pulled all draws from one global stream
// in event order — inherently sequential); statistical behaviour is
// unchanged and workers=1 is the reference the differential tests pin
// workers=2/8 against.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "msgpass/pdes.hpp"
#include "runtime/fault_plan.hpp"
#include "stabilizing/protocol.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ssr::msgpass {

/// Shape of the per-message transit delay distribution.
enum class DelayModel : std::uint8_t {
  /// Uniform in [delay_min, delay_max] — bounded, the regime Theorem 3's
  /// proof describes.
  kUniform,
  /// delay_min + Exponential(mean = (delay_max - delay_min)) — unbounded
  /// tail. Used to probe the freshness boundary of the graceful-handover
  /// guarantee (finding F1 / experiment E22): a single message outliving a
  /// whole handshake cycle lets a stale acknowledgment trigger Rule 2
  /// early.
  kExponentialTail,
};

/// Tunable network parameters.
struct NetworkParams {
  /// Per-message transit delay (see DelayModel). delay_min doubles as the
  /// conservative lookahead of the sharded engine: rounds advance the
  /// global window by at least delay_min, so a smaller minimum delay means
  /// more synchronization rounds per simulated tick.
  double delay_min = 0.5;
  double delay_max = 1.5;
  DelayModel delay_model = DelayModel::kUniform;
  /// Probability that any single transmission is lost.
  double loss_probability = 0.0;
  /// Probability that a delivered message is delivered a second time after
  /// an extra transit delay (the duplication fault of paper §2.2; state
  /// messages are idempotent, so duplication must be harmless).
  double duplicate_probability = 0.0;
  /// Period of the CST refresh timer (Algorithm 4 line 11).
  double refresh_interval = 8.0;
  /// Critical-section service time: once a rule becomes enabled, the node
  /// executes it after a uniform delay in [service_min, service_max]. This
  /// is the time a privileged node actually spends doing its privileged
  /// work (monitoring, in the camera application) before moving on — with
  /// instantaneous execution a Dijkstra token would be held for zero
  /// simulated time and coverage comparisons would be meaningless.
  double service_min = 0.5;
  double service_max = 1.0;
  /// RNG seed for delays, losses and timer jitter.
  std::uint64_t seed = 1;
  /// Worker shards for the conservative parallel engine (0 = one per
  /// hardware thread; clamped to the ring size). Results are byte-identical
  /// at any value — this is purely a wall-clock knob.
  std::size_t workers = 1;
  /// Shared fault schedule (runtime/fault_plan.hpp). An empty plan is
  /// completely inert: it consumes no RNG draws, so seeded runs reproduce
  /// the pre-fault-plan trajectories bit for bit. Window drops count as
  /// losses; corruption behind a checksum is loss (Lemma 9), so corrupt
  /// frames are marked lost too.
  runtime::FaultPlan fault_plan;
  /// Scale between the simulator's abstract ticks and the fault clock /
  /// telemetry microseconds (window times, exported timestamps).
  double microseconds_per_tick = 1000.0;

  void validate() const;

  /// Draws one transit delay according to the configured model.
  double draw_delay(Rng& rng) const;
};

/// Aggregate results of a simulation window.
struct CoverageStats {
  Time observed_time = 0.0;     ///< simulated time integrated
  Time zero_token_time = 0.0;   ///< time with no token-holding node
  std::size_t zero_intervals = 0;  ///< maximal intervals with zero holders
  /// Extremes of the holder count over the window, the window's initial
  /// count included.
  std::size_t min_holders = std::numeric_limits<std::size_t>::max();
  std::size_t max_holders = 0;
  std::uint64_t events = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t transmissions = 0;  ///< sends that entered a link
  std::uint64_t losses = 0;         ///< random + window-dropped + corrupted
  std::uint64_t rule_executions = 0;
  std::uint64_t crash_restarts = 0;
  /// Number of times the set of token-holding nodes changed.
  std::uint64_t handovers = 0;

  /// Fraction of observed time with at least one holder (the paper's
  /// continuous-observation guarantee).
  double coverage() const {
    return observed_time > 0.0 ? 1.0 - zero_token_time / observed_time : 1.0;
  }
};

/// Resolves a NetworkParams::workers request against a node count.
inline std::size_t resolve_workers(std::size_t requested, std::size_t n) {
  std::size_t w = requested != 0
                      ? requested
                      : std::max<std::size_t>(
                            1, std::thread::hardware_concurrency());
  w = std::min<std::size_t>(w, 1024);  // ThreadPool's own cap
  return std::max<std::size_t>(1, std::min(w, n));
}

/// CST execution of a RingProtocol over the event-driven network.
template <stab::RingProtocol P>
class CstSimulation {
 public:
  using State = typename P::State;
  using Config = std::vector<State>;
  /// Token predicate on a node's local view: (i, self, pred_view,
  /// succ_view) -> holds a token.
  using TokenFn =
      std::function<bool(std::size_t, const State&, const State&, const State&)>;

  CstSimulation(P protocol, Config initial, TokenFn token, NetworkParams params)
      : protocol_(std::move(protocol)),
        params_(params),
        token_(std::move(token)),
        aux_rng_(params.seed),
        states_(std::move(initial)),
        injector_(params_.fault_plan, states_.size() >= 2 ? states_.size() : 2),
        has_plan_(!params_.fault_plan.empty()),
        has_windows_(!params_.fault_plan.windows.empty()) {
    params_.validate();
    SSR_REQUIRE(states_.size() == protocol_.size(),
                "configuration size must equal ring size");
    SSR_REQUIRE(states_.size() >= 2, "ring needs at least two processes");
    const std::size_t n = states_.size();
    SSR_REQUIRE(n < (std::size_t{1} << 32),
                "ring size must fit the 32-bit event-key node field");
    workers_ = resolve_workers(params_.workers, n);
    layout_ = pdes::ShardLayout(n, workers_);

    cache_pred_.resize(n);
    cache_succ_.resize(n);
    make_caches_coherent();
    link_busy_.assign(2 * n, 0);
    link_has_pending_.assign(2 * n, 0);
    link_pending_.resize(2 * n);
    exec_pending_.assign(n, 0);
    node_seq_.assign(n, 0);
    node_rng_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      node_rng_.push_back(stream_rng(params_.seed, i));

    shards_.resize(workers_);
    for (std::size_t s = 0; s < workers_; ++s) {
      Shard& sh = shards_[s];
      sh.id = s;
      sh.lo = layout_.begin(s);
      sh.hi = layout_.end(s);
      const std::size_t span = sh.hi - sh.lo;
      // Steady-state in-flight events per node: one timer, at most one
      // pending execution, two incoming deliveries plus the matching
      // link-free records; ghosts and bursts spill past the reserve.
      sh.heap = pdes::make_heap_reserved(6 * span + 64);
      sh.slab.reserve(2 * span + 16);
      sh.outbox.resize(workers_);
    }
    for (std::size_t i = 0; i < n; ++i) {
      Shard& sh = shards_[layout_.shard_of(i)];
      Rng& rng = node_rng_[i];
      pdes::HeapRec timer;
      timer.time = rng.uniform01() * params_.refresh_interval;
      timer.order = pdes::make_order(i, node_seq_[i]++);
      timer.kind = pdes::EvKind::kTimer;
      sh.heap.push(timer);
      maybe_schedule_execution(sh, i, 0.0);
    }
    holders_.assign(n, false);
    holder_bit_.assign(n, 0);
    recompute_holders();
  }

  std::size_t size() const { return states_.size(); }
  Time now() const { return now_; }
  /// Current simulated time on the fault/telemetry clock (microseconds).
  double fault_clock_us() const { return now_ * params_.microseconds_per_tick; }
  const P& protocol() const { return protocol_; }
  /// Resolved shard count the engine actually runs with.
  std::size_t workers() const { return workers_; }

  /// True state of node i (omniscient view).
  const State& node_state(std::size_t i) const { return states_.at(i); }

  /// Node i's cached view of its predecessor / successor.
  const State& cache_pred(std::size_t i) const { return cache_pred_.at(i); }
  const State& cache_succ(std::size_t i) const { return cache_succ_.at(i); }

  Config global_config() const { return states_; }

  /// Definition 2: every cache equals the neighbor's current state.
  bool coherent() const {
    const std::size_t n = states_.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (!(cache_pred_[i] == states_[stab::pred_index(i, n)])) return false;
      if (!(cache_succ_[i] == states_[stab::succ_index(i, n)])) return false;
    }
    return true;
  }

  /// Resets every cache to the neighbor's true state (the "legitimate
  /// configuration with cache-coherence" hypothesis of Theorem 3).
  void make_caches_coherent() {
    const std::size_t n = states_.size();
    for (std::size_t i = 0; i < n; ++i) {
      cache_pred_[i] = states_[stab::pred_index(i, n)];
      cache_succ_[i] = states_[stab::succ_index(i, n)];
    }
  }

  /// Fills every cache with an arbitrary state produced by @p gen (the
  /// "arbitrary cache values" hypothesis of Lemma 9 — bad incoherence).
  /// Draws from a dedicated coordinator stream, pred then succ per node in
  /// ascending order, so the corruption pattern is worker-independent.
  void randomize_caches(const std::function<State(Rng&)>& gen) {
    for (std::size_t i = 0; i < states_.size(); ++i) {
      cache_pred_[i] = gen(aux_rng_);
      cache_succ_[i] = gen(aux_rng_);
    }
    recompute_holders();
  }

  /// Per-node token holding, each node judging from its local view.
  std::vector<bool> token_view() const { return holders_; }
  std::size_t holder_count() const { return holder_count_; }

  using IntervalObserver = msgpass::IntervalObserver;
  /// Observer invoked once per inter-flip interval [from, to) with the
  /// holder set that was in force throughout it. Gives application layers
  /// (e.g. the camera-energy model) an exact time integration of who was
  /// active when. The partition is by holder-set *changes* (not by raw
  /// events), so it is identical at every worker count; time-weighted
  /// consumers (Telemetry, TimelineRecorder) integrate the same function.
  void set_observer(IntervalObserver observer) {
    observer_ = std::move(observer);
  }

  /// Runs until simulated time advances by @p duration, accumulating
  /// coverage statistics for the window.
  CoverageStats run(Time duration) {
    return run_impl(now_ + duration, [](const CstSimulation&) { return false; });
  }

  /// Runs until @p stop(*this) holds or the deadline passes. The predicate
  /// is evaluated at every synchronization-round horizon (the rounds — and
  /// hence the stop times — are identical at every worker count; a round
  /// spans at most delay_min of virtual time). Returns the stats;
  /// stopped_early tells which.
  template <typename StopFn>
  CoverageStats run_until(StopFn&& stop, Time deadline, bool* stopped_early) {
    CoverageStats s = run_impl(deadline, std::forward<StopFn>(stop));
    if (stopped_early != nullptr) *stopped_early = stopped_;
    return s;
  }

 private:
  /// Direction of an outgoing link.
  enum class Dir : std::uint8_t { kToPred = 0, kToSucc = 1 };

  /// A delivery crossing a shard boundary, staged in the sender shard's
  /// outbox until the round barrier.
  struct BoundaryFrame {
    Time time = 0.0;
    std::uint64_t order = 0;
    State payload{};
    std::uint8_t dir = 0;
    std::uint8_t flags = 0;
  };

  struct alignas(64) Shard {
    std::size_t id = 0;
    std::size_t lo = 0;
    std::size_t hi = 0;
    pdes::EventHeap heap;
    pdes::PayloadSlab<State> slab;
    std::vector<pdes::FlipEntry> flips;
    std::vector<std::vector<BoundaryFrame>> outbox;  ///< per dest shard
    Time clock = 0.0;  ///< last popped event time (monotonicity guard)
    pdes::ShardCounters ctr;
  };

  std::size_t neighbor(std::size_t i, Dir d) const {
    const std::size_t n = states_.size();
    return d == Dir::kToPred ? stab::pred_index(i, n) : stab::succ_index(i, n);
  }

  static std::size_t link_index(std::size_t i, Dir d) {
    return 2 * i + static_cast<std::size_t>(d);
  }

  bool eval_token(std::size_t i) const {
    return token_(i, states_[i], cache_pred_[i], cache_succ_[i]);
  }

  void recompute_holders() {
    holder_count_ = 0;
    for (std::size_t i = 0; i < states_.size(); ++i) {
      const bool h = eval_token(i);
      holder_bit_[i] = h ? 1 : 0;
      holders_[i] = h;
      if (h) ++holder_count_;
    }
  }

  /// Starts a transmission of node i's current state along direction d, or
  /// parks it as pending if the link is occupied (overwriting any older
  /// pending value — only the newest state matters).
  void send(Shard& sh, std::size_t i, Dir d, Time now) {
    const std::size_t idx = link_index(i, d);
    if (link_busy_[idx]) {
      link_pending_[idx] = states_[i];
      link_has_pending_[idx] = 1;
      return;
    }
    transmit(sh, i, d, states_[i], now);
  }

  void transmit(Shard& sh, std::size_t i, Dir d, const State& payload,
                Time now) {
    link_busy_[link_index(i, d)] = 1;
    ++sh.ctr.transmissions;
    Rng& rng = node_rng_[i];
    double delay = params_.draw_delay(rng);
    std::uint8_t flags = 0;
    if (rng.bernoulli(params_.loss_probability)) flags |= pdes::kEvLost;
    const std::size_t dest = neighbor(i, d);
    if (has_plan_) {
      // The injector draws in a fixed order (and an inert probability
      // consumes no draws), so the whole trajectory stays a pure function
      // of (seed, plan).
      const runtime::FrameFate fate = injector_.on_send(
          i, dest, now * params_.microseconds_per_tick, rng);
      // Corruption behind a checksum is loss (Lemma 9); a window drop
      // still occupies the link for its transit time, like any loss.
      if (fate.drop || fate.corrupt_bits > 0) flags |= pdes::kEvLost;
      if (fate.duplicate) flags |= pdes::kEvForceDuplicate;
      // Reordering on a one-message-at-a-time link = the frame arriving
      // stale: stretch its transit past the frames that overtake it.
      if (fate.reorder) {
        delay += params_.draw_delay(rng) + params_.draw_delay(rng);
      }
    }
    // delay >= delay_min in every model, so arrive lands at or beyond the
    // current round's horizon whenever it crosses a shard boundary.
    const Time arrive = pdes::advance_time(now, delay);
    const std::uint32_t delivery_seq = node_seq_[i]++;
    const std::uint32_t free_seq = node_seq_[i]++;
    const std::uint64_t order = pdes::make_order(i, delivery_seq);
    const std::size_t dest_shard = layout_.shard_of(dest);
    if (dest_shard == sh.id) {
      pdes::HeapRec rec;
      rec.time = arrive;
      rec.order = order;
      rec.slot =
          (flags & pdes::kEvLost) ? pdes::kNoSlot : sh.slab.intern(payload);
      rec.kind = pdes::EvKind::kDelivery;
      rec.dir = static_cast<std::uint8_t>(d);
      rec.flags = flags;
      sh.heap.push(rec);
    } else {
      sh.outbox[dest_shard].push_back(
          {arrive, order, payload, static_cast<std::uint8_t>(d), flags});
    }
    // The sender frees its own link when the transmission completes — the
    // legacy engine mutated the sender's link from the receiver's delivery
    // handler, which would be a cross-shard write.
    pdes::HeapRec link_free;
    link_free.time = arrive;
    link_free.order = pdes::make_order(i, free_seq);
    link_free.kind = pdes::EvKind::kLinkFree;
    link_free.dir = static_cast<std::uint8_t>(d);
    sh.heap.push(link_free);
  }

  /// If a rule is enabled at node i and no execution is already pending,
  /// schedule one after the service (critical-section occupancy) delay.
  void maybe_schedule_execution(Shard& sh, std::size_t i, Time now) {
    if (exec_pending_[i]) return;
    const int rule =
        protocol_.enabled_rule(i, states_[i], cache_pred_[i], cache_succ_[i]);
    if (rule == stab::kDisabled) return;
    exec_pending_[i] = 1;
    const double service =
        params_.service_min +
        node_rng_[i].uniform01() * (params_.service_max - params_.service_min);
    pdes::HeapRec rec;
    rec.time = pdes::advance_time(now, service);
    rec.order = pdes::make_order(i, node_seq_[i]++);
    rec.kind = pdes::EvKind::kExecute;
    sh.heap.push(rec);
  }

  /// Algorithm 4 "on receipt": cache update, one rule execution, broadcast.
  void handle_delivery(Shard& sh, const pdes::HeapRec& rec, std::size_t v,
                       bool down) {
    ++sh.ctr.deliveries;
    if (rec.flags & pdes::kEvLost) {
      ++sh.ctr.losses;
      return;
    }
    // A frame addressed to a scripted-down node was sent before the window
    // opened (frames sent during it are dropped at the sender): the radio
    // is off, so it is lost on arrival.
    if (down) {
      ++sh.ctr.losses;
      return;
    }
    const State payload = sh.slab.take(rec.slot);
    // Duplication fault: replay this delivery once more after a fresh
    // delay. Duplicates can themselves not duplicate (one replay max).
    // The ghost is created (and keyed) by the receiver: it is a local
    // artifact of the receiver's radio, not a second transmission.
    if (!(rec.flags & pdes::kEvDuplicate)) {
      Rng& rng = node_rng_[v];
      const bool dup = rng.bernoulli(params_.duplicate_probability) ||
                       (rec.flags & pdes::kEvForceDuplicate) != 0;
      if (dup) {
        pdes::HeapRec ghost;
        ghost.time = pdes::advance_time(rec.time, params_.draw_delay(rng));
        ghost.order = pdes::make_order(v, node_seq_[v]++);
        ghost.slot = sh.slab.intern(payload);
        ghost.kind = pdes::EvKind::kDelivery;
        ghost.dir = rec.dir;
        ghost.flags = pdes::kEvDuplicate;
        sh.heap.push(ghost);
      }
    }
    // The message came from our predecessor iff the sender sent toward its
    // successor.
    if (rec.dir == static_cast<std::uint8_t>(Dir::kToSucc)) {
      cache_pred_[v] = payload;
    } else {
      cache_succ_[v] = payload;
    }
    maybe_schedule_execution(sh, v, rec.time);
    send(sh, v, Dir::kToPred, rec.time);
    send(sh, v, Dir::kToSucc, rec.time);
  }

  /// The deferred rule execution: re-evaluate against the current caches
  /// (they may have changed during the service window), apply, broadcast,
  /// and re-arm if the node is still enabled.
  void handle_execute(Shard& sh, std::size_t v, Time now, bool down) {
    SSR_ASSERT(exec_pending_[v], "execute event without a pending flag");
    exec_pending_[v] = 0;
    if (down) {
      // A down node executes no rules; the first delivery after the window
      // closes reschedules it.
      return;
    }
    const int rule =
        protocol_.enabled_rule(v, states_[v], cache_pred_[v], cache_succ_[v]);
    if (rule == stab::kDisabled) return;
    states_[v] =
        protocol_.apply(v, rule, states_[v], cache_pred_[v], cache_succ_[v]);
    ++sh.ctr.rule_executions;
    send(sh, v, Dir::kToPred, now);
    send(sh, v, Dir::kToSucc, now);
    // Convergence rules can chain (e.g. Rule 5 then Rule 3) without any
    // further message arriving; keep the node scheduled while enabled.
    maybe_schedule_execution(sh, v, now);
  }

  void handle_timer(Shard& sh, std::size_t v, Time now, bool down) {
    pdes::HeapRec next;
    next.kind = pdes::EvKind::kTimer;
    if (down) {
      // The radio is off; keep the timer armed so the node resumes
      // broadcasting when the window closes. (Its outgoing frames would be
      // window-dropped at the injector anyway.)
      next.time = pdes::advance_time(now, params_.refresh_interval);
      next.order = pdes::make_order(v, node_seq_[v]++);
      sh.heap.push(next);
      return;
    }
    send(sh, v, Dir::kToPred, now);
    send(sh, v, Dir::kToSucc, now);
    // Mild jitter avoids artificial lock-step among the nodes' timers.
    const double jitter = 0.9 + 0.2 * node_rng_[v].uniform01();
    next.time = pdes::advance_time(now, params_.refresh_interval * jitter);
    next.order = pdes::make_order(v, node_seq_[v]++);
    sh.heap.push(next);
  }

  void dispatch(Shard& sh, const pdes::HeapRec& rec) {
    const std::size_t creator = pdes::order_creator(rec.order);
    if (rec.kind == pdes::EvKind::kLinkFree) {
      // Pure bookkeeping on the sender side: not a protocol event (not
      // counted, not crash-gated — the legacy engine freed links from
      // inside delivery handling, with the same immunity).
      const std::size_t idx = 2 * creator + rec.dir;
      SSR_ASSERT(link_busy_[idx], "link-free on an idle link");
      link_busy_[idx] = 0;
      if (link_has_pending_[idx]) {
        link_has_pending_[idx] = 0;
        transmit(sh, creator, static_cast<Dir>(rec.dir), link_pending_[idx],
                 rec.time);
      }
      return;
    }
    // The acting node: the receiver for deliveries (a ghost's creator *is*
    // its receiver), the owner for timers and executions.
    const std::size_t v =
        (rec.kind == pdes::EvKind::kDelivery &&
         (rec.flags & pdes::kEvDuplicate) == 0)
            ? neighbor(creator, static_cast<Dir>(rec.dir))
            : creator;
    bool down = false;
    if (has_windows_) {
      // Scripted crash/pause windows, checked on the event's own node.
      // Timers fire every refresh interval, so the crash reset lands
      // within one interval of the window opening.
      const double t_us = rec.time * params_.microseconds_per_tick;
      if (injector_.take_crash(v, t_us)) {
        states_[v] = State{};
        cache_pred_[v] = State{};
        cache_succ_[v] = State{};
        ++sh.ctr.crash_restarts;
      }
      down = injector_.node_down(v, t_us);
    }
    switch (rec.kind) {
      case pdes::EvKind::kDelivery:
        // Delivered even while the receiver is down: the frame is counted
        // and discarded (see the down check in handle_delivery).
        handle_delivery(sh, rec, v, down);
        break;
      case pdes::EvKind::kTimer:
        handle_timer(sh, v, rec.time, down);
        break;
      case pdes::EvKind::kExecute:
        handle_execute(sh, v, rec.time, down);
        break;
      case pdes::EvKind::kLinkFree:
        break;  // handled above
    }
    ++sh.ctr.events;
    // Only the acting node's predicate can have changed (it reads nothing
    // but v's own state and caches); log the flip under the event's key.
    const bool post = eval_token(v);
    if (post != (holder_bit_[v] != 0)) {
      holder_bit_[v] = post ? 1 : 0;
      sh.flips.push_back({rec.time, rec.order, static_cast<std::uint32_t>(v),
                          static_cast<std::uint8_t>(post)});
    }
  }

  /// One round's worth of events for one shard: everything strictly below
  /// the horizon (and at or below the run deadline), in key order.
  void process_shard(Shard& sh, Time horizon, Time deadline) {
    while (!sh.heap.empty()) {
      const pdes::HeapRec rec = sh.heap.top();
      if (rec.time >= horizon || rec.time > deadline) break;
      SSR_ASSERT(rec.time >= sh.clock,
                 "event pop regressed below the shard clock (lookahead or "
                 "Time-precision violation)");
      sh.clock = rec.time;
      sh.heap.pop();
      dispatch(sh, rec);
    }
  }

  /// Moves boundary deliveries staged for shard w into its heap. Runs
  /// after the processing barrier: it reads other shards' outboxes and
  /// writes only shard w's heap and slab.
  void drain_inbound(std::size_t w) {
    Shard& sh = shards_[w];
    for (std::size_t o = 0; o < workers_; ++o) {
      if (o == w) continue;
      for (const BoundaryFrame& f : shards_[o].outbox[w]) {
        pdes::HeapRec rec;
        rec.time = f.time;
        rec.order = f.order;
        rec.slot =
            (f.flags & pdes::kEvLost) ? pdes::kNoSlot : sh.slab.intern(f.payload);
        rec.kind = pdes::EvKind::kDelivery;
        rec.dir = f.dir;
        rec.flags = f.flags;
        sh.heap.push(rec);
      }
    }
  }

  template <typename StopFn>
  CoverageStats run_impl(Time deadline, StopFn&& stop) {
    CoverageStats stats;
    stopped_ = false;
    for (Shard& sh : shards_) sh.ctr = pdes::ShardCounters{};
    if (stop(*this)) {
      stopped_ = true;
      return stats;
    }
    const Time start = now_;
    pdes::CoverageAccumulator acc(start, holder_count_, &holders_, &observer_);
    std::vector<std::vector<pdes::FlipEntry>*> flip_logs;
    flip_logs.reserve(workers_);
    for (Shard& sh : shards_) flip_logs.push_back(&sh.flips);
    if (workers_ > 1 && pool_ == nullptr) {
      pool_ = std::make_unique<util::ThreadPool>(workers_);
    }

    for (;;) {
      Time t_next = std::numeric_limits<Time>::infinity();
      for (const Shard& sh : shards_) {
        if (!sh.heap.empty()) t_next = std::min(t_next, sh.heap.top().time);
      }
      if (t_next > deadline) break;  // also catches all-heaps-empty
      // Conservative window: every event in [t_next, horizon) may be
      // processed now, because any delivery it generates is at least
      // delay_min away and so lands at or beyond the horizon (monotone
      // rounding: fl(a + b) >= fl(t_next + delay_min) for a >= t_next,
      // b >= delay_min). advance_time doubles as the progress guard.
      const Time horizon = pdes::advance_time(t_next, params_.delay_min);
      if (workers_ == 1) {
        process_shard(shards_[0], horizon, deadline);
      } else {
        pool_->run_on_all([&](std::size_t w) {
          for (auto& box : shards_[w].outbox) box.clear();
          process_shard(shards_[w], horizon, deadline);
        });
        pool_->run_on_all([&](std::size_t w) { drain_inbound(w); });
      }
      acc.merge_shards(flip_logs);
      holder_count_ = acc.count();
      now_ = std::min(horizon, deadline);
      if (stop(*this)) {
        stopped_ = true;
        break;
      }
    }
    if (!stopped_ && now_ < deadline) now_ = deadline;
    acc.finish(now_);
    holder_count_ = acc.count();
    stats.observed_time = now_ - start;
    stats.zero_token_time = acc.zero_time();
    stats.zero_intervals =
        static_cast<std::size_t>(acc.zero_intervals());
    stats.handovers = acc.handovers();
    stats.min_holders = acc.min_holders();
    stats.max_holders = acc.max_holders();
    for (const Shard& sh : shards_) {
      stats.events += sh.ctr.events;
      stats.deliveries += sh.ctr.deliveries;
      stats.transmissions += sh.ctr.transmissions;
      stats.losses += sh.ctr.losses;
      stats.rule_executions += sh.ctr.rule_executions;
      stats.crash_restarts += sh.ctr.crash_restarts;
    }
    return stats;
  }

  P protocol_;
  NetworkParams params_;
  TokenFn token_;
  IntervalObserver observer_;
  Time now_ = 0.0;
  bool stopped_ = false;
  std::size_t workers_ = 1;
  pdes::ShardLayout layout_;
  Rng aux_rng_;  ///< coordinator-only draws (randomize_caches)

  Config states_;
  std::vector<State> cache_pred_;
  std::vector<State> cache_succ_;
  std::vector<std::uint8_t> link_busy_;         ///< index 2*i + dir
  std::vector<std::uint8_t> link_has_pending_;  ///< newest state parked
  std::vector<State> link_pending_;
  std::vector<std::uint8_t> exec_pending_;
  std::vector<std::uint8_t> holder_bit_;  ///< current per-node predicate
  std::vector<Rng> node_rng_;             ///< stream_rng(seed, i) per node
  std::vector<std::uint32_t> node_seq_;   ///< per-node event key counter
  runtime::FaultInjector injector_;
  bool has_plan_ = false;
  bool has_windows_ = false;

  std::vector<Shard> shards_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< lazily created when W > 1

  std::vector<bool> holders_;  ///< maintained in merged flip order
  std::size_t holder_count_ = 0;
};

}  // namespace ssr::msgpass
