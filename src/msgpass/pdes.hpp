// Shared machinery for the sharded conservative parallel discrete-event
// CST simulators (msgpass::CstSimulation and graph::GraphCstSimulation).
//
// The execution model is conservative, null-message-free PDES on global
// lookahead windows:
//
//   * the node set is partitioned into W contiguous shards, each owned by
//     one worker with its own event heap, payload slab and flip log;
//   * every cross-node event is a message delivery, and a message can
//     never arrive earlier than `delay_min` after it was sent — the
//     link's minimum transit delay is an *exact* lookahead;
//   * a round therefore processes, in parallel, every event with
//     timestamp strictly below  H = T_next + delay_min  where T_next is
//     the global minimum pending event time: any delivery generated
//     during the round lands at or beyond H (correctly-rounded double
//     addition is monotone, so this holds exactly, not just in real
//     arithmetic). Boundary deliveries are exchanged at the barrier.
//
// Determinism contract (the repo's bit-identical bar): the trajectory is
// a pure function of (seed, parameters), independent of the worker count
// and of the partition, because
//
//   * every node draws randomness only from its own stream_rng(seed, i)
//     stream, and only while one of its events is being handled;
//   * every event carries a totally ordered key (time, creator, seq)
//     where seq is the creator's private counter; each shard pops its
//     heap in key order, so per-node draw order is key order, which is a
//     global trajectory fact;
//   * statistics that depend on the *interleaving* of events (holder-set
//     flips) are logged per shard with their event keys and merged in key
//     order before integration, so zero-token dwell, handover counts and
//     observer callbacks see the exact sequence the one-worker run sees.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "util/assert.hpp"

namespace ssr::msgpass {

/// Simulated time, in abstract ticks.
///
/// Precision regime: Time stays a double. Every scheduling step adds a
/// strictly positive delta (delay >= delay_min, service >= service_min,
/// refresh > 0) to the current event time, which advances the clock
/// exactly while `now / delta < 2^52` — for the default delay_min = 0.5
/// that is ~2.2e15 ticks, far beyond any run this repo performs. The
/// simulators assert the sum actually advanced (see pdes::advance_time)
/// and that pops never regress, so a run that ever left the safe regime
/// fails loudly instead of silently freezing virtual time.
using Time = double;

/// Observer invoked once per inter-flip interval [from, to) with the
/// holder set that was in force throughout it.
using IntervalObserver =
    std::function<void(Time from, Time to, const std::vector<bool>& holders)>;

namespace pdes {

/// `at = now + delta` with the monotonicity assert of the Time contract.
inline Time advance_time(Time now, double delta) {
  const Time at = now + delta;
  SSR_ASSERT(at > now,
             "virtual clock failed to advance (Time precision exhausted; "
             "see the safe-regime note on msgpass::Time)");
  return at;
}

/// Balanced contiguous partition of n nodes into `shards` arcs.
class ShardLayout {
 public:
  ShardLayout() = default;
  ShardLayout(std::size_t n, std::size_t shards) : n_(n), shards_(shards) {
    SSR_REQUIRE(shards >= 1 && shards <= n, "shard count must be in [1, n]");
    base_ = n / shards;
    extra_ = n % shards;  // shards [0, extra_) own base_+1 nodes
  }

  std::size_t shards() const { return shards_; }
  std::size_t size() const { return n_; }

  std::size_t begin(std::size_t s) const {
    return s < extra_ ? s * (base_ + 1) : extra_ * (base_ + 1) + (s - extra_) * base_;
  }
  std::size_t end(std::size_t s) const { return begin(s + 1 <= shards_ ? s + 1 : shards_); }

  std::size_t shard_of(std::size_t node) const {
    const std::size_t pivot = extra_ * (base_ + 1);
    if (node < pivot) return node / (base_ + 1);
    return extra_ + (node - pivot) / base_;
  }

 private:
  std::size_t n_ = 1;
  std::size_t shards_ = 1;
  std::size_t base_ = 1;
  std::size_t extra_ = 0;
};

enum class EvKind : std::uint8_t {
  kDelivery = 0,  ///< message arrival at the receiver
  kTimer = 1,     ///< CST refresh broadcast
  kExecute = 2,   ///< deferred rule execution after the service delay
  kLinkFree = 3,  ///< the sender's link completes its transmission
};

inline constexpr std::uint8_t kEvLost = 1;            ///< frame decided lost
inline constexpr std::uint8_t kEvDuplicate = 2;       ///< ghost re-delivery
inline constexpr std::uint8_t kEvForceDuplicate = 4;  ///< injector-scripted

inline constexpr std::uint32_t kNoSlot =
    std::numeric_limits<std::uint32_t>::max();

/// Composite event key component: (creator << 32) | creator's seq. Keys
/// are unique (one counter bump per created event) and identical at every
/// worker count, because each node's counter only moves while one of its
/// events is handled — in key order.
inline std::uint64_t make_order(std::size_t creator, std::uint32_t seq) {
  return (static_cast<std::uint64_t>(creator) << 32) | seq;
}
inline std::size_t order_creator(std::uint64_t order) {
  return static_cast<std::size_t>(order >> 32);
}

/// Slim heap record: 24 bytes, no payload — payloads live in a per-shard
/// slab (satellite of ISSUE 7: the legacy queue sifted a full State copy
/// through every heap swap).
struct HeapRec {
  Time time = 0.0;
  std::uint64_t order = 0;       ///< (creator, seq) tie-break
  std::uint32_t slot = kNoSlot;  ///< payload slab index / link slot id
  EvKind kind = EvKind::kTimer;
  std::uint8_t dir = 0;    ///< ring direction or (graph) unused
  std::uint8_t flags = 0;  ///< kEv* bits
};

struct HeapRecGreater {
  bool operator()(const HeapRec& a, const HeapRec& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.order > b.order;
  }
};

using EventHeap =
    std::priority_queue<HeapRec, std::vector<HeapRec>, HeapRecGreater>;

/// An EventHeap whose backing vector is reserved up front.
inline EventHeap make_heap_reserved(std::size_t capacity) {
  std::vector<HeapRec> backing;
  backing.reserve(capacity);
  return EventHeap(HeapRecGreater{}, std::move(backing));
}

/// Free-list slab of by-value payloads, one per in-flight message copy.
template <typename Payload>
class PayloadSlab {
 public:
  void reserve(std::size_t capacity) { slots_.reserve(capacity); }

  std::uint32_t intern(const Payload& p) {
    if (!free_.empty()) {
      const std::uint32_t idx = free_.back();
      free_.pop_back();
      slots_[idx] = p;
      return idx;
    }
    slots_.push_back(p);
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  /// Reads slot @p idx and returns it to the free list.
  Payload take(std::uint32_t idx) {
    SSR_ASSERT(idx < slots_.size(), "payload slab index out of range");
    free_.push_back(idx);
    return slots_[idx];
  }

  const Payload& peek(std::uint32_t idx) const { return slots_[idx]; }

 private:
  std::vector<Payload> slots_;
  std::vector<std::uint32_t> free_;
};

/// One holder-predicate flip, logged by the owning shard in key order.
struct FlipEntry {
  Time time = 0.0;
  std::uint64_t order = 0;
  std::uint32_t node = 0;
  std::uint8_t value = 0;  ///< predicate value after the event
};

/// Per-shard counters; plain sums, so any merge order is exact.
struct ShardCounters {
  std::uint64_t events = 0;  ///< deliveries + timers + executions processed
  std::uint64_t deliveries = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t losses = 0;
  std::uint64_t rule_executions = 0;
  std::uint64_t crash_restarts = 0;
};

/// Integrates the global holder-count function over a run window from the
/// deterministic (time, order) merge of the shards' flip logs. All
/// floating-point accumulation happens here, in merged key order, which
/// is what keeps zero-token dwell (and the telemetry JSON fed through the
/// observer) byte-identical at every worker count.
class CoverageAccumulator {
 public:
  /// @param holders  current per-node holder bits, maintained across
  ///                 flips iff an observer is attached (may be null)
  CoverageAccumulator(Time start, std::size_t initial_count,
                      std::vector<bool>* holders,
                      const IntervalObserver* observer)
      : cursor_(start),
        count_(initial_count),
        min_(initial_count),
        max_(initial_count),
        in_zero_(initial_count == 0),
        holders_(holders),
        observer_(observer) {}

  std::size_t count() const { return count_; }
  Time zero_time() const { return zero_time_; }
  std::uint64_t zero_intervals() const { return zero_intervals_; }
  std::uint64_t handovers() const { return handovers_; }
  std::size_t min_holders() const { return min_; }
  std::size_t max_holders() const { return max_; }

  /// Consumes the shards' flip logs (each already sorted by key, because
  /// shards pop their heaps in key order) as one merged sequence, then
  /// clears them.
  void merge_shards(std::vector<std::vector<FlipEntry>*>& logs) {
    cursors_.assign(logs.size(), 0);
    for (;;) {
      std::size_t best = logs.size();
      for (std::size_t s = 0; s < logs.size(); ++s) {
        if (cursors_[s] >= logs[s]->size()) continue;
        const FlipEntry& e = (*logs[s])[cursors_[s]];
        if (best == logs.size() || before(e, (*logs[best])[cursors_[best]])) {
          best = s;
        }
      }
      if (best == logs.size()) break;
      apply((*logs[best])[cursors_[best]]);
      ++cursors_[best];
    }
    for (auto* log : logs) log->clear();
  }

  /// Closes the integration at @p end (the run deadline or stop horizon).
  void finish(Time end) {
    const Time dt = end - cursor_;
    SSR_ASSERT(dt >= -0.0, "coverage integration ran backwards");
    if (dt > 0.0) {
      if (count_ == 0) zero_time_ += dt;
      if (observer_ != nullptr && *observer_ && holders_ != nullptr) {
        (*observer_)(cursor_, end, *holders_);
      }
      cursor_ = end;
    }
  }

 private:
  static bool before(const FlipEntry& a, const FlipEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.order < b.order;
  }

  void apply(const FlipEntry& e) {
    finish(e.time);  // integrate [cursor_, e.time) under the old count
    ++handovers_;
    if (e.value != 0) {
      ++count_;
    } else {
      SSR_ASSERT(count_ > 0, "holder count underflow in flip merge");
      --count_;
    }
    if (holders_ != nullptr) (*holders_)[e.node] = e.value != 0;
    if (count_ == 0 && !in_zero_) {
      ++zero_intervals_;
      in_zero_ = true;
    } else if (count_ > 0) {
      in_zero_ = false;
    }
    min_ = std::min(min_, count_);
    max_ = std::max(max_, count_);
  }

  Time cursor_;
  std::size_t count_;
  std::size_t min_;
  std::size_t max_;
  bool in_zero_;
  Time zero_time_ = 0.0;
  std::uint64_t zero_intervals_ = 0;
  std::uint64_t handovers_ = 0;
  std::vector<bool>* holders_;
  const IntervalObserver* observer_;
  std::vector<std::size_t> cursors_;
};

}  // namespace pdes
}  // namespace ssr::msgpass
