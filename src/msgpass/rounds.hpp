// Synchronous-round execution model — the WSN-style transformed execution
// studied by Turau & Weyer (paper reference [17]) and the round-based
// transformation schemes the paper surveys ([5, 7, 16]).
//
// Time advances in rounds. In every round:
//   1. every node broadcasts its current state to both neighbors; each
//      individual message is lost independently with probability `loss`;
//      surviving messages update the receivers' caches at the round edge;
//   2. every node evaluates its (single, prioritized) enabled rule on its
//      local view (own state + caches) and executes it with probability
//      `exec_probability` — the randomized-execution device of [17] that
//      breaks the lock-step symmetry a synchronous schedule would
//      otherwise impose.
//
// All executions within a round are simultaneous (composite atomicity with
// cached reads). With loss = 0 and exec_probability = 1 and coherent
// caches this degenerates to the synchronous distributed daemon of the
// state-reading model.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "stabilizing/protocol.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ssr::msgpass {

struct RoundParams {
  /// Per-message loss probability.
  double loss = 0.0;
  /// Probability that an enabled node executes its rule this round.
  double exec_probability = 1.0;
  std::uint64_t seed = 1;

  void validate() const {
    SSR_REQUIRE(loss >= 0.0 && loss < 1.0, "loss must be in [0, 1)");
    SSR_REQUIRE(exec_probability > 0.0 && exec_probability <= 1.0,
                "exec probability must be in (0, 1]");
  }
};

template <stab::RingProtocol P>
class RoundSimulation {
 public:
  using State = typename P::State;
  using Config = std::vector<State>;
  using TokenFn =
      std::function<bool(std::size_t, const State&, const State&, const State&)>;

  RoundSimulation(P protocol, Config initial, TokenFn token,
                  RoundParams params)
      : protocol_(std::move(protocol)),
        params_(params),
        token_(std::move(token)),
        rng_(params.seed),
        states_(std::move(initial)),
        cache_pred_(states_.size()),
        cache_succ_(states_.size()) {
    params_.validate();
    SSR_REQUIRE(states_.size() == protocol_.size(),
                "configuration size must equal ring size");
    make_caches_coherent();
  }

  std::size_t size() const { return states_.size(); }
  std::uint64_t rounds() const { return rounds_; }
  const Config& global_config() const { return states_; }
  const State& cache_pred(std::size_t i) const { return cache_pred_.at(i); }
  const State& cache_succ(std::size_t i) const { return cache_succ_.at(i); }

  void make_caches_coherent() {
    const std::size_t n = states_.size();
    for (std::size_t i = 0; i < n; ++i) {
      cache_pred_[i] = states_[stab::pred_index(i, n)];
      cache_succ_[i] = states_[stab::succ_index(i, n)];
    }
  }

  void randomize_caches(const std::function<State(Rng&)>& gen) {
    for (auto& s : cache_pred_) s = gen(rng_);
    for (auto& s : cache_succ_) s = gen(rng_);
  }

  bool coherent() const {
    const std::size_t n = states_.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (!(cache_pred_[i] == states_[stab::pred_index(i, n)])) return false;
      if (!(cache_succ_[i] == states_[stab::succ_index(i, n)])) return false;
    }
    return true;
  }

  /// Number of nodes holding a token by their local view.
  std::size_t holder_count() const {
    std::size_t count = 0;
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (token_(i, states_[i], cache_pred_[i], cache_succ_[i])) ++count;
    }
    return count;
  }

  /// Executes one synchronous round; returns the number of rule
  /// executions it performed.
  std::size_t step() {
    const std::size_t n = states_.size();
    // Phase 1: broadcast (reads pre-round states, writes caches).
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t p = stab::pred_index(i, n);
      const std::size_t s = stab::succ_index(i, n);
      // i -> successor (arrives as the successor's pred cache)
      if (!rng_.bernoulli(params_.loss)) cache_pred_[s] = states_[i];
      // i -> predecessor
      if (!rng_.bernoulli(params_.loss)) cache_succ_[p] = states_[i];
    }
    // Phase 2: simultaneous rule execution on local views.
    std::vector<std::pair<std::size_t, State>> writes;
    for (std::size_t i = 0; i < n; ++i) {
      const int rule =
          protocol_.enabled_rule(i, states_[i], cache_pred_[i], cache_succ_[i]);
      if (rule == stab::kDisabled) continue;
      if (!rng_.bernoulli(params_.exec_probability)) continue;
      writes.emplace_back(
          i, protocol_.apply(i, rule, states_[i], cache_pred_[i],
                             cache_succ_[i]));
    }
    for (auto& [i, s] : writes) states_[i] = std::move(s);
    ++rounds_;
    return writes.size();
  }

  /// Runs until predicate(global configuration) holds, or the round budget
  /// is exhausted. Returns the rounds consumed on success. Caches are
  /// deliberately not part of the condition: after any round that executed
  /// a rule they lag the new states by one broadcast phase, and the next
  /// round's phase 1 repairs them (modulo loss), so cache state is an
  /// intra-round detail here — unlike in the event-driven CST model.
  template <typename Predicate>
  std::optional<std::uint64_t> run_until(Predicate&& predicate,
                                         std::uint64_t max_rounds) {
    const std::uint64_t start = rounds_;
    for (std::uint64_t r = 0; r <= max_rounds; ++r) {
      if (predicate(states_)) return rounds_ - start;
      if (r == max_rounds) break;
      step();
    }
    return std::nullopt;
  }

 private:
  P protocol_;
  RoundParams params_;
  TokenFn token_;
  Rng rng_;
  std::uint64_t rounds_ = 0;

  Config states_;
  Config cache_pred_;
  Config cache_succ_;
};

}  // namespace ssr::msgpass
