// Ready-made CST simulations for the protocols in this library, each wired
// with its local-view token predicate.
#pragma once

#include "core/ssrmin.hpp"
#include "dijkstra/dual.hpp"
#include "dijkstra/kstate.hpp"
#include "msgpass/cst.hpp"
#include "msgpass/rounds.hpp"

namespace ssr::msgpass {

/// SSRmin in the synchronous-round model ([17]-style execution) with its
/// full token predicate.
RoundSimulation<core::SsrMinRing> make_ssrmin_rounds(
    const core::SsrMinRing& ring, core::SsrConfig initial, RoundParams params);

/// Dijkstra's ring in the synchronous-round model.
RoundSimulation<dijkstra::KStateRing> make_kstate_rounds(
    const dijkstra::KStateRing& ring, dijkstra::KStateConfig initial,
    RoundParams params);

/// SSRmin under CST (the model-gap-tolerant algorithm, Theorem 3). A node
/// holds a token iff it holds the primary or the secondary token as judged
/// from its own state and neighbor caches.
CstSimulation<core::SsrMinRing> make_ssrmin_cst(const core::SsrMinRing& ring,
                                                core::SsrConfig initial,
                                                NetworkParams params);

/// SSRmin under CST with the *weak* (tra-only) secondary-token condition
/// the paper rejects in §3.1. The protocol dynamics are identical; only
/// the per-node token predicate changes. Used by the E14 ablation.
CstSimulation<core::SsrMinRing> make_ssrmin_weak_cst(
    const core::SsrMinRing& ring, core::SsrConfig initial,
    NetworkParams params);

/// SSRmin under CST counting ONLY the secondary token (strong or weak
/// condition). Measures the paper's "the secondary token extincts"
/// argument directly: with the strong condition the secondary token exists
/// at every instant; with the weak one it disappears whenever the two
/// tokens are co-located.
CstSimulation<core::SsrMinRing> make_ssrmin_secondary_only_cst(
    const core::SsrMinRing& ring, core::SsrConfig initial,
    NetworkParams params, bool strong_condition);

/// Dijkstra's K-state ring under CST (Figure 11: exhibits token
/// extinction windows in the message-passing model).
CstSimulation<dijkstra::KStateRing> make_kstate_cst(
    const dijkstra::KStateRing& ring, dijkstra::KStateConfig initial,
    NetworkParams params);

/// Two independent Dijkstra instances under CST (Figure 12: still reaches
/// zero-token instants when both tokens are in flight simultaneously).
CstSimulation<dijkstra::DualKStateRing> make_dual_cst(
    const dijkstra::DualKStateRing& ring, dijkstra::DualConfig initial,
    NetworkParams params);

}  // namespace ssr::msgpass
