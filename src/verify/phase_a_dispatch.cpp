#include "verify/phase_a_dispatch.hpp"

#include "verify/phase_a_kernels.hpp"

namespace ssr::verify {

// Resolve the requested backend to one that is actually runnable: accept
// any LaneBackend value (user-threaded choices included) and degrade to an
// available width rather than faulting on a host without the ISA.
namespace {

util::LaneBackend runnable(util::LaneBackend backend) {
  if (backend == util::LaneBackend::kAvx512 &&
      !util::lane_backend_available(util::LaneBackend::kAvx512)) {
    backend = util::LaneBackend::kAvx2;
  }
  if (backend == util::LaneBackend::kAvx2 &&
      !util::lane_backend_available(util::LaneBackend::kAvx2)) {
    backend = util::LaneBackend::kU64;
  }
  return backend;
}

}  // namespace

std::unique_ptr<PhaseASlice> make_ssrmin_phase_a_slice(
    std::size_t n, std::uint32_t K, util::LaneBackend backend) {
  switch (runnable(backend)) {
#if defined(SSRING_LANE_AVX512)
    case util::LaneBackend::kAvx512:
      return detail::make_ssrmin_phase_a_slice_avx512(n, K);
#endif
#if defined(SSRING_LANE_AVX2)
    case util::LaneBackend::kAvx2:
      return detail::make_ssrmin_phase_a_slice_avx2(n, K);
#endif
    default:
      return detail::make_ssrmin_phase_a<std::uint64_t>(n, K, "u64");
  }
}

std::unique_ptr<PhaseASlice> make_kstate_phase_a_slice(
    std::size_t n, std::uint32_t K, util::LaneBackend backend) {
  switch (runnable(backend)) {
#if defined(SSRING_LANE_AVX512)
    case util::LaneBackend::kAvx512:
      return detail::make_kstate_phase_a_slice_avx512(n, K);
#endif
#if defined(SSRING_LANE_AVX2)
    case util::LaneBackend::kAvx2:
      return detail::make_kstate_phase_a_slice_avx2(n, K);
#endif
    default:
      return detail::make_kstate_phase_a<std::uint64_t>(n, K, "u64");
  }
}

}  // namespace ssr::verify
