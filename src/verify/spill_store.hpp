// The disk tier behind PhaseBStorage::kSpill: the delta-compressed move
// records keep MoveStore's exact byte format and two-level MoveLayout
// addressing, but the stream itself lives in an unlinked temporary file
// instead of RAM. Three cooperating pieces:
//
//  * SpillFile — RAII fd + mmap owner. Every failure mode (unwritable
//    tmpdir, ENOSPC mid-write, a file shorter than the layout promises)
//    surfaces as an SSR_REQUIRE error naming the path and the projected
//    spill bytes — never a crash, a SIGBUS or a silent short read.
//
//  * SpillWriteQueue / SpillBlockWriter — the encode-side pipeline. Each
//    Phase A worker owns one double-buffered SpillBlockWriter: while the
//    worker encodes records into one buffer, the single background flush
//    thread pwrite()s the other at its precomputed stream offset, so
//    encoding and disk I/O overlap and no worker ever holds more than two
//    block buffers (<= 128 KiB) of stream bytes in RAM.
//
//  * SpillMoveStore — the peel-side reader. After the encode pass it maps
//    the stream read-only (madvise MADV_SEQUENTIAL) and starts a prefetch
//    thread that advises MADV_WILLNEED a window of blocks ahead of the
//    consumers' maximum progress cursor; the level-synchronous peel
//    re-streams the file once per round, so the cursor rewinds at every
//    round boundary.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "verify/phaseb_store.hpp"

namespace ssr::verify {

/// Spill directory resolution: an explicit request wins, else
/// SSRING_CHECK_TMPDIR, else TMPDIR, else /tmp.
std::string resolve_spill_dir(const std::string& requested);

/// One temporary file holding the spilled record stream. create() unlinks
/// the file immediately (the fd keeps it alive), so aborted runs leak no
/// tmp files; open_path() adopts an existing path for the error-path
/// tests (/dev/full, pre-truncated files).
class SpillFile {
 public:
  SpillFile() = default;
  ~SpillFile() { close(); }
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  void create(const std::string& dir, std::uint64_t projected_bytes);
  void open_path(const std::string& path, std::uint64_t projected_bytes);
  /// Sparse-extends the file to @p bytes (writes fill it in afterwards).
  void truncate(std::uint64_t bytes);
  /// Full pwrite at @p offset; EINTR is retried, everything else throws.
  void write_at(std::uint64_t offset, const void* data, std::size_t len);
  /// Maps exactly @p expected_bytes read-only, fstat-checking the on-disk
  /// size first so truncation is an error instead of a SIGBUS later.
  /// Advises MADV_SEQUENTIAL. A zero-byte stream maps to nullptr.
  const std::uint8_t* map_readonly(std::uint64_t expected_bytes);
  /// MADV_WILLNEED on [offset, offset + len) of the mapping.
  void advise_willneed(std::uint64_t offset, std::uint64_t len) const;
  /// MADV_DONTNEED on the fully-covered pages of [offset, offset + len).
  /// Non-destructive for this read-only MAP_SHARED mapping: it only
  /// unmaps the pages from this process (RSS drops); a later access
  /// re-faults them from the page cache.
  void advise_dontneed(std::uint64_t offset, std::uint64_t len) const;
  void close();

  const std::string& path() const { return path_; }
  bool is_open() const { return fd_ >= 0; }

 private:
  [[noreturn]] void fail(const std::string& what, int err) const;

  int fd_ = -1;
  std::string path_;
  std::uint64_t projected_bytes_ = 0;
  std::uint8_t* map_ = nullptr;
  std::uint64_t map_bytes_ = 0;
};

/// Single background flush thread draining block-write jobs to a
/// SpillFile. Producers mark a buffer busy on submit(); the flusher
/// clears the flag once the pwrite landed, and wait_free() blocks until
/// then. A write error is latched and rethrown (as the original
/// SSR_REQUIRE error) from the next wait_free()/finish().
class SpillWriteQueue {
 public:
  explicit SpillWriteQueue(SpillFile& file) : file_(&file) {}
  ~SpillWriteQueue();
  SpillWriteQueue(const SpillWriteQueue&) = delete;
  SpillWriteQueue& operator=(const SpillWriteQueue&) = delete;

  void start();
  void submit(const std::uint8_t* data, std::uint64_t offset, std::size_t len,
              bool* busy);
  void wait_free(bool* busy);
  /// Drains the queue, joins the thread, rethrows the first write error.
  void finish();
  /// Drains and joins without throwing (unwind paths: submitted buffers
  /// must outlive the flush thread).
  void abort() noexcept;

 private:
  struct Job {
    const std::uint8_t* data;
    std::uint64_t offset;
    std::size_t len;
    bool* busy;
  };
  void flush_loop();

  SpillFile* file_;
  std::mutex mu_;
  std::condition_variable jobs_cv_;  ///< producers -> flusher
  std::condition_variable done_cv_;  ///< flusher -> waiting producers
  std::deque<Job> jobs_;
  std::thread thread_;
  bool stop_ = false;
  std::string error_;
};

/// Per-worker double buffer feeding a SpillWriteQueue. begin_block()
/// returns scratch for the next record block (waiting until the flusher
/// released it); end_block() hands it off for the background pwrite.
class SpillBlockWriter {
 public:
  SpillBlockWriter(SpillWriteQueue& queue, std::size_t buffer_bytes)
      : queue_(&queue) {
    buf_[0].resize(buffer_bytes);
    buf_[1].resize(buffer_bytes);
  }

  std::uint8_t* begin_block(std::uint64_t bytes) {
    queue_->wait_free(&busy_[cur_]);
    if (buf_[cur_].size() < bytes) buf_[cur_].resize(bytes);
    return buf_[cur_].data();
  }

  void end_block(std::uint64_t file_offset, std::uint64_t bytes) {
    queue_->submit(buf_[cur_].data(), file_offset,
                   static_cast<std::size_t>(bytes), &busy_[cur_]);
    cur_ ^= 1;
  }

 private:
  SpillWriteQueue* queue_;
  std::vector<std::uint8_t> buf_[2];
  bool busy_[2] = {false, false};
  int cur_ = 0;
};

/// Spilled counterpart of MoveStore: identical MoveLayout addressing and
/// record bytes, but the stream is written once through the flush queue,
/// then mapped read-only for the peel with MADV_WILLNEED prefetch running
/// a window ahead of the consumers.
class SpillMoveStore {
 public:
  SpillMoveStore() = default;
  ~SpillMoveStore() { release(); }
  SpillMoveStore(const SpillMoveStore&) = delete;
  SpillMoveStore& operator=(const SpillMoveStore&) = delete;

  void prepare(std::uint64_t total, const MoveRecordCodec& codec,
               std::string dir, std::uint64_t projected_file_bytes);

  MoveLayout& layout() { return layout_; }
  const MoveLayout& layout() const { return layout_; }

  /// Prefix-sums the layout, creates + sizes the spill file and starts
  /// the flush thread. Call between pass 1 and the encode pass.
  void finalize_layout();
  SpillWriteQueue& write_queue() { return queue_; }

  /// Drains the flush queue, verifies the on-disk size, maps the stream
  /// read-only and starts the prefetch thread advising @p window_blocks
  /// record blocks ahead of the consumers.
  void seal_for_read(std::uint32_t window_blocks);

  /// Round boundary: the peel re-streams the file from the start each
  /// round, so both the progress and the advised cursor rewind.
  void begin_round();
  /// Peel workers report the stream end offset of the block they just
  /// entered; the prefetch thread keeps the advised window ahead of the
  /// maximum.
  void note_progress(std::uint64_t byte_offset);

  const std::uint8_t* record_at(std::uint64_t c) const {
    return map_ + layout_.offset_of(c);
  }
  std::uint64_t stream_bytes() const { return layout_.total_bytes(); }
  const std::string& path() const { return file_.path(); }

  /// Stops the prefetch thread, unmaps and closes (idempotent).
  void release();

 private:
  void prefetch_loop();

  MoveLayout layout_;
  SpillFile file_;
  SpillWriteQueue queue_{file_};
  std::string dir_;
  std::uint64_t projected_file_bytes_ = 0;
  const std::uint8_t* map_ = nullptr;
  std::uint64_t window_bytes_ = 0;
  std::thread prefetch_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> progress_{0};
  std::uint64_t advised_ = 0;
  std::uint64_t dropped_ = 0;
  bool stop_prefetch_ = false;
};

}  // namespace ssr::verify
