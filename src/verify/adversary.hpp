// Optimal-adversary replay: the model checker's height function h is the
// exact worst-case potential — h(c) = 0 on Lambda and
// h(c) = 1 + max over successors h(c') elsewhere — so the daemon strategy
// "always move to a successor of maximal height" realizes the worst case
// exactly. Replaying it cross-validates the checker: the replayed
// execution must take exactly h(start) steps, decrementing the potential
// by one per step, and stay illegitimate until the last step.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "verify/modelcheck.hpp"

namespace ssr::verify {

/// Result of one worst-case replay.
struct ReplayResult {
  std::uint64_t steps = 0;
  /// Encoded configurations visited, start first, final (legitimate) last.
  std::vector<std::uint64_t> path;
  /// True iff every step decreased the height by exactly one.
  bool potential_decreased_by_one = true;
};

/// Replays the worst execution from @p start_code using the heights in
/// @p report (which must come from a run with keep_heights = true).
template <stab::RingProtocol P>
ReplayResult replay_worst_execution(const ModelChecker<P>& checker,
                                    const CheckReport& report,
                                    std::uint64_t start_code) {
  SSR_REQUIRE(!report.heights.empty(),
              "report lacks heights; run with keep_heights = true");
  SSR_REQUIRE(start_code < report.heights.size(),
              "start configuration out of range");
  ReplayResult result;
  std::uint64_t code = start_code;
  result.path.push_back(code);
  while (report.heights[code] > 0) {
    const auto config = checker.codec().decode(code);
    SSR_ASSERT(!checker.legitimate(config),
               "positive height on a legitimate configuration");
    const auto succs = checker.successor_codes(config);
    SSR_ASSERT(!succs.empty(), "deadlock during worst-case replay");
    // Pick the successor of maximal height (legitimate successors count
    // as height 0).
    std::uint64_t best = succs.front();
    std::uint32_t best_height = report.heights[succs.front()];
    for (std::uint64_t s : succs) {
      if (report.heights[s] > best_height) {
        best = s;
        best_height = report.heights[s];
      }
    }
    if (best_height + 1 != report.heights[code]) {
      result.potential_decreased_by_one = false;
    }
    code = best;
    result.path.push_back(code);
    ++result.steps;
    SSR_ASSERT(result.steps <= report.heights[start_code] + 1,
               "replay exceeded the predicted worst case");
  }
  return result;
}

/// Encoded configuration realizing the global worst case (requires
/// keep_heights).
inline std::uint64_t worst_configuration(const CheckReport& report) {
  SSR_REQUIRE(!report.heights.empty(),
              "report lacks heights; run with keep_heights = true");
  std::uint64_t best = 0;
  for (std::uint64_t c = 0; c < report.heights.size(); ++c) {
    if (report.heights[c] > report.heights[best]) best = c;
  }
  return best;
}

}  // namespace ssr::verify
