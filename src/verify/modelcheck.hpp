// Exhaustive finite-state verification of ring protocols for small (n, K).
//
// The paper proves its lemmas by hand; this module machine-checks them over
// the *entire* configuration space Gamma = (4K)^n for SSRmin (and K^n for
// Dijkstra's ring), under the full distributed daemon — i.e. considering
// every non-empty subset of enabled processes as a possible step:
//
//   * no deadlock           (Lemma 4): every configuration has an enabled
//                            process;
//   * closure               (Lemma 1): every successor of a legitimate
//                            configuration is legitimate;
//   * token bounds          (Lemma 2 / Theorem 1): in legitimate
//                            configurations exactly one primary and one
//                            secondary token, 1..2 privileged processes;
//   * convergence           (Lemma 6 / Theorem 2): no cycle lies entirely
//                            within the illegitimate region, i.e. every
//                            infinite execution reaches Lambda no matter
//                            what the (unfair, distributed) daemon does;
//   * worst-case stabilization time: the exact maximum, over illegitimate
//                            configurations and daemon strategies, of the
//                            number of steps to reach Lambda (the quantity
//                            Theorem 2 bounds by O(n^2)).
//
// The checker is generic over the protocol; a StateCodec maps local states
// to dense codes so a configuration becomes one base-(codec.count())
// integer.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "stabilizing/protocol.hpp"
#include "util/assert.hpp"

namespace ssr::verify {

/// Verification report. Counterexamples are encoded configuration indices
/// (decode with ConfigCodec::decode for inspection).
struct CheckReport {
  std::uint64_t total_configs = 0;
  std::uint64_t legitimate_configs = 0;

  bool deadlock_free = true;
  std::optional<std::uint64_t> deadlock_witness;

  bool closure_holds = true;
  std::optional<std::uint64_t> closure_witness;  ///< legit config with illegit successor

  bool token_bounds_hold = true;
  std::optional<std::uint64_t> token_witness;

  bool convergence_holds = true;
  std::optional<std::uint64_t> cycle_witness;  ///< config on an illegit cycle

  /// Max steps from any illegitimate configuration to Lambda under the
  /// worst daemon strategy. Only meaningful when convergence_holds.
  std::uint64_t worst_case_steps = 0;
  /// An illegitimate configuration realizing worst_case_steps.
  std::optional<std::uint64_t> worst_case_witness;

  /// Minimum number of privileged processes over *all* configurations
  /// (paper Lemma 3 implies >= 1 for SSRmin in the state-reading model).
  std::size_t min_privileged_anywhere = 0;

  /// Per-configuration worst-case steps to Lambda (indexed by encoded
  /// configuration; 0 for legitimate configurations). Populated only when
  /// CheckOptions::keep_heights is set and the convergence pass ran. This
  /// is the exact "potential function" of the protocol — the
  /// OptimalAdversary driver and the perturbation analysis are built on
  /// it.
  std::vector<std::uint32_t> heights;

  bool all_ok() const {
    return deadlock_free && closure_holds && token_bounds_hold &&
           convergence_holds;
  }
  std::string summary() const;
};

/// Options controlling which checks run (the convergence pass dominates
/// runtime; skip it for quick sanity sweeps).
struct CheckOptions {
  bool check_deadlock = true;
  bool check_closure = true;
  bool check_token_bounds = true;
  bool check_convergence = true;
  /// Retain the per-configuration height table in the report (costs 4
  /// bytes per configuration).
  bool keep_heights = false;
  /// Expected privileged-count bounds in legitimate configurations.
  std::size_t min_privileged = 1;
  std::size_t max_privileged = 2;
};

/// Dense encoding of whole configurations as base-(states_per_process)
/// integers.
template <typename State>
class ConfigCodec {
 public:
  using Encoder = std::function<std::uint32_t(const State&)>;
  using Decoder = std::function<State(std::uint32_t)>;

  ConfigCodec(std::size_t ring_size, std::uint32_t states_per_process,
              Encoder encode, Decoder decode)
      : n_(ring_size),
        radix_(states_per_process),
        encode_(std::move(encode)),
        decode_(std::move(decode)) {
    SSR_REQUIRE(radix_ >= 2, "need at least two states per process");
    // Guard against u64 overflow of radix^n.
    std::uint64_t total = 1;
    for (std::size_t i = 0; i < n_; ++i) {
      SSR_REQUIRE(total <= UINT64_MAX / radix_,
                  "configuration space exceeds 2^64; reduce n or K");
      total *= radix_;
    }
    total_ = total;
    SSR_REQUIRE(total_ <= (1ULL << 33),
                "configuration space too large for exhaustive checking");
  }

  std::size_t ring_size() const { return n_; }
  std::uint64_t total() const { return total_; }

  std::uint64_t encode(const std::vector<State>& config) const {
    SSR_REQUIRE(config.size() == n_, "configuration size mismatch");
    std::uint64_t idx = 0;
    for (std::size_t i = n_; i-- > 0;) idx = idx * radix_ + encode_(config[i]);
    return idx;
  }

  std::vector<State> decode(std::uint64_t idx) const {
    SSR_REQUIRE(idx < total_, "configuration index out of range");
    std::vector<State> config(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      config[i] = decode_(static_cast<std::uint32_t>(idx % radix_));
      idx /= radix_;
    }
    return config;
  }

 private:
  std::size_t n_;
  std::uint64_t radix_;
  Encoder encode_;
  Decoder decode_;
  std::uint64_t total_ = 0;
};

/// Exhaustive checker over all configurations of a protocol.
template <stab::RingProtocol P>
class ModelChecker {
 public:
  using State = typename P::State;
  using Config = std::vector<State>;
  using LegitPredicate = std::function<bool(const Config&)>;
  using PrivilegedCounter = std::function<std::size_t(const Config&)>;

  ModelChecker(P protocol, ConfigCodec<State> codec, LegitPredicate legit,
               PrivilegedCounter privileged)
      : protocol_(std::move(protocol)),
        codec_(std::move(codec)),
        legit_(std::move(legit)),
        privileged_(std::move(privileged)) {
    SSR_REQUIRE(codec_.ring_size() == protocol_.size(),
                "codec/protocol ring size mismatch");
  }

  CheckReport run(const CheckOptions& options = {}) const;

  const ConfigCodec<State>& codec() const { return codec_; }
  const P& protocol() const { return protocol_; }
  bool legitimate(const Config& config) const { return legit_(config); }
  std::size_t privileged(const Config& config) const {
    return privileged_(config);
  }

  /// All successor configurations of @p config under the distributed
  /// daemon (one per non-empty subset of the enabled processes; may
  /// contain duplicates). Empty iff the configuration is deadlocked.
  std::vector<std::uint64_t> successor_codes(const Config& config) const {
    std::vector<std::size_t> idx;
    std::vector<int> rules;
    std::vector<std::uint64_t> out;
    enabled(config, idx, rules);
    if (!idx.empty()) successors(config, idx, rules, out);
    return out;
  }

 private:
  /// Indices of enabled processes and their rules in @p config.
  void enabled(const Config& config, std::vector<std::size_t>& idx,
               std::vector<int>& rules) const {
    idx.clear();
    rules.clear();
    const std::size_t n = config.size();
    for (std::size_t i = 0; i < n; ++i) {
      const int r = protocol_.enabled_rule(i, config[i],
                                           config[stab::pred_index(i, n)],
                                           config[stab::succ_index(i, n)]);
      if (r != stab::kDisabled) {
        idx.push_back(i);
        rules.push_back(r);
      }
    }
  }

  /// All successor configuration indices under the distributed daemon (one
  /// per non-empty subset of the enabled set). Successors may repeat.
  void successors(const Config& config, const std::vector<std::size_t>& idx,
                  const std::vector<int>& rules,
                  std::vector<std::uint64_t>& out) const {
    out.clear();
    const std::size_t n = config.size();
    const std::size_t m = idx.size();
    SSR_ASSERT(m < 20, "enabled set too large for subset enumeration");
    Config next = config;
    for (std::uint32_t mask = 1; mask < (1u << m); ++mask) {
      // Composite atomicity: all selected read `config`, not `next`.
      for (std::size_t k = 0; k < m; ++k) {
        if (mask & (1u << k)) {
          const std::size_t i = idx[k];
          next[i] = protocol_.apply(i, rules[k], config[i],
                                    config[stab::pred_index(i, n)],
                                    config[stab::succ_index(i, n)]);
        }
      }
      out.push_back(codec_.encode(next));
      // Restore touched entries for the next mask.
      for (std::size_t k = 0; k < m; ++k) {
        if (mask & (1u << k)) next[idx[k]] = config[idx[k]];
      }
    }
  }

  P protocol_;
  ConfigCodec<State> codec_;
  LegitPredicate legit_;
  PrivilegedCounter privileged_;
};

// --- implementation -------------------------------------------------------

template <stab::RingProtocol P>
CheckReport ModelChecker<P>::run(const CheckOptions& options) const {
  CheckReport report;
  const std::uint64_t total = codec_.total();
  report.total_configs = total;
  report.min_privileged_anywhere = SIZE_MAX;

  std::vector<std::size_t> idx;
  std::vector<int> rules;
  std::vector<std::uint64_t> succs;

  // legit_flags doubles as the Lambda membership table for the convergence
  // pass.
  std::vector<std::uint8_t> legit_flags(total, 0);

  for (std::uint64_t c = 0; c < total; ++c) {
    const Config config = codec_.decode(c);
    const bool legit = legit_(config);
    legit_flags[c] = legit ? 1 : 0;
    if (legit) ++report.legitimate_configs;

    enabled(config, idx, rules);
    if (options.check_deadlock && idx.empty() && report.deadlock_free) {
      report.deadlock_free = false;
      report.deadlock_witness = c;
    }

    const std::size_t priv = privileged_(config);
    report.min_privileged_anywhere =
        std::min(report.min_privileged_anywhere, priv);

    if (legit && options.check_token_bounds && report.token_bounds_hold) {
      if (priv < options.min_privileged || priv > options.max_privileged) {
        report.token_bounds_hold = false;
        report.token_witness = c;
      }
    }

    if (legit && options.check_closure && report.closure_holds &&
        !idx.empty()) {
      successors(config, idx, rules, succs);
      for (std::uint64_t s : succs) {
        if (!legit_(codec_.decode(s))) {
          report.closure_holds = false;
          report.closure_witness = c;
          break;
        }
      }
    }
  }
  if (report.min_privileged_anywhere == SIZE_MAX)
    report.min_privileged_anywhere = 0;

  if (!options.check_convergence) return report;

  // Convergence: every infinite execution reaches Lambda iff the directed
  // graph restricted to illegitimate configurations is acyclic. While
  // checking, compute height(c) = max steps to Lambda under the worst
  // daemon (legitimate configs have height 0; edges into Lambda count 1).
  // Iterative DFS with tri-coloring; heights memoized in `height`.
  constexpr std::uint8_t kWhite = 0, kGray = 1, kBlack = 2;
  std::vector<std::uint8_t> color(total, kWhite);
  std::vector<std::uint32_t> height(total, 0);

  struct Frame {
    std::uint64_t node;
    std::vector<std::uint64_t> succ;
    std::size_t next = 0;
    std::uint32_t best = 0;
  };
  std::vector<Frame> stack;

  for (std::uint64_t root = 0; root < total; ++root) {
    if (legit_flags[root] || color[root] != kWhite) continue;
    if (!report.convergence_holds) break;

    stack.clear();
    color[root] = kGray;
    {
      Frame f;
      f.node = root;
      const Config config = codec_.decode(root);
      enabled(config, idx, rules);
      if (idx.empty()) {
        // Deadlocked illegitimate config: convergence fails (no execution
        // continues, so Lambda is never reached). Reported via
        // deadlock_free; treat as height 0 here.
        color[root] = kBlack;
        continue;
      }
      successors(config, idx, rules, f.succ);
      stack.push_back(std::move(f));
    }

    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next < f.succ.size()) {
        const std::uint64_t s = f.succ[f.next++];
        if (legit_flags[s]) {
          f.best = std::max(f.best, 1u);
          continue;
        }
        if (color[s] == kGray) {
          report.convergence_holds = false;
          report.cycle_witness = s;
          break;
        }
        if (color[s] == kBlack) {
          f.best = std::max(f.best, height[s] + 1);
          continue;
        }
        // White illegitimate successor: descend.
        color[s] = kGray;
        Frame child;
        child.node = s;
        const Config config = codec_.decode(s);
        enabled(config, idx, rules);
        SSR_ASSERT(!idx.empty() || !report.deadlock_free,
                   "unexpected deadlock during convergence pass");
        if (!idx.empty()) {
          successors(config, idx, rules, child.succ);
          stack.push_back(std::move(child));
        } else {
          color[s] = kBlack;
        }
        continue;
      }
      // All successors processed: finalize.
      color[f.node] = kBlack;
      height[f.node] = f.best;
      if (f.best > report.worst_case_steps) {
        report.worst_case_steps = f.best;
        report.worst_case_witness = f.node;
      }
      const std::uint32_t done_height = f.best;
      const std::uint64_t done_node = f.node;
      stack.pop_back();
      if (!stack.empty()) {
        Frame& parent = stack.back();
        (void)done_node;
        parent.best = std::max(parent.best, done_height + 1);
      }
    }
  }

  if (options.keep_heights && report.convergence_holds) {
    report.heights = std::move(height);
  }

  return report;
}

}  // namespace ssr::verify
