// Exhaustive finite-state verification of ring protocols for small (n, K).
//
// The paper proves its lemmas by hand; this module machine-checks them over
// the *entire* configuration space Gamma = (4K)^n for SSRmin (and K^n for
// Dijkstra's ring), under the full distributed daemon — i.e. considering
// every non-empty subset of enabled processes as a possible step:
//
//   * no deadlock           (Lemma 4): every configuration has an enabled
//                            process;
//   * closure               (Lemma 1): every successor of a legitimate
//                            configuration is legitimate;
//   * token bounds          (Lemma 2 / Theorem 1): in legitimate
//                            configurations exactly one primary and one
//                            secondary token, 1..2 privileged processes;
//   * convergence           (Lemma 6 / Theorem 2): no cycle lies entirely
//                            within the illegitimate region, i.e. every
//                            infinite execution reaches Lambda no matter
//                            what the (unfair, distributed) daemon does;
//   * worst-case stabilization time: the exact maximum, over illegitimate
//                            configurations and daemon strategies, of the
//                            number of steps to reach Lambda (the quantity
//                            Theorem 2 bounds by O(n^2)).
//
// The checker is generic over the protocol; a StateCodec maps local states
// to dense codes so a configuration becomes one base-(codec.count())
// integer.
//
// run() executes as a two-phase parallel pipeline over a util::ThreadPool
// (CheckOptions::threads; 1 = fully sequential, 0 = hardware concurrency):
//
//   Phase A (sharded sweep)  — the index range [0, total) is split into
//     dynamically claimed chunks; each worker walks its chunk with an
//     allocation-free ConfigOdometer (incremental base-radix counter, no
//     division, no per-configuration decode), fills the shared Lambda
//     membership table, and accumulates per-worker partial results. The
//     closure check consults the precomputed legitimacy table instead of
//     re-decoding successors. Witnesses merge as "lowest index wins", so
//     the report is bit-identical to the sequential ascending scan.
//
//   Phase B (convergence)    — instead of a DFS, heights are computed by
//     level-synchronous *reverse induction from Lambda* over a predecessor
//     CSR: a configuration finalizes once all its successors have, and the
//     finalizing round is its height (= 1 + max successor height); a
//     frontier that drains early certifies an illegitimate cycle (the
//     residue is exactly the set of configurations from which the daemon
//     can avoid Lambda forever). The height fixpoint is unique, so the
//     table — and hence worst_case_steps — is identical at every thread
//     count.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "stabilizing/protocol.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace ssr::verify {

/// Verification report. Counterexamples are encoded configuration indices
/// (decode with ConfigCodec::decode for inspection). All witnesses are the
/// lowest-numbered configuration exhibiting the property, independent of
/// CheckOptions::threads.
struct CheckReport {
  std::uint64_t total_configs = 0;
  std::uint64_t legitimate_configs = 0;

  bool deadlock_free = true;
  std::optional<std::uint64_t> deadlock_witness;

  bool closure_holds = true;
  std::optional<std::uint64_t> closure_witness;  ///< legit config with illegit successor

  bool token_bounds_hold = true;
  std::optional<std::uint64_t> token_witness;

  bool convergence_holds = true;
  /// Lowest-numbered configuration from which some execution avoids Lambda
  /// forever (it lies on, or reaches, an illegitimate cycle).
  std::optional<std::uint64_t> cycle_witness;

  /// Max steps from any illegitimate configuration to Lambda under the
  /// worst daemon strategy. Only meaningful when convergence_holds.
  std::uint64_t worst_case_steps = 0;
  /// Lowest-numbered illegitimate configuration realizing worst_case_steps.
  std::optional<std::uint64_t> worst_case_witness;

  /// Minimum number of privileged processes over *all* configurations
  /// (paper Lemma 3 implies >= 1 for SSRmin in the state-reading model).
  std::size_t min_privileged_anywhere = 0;

  /// Per-configuration worst-case steps to Lambda (indexed by encoded
  /// configuration; 0 for legitimate configurations). Populated only when
  /// CheckOptions::keep_heights is set and the convergence pass ran. This
  /// is the exact "potential function" of the protocol — the
  /// OptimalAdversary driver and the perturbation analysis are built on
  /// it.
  std::vector<std::uint32_t> heights;

  bool all_ok() const {
    return deadlock_free && closure_holds && token_bounds_hold &&
           convergence_holds;
  }
  std::string summary() const;
};

/// Options controlling which checks run (the convergence pass dominates
/// runtime; skip it for quick sanity sweeps).
struct CheckOptions {
  bool check_deadlock = true;
  bool check_closure = true;
  bool check_token_bounds = true;
  bool check_convergence = true;
  /// Retain the per-configuration height table in the report (costs 4
  /// bytes per configuration).
  bool keep_heights = false;
  /// Expected privileged-count bounds in legitimate configurations.
  std::size_t min_privileged = 1;
  std::size_t max_privileged = 2;
  /// Worker threads for the sweep and convergence passes; 0 = one per
  /// hardware thread, 1 = fully sequential. The report is bit-identical
  /// at every thread count.
  std::size_t threads = 0;
};

/// Dense encoding of whole configurations as base-(states_per_process)
/// integers.
template <typename State>
class ConfigCodec {
 public:
  using Encoder = std::function<std::uint32_t(const State&)>;
  using Decoder = std::function<State(std::uint32_t)>;

  ConfigCodec(std::size_t ring_size, std::uint32_t states_per_process,
              Encoder encode, Decoder decode)
      : n_(ring_size),
        radix_(states_per_process),
        encode_(std::move(encode)),
        decode_(std::move(decode)) {
    SSR_REQUIRE(radix_ >= 2, "need at least two states per process");
    // Guard against u64 overflow of radix^n.
    std::uint64_t total = 1;
    weights_.reserve(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      SSR_REQUIRE(total <= UINT64_MAX / radix_,
                  "configuration space exceeds 2^64; reduce n or K");
      weights_.push_back(total);
      total *= radix_;
    }
    total_ = total;
    SSR_REQUIRE(total_ <= (1ULL << 33),
                "configuration space too large for exhaustive checking");
  }

  std::size_t ring_size() const { return n_; }
  std::uint64_t total() const { return total_; }
  std::uint64_t radix() const { return radix_; }
  /// Positional weight of process i in the mixed-radix code: radix^i.
  std::uint64_t weight(std::size_t i) const { return weights_[i]; }

  std::uint32_t encode_digit(const State& s) const { return encode_(s); }
  State decode_digit(std::uint32_t digit) const { return decode_(digit); }

  std::uint64_t encode(const std::vector<State>& config) const {
    SSR_REQUIRE(config.size() == n_, "configuration size mismatch");
    std::uint64_t idx = 0;
    for (std::size_t i = n_; i-- > 0;) idx = idx * radix_ + encode_(config[i]);
    return idx;
  }

  std::vector<State> decode(std::uint64_t idx) const {
    SSR_REQUIRE(idx < total_, "configuration index out of range");
    std::vector<State> config(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      config[i] = decode_(static_cast<std::uint32_t>(idx % radix_));
      idx /= radix_;
    }
    return config;
  }

 private:
  std::size_t n_;
  std::uint64_t radix_;
  Encoder encode_;
  Decoder decode_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> weights_;
};

/// Allocation-free enumeration of consecutive configurations: decodes the
/// starting index once, then advances like an odometer (amortized O(1)
/// decoder calls per configuration, no division, no allocation). Local
/// states are materialized through a digit -> State table built once, so
/// the per-step cost is a table copy, not a std::function call.
template <typename State>
class ConfigOdometer {
 public:
  explicit ConfigOdometer(const ConfigCodec<State>& codec)
      : codec_(&codec),
        digits_(codec.ring_size(), 0),
        config_(codec.ring_size(), codec.decode_digit(0)) {
    states_.reserve(static_cast<std::size_t>(codec.radix()));
    for (std::uint32_t d = 0; d < codec.radix(); ++d) {
      states_.push_back(codec.decode_digit(d));
    }
  }

  /// Repositions at configuration @p idx.
  void seek(std::uint64_t idx) {
    SSR_REQUIRE(idx < codec_->total(), "configuration index out of range");
    code_ = idx;
    for (std::size_t i = 0; i < digits_.size(); ++i) {
      const auto d = static_cast<std::uint32_t>(idx % codec_->radix());
      digits_[i] = d;
      config_[i] = states_[d];
      idx /= codec_->radix();
    }
  }

  /// Carry-propagating increment to the next configuration. Callers bound
  /// their loops by ConfigCodec::total(); advancing past the last
  /// configuration wraps to zero.
  void advance() {
    ++code_;
    for (std::size_t i = 0; i < digits_.size(); ++i) {
      if (++digits_[i] < codec_->radix()) {
        config_[i] = states_[digits_[i]];
        return;
      }
      digits_[i] = 0;
      config_[i] = states_[0];
    }
    code_ = 0;
  }

  std::uint64_t code() const { return code_; }
  const std::vector<State>& config() const { return config_; }
  const std::vector<std::uint32_t>& digits() const { return digits_; }

 private:
  const ConfigCodec<State>* codec_;
  std::uint64_t code_ = 0;
  std::vector<std::uint32_t> digits_;
  std::vector<State> config_;
  std::vector<State> states_;  ///< digit -> decoded local state
};

/// Exhaustive checker over all configurations of a protocol.
template <stab::RingProtocol P>
class ModelChecker {
 public:
  using State = typename P::State;
  using Config = std::vector<State>;
  using LegitPredicate = std::function<bool(const Config&)>;
  using PrivilegedCounter = std::function<std::size_t(const Config&)>;

  ModelChecker(P protocol, ConfigCodec<State> codec, LegitPredicate legit,
               PrivilegedCounter privileged)
      : protocol_(std::move(protocol)),
        codec_(std::move(codec)),
        legit_(std::move(legit)),
        privileged_(std::move(privileged)) {
    SSR_REQUIRE(codec_.ring_size() == protocol_.size(),
                "codec/protocol ring size mismatch");
  }

  CheckReport run(const CheckOptions& options = {}) const;

  const ConfigCodec<State>& codec() const { return codec_; }
  const P& protocol() const { return protocol_; }
  bool legitimate(const Config& config) const { return legit_(config); }
  std::size_t privileged(const Config& config) const {
    return privileged_(config);
  }

  /// All distinct successor configurations of @p config under the
  /// distributed daemon (one per non-empty subset of the enabled
  /// processes; deduplicated, sorted ascending). Empty iff the
  /// configuration is deadlocked.
  std::vector<std::uint64_t> successor_codes(const Config& config) const {
    SweepScratch s;
    enabled(config, s.idx, s.rules);
    if (s.idx.empty()) return {};
    std::vector<std::uint32_t> digits(config.size());
    for (std::size_t i = 0; i < config.size(); ++i) {
      digits[i] = codec_.encode_digit(config[i]);
    }
    successors_at(config, digits, codec_.encode(config), s);
    return std::move(s.succs);
  }

 private:
  /// Per-worker reusable buffers for the sweep (no per-configuration
  /// allocation once warm).
  struct SweepScratch {
    std::vector<std::size_t> idx;       ///< enabled process indices
    std::vector<int> rules;             ///< their enabled rules
    std::vector<std::int64_t> deltas;   ///< per enabled process: code delta
    std::vector<std::int64_t> sums;     ///< subset-sum table (size 2^m)
    std::vector<std::uint64_t> succs;   ///< deduped successor codes
  };

  /// Indices of enabled processes and their rules in @p config.
  void enabled(const Config& config, std::vector<std::size_t>& idx,
               std::vector<int>& rules) const {
    idx.clear();
    rules.clear();
    const std::size_t n = config.size();
    for (std::size_t i = 0; i < n; ++i) {
      const int r = protocol_.enabled_rule(i, config[i],
                                           config[stab::pred_index(i, n)],
                                           config[stab::succ_index(i, n)]);
      if (r != stab::kDisabled) {
        idx.push_back(i);
        rules.push_back(r);
      }
    }
  }

  /// Computes the per-enabled-process configuration-code deltas into
  /// s.deltas. Composite atomicity: every selected process reads the
  /// pre-step configuration, so the post-state of each enabled process is
  /// the same in every subset — it is applied once and each subset's
  /// successor code is a pure integer sum of per-process code deltas (no
  /// re-encoding per subset).
  void compute_deltas(const Config& config,
                      const std::vector<std::uint32_t>& digits,
                      SweepScratch& s) const {
    const std::size_t n = config.size();
    const std::size_t m = s.idx.size();
    SSR_ASSERT(m > 0 && m < 20, "enabled set size out of range");
    s.deltas.clear();
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t i = s.idx[k];
      const State next = protocol_.apply(i, s.rules[k], config[i],
                                         config[stab::pred_index(i, n)],
                                         config[stab::succ_index(i, n)]);
      const std::int64_t delta =
          static_cast<std::int64_t>(codec_.encode_digit(next)) -
          static_cast<std::int64_t>(digits[i]);
      s.deltas.push_back(delta * static_cast<std::int64_t>(codec_.weight(i)));
    }
  }

  /// Invokes fn(successor_code) for each of the 2^m - 1 daemon choices
  /// (subset-sum enumeration over s.deltas; may repeat codes). Requires a
  /// prior compute_deltas on the same configuration.
  template <typename Fn>
  void for_each_successor(std::uint64_t code, SweepScratch& s, Fn&& fn) const {
    const std::size_t m = s.deltas.size();
    const std::uint32_t subsets = 1u << m;
    if (s.sums.size() < subsets) s.sums.resize(subsets);
    s.sums[0] = 0;
    for (std::uint32_t mask = 1; mask < subsets; ++mask) {
      s.sums[mask] = s.sums[mask & (mask - 1)] +
                     s.deltas[static_cast<std::size_t>(std::countr_zero(mask))];
      fn(static_cast<std::uint64_t>(static_cast<std::int64_t>(code) +
                                    s.sums[mask]));
    }
  }

  /// Distinct successor codes (sorted ascending) into s.succs, for the
  /// configuration with code @p code and per-process digits @p digits,
  /// whose enabled set (s.idx / s.rules) was already computed.
  void successors_at(const Config& config,
                     const std::vector<std::uint32_t>& digits,
                     std::uint64_t code, SweepScratch& s) const {
    compute_deltas(config, digits, s);
    s.succs.clear();
    for_each_successor(code, s,
                       [&](std::uint64_t sc) { s.succs.push_back(sc); });
    std::sort(s.succs.begin(), s.succs.end());
    s.succs.erase(std::unique(s.succs.begin(), s.succs.end()), s.succs.end());
  }

  P protocol_;
  ConfigCodec<State> codec_;
  LegitPredicate legit_;
  PrivilegedCounter privileged_;
};

// --- implementation -------------------------------------------------------

template <stab::RingProtocol P>
CheckReport ModelChecker<P>::run(const CheckOptions& options) const {
  CheckReport report;
  const std::uint64_t total = codec_.total();
  report.total_configs = total;

  util::ThreadPool pool(options.threads);
  const std::size_t workers = pool.size();
  const std::uint64_t chunk = std::clamp<std::uint64_t>(
      total / (workers * 8), 256, std::uint64_t{1} << 16);

  // Per-worker partial results, merged deterministically afterwards. All
  // merges are order-independent (min / sum), so dynamic chunk claiming
  // cannot change the report.
  struct Partial {
    std::uint64_t legit_count = 0;
    std::uint64_t deadlock = UINT64_MAX;  ///< lowest deadlocked config
    std::uint64_t closure = UINT64_MAX;   ///< lowest closure violation
    std::uint64_t token = UINT64_MAX;     ///< lowest token-bound violation
    std::size_t min_priv = SIZE_MAX;
    std::uint32_t max_height = 0;
    std::uint64_t max_height_at = UINT64_MAX;
  };
  struct Worker {
    ConfigOdometer<State> od;
    SweepScratch s;
    Partial p;
    explicit Worker(const ConfigCodec<State>& codec) : od(codec) {}
  };
  std::vector<Worker> ws;
  ws.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) ws.emplace_back(codec_);

  // ---- Phase A1: Lambda membership table. Shared across workers (each
  // byte written by exactly one worker); the closure check and the
  // convergence pass index into it instead of re-evaluating the predicate
  // on decoded successors.
  std::vector<std::uint8_t> legit_flags(total);
  pool.for_chunks(0, total, chunk,
                  [&](std::size_t w, std::uint64_t lo, std::uint64_t hi) {
                    Worker& wk = ws[w];
                    wk.od.seek(lo);
                    std::uint64_t count = 0;
                    for (std::uint64_t c = lo; c < hi; ++c, wk.od.advance()) {
                      const bool legit = legit_(wk.od.config());
                      legit_flags[c] = legit ? 1 : 0;
                      count += legit ? 1 : 0;
                    }
                    wk.p.legit_count += count;
                  });

  // ---- Phase A2: deadlock / token-bound / closure sweep.
  pool.for_chunks(0, total, chunk, [&](std::size_t w, std::uint64_t lo,
                                       std::uint64_t hi) {
    Worker& wk = ws[w];
    SweepScratch& s = wk.s;
    Partial& p = wk.p;
    wk.od.seek(lo);
    for (std::uint64_t c = lo; c < hi; ++c, wk.od.advance()) {
      const Config& config = wk.od.config();
      enabled(config, s.idx, s.rules);
      if (options.check_deadlock && s.idx.empty() && c < p.deadlock) {
        p.deadlock = c;
      }
      const std::size_t priv = privileged_(config);
      p.min_priv = std::min(p.min_priv, priv);
      if (!legit_flags[c]) continue;
      if (options.check_token_bounds && c < p.token &&
          (priv < options.min_privileged || priv > options.max_privileged)) {
        p.token = c;
      }
      if (options.check_closure && c < p.closure && !s.idx.empty()) {
        successors_at(config, wk.od.digits(), c, s);
        for (std::uint64_t sc : s.succs) {
          if (!legit_flags[sc]) {
            p.closure = c;
            break;
          }
        }
      }
    }
  });

  {
    std::uint64_t deadlock = UINT64_MAX, closure = UINT64_MAX,
                  token = UINT64_MAX;
    std::size_t min_priv = SIZE_MAX;
    for (const Worker& wk : ws) {
      report.legitimate_configs += wk.p.legit_count;
      deadlock = std::min(deadlock, wk.p.deadlock);
      closure = std::min(closure, wk.p.closure);
      token = std::min(token, wk.p.token);
      min_priv = std::min(min_priv, wk.p.min_priv);
    }
    if (deadlock != UINT64_MAX) {
      report.deadlock_free = false;
      report.deadlock_witness = deadlock;
    }
    if (closure != UINT64_MAX) {
      report.closure_holds = false;
      report.closure_witness = closure;
    }
    if (token != UINT64_MAX) {
      report.token_bounds_hold = false;
      report.token_witness = token;
    }
    report.min_privileged_anywhere = min_priv == SIZE_MAX ? 0 : min_priv;
  }

  if (!options.check_convergence) return report;

  // ---- Phase B: convergence by reverse induction from Lambda.
  //
  // height(c) = 0 on Lambda, height(c) = 1 + max over successors height(c')
  // elsewhere. Build the *reverse* adjacency (predecessor CSR) of the step
  // graph once, then peel Kahn-style in level-synchronous rounds from the
  // height-0 layer: finalizing a config decrements each predecessor's
  // pending-successor count, and a predecessor whose count reaches zero
  // joins the next round. A config's height is exactly the round that
  // finalizes it — its max-height successor (height r-1, by induction
  // finalized in round r-1) is the last one to finalize — so no forward
  // adjacency is ever stored or scanned. Every edge is touched O(1) times.
  // If the frontier drains while configs remain, each remaining config can
  // step to another remaining config forever — an illegitimate cycle is
  // reachable and convergence fails. The height fixpoint is unique, so
  // reports are identical at every thread count.
  SSR_REQUIRE(total <= (std::uint64_t{1} << 32),
              "convergence pass supports at most 2^32 configurations");

  // Pass 1: out-degrees (pending) and in-degrees (rcount). Successors are
  // enumerated but not stored — the only per-edge state is a predecessor
  // count bump. Repeated successor codes (possible only for
  // state-preserving rules) are kept on both sides, so the Kahn counts
  // stay consistent and heights are unaffected.
  // With a single worker the shared counters have exactly one writer, so
  // the lock-prefixed RMWs (the dominant per-edge cost) degrade to plain
  // arithmetic. Both flavours are exercised by the differential tests.
  const bool solo = workers == 1;

  std::vector<std::uint32_t> pending(total, 0);  ///< unfinalized successors
  std::vector<std::uint32_t> rcount(total, 0);   ///< predecessor counts
  pool.for_chunks(
      0, total, chunk, [&](std::size_t w, std::uint64_t lo, std::uint64_t hi) {
        Worker& wk = ws[w];
        wk.od.seek(lo);
        for (std::uint64_t c = lo; c < hi; ++c, wk.od.advance()) {
          if (legit_flags[c]) continue;
          enabled(wk.od.config(), wk.s.idx, wk.s.rules);
          if (wk.s.idx.empty()) continue;  // deadlocked: height 0
          pending[c] =
              static_cast<std::uint32_t>((std::uint64_t{1} << wk.s.idx.size()) - 1);
          compute_deltas(wk.od.config(), wk.od.digits(), wk.s);
          for_each_successor(c, wk.s, [&](std::uint64_t sc) {
            if (solo) {
              ++rcount[sc];
            } else {
              std::atomic_ref<std::uint32_t>(rcount[sc])
                  .fetch_add(1, std::memory_order_relaxed);
            }
          });
        }
      });

  std::vector<std::uint64_t> roffsets(total + 1, 0);
  for (std::uint64_t c = 0; c < total; ++c) {
    roffsets[c + 1] = roffsets[c] + rcount[c];
  }

  // Pass 2: re-enumerate and scatter predecessors into the CSR. rcount
  // doubles as the per-target fill cursor (counted back down to zero).
  // Predecessors land in arbitrary order within a slice, which only
  // affects decrement order, never counts or heights.
  std::vector<std::uint32_t> redges(roffsets[total]);
  pool.for_chunks(
      0, total, chunk, [&](std::size_t w, std::uint64_t lo, std::uint64_t hi) {
        Worker& wk = ws[w];
        wk.od.seek(lo);
        for (std::uint64_t c = lo; c < hi; ++c, wk.od.advance()) {
          if (pending[c] == 0) continue;
          enabled(wk.od.config(), wk.s.idx, wk.s.rules);
          compute_deltas(wk.od.config(), wk.od.digits(), wk.s);
          for_each_successor(c, wk.s, [&](std::uint64_t sc) {
            const std::uint32_t slot =
                solo ? rcount[sc]--
                     : std::atomic_ref<std::uint32_t>(rcount[sc])
                           .fetch_sub(1, std::memory_order_relaxed);
            redges[roffsets[sc] + slot - 1] = static_cast<std::uint32_t>(c);
          });
        }
      });

  std::vector<std::uint32_t> height(total, 0);
  // pending is 0 for Lambda and for deadlocked illegitimate configs
  // (height 0; the latter are already reported through deadlock_free).
  // Those zero-pending configs form the initial, round-0 frontier.
  std::vector<std::uint32_t> frontier;
  std::uint64_t finalized = 0;
  for (std::uint64_t c = 0; c < total; ++c) {
    if (pending[c] == 0) {
      frontier.push_back(static_cast<std::uint32_t>(c));
      ++finalized;
    }
  }

  std::vector<std::vector<std::uint32_t>> next_frontiers(workers);
  for (std::uint32_t round = 1; !frontier.empty(); ++round) {
    const std::uint64_t fr_chunk = std::clamp<std::uint64_t>(
        frontier.size() / (workers * 8), 64, std::uint64_t{1} << 14);
    pool.for_chunks(0, frontier.size(), fr_chunk, [&](std::size_t w,
                                                      std::uint64_t lo,
                                                      std::uint64_t hi) {
      std::vector<std::uint32_t>& next = next_frontiers[w];
      for (std::uint64_t t = lo; t < hi; ++t) {
        const std::uint32_t f = frontier[t];
        for (std::uint64_t e = roffsets[f]; e < roffsets[f + 1]; ++e) {
          const std::uint32_t p = redges[e];
          const std::uint32_t left =
              solo ? --pending[p]
                   : std::atomic_ref<std::uint32_t>(pending[p])
                             .fetch_sub(1, std::memory_order_relaxed) -
                         1;
          if (left != 0) continue;
          // Last successor of p finalized, in the previous round, at
          // height round - 1 — so p's height is exactly this round.
          height[p] = round;
          next.push_back(p);
        }
      }
    });
    frontier.clear();
    for (std::vector<std::uint32_t>& next : next_frontiers) {
      frontier.insert(frontier.end(), next.begin(), next.end());
      finalized += next.size();
      next.clear();
    }
  }

  if (finalized != total) {
    // Frontier drained with configs left: every remaining config keeps an
    // unfinalized successor, so from any of them the daemon can stay
    // illegitimate forever.
    report.convergence_holds = false;
    std::uint64_t lowest = UINT64_MAX;
    for (std::uint64_t c = 0; c < total && lowest == UINT64_MAX; ++c) {
      if (pending[c] != 0) lowest = c;
    }
    report.cycle_witness = lowest;
  }

  if (report.convergence_holds) {
    pool.for_chunks(0, total, chunk,
                    [&](std::size_t w, std::uint64_t lo, std::uint64_t hi) {
                      Partial& p = ws[w].p;
                      for (std::uint64_t c = lo; c < hi; ++c) {
                        const std::uint32_t h = height[c];
                        if (h == 0) continue;
                        if (h > p.max_height ||
                            (h == p.max_height && c < p.max_height_at)) {
                          p.max_height = h;
                          p.max_height_at = c;
                        }
                      }
                    });
    std::uint32_t worst = 0;
    std::uint64_t worst_at = UINT64_MAX;
    for (const Worker& wk : ws) {
      if (wk.p.max_height > worst ||
          (wk.p.max_height == worst && wk.p.max_height_at < worst_at)) {
        worst = wk.p.max_height;
        worst_at = wk.p.max_height_at;
      }
    }
    report.worst_case_steps = worst;
    if (worst > 0) report.worst_case_witness = worst_at;
    if (options.keep_heights) report.heights = std::move(height);
  }

  return report;
}

}  // namespace ssr::verify
