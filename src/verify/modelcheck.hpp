// Exhaustive finite-state verification of ring protocols for small (n, K).
//
// The paper proves its lemmas by hand; this module machine-checks them over
// the *entire* configuration space Gamma = (4K)^n for SSRmin (and K^n for
// Dijkstra's ring), under the full distributed daemon — i.e. considering
// every non-empty subset of enabled processes as a possible step:
//
//   * no deadlock           (Lemma 4): every configuration has an enabled
//                            process;
//   * closure               (Lemma 1): every successor of a legitimate
//                            configuration is legitimate;
//   * token bounds          (Lemma 2 / Theorem 1): in legitimate
//                            configurations exactly one primary and one
//                            secondary token, 1..2 privileged processes;
//   * convergence           (Lemma 6 / Theorem 2): no cycle lies entirely
//                            within the illegitimate region, i.e. every
//                            infinite execution reaches Lambda no matter
//                            what the (unfair, distributed) daemon does;
//   * worst-case stabilization time: the exact maximum, over illegitimate
//                            configurations and daemon strategies, of the
//                            number of steps to reach Lambda (the quantity
//                            Theorem 2 bounds by O(n^2)).
//
// The checker is generic over the protocol; a StateCodec maps local states
// to dense codes so a configuration becomes one base-(codec.count())
// integer.
//
// run() executes as a two-phase parallel pipeline over a util::ThreadPool
// (CheckOptions::threads; 1 = fully sequential, 0 = hardware concurrency):
//
//   Phase A (sharded sweep)  — the index range [0, total) is split into
//     dynamically claimed chunks (aligned to TwoLevelBitset::kBlockBits so
//     every bitset word has one writer); each worker walks its chunk with
//     an allocation-free ConfigOdometer (incremental base-radix counter,
//     no division, no per-configuration decode), fills the shared Lambda
//     membership bitset, and accumulates per-worker partial results. The
//     closure check consults the precomputed legitimacy bitset instead of
//     re-evaluating the predicate on decoded successors. Witnesses merge
//     as "lowest index wins", so the report is bit-identical to the
//     sequential ascending scan.
//
//   Phase B (convergence)    — heights are computed by level-synchronous
//     *reverse induction from Lambda*: a configuration finalizes once all
//     its successors have, and the finalizing round is its height
//     (= 1 + max successor height); if a round finalizes nothing while
//     configurations remain, the residue is exactly the set from which
//     the daemon can avoid Lambda forever — an illegitimate cycle. The
//     height fixpoint is unique, so the table — and hence
//     worst_case_steps — is identical at every thread count and in every
//     storage mode.
//
//     Three storage backends implement the induction (CheckOptions::
//     storage, default kAuto picks from a projected-peak-bytes estimate
//     against the memory budget — see phaseb_store.hpp):
//
//       kLegacyCsr   — the original explicit predecessor CSR (8-byte
//                      offsets + 4-byte edge entries) peeled Kahn-style
//                      with pending-successor counts. Fastest per edge,
//                      but O(4 bytes) per *edge* and edges grow as
//                      sum of 2^m - 1 over enabled sets m.
//       kCompressed  — one delta-compressed move record per *source*
//                      configuration (varint enabled-set mask + packed
//                      digit deltas; the whole daemon fan-out is implied
//                      by subset sums), decoded streaming each round.
//                      A watched-subset probe makes the per-round cost of
//                      a still-blocked configuration O(record).
//       kCsrFree     — zero edge storage: successors are re-derived from
//                      the odometer on every visit. Cheapest memory,
//                      most recompute.
//       kSpill       — the compressed records written to an unlinked
//                      temp file (double-buffered background writes) and
//                      streamed back per peel round through an mmap with
//                      MADV_WILLNEED prefetch running a window ahead of
//                      the consumers. Watch-free, so its *resident*
//                      footprint (bitsets + offsets + heights) undercuts
//                      even kCsrFree — the out-of-core tier for spaces
//                      no in-RAM mode fits.
//
//     Per-structure peak bytes, edge counts and round counts are reported
//     in CheckReport::stats.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "stabilizing/protocol.hpp"
#include "util/assert.hpp"
#include "util/packed_bitset.hpp"
#include "util/thread_pool.hpp"
#include "verify/phase_a_sliced.hpp"
#include "verify/phaseb_store.hpp"
#include "verify/spill_store.hpp"

namespace ssr::verify {

/// Verification report. Counterexamples are encoded configuration indices
/// (decode with ConfigCodec::decode for inspection). All witnesses are the
/// lowest-numbered configuration exhibiting the property, independent of
/// CheckOptions::threads and CheckOptions::storage.
struct CheckReport {
  std::uint64_t total_configs = 0;
  std::uint64_t legitimate_configs = 0;

  bool deadlock_free = true;
  std::optional<std::uint64_t> deadlock_witness;

  bool closure_holds = true;
  std::optional<std::uint64_t> closure_witness;  ///< legit config with illegit successor

  bool token_bounds_hold = true;
  std::optional<std::uint64_t> token_witness;

  bool convergence_holds = true;
  /// Lowest-numbered configuration from which some execution avoids Lambda
  /// forever (it lies on, or reaches, an illegitimate cycle).
  std::optional<std::uint64_t> cycle_witness;

  /// Max steps from any illegitimate configuration to Lambda under the
  /// worst daemon strategy. Only meaningful when convergence_holds.
  std::uint64_t worst_case_steps = 0;
  /// Lowest-numbered illegitimate configuration realizing worst_case_steps.
  std::optional<std::uint64_t> worst_case_witness;

  /// Minimum number of privileged processes over *all* configurations
  /// (paper Lemma 3 implies >= 1 for SSRmin in the state-reading model).
  std::size_t min_privileged_anywhere = 0;

  /// Per-configuration worst-case steps to Lambda (indexed by encoded
  /// configuration; 0 for legitimate configurations). Populated only when
  /// CheckOptions::keep_heights is set and the convergence pass ran.
  /// Packed as u16 per configuration with a sparse escape for outliers.
  /// This is the exact "potential function" of the protocol — the
  /// OptimalAdversary driver and the perturbation analysis are built on
  /// it.
  HeightTable heights;

  /// Memory/edge telemetry for the run (identical checks, mode-dependent
  /// byte counts). Not part of the bit-identity contract.
  CheckStats stats;

  bool all_ok() const {
    return deadlock_free && closure_holds && token_bounds_hold &&
           convergence_holds;
  }
  std::string summary() const;
};

/// Options controlling which checks run (the convergence pass dominates
/// runtime; skip it for quick sanity sweeps).
struct CheckOptions {
  bool check_deadlock = true;
  bool check_closure = true;
  bool check_token_bounds = true;
  bool check_convergence = true;
  /// Retain the per-configuration height table in the report (costs 2
  /// bytes per configuration, packed).
  bool keep_heights = false;
  /// Expected privileged-count bounds in legitimate configurations.
  std::size_t min_privileged = 1;
  std::size_t max_privileged = 2;
  /// Worker threads for the sweep and convergence passes; 0 = one per
  /// hardware thread, 1 = fully sequential. The report is bit-identical
  /// at every thread count.
  std::size_t threads = 0;
  /// Phase A execution strategy: kAuto runs the bit-sliced sweep when the
  /// checker has a PhaseASlice factory installed (the library's own
  /// factories always install one) and falls back to the scalar odometer
  /// walk otherwise; kScalar forces the walk; kSliced requires a factory.
  /// The report is bit-identical either way.
  PhaseAMode phase_a = PhaseAMode::kAuto;
  /// Phase B storage backend; kAuto picks the cheapest mode whose
  /// projected peak fits the memory budget. The report is bit-identical
  /// in every mode.
  PhaseBStorage storage = PhaseBStorage::kAuto;
  /// Memory budget (bytes) for Phase B mode selection; 0 = the
  /// SSRING_CHECK_MEMORY_BUDGET environment variable, else 3/4 of
  /// min(physical RAM, cgroup memory limit).
  std::uint64_t memory_budget_bytes = 0;
  /// Directory for the kSpill record stream; empty = SSRING_CHECK_TMPDIR,
  /// else TMPDIR, else /tmp.
  std::string spill_dir = {};
  /// kSpill prefetch window in record blocks ahead of the consumers;
  /// 0 = default (256 blocks, i.e. up to 1M configurations ahead).
  std::uint32_t spill_window_blocks = 0;
};

/// Dense encoding of whole configurations as base-(states_per_process)
/// integers.
template <typename State>
class ConfigCodec {
 public:
  using Encoder = std::function<std::uint32_t(const State&)>;
  using Decoder = std::function<State(std::uint32_t)>;

  ConfigCodec(std::size_t ring_size, std::uint32_t states_per_process,
              Encoder encode, Decoder decode)
      : n_(ring_size),
        radix_(states_per_process),
        encode_(std::move(encode)),
        decode_(std::move(decode)) {
    SSR_REQUIRE(radix_ >= 2, "need at least two states per process");
    // Guard against u64 overflow of radix^n. Feasibility of an exhaustive
    // *check* is a memory question, decided per run from the projected
    // Phase B peak (select_phaseb_storage), not a hard cap here.
    std::uint64_t total = 1;
    weights_.reserve(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      SSR_REQUIRE(total <= UINT64_MAX / radix_,
                  "configuration space exceeds 2^64; reduce n or K");
      weights_.push_back(total);
      total *= radix_;
    }
    total_ = total;
  }

  std::size_t ring_size() const { return n_; }
  std::uint64_t total() const { return total_; }
  std::uint64_t radix() const { return radix_; }
  /// Positional weight of process i in the mixed-radix code: radix^i.
  std::uint64_t weight(std::size_t i) const { return weights_[i]; }

  std::uint32_t encode_digit(const State& s) const { return encode_(s); }
  State decode_digit(std::uint32_t digit) const { return decode_(digit); }

  std::uint64_t encode(const std::vector<State>& config) const {
    SSR_REQUIRE(config.size() == n_, "configuration size mismatch");
    std::uint64_t idx = 0;
    for (std::size_t i = n_; i-- > 0;) idx = idx * radix_ + encode_(config[i]);
    return idx;
  }

  std::vector<State> decode(std::uint64_t idx) const {
    SSR_REQUIRE(idx < total_, "configuration index out of range");
    std::vector<State> config(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      config[i] = decode_(static_cast<std::uint32_t>(idx % radix_));
      idx /= radix_;
    }
    return config;
  }

 private:
  std::size_t n_;
  std::uint64_t radix_;
  Encoder encode_;
  Decoder decode_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> weights_;
};

/// Allocation-free enumeration of consecutive configurations: decodes the
/// starting index once, then advances like an odometer (amortized O(1)
/// decoder calls per configuration, no division, no allocation). Local
/// states are materialized through a digit -> State table built once, so
/// the per-step cost is a table copy, not a std::function call.
template <typename State>
class ConfigOdometer {
 public:
  explicit ConfigOdometer(const ConfigCodec<State>& codec)
      : codec_(&codec),
        digits_(codec.ring_size(), 0),
        config_(codec.ring_size(), codec.decode_digit(0)) {
    states_.reserve(static_cast<std::size_t>(codec.radix()));
    for (std::uint32_t d = 0; d < codec.radix(); ++d) {
      states_.push_back(codec.decode_digit(d));
    }
  }

  /// Repositions at configuration @p idx.
  void seek(std::uint64_t idx) {
    SSR_REQUIRE(idx < codec_->total(), "configuration index out of range");
    code_ = idx;
    for (std::size_t i = 0; i < digits_.size(); ++i) {
      const auto d = static_cast<std::uint32_t>(idx % codec_->radix());
      digits_[i] = d;
      config_[i] = states_[d];
      idx /= codec_->radix();
    }
  }

  /// Carry-propagating increment to the next configuration. Callers bound
  /// their loops by ConfigCodec::total(); advancing past the last
  /// configuration wraps to zero.
  void advance() {
    ++code_;
    for (std::size_t i = 0; i < digits_.size(); ++i) {
      if (++digits_[i] < codec_->radix()) {
        config_[i] = states_[digits_[i]];
        return;
      }
      digits_[i] = 0;
      config_[i] = states_[0];
    }
    code_ = 0;
  }

  std::uint64_t code() const { return code_; }
  const std::vector<State>& config() const { return config_; }
  const std::vector<std::uint32_t>& digits() const { return digits_; }

 private:
  const ConfigCodec<State>* codec_;
  std::uint64_t code_ = 0;
  std::vector<std::uint32_t> digits_;
  std::vector<State> config_;
  std::vector<State> states_;  ///< digit -> decoded local state
};

/// Exhaustive checker over all configurations of a protocol.
template <stab::RingProtocol P>
class ModelChecker {
 public:
  using State = typename P::State;
  using Config = std::vector<State>;
  using LegitPredicate = std::function<bool(const Config&)>;
  using PrivilegedCounter = std::function<std::size_t(const Config&)>;

  ModelChecker(P protocol, ConfigCodec<State> codec, LegitPredicate legit,
               PrivilegedCounter privileged)
      : protocol_(std::move(protocol)),
        codec_(std::move(codec)),
        legit_(std::move(legit)),
        privileged_(std::move(privileged)) {
    SSR_REQUIRE(codec_.ring_size() == protocol_.size(),
                "codec/protocol ring size mismatch");
  }

  CheckReport run(const CheckOptions& options = {}) const;

  /// Installs a per-worker bit-sliced Phase A engine. Only install a slice
  /// that evaluates *exactly* the same legitimacy and privilege functions
  /// as the scalar predicates — the library's checker factories pair each
  /// protocol with its kernel; a checker built around custom predicates
  /// must leave this unset (run() then uses the scalar sweep).
  void set_phase_a_slices(PhaseASliceFactory factory) {
    phase_a_factory_ = std::move(factory);
  }
  bool has_phase_a_slices() const { return phase_a_factory_ != nullptr; }

  const ConfigCodec<State>& codec() const { return codec_; }
  const P& protocol() const { return protocol_; }
  bool legitimate(const Config& config) const { return legit_(config); }
  std::size_t privileged(const Config& config) const {
    return privileged_(config);
  }

  /// All distinct successor configurations of @p config under the
  /// distributed daemon (one per non-empty subset of the enabled
  /// processes; deduplicated, sorted ascending). Empty iff the
  /// configuration is deadlocked.
  std::vector<std::uint64_t> successor_codes(const Config& config) const {
    SweepScratch s;
    enabled(config, s.idx, s.rules);
    if (s.idx.empty()) return {};
    std::vector<std::uint32_t> digits(config.size());
    for (std::size_t i = 0; i < config.size(); ++i) {
      digits[i] = codec_.encode_digit(config[i]);
    }
    successors_at(config, digits, codec_.encode(config), s);
    return std::move(s.succs);
  }

 private:
  /// Per-worker reusable buffers for the sweep (no per-configuration
  /// allocation once warm).
  struct SweepScratch {
    std::vector<std::size_t> idx;       ///< enabled process indices
    std::vector<int> rules;             ///< their enabled rules
    std::vector<std::int64_t> deltas;   ///< per enabled process: code delta
    std::vector<std::int32_t> digit_deltas;  ///< per enabled process: digit delta
    std::vector<std::int64_t> sums;     ///< subset-sum table (size 2^m)
    std::vector<std::uint64_t> succs;   ///< deduped successor codes
  };

  /// Per-worker partial results, merged deterministically afterwards. All
  /// merges are order-independent (min / sum / max-with-lowest-index), so
  /// dynamic chunk claiming cannot change the report.
  struct Partial {
    std::uint64_t legit_count = 0;
    std::uint64_t deadlock = UINT64_MAX;  ///< lowest deadlocked config
    std::uint64_t closure = UINT64_MAX;   ///< lowest closure violation
    std::uint64_t token = UINT64_MAX;     ///< lowest token-bound violation
    std::size_t min_priv = SIZE_MAX;
    std::uint32_t max_height = 0;
    std::uint64_t max_height_at = UINT64_MAX;
  };

  struct Worker {
    ConfigOdometer<State> od;
    SweepScratch s;
    Partial p;
    std::vector<std::uint32_t> next;  ///< legacy peel: next frontier
    std::uint64_t edges = 0;          ///< daemon step edges seen
    std::uint64_t active0 = 0;        ///< initially active configs
    std::uint64_t finalized = 0;      ///< configs finalized this round
    std::uint64_t cur_block = UINT64_MAX;  ///< spill peel: last block seen
    std::uint64_t blocks_read = 0;    ///< spill peel: block transitions
    std::uint64_t bytes_read = 0;     ///< spill peel: bytes streamed
    explicit Worker(const ConfigCodec<State>& codec) : od(codec) {}
  };

  /// Indices of enabled processes and their rules in @p config.
  void enabled(const Config& config, std::vector<std::size_t>& idx,
               std::vector<int>& rules) const {
    idx.clear();
    rules.clear();
    const std::size_t n = config.size();
    for (std::size_t i = 0; i < n; ++i) {
      const int r = protocol_.enabled_rule(i, config[i],
                                           config[stab::pred_index(i, n)],
                                           config[stab::succ_index(i, n)]);
      if (r != stab::kDisabled) {
        idx.push_back(i);
        rules.push_back(r);
      }
    }
  }

  /// Computes the per-enabled-process configuration-code deltas into
  /// s.deltas. Composite atomicity: every selected process reads the
  /// pre-step configuration, so the post-state of each enabled process is
  /// the same in every subset — it is applied once and each subset's
  /// successor code is a pure integer sum of per-process code deltas (no
  /// re-encoding per subset).
  void compute_deltas(const Config& config,
                      const std::vector<std::uint32_t>& digits,
                      SweepScratch& s) const {
    const std::size_t n = config.size();
    const std::size_t m = s.idx.size();
    SSR_ASSERT(m > 0 && m < 20, "enabled set size out of range");
    s.deltas.clear();
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t i = s.idx[k];
      const State next = protocol_.apply(i, s.rules[k], config[i],
                                         config[stab::pred_index(i, n)],
                                         config[stab::succ_index(i, n)]);
      const std::int64_t delta =
          static_cast<std::int64_t>(codec_.encode_digit(next)) -
          static_cast<std::int64_t>(digits[i]);
      s.deltas.push_back(delta * static_cast<std::int64_t>(codec_.weight(i)));
    }
  }

  /// Raw per-enabled-process *digit* deltas into s.digit_deltas (what the
  /// compressed move record stores; multiply by the positional weight to
  /// recover the code delta). A delta may be 0 for a state-preserving
  /// rule — such positions stay in the record so the compressed peel
  /// enumerates the same 2^m - 1 daemon subsets as the other backends.
  void compute_digit_deltas(const Config& config,
                            const std::vector<std::uint32_t>& digits,
                            SweepScratch& s) const {
    const std::size_t n = config.size();
    const std::size_t m = s.idx.size();
    s.digit_deltas.clear();
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t i = s.idx[k];
      const State next = protocol_.apply(i, s.rules[k], config[i],
                                         config[stab::pred_index(i, n)],
                                         config[stab::succ_index(i, n)]);
      s.digit_deltas.push_back(
          static_cast<std::int32_t>(codec_.encode_digit(next)) -
          static_cast<std::int32_t>(digits[i]));
    }
  }

  /// Invokes fn(successor_code) for each of the 2^m - 1 daemon choices
  /// (subset-sum enumeration over s.deltas; may repeat codes). Requires a
  /// prior compute_deltas on the same configuration.
  template <typename Fn>
  void for_each_successor(std::uint64_t code, SweepScratch& s, Fn&& fn) const {
    const std::size_t m = s.deltas.size();
    const std::uint32_t subsets = 1u << m;
    if (s.sums.size() < subsets) s.sums.resize(subsets);
    s.sums[0] = 0;
    for (std::uint32_t mask = 1; mask < subsets; ++mask) {
      s.sums[mask] = s.sums[mask & (mask - 1)] +
                     s.deltas[static_cast<std::size_t>(std::countr_zero(mask))];
      fn(static_cast<std::uint64_t>(static_cast<std::int64_t>(code) +
                                    s.sums[mask]));
    }
  }

  /// Distinct successor codes (sorted ascending) into s.succs, for the
  /// configuration with code @p code and per-process digits @p digits,
  /// whose enabled set (s.idx / s.rules) was already computed.
  void successors_at(const Config& config,
                     const std::vector<std::uint32_t>& digits,
                     std::uint64_t code, SweepScratch& s) const {
    compute_deltas(config, digits, s);
    s.succs.clear();
    for_each_successor(code, s,
                       [&](std::uint64_t sc) { s.succs.push_back(sc); });
    std::sort(s.succs.begin(), s.succs.end());
    s.succs.erase(std::unique(s.succs.begin(), s.succs.end()), s.succs.end());
  }

  void phase_b_legacy(util::ThreadPool& pool, std::vector<Worker>& ws,
                      std::uint64_t chunk, const util::TwoLevelBitset& legit,
                      const CheckOptions& options, CheckReport& report) const;
  void phase_b_packed(PhaseBStorage mode, util::ThreadPool& pool,
                      std::vector<Worker>& ws, std::uint64_t chunk,
                      const util::TwoLevelBitset& legit,
                      const CheckOptions& options, CheckReport& report) const;

  P protocol_;
  ConfigCodec<State> codec_;
  LegitPredicate legit_;
  PrivilegedCounter privileged_;
  PhaseASliceFactory phase_a_factory_;
};

// --- implementation -------------------------------------------------------

template <stab::RingProtocol P>
CheckReport ModelChecker<P>::run(const CheckOptions& options) const {
  CheckReport report;
  const std::uint64_t total = codec_.total();
  report.total_configs = total;

  util::ThreadPool pool(options.threads);
  const std::size_t workers = pool.size();
  // Chunks are aligned to the bitset block size so every level-0 and
  // summary word of the shared bitsets has exactly one writer per pass.
  constexpr std::uint64_t kAlign = util::TwoLevelBitset::kBlockBits;
  const std::uint64_t chunk =
      std::clamp<std::uint64_t>((total / (workers * 8) + kAlign - 1) /
                                    kAlign * kAlign,
                                kAlign, std::uint64_t{1} << 16);

  std::vector<Worker> ws;
  ws.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) ws.emplace_back(codec_);

  // Bit-sliced Phase A: one kernel engine per worker, evaluating guards,
  // legitimacy and privilege for a whole lane word of consecutive
  // configurations per pass. Witness merging is identical to the scalar
  // walk, so the report is bit-identical in both modes (the differential
  // tests pin this).
  SSR_REQUIRE(options.phase_a != PhaseAMode::kSliced ||
                  phase_a_factory_ != nullptr,
              "PhaseAMode::kSliced requires a PhaseASlice factory "
              "(set_phase_a_slices)");
  const bool sliced_a = options.phase_a != PhaseAMode::kScalar &&
                        phase_a_factory_ != nullptr;
  std::vector<std::unique_ptr<PhaseASlice>> slices;
  if (sliced_a) {
    slices.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      slices.push_back(phase_a_factory_());
    }
    report.stats.phase_a_sliced = true;
    report.stats.phase_a_backend = slices[0]->backend_name();
    report.stats.phase_a_lanes = slices[0]->lanes();
    // Lane windows must tile the chunk grid (chunks are kAlign-aligned).
    SSR_ASSERT(kAlign % slices[0]->lanes() == 0,
               "lane count must divide the chunk alignment");
  }

  // ---- Phase A1: Lambda membership bitset. Shared across workers (each
  // word written by exactly one worker thanks to chunk alignment); the
  // closure check and the convergence pass index into it instead of
  // re-evaluating the predicate on decoded successors.
  util::TwoLevelBitset legit(total);
  if (sliced_a) {
    pool.for_chunks(0, total, chunk, [&](std::size_t w, std::uint64_t lo,
                                         std::uint64_t hi) {
      PhaseASlice& sl = *slices[w];
      const std::uint64_t lanes = sl.lanes();
      std::vector<std::uint64_t> bits((lanes + 63) / 64);
      std::uint64_t count = 0;
      for (std::uint64_t base = lo; base < hi; base += lanes) {
        const std::uint64_t cnt = std::min<std::uint64_t>(lanes, hi - base);
        sl.legit_bits(base, cnt, bits.data());
        for (std::uint64_t j = 0; j * 64 < cnt; ++j) {
          legit.set_word(base + j * 64, bits[j]);
          count += static_cast<std::uint64_t>(std::popcount(bits[j]));
        }
      }
      ws[w].p.legit_count += count;
    });
  } else {
    pool.for_chunks(0, total, chunk,
                    [&](std::size_t w, std::uint64_t lo, std::uint64_t hi) {
                      Worker& wk = ws[w];
                      wk.od.seek(lo);
                      std::uint64_t count = 0;
                      for (std::uint64_t c = lo; c < hi;
                           ++c, wk.od.advance()) {
                        if (legit_(wk.od.config())) {
                          legit.set(c);
                          ++count;
                        }
                      }
                      wk.p.legit_count += count;
                    });
  }

  // ---- Phase A2: deadlock / token-bound / closure sweep.
  if (sliced_a) {
    const SliceQuery sq{options.check_deadlock, options.check_token_bounds,
                        options.check_closure, options.min_privileged,
                        options.max_privileged};
    pool.for_chunks(0, total, chunk, [&](std::size_t w, std::uint64_t lo,
                                         std::uint64_t hi) {
      Worker& wk = ws[w];
      PhaseASlice& sl = *slices[w];
      const std::uint64_t lanes = sl.lanes();
      SliceResult sr;
      sr.deadlock = wk.p.deadlock;
      sr.token = wk.p.token;
      sr.min_priv = wk.p.min_priv;
      for (std::uint64_t base = lo; base < hi; base += lanes) {
        sl.sweep(base, std::min<std::uint64_t>(lanes, hi - base), sq, sr);
      }
      wk.p.deadlock = sr.deadlock;
      wk.p.token = sr.token;
      wk.p.min_priv = sr.min_priv;
      // Closure candidates (legitimate with enabled processes — rare for
      // a correct protocol) resolve scalar against the complete Lambda
      // bitset, exactly as the scalar sweep would. Candidates ascend, so
      // stop at the worker's current best witness.
      for (std::uint64_t c : sr.closure_candidates) {
        if (c >= wk.p.closure) break;
        wk.od.seek(c);
        enabled(wk.od.config(), wk.s.idx, wk.s.rules);
        SSR_ASSERT(!wk.s.idx.empty(), "closure candidate lost its moves");
        successors_at(wk.od.config(), wk.od.digits(), c, wk.s);
        for (std::uint64_t sc : wk.s.succs) {
          if (!legit.test(sc)) {
            wk.p.closure = c;
            break;
          }
        }
      }
    });
  } else {
    pool.for_chunks(0, total, chunk, [&](std::size_t w, std::uint64_t lo,
                                         std::uint64_t hi) {
      Worker& wk = ws[w];
      SweepScratch& s = wk.s;
      Partial& p = wk.p;
      wk.od.seek(lo);
      for (std::uint64_t c = lo; c < hi; ++c, wk.od.advance()) {
        const Config& config = wk.od.config();
        enabled(config, s.idx, s.rules);
        if (options.check_deadlock && s.idx.empty() && c < p.deadlock) {
          p.deadlock = c;
        }
        const std::size_t priv = privileged_(config);
        p.min_priv = std::min(p.min_priv, priv);
        if (!legit.test(c)) continue;
        if (options.check_token_bounds && c < p.token &&
            (priv < options.min_privileged || priv > options.max_privileged)) {
          p.token = c;
        }
        if (options.check_closure && c < p.closure && !s.idx.empty()) {
          successors_at(config, wk.od.digits(), c, s);
          for (std::uint64_t sc : s.succs) {
            if (!legit.test(sc)) {
              p.closure = c;
              break;
            }
          }
        }
      }
    });
  }

  {
    std::uint64_t deadlock = UINT64_MAX, closure = UINT64_MAX,
                  token = UINT64_MAX;
    std::size_t min_priv = SIZE_MAX;
    for (const Worker& wk : ws) {
      report.legitimate_configs += wk.p.legit_count;
      deadlock = std::min(deadlock, wk.p.deadlock);
      closure = std::min(closure, wk.p.closure);
      token = std::min(token, wk.p.token);
      min_priv = std::min(min_priv, wk.p.min_priv);
    }
    if (deadlock != UINT64_MAX) {
      report.deadlock_free = false;
      report.deadlock_witness = deadlock;
    }
    if (closure != UINT64_MAX) {
      report.closure_holds = false;
      report.closure_witness = closure;
    }
    if (token != UINT64_MAX) {
      report.token_bounds_hold = false;
      report.token_witness = token;
    }
    report.min_privileged_anywhere = min_priv == SIZE_MAX ? 0 : min_priv;
  }

  report.stats.lambda_bytes = legit.bytes();
  if (!options.check_convergence) {
    report.stats.mode = options.storage;
    report.stats.measured_peak_bytes = report.stats.lambda_bytes;
    return report;
  }

  // ---- Phase B: convergence by reverse induction from Lambda.
  const std::uint64_t budget = options.memory_budget_bytes != 0
                                   ? options.memory_budget_bytes
                                   : default_memory_budget();
  std::uint64_t projected = 0;
  const PhaseBStorage mode =
      select_phaseb_storage(options.storage, total, codec_.ring_size(),
                            codec_.radix(), budget, &projected);
  // The in-RAM peels index successors through u32 watch/edge entries; the
  // watch-free spill peel has no u32-indexed structure, so only the
  // resident-projection check (above) bounds it.
  SSR_REQUIRE(mode == PhaseBStorage::kSpill ||
                  total <= (std::uint64_t{1} << 32),
              "convergence pass supports at most 2^32 configurations in "
              "the in-RAM storage modes; use PhaseBStorage::kSpill");
  report.stats.mode = mode;
  report.stats.memory_budget_bytes = budget;
  report.stats.projected_peak_bytes = projected;

  if (mode == PhaseBStorage::kLegacyCsr) {
    phase_b_legacy(pool, ws, chunk, legit, options, report);
  } else {
    phase_b_packed(mode, pool, ws, chunk, legit, options, report);
  }
  return report;
}

// The original Phase B: explicit predecessor CSR peeled Kahn-style with
// pending-successor counts.
//
// height(c) = 0 on Lambda, height(c) = 1 + max over successors height(c')
// elsewhere. Build the *reverse* adjacency (predecessor CSR) of the step
// graph once, then peel in level-synchronous rounds from the height-0
// layer: finalizing a config decrements each predecessor's
// pending-successor count, and a predecessor whose count reaches zero
// joins the next round. A config's height is exactly the round that
// finalizes it — its max-height successor (height r-1, by induction
// finalized in round r-1) is the last one to finalize — so no forward
// adjacency is ever stored or scanned. Every edge is touched O(1) times.
// If the frontier drains while configs remain, each remaining config can
// step to another remaining config forever — an illegitimate cycle is
// reachable and convergence fails. The height fixpoint is unique, so
// reports are identical at every thread count.
template <stab::RingProtocol P>
void ModelChecker<P>::phase_b_legacy(util::ThreadPool& pool,
                                     std::vector<Worker>& ws,
                                     std::uint64_t chunk,
                                     const util::TwoLevelBitset& legit,
                                     const CheckOptions& options,
                                     CheckReport& report) const {
  const std::uint64_t total = codec_.total();
  const std::size_t workers = pool.size();

  // Pass 1: out-degrees (pending) and in-degrees (rcount). Successors are
  // enumerated but not stored — the only per-edge state is a predecessor
  // count bump. Repeated successor codes (possible only for
  // state-preserving rules) are kept on both sides, so the Kahn counts
  // stay consistent and heights are unaffected.
  // With a single worker the shared counters have exactly one writer, so
  // the lock-prefixed RMWs (the dominant per-edge cost) degrade to plain
  // arithmetic. Both flavours are exercised by the differential tests.
  const bool solo = workers == 1;

  std::vector<std::uint32_t> pending(total, 0);  ///< unfinalized successors
  std::vector<std::uint32_t> rcount(total, 0);   ///< predecessor counts
  pool.for_chunks(
      0, total, chunk, [&](std::size_t w, std::uint64_t lo, std::uint64_t hi) {
        Worker& wk = ws[w];
        wk.od.seek(lo);
        for (std::uint64_t c = lo; c < hi; ++c, wk.od.advance()) {
          if (legit.test(c)) continue;
          enabled(wk.od.config(), wk.s.idx, wk.s.rules);
          if (wk.s.idx.empty()) continue;  // deadlocked: height 0
          pending[c] =
              static_cast<std::uint32_t>((std::uint64_t{1} << wk.s.idx.size()) - 1);
          compute_deltas(wk.od.config(), wk.od.digits(), wk.s);
          for_each_successor(c, wk.s, [&](std::uint64_t sc) {
            if (solo) {
              ++rcount[sc];
            } else {
              std::atomic_ref<std::uint32_t>(rcount[sc])
                  .fetch_add(1, std::memory_order_relaxed);
            }
          });
        }
      });

  std::vector<std::uint64_t> roffsets(total + 1, 0);
  for (std::uint64_t c = 0; c < total; ++c) {
    roffsets[c + 1] = roffsets[c] + rcount[c];
  }

  // Pass 2: re-enumerate and scatter predecessors into the CSR. rcount
  // doubles as the per-target fill cursor (counted back down to zero).
  // Predecessors land in arbitrary order within a slice, which only
  // affects decrement order, never counts or heights.
  std::vector<std::uint32_t> redges(roffsets[total]);
  pool.for_chunks(
      0, total, chunk, [&](std::size_t w, std::uint64_t lo, std::uint64_t hi) {
        Worker& wk = ws[w];
        wk.od.seek(lo);
        for (std::uint64_t c = lo; c < hi; ++c, wk.od.advance()) {
          if (pending[c] == 0) continue;
          enabled(wk.od.config(), wk.s.idx, wk.s.rules);
          compute_deltas(wk.od.config(), wk.od.digits(), wk.s);
          for_each_successor(c, wk.s, [&](std::uint64_t sc) {
            const std::uint32_t slot =
                solo ? rcount[sc]--
                     : std::atomic_ref<std::uint32_t>(rcount[sc])
                           .fetch_sub(1, std::memory_order_relaxed);
            redges[roffsets[sc] + slot - 1] = static_cast<std::uint32_t>(c);
          });
        }
      });

  std::vector<std::uint32_t> height(total, 0);
  // pending is 0 for Lambda and for deadlocked illegitimate configs
  // (height 0; the latter are already reported through deadlock_free).
  // Those zero-pending configs form the initial, round-0 frontier.
  std::vector<std::uint32_t> frontier;
  std::uint64_t finalized = 0;
  for (std::uint64_t c = 0; c < total; ++c) {
    if (pending[c] == 0) {
      frontier.push_back(static_cast<std::uint32_t>(c));
      ++finalized;
    }
  }

  std::uint64_t frontier_peak = frontier.capacity() * sizeof(std::uint32_t);
  for (std::uint32_t round = 1; !frontier.empty(); ++round) {
    const std::uint64_t fr_chunk = std::clamp<std::uint64_t>(
        frontier.size() / (workers * 8), 64, std::uint64_t{1} << 14);
    pool.for_chunks(0, frontier.size(), fr_chunk, [&](std::size_t w,
                                                      std::uint64_t lo,
                                                      std::uint64_t hi) {
      std::vector<std::uint32_t>& next = ws[w].next;
      for (std::uint64_t t = lo; t < hi; ++t) {
        const std::uint32_t f = frontier[t];
        for (std::uint64_t e = roffsets[f]; e < roffsets[f + 1]; ++e) {
          const std::uint32_t p = redges[e];
          const std::uint32_t left =
              solo ? --pending[p]
                   : std::atomic_ref<std::uint32_t>(pending[p])
                             .fetch_sub(1, std::memory_order_relaxed) -
                         1;
          if (left != 0) continue;
          // Last successor of p finalized, in the previous round, at
          // height round - 1 — so p's height is exactly this round.
          height[p] = round;
          next.push_back(p);
        }
      }
    });
    std::uint64_t live = frontier.capacity() * sizeof(std::uint32_t);
    frontier.clear();
    for (Worker& wk : ws) {
      frontier.insert(frontier.end(), wk.next.begin(), wk.next.end());
      finalized += wk.next.size();
      live += wk.next.capacity() * sizeof(std::uint32_t);
      wk.next.clear();
    }
    frontier_peak = std::max(
        frontier_peak, std::max(live, frontier.capacity() * sizeof(std::uint32_t)));
  }

  if (finalized != total) {
    // Frontier drained with configs left: every remaining config keeps an
    // unfinalized successor, so from any of them the daemon can stay
    // illegitimate forever.
    report.convergence_holds = false;
    std::uint64_t lowest = UINT64_MAX;
    for (std::uint64_t c = 0; c < total && lowest == UINT64_MAX; ++c) {
      if (pending[c] != 0) lowest = c;
    }
    report.cycle_witness = lowest;
  }

  if (report.convergence_holds) {
    pool.for_chunks(0, total, chunk,
                    [&](std::size_t w, std::uint64_t lo, std::uint64_t hi) {
                      Partial& p = ws[w].p;
                      for (std::uint64_t c = lo; c < hi; ++c) {
                        const std::uint32_t h = height[c];
                        if (h == 0) continue;
                        if (h > p.max_height ||
                            (h == p.max_height && c < p.max_height_at)) {
                          p.max_height = h;
                          p.max_height_at = c;
                        }
                      }
                    });
    std::uint32_t worst = 0;
    std::uint64_t worst_at = UINT64_MAX;
    for (const Worker& wk : ws) {
      if (wk.p.max_height > worst ||
          (wk.p.max_height == worst && wk.p.max_height_at < worst_at)) {
        worst = wk.p.max_height;
        worst_at = wk.p.max_height_at;
      }
    }
    report.worst_case_steps = worst;
    if (worst > 0) report.worst_case_witness = worst_at;
  }

  CheckStats& st = report.stats;
  st.edge_count = roffsets[total];
  st.counts_bytes =
      (pending.capacity() + rcount.capacity()) * sizeof(std::uint32_t);
  st.offsets_bytes = roffsets.capacity() * sizeof(std::uint64_t);
  st.edges_bytes = redges.capacity() * sizeof(std::uint32_t);
  st.heights_bytes = height.capacity() * sizeof(std::uint32_t);
  st.frontier_bytes = frontier_peak;
  st.bytes_per_edge =
      st.edge_count == 0
          ? 0.0
          : static_cast<double>(st.edges_bytes) /
                static_cast<double>(st.edge_count);
  st.rounds = report.convergence_holds
                  ? static_cast<std::uint32_t>(report.worst_case_steps)
                  : 0;
  st.measured_peak_bytes = st.lambda_bytes + st.counts_bytes +
                           st.offsets_bytes + st.edges_bytes +
                           st.heights_bytes + st.frontier_bytes;

  if (report.convergence_holds && options.keep_heights) {
    report.heights = HeightTable::pack(height);
    st.escape_entries = report.heights.escape_entries();
  }
}

// The slim Phase B backends. Both drive the same source-scanning peel:
// instead of materializing predecessor edges, each round r scans the
// still-active (unfinalized, illegitimate, non-deadlocked) configurations
// and finalizes those whose successors ALL have height < r. Successor
// heights written during round r read as >= r, so the set finalized in a
// round depends only on earlier rounds — the peel computes the unique
// height fixpoint in any scan order and at any thread count, and a round
// that finalizes nothing certifies the residue as an illegitimate cycle
// (same residue, hence same lowest witness, as the legacy Kahn peel).
//
// Per-visit cost is kept at O(1) by a watched-successor probe (the
// watched-literal trick): each active configuration remembers the code of
// one successor that was still unfinalized last time; while that single
// successor stays unfinalized — the common case — the visit is one height
// load, with no record decode or guard sweep at all. Only when the watch
// clears does the full 2^m - 1 subset-sum enumeration run (early-exiting
// at a new watch). watch[c] == c means "no watch, full-scan" — a real
// self-successor (a zero-delta daemon subset) never finalizes anyway, so
// re-scanning it each round is both sound and cheap (the scan early-exits
// at that subset).
//
// kCompressed derives the per-process code deltas from the configuration's
// move record; kCsrFree re-derives them from the odometer + protocol rules
// (zero edge bytes, one guard sweep per visit).
template <stab::RingProtocol P>
void ModelChecker<P>::phase_b_packed(PhaseBStorage mode,
                                     util::ThreadPool& pool,
                                     std::vector<Worker>& ws,
                                     std::uint64_t chunk,
                                     const util::TwoLevelBitset& legit,
                                     const CheckOptions& options,
                                     CheckReport& report) const {
  const std::uint64_t total = codec_.total();
  const std::size_t n = codec_.ring_size();
  const bool solo = pool.size() == 1;
  const bool compressed = mode == PhaseBStorage::kCompressed;
  const bool spill = mode == PhaseBStorage::kSpill;
  const bool has_records = compressed || spill;

  util::TwoLevelBitset active(total);
  std::vector<std::uint16_t> height_raw(total, 0);
  // The spill peel is watch-free: dropping the 4-bytes-per-config watch
  // table is exactly what puts its resident footprint under csr-free's.
  std::vector<std::uint32_t> watch(spill ? 0 : total, 0);

  MoveRecordCodec rcodec;
  MoveStore store;
  SpillMoveStore spill_store;
  MoveLayout* layout = nullptr;
  if (has_records) {
    rcodec = MoveRecordCodec(n, codec_.radix());
    if (compressed) {
      store.prepare(total, rcodec);
      layout = &store.layout();
    } else {
      spill_store.prepare(
          total, rcodec, resolve_spill_dir(options.spill_dir),
          projected_spill_file_bytes(total, n, codec_.radix()));
      layout = &spill_store.layout();
    }
  }

  // Init pass: mark active configurations, tally the daemon edge count,
  // and (record modes) lay out the record stream — per-config local
  // offsets plus per-block byte totals, both functions of the index alone.
  pool.for_chunks(0, total, chunk, [&](std::size_t w, std::uint64_t lo,
                                       std::uint64_t hi) {
    Worker& wk = ws[w];
    SweepScratch& s = wk.s;
    wk.od.seek(lo);
    auto visit = [&](std::uint64_t c) -> std::size_t {
      // Returns the enabled count m (0 = inactive: legitimate or
      // deadlocked, both height 0).
      if (legit.test(c)) return 0;
      enabled(wk.od.config(), s.idx, s.rules);
      const std::size_t m = s.idx.size();
      if (m == 0) return 0;
      SSR_ASSERT(m < 20, "enabled set size out of range");
      active.set(c);
      height_raw[c] = HeightTable::kEscapeTag;  // unfinalized sentinel
      if (!spill) watch[c] = static_cast<std::uint32_t>(c);  // no watch yet
      ++wk.active0;
      wk.edges += (std::uint64_t{1} << m) - 1;
      return m;
    };
    if (!has_records) {
      for (std::uint64_t c = lo; c < hi; ++c, wk.od.advance()) visit(c);
      return;
    }
    // Chunks are kBlockBits-aligned and the layout's block size divides
    // kBlockBits, so every record block is owned by one worker.
    for (std::uint64_t b = lo >> layout->block_shift();
         layout->block_begin(b) < hi; ++b) {
      std::uint16_t running = 0;
      const std::uint64_t bend = std::min(hi, layout->block_end(b));
      for (std::uint64_t c = layout->block_begin(b); c < bend;
           ++c, wk.od.advance()) {
        layout->set_local_offset(c, running);
        if (visit(c) == 0) continue;
        std::uint32_t mask = 0;
        for (std::size_t i : s.idx) mask |= std::uint32_t{1} << i;
        running += static_cast<std::uint16_t>(rcodec.encoded_size(mask));
      }
      layout->set_block_bytes(b, running);
    }
  });

  if (compressed) {
    store.finalize_layout();
    // Encode pass: re-enumerate the active configurations and write each
    // record into its precomputed slot.
    pool.for_chunks(0, total, chunk, [&](std::size_t w, std::uint64_t lo,
                                         std::uint64_t hi) {
      Worker& wk = ws[w];
      SweepScratch& s = wk.s;
      wk.od.seek(lo);
      for (std::uint64_t c = lo; c < hi; ++c, wk.od.advance()) {
        if (height_raw[c] != HeightTable::kEscapeTag) continue;
        enabled(wk.od.config(), s.idx, s.rules);
        compute_digit_deltas(wk.od.config(), wk.od.digits(), s);
        std::uint32_t mask = 0;
        for (std::size_t i : s.idx) mask |= std::uint32_t{1} << i;
        rcodec.encode(mask, s.digit_deltas.data(), store.slot(c));
      }
    });
  } else if (spill) {
    spill_store.finalize_layout();
    // Encode pass, out-of-core: each worker encodes one record block at a
    // time into its double buffer and hands it to the background flusher;
    // block file offsets come from the prefix-summed layout, so writes
    // from different workers never overlap.
    std::vector<SpillBlockWriter> writers;
    writers.reserve(pool.size());
    for (std::size_t w = 0; w < pool.size(); ++w) {
      writers.emplace_back(spill_store.write_queue(), std::size_t{64} << 10);
    }
    try {
      pool.for_chunks(0, total, chunk, [&](std::size_t w, std::uint64_t lo,
                                           std::uint64_t hi) {
        Worker& wk = ws[w];
        SweepScratch& s = wk.s;
        for (std::uint64_t b = lo >> layout->block_shift();
             layout->block_begin(b) < hi; ++b) {
          const std::uint64_t bbytes = layout->block_bytes(b);
          if (bbytes == 0) continue;  // no active configs in this block
          std::uint8_t* base = writers[w].begin_block(bbytes);
          const std::uint64_t bbegin = layout->block_begin(b);
          const std::uint64_t bend = std::min(hi, layout->block_end(b));
          wk.od.seek(bbegin);
          for (std::uint64_t c = bbegin; c < bend; ++c, wk.od.advance()) {
            if (height_raw[c] != HeightTable::kEscapeTag) continue;
            enabled(wk.od.config(), s.idx, s.rules);
            compute_digit_deltas(wk.od.config(), wk.od.digits(), s);
            std::uint32_t mask = 0;
            for (std::size_t i : s.idx) mask |= std::uint32_t{1} << i;
            rcodec.encode(mask, s.digit_deltas.data(),
                          base + layout->local_offset(c));
          }
          writers[w].end_block(layout->block_base(b), bbytes);
        }
      });
    } catch (...) {
      // The flush thread references the writers' buffers; stop it before
      // they unwind.
      spill_store.write_queue().abort();
      throw;
    }
    spill_store.seal_for_read(options.spill_window_blocks != 0
                                  ? options.spill_window_blocks
                                  : 256);
  }

  std::uint64_t active0 = 0;
  for (const Worker& wk : ws) active0 += wk.active0;

  // The peel. Heights are u16 with kEscapeTag = unfinalized; cross-chunk
  // reads/writes go through relaxed atomic_refs when parallel (the value
  // read is never order-sensitive: anything written this round is >=
  // round either way).
  std::uint64_t finalized = 0;
  std::uint32_t rounds_run = 0;
  for (std::uint32_t round = 1; finalized < active0; ++round) {
    SSR_REQUIRE(round < HeightTable::kEscapeTag - 1,
                "convergence depth exceeds packed u16 heights; rerun with "
                "PhaseBStorage::kLegacyCsr");
    for (Worker& wk : ws) {
      wk.finalized = 0;
      wk.cur_block = UINT64_MAX;  // spill: each round streams afresh
    }
    if (spill) spill_store.begin_round();
    pool.for_chunks(0, total, chunk, [&](std::size_t w, std::uint64_t lo,
                                         std::uint64_t hi) {
      Worker& wk = ws[w];
      SweepScratch& s = wk.s;
      if (s.digit_deltas.size() < n) s.digit_deltas.resize(n);
      auto h_at = [&](std::uint64_t i) -> std::uint32_t {
        return solo ? height_raw[i]
                    : std::atomic_ref<std::uint16_t>(height_raw[i])
                          .load(std::memory_order_relaxed);
      };
      active.for_each_set(lo, hi, [&](std::uint64_t c) {
        if (!spill) {
          // Watched-successor probe: if the remembered successor is still
          // unfinalized (or finalized only this round), c cannot finalize
          // this round — one height load, nothing decoded.
          const std::uint32_t w0 = watch[c];
          if (w0 != static_cast<std::uint32_t>(c) && h_at(w0) >= round) {
            return;
          }
        }
        // Per-process code deltas of c's enabled moves into s.deltas.
        s.deltas.clear();
        if (has_records) {
          const std::uint8_t* rec;
          if (spill) {
            // Exact streaming telemetry: chunks are aligned to whole
            // record blocks, so each block is visited by one worker and
            // a per-worker last-block edge counts it exactly once per
            // round. The progress cursor feeds the prefetch window.
            const std::uint64_t b = c >> layout->block_shift();
            if (b != wk.cur_block) {
              wk.cur_block = b;
              ++wk.blocks_read;
              wk.bytes_read += layout->block_bytes(b);
              spill_store.note_progress(layout->block_base(b) +
                                        layout->block_bytes(b));
            }
            rec = spill_store.record_at(c);
          } else {
            rec = store.record_at(c);
          }
          std::uint32_t mask = 0;
          rcodec.decode(rec, mask, s.digit_deltas.data());
          std::size_t k = 0;
          for (std::uint32_t bits = mask; bits != 0; bits &= bits - 1, ++k) {
            const auto i =
                static_cast<std::size_t>(std::countr_zero(bits));
            s.deltas.push_back(
                static_cast<std::int64_t>(s.digit_deltas[k]) *
                static_cast<std::int64_t>(codec_.weight(i)));
          }
        } else {
          wk.od.seek(c);
          enabled(wk.od.config(), s.idx, s.rules);
          compute_deltas(wk.od.config(), wk.od.digits(), s);
        }
        const std::size_t m = s.deltas.size();
        // Full scan with early exit; the first still-blocked successor
        // becomes the new watch.
        const std::uint32_t subsets = std::uint32_t{1} << m;
        if (s.sums.size() < subsets) s.sums.resize(subsets);
        s.sums[0] = 0;
        bool blocked = false;
        for (std::uint32_t mask = 1; mask < subsets; ++mask) {
          s.sums[mask] =
              s.sums[mask & (mask - 1)] +
              s.deltas[static_cast<std::size_t>(std::countr_zero(mask))];
          const auto sc = static_cast<std::uint64_t>(
              static_cast<std::int64_t>(c) + s.sums[mask]);
          if (h_at(sc) >= round) {
            blocked = true;
            // sc == c (a zero-delta subset) re-arms the "no watch"
            // sentinel; such a self-loop blocks every round anyway. The
            // spill peel keeps no watch table — every active config
            // re-decodes its record each round (the stream read is what
            // the prefetch window hides).
            if (!spill) watch[c] = static_cast<std::uint32_t>(sc);
            break;
          }
        }
        if (blocked) return;
        // Every successor finalized in an earlier round; the deepest one
        // at round - 1, so c's height is exactly this round.
        if (solo) {
          height_raw[c] = static_cast<std::uint16_t>(round);
        } else {
          std::atomic_ref<std::uint16_t>(height_raw[c])
              .store(static_cast<std::uint16_t>(round),
                     std::memory_order_relaxed);
        }
        active.clear(c);
        ++wk.finalized;
      });
    });
    std::uint64_t round_final = 0;
    for (const Worker& wk : ws) round_final += wk.finalized;
    if (round_final == 0) break;  // stalled: residue is an illegit cycle
    finalized += round_final;
    rounds_run = round;
  }

  if (finalized != active0) {
    report.convergence_holds = false;
    report.cycle_witness = active.find_first();
  }

  if (report.convergence_holds) {
    pool.for_chunks(0, total, chunk,
                    [&](std::size_t w, std::uint64_t lo, std::uint64_t hi) {
                      Partial& p = ws[w].p;
                      for (std::uint64_t c = lo; c < hi; ++c) {
                        const std::uint32_t h = height_raw[c];
                        if (h == 0) continue;
                        if (h > p.max_height ||
                            (h == p.max_height && c < p.max_height_at)) {
                          p.max_height = h;
                          p.max_height_at = c;
                        }
                      }
                    });
    std::uint32_t worst = 0;
    std::uint64_t worst_at = UINT64_MAX;
    for (const Worker& wk : ws) {
      if (wk.p.max_height > worst ||
          (wk.p.max_height == worst && wk.p.max_height_at < worst_at)) {
        worst = wk.p.max_height;
        worst_at = wk.p.max_height_at;
      }
    }
    report.worst_case_steps = worst;
    if (worst > 0) report.worst_case_witness = worst_at;
  }

  CheckStats& st = report.stats;
  std::uint64_t edges = 0;
  std::uint64_t blocks_read = 0;
  std::uint64_t bytes_read = 0;
  for (const Worker& wk : ws) {
    edges += wk.edges;
    blocks_read += wk.blocks_read;
    bytes_read += wk.bytes_read;
  }
  st.edge_count = edges;
  st.counts_bytes = watch.capacity() * sizeof(std::uint32_t);
  st.offsets_bytes = has_records ? layout->offset_bytes() : 0;
  st.edges_bytes = compressed ? store.stream_bytes() : 0;
  st.heights_bytes = height_raw.capacity() * sizeof(std::uint16_t);
  st.frontier_bytes = active.bytes();
  if (spill) {
    st.spill_bytes = spill_store.stream_bytes();
    st.spill_path = spill_store.path();
    st.blocks_read = blocks_read;
    st.read_amplification =
        st.spill_bytes == 0 ? 0.0
                            : static_cast<double>(bytes_read) /
                                  static_cast<double>(st.spill_bytes);
  }
  const std::uint64_t record_bytes = compressed ? st.edges_bytes
                                                : st.spill_bytes;
  st.bytes_per_edge =
      (has_records && edges != 0)
          ? static_cast<double>(record_bytes) / static_cast<double>(edges)
          : 0.0;
  st.rounds = report.convergence_holds
                  ? static_cast<std::uint32_t>(report.worst_case_steps)
                  : rounds_run;
  // measured_peak_bytes is the *resident* high-water mark; the spilled
  // stream is disk, not RAM, so it is reported via spill_bytes instead.
  st.measured_peak_bytes = st.lambda_bytes + st.counts_bytes +
                           st.offsets_bytes + st.edges_bytes +
                           st.heights_bytes + st.frontier_bytes;
  if (spill) spill_store.release();

  if (report.convergence_holds && options.keep_heights) {
    report.heights = HeightTable::adopt(std::move(height_raw));
    st.escape_entries = report.heights.escape_entries();
  }
}

}  // namespace ssr::verify
