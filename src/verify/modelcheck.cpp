#include "verify/modelcheck.hpp"

#include <sstream>

#include "verify/checkers.hpp"
#include "verify/phase_a_dispatch.hpp"

namespace ssr::verify {

std::string CheckReport::summary() const {
  std::ostringstream os;
  os << "configs=" << total_configs << " legitimate=" << legitimate_configs
     << " deadlock_free=" << (deadlock_free ? "yes" : "NO")
     << " closure=" << (closure_holds ? "yes" : "NO")
     << " token_bounds=" << (token_bounds_hold ? "yes" : "NO")
     << " convergence=" << (convergence_holds ? "yes" : "NO");
  if (convergence_holds) os << " worst_case_steps=" << worst_case_steps;
  os << " min_privileged_anywhere=" << min_privileged_anywhere;
  return os.str();
}

std::string CheckStats::summary() const {
  auto mib = [](std::uint64_t bytes) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(1);
    os << static_cast<double>(bytes) / (1024.0 * 1024.0) << "MiB";
    return os.str();
  };
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "phase_a=";
  if (phase_a_sliced) {
    os << "sliced(" << phase_a_backend << "," << phase_a_lanes << ")";
  } else {
    os << "scalar";
  }
  os << " phase_b_storage=" << to_string(mode)
     << " projected_peak=" << mib(projected_peak_bytes)
     << " measured_peak=" << mib(measured_peak_bytes)
     << " budget=" << mib(memory_budget_bytes) << " edges=" << edge_count
     << " bytes_per_edge=" << bytes_per_edge << " rounds=" << rounds
     << "\n  lambda=" << mib(lambda_bytes) << " counts=" << mib(counts_bytes)
     << " offsets=" << mib(offsets_bytes) << " edges=" << mib(edges_bytes)
     << " heights=" << mib(heights_bytes)
     << " frontier=" << mib(frontier_bytes)
     << " escape_entries=" << escape_entries;
  if (mode == PhaseBStorage::kSpill) {
    os << "\n  spill=" << mib(spill_bytes) << " blocks_read=" << blocks_read
       << " read_amplification=" << read_amplification << "x path="
       << (spill_path.empty() ? "<none>" : spill_path);
  }
  return os.str();
}

ModelChecker<core::SsrMinRing> make_ssrmin_checker(std::size_t n,
                                                   std::uint32_t K) {
  core::SsrMinRing ring(n, K);
  ConfigCodec<core::SsrState> codec(
      n, ring.states_per_process(),
      [K](const core::SsrState& s) { return core::encode_state(s, K); },
      [K](std::uint32_t code) { return core::decode_state(code, K); });
  auto legit = [ring](const core::SsrConfig& c) {
    return core::is_legitimate(ring, c);
  };
  auto privileged = [ring](const core::SsrConfig& c) {
    return core::privileged_count(ring, c);
  };
  ModelChecker<core::SsrMinRing> checker(ring, std::move(codec),
                                         std::move(legit),
                                         std::move(privileged));
  // The kernel evaluates exactly core::is_legitimate / privileged_count
  // bit-parallel, so the sliced Phase A is safe to install here (and only
  // here — custom predicates must keep the scalar sweep).
  checker.set_phase_a_slices([n, K] {
    return make_ssrmin_phase_a_slice(n, K, util::detect_lane_backend());
  });
  return checker;
}

ModelChecker<dijkstra::KStateRing> make_kstate_checker(std::size_t n,
                                                       std::uint32_t K) {
  dijkstra::KStateRing ring(n, K);
  ConfigCodec<dijkstra::KStateLocal> codec(
      n, K,
      [](const dijkstra::KStateLocal& s) { return s.x; },
      [](std::uint32_t code) { return dijkstra::KStateLocal{code}; });
  auto legit = [ring](const dijkstra::KStateConfig& c) {
    return dijkstra::is_legitimate(ring, c);
  };
  auto privileged = [ring](const dijkstra::KStateConfig& c) {
    return dijkstra::token_count(ring, c);
  };
  ModelChecker<dijkstra::KStateRing> checker(ring, std::move(codec),
                                             std::move(legit),
                                             std::move(privileged));
  checker.set_phase_a_slices([n, K] {
    return make_kstate_phase_a_slice(n, K, util::detect_lane_backend());
  });
  return checker;
}

}  // namespace ssr::verify
