// Composable online invariant monitors for state-reading executions.
//
// The paper's correctness statements are invariants over executions; this
// module packages them as reusable monitors that a test (or a long soak
// run) can evaluate after every engine step:
//
//   * PrivilegedBand     — 1 <= privileged <= 2 in legitimate
//                          configurations (Theorem 1), and >= 1 anywhere
//                          (Lemma 3);
//   * TokenAdjacency     — primary and secondary holders are the same
//                          process or ring-adjacent in Lambda (§3.1);
//   * ClosureInvariant   — once legitimate, stay legitimate (Lemma 1);
//   * ShapeCycle         — within Lambda the shapes advance
//                          HolderTra -> HolderRts -> HandoffPending ->
//                          next holder's HolderTra (Figure 1);
//   * XPartMonotone      — the embedded Dijkstra ring, once legitimate,
//                          stays legitimate (Lemma 8's closure half).
//
// Each monitor returns a violation string (empty = fine), so soak tests
// can report exactly what broke and when.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"

namespace ssr::verify {

/// Interface: observe successive configurations of one execution.
class ExecutionInvariant {
 public:
  virtual ~ExecutionInvariant() = default;
  /// Returns a human-readable violation description, or empty if the
  /// configuration (in the context of the previously observed ones) is
  /// fine.
  virtual std::string observe(const core::SsrConfig& config) = 0;
  virtual std::string name() const = 0;
};

/// Theorem 1 band inside Lambda plus the Lemma 3 floor everywhere.
class PrivilegedBandInvariant final : public ExecutionInvariant {
 public:
  explicit PrivilegedBandInvariant(core::SsrMinRing ring) : ring_(ring) {}
  std::string observe(const core::SsrConfig& config) override;
  std::string name() const override { return "privileged-band"; }

 private:
  core::SsrMinRing ring_;
};

/// §3.1: in Lambda the token holders are the same process or neighbors.
class TokenAdjacencyInvariant final : public ExecutionInvariant {
 public:
  explicit TokenAdjacencyInvariant(core::SsrMinRing ring) : ring_(ring) {}
  std::string observe(const core::SsrConfig& config) override;
  std::string name() const override { return "token-adjacency"; }

 private:
  core::SsrMinRing ring_;
};

/// Lemma 1: legitimacy is closed under steps.
class ClosureInvariant final : public ExecutionInvariant {
 public:
  explicit ClosureInvariant(core::SsrMinRing ring) : ring_(ring) {}
  std::string observe(const core::SsrConfig& config) override;
  std::string name() const override { return "closure"; }

 private:
  core::SsrMinRing ring_;
  bool was_legit_ = false;
};

/// Figure 1: the inchworm shape sequence within Lambda.
class ShapeCycleInvariant final : public ExecutionInvariant {
 public:
  explicit ShapeCycleInvariant(core::SsrMinRing ring) : ring_(ring) {}
  std::string observe(const core::SsrConfig& config) override;
  std::string name() const override { return "shape-cycle"; }

 private:
  core::SsrMinRing ring_;
  std::optional<core::LegitimacyInfo> previous_;
};

/// Lemma 8 closure half: the embedded Dijkstra ring never leaves its
/// legitimate set once inside it.
class XPartMonotoneInvariant final : public ExecutionInvariant {
 public:
  explicit XPartMonotoneInvariant(core::SsrMinRing ring) : ring_(ring) {}
  std::string observe(const core::SsrConfig& config) override;
  std::string name() const override { return "x-part-monotone"; }

 private:
  core::SsrMinRing ring_;
  bool was_dijkstra_legit_ = false;
};

/// Bundles every invariant and accumulates violations.
class InvariantSuite {
 public:
  explicit InvariantSuite(const core::SsrMinRing& ring);

  /// Feeds one configuration to every monitor; returns the number of new
  /// violations.
  std::size_t observe(const core::SsrConfig& config);

  const std::vector<std::string>& violations() const { return violations_; }
  std::uint64_t observations() const { return observations_; }
  bool clean() const { return violations_.empty(); }

 private:
  std::vector<std::unique_ptr<ExecutionInvariant>> invariants_;
  std::vector<std::string> violations_;
  std::uint64_t observations_ = 0;
};

}  // namespace ssr::verify
