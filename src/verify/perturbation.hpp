// Single-transient-fault analysis — the superstabilization-flavored
// question the paper leaves as future work (§6, pointing at Herman 2000
// and Katayama et al. 2002): starting from a legitimate configuration,
// corrupt ONE process with an arbitrary wrong state. How fast does SSRmin
// re-stabilize, and is the mutual-inclusion safety predicate ("at least
// one privileged process") ever violated on the way?
//
// The analysis is exhaustive: every legitimate configuration x every
// process x every wrong local state, with the exact worst-case recovery
// length taken from the model checker's height function. The headline
// results (see bench_perturbation):
//   * safety is never violated — a single fault cannot extinguish all
//     tokens in the state-reading model (Lemma 3 is fault-proof);
//   * single-fault recovery is far below the global worst case, the
//     superstabilizing-flavored locality property.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ssr::verify {

struct PerturbationReport {
  std::size_t n = 0;
  std::uint32_t k = 0;
  /// Number of (legitimate configuration, process, wrong state) cases.
  std::uint64_t cases = 0;
  /// Cases whose perturbed configuration is still legitimate (the fault
  /// landed on a state that is valid in context).
  std::uint64_t still_legitimate = 0;
  /// Worst-case recovery steps over all single-fault cases (under the
  /// adversarial distributed daemon).
  std::uint64_t max_recovery_steps = 0;
  double mean_recovery_steps = 0.0;
  /// histogram[s] = number of cases with worst-case recovery exactly s.
  std::vector<std::uint64_t> histogram;
  /// True iff every perturbed configuration still has >= 1 privileged
  /// process (mutual-inclusion safety through the fault).
  bool safety_preserved = true;
  /// Worst-case stabilization from *anywhere* (the Theorem 2 figure), for
  /// comparison with max_recovery_steps.
  std::uint64_t global_worst_case = 0;

  std::string summary() const;
};

/// Exhaustive single-fault analysis of SSRmin for the given ring size and
/// modulus (small n: the full configuration graph is explored).
PerturbationReport analyze_single_faults(std::size_t n, std::uint32_t K);

}  // namespace ssr::verify
