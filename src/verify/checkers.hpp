// Ready-made exhaustive checkers for the protocols in this library.
//
// Both checkers run their sweeps and convergence pass on a worker pool
// controlled by CheckOptions::threads (0 = hardware concurrency, 1 =
// sequential); the resulting CheckReport is bit-identical at every thread
// count.
#pragma once

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "dijkstra/kstate.hpp"
#include "verify/modelcheck.hpp"

namespace ssr::verify {

/// Checker for SSRmin over all (4K)^n configurations. Verifies Lemmas 1,
/// 2, 4, 6 and measures the exact worst-case stabilization time.
ModelChecker<core::SsrMinRing> make_ssrmin_checker(std::size_t n,
                                                   std::uint32_t K);

/// Checker for Dijkstra's K-state ring over all K^n configurations
/// (legitimacy = paper §2.3; privileged = token count).
ModelChecker<dijkstra::KStateRing> make_kstate_checker(std::size_t n,
                                                       std::uint32_t K);

}  // namespace ssr::verify
