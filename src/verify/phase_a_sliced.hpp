// Bit-sliced Phase A for the exhaustive model checker.
//
// The scalar Phase A walks every configuration with a ConfigOdometer and
// pays one guard sweep plus one std::function legitimacy/privilege call per
// configuration. The sliced variant instead fills a bit-plane kernel with
// kLanes *consecutive* configuration codes (lane l of window `base` is
// configuration base + l), so one kernel pass evaluates guards, legitimacy
// and privilege for a whole lane word of configurations:
//
//   * A1 (Lambda membership)  — legit_bits() returns the kernel's
//     legitimacy mask as plain u64 words, which the checker ORs into the
//     shared TwoLevelBitset (64 configurations per store).
//   * A2 (deadlock / token / closure sweep) — sweep() derives the
//     deadlocked lanes from the kernel's any-enabled mask, counts
//     privileged processes per lane with a bit-sliced vertical counter
//     (O(n log n) word ops per window instead of O(n) scalar work per
//     configuration), and reports legitimate-and-enabled lanes as closure
//     *candidates* for the caller to resolve scalar against the complete
//     Lambda bitset. Lambda is tiny for a correct protocol, so the scalar
//     fallback touches a vanishing fraction of the space.
//
// Filling is run-decomposed: the digit of process i is constant over runs
// of radix^i consecutive codes, so a window refill is O(n + runs) masked
// bulk writes (BasicSlicedSsrMin::fill_lanes), not kLanes scalar loads —
// and a process whose digit pattern is unchanged since the previous window
// (base mod radix^(i+1) unchanged) is skipped entirely, which keeps the
// kernel's compute() incremental across consecutive windows.
//
// The interface is type-erased (PhaseASlice) so ModelChecker::run stays
// generic; concrete slices are built by verify/phase_a_dispatch.cpp, which
// picks the widest lane word the CPU supports (u64 / AVX2 / AVX-512) via
// util::detect_lane_backend. Only the library's own checker factories
// install a slice: a checker constructed with custom legitimacy or
// privilege predicates must keep the scalar path, or the sliced sweep
// would silently answer a different question.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/bitplane.hpp"

namespace ssr::verify {

/// Phase A execution strategy (CheckOptions::phase_a).
enum class PhaseAMode {
  kAuto,    ///< sliced when the checker has a slice factory, else scalar
  kScalar,  ///< force the odometer walk (the differential baseline)
  kSliced,  ///< require the sliced path; error if no factory is installed
};

/// Which A2 checks to run and the token bounds to enforce (mirrors the
/// corresponding CheckOptions fields).
struct SliceQuery {
  bool check_deadlock = true;
  bool check_token = true;
  bool check_closure = true;
  std::size_t min_privileged = 1;
  std::size_t max_privileged = 2;
};

/// Accumulator a worker threads through its sweep() calls. Witness fields
/// hold the lowest code seen so far (UINT64_MAX = none); sweep() skips the
/// per-window witness search once a window starts past the current best.
struct SliceResult {
  std::uint64_t deadlock = UINT64_MAX;  ///< lowest deadlocked config
  std::uint64_t token = UINT64_MAX;     ///< lowest token-bound violation
  std::size_t min_priv = SIZE_MAX;      ///< min privileged over all configs
  /// Legitimate configurations with at least one enabled process, appended
  /// in ascending code order — the caller re-derives their successors
  /// scalar and tests them against the complete Lambda bitset.
  std::vector<std::uint64_t> closure_candidates;
};

/// One worker's bit-sliced Phase A engine. Not thread-safe; the checker
/// builds one per worker. Windows may arrive in any order (dynamic chunk
/// claiming), but consecutive bases are the common case the incremental
/// refill is tuned for.
class PhaseASlice {
 public:
  virtual ~PhaseASlice() = default;

  /// Lane count per window (64 / 256 / 512). Always a power of two that
  /// divides TwoLevelBitset::kBlockBits, so windows never straddle chunk
  /// boundaries except at the final total tail.
  virtual unsigned lanes() const = 0;
  /// Backend label for telemetry ("u64", "avx2", "avx512").
  virtual const char* backend_name() const = 0;

  /// Legitimacy of configurations [base, base + count) as u64 words:
  /// bit l of out[j] is configuration base + 64 j + l. count <= lanes();
  /// bits at or past count are zero. base must be 64-aligned.
  virtual void legit_bits(std::uint64_t base, std::uint64_t count,
                          std::uint64_t* out) = 0;

  /// A2 sweep of configurations [base, base + count): merges deadlock and
  /// token witnesses and the privilege minimum into @p r, and appends
  /// closure candidates. base must be 64-aligned, count <= lanes().
  virtual void sweep(std::uint64_t base, std::uint64_t count,
                     const SliceQuery& q, SliceResult& r) = 0;
};

/// Builds one PhaseASlice per worker (called once per worker per run).
using PhaseASliceFactory = std::function<std::unique_ptr<PhaseASlice>()>;

/// Generic sliced Phase A over any bit-plane kernel exposing the batched
/// protocol surface (fill_lanes via @p Fill, compute, any_enabled_mask,
/// privileged_plane, legit_masks). @p Fill maps a dense digit in
/// [0, radix) to a masked kernel fill: fill(kernel, i, mask, digit).
template <typename Kernel, typename Fill>
class BasicPhaseASlice final : public PhaseASlice {
 public:
  using W = typename Kernel::Word;
  using Traits = util::LaneTraits<W>;
  static constexpr unsigned kLanes = Kernel::kLanes;

  BasicPhaseASlice(Kernel kernel, std::uint64_t radix, Fill fill,
                   const char* backend)
      : kernel_(std::move(kernel)),
        n_(kernel_.size()),
        radix_(radix),
        fill_(std::move(fill)),
        backend_(backend),
        cnt_(std::bit_width(n_), Traits::zero()) {
    SSR_REQUIRE(radix_ >= 2, "need at least two states per process");
    // Positional weights radix^0 .. radix^n; the codec already proved
    // radix^n fits u64 for any checkable space.
    weights_.reserve(n_ + 1);
    std::uint64_t w = 1;
    for (std::size_t i = 0; i < n_; ++i) {
      weights_.push_back(w);
      SSR_REQUIRE(w <= UINT64_MAX / radix_,
                  "configuration space exceeds 2^64");
      w *= radix_;
    }
    weights_.push_back(w);
  }

  unsigned lanes() const override { return kLanes; }
  const char* backend_name() const override { return backend_; }

  void legit_bits(std::uint64_t base, std::uint64_t count,
                  std::uint64_t* out) override {
    refill(base);
    const auto masks = kernel_.legit_masks();
    const std::uint64_t words = (count + 63) / 64;
    for (std::uint64_t j = 0; j < words; ++j) {
      out[j] = Traits::limb(masks.legitimate, static_cast<unsigned>(j));
    }
    // Tail lanes past count hold the wrapped configurations coded
    // base + l >= total; mask them off.
    const unsigned tail = static_cast<unsigned>(count & 63);
    if (tail != 0) out[words - 1] &= (std::uint64_t{1} << tail) - 1;
  }

  void sweep(std::uint64_t base, std::uint64_t count, const SliceQuery& q,
             SliceResult& r) override {
    refill(base);
    const W valid = Traits::range_mask(0, static_cast<unsigned>(count));
    const W any_en = kernel_.any_enabled_mask();

    if (q.check_deadlock && base < r.deadlock) {
      const W dead = valid & ~any_en;
      if (Traits::any(dead)) {
        r.deadlock = std::min(r.deadlock, base + first_lane(dead));
      }
    }

    count_privileged();
    r.min_priv = std::min(r.min_priv, min_count(valid));

    const auto masks = kernel_.legit_masks();
    const W legit = masks.legitimate & valid;
    if (!Traits::any(legit)) return;

    if (q.check_token && base < r.token) {
      const W viol = legit & (count_lt(q.min_privileged) |
                              count_gt(q.max_privileged));
      if (Traits::any(viol)) {
        r.token = std::min(r.token, base + first_lane(viol));
      }
    }
    if (q.check_closure) {
      Traits::for_each_lane(legit & any_en, [&](unsigned l) {
        r.closure_candidates.push_back(base + l);
      });
    }
  }

 private:
  /// Installs configurations base .. base + kLanes - 1 into the lanes.
  /// Process i's digit is ((base + l) / radix^i) mod radix — constant over
  /// runs of radix^i lanes, and as a function of base + l periodic with
  /// period radix^(i+1), so a process whose residue is unchanged since the
  /// previous refill is skipped (its planes already hold the right
  /// pattern) and the rest are written as masked runs.
  void refill(std::uint64_t base) {
    for (std::size_t i = 0; i < n_; ++i) {
      const std::uint64_t q = weights_[i + 1];
      if (has_prev_ && base % q == prev_ % q) continue;
      const std::uint64_t p = weights_[i];
      auto v = static_cast<std::uint32_t>((base / p) % radix_);
      unsigned l = 0;
      while (l < kLanes) {
        const std::uint64_t left = p - (base + l) % p;
        const auto run = static_cast<unsigned>(
            std::min<std::uint64_t>(kLanes - l, left));
        fill_(kernel_, i, Traits::range_mask(l, l + run), v);
        l += run;
        v = v + 1 == radix_ ? 0 : v + 1;
      }
    }
    prev_ = base;
    has_prev_ = true;
    kernel_.compute();
  }

  /// Lowest set lane of a nonempty word.
  static std::uint64_t first_lane(const W& w) {
    for (unsigned g = 0; g < Traits::kLimbs; ++g) {
      const std::uint64_t bits = Traits::limb(w, g);
      if (bits != 0) {
        return g * 64 +
               static_cast<std::uint64_t>(std::countr_zero(bits));
      }
    }
    SSR_ASSERT(false, "first_lane on an empty word");
    return 0;
  }

  /// Per-lane privileged-process counts as a vertical (bit-sliced) counter:
  /// cnt_[j] holds bit j of every lane's count. Ripple-carry add of each
  /// privileged plane; bit_width(n) planes suffice since counts <= n.
  void count_privileged() {
    for (W& c : cnt_) c = Traits::zero();
    for (std::size_t i = 0; i < n_; ++i) {
      W carry = kernel_.privileged_plane(i);
      for (std::size_t j = 0; j < cnt_.size() && Traits::any(carry); ++j) {
        const W t = cnt_[j] & carry;
        cnt_[j] ^= carry;
        carry = t;
      }
    }
  }

  /// Minimum counter value over the lanes of @p mask (nonempty), found
  /// MSB-first: if any candidate lane has bit j clear, the minimum does
  /// too, and lanes with it set stop being candidates.
  std::size_t min_count(const W& mask) const {
    W cand = mask;
    std::size_t val = 0;
    for (std::size_t j = cnt_.size(); j-- > 0;) {
      const W low = cand & ~cnt_[j];
      if (Traits::any(low)) {
        cand = low;
      } else {
        val |= std::size_t{1} << j;
      }
    }
    return val;
  }

  /// Lanes whose counter is < c (bit-sliced magnitude comparison).
  W count_lt(std::size_t c) const {
    if ((c >> cnt_.size()) != 0) return Traits::ones();  // every count < c
    W lt = Traits::zero();
    W eq = Traits::ones();
    for (std::size_t j = cnt_.size(); j-- > 0;) {
      if ((c >> j) & 1) {
        lt |= eq & ~cnt_[j];
        eq &= cnt_[j];
      } else {
        eq &= ~cnt_[j];
      }
    }
    return lt;
  }

  /// Lanes whose counter is > c.
  W count_gt(std::size_t c) const {
    if ((c >> cnt_.size()) != 0) return Traits::zero();  // no count > c
    W gt = Traits::zero();
    W eq = Traits::ones();
    for (std::size_t j = cnt_.size(); j-- > 0;) {
      if ((c >> j) & 1) {
        eq &= cnt_[j];
      } else {
        gt |= eq & cnt_[j];
        eq &= ~cnt_[j];
      }
    }
    return gt;
  }

  Kernel kernel_;
  std::size_t n_;
  std::uint64_t radix_;
  Fill fill_;
  const char* backend_;
  std::vector<W> cnt_;  ///< vertical privilege counter planes
  std::vector<std::uint64_t> weights_;  ///< radix^0 .. radix^n
  std::uint64_t prev_ = 0;
  bool has_prev_ = false;
};

}  // namespace ssr::verify
