#include "verify/invariants.hpp"

#include <sstream>

namespace ssr::verify {

namespace {

std::string describe(const core::SsrConfig& config) {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < config.size(); ++i) {
    if (i != 0) os << ", ";
    os << core::format_state(config[i]);
  }
  os << ')';
  return os.str();
}

}  // namespace

std::string PrivilegedBandInvariant::observe(const core::SsrConfig& config) {
  const std::size_t priv = core::privileged_count(ring_, config);
  if (priv == 0) {
    return "zero privileged processes in " + describe(config) +
           " (violates Lemma 3)";
  }
  if (core::is_legitimate(ring_, config) && priv > 2) {
    return "more than two privileged processes in legitimate " +
           describe(config) + " (violates Theorem 1)";
  }
  return {};
}

std::string TokenAdjacencyInvariant::observe(const core::SsrConfig& config) {
  if (!core::is_legitimate(ring_, config)) return {};
  const auto holdings = core::token_holdings(ring_, config);
  const std::size_t n = config.size();
  std::size_t primary_at = n;
  std::size_t secondary_at = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (holdings[i].primary) primary_at = i;
    if (holdings[i].secondary) secondary_at = i;
  }
  if (primary_at == n || secondary_at == n) {
    return "missing a token in legitimate " + describe(config);
  }
  if (primary_at != secondary_at &&
      stab::succ_index(primary_at, n) != secondary_at) {
    std::ostringstream os;
    os << "token holders not adjacent: primary at P" << primary_at
       << ", secondary at P" << secondary_at << " in " << describe(config);
    return os.str();
  }
  return {};
}

std::string ClosureInvariant::observe(const core::SsrConfig& config) {
  const bool legit = core::is_legitimate(ring_, config);
  if (was_legit_ && !legit) {
    return "left the legitimate set: " + describe(config) +
           " (violates Lemma 1)";
  }
  was_legit_ = legit;
  return {};
}

std::string ShapeCycleInvariant::observe(const core::SsrConfig& config) {
  const auto info = core::classify_legitimate(ring_, config);
  if (!info.has_value()) {
    previous_.reset();
    return {};
  }
  std::string violation;
  if (previous_.has_value()) {
    const auto& prev = *previous_;
    const std::size_t n = config.size();
    using core::LegitimateShape;
    bool ok = false;
    if (prev.primary_holder == info->primary_holder &&
        prev.shape == info->shape) {
      ok = true;  // no move of interest happened (e.g. stutter)
    } else if (prev.primary_holder == info->primary_holder) {
      ok = (prev.shape == LegitimateShape::kHolderTra &&
            info->shape == LegitimateShape::kHolderRts) ||
           (prev.shape == LegitimateShape::kHolderRts &&
            info->shape == LegitimateShape::kHandoffPending);
    } else if (stab::succ_index(prev.primary_holder, n) ==
               info->primary_holder) {
      ok = prev.shape == LegitimateShape::kHandoffPending &&
           info->shape == LegitimateShape::kHolderTra;
    }
    if (!ok) {
      std::ostringstream os;
      os << "shape sequence broke Figure 1's cycle: holder P"
         << prev.primary_holder << " shape " << static_cast<int>(prev.shape)
         << " -> holder P" << info->primary_holder << " shape "
         << static_cast<int>(info->shape);
      violation = os.str();
    }
  }
  previous_ = info;
  return violation;
}

std::string XPartMonotoneInvariant::observe(const core::SsrConfig& config) {
  const bool legit = core::dijkstra_part_legitimate(ring_, config);
  if (was_dijkstra_legit_ && !legit) {
    return "embedded Dijkstra ring left its legitimate set: " +
           describe(config) + " (violates Lemma 8 closure)";
  }
  was_dijkstra_legit_ = legit;
  return {};
}

InvariantSuite::InvariantSuite(const core::SsrMinRing& ring) {
  invariants_.push_back(std::make_unique<PrivilegedBandInvariant>(ring));
  invariants_.push_back(std::make_unique<TokenAdjacencyInvariant>(ring));
  invariants_.push_back(std::make_unique<ClosureInvariant>(ring));
  invariants_.push_back(std::make_unique<ShapeCycleInvariant>(ring));
  invariants_.push_back(std::make_unique<XPartMonotoneInvariant>(ring));
}

std::size_t InvariantSuite::observe(const core::SsrConfig& config) {
  ++observations_;
  std::size_t fresh = 0;
  for (auto& invariant : invariants_) {
    std::string violation = invariant->observe(config);
    if (!violation.empty()) {
      violations_.push_back("[" + invariant->name() + "] " +
                            std::move(violation));
      ++fresh;
    }
  }
  return fresh;
}

}  // namespace ssr::verify
