// 256-lane Phase A slices. This TU is the only verify code compiled with
// -mavx2 (see CMakeLists.txt): the WideWord<4> limb loops are plain C++,
// the flag just lets the vectorizer emit 256-bit ops. Callers reach it
// through verify/phase_a_dispatch.cpp after a cpuid check.
#include "verify/phase_a_dispatch.hpp"

#include "verify/phase_a_kernels.hpp"

namespace ssr::verify::detail {

std::unique_ptr<PhaseASlice> make_ssrmin_phase_a_slice_avx2(std::size_t n,
                                                            std::uint32_t K) {
  return make_ssrmin_phase_a<util::Lane256>(n, K, "avx2");
}

std::unique_ptr<PhaseASlice> make_kstate_phase_a_slice_avx2(std::size_t n,
                                                            std::uint32_t K) {
  return make_kstate_phase_a<util::Lane256>(n, K, "avx2");
}

}  // namespace ssr::verify::detail
