// Exact average-case stabilization analysis.
//
// The worst-case figure (Theorem 2, model checker heights) describes the
// adversarial daemon. For *randomized* daemons the convergence time is a
// hitting time of a Markov chain over the configuration graph: under the
// uniform central daemon, each step picks one enabled process uniformly at
// random. This module solves the expected-hitting-time system
//
//     E[c] = 0                                   for c in Lambda
//     E[c] = 1 + (1/|en(c)|) * sum_i E[next(c, i)] otherwise
//
// exactly (up to a configurable tolerance) by Gauss–Seidel iteration over
// the dense configuration space — tractable for the same small (n, K) the
// model checker covers, and a sharp complement to both the empirical
// means of bench_convergence and the exhaustive worst cases of E3.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "stabilizing/protocol.hpp"
#include "util/assert.hpp"
#include "verify/modelcheck.hpp"

namespace ssr::verify {

/// Result of the hitting-time computation.
struct HittingTimeReport {
  /// Expected steps to Lambda from each encoded configuration (0 on
  /// Lambda).
  std::vector<double> expected_steps;
  /// Largest expected value (the worst *starting* configuration for the
  /// random daemon).
  double max_expected = 0.0;
  std::uint64_t argmax = 0;
  /// Mean over all illegitimate configurations (uniform random start).
  double mean_expected = 0.0;
  /// Gauss–Seidel sweeps used.
  std::uint64_t iterations = 0;
  bool converged = false;
};

/// Computes expected hitting times to the legitimate set under the
/// uniform-random central daemon. Requires the protocol/codec pair of a
/// ModelChecker. The chain must be absorbing into Lambda (i.e. the
/// checker's convergence property must hold), otherwise the iteration
/// will not converge and the report says so.
template <stab::RingProtocol P>
HittingTimeReport expected_hitting_times(const ModelChecker<P>& checker,
                                         double tolerance = 1e-9,
                                         std::uint64_t max_iterations = 100000) {
  using Config = typename ModelChecker<P>::Config;
  const auto& codec = checker.codec();
  const std::uint64_t total = codec.total();

  // Precompute, per configuration, the successor codes under the *central*
  // daemon (one enabled process moves at a time).
  std::vector<std::uint8_t> legit(total, 0);
  std::vector<std::uint32_t> first_succ(total, 0);
  std::vector<std::uint32_t> succ_count(total, 0);
  std::vector<std::uint64_t> succ_flat;
  succ_flat.reserve(total * 2);
  for (std::uint64_t c = 0; c < total; ++c) {
    const Config config = codec.decode(c);
    if (checker.legitimate(config)) {
      legit[c] = 1;
      continue;
    }
    first_succ[c] = static_cast<std::uint32_t>(succ_flat.size());
    const std::size_t n = config.size();
    Config next = config;
    for (std::size_t i = 0; i < n; ++i) {
      const int rule = checker.protocol().enabled_rule(
          i, config[i], config[stab::pred_index(i, n)],
          config[stab::succ_index(i, n)]);
      if (rule == stab::kDisabled) continue;
      next[i] = checker.protocol().apply(i, rule, config[i],
                                         config[stab::pred_index(i, n)],
                                         config[stab::succ_index(i, n)]);
      succ_flat.push_back(codec.encode(next));
      next[i] = config[i];
      ++succ_count[c];
    }
    SSR_ASSERT(succ_count[c] > 0, "deadlocked configuration in Markov chain");
  }

  HittingTimeReport report;
  report.expected_steps.assign(total, 0.0);
  auto& e = report.expected_steps;

  for (std::uint64_t iter = 0; iter < max_iterations; ++iter) {
    double max_delta = 0.0;
    for (std::uint64_t c = 0; c < total; ++c) {
      if (legit[c]) continue;
      double sum = 0.0;
      const std::uint32_t base = first_succ[c];
      for (std::uint32_t k = 0; k < succ_count[c]; ++k) {
        sum += e[succ_flat[base + k]];
      }
      const double updated = 1.0 + sum / succ_count[c];
      max_delta = std::max(max_delta, std::abs(updated - e[c]));
      e[c] = updated;
    }
    report.iterations = iter + 1;
    if (max_delta < tolerance) {
      report.converged = true;
      break;
    }
  }

  std::uint64_t illegit = 0;
  double sum = 0.0;
  for (std::uint64_t c = 0; c < total; ++c) {
    if (legit[c]) continue;
    ++illegit;
    sum += e[c];
    if (e[c] > report.max_expected) {
      report.max_expected = e[c];
      report.argmax = c;
    }
  }
  report.mean_expected = illegit ? sum / static_cast<double>(illegit) : 0.0;
  return report;
}

}  // namespace ssr::verify
