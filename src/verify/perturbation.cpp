#include "verify/perturbation.hpp"

#include <sstream>

#include "core/legitimacy.hpp"
#include "verify/checkers.hpp"

namespace ssr::verify {

std::string PerturbationReport::summary() const {
  std::ostringstream os;
  os << "n=" << n << " K=" << k << " cases=" << cases
     << " still_legit=" << still_legitimate
     << " max_recovery=" << max_recovery_steps
     << " mean_recovery=" << mean_recovery_steps
     << " global_worst=" << global_worst_case
     << " safety=" << (safety_preserved ? "preserved" : "VIOLATED");
  return os.str();
}

PerturbationReport analyze_single_faults(std::size_t n, std::uint32_t K) {
  PerturbationReport report;
  report.n = n;
  report.k = K;

  auto checker = make_ssrmin_checker(n, K);
  CheckOptions options;
  options.keep_heights = true;
  const CheckReport check = checker.run(options);
  SSR_REQUIRE(check.all_ok(), "base protocol failed verification: " +
                                  check.summary());
  SSR_REQUIRE(!check.heights.empty(), "height table missing");
  report.global_worst_case = check.worst_case_steps;

  const core::SsrMinRing ring(n, K);
  const auto legit_configs = core::enumerate_legitimate(ring);
  const std::uint32_t states = 4 * K;

  std::uint64_t total_recovery = 0;
  for (const auto& base : legit_configs) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t original = core::encode_state(base[i], K);
      for (std::uint32_t wrong = 0; wrong < states; ++wrong) {
        if (wrong == original) continue;
        core::SsrConfig perturbed = base;
        perturbed[i] = core::decode_state(wrong, K);
        ++report.cases;

        if (core::privileged_count(ring, perturbed) == 0) {
          report.safety_preserved = false;
        }
        if (core::is_legitimate(ring, perturbed)) {
          ++report.still_legitimate;
          continue;
        }
        const std::uint64_t code = checker.codec().encode(perturbed);
        const std::uint32_t recovery = check.heights[code];
        total_recovery += recovery;
        report.max_recovery_steps =
            std::max<std::uint64_t>(report.max_recovery_steps, recovery);
        if (report.histogram.size() <= recovery) {
          report.histogram.resize(recovery + 1, 0);
        }
        ++report.histogram[recovery];
      }
    }
  }
  const std::uint64_t recovering = report.cases - report.still_legitimate;
  report.mean_recovery_steps =
      recovering == 0 ? 0.0
                      : static_cast<double>(total_recovery) /
                            static_cast<double>(recovering);
  return report;
}

}  // namespace ssr::verify
