#include "verify/spill_store.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace ssr::verify {

std::string resolve_spill_dir(const std::string& requested) {
  if (!requested.empty()) return requested;
  if (const char* env = std::getenv("SSRING_CHECK_TMPDIR")) {
    if (*env != '\0') return env;
  }
  if (const char* env = std::getenv("TMPDIR")) {
    if (*env != '\0') return env;
  }
  return "/tmp";
}

// --- SpillFile -------------------------------------------------------------

void SpillFile::fail(const std::string& what, int err) const {
  std::string msg = "spill file " + (path_.empty() ? "<unopened>" : path_) +
                    ": " + what;
  if (err != 0) msg += ": " + std::string(std::strerror(err));
  msg += " (projected spill bytes=" + std::to_string(projected_bytes_) + ")";
  SSR_REQUIRE(false, msg);
}

void SpillFile::create(const std::string& dir, std::uint64_t projected_bytes) {
  SSR_ASSERT(fd_ < 0, "spill file already open");
  projected_bytes_ = projected_bytes;
  std::string tmpl = dir + "/ssring-spill-XXXXXX";
  const int fd = ::mkstemp(tmpl.data());
  if (fd < 0) {
    path_ = tmpl;
    fail("cannot create spill file in tmpdir '" + dir + "'", errno);
  }
  // Unlink immediately: the fd keeps the inode alive, and the kernel
  // reclaims the space the moment the run ends, however it ends.
  ::unlink(tmpl.c_str());
  fd_ = fd;
  path_ = tmpl;
}

void SpillFile::open_path(const std::string& path,
                          std::uint64_t projected_bytes) {
  SSR_ASSERT(fd_ < 0, "spill file already open");
  projected_bytes_ = projected_bytes;
  path_ = path;
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) fail("cannot open spill file", errno);
  fd_ = fd;
}

void SpillFile::truncate(std::uint64_t bytes) {
  SSR_ASSERT(fd_ >= 0, "spill file not open");
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) {
    fail("cannot size spill file to " + std::to_string(bytes) + " bytes",
         errno);
  }
}

void SpillFile::write_at(std::uint64_t offset, const void* data,
                         std::size_t len) {
  SSR_ASSERT(fd_ >= 0, "spill file not open");
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t wrote = ::pwrite(fd_, p, len, static_cast<off_t>(offset));
    if (wrote < 0) {
      if (errno == EINTR) continue;
      fail("write failed at offset " + std::to_string(offset), errno);
    }
    if (wrote == 0) fail("write stalled at offset " + std::to_string(offset), 0);
    p += wrote;
    offset += static_cast<std::uint64_t>(wrote);
    len -= static_cast<std::size_t>(wrote);
  }
}

const std::uint8_t* SpillFile::map_readonly(std::uint64_t expected_bytes) {
  SSR_ASSERT(fd_ >= 0, "spill file not open");
  SSR_ASSERT(map_ == nullptr, "spill file already mapped");
  struct stat st {};
  if (::fstat(fd_, &st) != 0) fail("cannot stat spill file", errno);
  if (static_cast<std::uint64_t>(st.st_size) < expected_bytes) {
    fail("spill file truncated: " + std::to_string(st.st_size) +
             " bytes on disk, " + std::to_string(expected_bytes) + " expected",
         0);
  }
  if (expected_bytes == 0) return nullptr;
  void* m = ::mmap(nullptr, expected_bytes, PROT_READ, MAP_SHARED, fd_, 0);
  if (m == MAP_FAILED) fail("cannot map spill file", errno);
  map_ = static_cast<std::uint8_t*>(m);
  map_bytes_ = expected_bytes;
  ::madvise(map_, map_bytes_, MADV_SEQUENTIAL);
  return map_;
}

void SpillFile::advise_willneed(std::uint64_t offset, std::uint64_t len) const {
  if (map_ == nullptr || len == 0) return;
  // Page-align downward; madvise is advisory, so failures are ignored.
  const std::uint64_t page = 4096;
  const std::uint64_t lo = offset / page * page;
  ::madvise(map_ + lo, len + (offset - lo), MADV_WILLNEED);
}

void SpillFile::advise_dontneed(std::uint64_t offset, std::uint64_t len) const {
  if (map_ == nullptr || len == 0) return;
  const std::uint64_t page = 4096;
  const std::uint64_t lo = (offset + page - 1) / page * page;
  const std::uint64_t hi = (offset + len) / page * page;
  if (hi <= lo) return;
  ::madvise(map_ + lo, hi - lo, MADV_DONTNEED);
}

void SpillFile::close() {
  if (map_ != nullptr) {
    ::munmap(map_, map_bytes_);
    map_ = nullptr;
    map_bytes_ = 0;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// --- SpillWriteQueue -------------------------------------------------------

SpillWriteQueue::~SpillWriteQueue() { abort(); }

void SpillWriteQueue::abort() noexcept {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  jobs_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void SpillWriteQueue::start() {
  SSR_ASSERT(!thread_.joinable(), "spill write queue already started");
  stop_ = false;
  error_.clear();
  thread_ = std::thread([this] { flush_loop(); });
}

void SpillWriteQueue::flush_loop() {
  for (;;) {
    Job job{};
    bool poisoned = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      jobs_cv_.wait(lk, [&] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ set and queue drained
      job = jobs_.front();
      jobs_.pop_front();
      poisoned = !error_.empty();
    }
    if (!poisoned) {
      try {
        file_->write_at(job.offset, job.data, job.len);
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lk(mu_);
        error_ = e.what();
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      *job.busy = false;
    }
    done_cv_.notify_all();
  }
}

void SpillWriteQueue::submit(const std::uint8_t* data, std::uint64_t offset,
                             std::size_t len, bool* busy) {
  SSR_ASSERT(thread_.joinable(), "spill write queue not started");
  {
    std::lock_guard<std::mutex> lk(mu_);
    *busy = true;
    jobs_.push_back(Job{data, offset, len, busy});
  }
  jobs_cv_.notify_one();
}

void SpillWriteQueue::wait_free(bool* busy) {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return !*busy; });
  if (!error_.empty()) {
    const std::string e = error_;
    lk.unlock();
    SSR_REQUIRE(false, e);
  }
}

void SpillWriteQueue::finish() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  jobs_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (!error_.empty()) {
    const std::string e = error_;
    SSR_REQUIRE(false, e);
  }
}

// --- SpillMoveStore --------------------------------------------------------

void SpillMoveStore::prepare(std::uint64_t total, const MoveRecordCodec& codec,
                             std::string dir,
                             std::uint64_t projected_file_bytes) {
  layout_.prepare(total, codec);
  dir_ = std::move(dir);
  projected_file_bytes_ = projected_file_bytes;
}

void SpillMoveStore::finalize_layout() {
  layout_.finalize();
  if (layout_.total_bytes() == 0) return;  // nothing to spill
  file_.create(dir_, projected_file_bytes_);
  file_.truncate(layout_.total_bytes());
  queue_.start();
}

void SpillMoveStore::seal_for_read(std::uint32_t window_blocks) {
  if (layout_.total_bytes() == 0) return;
  queue_.finish();
  map_ = file_.map_readonly(layout_.total_bytes());
  window_bytes_ = static_cast<std::uint64_t>(window_blocks)
                  << layout_.block_shift();
  // A record block holds up to 2^shift maximal records, so bytes-per-
  // block can exceed 2^shift; scale the window by the worst observed
  // block instead of undershooting the readahead.
  std::uint64_t worst_block = 0;
  for (std::uint64_t b = 0; b < layout_.block_count(); ++b) {
    worst_block = std::max(worst_block, layout_.block_bytes(b));
  }
  window_bytes_ = std::max(window_bytes_, window_blocks * worst_block);
  stop_prefetch_ = false;
  advised_ = 0;
  dropped_ = 0;
  progress_.store(0, std::memory_order_relaxed);
  prefetch_ = std::thread([this] { prefetch_loop(); });
}

void SpillMoveStore::prefetch_loop() {
  // Drop granularity for the trailing MADV_DONTNEED: big enough to
  // amortize the syscall, small enough that mapped RSS stays within a
  // few windows of the readahead instead of accreting the whole stream.
  constexpr std::uint64_t kDropBatch = 32ull << 20;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (stop_prefetch_) return;
    const std::uint64_t progress = progress_.load(std::memory_order_relaxed);
    const std::uint64_t target =
        std::min(layout_.total_bytes(), progress + window_bytes_);
    if (advised_ < target) {
      const std::uint64_t lo = advised_;
      advised_ = target;
      lk.unlock();
      file_.advise_willneed(lo, target - lo);
      lk.lock();
      continue;
    }
    // Streaming consumption would otherwise leave every touched page of
    // the mapping resident — on a long round that is the whole file in
    // RSS, defeating the point of spilling. Unmap pages a full window
    // behind the consumers; they stay in the page cache, so a straggler
    // worker (or the next round) just takes a minor fault.
    const std::uint64_t keep =
        progress > window_bytes_ ? progress - window_bytes_ : 0;
    if (keep > dropped_ + kDropBatch) {
      const std::uint64_t lo = dropped_;
      dropped_ = keep;
      lk.unlock();
      file_.advise_dontneed(lo, keep - lo);
      lk.lock();
      continue;
    }
    // Progress advances through a plain atomic (no notify on the hot
    // path), so poll with a short nap instead of waiting on the cv.
    cv_.wait_for(lk, std::chrono::microseconds(200));
  }
}

void SpillMoveStore::begin_round() {
  if (map_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    progress_.store(0, std::memory_order_relaxed);
    advised_ = 0;
    dropped_ = 0;
  }
  cv_.notify_all();
}

void SpillMoveStore::note_progress(std::uint64_t byte_offset) {
  std::uint64_t cur = progress_.load(std::memory_order_relaxed);
  while (cur < byte_offset &&
         !progress_.compare_exchange_weak(cur, byte_offset,
                                          std::memory_order_relaxed)) {
  }
}

void SpillMoveStore::release() {
  queue_.abort();
  if (prefetch_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_prefetch_ = true;
    }
    cv_.notify_all();
    prefetch_.join();
  }
  map_ = nullptr;
  file_.close();
  layout_.release();
}

}  // namespace ssr::verify
