// Internal: lane-word-generic constructors for the concrete Phase A
// slices. Included by verify/phase_a_dispatch.cpp (u64) and by the
// per-ISA translation units (Lane256 / Lane512), which are the only
// files compiled with -mavx2 / -mavx512f — keep this header out of
// public includes so those instantiations stay confined to their TUs.
#pragma once

#include <cstdint>
#include <memory>

#include "core/ssrmin_sliced.hpp"
#include "core/state.hpp"
#include "dijkstra/kstate_sliced.hpp"
#include "verify/phase_a_sliced.hpp"

namespace ssr::verify::detail {

template <typename W>
std::unique_ptr<PhaseASlice> make_ssrmin_phase_a(std::size_t n,
                                                 std::uint32_t K,
                                                 const char* backend) {
  core::SsrMinRing ring(n, K);
  const std::uint32_t radix = ring.states_per_process();
  // Dense digit -> (x, rts, tra) masked fill; the digit layout matches
  // core::encode_state, which is what the checker's codec enumerates.
  auto fill = [K](core::BasicSlicedSsrMin<W>& kernel, std::size_t i,
                  const W& mask, std::uint32_t digit) {
    const core::SsrState s = core::decode_state(digit, K);
    kernel.fill_lanes(i, mask, s.x, s.rts, s.tra);
  };
  using Slice = BasicPhaseASlice<core::BasicSlicedSsrMin<W>, decltype(fill)>;
  return std::make_unique<Slice>(core::BasicSlicedSsrMin<W>(ring), radix,
                                 fill, backend);
}

template <typename W>
std::unique_ptr<PhaseASlice> make_kstate_phase_a(std::size_t n,
                                                 std::uint32_t K,
                                                 const char* backend) {
  dijkstra::KStateRing ring(n, K);
  auto fill = [](dijkstra::BasicSlicedKState<W>& kernel, std::size_t i,
                 const W& mask, std::uint32_t digit) {
    kernel.fill_lanes(i, mask, digit);
  };
  using Slice =
      BasicPhaseASlice<dijkstra::BasicSlicedKState<W>, decltype(fill)>;
  return std::make_unique<Slice>(dijkstra::BasicSlicedKState<W>(ring), K,
                                 fill, backend);
}

}  // namespace ssr::verify::detail
