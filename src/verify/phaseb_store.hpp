// Memory-slim storage backing the model checker's Phase B (convergence by
// reverse induction). Three cooperating pieces:
//
//  * MoveRecordCodec / MoveStore — the delta-compressed edge store. A
//    successor differs from its base configuration only at the processes
//    that moved, so the *entire* daemon fan-out of a configuration (all
//    2^m - 1 subset choices) is recoverable from one per-source record:
//    a varint mask of the positions whose digit changes, plus each
//    changed position's signed digit delta packed in
//    bit_width(2*(radix-1)) bits. Storage is O(moved digits) per source
//    instead of O(4 bytes) per *edge* — for spaces where the mean enabled
//    count is m, that is a ~2^m / record_bytes compression of the seed's
//    predecessor CSR. Records are addressed by a two-level offset table
//    (u64 base per block, u16 offset within the block), so random access
//    during the peel costs two loads.
//
//  * HeightTable — the per-configuration worst-case-steps table, packed
//    as dense u16 with a sparse u32 side table for values that do not fit
//    (checked escape; heights beyond 65534 need a >64Ki-step chain, which
//    only the legacy u32 path can produce).
//
//  * CheckStats + projected-peak formulas — per-structure byte telemetry
//    and the memory model used to pick a storage mode *before* running:
//    projections are upper bounds (they assume every record is maximal),
//    so measured peaks always reconcile as measured <= projected.
#pragma once

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "util/assert.hpp"

namespace ssr::verify {

// --- delta-compressed move records -----------------------------------------

/// Encodes/decodes one per-source move record: LEB128 varint of the
/// changed-position mask, then each changed position's digit delta
/// (ordered by ascending position) packed LSB-first in
/// bit_width(2*(radix-1)) bits with bias radix-1. A mask of 0 encodes a
/// pure self-loop source (every enabled move preserves the code).
class MoveRecordCodec {
 public:
  MoveRecordCodec() = default;
  MoveRecordCodec(std::size_t n, std::uint64_t radix)
      : n_(n),
        bias_(static_cast<std::int32_t>(radix) - 1),
        delta_bits_(static_cast<std::uint32_t>(
            std::bit_width(2 * (radix - 1)))) {
    SSR_REQUIRE(n >= 1 && n <= 32, "move records support 1..32 positions");
    SSR_REQUIRE(radix >= 2, "radix must be at least 2");
  }

  std::size_t positions() const { return n_; }
  std::uint32_t delta_bits() const { return delta_bits_; }

  static std::size_t varint_size(std::uint32_t v) {
    std::size_t s = 1;
    while (v >= 0x80) {
      v >>= 7;
      ++s;
    }
    return s;
  }

  std::size_t encoded_size(std::uint32_t mask) const {
    return varint_size(mask) +
           (static_cast<std::size_t>(std::popcount(mask)) * delta_bits_ + 7) /
               8;
  }

  std::size_t max_encoded_size() const {
    const std::uint32_t full =
        n_ == 32 ? ~std::uint32_t{0} : (std::uint32_t{1} << n_) - 1;
    return encoded_size(full);
  }

  /// Writes the record for (mask, deltas) at @p out; deltas holds one
  /// signed digit delta per set mask bit, ascending position order, each
  /// in [-(radix-1), radix-1]. Returns bytes written (<= max_encoded_size).
  std::size_t encode(std::uint32_t mask, const std::int32_t* deltas,
                     std::uint8_t* out) const {
    std::uint8_t* p = out;
    std::uint32_t v = mask;
    while (v >= 0x80) {
      *p++ = static_cast<std::uint8_t>(v) | 0x80;
      v >>= 7;
    }
    *p++ = static_cast<std::uint8_t>(v);
    std::uint64_t acc = 0;
    std::uint32_t acc_bits = 0;
    const int count = std::popcount(mask);
    for (int k = 0; k < count; ++k) {
      const auto biased = static_cast<std::uint64_t>(deltas[k] + bias_);
      acc |= biased << acc_bits;
      acc_bits += delta_bits_;
      while (acc_bits >= 8) {
        *p++ = static_cast<std::uint8_t>(acc);
        acc >>= 8;
        acc_bits -= 8;
      }
    }
    if (acc_bits > 0) *p++ = static_cast<std::uint8_t>(acc);
    return static_cast<std::size_t>(p - out);
  }

  /// Decodes a record at @p in into (mask, deltas); deltas must have room
  /// for popcount(mask) entries. Returns bytes consumed.
  std::size_t decode(const std::uint8_t* in, std::uint32_t& mask,
                     std::int32_t* deltas) const {
    const std::uint8_t* p = in;
    std::uint32_t v = 0;
    std::uint32_t shift = 0;
    for (;;) {
      const std::uint8_t byte = *p++;
      v |= static_cast<std::uint32_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    mask = v;
    std::uint64_t acc = 0;
    std::uint32_t acc_bits = 0;
    const std::uint64_t delta_mask = (std::uint64_t{1} << delta_bits_) - 1;
    const int count = std::popcount(mask);
    for (int k = 0; k < count; ++k) {
      while (acc_bits < delta_bits_) {
        acc |= static_cast<std::uint64_t>(*p++) << acc_bits;
        acc_bits += 8;
      }
      deltas[k] = static_cast<std::int32_t>(acc & delta_mask) - bias_;
      acc >>= delta_bits_;
      acc_bits -= delta_bits_;
    }
    return static_cast<std::size_t>(p - in);
  }

 private:
  std::size_t n_ = 0;
  std::int32_t bias_ = 0;
  std::uint32_t delta_bits_ = 0;
};

/// Block shift shared by MoveStore and the peak projection: at most 12
/// (4096 configs/block, so peel chunks aligned to
/// TwoLevelBitset::kBlockBits cover whole blocks), shrunk until a block of
/// maximal records fits the u16 local offsets.
inline std::uint32_t move_store_block_shift(std::size_t max_record) {
  std::uint32_t shift = 12;
  while (shift > 0 && (std::uint64_t{1} << shift) * max_record > 65535) {
    --shift;
  }
  SSR_REQUIRE((std::uint64_t{1} << shift) * max_record <= 65535,
              "move record too large for two-level offsets");
  return shift;
}

/// The two-level offset index shared by every record container: a record
/// is addressed as block_base[c >> shift] + local_off[c]. The index is
/// built in two passes (per-config local offsets + per-block byte totals,
/// then one prefix sum) and is a function of the configuration index
/// alone, never of the thread schedule. MoveStore keeps the byte stream
/// in RAM next to it; SpillMoveStore (spill_store.hpp) keeps only this
/// index resident and streams the bytes from disk.
class MoveLayout {
 public:
  void prepare(std::uint64_t total, const MoveRecordCodec& codec) {
    total_ = total;
    block_shift_ = move_store_block_shift(codec.max_encoded_size());
    local_off_.assign(total, 0);
    block_base_.assign(block_count() + 1, 0);
  }

  std::uint64_t total() const { return total_; }
  std::uint32_t block_shift() const { return block_shift_; }
  std::uint64_t block_count() const {
    return total_ == 0 ? 0 : ((total_ - 1) >> block_shift_) + 1;
  }
  std::uint64_t block_begin(std::uint64_t b) const { return b << block_shift_; }
  std::uint64_t block_end(std::uint64_t b) const {
    return std::min(total_, (b + 1) << block_shift_);
  }

  /// Pass 1 writers: per-config local offset and per-block byte size.
  /// Each block must be written by exactly one worker.
  void set_local_offset(std::uint64_t c, std::uint16_t off) {
    local_off_[c] = off;
  }
  void set_block_bytes(std::uint64_t b, std::uint64_t bytes) {
    block_base_[b + 1] = bytes;
  }

  /// After pass 1: prefix-sums the block sizes into stream offsets.
  void finalize() {
    for (std::uint64_t b = 0; b < block_count(); ++b) {
      block_base_[b + 1] += block_base_[b];
    }
  }

  std::uint16_t local_offset(std::uint64_t c) const { return local_off_[c]; }
  std::uint64_t block_base(std::uint64_t b) const { return block_base_[b]; }
  std::uint64_t block_bytes(std::uint64_t b) const {
    return block_base_[b + 1] - block_base_[b];
  }
  std::uint64_t offset_of(std::uint64_t c) const {
    return block_base_[c >> block_shift_] + local_off_[c];
  }
  /// Total stream bytes (valid after finalize()).
  std::uint64_t total_bytes() const {
    return block_base_.empty() ? 0 : block_base_.back();
  }

  std::uint64_t offset_bytes() const {
    return local_off_.capacity() * sizeof(std::uint16_t) +
           block_base_.capacity() * sizeof(std::uint64_t);
  }

  void release() {
    local_off_ = {};
    block_base_ = {};
  }

 private:
  std::uint64_t total_ = 0;
  std::uint32_t block_shift_ = 12;
  std::vector<std::uint16_t> local_off_;
  std::vector<std::uint64_t> block_base_;
};

/// Random-access container of per-source move records. Layout is fixed by
/// configuration index alone (never by thread schedule): records live in
/// one in-RAM byte stream, addressed through a MoveLayout.
class MoveStore {
 public:
  MoveStore() = default;

  void prepare(std::uint64_t total, const MoveRecordCodec& codec) {
    layout_.prepare(total, codec);
  }

  MoveLayout& layout() { return layout_; }
  const MoveLayout& layout() const { return layout_; }

  std::uint32_t block_shift() const { return layout_.block_shift(); }
  std::uint64_t block_count() const { return layout_.block_count(); }
  std::uint64_t block_begin(std::uint64_t b) const {
    return layout_.block_begin(b);
  }
  std::uint64_t block_end(std::uint64_t b) const {
    return layout_.block_end(b);
  }

  void set_local_offset(std::uint64_t c, std::uint16_t off) {
    layout_.set_local_offset(c, off);
  }
  void set_block_bytes(std::uint64_t b, std::uint64_t bytes) {
    layout_.set_block_bytes(b, bytes);
  }

  /// After pass 1: prefix-sums the block sizes and allocates the stream.
  void finalize_layout() {
    layout_.finalize();
    stream_.assign(layout_.total_bytes(), 0);
  }

  std::uint8_t* slot(std::uint64_t c) {
    return stream_.data() + layout_.offset_of(c);
  }
  const std::uint8_t* record_at(std::uint64_t c) const {
    return stream_.data() + layout_.offset_of(c);
  }

  std::uint64_t stream_bytes() const { return stream_.size(); }
  std::uint64_t offset_bytes() const { return layout_.offset_bytes(); }

  void release() {
    stream_ = {};
    layout_.release();
  }

 private:
  MoveLayout layout_;
  std::vector<std::uint8_t> stream_;
};

// --- packed heights --------------------------------------------------------

/// Per-configuration height (exact worst-case steps to Lambda), packed as
/// dense u16 plus a sparse ordered side table for values >= 65535. The
/// report-facing replacement for the seed's 4-byte-per-config vector.
class HeightTable {
 public:
  static constexpr std::uint16_t kEscapeTag = 0xFFFF;

  HeightTable() = default;

  /// Packs a legacy u32 table (values >= kEscapeTag go to the side table).
  static HeightTable pack(const std::vector<std::uint32_t>& heights) {
    HeightTable t;
    t.dense_.resize(heights.size());
    for (std::uint64_t c = 0; c < heights.size(); ++c) {
      if (heights[c] >= kEscapeTag) {
        t.dense_[c] = kEscapeTag;
        t.escape_[c] = heights[c];
      } else {
        t.dense_[c] = static_cast<std::uint16_t>(heights[c]);
      }
    }
    return t;
  }

  /// Adopts a dense u16 table that is already escape-free (the packed
  /// Phase B peel guarantees heights < kEscapeTag).
  static HeightTable adopt(std::vector<std::uint16_t> dense) {
    HeightTable t;
    t.dense_ = std::move(dense);
    return t;
  }

  void assign(std::uint64_t size, std::uint32_t value) {
    escape_.clear();
    if (value >= kEscapeTag) {
      dense_.assign(size, kEscapeTag);
      for (std::uint64_t c = 0; c < size; ++c) escape_[c] = value;
    } else {
      dense_.assign(size, static_cast<std::uint16_t>(value));
    }
  }

  void set(std::uint64_t i, std::uint32_t v) {
    if (v >= kEscapeTag) {
      dense_[i] = kEscapeTag;
      escape_[i] = v;
    } else {
      dense_[i] = static_cast<std::uint16_t>(v);
      escape_.erase(i);
    }
  }

  std::uint32_t operator[](std::uint64_t i) const {
    const std::uint16_t v = dense_[i];
    return v != kEscapeTag ? v : escape_.at(i);
  }

  std::uint64_t size() const { return dense_.size(); }
  bool empty() const { return dense_.empty(); }
  std::uint64_t escape_entries() const { return escape_.size(); }

  std::uint64_t bytes() const {
    // Ordered-map nodes cost ~3 pointers + color + key + value each.
    return dense_.capacity() * sizeof(std::uint16_t) +
           escape_.size() * (sizeof(void*) * 4 + sizeof(std::uint64_t) +
                             sizeof(std::uint32_t));
  }

  friend bool operator==(const HeightTable& a, const HeightTable& b) {
    return a.dense_ == b.dense_ && a.escape_ == b.escape_;
  }

 private:
  std::vector<std::uint16_t> dense_;
  std::map<std::uint64_t, std::uint32_t> escape_;
};

// --- storage modes, projections, telemetry ---------------------------------

/// Phase B storage backend. kAuto picks the cheapest mode whose projected
/// *resident* peak fits the memory budget (compressed first, then
/// CSR-free, then the disk-spilled stream) and throws a projected-memory
/// error if none fits.
enum class PhaseBStorage { kAuto, kLegacyCsr, kCompressed, kCsrFree, kSpill };

inline const char* to_string(PhaseBStorage m) {
  switch (m) {
    case PhaseBStorage::kAuto: return "auto";
    case PhaseBStorage::kLegacyCsr: return "legacy-csr";
    case PhaseBStorage::kCompressed: return "compressed";
    case PhaseBStorage::kCsrFree: return "csr-free";
    case PhaseBStorage::kSpill: return "spill";
  }
  return "?";
}

/// Per-run memory/edge telemetry (`ssring check --stats`,
/// `bench_modelcheck`). Byte counts are analytic high-water marks of the
/// named structures, not RSS; projected_peak_bytes is the upper-bound
/// estimate mode selection used, so measured_peak_bytes <= projected
/// always holds for the mode actually run.
struct CheckStats {
  PhaseBStorage mode = PhaseBStorage::kAuto;  ///< mode actually run
  bool phase_a_sliced = false;       ///< Phase A ran bit-sliced
  std::string phase_a_backend;       ///< lane backend ("u64"/"avx2"/"avx512")
  std::uint32_t phase_a_lanes = 0;   ///< configurations per kernel pass
  std::uint64_t memory_budget_bytes = 0;
  std::uint64_t projected_peak_bytes = 0;
  std::uint64_t measured_peak_bytes = 0;
  std::uint64_t edge_count = 0;    ///< daemon step edges: sum of 2^m - 1
  double bytes_per_edge = 0.0;     ///< edge-storage bytes / edge_count
  std::uint32_t rounds = 0;        ///< reverse-induction rounds (max height)
  std::uint64_t lambda_bytes = 0;  ///< Lambda membership bitset
  std::uint64_t counts_bytes = 0;  ///< pending/rcount (legacy) or watch (new)
  std::uint64_t offsets_bytes = 0; ///< CSR offsets / two-level record offsets
  std::uint64_t edges_bytes = 0;   ///< predecessor CSR / record stream
  std::uint64_t heights_bytes = 0; ///< height table
  std::uint64_t frontier_bytes = 0;///< frontier vectors / active bitset
  std::uint64_t escape_entries = 0;///< sparse side-table entries taken
  // Disk-tier telemetry (kSpill only; zero elsewhere). spill_bytes is the
  // on-disk record stream; blocks_read counts record blocks streamed back
  // in across all peel rounds; read_amplification is the total bytes
  // streamed divided by spill_bytes (>= 1 for one full pass; roughly the
  // round count for a converging peel, shrinking as rounds finalize).
  std::uint64_t spill_bytes = 0;
  std::uint64_t blocks_read = 0;
  double read_amplification = 0.0;
  std::string spill_path;          ///< spill file location (kSpill only)
  std::string summary() const;
};

/// Bytes of a TwoLevelBitset over @p total indices.
inline std::uint64_t projected_bitset_bytes(std::uint64_t total) {
  const std::uint64_t words = (total + 63) / 64;
  return (words + (words + 63) / 64) * 8;
}

/// Upper bound on the compressed mode's Phase B peak: Lambda + active
/// bitsets, two-level offsets, a maximal record per configuration, and
/// the u16 watch and height tables.
inline std::uint64_t projected_compressed_bytes(std::uint64_t total,
                                                std::size_t n,
                                                std::uint64_t radix) {
  const MoveRecordCodec codec(n, radix);
  const std::uint32_t shift = move_store_block_shift(codec.max_encoded_size());
  const std::uint64_t blocks = total == 0 ? 0 : ((total - 1) >> shift) + 1;
  return 2 * projected_bitset_bytes(total) +            // Lambda + active
         2 * total + 8 * (blocks + 1) +                 // record offsets
         total * codec.max_encoded_size() +             // record stream
         4 * total +                                    // u32 watch table
         2 * total;                                     // heights
}

/// Upper bound on the CSR-free mode's Phase B peak: no edge storage at
/// all, just the bitsets, the u32 watch table and the u16 heights.
inline std::uint64_t projected_csrfree_bytes(std::uint64_t total) {
  return 2 * projected_bitset_bytes(total) + 4 * total + 2 * total;
}

/// Resident upper bound for the spill mode. The record stream lives on
/// disk and the peel is watch-free (no u32 watch table — dropping it is
/// exactly what puts this bound under csr-free's), so RAM holds only the
/// two bitsets, the two-level offset index and the u16 heights.
inline std::uint64_t projected_spill_resident_bytes(std::uint64_t total,
                                                    std::size_t n,
                                                    std::uint64_t radix) {
  const MoveRecordCodec codec(n, radix);
  const std::uint32_t shift = move_store_block_shift(codec.max_encoded_size());
  const std::uint64_t blocks = total == 0 ? 0 : ((total - 1) >> shift) + 1;
  return 2 * projected_bitset_bytes(total) +  // Lambda + active
         2 * total + 8 * (blocks + 1) +       // record offsets
         2 * total;                           // heights
}

/// Upper bound on the spilled byte stream (every record maximal) — disk
/// footprint, not RAM; reported alongside the resident projection so
/// errors and --stats can tell the two tiers apart.
inline std::uint64_t projected_spill_file_bytes(std::uint64_t total,
                                                std::size_t n,
                                                std::uint64_t radix) {
  return total * MoveRecordCodec(n, radix).max_encoded_size();
}

/// The legacy CSR's peak for a measured edge count (reported for
/// comparison; edges are unknown before a run, so auto never projects
/// this mode).
inline std::uint64_t projected_legacy_bytes(std::uint64_t total,
                                            std::uint64_t edges) {
  return projected_bitset_bytes(total) +  // Lambda
         4 * total +                      // pending
         4 * total +                      // rcount
         8 * (total + 1) +                // roffsets
         4 * edges +                      // redges
         4 * total +                      // heights (u32)
         8 * total;                       // frontier vectors, worst case
}

/// Container memory limit from the cgroup filesystem, or 0 when
/// unlimited/unavailable. Reads <root>/memory.max (cgroup v2), then
/// <root>/memory/memory.limit_in_bytes (v1), where <root> is
/// /sys/fs/cgroup unless overridden by SSRING_CGROUP_ROOT (the unit tests
/// point that at a fake hierarchy). v2 spells "no limit" as the literal
/// "max"; v1 as a near-2^63 page-rounded sentinel — both map to 0 here.
inline std::uint64_t cgroup_memory_limit_bytes() {
  const char* env = std::getenv("SSRING_CGROUP_ROOT");
  const std::string root =
      (env != nullptr && *env != '\0') ? env : "/sys/fs/cgroup";
  for (const char* rel : {"/memory.max", "/memory/memory.limit_in_bytes"}) {
    std::ifstream in(root + rel);
    if (!in.is_open()) continue;
    std::string tok;
    in >> tok;
    if (tok.empty() || tok == "max") continue;
    const unsigned long long v = std::strtoull(tok.c_str(), nullptr, 10);
    if (v == 0 || v >= (std::uint64_t{1} << 60)) continue;
    return v;
  }
  return 0;
}

/// Default Phase B memory budget: SSRING_CHECK_MEMORY_BUDGET (bytes) if
/// set, else 3/4 of min(physical RAM, cgroup memory limit), else 8 GiB.
/// The cgroup min matters in containers: _SC_PHYS_PAGES reports *host*
/// RAM there, and a budget above the container's limit meets the OOM
/// killer before it meets the projection error.
inline std::uint64_t default_memory_budget() {
  if (const char* env = std::getenv("SSRING_CHECK_MEMORY_BUDGET")) {
    const unsigned long long v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  std::uint64_t limit = 0;
#if defined(_SC_PHYS_PAGES) && defined(_SC_PAGE_SIZE)
  const long pages = sysconf(_SC_PHYS_PAGES);
  const long page = sysconf(_SC_PAGE_SIZE);
  if (pages > 0 && page > 0) {
    limit = static_cast<std::uint64_t>(pages) * static_cast<std::uint64_t>(page);
  }
#endif
  const std::uint64_t cgroup = cgroup_memory_limit_bytes();
  if (cgroup != 0) limit = limit == 0 ? cgroup : std::min(limit, cgroup);
  if (limit != 0) return limit / 4 * 3;
  return std::uint64_t{8} << 30;
}

/// Resolves the storage mode. For kAuto, picks compressed if its
/// projected peak fits @p budget, else CSR-free, else spill (whose
/// *resident* projection is compared against the budget — the record
/// stream goes to disk), else throws the projected-memory error (the
/// successor of the seed's hard 2^33 cap). An explicitly requested mode
/// is also checked against the budget so the error can name the mode
/// that *would* fit. Returns the resolved mode and stores the projection
/// used in @p projected_out; when the resolved mode is kSpill,
/// @p spill_file_out (if given) receives the projected on-disk bytes.
inline PhaseBStorage select_phaseb_storage(
    PhaseBStorage requested, std::uint64_t total, std::size_t n,
    std::uint64_t radix, std::uint64_t budget, std::uint64_t* projected_out,
    std::uint64_t* spill_file_out = nullptr) {
  const std::uint64_t proj_comp = projected_compressed_bytes(total, n, radix);
  const std::uint64_t proj_free = projected_csrfree_bytes(total);
  const std::uint64_t proj_spill =
      projected_spill_resident_bytes(total, n, radix);
  const std::uint64_t proj_file = projected_spill_file_bytes(total, n, radix);
  if (spill_file_out != nullptr) *spill_file_out = 0;
  auto err = [&](const std::string& head) {
    std::string fits;
    if (proj_comp <= budget) fits = "compressed mode would fit";
    else if (proj_free <= budget) fits = "csr-free mode would fit";
    else if (proj_spill <= budget) fits = "spill mode would fit";
    else fits = "no storage mode fits (even spill keeps its offset index "
                "resident); reduce n or K, raise the memory budget, or "
                "disable the convergence check";
    SSR_REQUIRE(false, head + " (projected compressed=" +
                           std::to_string(proj_comp) +
                           " bytes, csr-free=" + std::to_string(proj_free) +
                           " bytes, spill resident=" +
                           std::to_string(proj_spill) + " bytes + " +
                           std::to_string(proj_file) +
                           " bytes on disk, budget=" + std::to_string(budget) +
                           " bytes; " + fits + ")");
  };
  auto pick_spill = [&]() {
    *projected_out = proj_spill;
    if (spill_file_out != nullptr) *spill_file_out = proj_file;
    return PhaseBStorage::kSpill;
  };
  switch (requested) {
    case PhaseBStorage::kAuto:
      if (proj_comp <= budget) {
        *projected_out = proj_comp;
        return PhaseBStorage::kCompressed;
      }
      if (proj_free <= budget) {
        *projected_out = proj_free;
        return PhaseBStorage::kCsrFree;
      }
      if (proj_spill <= budget) return pick_spill();
      err("configuration space exceeds the Phase B memory budget");
      break;
    case PhaseBStorage::kCompressed:
      if (proj_comp > budget) {
        err("compressed Phase B storage exceeds the memory budget");
      }
      *projected_out = proj_comp;
      return PhaseBStorage::kCompressed;
    case PhaseBStorage::kCsrFree:
      if (proj_free > budget) {
        err("csr-free Phase B storage exceeds the memory budget");
      }
      *projected_out = proj_free;
      return PhaseBStorage::kCsrFree;
    case PhaseBStorage::kSpill:
      if (proj_spill > budget) {
        err("spill Phase B storage's resident index exceeds the memory "
            "budget");
      }
      return pick_spill();
    case PhaseBStorage::kLegacyCsr:
      // Edge count is unknown before the run; the legacy baseline is
      // always honored as requested and its peak reported after the fact.
      *projected_out = 0;
      return PhaseBStorage::kLegacyCsr;
  }
  return requested;  // unreachable
}

}  // namespace ssr::verify
