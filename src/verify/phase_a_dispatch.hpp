// Runtime lane-backend dispatch for the bit-sliced Phase A: the checker
// factories call make_*_phase_a_slice with util::detect_lane_backend(),
// which picks the widest backend compiled in AND supported by this CPU
// (overridable via SSRING_LANE_BACKEND). The u64 slice is always
// available, so a generic binary runs everywhere and only *accelerates*
// on AVX2/AVX-512 hosts.
#pragma once

#include <cstdint>
#include <memory>

#include "util/lane_backend.hpp"
#include "verify/phase_a_sliced.hpp"

namespace ssr::verify {

/// Sliced Phase A engine for SSRmin over all (4K)^n configurations.
std::unique_ptr<PhaseASlice> make_ssrmin_phase_a_slice(
    std::size_t n, std::uint32_t K, util::LaneBackend backend);

/// Sliced Phase A engine for Dijkstra's K-state ring over K^n configs.
std::unique_ptr<PhaseASlice> make_kstate_phase_a_slice(
    std::size_t n, std::uint32_t K, util::LaneBackend backend);

namespace detail {

// Implemented in the per-ISA translation units (the only verify code
// compiled with -mavx2 / -mavx512f); only called after a cpuid check.
std::unique_ptr<PhaseASlice> make_ssrmin_phase_a_slice_avx2(std::size_t n,
                                                            std::uint32_t K);
std::unique_ptr<PhaseASlice> make_kstate_phase_a_slice_avx2(std::size_t n,
                                                            std::uint32_t K);
std::unique_ptr<PhaseASlice> make_ssrmin_phase_a_slice_avx512(std::size_t n,
                                                              std::uint32_t K);
std::unique_ptr<PhaseASlice> make_kstate_phase_a_slice_avx512(std::size_t n,
                                                              std::uint32_t K);

}  // namespace detail

}  // namespace ssr::verify
