// Deterministic parallel Monte Carlo trial harness.
//
// Every empirical table in this repo is a fold over independent trials
// (or independent parameter cells). TrialSweep fans those units over a
// util::ThreadPool with the same determinism recipe the parallel model
// checker uses, strengthened for floating-point folds:
//
//  * every unit gets its own RNG stream derived *only* from (seed, unit
//    index) via the splitmix64 stream (trial_rng below) — never from a
//    shared generator whose state would depend on execution order;
//  * results land in a slot vector indexed by unit, so the fold that
//    builds the table consumes them in unit order no matter which worker
//    computed them or in what interleaving;
//  * chunks are claimed dynamically, so stragglers (one slow trial) don't
//    serialize the sweep.
//
// Consequence: the table/JSON a ported bench emits is bit-identical at
// any worker count (pinned at 1/2/8 by tests/test_sim_sweep.cpp), which
// is what lets BENCH_*.json trajectories compare wall time across PRs
// without the statistics drifting.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ssr::sim {

/// Independent per-trial RNG stream for trial `trial` of a sweep seeded
/// with `seed`: the Rng is seeded from the (trial+1)-th output of the
/// splitmix64 stream that starts at `seed`. splitmix64 advances its state
/// by a constant add, so the stream supports O(1) jumps — trial t's seed
/// costs one multiply, not t generator steps — and distinct trials get
/// decorrelated full-period xoshiro streams regardless of how trials are
/// scheduled across workers.
Rng trial_rng(std::uint64_t seed, std::uint64_t trial);

struct SweepOptions {
  /// Total workers including the caller; 0 = one per hardware thread.
  std::size_t threads = 0;
  /// Units claimed per grab. 1 (default) maximizes balance, which is right
  /// for the typical "tens of trials, each milliseconds to seconds" shape.
  std::uint64_t chunk = 1;
};

/// Reusable fan-out of independent work units over a persistent pool.
/// One TrialSweep can serve many map()/run_trials() calls (e.g. one per
/// table row); workers are created once.
class TrialSweep {
 public:
  explicit TrialSweep(SweepOptions options = {})
      : pool_(options.threads), chunk_(options.chunk) {
    SSR_REQUIRE(chunk_ > 0, "sweep chunk size must be positive");
  }

  /// Total workers, caller included.
  std::size_t threads() const { return pool_.size(); }

  /// Evaluates fn(index) for index in [0, count) across the pool and
  /// returns the results in index order (deterministic at any worker
  /// count). R must be default-constructible and movable. An exception
  /// from any unit rethrows on the caller.
  template <typename Fn>
  auto map(std::uint64_t count, Fn&& fn)
      -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::uint64_t>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, std::uint64_t>>;
    std::vector<R> results(count);
    pool_.for_chunks(0, count, chunk_,
                     [&](std::size_t, std::uint64_t lo, std::uint64_t hi) {
                       for (std::uint64_t t = lo; t < hi; ++t) {
                         results[t] = fn(t);
                       }
                     });
    return results;
  }

  /// Monte Carlo flavor of map(): evaluates fn(trial, rng) with each
  /// trial's private trial_rng(seed, trial) stream. Same determinism
  /// contract as map().
  template <typename Fn>
  auto run_trials(std::uint64_t seed, std::uint64_t trials, Fn&& fn) {
    return map(trials, [&](std::uint64_t t) {
      Rng rng = trial_rng(seed, t);
      return fn(t, rng);
    });
  }

 private:
  util::ThreadPool pool_;
  std::uint64_t chunk_;
};

}  // namespace ssr::sim
