#include "sim/batch_engine.hpp"

#include <algorithm>

namespace ssr::sim {

bool batch_daemon_supported(const std::string& name) {
  return name == "central-round-robin" || name == "central-random" ||
         name == "distributed-synchronous" ||
         name == "distributed-random-subset" || name == "adversary-max-index";
}

LaneDaemonSpec lane_daemon_spec(const std::string& name) {
  SSR_REQUIRE(batch_daemon_supported(name),
              "no lane replay for daemon: " + name);
  LaneDaemonSpec spec;
  if (name == "central-round-robin") {
    spec.kind = LaneDaemonKind::kCentralRoundRobin;
  } else if (name == "central-random") {
    spec.kind = LaneDaemonKind::kCentralRandom;
  } else if (name == "distributed-synchronous") {
    spec.kind = LaneDaemonKind::kSynchronous;
  } else if (name == "distributed-random-subset") {
    // make_daemon's RandomSubsetDaemon probability.
    spec.kind = LaneDaemonKind::kRandomSubset;
    spec.subset_p = 0.5;
  } else {
    spec.kind = LaneDaemonKind::kMaxIndex;
  }
  return spec;
}

LaneDaemonSpec rule_avoiding_spec(std::vector<int> avoid_rules) {
  LaneDaemonSpec spec;
  spec.kind = LaneDaemonKind::kRuleAvoiding;
  spec.avoid_rules = std::move(avoid_rules);
  return spec;
}

std::vector<BlockRange> plan_blocks(std::uint64_t trials, std::size_t workers,
                                    unsigned lanes) {
  std::vector<BlockRange> blocks;
  if (trials == 0) return blocks;
  if (workers == 0) workers = 1;
  if (lanes == 0) lanes = 64;
  // Few enough blocks that each spans more than one lane generation
  // where the trial count allows (so refill amortizes per-block setup),
  // but at least one block per worker once there are ~16 trials to share.
  const std::uint64_t span = 2ULL * lanes;
  const std::uint64_t by_capacity = (trials + span - 1) / span;
  const std::uint64_t by_workers =
      std::min<std::uint64_t>(workers, (trials + 15) / 16);
  std::uint64_t units = std::max(by_capacity, by_workers);
  units = std::min(units, trials);
  blocks.reserve(units);
  for (std::uint64_t u = 0; u < units; ++u) {
    const std::uint64_t lo = trials * u / units;
    const std::uint64_t hi = trials * (u + 1) / units;
    if (hi > lo) blocks.push_back({lo, hi - lo});
  }
  return blocks;
}

}  // namespace ssr::sim
