#include "sim/sweep.hpp"

namespace ssr::sim {

Rng trial_rng(std::uint64_t seed, std::uint64_t trial) {
  // Jump the splitmix64 stream seeded with `seed` directly to position
  // `trial` (the state advance is += golden gamma per output), then take
  // one output as the xoshiro seed. Changing either seed or trial changes
  // the whole child stream; the golden values are pinned by
  // tests/test_sim_sweep.cpp.
  std::uint64_t state = seed + trial * 0x9e3779b97f4a7c15ULL;
  return Rng(splitmix64_next(state));
}

}  // namespace ssr::sim
