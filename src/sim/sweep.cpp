#include "sim/sweep.hpp"

namespace ssr::sim {

Rng trial_rng(std::uint64_t seed, std::uint64_t trial) {
  // The generic derivation now lives in util/rng.hpp (ssr::stream_rng) so
  // the sharded CST simulator can reuse it for per-node streams; the
  // formula is unchanged (splitmix64 jump to `trial`, one output as the
  // xoshiro seed) and the golden values stay pinned by
  // tests/test_sim_sweep.cpp.
  return stream_rng(seed, trial);
}

}  // namespace ssr::sim
