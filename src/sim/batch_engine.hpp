// sim::BatchEngine — step one lane word's worth of Monte-Carlo trials at
// a time (64 for the u64 kernels, 256/512 for the WideWord SIMD backends).
//
// A bit-sliced kernel (core::BasicSlicedSsrMin, dijkstra::BasicSlicedKState)
// holds kLanes independent trials ("lanes") as bit planes; BatchEngine
// drives the daemon side: per-lane scheduler state, per-lane RNG streams,
// an active-lane mask for retiring converged trials, and continuous refill
// from the trial queue.
//
// The load-bearing contract is *bit-identical lanes*: lane l of a batched
// run consumes exactly the trial_rng(seed, t) stream the scalar path does —
// same draw order (random_config first, then one split() for the daemon),
// same per-step daemon draws (see step()) — so every lane's step trace
// equals a scalar stab::Engine run of the same trial, and batched sweep
// tables are byte-identical to scalar ones at any worker count AND any
// lane width (the trial->stream mapping never depends on which lane or
// word the trial lands in). A differential test (tests/test_batch_engine.cpp)
// pins this across protocols x daemons x ring sizes x seeds x lane words.
//
// Parallelism composes, not competes: one BatchEngine block per TrialSweep
// unit, so `--threads` multiplies the per-word SIMD win.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "sim/sweep.hpp"
#include "stabilizing/engine.hpp"
#include "util/assert.hpp"
#include "util/bitplane.hpp"
#include "util/rng.hpp"

namespace ssr::sim {

/// The daemon flavors a lane can replay. Mirrors stab::make_daemon plus the
/// rule-avoiding adversary bench_lemma5 constructs directly.
enum class LaneDaemonKind {
  kCentralRoundRobin,
  kCentralRandom,
  kSynchronous,
  kRandomSubset,
  kRuleAvoiding,
  kMaxIndex,
};

struct LaneDaemonSpec {
  LaneDaemonKind kind = LaneDaemonKind::kCentralRandom;
  double subset_p = 0.5;        ///< kRandomSubset acceptance probability
  std::vector<int> avoid_rules; ///< kRuleAvoiding avoided rule ids
};

/// True iff the named stab::make_daemon daemon has a lane replay (the
/// --batched legality test; adversary-starving has none, and new daemons
/// default to scalar until a replay is added and differentially pinned).
bool batch_daemon_supported(const std::string& name);

/// The lane spec replaying make_daemon(name, rng). REQUIREs supported.
LaneDaemonSpec lane_daemon_spec(const std::string& name);

/// Spec replaying stab::RuleAvoidingDaemon{rng, avoid_rules}.
LaneDaemonSpec rule_avoiding_spec(std::vector<int> avoid_rules);

/// A contiguous range of trial indices, the unit handed to one TrialSweep
/// worker (one BatchEngine per block; > kLanes trials exercise lane refill).
struct BlockRange {
  std::uint64_t first = 0;
  std::uint64_t count = 0;
};

/// Splits `trials` into contiguous blocks: enough to feed `workers`, few
/// enough that blocks exceed one `lanes`-wide generation where possible
/// (so refill actually happens and per-block fixed costs amortize). The
/// split depends only on (trials, workers, lanes); per-trial determinism
/// never depends on the blocking.
std::vector<BlockRange> plan_blocks(std::uint64_t trials, std::size_t workers,
                                    unsigned lanes = 64);

template <typename Kernel>
class BatchEngine {
 public:
  using Config = typename Kernel::Config;
  using Word = typename Kernel::Word;
  using Traits = util::LaneTraits<Word>;
  static constexpr unsigned kLanes = Traits::kLanes;

  BatchEngine(Kernel kernel, LaneDaemonSpec spec)
      : kernel_(std::move(kernel)),
        spec_(std::move(spec)),
        n_(kernel_.size()),
        words_((n_ + 63) / 64),
        sel_(n_, Traits::zero()),
        lane_bits_(kLanes * words_, 0),
        pref_bits_(spec_.kind == LaneDaemonKind::kRuleAvoiding
                       ? kLanes * words_
                       : 0,
                   0),
        pref_plane_(spec_.kind == LaneDaemonKind::kRuleAvoiding ? n_ : 0,
                    Traits::zero()) {}

  std::size_t size() const { return n_; }
  const Kernel& kernel() const { return kernel_; }
  Kernel& kernel() { return kernel_; }

  /// Mask of lanes currently carrying a live trial.
  const Word& active() const { return active_; }

  /// Installs a trial into a lane: the scalar-path equivalent of
  /// constructing the engine from `config` and make_daemon(..., rng).
  /// Resets the lane's step/move/forced counters and scheduler state.
  void load_lane(unsigned lane, const Config& config, Rng daemon_rng) {
    SSR_REQUIRE(lane < kLanes, "lane index out of range");
    kernel_.load_lane(lane, config);
    lanes_[lane] = LaneState{};
    lanes_[lane].rng = daemon_rng;
    Traits::set(active_, lane);
  }

  /// Removes a finished trial from the active mask (its planes become
  /// garbage until the lane is reloaded).
  void retire_lane(unsigned lane) { active_ &= ~Traits::lane_bit(lane); }

  /// Recomputes the kernel planes and the per-lane enabled bitmaps. Must
  /// be called after load_lane/step and before any_enabled/legit/step.
  void refresh() {
    kernel_.compute();
    const auto& en = kernel_.enabled();
    any_enabled_ = kernel_.any_enabled_mask();
    // Synchronous selection is plane-parallel and the per-lane move
    // accounting comes from the kernel counts, so only daemons that pick
    // individual processes need the lane-major bitmaps. Those are only
    // transposed in full when the kernel rebuilt every plane (lane loads);
    // a normal step touches O(moved lanes) plane words, and the kernel's
    // change list lets us XOR-patch just those bits.
    if (spec_.kind != LaneDaemonKind::kSynchronous) {
      if (kernel_.full_rebuild()) {
        transpose_planes(en.data(), lane_bits_.data());
      } else {
        for (const auto& [i, diff] : kernel_.enabled_changes()) {
          const std::size_t w = i >> 6;
          const std::uint64_t bit = 1ULL << (i & 63);
          Traits::for_each_lane(diff, [&](unsigned lane) {
            lane_bits_[static_cast<std::size_t>(lane) * words_ + w] ^= bit;
          });
        }
      }
    }
    if (spec_.kind == LaneDaemonKind::kRuleAvoiding) {
      for (std::size_t i = 0; i < n_; ++i) {
        Word avoided = Traits::zero();
        for (int r : spec_.avoid_rules) avoided |= kernel_.rule(r)[i];
        pref_plane_[i] = en[i] & ~avoided;
      }
      transpose_planes(pref_plane_.data(), pref_bits_.data());
    }
  }

  /// Lanewise "at least one process enabled" (a zero bit means the lane's
  /// trial is deadlocked). Valid after refresh().
  const Word& any_enabled() const { return any_enabled_; }

  /// Lanewise legitimacy masks, forwarded from the kernel.
  auto legit_masks() const { return kernel_.legit_masks(); }

  /// One daemon step for every lane in `mask` (each must be active with at
  /// least one enabled process). Replays the scalar daemon draw-for-draw:
  ///   central-random:  one below(enabled_count), pick the k-th enabled;
  ///   random-subset:   one bernoulli(p) per enabled id ascending, then a
  ///                    below(count) fallback if none accepted;
  ///   rule-avoiding:   below over preferred ids if any, else a forced
  ///                    below over all enabled;
  ///   round-robin / max-index / synchronous: no draws.
  void step(const Word& mask) {
    SSR_REQUIRE(Traits::any(mask), "a batched step must move at least one lane");
    SSR_REQUIRE(!Traits::any(mask & ~active_), "stepping an inactive lane");
    for (std::size_t i : touched_) sel_[i] = Traits::zero();
    touched_.clear();
    if (spec_.kind == LaneDaemonKind::kSynchronous) {
      const auto& en = kernel_.enabled();
      for (std::size_t i = 0; i < n_; ++i) {
        const Word s = en[i] & mask;
        if (Traits::any(s)) {
          sel_[i] = s;
          touched_.push_back(i);
        }
      }
      Traits::for_each_lane(mask, [&](unsigned lane) {
        lanes_[lane].moves += kernel_.enabled_count(lane);
      });
    } else {
      Traits::for_each_lane(mask,
                            [&](unsigned lane) { select_for_lane(lane); });
    }
    kernel_.apply(sel_);
    Traits::for_each_lane(mask, [&](unsigned lane) { ++lanes_[lane].steps; });
  }

  /// Lane mask of lanes whose *last step* executed one of the given rules
  /// (bench_lemma5's gap metric). Valid between step() and the next
  /// refresh(): it reads the pre-step rule planes the step selected from.
  Word last_moved_mask(std::initializer_list<int> rules) const {
    Word acc = Traits::zero();
    for (std::size_t i : touched_) {
      Word plane = Traits::zero();
      for (int r : rules) plane |= kernel_.rule(r)[i];
      acc |= sel_[i] & plane;
    }
    return acc;
  }

  /// Reads one lane back as a scalar configuration.
  Config extract_lane(unsigned lane) const { return kernel_.extract_lane(lane); }

  /// Daemon steps taken by the lane since its load_lane.
  std::uint64_t steps(unsigned lane) const { return lanes_[lane].steps; }
  /// Process moves executed by the lane since its load_lane.
  std::uint64_t moves(unsigned lane) const { return lanes_[lane].moves; }
  /// Rule-avoiding forced steps (every enabled process had an avoided
  /// rule) since the lane's load_lane.
  std::uint64_t forced_steps(unsigned lane) const { return lanes_[lane].forced; }

 private:
  struct LaneState {
    Rng rng{0};
    std::size_t cursor = 0;  // round-robin scan position
    std::uint64_t steps = 0;
    std::uint64_t moves = 0;
    std::uint64_t forced = 0;
  };

  const std::uint64_t* row(unsigned lane) const {
    return &lane_bits_[lane * words_];
  }

  /// Process-major planes -> lane-major bitmaps, one 64x64 transpose per
  /// (word column, limb group). Rows past n_ are zero, so per-lane bitmaps
  /// never carry phantom processes.
  void transpose_planes(const Word* planes, std::uint64_t* out) {
    std::uint64_t tmp[64];
    for (std::size_t w = 0; w < words_; ++w) {
      const std::size_t base = w * 64;
      const std::size_t rows = n_ - base < 64 ? n_ - base : 64;
      for (unsigned g = 0; g < Traits::kLimbs; ++g) {
        for (std::size_t r = 0; r < rows; ++r) {
          tmp[r] = Traits::limb(planes[base + r], g);
        }
        for (std::size_t r = rows; r < 64; ++r) tmp[r] = 0;
        util::transpose64(tmp);
        for (unsigned l = 0; l < 64; ++l) {
          out[(static_cast<std::size_t>(g) * 64 + l) * words_ + w] = tmp[l];
        }
      }
    }
  }

  std::uint64_t row_count(const std::uint64_t* bits) const {
    std::uint64_t count = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      count += static_cast<std::uint64_t>(std::popcount(bits[w]));
    }
    return count;
  }

  /// Index of the k-th set bit (ascending) of a lane bitmap.
  std::size_t select_kth(const std::uint64_t* bits, std::uint64_t k) const {
    for (std::size_t w = 0; w < words_; ++w) {
      const auto count = static_cast<std::uint64_t>(std::popcount(bits[w]));
      if (k < count) {
        std::uint64_t word = bits[w];
        for (; k != 0; --k) word &= word - 1;
        return w * 64 + static_cast<std::size_t>(std::countr_zero(word));
      }
      k -= count;
    }
    SSR_ASSERT(false, "lane bitmap rank out of range");
  }

  /// First set bit at or cyclically after `start` (round-robin scan).
  std::size_t first_from(const std::uint64_t* bits, std::size_t start) const {
    std::size_t w = start / 64;
    const unsigned off = start % 64;
    std::uint64_t word = bits[w] & (~0ULL << off);
    // words_ + 1 slots: the start word is revisited in full after the wrap.
    for (std::size_t slot = 0; slot <= words_; ++slot) {
      if (word != 0) return w * 64 + static_cast<std::size_t>(std::countr_zero(word));
      w = w + 1 == words_ ? 0 : w + 1;
      word = bits[w];
    }
    SSR_ASSERT(false, "round-robin scan found no enabled process");
  }

  std::size_t highest(const std::uint64_t* bits) const {
    for (std::size_t w = words_; w-- > 0;) {
      if (bits[w] != 0) {
        return w * 64 + 63 - static_cast<std::size_t>(std::countl_zero(bits[w]));
      }
    }
    SSR_ASSERT(false, "max-index scan found no enabled process");
  }

  void mark(std::size_t i, const Word& lane_bit) {
    if (!Traits::any(sel_[i])) touched_.push_back(i);
    sel_[i] |= lane_bit;
  }

  void select_for_lane(unsigned lane) {
    const Word lane_bit = Traits::lane_bit(lane);
    const std::uint64_t* enabled = row(lane);
    LaneState& state = lanes_[lane];
    switch (spec_.kind) {
      case LaneDaemonKind::kCentralRoundRobin: {
        const std::size_t id = first_from(enabled, state.cursor);
        state.cursor = id + 1 == n_ ? 0 : id + 1;
        mark(id, lane_bit);
        state.moves += 1;
        break;
      }
      case LaneDaemonKind::kCentralRandom: {
        const std::uint64_t k = state.rng.below(kernel_.enabled_count(lane));
        mark(select_kth(enabled, k), lane_bit);
        state.moves += 1;
        break;
      }
      case LaneDaemonKind::kRandomSubset: {
        std::uint64_t total = 0;
        std::uint64_t accepted = 0;
        for (std::size_t w = 0; w < words_; ++w) {
          std::uint64_t word = enabled[w];
          while (word != 0) {
            const auto b = static_cast<std::size_t>(std::countr_zero(word));
            word &= word - 1;
            ++total;
            if (state.rng.bernoulli(spec_.subset_p)) {
              mark(w * 64 + b, lane_bit);
              ++accepted;
            }
          }
        }
        if (accepted == 0) {
          mark(select_kth(enabled, state.rng.below(total)), lane_bit);
        }
        state.moves += accepted != 0 ? accepted : 1;
        break;
      }
      case LaneDaemonKind::kRuleAvoiding: {
        const std::uint64_t* preferred = &pref_bits_[lane * words_];
        const std::uint64_t preferred_count = row_count(preferred);
        if (preferred_count != 0) {
          mark(select_kth(preferred, state.rng.below(preferred_count)),
               lane_bit);
        } else {
          ++state.forced;
          mark(select_kth(enabled,
                          state.rng.below(kernel_.enabled_count(lane))),
               lane_bit);
        }
        state.moves += 1;
        break;
      }
      case LaneDaemonKind::kMaxIndex:
        mark(highest(enabled), lane_bit);
        state.moves += 1;
        break;
      case LaneDaemonKind::kSynchronous:
        SSR_ASSERT(false, "synchronous selection is plane-parallel");
    }
  }

  Kernel kernel_;
  LaneDaemonSpec spec_;
  std::size_t n_;
  std::size_t words_;
  Word active_ = Traits::zero();
  Word any_enabled_ = Traits::zero();
  std::array<LaneState, kLanes> lanes_{};
  // Per-process lane masks of the current selection; only touched_ entries
  // are nonzero (cleared lazily at the next step to keep O(moved) cost).
  std::vector<Word> sel_;
  std::vector<std::size_t> touched_;
  std::vector<std::uint64_t> lane_bits_;  // lane-major enabled bitmaps
  std::vector<std::uint64_t> pref_bits_;  // lane-major non-avoided bitmaps
  std::vector<Word> pref_plane_;          // process-major scratch
};

/// Outcome of one batched convergence trial (mirrors the scalar bench
/// composition: an optional milestone leg, then the final leg).
struct BatchTrialOutcome {
  stab::RunResult milestone;  ///< first leg (two-phase runs only)
  stab::RunResult result;     ///< final (or only) leg
};

/// Runs one block of convergence trials through a BatchEngine, replaying
/// the scalar recipe per lane: config = random_config(ring, trial_rng(seed,
/// t)), daemon rng = one split() of the same stream, then stab::run_until
/// semantics (predicate before each step, budget `max_steps` per leg,
/// deadlock detection). Two-phase runs measure the dijkstra-part milestone
/// leg first and always run the legitimacy leg after it, each with the
/// full budget — exactly the scalar bench_convergence composition.
/// Finished lanes retire and refill from the block's remaining trials.
template <typename Kernel>
std::vector<BatchTrialOutcome> run_convergence_block(
    const typename Kernel::Ring& ring, const LaneDaemonSpec& spec,
    std::uint64_t seed, BlockRange block, std::uint64_t max_steps,
    bool two_phase) {
  using Traits = typename BatchEngine<Kernel>::Traits;
  using Word = typename Kernel::Word;
  constexpr unsigned kLanes = Traits::kLanes;
  std::vector<BatchTrialOutcome> out(block.count);
  if (block.count == 0) return out;
  BatchEngine<Kernel> engine{Kernel(ring), spec};
  struct Slot {
    std::uint64_t trial = 0;
    int phase = 0;
    std::uint64_t leg_steps = 0;
    std::uint64_t leg_moves0 = 0;
  };
  std::array<Slot, kLanes> slots{};
  std::uint64_t next = 0;
  const auto load_next = [&](unsigned lane) {
    const std::uint64_t trial = block.first + next++;
    Rng rng = trial_rng(seed, trial);
    auto config = random_config(ring, rng);  // ADL: core:: or dijkstra::
    engine.load_lane(lane, config, rng.split());
    slots[lane] = Slot{trial, 0, 0, 0};
  };
  for (unsigned lane = 0; lane < kLanes && next < block.count; ++lane) {
    load_next(lane);
  }
  while (Traits::any(engine.active())) {
    engine.refresh();
    const auto legit = engine.legit_masks();
    const Word runnable = engine.any_enabled();
    Word step_mask = Traits::zero();
    bool refilled = false;
    // Iterate a snapshot: retire_lane/load_lane mutate the live mask.
    const Word active_lanes = engine.active();
    Traits::for_each_lane(active_lanes, [&](unsigned lane) {
      Slot& slot = slots[lane];
      bool finished = false;
      for (;;) {
        const bool milestone_leg = two_phase && slot.phase == 0;
        const bool done = milestone_leg ? Traits::test(legit.milestone, lane)
                                        : Traits::test(legit.legitimate, lane);
        stab::RunResult leg;
        if (done) {
          leg.reached = true;
        } else if (slot.leg_steps == max_steps) {
          // budget exhausted: leg ends unreached, not deadlocked
        } else if (!Traits::test(runnable, lane)) {
          leg.deadlocked = true;
        } else {
          Traits::set(step_mask, lane);
          break;
        }
        leg.steps = slot.leg_steps;
        leg.moves = engine.moves(lane) - slot.leg_moves0;
        if (milestone_leg) {
          out[slot.trial - block.first].milestone = leg;
          slot.phase = 1;
          slot.leg_steps = 0;
          slot.leg_moves0 = engine.moves(lane);
          continue;  // the final leg starts from this same configuration
        }
        out[slot.trial - block.first].result = leg;
        finished = true;
        break;
      }
      if (finished) {
        engine.retire_lane(lane);
        if (next < block.count) {
          load_next(lane);
          refilled = true;
        }
      }
    });
    // Fresh lanes need their planes computed before anyone steps; the
    // discarded step_mask re-derives identically next iteration (leg
    // counters only advance on an actual step).
    if (refilled) continue;
    if (Traits::any(step_mask)) {
      engine.step(step_mask);
      Traits::for_each_lane(step_mask,
                            [&](unsigned lane) { ++slots[lane].leg_steps; });
    }
  }
  return out;
}

}  // namespace ssr::sim
