#include "sim/batch_dispatch.hpp"

#include "core/ssrmin_sliced.hpp"
#include "dijkstra/kstate_sliced.hpp"

namespace ssr::sim {

// Resolve the requested backend to one that is actually runnable: the
// public entry points accept any LaneBackend value so callers can thread a
// user-supplied choice straight through, but execution always degrades to
// an available width rather than faulting on a host without the ISA.
namespace {

util::LaneBackend runnable(util::LaneBackend backend) {
  if (backend == util::LaneBackend::kAvx512 &&
      !util::lane_backend_available(util::LaneBackend::kAvx512)) {
    backend = util::LaneBackend::kAvx2;
  }
  if (backend == util::LaneBackend::kAvx2 &&
      !util::lane_backend_available(util::LaneBackend::kAvx2)) {
    backend = util::LaneBackend::kU64;
  }
  return backend;
}

}  // namespace

std::vector<BatchTrialOutcome> run_convergence_block_ssrmin(
    const core::SsrMinRing& ring, const LaneDaemonSpec& spec,
    std::uint64_t seed, BlockRange block, std::uint64_t max_steps,
    bool two_phase, util::LaneBackend backend) {
  switch (runnable(backend)) {
#if defined(SSRING_LANE_AVX512)
    case util::LaneBackend::kAvx512:
      return detail::run_convergence_block_ssrmin_avx512(
          ring, spec, seed, block, max_steps, two_phase);
#endif
#if defined(SSRING_LANE_AVX2)
    case util::LaneBackend::kAvx2:
      return detail::run_convergence_block_ssrmin_avx2(ring, spec, seed, block,
                                                       max_steps, two_phase);
#endif
    default:
      return run_convergence_block<core::SlicedSsrMin>(ring, spec, seed, block,
                                                       max_steps, two_phase);
  }
}

std::vector<BatchTrialOutcome> run_convergence_block_kstate(
    const dijkstra::KStateRing& ring, const LaneDaemonSpec& spec,
    std::uint64_t seed, BlockRange block, std::uint64_t max_steps,
    bool two_phase, util::LaneBackend backend) {
  switch (runnable(backend)) {
#if defined(SSRING_LANE_AVX512)
    case util::LaneBackend::kAvx512:
      return detail::run_convergence_block_kstate_avx512(
          ring, spec, seed, block, max_steps, two_phase);
#endif
#if defined(SSRING_LANE_AVX2)
    case util::LaneBackend::kAvx2:
      return detail::run_convergence_block_kstate_avx2(ring, spec, seed, block,
                                                       max_steps, two_phase);
#endif
    default:
      return run_convergence_block<dijkstra::SlicedKState>(
          ring, spec, seed, block, max_steps, two_phase);
  }
}

}  // namespace ssr::sim
