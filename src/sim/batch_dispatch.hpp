// Runtime-dispatched entry points for the batched convergence runs.
//
// The templated run_convergence_block<Kernel> compiles for any lane word;
// the 256/512-lane instantiations live in batch_backend_avx2.cpp /
// batch_backend_avx512.cpp, which CMake compiles with -mavx2 / -mavx512f
// when the compiler supports the flags — independent of -march=native, so
// a generic binary still carries the SIMD backends and picks one via
// util::detect_lane_backend() (cpuid + SSRING_LANE_BACKEND override). The
// u64 path is always present: requesting a backend the build or CPU lacks
// silently degrades, never faults.
//
// Lane-width invariance is part of the bit-identical contract: every trial
// consumes the trial_rng(seed, t) stream regardless of which lane or word
// it lands in, so all backends return byte-identical outcome vectors
// (pinned in tests/test_batch_engine.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "core/ssrmin.hpp"
#include "dijkstra/kstate.hpp"
#include "sim/batch_engine.hpp"
#include "util/lane_backend.hpp"

namespace ssr::sim {

/// run_convergence_block over the SSRmin kernel at the requested lane
/// width (falls back to u64 if the backend is unavailable).
std::vector<BatchTrialOutcome> run_convergence_block_ssrmin(
    const core::SsrMinRing& ring, const LaneDaemonSpec& spec,
    std::uint64_t seed, BlockRange block, std::uint64_t max_steps,
    bool two_phase, util::LaneBackend backend);

/// run_convergence_block over the Dijkstra K-state kernel at the requested
/// lane width (falls back to u64 if the backend is unavailable).
std::vector<BatchTrialOutcome> run_convergence_block_kstate(
    const dijkstra::KStateRing& ring, const LaneDaemonSpec& spec,
    std::uint64_t seed, BlockRange block, std::uint64_t max_steps,
    bool two_phase, util::LaneBackend backend);

namespace detail {

// Implemented in the per-ISA translation units (same signature as the
// public entry points minus the backend tag).
std::vector<BatchTrialOutcome> run_convergence_block_ssrmin_avx2(
    const core::SsrMinRing& ring, const LaneDaemonSpec& spec,
    std::uint64_t seed, BlockRange block, std::uint64_t max_steps,
    bool two_phase);
std::vector<BatchTrialOutcome> run_convergence_block_kstate_avx2(
    const dijkstra::KStateRing& ring, const LaneDaemonSpec& spec,
    std::uint64_t seed, BlockRange block, std::uint64_t max_steps,
    bool two_phase);
std::vector<BatchTrialOutcome> run_convergence_block_ssrmin_avx512(
    const core::SsrMinRing& ring, const LaneDaemonSpec& spec,
    std::uint64_t seed, BlockRange block, std::uint64_t max_steps,
    bool two_phase);
std::vector<BatchTrialOutcome> run_convergence_block_kstate_avx512(
    const dijkstra::KStateRing& ring, const LaneDaemonSpec& spec,
    std::uint64_t seed, BlockRange block, std::uint64_t max_steps,
    bool two_phase);

}  // namespace detail

}  // namespace ssr::sim
