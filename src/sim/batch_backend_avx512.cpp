// 512-lane instantiations of the batched convergence runs. This TU is the
// only sim code compiled with -mavx512f (see CMakeLists.txt): the
// WideWord<8> limb loops are plain C++, the flag just lets the vectorizer
// emit 512-bit ops. Callers reach it through sim/batch_dispatch.cpp after
// a cpuid check.
#include "sim/batch_dispatch.hpp"

#include "core/ssrmin_sliced.hpp"
#include "dijkstra/kstate_sliced.hpp"

namespace ssr::sim::detail {

std::vector<BatchTrialOutcome> run_convergence_block_ssrmin_avx512(
    const core::SsrMinRing& ring, const LaneDaemonSpec& spec,
    std::uint64_t seed, BlockRange block, std::uint64_t max_steps,
    bool two_phase) {
  return run_convergence_block<core::BasicSlicedSsrMin<util::Lane512>>(
      ring, spec, seed, block, max_steps, two_phase);
}

std::vector<BatchTrialOutcome> run_convergence_block_kstate_avx512(
    const dijkstra::KStateRing& ring, const LaneDaemonSpec& spec,
    std::uint64_t seed, BlockRange block, std::uint64_t max_steps,
    bool two_phase) {
  return run_convergence_block<dijkstra::BasicSlicedKState<util::Lane512>>(
      ring, spec, seed, block, max_steps, two_phase);
}

}  // namespace ssr::sim::detail
