// Multi-instance SSRmin — the (l, k)-critical-section family (paper §1.2,
// Kakugawa 2015). Running k independent SSRmin instances on the same ring
// yields, after stabilization, at least k and at most 2k privileged
// process slots at any time (instances may overlap at a node). Each
// instance keeps its own graceful-handover guarantee, so the composition
// provides *redundant* continuous coverage: at any instant at least k
// token-holding roles exist — the "at least two cameras recording"
// requirement a safety-critical deployment would add.
//
// Composition semantics: the node state is the vector of its per-instance
// states; a node is enabled iff any instance enables it, and a move fires
// every enabled instance's rule simultaneously (one atomic step of the
// physical node serving all protocol stacks — same convention as
// dijkstra::DualKStateRing).
#pragma once

#include <cstdint>
#include <vector>

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "stabilizing/protocol.hpp"
#include "util/rng.hpp"

namespace ssr::incl {

/// Per-node state: one SsrState per instance.
struct MultiState {
  std::vector<core::SsrState> slots;
  friend bool operator==(const MultiState&, const MultiState&) = default;
};

class MultiSsrMin {
 public:
  using State = MultiState;

  /// The single composite rule id ("fire every enabled instance").
  static constexpr int kRuleComposite = 1;

  MultiSsrMin(std::size_t n, std::uint32_t K, std::size_t instances);

  std::size_t size() const { return ring_.size(); }
  std::uint32_t modulus() const { return ring_.modulus(); }
  std::size_t instances() const { return instances_; }
  const core::SsrMinRing& base() const { return ring_; }

  int enabled_rule(std::size_t i, const State& self, const State& pred,
                   const State& succ) const;
  State apply(std::size_t i, int rule, const State& self, const State& pred,
              const State& succ) const;

  /// Number of instances whose token (primary or secondary) node i holds.
  std::size_t tokens_at(std::size_t i, const State& self, const State& pred,
                        const State& succ) const;

 private:
  void check_state(const State& s) const;

  core::SsrMinRing ring_;
  std::size_t instances_;
};

using MultiConfig = std::vector<MultiState>;

/// Total privileged slots (summed over instances; a node holding tokens of
/// two instances counts twice).
std::size_t privileged_slots(const MultiSsrMin& ring, const MultiConfig& c);

/// Number of nodes holding at least one instance's token.
std::size_t privileged_nodes(const MultiSsrMin& ring, const MultiConfig& c);

/// Legitimate iff every instance's projection is legitimate (Def. 1).
bool is_legitimate(const MultiSsrMin& ring, const MultiConfig& c);

/// Canonical start: instance j begins in its canonical legitimate
/// configuration rotated j * n / instances positions around the ring, so
/// the tokens start evenly spaced.
MultiConfig staggered_legitimate(const MultiSsrMin& ring);

MultiConfig random_config(const MultiSsrMin& ring, Rng& rng);

}  // namespace ssr::incl
