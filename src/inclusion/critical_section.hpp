// The (l, k)-critical section problem (paper §1.2, after Kakugawa 2015):
// at least l and at most k of the n processes are in the critical section
// at any time. Mutual exclusion is (0, 1); mutual inclusion is (1, n);
// SSRmin solves (1, 2).
//
// SpecMonitor audits an execution — event-sampled or time-weighted —
// against a spec, counting and timing violations in both directions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ssr::incl {

struct CriticalSectionSpec {
  std::size_t min_in_cs = 0;  ///< l
  std::size_t max_in_cs = 0;  ///< k

  bool satisfied_by(std::size_t in_cs) const {
    return in_cs >= min_in_cs && in_cs <= max_in_cs;
  }
  std::string to_string() const;
};

/// (0, 1): classical mutual exclusion.
CriticalSectionSpec mutual_exclusion_spec();
/// (1, n): mutual inclusion.
CriticalSectionSpec mutual_inclusion_spec(std::size_t n);
/// (1, 2): what SSRmin guarantees (Theorem 1).
CriticalSectionSpec ssrmin_spec();

/// Accumulates spec compliance over an observed execution.
class SpecMonitor {
 public:
  explicit SpecMonitor(CriticalSectionSpec spec) : spec_(spec) {}

  const CriticalSectionSpec& spec() const { return spec_; }

  /// Point observation (e.g. one sampler snapshot).
  void observe(std::size_t in_cs);

  /// Time-weighted observation: the system had @p in_cs processes in the
  /// critical section for a duration of @p dt.
  void observe_interval(double dt, std::size_t in_cs);

  std::uint64_t observations() const { return observations_; }
  std::uint64_t violations_below() const { return below_; }
  std::uint64_t violations_above() const { return above_; }
  bool clean() const { return below_ == 0 && above_ == 0; }

  double observed_time() const { return total_time_; }
  double violation_time() const { return violation_time_; }
  /// Fraction of observed time in compliance (1.0 when nothing observed).
  double compliance() const;

 private:
  CriticalSectionSpec spec_;
  std::uint64_t observations_ = 0;
  std::uint64_t below_ = 0;
  std::uint64_t above_ = 0;
  double total_time_ = 0.0;
  double violation_time_ = 0.0;
};

}  // namespace ssr::incl
