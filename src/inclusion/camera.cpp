#include "inclusion/camera.hpp"

#include <algorithm>

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "dijkstra/dual.hpp"
#include "dijkstra/kstate.hpp"
#include "msgpass/factories.hpp"
#include "util/assert.hpp"

namespace ssr::incl {

std::string to_string(CameraPolicy policy) {
  switch (policy) {
    case CameraPolicy::kSsrMin:
      return "ssrmin";
    case CameraPolicy::kDijkstra:
      return "dijkstra";
    case CameraPolicy::kDualDijkstra:
      return "dual-dijkstra";
    case CameraPolicy::kAllActive:
      return "all-active";
  }
  SSR_ASSERT(false, "unknown camera policy");
}

void CameraParams::validate() const {
  SSR_REQUIRE(node_count >= 3, "camera ring needs at least three nodes");
  SSR_REQUIRE(duration > 0.0, "duration must be positive");
  SSR_REQUIRE(drain_rate >= 0.0 && idle_drain_rate >= 0.0 &&
                  harvest_rate >= 0.0,
              "rates must be non-negative");
  SSR_REQUIRE(battery_capacity > 0.0, "battery capacity must be positive");
  SSR_REQUIRE(initial_battery >= 0.0 &&
                  initial_battery <= battery_capacity,
              "initial battery must be within capacity");
  net.validate();
}

double jain_fairness(const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

namespace {

/// Integrates the battery/duty model over the activity intervals reported
/// by the simulation observer.
class EnergyModel {
 public:
  EnergyModel(const CameraParams& params)
      : params_(params),
        active_time_(params.node_count, 0.0),
        battery_(params.node_count, params.initial_battery),
        depleted_(params.node_count, false) {}

  void account(double dt, const std::vector<bool>& active) {
    for (std::size_t i = 0; i < active_time_.size(); ++i) {
      const bool on = i < active.size() && active[i];
      if (on) active_time_[i] += dt;
      const double drain =
          (on ? params_.drain_rate : params_.idle_drain_rate) * dt;
      energy_consumed_ += drain;
      battery_[i] += params_.harvest_rate * dt - drain;
      battery_[i] = std::clamp(battery_[i], 0.0, params_.battery_capacity);
      if (battery_[i] <= 0.0) {
        if (!depleted_[i]) {
          ++depletions_;
          depleted_[i] = true;
        }
      } else {
        depleted_[i] = false;
      }
    }
  }

  void fill_report(CameraReport& report) const {
    report.active_time = active_time_;
    report.final_battery = battery_;
    report.min_battery =
        battery_.empty() ? 0.0
                         : *std::min_element(battery_.begin(), battery_.end());
    report.depletions = depletions_;
    report.energy_consumed = energy_consumed_;
    double total_active = 0.0;
    for (double t : active_time_) total_active += t;
    report.mean_active =
        report.duration > 0.0 ? total_active / report.duration : 0.0;
    report.duty_fairness = jain_fairness(active_time_);
  }

 private:
  const CameraParams& params_;
  std::vector<double> active_time_;
  std::vector<double> battery_;
  std::vector<bool> depleted_;
  double energy_consumed_ = 0.0;
  std::size_t depletions_ = 0;
};

template <typename Simulation>
CameraReport run_simulated(Simulation& sim, const CameraParams& params) {
  EnergyModel energy(params);
  sim.set_observer([&energy](msgpass::Time from, msgpass::Time to,
                             const std::vector<bool>& holders) {
    energy.account(to - from, holders);
  });
  const msgpass::CoverageStats stats = sim.run(params.duration);
  CameraReport report;
  report.duration = stats.observed_time;
  report.coverage = stats.coverage();
  report.unmonitored_time = stats.zero_token_time;
  report.blackout_intervals = stats.zero_intervals;
  report.handovers = stats.handovers;
  energy.fill_report(report);
  return report;
}

CameraReport run_all_active(const CameraParams& params) {
  // Closed form: every camera is on for the whole run.
  CameraReport report;
  report.duration = params.duration;
  report.coverage = 1.0;
  report.unmonitored_time = 0.0;
  report.blackout_intervals = 0;
  report.handovers = 0;
  EnergyModel energy(params);
  energy.account(params.duration,
                 std::vector<bool>(params.node_count, true));
  report.duration = params.duration;
  energy.fill_report(report);
  return report;
}

}  // namespace

CameraReport run_camera(CameraPolicy policy, const CameraParams& params) {
  params.validate();
  const std::size_t n = params.node_count;
  const std::uint32_t K =
      params.modulus != 0 ? params.modulus
                          : static_cast<std::uint32_t>(n + 1);
  switch (policy) {
    case CameraPolicy::kSsrMin: {
      core::SsrMinRing ring(n, K);
      auto sim = msgpass::make_ssrmin_cst(
          ring, core::canonical_legitimate(ring, 0), params.net);
      return run_simulated(sim, params);
    }
    case CameraPolicy::kDijkstra: {
      dijkstra::KStateRing ring(n, K);
      auto sim = msgpass::make_kstate_cst(
          ring, dijkstra::KStateConfig(n), params.net);
      return run_simulated(sim, params);
    }
    case CameraPolicy::kDualDijkstra: {
      dijkstra::DualKStateRing ring(n, K);
      // Start the two instances half a ring apart so their tokens are
      // spatially separated, the friendliest case for the naive scheme.
      dijkstra::DualConfig init(n);
      for (std::size_t i = 0; i < n; ++i) {
        init[i].a = 0;
        init[i].b = (i < n / 2) ? 1 : 0;
      }
      auto sim = msgpass::make_dual_cst(ring, std::move(init), params.net);
      return run_simulated(sim, params);
    }
    case CameraPolicy::kAllActive:
      return run_all_active(params);
  }
  SSR_ASSERT(false, "unknown camera policy");
}

}  // namespace ssr::incl
