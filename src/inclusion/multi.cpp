#include "inclusion/multi.hpp"

#include "util/assert.hpp"

namespace ssr::incl {

MultiSsrMin::MultiSsrMin(std::size_t n, std::uint32_t K, std::size_t instances)
    : ring_(n, K), instances_(instances) {
  SSR_REQUIRE(instances >= 1, "need at least one instance");
}

void MultiSsrMin::check_state(const State& s) const {
  SSR_REQUIRE(s.slots.size() == instances_,
              "state has the wrong number of instance slots");
}

int MultiSsrMin::enabled_rule(std::size_t i, const State& self,
                              const State& pred, const State& succ) const {
  check_state(self);
  check_state(pred);
  check_state(succ);
  for (std::size_t j = 0; j < instances_; ++j) {
    if (ring_.enabled_rule(i, self.slots[j], pred.slots[j], succ.slots[j]) !=
        stab::kDisabled) {
      return kRuleComposite;
    }
  }
  return stab::kDisabled;
}

MultiSsrMin::State MultiSsrMin::apply(std::size_t i, int rule,
                                      const State& self, const State& pred,
                                      const State& succ) const {
  SSR_REQUIRE(rule == kRuleComposite, "unknown composite rule id");
  SSR_REQUIRE(enabled_rule(i, self, pred, succ) == kRuleComposite,
              "rule applied while disabled");
  State next = self;
  for (std::size_t j = 0; j < instances_; ++j) {
    const int sub =
        ring_.enabled_rule(i, self.slots[j], pred.slots[j], succ.slots[j]);
    if (sub != stab::kDisabled) {
      next.slots[j] =
          ring_.apply(i, sub, self.slots[j], pred.slots[j], succ.slots[j]);
    }
  }
  return next;
}

std::size_t MultiSsrMin::tokens_at(std::size_t i, const State& self,
                                   const State& pred,
                                   const State& succ) const {
  check_state(self);
  std::size_t count = 0;
  for (std::size_t j = 0; j < instances_; ++j) {
    if (ring_.holds_primary(i, self.slots[j], pred.slots[j]) ||
        ring_.holds_secondary(self.slots[j], succ.slots[j])) {
      ++count;
    }
  }
  return count;
}

namespace {

/// Extracts instance j's projection of the composite configuration.
core::SsrConfig project(const MultiConfig& c, std::size_t j) {
  core::SsrConfig out(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) out[i] = c[i].slots[j];
  return out;
}

}  // namespace

std::size_t privileged_slots(const MultiSsrMin& ring, const MultiConfig& c) {
  SSR_REQUIRE(c.size() == ring.size(), "configuration/ring size mismatch");
  const std::size_t n = c.size();
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += ring.tokens_at(i, c[i], c[stab::pred_index(i, n)],
                            c[stab::succ_index(i, n)]);
  }
  return total;
}

std::size_t privileged_nodes(const MultiSsrMin& ring, const MultiConfig& c) {
  SSR_REQUIRE(c.size() == ring.size(), "configuration/ring size mismatch");
  const std::size_t n = c.size();
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (ring.tokens_at(i, c[i], c[stab::pred_index(i, n)],
                       c[stab::succ_index(i, n)]) > 0) {
      ++total;
    }
  }
  return total;
}

bool is_legitimate(const MultiSsrMin& ring, const MultiConfig& c) {
  SSR_REQUIRE(c.size() == ring.size(), "configuration/ring size mismatch");
  for (std::size_t j = 0; j < ring.instances(); ++j) {
    if (!core::is_legitimate(ring.base(), project(c, j))) return false;
  }
  return true;
}

MultiConfig staggered_legitimate(const MultiSsrMin& ring) {
  const std::size_t n = ring.size();
  const std::size_t k = ring.instances();
  MultiConfig config(n);
  for (auto& s : config) s.slots.resize(k);
  for (std::size_t j = 0; j < k; ++j) {
    // Instance j: token at P_t with t = j * n / k; x-part is x+1 on the
    // prefix before the holder, x from the holder on (Definition 1 with
    // x = 0), holder carries <0.1>.
    const std::size_t t = j * n / k;
    for (std::size_t i = 0; i < n; ++i) {
      config[i].slots[j].x = (i < t) ? 1 : 0;
      config[i].slots[j].rts = false;
      config[i].slots[j].tra = (i == t);
    }
  }
  return config;
}

MultiConfig random_config(const MultiSsrMin& ring, Rng& rng) {
  MultiConfig config(ring.size());
  for (auto& s : config) {
    s.slots.resize(ring.instances());
    for (auto& slot : s.slots) {
      slot.x = static_cast<std::uint32_t>(rng.below(ring.modulus()));
      slot.rts = rng.bernoulli(0.5);
      slot.tra = rng.bernoulli(0.5);
    }
  }
  return config;
}

}  // namespace ssr::incl
