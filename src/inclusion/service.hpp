// DutyService — the deployment-facing API of the library: "run my ring of
// nodes; call me when a node must start or stop doing the privileged work;
// keep at least one node on duty at all times."
//
// Wraps the threaded SSRmin runtime: the critical section becomes a pair
// of user callbacks (on-duty / off-duty), and the service accounts
// per-node wall-clock duty time, activation counts and coverage the way
// an operator would want them reported. This is the programmatic form of
// the paper's camera system: replace the callback body with
// "start/stop recording".
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/ssrmin.hpp"
#include "runtime/threaded_ring.hpp"

namespace ssr::incl {

struct DutyServiceParams {
  std::size_t node_count = 5;
  /// Dijkstra modulus; 0 means node_count + 1.
  std::uint32_t modulus = 0;
  runtime::RuntimeParams runtime{};

  void validate() const;
};

/// Per-node duty accounting (wall-clock).
struct DutyStats {
  std::vector<double> duty_seconds;     ///< accumulated on-duty time
  std::vector<std::uint64_t> activations;  ///< number of duty periods
  std::uint64_t total_activations = 0;
  /// Nodes currently on duty (at snapshot time).
  std::size_t currently_active = 0;
};

class DutyService {
 public:
  /// @param on_duty_change called from node threads whenever a node's duty
  ///        flips; must be thread-safe and fast (it runs on the protocol
  ///        path). May be null.
  using DutyCallback = std::function<void(std::size_t node, bool on_duty)>;

  DutyService(DutyServiceParams params, DutyCallback on_duty_change);
  ~DutyService();

  DutyService(const DutyService&) = delete;
  DutyService& operator=(const DutyService&) = delete;

  std::size_t size() const { return params_.node_count; }

  void start();
  void stop();
  bool running() const { return running_; }

  /// Snapshot of the duty accounting (open duty periods are included up to
  /// "now").
  DutyStats stats() const;

  /// Underlying sampler (coverage measurements); see ThreadedRing.
  runtime::SamplerReport observe(std::chrono::milliseconds duration,
                                 std::chrono::microseconds interval);

  /// Transient-fault injection on a node.
  void corrupt(std::size_t node);

 private:
  void on_flip(std::size_t node, bool active);

  DutyServiceParams params_;
  DutyCallback user_callback_;
  std::unique_ptr<runtime::ThreadedRing<core::SsrMinRing>> ring_;
  bool running_ = false;

  mutable std::mutex mutex_;
  std::vector<double> duty_seconds_;
  std::vector<std::uint64_t> activations_;
  std::vector<std::chrono::steady_clock::time_point> duty_start_;
  std::vector<bool> active_;
  Rng fault_rng_{12345};
};

}  // namespace ssr::incl
