// The paper's motivating application (§1.1): a self-organizing multi-node
// security-camera / environmental-monitoring system. Nodes carry
// rechargeable batteries; a node actively monitors while it holds a token
// (is in the critical section) and recharges (energy harvesting) while
// idle. Mutual inclusion guarantees there is no instant at which nothing is
// monitoring; keeping the token count low (SSRmin: at most two) keeps the
// energy bill near the minimum.
//
// run_camera() executes the chosen token policy over the CST
// message-passing simulation and integrates coverage, per-node duty and a
// battery model over simulated time, so the policies can be compared on
// exactly the axes the paper motivates: continuity of observation vs
// energy consumption.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "msgpass/cst.hpp"

namespace ssr::incl {

enum class CameraPolicy {
  kSsrMin,        ///< the paper's algorithm — graceful handover
  kDijkstra,      ///< single Dijkstra token via CST (coverage gaps)
  kDualDijkstra,  ///< two independent Dijkstra tokens (Figure 12 baseline)
  kAllActive,     ///< every camera always on (perfect coverage, max energy)
};

std::string to_string(CameraPolicy policy);

struct CameraParams {
  std::size_t node_count = 8;
  /// Dijkstra modulus; 0 means node_count + 1.
  std::uint32_t modulus = 0;
  /// Simulated duration in ticks.
  double duration = 2000.0;
  /// Battery units consumed per tick while actively monitoring.
  double drain_rate = 1.0;
  /// Battery units consumed per tick while idle (radio + standby).
  double idle_drain_rate = 0.05;
  /// Battery units harvested per tick (applies always).
  double harvest_rate = 0.30;
  double battery_capacity = 100.0;
  double initial_battery = 60.0;
  msgpass::NetworkParams net{};

  void validate() const;
};

struct CameraReport {
  double duration = 0.0;
  /// Fraction of time with at least one active camera.
  double coverage = 0.0;
  double unmonitored_time = 0.0;
  std::size_t blackout_intervals = 0;
  /// Per-node time spent actively monitoring.
  std::vector<double> active_time;
  std::vector<double> final_battery;
  double min_battery = 0.0;
  /// Number of node-intervals that hit an empty battery.
  std::size_t depletions = 0;
  /// Total battery units consumed across all nodes (drain only).
  double energy_consumed = 0.0;
  /// Time-average number of simultaneously active cameras.
  double mean_active = 0.0;
  /// Jain's fairness index over per-node active time (1 = perfectly even).
  double duty_fairness = 0.0;
  std::uint64_t handovers = 0;
};

/// Runs one policy over the message-passing simulation and returns the
/// integrated report. Every policy starts from its protocol's legitimate
/// configuration with coherent caches (the steady-state comparison the
/// paper's §5 figures make).
CameraReport run_camera(CameraPolicy policy, const CameraParams& params);

/// Jain's fairness index (sum x)^2 / (n * sum x^2); 1.0 for an empty or
/// all-zero vector by convention.
double jain_fairness(const std::vector<double>& values);

}  // namespace ssr::incl
