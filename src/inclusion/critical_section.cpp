#include "inclusion/critical_section.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace ssr::incl {

std::string CriticalSectionSpec::to_string() const {
  std::ostringstream os;
  os << '(' << min_in_cs << ", " << max_in_cs << ")-critical-section";
  return os.str();
}

CriticalSectionSpec mutual_exclusion_spec() { return {0, 1}; }

CriticalSectionSpec mutual_inclusion_spec(std::size_t n) {
  SSR_REQUIRE(n >= 1, "mutual inclusion needs at least one process");
  return {1, n};
}

CriticalSectionSpec ssrmin_spec() { return {1, 2}; }

void SpecMonitor::observe(std::size_t in_cs) {
  ++observations_;
  if (in_cs < spec_.min_in_cs) ++below_;
  if (in_cs > spec_.max_in_cs) ++above_;
}

void SpecMonitor::observe_interval(double dt, std::size_t in_cs) {
  SSR_REQUIRE(dt >= 0.0, "interval duration must be non-negative");
  observe(in_cs);
  total_time_ += dt;
  if (!spec_.satisfied_by(in_cs)) violation_time_ += dt;
}

double SpecMonitor::compliance() const {
  if (total_time_ <= 0.0) return 1.0;
  return 1.0 - violation_time_ / total_time_;
}

}  // namespace ssr::incl
