#include "inclusion/service.hpp"

#include "core/legitimacy.hpp"
#include "runtime/factories.hpp"
#include "util/assert.hpp"

namespace ssr::incl {

void DutyServiceParams::validate() const {
  SSR_REQUIRE(node_count >= 3, "duty service needs at least three nodes");
  runtime.validate();
}

DutyService::DutyService(DutyServiceParams params, DutyCallback on_duty_change)
    : params_(params), user_callback_(std::move(on_duty_change)) {
  params_.validate();
  const std::size_t n = params_.node_count;
  const std::uint32_t K =
      params_.modulus != 0 ? params_.modulus
                           : static_cast<std::uint32_t>(n + 1);
  duty_seconds_.assign(n, 0.0);
  activations_.assign(n, 0);
  duty_start_.assign(n, {});
  active_.assign(n, false);

  core::SsrMinRing ring(n, K);
  ring_ = runtime::make_ssrmin_threaded(
      ring, core::canonical_legitimate(ring, 0), params_.runtime);
  // The initial holder is already on duty before start(): seed accounting.
  active_[0] = true;
  ring_->set_activation_callback(
      [this](std::size_t node, bool on) { on_flip(node, on); });
}

DutyService::~DutyService() { stop(); }

void DutyService::start() {
  if (running_) return;
  running_ = true;
  {
    std::lock_guard lock(mutex_);
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (active_[i]) {
        duty_start_[i] = now;
        ++activations_[i];
      }
    }
  }
  ring_->start();
}

void DutyService::stop() {
  if (!running_) return;
  ring_->stop();
  running_ = false;
  // Close any open duty periods.
  std::lock_guard lock(mutex_);
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (active_[i]) {
      duty_seconds_[i] +=
          std::chrono::duration<double>(now - duty_start_[i]).count();
      active_[i] = false;
    }
  }
}

void DutyService::on_flip(std::size_t node, bool on) {
  {
    std::lock_guard lock(mutex_);
    const auto now = std::chrono::steady_clock::now();
    if (on && !active_[node]) {
      active_[node] = true;
      duty_start_[node] = now;
      ++activations_[node];
    } else if (!on && active_[node]) {
      active_[node] = false;
      duty_seconds_[node] +=
          std::chrono::duration<double>(now - duty_start_[node]).count();
    }
  }
  if (user_callback_) user_callback_(node, on);
}

DutyStats DutyService::stats() const {
  std::lock_guard lock(mutex_);
  DutyStats out;
  out.duty_seconds = duty_seconds_;
  out.activations = activations_;
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (active_[i]) {
      out.duty_seconds[i] +=
          std::chrono::duration<double>(now - duty_start_[i]).count();
      ++out.currently_active;
    }
    out.total_activations += activations_[i];
  }
  return out;
}

runtime::SamplerReport DutyService::observe(
    std::chrono::milliseconds duration, std::chrono::microseconds interval) {
  SSR_REQUIRE(running_, "call start() before observe()");
  return ring_->observe(duration, interval);
}

void DutyService::corrupt(std::size_t node) {
  SSR_REQUIRE(node < params_.node_count, "node index out of range");
  core::SsrState garbage;
  const std::uint32_t K = params_.modulus != 0
                              ? params_.modulus
                              : static_cast<std::uint32_t>(
                                    params_.node_count + 1);
  garbage.x = static_cast<std::uint32_t>(fault_rng_.below(K));
  garbage.rts = fault_rng_.bernoulli(0.5);
  garbage.tra = fault_rng_.bernoulli(0.5);
  ring_->corrupt(node, garbage);
}

}  // namespace ssr::incl
