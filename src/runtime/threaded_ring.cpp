#include "runtime/threaded_ring.hpp"

#include "runtime/factories.hpp"

namespace ssr::runtime {

void RuntimeParams::validate() const {
  SSR_REQUIRE(refresh_interval.count() > 0, "refresh interval must be positive");
  SSR_REQUIRE(loss_probability >= 0.0 && loss_probability < 1.0,
              "loss probability must be in [0, 1)");
  SSR_REQUIRE(channel_capacity > 0, "channel capacity must be positive");
}

std::unique_ptr<ThreadedRing<core::SsrMinRing>> make_ssrmin_threaded(
    const core::SsrMinRing& ring, core::SsrConfig initial,
    RuntimeParams params) {
  auto token = [ring](std::size_t i, const core::SsrState& self,
                      const core::SsrState& pred_view,
                      const core::SsrState& succ_view) {
    return ring.holds_primary(i, self, pred_view) ||
           ring.holds_secondary(self, succ_view);
  };
  return std::make_unique<ThreadedRing<core::SsrMinRing>>(
      ring, std::move(initial), std::move(token), params);
}

std::unique_ptr<ThreadedRing<dijkstra::KStateRing>> make_kstate_threaded(
    const dijkstra::KStateRing& ring, dijkstra::KStateConfig initial,
    RuntimeParams params) {
  auto token = [ring](std::size_t i, const dijkstra::KStateLocal& self,
                      const dijkstra::KStateLocal& pred_view,
                      const dijkstra::KStateLocal& /*succ_view*/) {
    return ring.holds_token(i, self, pred_view);
  };
  return std::make_unique<ThreadedRing<dijkstra::KStateRing>>(
      ring, std::move(initial), std::move(token), params);
}

}  // namespace ssr::runtime
