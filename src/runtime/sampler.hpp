// Holder sampling shared by the real runtimes: the snapshot/report types
// and the polling loop that turns consistent snapshots into a
// SamplerReport (and, optionally, a Telemetry holder timeline).
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "runtime/telemetry.hpp"

namespace ssr::runtime {

/// Consistent-snapshot result (see HolderBoard::sample).
struct HolderSnapshot {
  std::vector<bool> holders;
  bool consistent = false;  ///< version counter was stable across the read
};

/// Aggregate observations from a sampling run.
struct SamplerReport {
  std::uint64_t samples = 0;
  std::uint64_t consistent_samples = 0;
  /// Consistent samples observing zero token holders. The paper's graceful
  /// handover (Theorem 3) predicts 0 for SSRmin started legitimate; plain
  /// Dijkstra has real extinction windows a sampler can catch.
  std::uint64_t zero_holder_samples = 0;
  std::size_t min_holders = std::numeric_limits<std::size_t>::max();
  std::size_t max_holders = 0;
  /// Holder-set changes between consecutive consistent samples.
  std::uint64_t handovers = 0;
  /// Frames actually transmitted (injector drops excluded).
  std::uint64_t messages_sent = 0;
  /// Frames the fault injector removed (probabilistic + scripted windows;
  /// for wire-less runtimes this includes corruption, which a checksum
  /// would turn into loss anyway).
  std::uint64_t messages_lost = 0;
  /// Receive-side rejects: checksum/parse failures, zero-length and
  /// truncated datagrams (wire runtimes only).
  std::uint64_t messages_rejected = 0;
  /// Transmissions the kernel refused (UDP sendto() failures).
  std::uint64_t send_errors = 0;
  std::uint64_t rule_executions = 0;
};

/// Polls @p sample_fn every @p interval for @p duration and aggregates the
/// consistent snapshots. @p clock_us must return microseconds on the same
/// fault clock the runtime's injector uses (so telemetry window recovery
/// lines up with the scripted windows); @p telemetry may be null. The
/// wire counters of the report are left zero — callers fill them from
/// their own counters.
template <typename SampleFn, typename ClockFn>
SamplerReport sample_holders(SampleFn&& sample_fn, ClockFn&& clock_us,
                             std::chrono::milliseconds duration,
                             std::chrono::microseconds interval,
                             Telemetry* telemetry = nullptr) {
  SamplerReport report;
  std::vector<bool> previous;
  const auto deadline = std::chrono::steady_clock::now() + duration;
  while (std::chrono::steady_clock::now() < deadline) {
    const HolderSnapshot snap = sample_fn();
    const double t_us = clock_us();
    ++report.samples;
    if (snap.consistent) {
      ++report.consistent_samples;
      std::size_t count = 0;
      for (bool b : snap.holders)
        if (b) ++count;
      if (count == 0) ++report.zero_holder_samples;
      report.min_holders = std::min(report.min_holders, count);
      report.max_holders = std::max(report.max_holders, count);
      if (!previous.empty() && previous != snap.holders) ++report.handovers;
      previous = snap.holders;
      if (telemetry != nullptr) telemetry->observe(t_us, snap.holders);
    }
    std::this_thread::sleep_for(interval);
  }
  if (telemetry != nullptr) telemetry->finish(clock_us());
  if (report.min_holders == std::numeric_limits<std::size_t>::max()) {
    report.min_holders = 0;
  }
  return report;
}

}  // namespace ssr::runtime
