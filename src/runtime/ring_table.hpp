// Dense per-ring state for the multi-ring reactor.
//
// The single-ring runtimes spend a thread (ThreadedRing, UdpSsrRing) or a
// whole simulation object per ring. A RingTable instead packs the state of
// every hosted ring — protocol kind, per-node local states, per-node
// neighbor caches, holder bits, wire counters, fault bookkeeping and an
// independent RNG stream — into flat arrays indexed by (ring, node), so
// 100k rings fit in tens of MiB and the reactor's hot path touches memory
// contiguously instead of chasing one heap object per ring.
//
// Protocols are mixed at runtime: each ring is SSRmin, Dijkstra K-state or
// dual K-state, dispatched with a switch over a universal NodeState
// (uint32 a, uint32 b, uint8 flags) that covers all three local-state
// layouts. The protocol objects themselves (SsrMinRing &c.) are shared —
// they are pure (n, K) pairs.
//
// The message-passing semantics mirror UdpSsrRing exactly: a node owns its
// local state plus cached neighbor states; a received frame updates the
// cache and may enable a rule; a state change triggers a broadcast to both
// neighbors; token holding is judged from the node's own (state, caches)
// view. The table is transport-agnostic — the reactor decides how frames
// travel (virtual clock or real UDP sockets).
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "core/state.hpp"
#include "dijkstra/dual.hpp"
#include "dijkstra/kstate.hpp"
#include "stabilizing/protocol.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "wire/codec.hpp"

namespace ssr::runtime {

enum class RingProtocolKind : std::uint8_t {
  kSsrMin = 0,
  kKState = 1,
  kDual = 2,
};

inline const char* to_string(RingProtocolKind kind) {
  switch (kind) {
    case RingProtocolKind::kSsrMin:
      return "ssrmin";
    case RingProtocolKind::kKState:
      return "kstate";
    case RingProtocolKind::kDual:
      return "dual";
  }
  return "unknown";
}

/// Universal per-node local state covering all three protocols:
///   SSRmin: a = x, flags bit0 = tra, bit1 = rts
///   K-state: a = x
///   dual:    a, b
struct NodeState {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint8_t flags = 0;
};

inline NodeState pack_state(const core::SsrState& s) {
  return NodeState{s.x, 0,
                   static_cast<std::uint8_t>((s.rts ? 2 : 0) | (s.tra ? 1 : 0))};
}
inline NodeState pack_state(const dijkstra::KStateLocal& s) {
  return NodeState{s.x, 0, 0};
}
inline NodeState pack_state(const dijkstra::DualLocal& s) {
  return NodeState{s.a, s.b, 0};
}
inline core::SsrState unpack_ssr(const NodeState& s) {
  return core::SsrState{s.a, (s.flags & 2) != 0, (s.flags & 1) != 0};
}
inline dijkstra::KStateLocal unpack_kstate(const NodeState& s) {
  return dijkstra::KStateLocal{s.a};
}
inline dijkstra::DualLocal unpack_dual(const NodeState& s) {
  return dijkstra::DualLocal{s.a, s.b};
}

/// Per-ring wire/rule counters (the multi-ring analogue of UdpStats;
/// plain integers — each ring is owned by exactly one shard).
struct RingCounters {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_duplicated = 0;
  std::uint64_t frames_reordered = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_rejected = 0;
  std::uint64_t send_errors = 0;
  std::uint64_t rule_executions = 0;
  std::uint64_t crash_restarts = 0;
  std::uint64_t refresh_broadcasts = 0;
  std::uint64_t handovers = 0;
};

/// How a hosted ring starts: a seeded arbitrary configuration (the
/// self-stabilization story) or the canonical legitimate one.
enum class RingStart : std::uint8_t { kRandom, kLegitimate };

class RingTable {
 public:
  /// Ring geometry is uniform (same n and K for every ring; 3 <= n <= 64
  /// so holder sets fit a uint64 mask); protocols may vary per ring.
  RingTable(std::size_t num_rings, std::size_t nodes, std::uint32_t modulus,
            std::vector<RingProtocolKind> protocols, RingStart start,
            std::uint64_t seed)
      : num_rings_(num_rings),
        n_(nodes),
        ssr_(nodes, modulus),
        kstate_(nodes, modulus),
        dual_(nodes, modulus),
        protocols_(std::move(protocols)) {
    SSR_REQUIRE(num_rings_ >= 1, "need at least one ring");
    SSR_REQUIRE(n_ >= 3 && n_ <= 64,
                "multi-ring nodes must be in [3, 64] (holder bitmask)");
    SSR_REQUIRE(protocols_.size() == num_rings_,
                "one protocol kind per ring");
    states_.resize(num_rings_ * n_);
    cache_pred_.resize(num_rings_ * n_);
    cache_succ_.resize(num_rings_ * n_);
    holder_mask_.resize(num_rings_, 0);
    last_activity_us_.resize(num_rings_, 0);
    last_handover_us_.assign(num_rings_,
                             std::numeric_limits<std::uint64_t>::max());
    crash_fired_.resize(num_rings_, 0);
    counters_.resize(num_rings_);
    rngs_.reserve(num_rings_);
    std::uint64_t stream = seed;
    for (std::size_t r = 0; r < num_rings_; ++r) {
      rngs_.emplace_back(splitmix64_next(stream));
      init_ring(r, start);
    }
  }

  std::size_t num_rings() const { return num_rings_; }
  std::size_t nodes_per_ring() const { return n_; }
  RingProtocolKind protocol(std::size_t ring) const {
    return protocols_[ring];
  }
  Rng& rng(std::size_t ring) { return rngs_[ring]; }
  RingCounters& counters(std::size_t ring) { return counters_[ring]; }
  const RingCounters& counters(std::size_t ring) const {
    return counters_[ring];
  }
  std::uint64_t holder_mask(std::size_t ring) const {
    return holder_mask_[ring];
  }
  std::uint64_t last_activity_us(std::size_t ring) const {
    return last_activity_us_[ring];
  }
  /// Virtual/wall time of the previous holder *gain* on this ring, or
  /// max-uint64 before the first one (used for handover intervals).
  std::uint64_t last_handover_us(std::size_t ring) const {
    return last_handover_us_[ring];
  }
  std::uint32_t& crash_fired(std::size_t ring) { return crash_fired_[ring]; }

  const NodeState& state(std::size_t ring, std::size_t node) const {
    return states_[ring * n_ + node];
  }

  /// Encodes node's current state as a wire payload with the destination
  /// node prepended as a varint (the v2 frame has a ring-id but no
  /// destination; the reactor's sockets are per-shard, not per-node).
  void encode_payload(std::size_t ring, std::size_t node, std::size_t dest,
                      wire::Bytes& out) const {
    wire::put_varint(out, dest);
    const NodeState& s = states_[ring * n_ + node];
    switch (protocols_[ring]) {
      case RingProtocolKind::kSsrMin: {
        const core::SsrState state = unpack_ssr(s);
        wire::put_varint(out, state.x);
        out.push_back(static_cast<std::uint8_t>((state.rts ? 2 : 0) |
                                                (state.tra ? 1 : 0)));
        break;
      }
      case RingProtocolKind::kKState:
        wire::put_varint(out, s.a);
        break;
      case RingProtocolKind::kDual:
        wire::put_varint(out, s.a);
        wire::put_varint(out, s.b);
        break;
    }
  }

  /// Parses the state portion of a payload (after the dest varint) for
  /// @p ring's protocol, validating against the modulus. Returns false on
  /// any malformation.
  bool decode_state(std::size_t ring, wire::ByteView payload,
                    std::size_t offset, NodeState& out) const {
    switch (protocols_[ring]) {
      case RingProtocolKind::kSsrMin: {
        const auto state = wire::decode_ssr_state(
            payload.subspan(offset));
        if (!state || state->x >= ssr_.modulus()) return false;
        out = pack_state(*state);
        return true;
      }
      case RingProtocolKind::kKState: {
        const auto state = wire::decode_kstate(payload.subspan(offset));
        if (!state || state->x >= kstate_.modulus()) return false;
        out = pack_state(*state);
        return true;
      }
      case RingProtocolKind::kDual: {
        const auto state = wire::decode_dual(payload.subspan(offset));
        if (!state || state->a >= dual_.modulus() ||
            state->b >= dual_.modulus()) {
          return false;
        }
        out = pack_state(*state);
        return true;
      }
    }
    return false;
  }

  struct DeliverResult {
    bool accepted = false;       ///< sender was a neighbor; cache updated
    bool state_changed = false;  ///< a rule fired (caller must rebroadcast)
    bool holder_changed = false;  ///< dest's holder bit flipped
  };

  /// Ingests a neighbor state at @p dest (from ring-local @p sender, which
  /// must be dest's pred or succ — anything else is the caller's reject
  /// path), applies at most one enabled rule, and updates holder/handover
  /// accounting at @p now_us. @p on_handover receives the inter-arrival
  /// interval (us) when dest gains a token and a previous gain exists.
  template <typename OnHandover>
  DeliverResult deliver(std::size_t ring, std::size_t dest,
                        std::size_t sender, const NodeState& neighbor_state,
                        std::uint64_t now_us, OnHandover&& on_handover) {
    DeliverResult result;
    const std::size_t base = ring * n_;
    const std::size_t pred = stab::pred_index(dest, n_);
    const std::size_t succ = stab::succ_index(dest, n_);
    if (sender == pred) {
      cache_pred_[base + dest] = neighbor_state;
    } else if (sender == succ) {
      cache_succ_[base + dest] = neighbor_state;
    } else {
      return result;  // caller counts the rejection
    }
    result.accepted = true;
    last_activity_us_[ring] = now_us;
    // The token can arrive with the frame: a cache update alone may turn
    // dest into a holder. Observe the gain BEFORE applying the rule —
    // Dijkstra-style protocols consume the token in the very rule the
    // frame enables, so checking only afterwards would miss every
    // handover (SSRmin's holding predicate is sticky across exchanges;
    // K-state's is not).
    result.holder_changed = update_holder_with(ring, dest, now_us,
                                               on_handover);
    result.state_changed = step_node(ring, dest);
    if (result.state_changed) {
      result.holder_changed |=
          update_holder_with(ring, dest, now_us, on_handover);
    }
    return result;
  }

  /// Applies at most one enabled rule at @p node from its current caches.
  bool step_node(std::size_t ring, std::size_t node) {
    const std::size_t base = ring * n_;
    NodeState& self = states_[base + node];
    const NodeState& pred = cache_pred_[base + node];
    const NodeState& succ = cache_succ_[base + node];
    switch (protocols_[ring]) {
      case RingProtocolKind::kSsrMin: {
        core::SsrState s = unpack_ssr(self);
        const core::SsrState p = unpack_ssr(pred);
        const core::SsrState u = unpack_ssr(succ);
        const int rule = ssr_.enabled_rule(node, s, p, u);
        if (rule == stab::kDisabled) return false;
        self = pack_state(ssr_.apply(node, rule, s, p, u));
        break;
      }
      case RingProtocolKind::kKState: {
        dijkstra::KStateLocal s = unpack_kstate(self);
        const dijkstra::KStateLocal p = unpack_kstate(pred);
        const dijkstra::KStateLocal u = unpack_kstate(succ);
        const int rule = kstate_.enabled_rule(node, s, p, u);
        if (rule == stab::kDisabled) return false;
        self = pack_state(kstate_.apply(node, rule, s, p, u));
        break;
      }
      case RingProtocolKind::kDual: {
        dijkstra::DualLocal s = unpack_dual(self);
        const dijkstra::DualLocal p = unpack_dual(pred);
        const dijkstra::DualLocal u = unpack_dual(succ);
        const int rule = dual_.enabled_rule(node, s, p, u);
        if (rule == stab::kDisabled) return false;
        self = pack_state(dual_.apply(node, rule, s, p, u));
        break;
      }
    }
    ++counters_[ring].rule_executions;
    return true;
  }

  /// Recomputes @p node's holder bit from its own view; a 0->1 transition
  /// is a handover (token arrival) and records the inter-arrival interval
  /// via @p on_handover(interval_us) when a previous arrival exists.
  /// Returns true when the bit flipped.
  template <typename OnHandover>
  bool update_holder_with(std::size_t ring, std::size_t node,
                          std::uint64_t now_us, OnHandover&& on_handover) {
    const bool h = node_holds(ring, node);
    const std::uint64_t bit = std::uint64_t{1} << node;
    const bool had = (holder_mask_[ring] & bit) != 0;
    if (h == had) return false;
    if (h) {
      holder_mask_[ring] |= bit;
      ++counters_[ring].handovers;
      if (last_handover_us_[ring] !=
          std::numeric_limits<std::uint64_t>::max()) {
        on_handover(now_us - last_handover_us_[ring]);
      }
      last_handover_us_[ring] = now_us;
    } else {
      holder_mask_[ring] &= ~bit;
    }
    return true;
  }

  bool update_holder(std::size_t ring, std::size_t node,
                     std::uint64_t now_us) {
    return update_holder_with(ring, node, now_us, [](std::uint64_t) {});
  }

  /// Token holding from the node's own (state, caches) view — the same
  /// judgement UdpSsrRing publishes to its HolderBoard.
  bool node_holds(std::size_t ring, std::size_t node) const {
    const std::size_t base = ring * n_;
    const NodeState& self = states_[base + node];
    const NodeState& pred = cache_pred_[base + node];
    const NodeState& succ = cache_succ_[base + node];
    switch (protocols_[ring]) {
      case RingProtocolKind::kSsrMin:
        return ssr_.holds_token(node, unpack_ssr(self), unpack_ssr(pred),
                                unpack_ssr(succ));
      case RingProtocolKind::kKState:
        return kstate_.holds_token(node, unpack_kstate(self),
                                   unpack_kstate(pred));
      case RingProtocolKind::kDual:
        return dual_.holds_token(node, unpack_dual(self),
                                 unpack_dual(pred));
    }
    return false;
  }

  /// Crash-restart with state reset (mirrors UdpSsrRing's crash handling):
  /// wipes @p node's state and caches. The caller re-derives the holder
  /// bit (update_holder) so the transition feeds its telemetry hooks.
  void crash_node(std::size_t ring, std::size_t node) {
    const std::size_t base = ring * n_;
    states_[base + node] = NodeState{};
    cache_pred_[base + node] = NodeState{};
    cache_succ_[base + node] = NodeState{};
    ++counters_[ring].crash_restarts;
  }

  /// Ground-truth legitimacy of the ring's *actual* states (ignoring the
  /// possibly-stale caches) — the re-stabilization check in tests.
  bool is_legitimate(std::size_t ring) const {
    const std::size_t base = ring * n_;
    switch (protocols_[ring]) {
      case RingProtocolKind::kSsrMin: {
        core::SsrConfig config(n_);
        for (std::size_t i = 0; i < n_; ++i) {
          config[i] = unpack_ssr(states_[base + i]);
        }
        return core::is_legitimate(ssr_, config);
      }
      case RingProtocolKind::kKState: {
        dijkstra::KStateConfig config(n_);
        for (std::size_t i = 0; i < n_; ++i) {
          config[i] = unpack_kstate(states_[base + i]);
        }
        return dijkstra::is_legitimate(kstate_, config);
      }
      case RingProtocolKind::kDual: {
        dijkstra::DualConfig config(n_);
        for (std::size_t i = 0; i < n_; ++i) {
          config[i] = unpack_dual(states_[base + i]);
        }
        return dijkstra::is_legitimate(dual_, config);
      }
    }
    return false;
  }

  /// Re-seeds caches from the true neighbor states and recomputes every
  /// holder bit — used at t = 0 (all caches start coherent, like the
  /// single-ring runtimes' initial configuration).
  void reset_caches(std::size_t ring) {
    const std::size_t base = ring * n_;
    for (std::size_t i = 0; i < n_; ++i) {
      cache_pred_[base + i] = states_[base + stab::pred_index(i, n_)];
      cache_succ_[base + i] = states_[base + stab::succ_index(i, n_)];
    }
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      if (node_holds(ring, i)) mask |= std::uint64_t{1} << i;
    }
    holder_mask_[ring] = mask;
  }

  /// Holder set as a bool vector (for Telemetry::observe).
  void holders(std::size_t ring, std::vector<bool>& out) const {
    out.assign(n_, false);
    const std::uint64_t mask = holder_mask_[ring];
    for (std::size_t i = 0; i < n_; ++i) {
      out[i] = (mask >> i) & 1;
    }
  }

 private:
  void init_ring(std::size_t r, RingStart start) {
    const std::size_t base = r * n_;
    Rng& rng = rngs_[r];
    switch (protocols_[r]) {
      case RingProtocolKind::kSsrMin: {
        const core::SsrConfig config =
            start == RingStart::kRandom
                ? core::random_config(ssr_, rng)
                : core::canonical_legitimate(ssr_, 0);
        for (std::size_t i = 0; i < n_; ++i) {
          states_[base + i] = pack_state(config[i]);
        }
        break;
      }
      case RingProtocolKind::kKState: {
        dijkstra::KStateConfig config(n_);
        if (start == RingStart::kRandom) {
          config = dijkstra::random_config(kstate_, rng);
        }
        for (std::size_t i = 0; i < n_; ++i) {
          states_[base + i] = pack_state(config[i]);
        }
        break;
      }
      case RingProtocolKind::kDual: {
        dijkstra::DualConfig config(n_);
        if (start == RingStart::kRandom) {
          config = dijkstra::random_config(dual_, rng);
        }
        for (std::size_t i = 0; i < n_; ++i) {
          states_[base + i] = pack_state(config[i]);
        }
        break;
      }
    }
    reset_caches(r);
  }

  std::size_t num_rings_;
  std::size_t n_;
  core::SsrMinRing ssr_;
  dijkstra::KStateRing kstate_;
  dijkstra::DualKStateRing dual_;
  std::vector<RingProtocolKind> protocols_;
  std::vector<NodeState> states_;
  std::vector<NodeState> cache_pred_;
  std::vector<NodeState> cache_succ_;
  std::vector<std::uint64_t> holder_mask_;
  std::vector<std::uint64_t> last_activity_us_;
  std::vector<std::uint64_t> last_handover_us_;
  std::vector<std::uint32_t> crash_fired_;
  std::vector<RingCounters> counters_;
  std::vector<Rng> rngs_;
};

}  // namespace ssr::runtime
