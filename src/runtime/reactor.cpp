#include "runtime/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cerrno>
#include <cmath>
#include <cstring>

#include "runtime/net_util.hpp"
#include "util/assert.hpp"
#include "wire/codec.hpp"

namespace ssr::runtime {

namespace {

// Virtual-transport link latency: a frame scheduled at t is delivered at
// t + kVirtualLatencyUs. A reordered frame arrives one extra latency late
// (stale, after fresher traffic) — the virtual analogue of the UDP
// transport's held-slot reordering.
constexpr std::uint64_t kVirtualLatencyUs = 50;

// Timer-wheel cookies: low 2 bits select the event kind, the rest carry
// the ring index (kick / refresh) or a pending-frame slot (delivery).
constexpr std::uint64_t kCookieRefresh = 0;
constexpr std::uint64_t kCookieDelivery = 1;
constexpr std::uint64_t kCookieKick = 2;

std::uint64_t refresh_cookie(std::size_t ring) {
  return (static_cast<std::uint64_t>(ring) << 2) | kCookieRefresh;
}
std::uint64_t delivery_cookie(std::size_t slot) {
  return (static_cast<std::uint64_t>(slot) << 2) | kCookieDelivery;
}
std::uint64_t kick_cookie(std::size_t ring) {
  return (static_cast<std::uint64_t>(ring) << 2) | kCookieKick;
}

// recvmmsg/sendmmsg batch geometry: 64 messages per syscall amortizes the
// kernel crossing ~64x; 512-byte buffers dwarf any frame we encode.
constexpr unsigned kBatchMessages = 64;
constexpr std::size_t kRecvBuffer = 512;

// Refresh backoff cap: a stalled ring's refresh interval doubles per
// unanswered broadcast up to base << kMaxBackoffShift (64x).
constexpr std::uint8_t kMaxBackoffShift = 6;

}  // namespace

const char* to_string(ReactorTransport transport) {
  switch (transport) {
    case ReactorTransport::kVirtual:
      return "virtual";
    case ReactorTransport::kUdp:
      return "udp";
  }
  return "unknown";
}

void ReactorConfig::validate() const {
  SSR_REQUIRE(rings >= 1, "need at least one ring");
  SSR_REQUIRE(nodes >= 3 && nodes <= 64, "nodes per ring must be in [3, 64]");
  SSR_REQUIRE(shards >= 1 && shards <= 64, "shards must be in [1, 64]");
  SSR_REQUIRE(refresh_interval.count() > 0,
              "refresh interval must be positive");
  const std::uint32_t k =
      modulus == 0 ? static_cast<std::uint32_t>(nodes) + 1 : modulus;
  SSR_REQUIRE(k > nodes, "modulus must exceed ring size (SSRmin: K > n)");
  SSR_REQUIRE(fault_plan.windows.size() <= 32,
              "multi-ring fault plans support at most 32 windows "
              "(per-ring crash bookkeeping is a 32-bit mask)");
  fault_plan.validate(nodes);
}

double LatencyHistogram::bucket_mid(std::size_t b) {
  if (b < kMinor) return static_cast<double>(b) + 0.5;
  const std::size_t major = b / kMinor;
  const std::size_t minor = b % kMinor;
  // Octave [2^(major+2), 2^(major+3)) split into 8 linear minor buckets.
  const double base = std::ldexp(1.0, static_cast<int>(major) + 2);
  const double width = base / kMinor;
  return base + (static_cast<double>(minor) + 0.5) * width;
}

double LatencyHistogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (static_cast<double>(seen) >= target) return bucket_mid(b);
  }
  return bucket_mid(kBuckets - 1);
}

// --- shard state ----------------------------------------------------------

/// One reactor shard: the timer wheel, latency histogram and (kUdp) socket
/// plumbing for the rings with ring % shards == id. The virtual transport
/// uses a single shard for all rings — one wheel is what makes the event
/// order globally deterministic. Everything here is touched only by the
/// shard's own thread (or the single thread in virtual mode).
struct MultiRingReactor::Shard {
  std::size_t id = 0;
  TimerWheel wheel;
  LatencyHistogram latency;
  std::vector<std::uint64_t> fired;        // advance_to scratch
  std::vector<bool> holder_scratch;        // Telemetry::observe scratch
  std::vector<std::uint32_t> rebroadcast;  // process_frame scratch

  // Budgeted repair queue (kUdp): timer fires are drained here and
  // processed a few per loop iteration, so a thundering herd of stalled
  // rings cannot starve the receive path with repair broadcasts.
  std::vector<std::uint64_t> repair_queue;
  std::size_t repair_head = 0;

  // Rejections not attributable to a ring (bad CRC, unknown ring id).
  std::uint64_t rejected = 0;
  // Checksum-valid frames of the wrong wire version (v1 at the reactor).
  std::uint64_t wrong_version = 0;
  // sendmmsg failures (kernel send queue full); frames are dropped and
  // the refresh machinery repairs.
  std::uint64_t send_errors = 0;

  // --- virtual transport: pending frames carried by wheel entries -------
  std::vector<wire::Bytes> slots;
  std::vector<std::uint32_t> free_slots;

  // --- udp transport ----------------------------------------------------
  int fd = -1;
  int epoll_fd = -1;
  int event_fd = -1;
  std::uint16_t port = 0;
  sockaddr_in self_addr{};
  wire::Bytes send_arena;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> send_spans;
  std::optional<wire::Bytes> held;  // reorder slot (one per shard)
  std::thread thread;

  std::size_t put_slot(wire::Bytes frame) {
    if (!free_slots.empty()) {
      const std::size_t s = free_slots.back();
      free_slots.pop_back();
      slots[s] = std::move(frame);
      return s;
    }
    slots.push_back(std::move(frame));
    return slots.size() - 1;
  }
  wire::Bytes take_slot(std::size_t s) {
    wire::Bytes frame = std::move(slots[s]);
    slots[s].clear();
    free_slots.push_back(static_cast<std::uint32_t>(s));
    return frame;
  }
};

struct MultiRingReactor::VirtualState {
  std::uint64_t now_us = 0;
};

// --- construction ---------------------------------------------------------

MultiRingReactor::MultiRingReactor(ReactorConfig config)
    : config_(std::move(config)),
      injector_((config_.validate(), config_.fault_plan), config_.nodes) {
  const std::uint32_t k =
      config_.modulus == 0 ? static_cast<std::uint32_t>(config_.nodes) + 1
                           : config_.modulus;
  std::vector<RingProtocolKind> protocols(config_.rings, config_.protocol);
  if (config_.mixed) {
    for (std::size_t r = 0; r < config_.rings; ++r) {
      protocols[r] = static_cast<RingProtocolKind>(r % 3);
    }
  }
  table_ = std::make_unique<RingTable>(config_.rings, config_.nodes, k,
                                       std::move(protocols), config_.start,
                                       config_.seed);
  refresh_backoff_.assign(config_.rings, 0);
  if (config_.per_ring_telemetry) {
    ring_telemetry_.reserve(config_.rings);
    for (std::size_t r = 0; r < config_.rings; ++r) {
      auto t = std::make_unique<Telemetry>(config_.nodes);
      t->set_context(std::string("multiring-") + to_string(config_.transport),
                     to_string(table_->protocol(r)), config_.seed);
      t->set_plan(injector_.plan());
      ring_telemetry_.push_back(std::move(t));
    }
  }
}

MultiRingReactor::~MultiRingReactor() = default;

// --- shared protocol plumbing --------------------------------------------

void MultiRingReactor::note_holder_change(std::size_t ring, std::size_t node,
                                          std::uint64_t now_us) {
  Shard& shard = *shards_[ring % shards_.size()];
  const bool changed = table_->update_holder_with(
      ring, node, now_us,
      [&](std::uint64_t interval) { shard.latency.record(interval); });
  if (changed && !ring_telemetry_.empty()) {
    table_->holders(ring, shard.holder_scratch);
    ring_telemetry_[ring]->observe(static_cast<double>(now_us),
                                   shard.holder_scratch);
  }
}

void MultiRingReactor::check_scripted_faults(std::size_t ring,
                                             std::uint64_t now_us) {
  const auto& windows = injector_.plan().windows;
  if (windows.empty()) return;
  std::uint32_t& fired = table_->crash_fired(ring);
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const FaultWindow& window = windows[w];
    if (window.kind != FaultWindow::Kind::kCrashRestart) continue;
    const std::uint32_t bit = std::uint32_t{1} << w;
    if ((fired & bit) != 0 || static_cast<double>(now_us) < window.begin_us) {
      continue;
    }
    fired |= bit;
    if (window.node == kAnyNode) {
      for (std::size_t i = 0; i < config_.nodes; ++i) {
        table_->crash_node(ring, i);
        note_holder_change(ring, i, now_us);
      }
    } else {
      table_->crash_node(ring, window.node);
      note_holder_change(ring, window.node, now_us);
    }
  }
}

void MultiRingReactor::fire_kick(Shard& shard, std::size_t ring,
                                 std::uint64_t now_us) {
  check_scripted_faults(ring, now_us);
  for (std::size_t node = 0; node < config_.nodes; ++node) {
    broadcast_node(ring, node, now_us);
  }
  shard.wheel.schedule_at(
      now_us + static_cast<std::uint64_t>(config_.refresh_interval.count()),
      refresh_cookie(ring));
}

void MultiRingReactor::fire_refresh(Shard& shard, std::size_t ring,
                                    std::uint64_t now_us) {
  check_scripted_faults(ring, now_us);
  const auto base =
      static_cast<std::uint64_t>(config_.refresh_interval.count());
  const std::uint64_t idle_since = table_->last_activity_us(ring);
  const std::uint64_t interval = base << refresh_backoff_[ring];
  if (now_us >= idle_since + interval) {
    // Still idle after a whole (backed-off) interval: rebroadcast and
    // double the next one — a stalled ring must not flood a congested
    // loop with repair traffic it cannot absorb yet.
    for (std::size_t node = 0; node < config_.nodes; ++node) {
      broadcast_node(ring, node, now_us);
    }
    ++table_->counters(ring).refresh_broadcasts;
    if (refresh_backoff_[ring] < kMaxBackoffShift) ++refresh_backoff_[ring];
    shard.wheel.schedule_at(now_us + (base << refresh_backoff_[ring]),
                            refresh_cookie(ring));
  } else {
    // The ring spoke since the last fire: it is alive, reset the backoff
    // and slide the timer past its latest activity.
    refresh_backoff_[ring] = 0;
    shard.wheel.schedule_at(idle_since + base, refresh_cookie(ring));
  }
}

void MultiRingReactor::broadcast_node(std::size_t ring, std::size_t node,
                                      std::uint64_t now_us) {
  Shard& shard = *shards_[ring % shards_.size()];
  RingCounters& counters = table_->counters(ring);
  const double t = static_cast<double>(now_us);
  if (injector_.node_down(node, t)) return;  // radio off
  const std::size_t n = config_.nodes;
  const std::size_t neighbors[2] = {stab::pred_index(node, n),
                                    stab::succ_index(node, n)};
  for (const std::size_t target : neighbors) {
    const FrameFate fate =
        injector_.on_send(node, target, t, table_->rng(ring));
    if (fate.drop) {
      ++counters.frames_dropped;
      continue;
    }
    wire::Bytes payload;
    table_->encode_payload(ring, node, target, payload);
    wire::Bytes frame = wire::encode_frame_v2(ring, node, payload);
    if (fate.corrupt_bits > 0) {
      wire::corrupt_bits(frame, table_->rng(ring), fate.corrupt_bits);
      ++counters.frames_corrupted;
    }
    if (config_.transport == ReactorTransport::kVirtual) {
      // Delivery rides a timer-wheel entry; a reordered frame arrives one
      // extra latency late, a duplicate is scheduled twice.
      const std::uint64_t arrive = now_us + kVirtualLatencyUs;
      if (fate.duplicate) {
        const std::size_t dup = shard.put_slot(frame);
        shard.wheel.schedule_at(arrive, delivery_cookie(dup));
        ++counters.frames_duplicated;
        ++counters.frames_sent;
      }
      const std::uint64_t when =
          fate.reorder ? arrive + kVirtualLatencyUs : arrive;
      if (fate.reorder) ++counters.frames_reordered;
      const std::size_t slot = shard.put_slot(std::move(frame));
      shard.wheel.schedule_at(when, delivery_cookie(slot));
      ++counters.frames_sent;
    } else {
      // Batched into the shard's sendmmsg arena. The reorder slot holds a
      // frame back until the next send on this shard, so it goes out stale.
      auto append = [&](const wire::Bytes& f) {
        const std::uint32_t offset =
            static_cast<std::uint32_t>(shard.send_arena.size());
        shard.send_arena.insert(shard.send_arena.end(), f.begin(), f.end());
        shard.send_spans.emplace_back(offset,
                                      static_cast<std::uint32_t>(f.size()));
      };
      if (fate.reorder && !shard.held.has_value()) {
        shard.held = std::move(frame);
        ++counters.frames_reordered;
        ++counters.frames_sent;  // transmitted later, just stale
        continue;
      }
      append(frame);
      ++counters.frames_sent;
      if (fate.duplicate) {
        append(frame);
        ++counters.frames_duplicated;
        ++counters.frames_sent;
      }
      if (shard.held.has_value()) {
        append(*shard.held);
        shard.held.reset();
      }
    }
  }
}

void MultiRingReactor::process_frame(std::size_t ring, wire::ByteView payload,
                                     std::uint64_t sender,
                                     std::uint64_t now_us,
                                     std::vector<std::uint32_t>& out) {
  RingCounters& counters = table_->counters(ring);
  check_scripted_faults(ring, now_us);
  std::size_t offset = 0;
  const auto dest = wire::get_varint(payload, offset);
  if (!dest || *dest >= config_.nodes || sender >= config_.nodes) {
    ++counters.frames_rejected;
    return;
  }
  const double t = static_cast<double>(now_us);
  if (injector_.node_down(*dest, t)) return;  // receiver down: discard
  NodeState state;
  if (!table_->decode_state(ring, payload, offset, state)) {
    ++counters.frames_rejected;
    return;
  }
  Shard& shard = *shards_[ring % shards_.size()];
  const auto result = table_->deliver(
      ring, static_cast<std::size_t>(*dest), static_cast<std::size_t>(sender),
      state, now_us,
      [&](std::uint64_t interval) { shard.latency.record(interval); });
  if (!result.accepted) {
    ++counters.frames_rejected;
    return;
  }
  ++counters.frames_received;
  if (result.holder_changed && !ring_telemetry_.empty()) {
    table_->holders(ring, shard.holder_scratch);
    ring_telemetry_[ring]->observe(static_cast<double>(now_us),
                                   shard.holder_scratch);
  }
  if (result.state_changed) {
    out.push_back(static_cast<std::uint32_t>(*dest));
  }
}

// --- virtual transport ----------------------------------------------------

void MultiRingReactor::run_virtual(std::chrono::microseconds duration) {
  shards_.clear();
  shards_.push_back(std::make_unique<Shard>());
  Shard& shard = *shards_[0];
  const auto end = static_cast<std::uint64_t>(duration.count());

  if (!ring_telemetry_.empty()) {
    for (std::size_t r = 0; r < config_.rings; ++r) {
      table_->holders(r, shard.holder_scratch);
      ring_telemetry_[r]->observe(0.0, shard.holder_scratch);
    }
  }
  // Kick: every node broadcasts its initial state, staggered over the
  // first few hundred microseconds to spread the frame burst. The kick
  // also arms the ring's refresh timer.
  for (std::size_t r = 0; r < config_.rings; ++r) {
    shard.wheel.schedule_at(1 + (r % 256), kick_cookie(r));
  }
  for (std::uint64_t t = 0; t <= end; ++t) {
    for (;;) {
      shard.fired.clear();
      shard.wheel.advance_to(t, shard.fired);
      if (shard.fired.empty()) break;
      for (const std::uint64_t cookie : shard.fired) {
        const std::uint64_t kind = cookie & 3;
        const std::size_t value = static_cast<std::size_t>(cookie >> 2);
        switch (kind) {
          case kCookieKick: {
            fire_kick(shard, value, t);
            break;
          }
          case kCookieRefresh: {
            fire_refresh(shard, value, t);
            break;
          }
          default: {  // kCookieDelivery
            const wire::Bytes frame_bytes = shard.take_slot(value);
            const auto frame = wire::decode_frame_any(frame_bytes);
            if (!frame) {
              // Injected corruption, rejected by checksum — exactly what
              // a real receiver does.
              ++shard.rejected;
              break;
            }
            if (frame->version != wire::kVersion2 ||
                frame->ring_id >= config_.rings) {
              if (frame->version != wire::kVersion2) ++shard.wrong_version;
              ++shard.rejected;
              break;
            }
            shard.rebroadcast.clear();
            process_frame(frame->ring_id, frame->payload, frame->sender, t,
                          shard.rebroadcast);
            for (const std::uint32_t node : shard.rebroadcast) {
              broadcast_node(frame->ring_id, node, t);
            }
            break;
          }
        }
      }
    }
  }
  virt_ = std::make_unique<VirtualState>();
  virt_->now_us = end;
}

// --- udp transport --------------------------------------------------------

void MultiRingReactor::udp_shard_main(Shard& shard,
                                      std::uint64_t deadline_us) {
  const auto epoch = std::chrono::steady_clock::now();
  auto now_us = [&] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
  };
  const auto refresh =
      static_cast<std::uint64_t>(config_.refresh_interval.count());
  const std::size_t nshards = shards_.size();

  // recvmmsg scaffolding, preallocated once per shard.
  std::vector<std::array<std::uint8_t, kRecvBuffer>> buffers(kBatchMessages);
  std::vector<iovec> iovecs(kBatchMessages);
  std::vector<mmsghdr> messages(kBatchMessages);
  for (unsigned m = 0; m < kBatchMessages; ++m) {
    iovecs[m] = {buffers[m].data(), buffers[m].size()};
    std::memset(&messages[m], 0, sizeof(mmsghdr));
    messages[m].msg_hdr.msg_iov = &iovecs[m];
    messages[m].msg_hdr.msg_iovlen = 1;
  }
  std::vector<iovec> send_iovecs(kBatchMessages);
  std::vector<mmsghdr> send_messages(kBatchMessages);

  auto flush_sends = [&] {
    std::size_t next = 0;
    while (next < shard.send_spans.size()) {
      const unsigned batch = static_cast<unsigned>(std::min<std::size_t>(
          kBatchMessages, shard.send_spans.size() - next));
      for (unsigned m = 0; m < batch; ++m) {
        const auto [offset, length] = shard.send_spans[next + m];
        send_iovecs[m] = {shard.send_arena.data() + offset, length};
        std::memset(&send_messages[m], 0, sizeof(mmsghdr));
        send_messages[m].msg_hdr.msg_name = &shard.self_addr;
        send_messages[m].msg_hdr.msg_namelen = sizeof(shard.self_addr);
        send_messages[m].msg_hdr.msg_iov = &send_iovecs[m];
        send_messages[m].msg_hdr.msg_iovlen = 1;
      }
      const int sent = ::sendmmsg(shard.fd, send_messages.data(), batch, 0);
      if (sent < 0) {
        if (errno == EINTR) continue;
        // Kernel send queue full (or worse): drop the rest rather than
        // block the event loop; the refresh machinery repairs the loss
        // and the counter reports it.
        shard.send_errors += shard.send_spans.size() - next;
        break;
      }
      next += static_cast<std::size_t>(sent);
    }
    shard.send_arena.clear();
    shard.send_spans.clear();
  };

  // Initial broadcasts ride staggered kick timers: spreading the kicks
  // over at least a refresh interval (longer for huge shards) turns the
  // startup burst into a paced trickle the receive path can absorb.
  const std::size_t shard_rings = (config_.rings - shard.id + nshards - 1) /
                                  nshards;
  const std::uint64_t kick_window =
      std::max<std::uint64_t>(refresh, shard_rings * 10);
  for (std::size_t r = shard.id; r < config_.rings; r += nshards) {
    shard.wheel.schedule_at(1 + ((r / nshards) * 10) % kick_window,
                            kick_cookie(r));
  }

  epoll_event events[4];
  while (!stop_.load(std::memory_order_relaxed)) {
    const std::uint64_t t = now_us();
    if (t >= deadline_us) break;
    // Drain due timers into the repair queue, then serve only a budget of
    // them this iteration: repair (kick/refresh) broadcasts are paced at
    // the rate the loop actually absorbs, instead of a thundering herd of
    // stalled rings monopolizing the CPU that receives need.
    shard.fired.clear();
    shard.wheel.advance_to(t, shard.fired);
    for (const std::uint64_t cookie : shard.fired) {
      shard.repair_queue.push_back(cookie);
    }
    constexpr std::size_t kRepairBudget = 16;
    for (std::size_t served = 0;
         served < kRepairBudget && shard.repair_head < shard.repair_queue.size();
         ++served) {
      const std::uint64_t cookie = shard.repair_queue[shard.repair_head++];
      const std::size_t r = static_cast<std::size_t>(cookie >> 2);
      if ((cookie & 3) == kCookieKick) {
        fire_kick(shard, r, t);
      } else {
        fire_refresh(shard, r, t);
      }
    }
    if (shard.repair_head >= shard.repair_queue.size()) {
      shard.repair_queue.clear();
      shard.repair_head = 0;
    }
    flush_sends();

    const bool repairs_pending = shard.repair_head < shard.repair_queue.size();
    const int ready =
        ::epoll_wait(shard.epoll_fd, events, 4, repairs_pending ? 0 : 1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    bool socket_ready = false;
    for (int e = 0; e < ready; ++e) {
      if (events[e].data.fd == shard.event_fd) {
        std::uint64_t tick = 0;
        [[maybe_unused]] const ssize_t got =
            ::read(shard.event_fd, &tick, sizeof(tick));
      } else if (events[e].data.fd == shard.fd) {
        socket_ready = true;
      }
    }
    if (!socket_ready) continue;
    // Drain in bounded rounds so timers keep firing under load.
    for (int round = 0; round < 8; ++round) {
      const int got =
          ::recvmmsg(shard.fd, messages.data(), kBatchMessages, 0, nullptr);
      if (got < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN: drained
      }
      const std::uint64_t rt = now_us();
      for (int m = 0; m < got; ++m) {
        const std::size_t len = messages[m].msg_len;
        if (len == 0 || len > kRecvBuffer) {
          ++shard.rejected;
          continue;
        }
        const auto frame = wire::decode_frame_any(
            wire::ByteView(buffers[static_cast<std::size_t>(m)].data(), len));
        if (!frame) {
          ++shard.rejected;
          continue;
        }
        if (frame->version != wire::kVersion2) {
          ++shard.wrong_version;
          ++shard.rejected;
          continue;
        }
        if (frame->ring_id >= config_.rings ||
            frame->ring_id % nshards != shard.id) {
          ++shard.rejected;  // misrouted or garbage ring id
          continue;
        }
        shard.rebroadcast.clear();
        process_frame(frame->ring_id, frame->payload, frame->sender, rt,
                      shard.rebroadcast);
        for (const std::uint32_t node : shard.rebroadcast) {
          broadcast_node(frame->ring_id, node, rt);
        }
      }
      flush_sends();
      if (static_cast<unsigned>(got) < kBatchMessages) break;
    }
  }
}

void MultiRingReactor::run_udp(std::chrono::microseconds duration) {
  const std::size_t nshards = std::min(config_.shards, config_.rings);
  shards_.clear();
  for (std::size_t s = 0; s < nshards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->id = s;
    // Big buffers: one shard socket queues frames for thousands of rings.
    shard->fd = make_loopback_udp_socket(shard->port, 4 * 1024 * 1024,
                                         4 * 1024 * 1024);
    set_nonblocking(shard->fd);
    shard->self_addr = loopback_address(shard->port);
    shard->epoll_fd = ::epoll_create1(0);
    SSR_REQUIRE(shard->epoll_fd >= 0, "epoll_create1 failed");
    shard->event_fd = ::eventfd(0, EFD_NONBLOCK);
    SSR_REQUIRE(shard->event_fd >= 0, "eventfd failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = shard->fd;
    SSR_REQUIRE(
        ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->fd, &ev) == 0,
        "epoll_ctl(socket) failed");
    ev.data.fd = shard->event_fd;
    SSR_REQUIRE(::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->event_fd,
                            &ev) == 0,
                "epoll_ctl(eventfd) failed");
    shards_.push_back(std::move(shard));
  }
  stop_.store(false);
  const auto deadline = static_cast<std::uint64_t>(duration.count());
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->thread =
        std::thread([this, s, deadline] { udp_shard_main(*s, deadline); });
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  for (auto& shard : shards_) {
    kernel_rx_drops_ += socket_kernel_drops(shard->fd);
    ::close(shard->fd);
    ::close(shard->epoll_fd);
    ::close(shard->event_fd);
    shard->fd = shard->epoll_fd = shard->event_fd = -1;
  }
}

// --- entry point and reporting -------------------------------------------

ReactorReport MultiRingReactor::run(std::chrono::microseconds duration) {
  SSR_REQUIRE(!ran_, "a MultiRingReactor instance runs once");
  ran_ = true;
  ran_duration_us_ = static_cast<double>(duration.count());
  if (config_.transport == ReactorTransport::kVirtual) {
    run_virtual(duration);
  } else {
    run_udp(duration);
  }
  for (auto& telemetry : ring_telemetry_) {
    telemetry->finish(ran_duration_us_);
  }
  return make_report(ran_duration_us_);
}

ReactorReport MultiRingReactor::make_report(double duration_us) {
  ReactorReport report;
  report.rings = config_.rings;
  report.nodes = config_.nodes;
  report.shards = shards_.size();
  report.duration_us = duration_us;
  for (std::size_t r = 0; r < config_.rings; ++r) {
    const RingCounters& c = table_->counters(r);
    report.frames_sent += c.frames_sent;
    report.frames_dropped += c.frames_dropped;
    report.frames_duplicated += c.frames_duplicated;
    report.frames_reordered += c.frames_reordered;
    report.frames_corrupted += c.frames_corrupted;
    report.frames_received += c.frames_received;
    report.frames_rejected += c.frames_rejected;
    report.send_errors += c.send_errors;
    report.rule_executions += c.rule_executions;
    report.crash_restarts += c.crash_restarts;
    report.refresh_broadcasts += c.refresh_broadcasts;
    report.handovers += c.handovers;
    if (table_->is_legitimate(r)) ++report.rings_legitimate;
    // "Live token": someone holds right now, or a holder gain happened
    // within the last two refresh intervals. Dijkstra-style rings consume
    // the token inside the very delivery that grants it, so the holder
    // bit is transient — recency of the last gain is the liveness signal.
    const std::uint64_t last_gain = table_->last_handover_us(r);
    const double refresh_us =
        static_cast<double>(config_.refresh_interval.count());
    const bool token_live =
        table_->holder_mask(r) != 0 ||
        (last_gain != std::numeric_limits<std::uint64_t>::max() &&
         duration_us - static_cast<double>(last_gain) <= 2.0 * refresh_us);
    if (token_live) ++report.rings_with_holder;
  }
  for (const auto& shard : shards_) {
    report.frames_rejected += shard->rejected;
    report.send_errors += shard->send_errors;
    latency_.merge(shard->latency);
  }
  report.kernel_rx_drops = kernel_rx_drops_;
  if (duration_us > 0.0) {
    report.handovers_per_sec =
        static_cast<double>(report.handovers) * 1e6 / duration_us;
  }
  report.p50_us = latency_.quantile(0.50);
  report.p99_us = latency_.quantile(0.99);
  report.p999_us = latency_.quantile(0.999);
  return report;
}

Json MultiRingReactor::telemetry_json(const ReactorReport& report) const {
  Json out = Json::object();
  out.set("schema", "ssr-multiring-telemetry-v1");
  Json cfg = Json::object();
  cfg.set("rings", config_.rings);
  cfg.set("nodes", config_.nodes);
  cfg.set("shards", report.shards);
  cfg.set("protocol", config_.mixed ? "mixed" : to_string(config_.protocol));
  cfg.set("transport", to_string(config_.transport));
  cfg.set("refresh_us", config_.refresh_interval.count());
  cfg.set("seed", config_.seed);
  cfg.set("fault_plan", config_.fault_plan.describe());
  out.set("config", std::move(cfg));

  Json agg = Json::object();
  agg.set("duration_us", report.duration_us);
  agg.set("handovers", report.handovers);
  agg.set("handovers_per_sec", report.handovers_per_sec);
  agg.set("p50_us", report.p50_us);
  agg.set("p99_us", report.p99_us);
  agg.set("p999_us", report.p999_us);
  agg.set("frames_sent", report.frames_sent);
  agg.set("frames_dropped", report.frames_dropped);
  agg.set("frames_received", report.frames_received);
  agg.set("frames_rejected", report.frames_rejected);
  agg.set("send_errors", report.send_errors);
  agg.set("kernel_rx_drops", report.kernel_rx_drops);
  agg.set("rule_executions", report.rule_executions);
  agg.set("crash_restarts", report.crash_restarts);
  agg.set("refresh_broadcasts", report.refresh_broadcasts);
  agg.set("rings_legitimate", report.rings_legitimate);
  agg.set("rings_with_holder", report.rings_with_holder);
  out.set("aggregate", std::move(agg));

  Json rings = Json::array();
  for (std::size_t r = 0; r < config_.rings; ++r) {
    const RingCounters& c = table_->counters(r);
    Json j = Json::object();
    j.set("ring", r);
    j.set("protocol", to_string(table_->protocol(r)));
    j.set("handovers", c.handovers);
    j.set("rule_executions", c.rule_executions);
    j.set("frames_sent", c.frames_sent);
    j.set("frames_received", c.frames_received);
    j.set("frames_rejected", c.frames_rejected);
    j.set("crash_restarts", c.crash_restarts);
    j.set("legitimate", table_->is_legitimate(r));
    j.set("holders", std::popcount(table_->holder_mask(r)));
    if (!ring_telemetry_.empty()) {
      j.set("telemetry", ring_telemetry_[r]->to_json());
    }
    rings.push(std::move(j));
  }
  out.set("rings", std::move(rings));
  return out;
}

}  // namespace ssr::runtime
