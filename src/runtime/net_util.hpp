// Shared UDP socket plumbing for the message-passing runtimes (UdpSsrRing
// and the MultiRingReactor): loopback addressing, explicit kernel buffer
// sizing, and the SK_MEMINFO drop counter.
//
// Why explicit buffers: the runtimes previously ran on whatever
// net.core.rmem_default happened to be, so a bursty ring silently lost
// datagrams to receive-queue overflow and the loss was indistinguishable
// from injected faults. Sizing the buffers explicitly makes the capacity a
// stated part of the experiment, and SK_MEMINFO_DROPS makes the remaining
// overflow *observable*: it is reported as kernel_rx_drops in telemetry
// instead of vanishing.
#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>

#if defined(__linux__)
#include <linux/sock_diag.h>  // SK_MEMINFO_DROPS
#endif

#include "util/assert.hpp"

namespace ssr::runtime {

/// Default kernel buffer request for ring sockets. 256 KiB holds ~16k
/// minimal frames per direction — far beyond any burst a single ring
/// produces, and small enough that even 64 multiplexed shard sockets stay
/// in the low tens of MiB.
inline constexpr int kDefaultSocketBuffer = 256 * 1024;

inline sockaddr_in loopback_address(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

/// Requests explicit receive/send buffer sizes. The kernel may clamp to
/// net.core.{r,w}mem_max (and doubles the value for bookkeeping); the
/// point is that the capacity is *chosen*, not inherited.
inline void set_socket_buffers(int fd, int rcvbuf = kDefaultSocketBuffer,
                               int sndbuf = kDefaultSocketBuffer) {
  SSR_REQUIRE(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                           sizeof(rcvbuf)) == 0,
              "failed to set SO_RCVBUF");
  SSR_REQUIRE(::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf,
                           sizeof(sndbuf)) == 0,
              "failed to set SO_SNDBUF");
}

/// Creates a UDP socket bound to an ephemeral loopback port with explicit
/// buffers; returns the fd and writes the bound port to @p port.
inline int make_loopback_udp_socket(std::uint16_t& port,
                                    int rcvbuf = kDefaultSocketBuffer,
                                    int sndbuf = kDefaultSocketBuffer) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  SSR_REQUIRE(fd >= 0, "failed to create UDP socket");
  set_socket_buffers(fd, rcvbuf, sndbuf);
  sockaddr_in addr = loopback_address(0);
  SSR_REQUIRE(
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "failed to bind UDP socket");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  SSR_REQUIRE(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
      "failed to query bound port");
  port = ntohs(bound.sin_port);
  return fd;
}

inline void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  SSR_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
              "failed to set O_NONBLOCK");
}

/// Datagrams this socket's receive queue dropped for lack of buffer space
/// (SK_MEMINFO_DROPS), or 0 where SO_MEMINFO is unavailable. Reading is a
/// plain getsockopt and safe from any thread.
inline std::uint64_t socket_kernel_drops(int fd) {
// SO_MEMINFO is a macro; SK_MEMINFO_* are enum constants from
// <linux/sock_diag.h>, so they must NOT appear in #if defined() tests.
#if defined(__linux__) && defined(SO_MEMINFO)
  std::uint32_t meminfo[SK_MEMINFO_VARS] = {};
  socklen_t len = sizeof(meminfo);
  if (::getsockopt(fd, SOL_SOCKET, SO_MEMINFO, meminfo, &len) != 0) {
    return 0;
  }
  if (len < (SK_MEMINFO_DROPS + 1) * sizeof(std::uint32_t)) return 0;
  return meminfo[SK_MEMINFO_DROPS];
#else
  (void)fd;
  return 0;
#endif
}

}  // namespace ssr::runtime
