#include "runtime/udp_ring.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <optional>

#include "runtime/net_util.hpp"
#include "stabilizing/protocol.hpp"
#include "util/assert.hpp"
#include "wire/codec.hpp"

namespace ssr::runtime {

void UdpParams::validate() const {
  SSR_REQUIRE(refresh_interval.count() > 0, "refresh interval must be positive");
  SSR_REQUIRE(corruption_probability >= 0.0 && corruption_probability < 1.0,
              "corruption probability must be in [0, 1)");
  SSR_REQUIRE(drop_probability >= 0.0 && drop_probability < 1.0,
              "drop probability must be in [0, 1)");
}

UdpSsrRing::UdpSsrRing(core::SsrMinRing ring, core::SsrConfig initial,
                       UdpParams params)
    : ring_(ring),
      params_(params),
      initial_(std::move(initial)),
      board_(initial_.size() > 0 ? initial_.size() : 1),
      injector_(params_.effective_plan(),
                initial_.size() > 1 ? initial_.size() : 2) {
  params_.validate();
  SSR_REQUIRE(initial_.size() == ring_.size(),
              "configuration size must equal ring size");
  const std::size_t n = initial_.size();

  sockets_.resize(n, -1);
  ports_.resize(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    // Explicit kernel buffers: queue capacity is part of the experiment,
    // not inherited from net.core defaults (see net_util.hpp).
    const int fd = make_loopback_udp_socket(ports_[i]);
    sockets_[i] = fd;
    // Receive timeout doubles as the refresh timer.
    timeval tv{};
    const auto usec = params_.refresh_interval.count();
    tv.tv_sec = static_cast<time_t>(usec / 1000000);
    tv.tv_usec = static_cast<suseconds_t>(usec % 1000000);
    SSR_REQUIRE(::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) ==
                    0,
                "failed to set socket timeout");
  }

  counters_ = std::make_unique<PerNodeCounters[]>(n);
  publish_initial_holders();
}

UdpSsrRing::~UdpSsrRing() {
  stop();
  for (int fd : sockets_) {
    if (fd >= 0) ::close(fd);
  }
}

void UdpSsrRing::publish_initial_holders() {
  const std::size_t n = initial_.size();
  board_.publish_batch([&](auto&& set) {
    for (std::size_t i = 0; i < n; ++i) {
      const bool h =
          ring_.holds_primary(i, initial_[i],
                              initial_[stab::pred_index(i, n)]) ||
          ring_.holds_secondary(initial_[i], initial_[stab::succ_index(i, n)]);
      set(i, h);
    }
  });
}

double UdpSsrRing::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint64_t UdpSsrRing::sum_counter(
    std::atomic<std::uint64_t> PerNodeCounters::* member) const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < initial_.size(); ++i) {
    total += (counters_[i].*member).load(std::memory_order_relaxed);
  }
  return total;
}

void UdpSsrRing::start() {
  if (running_) return;
  running_ = true;
  stopping_.store(false);
  injector_.rearm();
  epoch_ = std::chrono::steady_clock::now();
  publish_initial_holders();
  // Drain any frames left over from a previous run so the restart does not
  // act on stale states.
  std::array<std::uint8_t, 512> scratch{};
  for (int fd : sockets_) {
    while (::recv(fd, scratch.data(), scratch.size(), MSG_DONTWAIT) >= 0) {
    }
  }
  Rng seeder(params_.seed);
  for (std::size_t i = 0; i < sockets_.size(); ++i) {
    const std::uint64_t node_seed = seeder();
    threads_.emplace_back(
        [this, i, node_seed](std::stop_token) { node_main(i, node_seed); });
  }
}

void UdpSsrRing::stop() {
  if (!running_) return;
  stopping_.store(true);
  threads_.clear();  // jthread joins (loops observe stopping_ within one timeout)
  running_ = false;
}

HolderSnapshot UdpSsrRing::sample(int max_retries) const {
  return board_.sample(max_retries);
}

SamplerReport UdpSsrRing::observe(std::chrono::milliseconds duration,
                                  std::chrono::microseconds interval,
                                  Telemetry* telemetry) {
  SSR_REQUIRE(running_, "call start() before observe()");
  if (telemetry != nullptr) telemetry->set_plan(injector_.plan());
  SamplerReport report = sample_holders(
      [this] { return sample(); }, [this] { return now_us(); }, duration,
      interval, telemetry);
  report.messages_sent = sum_counter(&PerNodeCounters::sent);
  report.messages_lost = sum_counter(&PerNodeCounters::dropped);
  report.messages_rejected = sum_counter(&PerNodeCounters::rejected);
  report.send_errors = sum_counter(&PerNodeCounters::send_errors);
  report.rule_executions = sum_counter(&PerNodeCounters::rules);
  if (telemetry != nullptr) fill_node_telemetry(*telemetry);
  return report;
}

UdpStats UdpSsrRing::stats() const {
  UdpStats s;
  s.frames_sent = sum_counter(&PerNodeCounters::sent);
  s.frames_dropped = sum_counter(&PerNodeCounters::dropped);
  s.frames_duplicated = sum_counter(&PerNodeCounters::duplicated);
  s.frames_reordered = sum_counter(&PerNodeCounters::reordered);
  s.frames_corrupted = sum_counter(&PerNodeCounters::corrupted);
  s.frames_received = sum_counter(&PerNodeCounters::received);
  s.frames_rejected = sum_counter(&PerNodeCounters::rejected);
  s.frames_wrong_version = sum_counter(&PerNodeCounters::wrong_version);
  s.send_errors = sum_counter(&PerNodeCounters::send_errors);
  s.rule_executions = sum_counter(&PerNodeCounters::rules);
  s.crash_restarts = sum_counter(&PerNodeCounters::crashes);
  for (int fd : sockets_) s.kernel_rx_drops += socket_kernel_drops(fd);
  return s;
}

void UdpSsrRing::fill_node_telemetry(Telemetry& telemetry) const {
  std::vector<NodeTelemetry> counters(initial_.size());
  for (std::size_t i = 0; i < initial_.size(); ++i) {
    const PerNodeCounters& c = counters_[i];
    NodeTelemetry& t = counters[i];
    t.frames_sent = c.sent.load(std::memory_order_relaxed);
    t.frames_dropped = c.dropped.load(std::memory_order_relaxed);
    t.frames_duplicated = c.duplicated.load(std::memory_order_relaxed);
    t.frames_reordered = c.reordered.load(std::memory_order_relaxed);
    t.frames_corrupted = c.corrupted.load(std::memory_order_relaxed);
    t.frames_received = c.received.load(std::memory_order_relaxed);
    t.frames_rejected = c.rejected.load(std::memory_order_relaxed);
    t.frames_wrong_version = c.wrong_version.load(std::memory_order_relaxed);
    t.kernel_rx_drops = socket_kernel_drops(sockets_[i]);
    t.send_errors = c.send_errors.load(std::memory_order_relaxed);
    t.rule_executions = c.rules.load(std::memory_order_relaxed);
    t.crash_restarts = c.crashes.load(std::memory_order_relaxed);
  }
  telemetry.set_node_counters(std::move(counters));
}

void UdpSsrRing::node_main(std::size_t i, std::uint64_t seed) {
  const std::size_t n = sockets_.size();
  const std::size_t pred = stab::pred_index(i, n);
  const std::size_t succ = stab::succ_index(i, n);
  const sockaddr_in pred_addr = loopback_address(ports_[pred]);
  const sockaddr_in succ_addr = loopback_address(ports_[succ]);
  const int fd = sockets_[i];
  Rng rng(seed);
  PerNodeCounters& counters = counters_[i];
  const bool scripted = !injector_.plan().windows.empty();
  const auto pause_slice =
      std::min(params_.refresh_interval, std::chrono::microseconds{200});

  core::SsrState self = initial_[i];
  core::SsrState cache_pred = initial_[pred];
  core::SsrState cache_succ = initial_[succ];
  bool holding = ring_.holds_primary(i, self, cache_pred) ||
                 ring_.holds_secondary(self, cache_succ);
  // Reorder hold slots, one per outgoing link: a held frame is transmitted
  // after the next frame on the same link, so it arrives stale.
  std::optional<wire::Bytes> held_to_pred;
  std::optional<wire::Bytes> held_to_succ;

  auto publish = [&] {
    const bool h = ring_.holds_primary(i, self, cache_pred) ||
                   ring_.holds_secondary(self, cache_succ);
    if (h != holding) {
      board_.publish(i, h);
      holding = h;
    }
  };
  auto transmit = [&](const sockaddr_in& addr, const wire::Bytes& frame) {
    if (::sendto(fd, frame.data(), frame.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)) < 0) {
      // The kernel refused the datagram (full buffer, ...): this frame was
      // never on the wire, so it must not count as sent.
      counters.send_errors.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters.sent.fetch_add(1, std::memory_order_relaxed);
    }
  };
  auto send_to = [&](std::size_t target, const sockaddr_in& addr,
                     std::optional<wire::Bytes>& held) {
    const FrameFate fate = injector_.on_send(i, target, now_us(), rng);
    if (fate.drop) {
      counters.dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    wire::Bytes frame = wire::encode_state_frame(i, self);
    if (fate.corrupt_bits > 0) {
      // Real corruption: the frame goes out with flipped bits and the
      // receiver's CRC does the rejecting.
      wire::corrupt_bits(frame, rng, fate.corrupt_bits);
      counters.corrupted.fetch_add(1, std::memory_order_relaxed);
    }
    if (fate.reorder && !held.has_value()) {
      held = std::move(frame);
      counters.reordered.fetch_add(1, std::memory_order_relaxed);
      return;  // transmitted after the next frame on this link
    }
    transmit(addr, frame);
    if (fate.duplicate) {
      transmit(addr, frame);
      counters.duplicated.fetch_add(1, std::memory_order_relaxed);
    }
    if (held.has_value()) {
      transmit(addr, *held);
      held.reset();
    }
  };
  auto broadcast = [&] {
    // Predecessor first (see ThreadedRing's ordering comment).
    send_to(pred, pred_addr, held_to_pred);
    send_to(succ, succ_addr, held_to_succ);
  };

  broadcast();

  std::array<std::uint8_t, 512> buffer{};
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (scripted) {
      const double t = now_us();
      if (injector_.take_crash(i, t)) {
        // Crash with state reset: protocol state and caches are wiped; the
        // node rejoins from the default state when the window ends.
        self = core::SsrState{};
        cache_pred = core::SsrState{};
        cache_succ = core::SsrState{};
        counters.crashes.fetch_add(1, std::memory_order_relaxed);
        publish();
      }
      if (injector_.node_down(i, t)) {
        // Radio off: discard whatever arrived, then idle in short slices
        // so stop() and the window end stay responsive.
        while (::recv(fd, buffer.data(), buffer.size(), MSG_DONTWAIT) >= 0) {
        }
        std::this_thread::sleep_for(pause_slice);
        continue;
      }
    }
    // Blocking receive with the refresh timeout. MSG_TRUNC makes recv()
    // return the real datagram length so kernel-truncated frames are
    // detectable instead of being parsed as garbage prefixes.
    bool timed_out = false;
    ssize_t first = -1;
    for (;;) {
      first = ::recv(fd, buffer.data(), buffer.size(), MSG_TRUNC);
      if (first >= 0) break;
      if (errno == EINTR) {
        if (stopping_.load(std::memory_order_relaxed)) break;
        continue;  // signal, not a timeout: retry the receive
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        timed_out = true;  // the refresh timer fired
        break;
      }
      // Unexpected socket error: not a timer tick. Back off briefly so a
      // persistent error cannot busy-spin the thread.
      std::this_thread::sleep_for(pause_slice);
      break;
    }
    if (stopping_.load(std::memory_order_relaxed)) break;
    bool any = false;
    std::optional<core::SsrState> newest_pred;
    std::optional<core::SsrState> newest_succ;
    auto ingest = [&](ssize_t len) {
      if (len < 0) return;
      if (len == 0 || static_cast<std::size_t>(len) > buffer.size()) {
        // Zero-length datagram, or a frame the kernel truncated to fit the
        // buffer: either way not a parseable frame.
        counters.rejected.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      wire::DecodeError error{};
      const auto frame = wire::decode_frame(
          wire::ByteView(buffer.data(), static_cast<std::size_t>(len)),
          &error);
      if (!frame) {
        counters.rejected.fetch_add(1, std::memory_order_relaxed);
        // A checksum-valid frame with a newer wire version is misrouted
        // multiring traffic, not noise — count it by name so a mixed
        // deployment can see it. (Still rejected: a single-ring node has
        // no ring table to dispatch on.)
        if (error == wire::DecodeError::kBadVersion &&
            len >= 2 && buffer[1] == wire::kVersion2 &&
            wire::decode_frame_any(
                wire::ByteView(buffer.data(), static_cast<std::size_t>(len)))
                .has_value()) {
          counters.wrong_version.fetch_add(1, std::memory_order_relaxed);
        }
        return;
      }
      const auto state = wire::decode_ssr_state(frame->payload);
      if (!state || state->x >= ring_.modulus()) {
        counters.rejected.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (frame->sender == pred) {
        newest_pred = *state;
      } else if (frame->sender == succ) {
        newest_succ = *state;
      } else {
        counters.rejected.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      counters.received.fetch_add(1, std::memory_order_relaxed);
      any = true;
    };
    ingest(first);
    // ...then drain everything already queued, keeping the newest valid
    // frame per neighbor (latest-value semantics).
    for (;;) {
      const ssize_t more =
          ::recv(fd, buffer.data(), buffer.size(), MSG_DONTWAIT | MSG_TRUNC);
      if (more < 0) {
        if (errno == EINTR) continue;
        break;
      }
      ingest(more);
    }
    if (newest_pred) cache_pred = *newest_pred;
    if (newest_succ) cache_succ = *newest_succ;

    if (!any) {
      if (timed_out) {
        // Pure timeout: refresh broadcast repairs lost/corrupted frames.
        broadcast();
      }
      // Rejected-only wakeups are NOT timer ticks: rebroadcasting on every
      // garbage frame would couple the refresh rate to an attacker's (or a
      // noisy link's) send rate.
      continue;
    }
    const int rule = ring_.enabled_rule(i, self, cache_pred, cache_succ);
    bool changed = false;
    if (rule != stab::kDisabled) {
      self = ring_.apply(i, rule, self, cache_pred, cache_succ);
      counters.rules.fetch_add(1, std::memory_order_relaxed);
      changed = true;
    }
    publish();
    if (changed) broadcast();
  }
}

}  // namespace ssr::runtime
