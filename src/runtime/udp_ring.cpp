#include "runtime/udp_ring.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <optional>

#include "stabilizing/protocol.hpp"
#include "util/assert.hpp"
#include "wire/codec.hpp"

namespace ssr::runtime {

void UdpParams::validate() const {
  SSR_REQUIRE(refresh_interval.count() > 0, "refresh interval must be positive");
  SSR_REQUIRE(corruption_probability >= 0.0 && corruption_probability < 1.0,
              "corruption probability must be in [0, 1)");
  SSR_REQUIRE(drop_probability >= 0.0 && drop_probability < 1.0,
              "drop probability must be in [0, 1)");
}

namespace {

sockaddr_in loopback_address(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

UdpSsrRing::UdpSsrRing(core::SsrMinRing ring, core::SsrConfig initial,
                       UdpParams params)
    : ring_(ring), params_(params), initial_(std::move(initial)) {
  params_.validate();
  SSR_REQUIRE(initial_.size() == ring_.size(),
              "configuration size must equal ring size");
  const std::size_t n = initial_.size();

  sockets_.resize(n, -1);
  ports_.resize(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    SSR_REQUIRE(fd >= 0, "failed to create UDP socket");
    sockets_[i] = fd;
    sockaddr_in addr = loopback_address(0);
    SSR_REQUIRE(::bind(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0,
                "failed to bind UDP socket");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    SSR_REQUIRE(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                              &len) == 0,
                "failed to query bound port");
    ports_[i] = ntohs(bound.sin_port);
    // Receive timeout doubles as the refresh timer.
    timeval tv{};
    const auto usec = params_.refresh_interval.count();
    tv.tv_sec = static_cast<time_t>(usec / 1000000);
    tv.tv_usec = static_cast<suseconds_t>(usec % 1000000);
    SSR_REQUIRE(::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) ==
                    0,
                "failed to set socket timeout");
  }

  holders_ = std::make_unique<std::atomic<std::uint8_t>[]>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool h =
        ring_.holds_primary(i, initial_[i],
                            initial_[stab::pred_index(i, n)]) ||
        ring_.holds_secondary(initial_[i], initial_[stab::succ_index(i, n)]);
    holders_[i].store(h ? 1 : 0, std::memory_order_seq_cst);
  }
}

UdpSsrRing::~UdpSsrRing() {
  stop();
  for (int fd : sockets_) {
    if (fd >= 0) ::close(fd);
  }
}

void UdpSsrRing::start() {
  if (running_) return;
  running_ = true;
  stopping_.store(false);
  Rng seeder(params_.seed);
  for (std::size_t i = 0; i < sockets_.size(); ++i) {
    const std::uint64_t node_seed = seeder();
    threads_.emplace_back(
        [this, i, node_seed](std::stop_token) { node_main(i, node_seed); });
  }
}

void UdpSsrRing::stop() {
  if (!running_) return;
  stopping_.store(true);
  threads_.clear();  // jthread joins (loops observe stopping_ within one timeout)
  running_ = false;
}

HolderSnapshot UdpSsrRing::sample(int max_retries) const {
  HolderSnapshot snap;
  snap.holders.resize(sockets_.size());
  for (int attempt = 0; attempt < max_retries; ++attempt) {
    const std::uint64_t v1 = version_.load(std::memory_order_seq_cst);
    for (std::size_t i = 0; i < sockets_.size(); ++i) {
      snap.holders[i] = holders_[i].load(std::memory_order_seq_cst) != 0;
    }
    const std::uint64_t v2 = version_.load(std::memory_order_seq_cst);
    if (v1 == v2) {
      snap.consistent = true;
      return snap;
    }
  }
  snap.consistent = false;
  return snap;
}

SamplerReport UdpSsrRing::observe(std::chrono::milliseconds duration,
                                  std::chrono::microseconds interval) {
  SSR_REQUIRE(running_, "call start() before observe()");
  SamplerReport report;
  std::vector<bool> previous;
  const auto deadline = std::chrono::steady_clock::now() + duration;
  while (std::chrono::steady_clock::now() < deadline) {
    const HolderSnapshot snap = sample();
    ++report.samples;
    if (snap.consistent) {
      ++report.consistent_samples;
      std::size_t count = 0;
      for (bool b : snap.holders)
        if (b) ++count;
      if (count == 0) ++report.zero_holder_samples;
      report.min_holders = std::min(report.min_holders, count);
      report.max_holders = std::max(report.max_holders, count);
      if (!previous.empty() && previous != snap.holders) ++report.handovers;
      previous = snap.holders;
    }
    std::this_thread::sleep_for(interval);
  }
  report.messages_sent = frames_sent_.load(std::memory_order_relaxed);
  report.messages_lost = frames_dropped_.load(std::memory_order_relaxed) +
                         frames_rejected_.load(std::memory_order_relaxed);
  report.rule_executions = rule_execs_.load(std::memory_order_relaxed);
  if (report.min_holders == std::numeric_limits<std::size_t>::max()) {
    report.min_holders = 0;
  }
  return report;
}

UdpStats UdpSsrRing::stats() const {
  UdpStats s;
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.frames_dropped = frames_dropped_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.frames_rejected = frames_rejected_.load(std::memory_order_relaxed);
  s.rule_executions = rule_execs_.load(std::memory_order_relaxed);
  return s;
}

void UdpSsrRing::node_main(std::size_t i, std::uint64_t seed) {
  const std::size_t n = sockets_.size();
  const std::size_t pred = stab::pred_index(i, n);
  const std::size_t succ = stab::succ_index(i, n);
  const sockaddr_in pred_addr = loopback_address(ports_[pred]);
  const sockaddr_in succ_addr = loopback_address(ports_[succ]);
  const int fd = sockets_[i];
  Rng rng(seed);

  core::SsrState self = initial_[i];
  core::SsrState cache_pred = initial_[pred];
  core::SsrState cache_succ = initial_[succ];
  bool holding = holders_[i].load(std::memory_order_seq_cst) != 0;

  auto publish = [&] {
    const bool h = ring_.holds_primary(i, self, cache_pred) ||
                   ring_.holds_secondary(self, cache_succ);
    if (h != holding) {
      holders_[i].store(h ? 1 : 0, std::memory_order_seq_cst);
      version_.fetch_add(1, std::memory_order_seq_cst);
      holding = h;
    }
  };
  auto send_to = [&](const sockaddr_in& addr) {
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    if (rng.bernoulli(params_.drop_probability)) {
      frames_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    wire::Bytes frame = wire::encode_state_frame(i, self);
    if (rng.bernoulli(params_.corruption_probability)) {
      wire::corrupt_bits(frame, rng, 1);
    }
    // Best-effort datagram; a full buffer is just one more kind of loss.
    (void)::sendto(fd, frame.data(), frame.size(), 0,
                   reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  };
  auto broadcast = [&] {
    // Predecessor first (see ThreadedRing's ordering comment).
    send_to(pred_addr);
    send_to(succ_addr);
  };

  broadcast();

  std::array<std::uint8_t, 512> buffer{};
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Blocking receive (with the refresh timeout)...
    const ssize_t first =
        ::recv(fd, buffer.data(), buffer.size(), 0);
    if (stopping_.load(std::memory_order_relaxed)) break;
    bool any = false;
    std::optional<core::SsrState> newest_pred;
    std::optional<core::SsrState> newest_succ;
    auto ingest = [&](ssize_t len) {
      if (len <= 0) return;
      wire::DecodeError error{};
      const auto frame = wire::decode_frame(
          wire::ByteView(buffer.data(), static_cast<std::size_t>(len)),
          &error);
      if (!frame) {
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      const auto state = wire::decode_ssr_state(frame->payload);
      if (!state || state->x >= ring_.modulus()) {
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (frame->sender == pred) {
        newest_pred = *state;
      } else if (frame->sender == succ) {
        newest_succ = *state;
      } else {
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      any = true;
    };
    ingest(first);
    // ...then drain everything already queued, keeping the newest valid
    // frame per neighbor (latest-value semantics).
    for (;;) {
      const ssize_t more =
          ::recv(fd, buffer.data(), buffer.size(), MSG_DONTWAIT);
      if (more < 0) break;
      ingest(more);
    }
    if (newest_pred) cache_pred = *newest_pred;
    if (newest_succ) cache_succ = *newest_succ;

    if (!any) {
      // Pure timeout: refresh broadcast repairs lost/corrupted frames.
      broadcast();
      continue;
    }
    const int rule = ring_.enabled_rule(i, self, cache_pred, cache_succ);
    bool changed = false;
    if (rule != stab::kDisabled) {
      self = ring_.apply(i, rule, self, cache_pred, cache_succ);
      rule_execs_.fetch_add(1, std::memory_order_relaxed);
      changed = true;
    }
    publish();
    if (changed) broadcast();
  }
}

}  // namespace ssr::runtime
