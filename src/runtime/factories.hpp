// Ready-made threaded rings with the protocols' local-view token
// predicates wired in.
#pragma once

#include <memory>

#include "core/ssrmin.hpp"
#include "dijkstra/kstate.hpp"
#include "runtime/threaded_ring.hpp"

namespace ssr::runtime {

/// SSRmin on real threads — the graceful-handover runtime (Theorem 3's
/// guarantee holds for consistent sampler snapshots).
std::unique_ptr<ThreadedRing<core::SsrMinRing>> make_ssrmin_threaded(
    const core::SsrMinRing& ring, core::SsrConfig initial,
    RuntimeParams params);

/// Dijkstra's K-state ring on real threads — exhibits genuine zero-token
/// windows while a state update is in flight (Figure 11).
std::unique_ptr<ThreadedRing<dijkstra::KStateRing>> make_kstate_threaded(
    const dijkstra::KStateRing& ring, dijkstra::KStateConfig initial,
    RuntimeParams params);

}  // namespace ssr::runtime
