// Bounded multi-producer single-consumer channel used as the message link
// between node threads in the threaded runtime. Blocking pop with timeout
// (the CST refresh timer is implemented as the pop timeout); non-blocking
// push that drops the oldest message on overflow — a full inbox on a sensor
// node loses the *stalest* state update, which is the faithful behavior for
// a protocol whose messages carry full state (only the newest matters).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "util/assert.hpp"

namespace ssr::runtime {

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity) : capacity_(capacity) {
    SSR_REQUIRE(capacity > 0, "channel capacity must be positive");
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues a message. If the channel is full the oldest message is
  /// discarded. Returns false iff the channel is closed.
  bool push(T value) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      if (queue_.size() == capacity_) queue_.pop_front();
      queue_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Dequeues one message, waiting up to @p timeout. Returns nullopt on
  /// timeout or when the channel is closed and drained.
  std::optional<T> pop(std::chrono::microseconds timeout) {
    std::unique_lock lock(mutex_);
    cv_.wait_for(lock, timeout, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain then return
  /// nullopt.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace ssr::runtime
