#include "runtime/telemetry.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ssr::runtime {

Telemetry::Telemetry(std::size_t n)
    : n_(n), holder_time_us_(n + 1, 0.0) {
  SSR_REQUIRE(n >= 1, "telemetry needs at least one node");
}

void Telemetry::set_context(std::string runtime, std::string algorithm,
                            std::uint64_t seed) {
  runtime_ = std::move(runtime);
  algorithm_ = std::move(algorithm);
  seed_ = seed;
}

void Telemetry::set_plan(const FaultPlan& plan) {
  plan_spec_ = plan.describe();
  windows_ = plan.windows;
  window_outcomes_.assign(windows_.size(), WindowOutcome{});
}

void Telemetry::observe(double t_us, const std::vector<bool>& holders) {
  SSR_REQUIRE(!finished_, "observe() after finish()");
  SSR_REQUIRE(holders.size() == n_, "holder vector size mismatch");
  std::size_t count = 0;
  for (bool b : holders)
    if (b) ++count;
  const std::size_t bin = std::min(count, n_);

  if (!started_) {
    started_ = true;
    start_us_ = t_us;
    last_us_ = t_us;
    current_ = holders;
    current_count_ = count;
  } else {
    SSR_REQUIRE(t_us >= last_us_, "telemetry time went backwards");
    const double dt = t_us - last_us_;
    holder_time_us_[std::min(current_count_, n_)] += dt;
    observed_us_ += dt;
    last_us_ = t_us;
    if (holders != current_) ++handovers_;
    if (count == 0 && current_count_ > 0) ++zero_intervals_;
    current_ = holders;
    current_count_ = count;
  }
  min_holders_ = std::min(min_holders_, bin);
  max_holders_ = std::max(max_holders_, bin);

  // Fault-window recovery: first observation at/after a window's end with
  // at least one holder closes that window's recovery clock.
  for (std::size_t w = 0; w < windows_.size(); ++w) {
    if (!window_outcomes_[w].recovered && t_us >= windows_[w].end_us &&
        count >= 1) {
      window_outcomes_[w].recovered = true;
      window_outcomes_[w].time_to_recover_us =
          std::max(0.0, t_us - windows_[w].end_us);
    }
  }
}

void Telemetry::finish(double t_us) {
  if (finished_) return;
  if (started_ && t_us > last_us_) {
    const double dt = t_us - last_us_;
    holder_time_us_[std::min(current_count_, n_)] += dt;
    observed_us_ += dt;
    last_us_ = t_us;
  }
  finished_ = true;
}

void Telemetry::set_node_counters(std::vector<NodeTelemetry> counters) {
  SSR_REQUIRE(counters.size() == n_, "node counter vector size mismatch");
  node_counters_ = std::move(counters);
}

void Telemetry::set_aggregates(std::uint64_t messages_sent,
                               std::uint64_t messages_lost,
                               std::uint64_t deliveries,
                               std::uint64_t rule_executions) {
  has_aggregates_ = true;
  agg_sent_ = messages_sent;
  agg_lost_ = messages_lost;
  agg_deliveries_ = deliveries;
  agg_rules_ = rule_executions;
}

std::size_t Telemetry::min_holders() const {
  return min_holders_ == std::numeric_limits<std::size_t>::max()
             ? 0
             : min_holders_;
}

Json Telemetry::to_json() const {
  Json out = Json::object();
  out.set("schema", "ssr-telemetry-v1");
  out.set("runtime", runtime_);
  out.set("algorithm", algorithm_);
  out.set("seed", seed_);
  out.set("nodes", n_);
  out.set("fault_plan", plan_spec_);
  out.set("observed_us", observed_us_);
  Json hist = Json::array();
  for (double t : holder_time_us_) hist.push(t);
  out.set("holder_time_us", std::move(hist));
  out.set("zero_holder_dwell_us", holder_time_us_[0]);
  out.set("zero_intervals", zero_intervals_);
  out.set("min_holders", min_holders());
  out.set("max_holders", max_holders_);
  out.set("handovers", handovers_);
  if (has_aggregates_) {
    Json agg = Json::object();
    agg.set("messages_sent", agg_sent_);
    agg.set("messages_lost", agg_lost_);
    agg.set("deliveries", agg_deliveries_);
    agg.set("rule_executions", agg_rules_);
    out.set("aggregates", std::move(agg));
  }
  Json ws = Json::array();
  for (std::size_t w = 0; w < windows_.size(); ++w) {
    Json j = Json::object();
    j.set("kind", to_string(windows_[w].kind));
    j.set("begin_us", windows_[w].begin_us);
    j.set("end_us", windows_[w].end_us);
    j.set("recovered", window_outcomes_[w].recovered);
    j.set("time_to_recover_us", window_outcomes_[w].time_to_recover_us);
    ws.push(std::move(j));
  }
  out.set("fault_windows", std::move(ws));
  if (!node_counters_.empty()) {
    Json nodes = Json::array();
    for (const NodeTelemetry& c : node_counters_) {
      Json j = Json::object();
      j.set("frames_sent", c.frames_sent);
      j.set("frames_dropped", c.frames_dropped);
      j.set("frames_duplicated", c.frames_duplicated);
      j.set("frames_reordered", c.frames_reordered);
      j.set("frames_corrupted", c.frames_corrupted);
      j.set("frames_received", c.frames_received);
      j.set("frames_rejected", c.frames_rejected);
      j.set("frames_wrong_version", c.frames_wrong_version);
      j.set("kernel_rx_drops", c.kernel_rx_drops);
      j.set("send_errors", c.send_errors);
      j.set("rule_executions", c.rule_executions);
      j.set("crash_restarts", c.crash_restarts);
      nodes.push(std::move(j));
    }
    out.set("per_node", std::move(nodes));
  }
  return out;
}

std::string Telemetry::to_json_string(int indent) const {
  return to_json().dump(indent) + "\n";
}

}  // namespace ssr::runtime
