// MultiRingReactor: one event loop hosting hundreds of thousands of
// independent self-stabilizing rings over a handful of shared UDP sockets.
//
// The single-ring runtimes burn a thread per *node* (UdpSsrRing: n threads
// and n sockets for one ring). That topology caps an experiment at a few
// dozen rings per machine. The reactor inverts it: rings are partitioned
// across S shards (ring % S); each shard owns ONE nonblocking UDP socket,
// an epoll instance, a hierarchical timer wheel and the dense RingTable
// rows of its rings. All frames of a shard's rings travel through the
// shard's socket as v2 wire frames (ring-id in the header, destination
// node as the first payload varint), batched with recvmmsg/sendmmsg. Per
// ring there are no threads, no sockets and no heap objects on the hot
// path — just table rows and timer-wheel entries — which is what makes
// 100k+ rings per process tractable.
//
// Two transports share all of the protocol machinery:
//
//   * kVirtual — no sockets: frames are carried by timer-wheel entries on
//     a virtual microsecond clock, processed single-threaded in
//     deterministic order. A seeded virtual run is byte-reproducible
//     (telemetry JSON and all), which is what the multiring tests pin.
//     Frames still round-trip through the v2 codec, so the wire path is
//     exercised identically.
//   * kUdp — real loopback sockets, one shard thread per socket, epoll +
//     recvmmsg/sendmmsg, wall-clock fault windows, SK_MEMINFO drop
//     accounting. This is the benchmark transport.
//
// Fault injection reuses PR 3's machinery unchanged: one read-only
// FaultInjector decides per-frame fates (an empty plan consumes zero RNG
// draws), per-ring crash windows are tracked with a bitmask per ring, and
// per-ring Telemetry objects (optional) ingest holder transitions exactly
// like the single-ring samplers feed them.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "runtime/fault_plan.hpp"
#include "runtime/ring_table.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/timer_wheel.hpp"
#include "util/json.hpp"

namespace ssr::runtime {

enum class ReactorTransport : std::uint8_t {
  kVirtual,  ///< deterministic virtual clock, single-threaded
  kUdp,      ///< real loopback UDP, one thread per shard
};

struct ReactorConfig {
  std::size_t rings = 256;
  std::size_t nodes = 4;      ///< per ring; 3..64
  std::uint32_t modulus = 0;  ///< shared K; 0 = nodes + 1
  /// Protocol for every ring; kMixedCycle cycles ssrmin/kstate/dual.
  RingProtocolKind protocol = RingProtocolKind::kSsrMin;
  bool mixed = false;
  std::size_t shards = 1;  ///< reactor shards (threads in kUdp mode)
  /// Loss-recovery refresh: an idle ring rebroadcasts every node's state
  /// after this much inactivity (lazy timers — an active ring's timer
  /// never fires a broadcast).
  std::chrono::microseconds refresh_interval{5000};
  std::uint64_t seed = 1;
  FaultPlan fault_plan;
  ReactorTransport transport = ReactorTransport::kVirtual;
  RingStart start = RingStart::kRandom;
  /// Attach a full PR-3 Telemetry recorder to every ring (holder timeline,
  /// zero-dwell, per-window recovery). Costs ~300 B/ring — fine at test
  /// scale, off by default for 100k-ring benches.
  bool per_ring_telemetry = false;

  void validate() const;
};

/// Aggregate results of a reactor run.
struct ReactorReport {
  std::size_t rings = 0;
  std::size_t nodes = 0;
  std::size_t shards = 0;
  double duration_us = 0.0;

  std::uint64_t frames_sent = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_duplicated = 0;
  std::uint64_t frames_reordered = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_rejected = 0;
  std::uint64_t send_errors = 0;
  std::uint64_t kernel_rx_drops = 0;
  std::uint64_t rule_executions = 0;
  std::uint64_t crash_restarts = 0;
  std::uint64_t refresh_broadcasts = 0;

  std::uint64_t handovers = 0;
  double handovers_per_sec = 0.0;
  /// Handover inter-arrival percentiles (microseconds) across all rings.
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;

  /// Rings whose ground-truth state is legitimate at the end of the run.
  std::size_t rings_legitimate = 0;
  /// Rings with a live token at the end: a node holds in own-view right
  /// now, or a holder gain was observed within the last two refresh
  /// intervals (Dijkstra-style rings consume the token inside the
  /// delivery that grants it, so the holder bit itself is transient).
  std::size_t rings_with_holder = 0;
};

/// Log-linear histogram for handover intervals: 64 power-of-two major
/// buckets x 8 linear minor buckets (~12% relative resolution), constant
/// memory, O(1) record, exact merge.
class LatencyHistogram {
 public:
  static constexpr std::size_t kMinor = 8;
  static constexpr std::size_t kBuckets = 64 * kMinor;

  void record(std::uint64_t us) {
    ++counts_[bucket_of(us)];
    ++total_;
  }
  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
  }
  std::uint64_t total() const { return total_; }
  /// Approximate quantile (bucket midpoint), 0 when empty.
  double quantile(double q) const;

 private:
  static std::size_t bucket_of(std::uint64_t us) {
    if (us < kMinor) return static_cast<std::size_t>(us);
    const int exp = 63 - std::countl_zero(us);
    const std::size_t major = static_cast<std::size_t>(exp) - 2;
    const std::size_t minor =
        static_cast<std::size_t>((us >> (exp - 3)) & (kMinor - 1));
    const std::size_t b = major * kMinor + minor;
    return b < kBuckets ? b : kBuckets - 1;
  }
  static double bucket_mid(std::size_t b);

  std::vector<std::uint64_t> counts_ = std::vector<std::uint64_t>(kBuckets, 0);
  std::uint64_t total_ = 0;
};

class MultiRingReactor {
 public:
  explicit MultiRingReactor(ReactorConfig config);
  ~MultiRingReactor();

  MultiRingReactor(const MultiRingReactor&) = delete;
  MultiRingReactor& operator=(const MultiRingReactor&) = delete;

  /// Runs the configured transport for @p duration (virtual microseconds
  /// under kVirtual, wall time under kUdp) and returns the aggregate
  /// report. Callable once per reactor instance.
  ReactorReport run(std::chrono::microseconds duration);

  const RingTable& table() const { return *table_; }
  const ReactorConfig& config() const { return config_; }

  /// Per-ring telemetry export (requires per_ring_telemetry). Under the
  /// virtual transport this is a pure function of (config, seed) —
  /// byte-deterministic across runs. Schema "ssr-multiring-telemetry-v1".
  Json telemetry_json(const ReactorReport& report) const;

 private:
  struct Shard;

  void run_virtual(std::chrono::microseconds duration);
  void run_udp(std::chrono::microseconds duration);
  void udp_shard_main(Shard& shard, std::uint64_t deadline_us);
  void check_scripted_faults(std::size_t ring, std::uint64_t now_us);
  void fire_kick(Shard& shard, std::size_t ring, std::uint64_t now_us);
  void fire_refresh(Shard& shard, std::size_t ring, std::uint64_t now_us);
  void process_frame(std::size_t ring, wire::ByteView payload,
                     std::uint64_t sender, std::uint64_t now_us,
                     std::vector<std::uint32_t>& out_broadcasts);
  void broadcast_node(std::size_t ring, std::size_t node,
                      std::uint64_t now_us);
  void note_holder_change(std::size_t ring, std::size_t node,
                          std::uint64_t now_us);
  ReactorReport make_report(double duration_us);

  ReactorConfig config_;
  std::unique_ptr<RingTable> table_;
  FaultInjector injector_;
  std::vector<std::unique_ptr<Telemetry>> ring_telemetry_;
  /// Per-ring refresh backoff shift: a ring whose refresh broadcast drew
  /// no response doubles its next interval (up to 64x base), so stalled
  /// rings under congestion stop flooding the loop; any activity resets
  /// it. Shard-partitioned access (ring % shards), no synchronization.
  std::vector<std::uint8_t> refresh_backoff_;
  LatencyHistogram latency_;
  std::atomic<bool> stop_{false};
  bool ran_ = false;
  double ran_duration_us_ = 0.0;
  std::uint64_t kernel_rx_drops_ = 0;

  // Transport plumbing shared by both modes; see reactor.cpp.
  struct VirtualState;
  std::unique_ptr<VirtualState> virt_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

const char* to_string(ReactorTransport transport);

}  // namespace ssr::runtime
