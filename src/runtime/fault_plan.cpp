#include "runtime/fault_plan.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/assert.hpp"

namespace ssr::runtime {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

[[noreturn]] void parse_fail(const std::string& item, const std::string& why) {
  throw std::invalid_argument("bad fault-plan item \"" + item + "\": " + why);
}

double parse_probability(const std::string& item, const std::string& value) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') parse_fail(item, "not a number");
  if (p < 0.0 || p > 1.0) parse_fail(item, "probability outside [0, 1]");
  return p;
}

std::size_t parse_index(const std::string& item, const std::string& value) {
  if (value == "*") return kAnyNode;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0')
    parse_fail(item, "not a node index: \"" + value + "\"");
  return static_cast<std::size_t>(v);
}

/// "250ms" / "1500us" / "1.5s" / "1500" (default microseconds).
double parse_time_us(const std::string& item, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str()) parse_fail(item, "not a time: \"" + value + "\"");
  const std::string unit = trim(std::string(end));
  double scale = 1.0;
  if (unit == "" || unit == "us") {
    scale = 1.0;
  } else if (unit == "ms") {
    scale = 1000.0;
  } else if (unit == "s") {
    scale = 1000000.0;
  } else {
    parse_fail(item, "unknown time unit \"" + unit + "\"");
  }
  if (v < 0.0) parse_fail(item, "negative time");
  return v * scale;
}

/// Formats microseconds compactly (integral values without a fraction);
/// round-trips through parse_time_us.
std::string format_us(double us) {
  char buf[64];
  if (us == static_cast<double>(static_cast<long long>(us))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(us));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", us);
  }
  return std::string(buf) + "us";
}

std::string format_probability(double p) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", p);
  return buf;
}

std::string format_index(std::size_t i) {
  return i == kAnyNode ? "*" : std::to_string(i);
}

FaultWindow parse_window(const std::string& item, FaultWindow::Kind kind,
                         const std::string& body) {
  FaultWindow w;
  w.kind = kind;
  // body = "T1-T2[:args]"
  const std::size_t colon = body.find(':');
  const std::string range = body.substr(0, colon);
  const std::size_t dash = range.find('-');
  if (dash == std::string::npos) parse_fail(item, "expected begin-end times");
  w.begin_us = parse_time_us(item, trim(range.substr(0, dash)));
  w.end_us = parse_time_us(item, trim(range.substr(dash + 1)));
  if (colon != std::string::npos) {
    for (const std::string& raw : split(body.substr(colon + 1), ',')) {
      const std::string arg = trim(raw);
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) parse_fail(item, "argument without '='");
      const std::string key = trim(arg.substr(0, eq));
      const std::string value = trim(arg.substr(eq + 1));
      if (key == "link") {
        const std::size_t arrow = value.find("->");
        if (arrow == std::string::npos)
          parse_fail(item, "link selector needs \"from->to\"");
        w.from = parse_index(item, trim(value.substr(0, arrow)));
        w.to = parse_index(item, trim(value.substr(arrow + 2)));
      } else if (key == "node") {
        w.node = parse_index(item, value);
      } else if (key == "cut") {
        const std::size_t slash = value.find('/');
        if (slash == std::string::npos)
          parse_fail(item, "cut selector needs \"a/b\"");
        w.cut_a = parse_index(item, trim(value.substr(0, slash)));
        w.cut_b = parse_index(item, trim(value.substr(slash + 1)));
      } else {
        parse_fail(item, "unknown argument \"" + key + "\"");
      }
    }
  }
  return w;
}

double probability_union(double a, double b) {
  return 1.0 - (1.0 - a) * (1.0 - b);
}

}  // namespace

const char* to_string(FaultWindow::Kind kind) {
  switch (kind) {
    case FaultWindow::Kind::kBurstLoss:
      return "burst";
    case FaultWindow::Kind::kLinkDown:
      return "linkdown";
    case FaultWindow::Kind::kPartition:
      return "partition";
    case FaultWindow::Kind::kNodePause:
      return "pause";
    case FaultWindow::Kind::kCrashRestart:
      return "crash";
  }
  return "?";
}

void FaultPlan::validate(std::size_t n) const {
  auto check_prob = [](double p, const char* what) {
    SSR_REQUIRE(p >= 0.0 && p < 1.0,
                std::string(what) + " probability must be in [0, 1)");
  };
  check_prob(probabilities.drop, "drop");
  check_prob(probabilities.duplicate, "duplicate");
  check_prob(probabilities.reorder, "reorder");
  check_prob(probabilities.corrupt, "corrupt");
  SSR_REQUIRE(probabilities.corrupt_bits >= 1,
              "corrupt-bits must be at least 1");
  auto check_node = [n](std::size_t v, const char* what) {
    SSR_REQUIRE(v == kAnyNode || v < n,
                std::string(what) + " index out of range for the ring");
  };
  for (const FaultWindow& w : windows) {
    SSR_REQUIRE(w.begin_us >= 0.0 && w.end_us > w.begin_us,
                "fault window needs 0 <= begin < end");
    switch (w.kind) {
      case FaultWindow::Kind::kBurstLoss:
      case FaultWindow::Kind::kLinkDown:
        check_node(w.from, "link-from");
        check_node(w.to, "link-to");
        break;
      case FaultWindow::Kind::kPartition:
        SSR_REQUIRE(w.cut_a < n && w.cut_b < n,
                    "partition cut index out of range for the ring");
        break;
      case FaultWindow::Kind::kNodePause:
      case FaultWindow::Kind::kCrashRestart:
        SSR_REQUIRE(w.node != kAnyNode && w.node < n,
                    "pause/crash window needs node=<index> in range");
        break;
    }
  }
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& raw : split(spec, ';')) {
    const std::string item = trim(raw);
    if (item.empty()) continue;
    const std::size_t at = item.find('@');
    const std::size_t eq = item.find('=');
    if (at != std::string::npos && (eq == std::string::npos || at < eq)) {
      const std::string kind = trim(item.substr(0, at));
      const std::string body = trim(item.substr(at + 1));
      if (kind == "burst") {
        plan.windows.push_back(
            parse_window(item, FaultWindow::Kind::kBurstLoss, body));
      } else if (kind == "linkdown") {
        plan.windows.push_back(
            parse_window(item, FaultWindow::Kind::kLinkDown, body));
      } else if (kind == "partition") {
        plan.windows.push_back(
            parse_window(item, FaultWindow::Kind::kPartition, body));
      } else if (kind == "pause") {
        plan.windows.push_back(
            parse_window(item, FaultWindow::Kind::kNodePause, body));
      } else if (kind == "crash") {
        plan.windows.push_back(
            parse_window(item, FaultWindow::Kind::kCrashRestart, body));
      } else {
        parse_fail(item, "unknown window kind \"" + kind + "\"");
      }
      continue;
    }
    if (eq == std::string::npos) parse_fail(item, "expected key=value or kind@window");
    const std::string key = trim(item.substr(0, eq));
    const std::string value = trim(item.substr(eq + 1));
    if (key == "drop") {
      plan.probabilities.drop = parse_probability(item, value);
    } else if (key == "dup" || key == "duplicate") {
      plan.probabilities.duplicate = parse_probability(item, value);
    } else if (key == "reorder") {
      plan.probabilities.reorder = parse_probability(item, value);
    } else if (key == "corrupt") {
      plan.probabilities.corrupt = parse_probability(item, value);
    } else if (key == "corrupt-bits" || key == "corrupt_bits") {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || v == 0)
        parse_fail(item, "corrupt-bits needs a positive integer");
      plan.probabilities.corrupt_bits = static_cast<std::size_t>(v);
    } else {
      parse_fail(item, "unknown key \"" + key + "\"");
    }
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  const char* sep = "";
  auto emit = [&os, &sep](const std::string& item) {
    os << sep << item;
    sep = ";";
  };
  const FaultProbabilities& p = probabilities;
  if (p.drop > 0.0) emit("drop=" + format_probability(p.drop));
  if (p.duplicate > 0.0) emit("dup=" + format_probability(p.duplicate));
  if (p.reorder > 0.0) emit("reorder=" + format_probability(p.reorder));
  if (p.corrupt > 0.0) {
    emit("corrupt=" + format_probability(p.corrupt));
    if (p.corrupt_bits != 1)
      emit("corrupt-bits=" + std::to_string(p.corrupt_bits));
  }
  for (const FaultWindow& w : windows) {
    std::string item = std::string(to_string(w.kind)) + "@" +
                       format_us(w.begin_us) + "-" + format_us(w.end_us);
    switch (w.kind) {
      case FaultWindow::Kind::kBurstLoss:
      case FaultWindow::Kind::kLinkDown:
        if (w.from != kAnyNode || w.to != kAnyNode)
          item += ":link=" + format_index(w.from) + "->" + format_index(w.to);
        break;
      case FaultWindow::Kind::kPartition:
        item += ":cut=" + std::to_string(w.cut_a) + "/" +
                std::to_string(w.cut_b);
        break;
      case FaultWindow::Kind::kNodePause:
      case FaultWindow::Kind::kCrashRestart:
        item += ":node=" + format_index(w.node);
        break;
    }
    emit(item);
  }
  return os.str();
}

Json FaultPlan::to_json() const {
  Json probs = Json::object();
  probs.set("drop", probabilities.drop);
  probs.set("duplicate", probabilities.duplicate);
  probs.set("reorder", probabilities.reorder);
  probs.set("corrupt", probabilities.corrupt);
  probs.set("corrupt_bits", probabilities.corrupt_bits);
  Json ws = Json::array();
  for (const FaultWindow& w : windows) {
    Json j = Json::object();
    j.set("kind", to_string(w.kind));
    j.set("begin_us", w.begin_us);
    j.set("end_us", w.end_us);
    switch (w.kind) {
      case FaultWindow::Kind::kBurstLoss:
      case FaultWindow::Kind::kLinkDown:
        j.set("from", w.from == kAnyNode ? Json("*") : Json(w.from));
        j.set("to", w.to == kAnyNode ? Json("*") : Json(w.to));
        break;
      case FaultWindow::Kind::kPartition:
        j.set("cut_a", w.cut_a);
        j.set("cut_b", w.cut_b);
        break;
      case FaultWindow::Kind::kNodePause:
      case FaultWindow::Kind::kCrashRestart:
        j.set("node", w.node);
        break;
    }
    ws.push(std::move(j));
  }
  Json out = Json::object();
  out.set("probabilities", std::move(probs));
  out.set("windows", std::move(ws));
  return out;
}

FaultPlan FaultPlan::with_legacy(double drop, double corrupt) const {
  FaultPlan merged = *this;
  merged.probabilities.drop = probability_union(probabilities.drop, drop);
  merged.probabilities.corrupt =
      probability_union(probabilities.corrupt, corrupt);
  return merged;
}

FaultInjector::FaultInjector(FaultPlan plan, std::size_t n)
    : plan_(std::move(plan)), n_(n), crash_fired_(plan_.windows.size(), 0) {
  SSR_REQUIRE(n >= 2, "fault injector needs a ring of at least two nodes");
  plan_.validate(n);
}

bool FaultInjector::frame_blocked(const FaultWindow& w, std::size_t from,
                                  std::size_t to) const {
  switch (w.kind) {
    case FaultWindow::Kind::kBurstLoss:
    case FaultWindow::Kind::kLinkDown:
      return (w.from == kAnyNode || w.from == from) &&
             (w.to == kAnyNode || w.to == to);
    case FaultWindow::Kind::kPartition: {
      auto crosses = [this, from, to](std::size_t cut) {
        const std::size_t succ = (cut + 1) % n_;
        return (from == cut && to == succ) || (from == succ && to == cut);
      };
      return crosses(w.cut_a) || crosses(w.cut_b);
    }
    case FaultWindow::Kind::kNodePause:
    case FaultWindow::Kind::kCrashRestart:
      // A down node's radio is off: frames to it are lost, and (defensive;
      // a down node does not call on_send) frames from it too.
      return w.node == from || w.node == to;
  }
  return false;
}

FrameFate FaultInjector::on_send(std::size_t from, std::size_t to,
                                 double now_us, Rng& rng) const {
  FrameFate fate;
  for (const FaultWindow& w : plan_.windows) {
    if (w.active(now_us) && frame_blocked(w, from, to)) {
      fate.drop = true;
      fate.window_drop = true;
      return fate;  // no randomness consumed
    }
  }
  const FaultProbabilities& p = plan_.probabilities;
  if (rng.bernoulli(p.drop)) {
    fate.drop = true;
    return fate;
  }
  if (rng.bernoulli(p.corrupt)) fate.corrupt_bits = p.corrupt_bits;
  if (rng.bernoulli(p.duplicate)) fate.duplicate = true;
  if (rng.bernoulli(p.reorder)) fate.reorder = true;
  return fate;
}

bool FaultInjector::node_down(std::size_t node, double now_us) const {
  for (const FaultWindow& w : plan_.windows) {
    if ((w.kind == FaultWindow::Kind::kNodePause ||
         w.kind == FaultWindow::Kind::kCrashRestart) &&
        w.node == node && w.active(now_us)) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::take_crash(std::size_t node, double now_us) {
  for (std::size_t i = 0; i < plan_.windows.size(); ++i) {
    const FaultWindow& w = plan_.windows[i];
    if (w.kind == FaultWindow::Kind::kCrashRestart && w.node == node &&
        now_us >= w.begin_us && crash_fired_[i] == 0) {
      crash_fired_[i] = 1;
      return true;
    }
  }
  return false;
}

void FaultInjector::rearm() {
  for (auto& fired : crash_fired_) fired = 0;
}

}  // namespace ssr::runtime
