// Telemetry for the message-passing executors: a single-writer recorder
// that turns a stream of (time, holder-set) observations plus per-node
// wire counters into the robustness metrics the paper's Section 5 argues
// about — a time-weighted holder-count histogram (how long the ring spent
// with 0/1/2/... token holders), zero-holder dwell time and interval
// count, handover count, and a per-fault-window time-to-recover.
//
// Determinism contract: to_json() is a pure function of the ingested
// events. Fed from msgpass::CstSimulation (virtual time), the export is
// bit-identical for a fixed seed and plan — pinned by the differential
// test and by the checked-in BENCH_faults.json. Fed from the real
// runtimes (ThreadedRing / UdpSsrRing), timestamps come from the wall
// clock and the numbers are statistical, not reproducible.
//
// Threading: a Telemetry instance is NOT thread-safe; it is fed from one
// sampler thread (real runtimes) or from the simulation loop (msgpass).
// The runtimes accumulate per-node counters in their own atomics and copy
// them in via set_node_counters() after the run.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "runtime/fault_plan.hpp"
#include "util/json.hpp"

namespace ssr::runtime {

/// Per-node wire and rule counters (filled by the real runtimes).
struct NodeTelemetry {
  std::uint64_t frames_sent = 0;        ///< actually transmitted
  std::uint64_t frames_dropped = 0;     ///< dropped by the injector
  std::uint64_t frames_duplicated = 0;  ///< extra copies transmitted
  std::uint64_t frames_reordered = 0;   ///< held back for stale delivery
  std::uint64_t frames_corrupted = 0;   ///< bit-flipped before transmit
  std::uint64_t frames_received = 0;    ///< valid frames accepted
  std::uint64_t frames_rejected = 0;    ///< parse/CRC/zero-length/truncated
  /// Subset of frames_rejected: frames that parsed as a *newer* wire
  /// version (e.g. v2 multiring frames hitting a v1 single-ring node).
  /// Lets a mixed deployment distinguish misrouted traffic from noise.
  std::uint64_t frames_wrong_version = 0;
  /// Datagrams the kernel dropped on this node's receive queue for lack
  /// of buffer space (SK_MEMINFO_DROPS) — loss that happened *before* the
  /// runtime ever saw the frames.
  std::uint64_t kernel_rx_drops = 0;
  std::uint64_t send_errors = 0;        ///< kernel-rejected transmissions
  std::uint64_t rule_executions = 0;
  std::uint64_t crash_restarts = 0;
};

class Telemetry {
 public:
  explicit Telemetry(std::size_t n);

  /// Free-form provenance recorded into the export.
  void set_context(std::string runtime, std::string algorithm,
                   std::uint64_t seed);
  /// Captures the plan (spec string + windows for recovery tracking).
  void set_plan(const FaultPlan& plan);

  /// Records that @p holders was the holder set from @p t_us onward; the
  /// previous set is integrated over [previous t, t_us). Times must be
  /// nondecreasing.
  void observe(double t_us, const std::vector<bool>& holders);
  /// Closes the integration at @p t_us (idempotent; observe() after
  /// finish() is rejected).
  void finish(double t_us);

  void set_node_counters(std::vector<NodeTelemetry> counters);
  /// Aggregate wire counters (used by the simulator consumer, which has
  /// no per-node breakdown).
  void set_aggregates(std::uint64_t messages_sent, std::uint64_t messages_lost,
                      std::uint64_t deliveries, std::uint64_t rule_executions);

  // --- accessors (tests and report tables) --------------------------------
  std::size_t ring_size() const { return n_; }
  double observed_us() const { return observed_us_; }
  double zero_holder_dwell_us() const { return holder_time_us_[0]; }
  std::uint64_t zero_intervals() const { return zero_intervals_; }
  std::uint64_t handovers() const { return handovers_; }
  std::size_t min_holders() const;
  std::size_t max_holders() const { return max_holders_; }
  /// Time-weighted histogram: holder_time_us()[c] = microseconds spent
  /// with exactly c holders (counts above n are clamped to n).
  const std::vector<double>& holder_time_us() const { return holder_time_us_; }

  struct WindowOutcome {
    bool recovered = false;
    double time_to_recover_us = 0.0;  ///< first >=1-holder instant - end
  };
  const std::vector<WindowOutcome>& window_outcomes() const {
    return window_outcomes_;
  }

  /// Deterministic JSON export (see the header comment).
  Json to_json() const;
  std::string to_json_string(int indent = 2) const;

 private:
  std::size_t n_;
  std::string runtime_ = "unknown";
  std::string algorithm_ = "unknown";
  std::uint64_t seed_ = 0;
  std::string plan_spec_;
  std::vector<FaultWindow> windows_;
  std::vector<WindowOutcome> window_outcomes_;

  bool started_ = false;
  bool finished_ = false;
  double start_us_ = 0.0;
  double last_us_ = 0.0;
  std::vector<bool> current_;
  std::size_t current_count_ = 0;

  double observed_us_ = 0.0;
  std::vector<double> holder_time_us_;  // index = holder count, 0..n
  std::uint64_t zero_intervals_ = 0;
  std::uint64_t handovers_ = 0;
  std::size_t min_holders_ = std::numeric_limits<std::size_t>::max();
  std::size_t max_holders_ = 0;

  std::vector<NodeTelemetry> node_counters_;
  bool has_aggregates_ = false;
  std::uint64_t agg_sent_ = 0;
  std::uint64_t agg_lost_ = 0;
  std::uint64_t agg_deliveries_ = 0;
  std::uint64_t agg_rules_ = 0;
};

}  // namespace ssr::runtime
