// Real-thread execution of a ring protocol under the CST discipline: one
// std::jthread per node, bounded channels as links, the pop timeout as the
// refresh timer. This is the "wireless sensor node" substitute — message
// transmission takes real (scheduler-dependent) time, so the model gap the
// paper analyzes in §5 exists physically here, not just in simulation.
//
// Concurrency design (per the CP.* Core Guidelines rules):
//  * each node's protocol state and caches are owned exclusively by its
//    thread — never shared;
//  * cross-thread communication is only (a) latest-value mailboxes and
//    (b) a per-node atomic "holds a token" bit plus a global version
//    counter used for optimistic consistent snapshots;
//  * a node publishes its token bit *before* sending the state update that
//    could cause a neighbor to act on it. This ordering is what makes
//    SSRmin's graceful-handover guarantee hold for real samplers: the old
//    holder only clears its bit after observing an acknowledgment whose
//    sender had already set its own bit.
//
// Why latest-value mailboxes and not FIFO queues: CST messages carry the
// sender's *whole state*, so a receiver loses nothing by only ever seeing
// the newest value — and it loses a theorem by seeing older ones. With
// queued inboxes a backlogged node can act on a stale <0.1> snapshot of
// its successor from the successor's previous token tenure, fire Rule 2
// early, and open a genuine zero-token window; Theorem 3's proof tacitly
// assumes transient periods do not overlap, i.e. receivers act on fresh
// neighbor states (we measured this failure before switching — see
// EXPERIMENTS.md E13). A per-receiver mutex guarding both slots restores
// the needed transitivity: if a node observes the handshake trigger from
// one neighbor, it also observes every state that happened-before it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>
#include "stabilizing/protocol.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ssr::runtime {

struct RuntimeParams {
  /// CST refresh period: a node with a silent inbox rebroadcasts its state
  /// this often.
  std::chrono::microseconds refresh_interval{1000};
  /// Probability that a single message transmission is dropped.
  double loss_probability = 0.0;
  /// Seed for the per-node loss/jitter generators.
  std::uint64_t seed = 1;
  /// Inbox capacity; overflow drops the stalest update.
  std::size_t channel_capacity = 64;

  void validate() const;
};

/// Consistent-snapshot result (see ThreadedRing::sample).
struct HolderSnapshot {
  std::vector<bool> holders;
  bool consistent = false;  ///< version counter was stable across the read
};

/// Aggregate observations from a sampling run.
struct SamplerReport {
  std::uint64_t samples = 0;
  std::uint64_t consistent_samples = 0;
  /// Consistent samples observing zero token holders. The paper's graceful
  /// handover (Theorem 3) predicts 0 for SSRmin started legitimate; plain
  /// Dijkstra has real extinction windows a sampler can catch.
  std::uint64_t zero_holder_samples = 0;
  std::size_t min_holders = std::numeric_limits<std::size_t>::max();
  std::size_t max_holders = 0;
  /// Holder-set changes between consecutive consistent samples.
  std::uint64_t handovers = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t rule_executions = 0;
};

template <stab::RingProtocol P>
class ThreadedRing {
 public:
  using State = typename P::State;
  using TokenFn =
      std::function<bool(std::size_t, const State&, const State&, const State&)>;
  /// Optional hook fired from the node's own thread whenever its token
  /// holding flips; must be thread-safe. Arguments: node id, now-holding.
  using ActivationFn = std::function<void(std::size_t, bool)>;

  ThreadedRing(P protocol, std::vector<State> initial, TokenFn token,
               RuntimeParams params)
      : protocol_(std::move(protocol)),
        params_(params),
        token_(std::move(token)),
        initial_(std::move(initial)) {
    params_.validate();
    SSR_REQUIRE(initial_.size() == protocol_.size(),
                "configuration size must equal ring size");
    const std::size_t n = initial_.size();
    holders_ = std::make_unique<std::atomic<std::uint8_t>[]>(n);
    for (std::size_t i = 0; i < n; ++i) {
      nodes_.push_back(std::make_unique<NodeShared>(params_.channel_capacity));
    }
    // Publish the initial (coherent) holder bits from the constructor so a
    // sampler never observes a bogus startup window.
    for (std::size_t i = 0; i < n; ++i) {
      const bool h =
          token_(i, initial_[i], initial_[stab::pred_index(i, n)],
                 initial_[stab::succ_index(i, n)]);
      holders_[i].store(h ? 1 : 0, std::memory_order_seq_cst);
    }
  }

  ~ThreadedRing() { stop(); }

  ThreadedRing(const ThreadedRing&) = delete;
  ThreadedRing& operator=(const ThreadedRing&) = delete;

  std::size_t size() const { return nodes_.size(); }

  void set_activation_callback(ActivationFn fn) {
    SSR_REQUIRE(!running_, "set the callback before start()");
    activation_ = std::move(fn);
  }

  /// Launches the node threads. Idempotent.
  void start() {
    if (running_) return;
    running_ = true;
    Rng seeder(params_.seed);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const std::uint64_t node_seed = seeder();
      threads_.emplace_back([this, i, node_seed](std::stop_token st) {
        node_main(i, node_seed, st);
      });
    }
  }

  /// Requests all node threads to stop and joins them. Idempotent.
  void stop() {
    if (!running_) return;
    for (auto& t : threads_) t.request_stop();
    for (auto& node : nodes_) node->inbox.close();
    threads_.clear();  // jthread joins on destruction
    running_ = false;
  }

  /// Injects a transient fault: node i's state is overwritten with @p s
  /// (processed by the node thread in FIFO order with normal messages).
  void corrupt(std::size_t i, State s) {
    SSR_REQUIRE(i < nodes_.size(), "node index out of range");
    nodes_[i]->inbox.post_corrupt(std::move(s));
  }

  /// Optimistic consistent snapshot of the holder bits: reads the version
  /// counter, the bits, and the counter again, retrying while publications
  /// interleave. After @p max_retries the last (possibly torn) read is
  /// returned with consistent = false.
  HolderSnapshot sample(int max_retries = 64) const {
    HolderSnapshot snap;
    snap.holders.resize(nodes_.size());
    for (int attempt = 0; attempt < max_retries; ++attempt) {
      const std::uint64_t v1 = version_.load(std::memory_order_seq_cst);
      for (std::size_t i = 0; i < nodes_.size(); ++i) {
        snap.holders[i] =
            holders_[i].load(std::memory_order_seq_cst) != 0;
      }
      const std::uint64_t v2 = version_.load(std::memory_order_seq_cst);
      if (v1 == v2) {
        snap.consistent = true;
        return snap;
      }
    }
    snap.consistent = false;
    return snap;
  }

  /// Samples the holder bits every @p interval for @p duration and
  /// aggregates coverage statistics. Runs on the caller's thread.
  SamplerReport observe(std::chrono::milliseconds duration,
                        std::chrono::microseconds interval) {
    SSR_REQUIRE(running_, "call start() before observe()");
    SamplerReport report;
    std::vector<bool> previous;
    const auto deadline = std::chrono::steady_clock::now() + duration;
    while (std::chrono::steady_clock::now() < deadline) {
      const HolderSnapshot snap = sample();
      ++report.samples;
      if (snap.consistent) {
        ++report.consistent_samples;
        std::size_t count = 0;
        for (bool b : snap.holders)
          if (b) ++count;
        if (count == 0) ++report.zero_holder_samples;
        report.min_holders = std::min(report.min_holders, count);
        report.max_holders = std::max(report.max_holders, count);
        if (!previous.empty() && previous != snap.holders) ++report.handovers;
        previous = snap.holders;
      }
      std::this_thread::sleep_for(interval);
    }
    report.messages_sent = messages_sent_.load(std::memory_order_relaxed);
    report.messages_lost = messages_lost_.load(std::memory_order_relaxed);
    report.rule_executions = rule_execs_.load(std::memory_order_relaxed);
    if (report.min_holders == std::numeric_limits<std::size_t>::max())
      report.min_holders = 0;
    return report;
  }

  std::uint64_t rule_executions() const {
    return rule_execs_.load(std::memory_order_relaxed);
  }

 private:
  /// Latest-value mailbox: one slot per neighbor direction plus a fault-
  /// injection slot. A single mutex guards all slots so a reader that
  /// observes one neighbor's update also observes every update that
  /// happened-before it (see the class comment).
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::optional<State> from_pred;
    std::optional<State> from_succ;
    std::optional<State> corrupt;
    bool closed = false;

    void post_state(bool is_pred, const State& s) {
      {
        std::lock_guard lock(mutex);
        if (closed) return;
        (is_pred ? from_pred : from_succ) = s;
      }
      cv.notify_one();
    }

    void post_corrupt(State s) {
      {
        std::lock_guard lock(mutex);
        if (closed) return;
        corrupt = std::move(s);
      }
      cv.notify_one();
    }

    void close() {
      {
        std::lock_guard lock(mutex);
        closed = true;
      }
      cv.notify_all();
    }

    /// Waits for any slot (or timeout), then drains all slots atomically.
    /// Returns false on pure timeout (nothing received).
    bool take(std::chrono::microseconds timeout, std::optional<State>& pred,
              std::optional<State>& succ, std::optional<State>& corrupted) {
      std::unique_lock lock(mutex);
      cv.wait_for(lock, timeout, [&] {
        return from_pred || from_succ || corrupt || closed;
      });
      pred = std::exchange(from_pred, std::nullopt);
      succ = std::exchange(from_succ, std::nullopt);
      corrupted = std::exchange(corrupt, std::nullopt);
      return pred.has_value() || succ.has_value() || corrupted.has_value();
    }
  };

  struct NodeShared {
    explicit NodeShared(std::size_t /*capacity*/) {}
    Mailbox inbox;
  };

  void node_main(std::size_t i, std::uint64_t seed, std::stop_token st) {
    const std::size_t n = nodes_.size();
    const std::size_t pred = stab::pred_index(i, n);
    const std::size_t succ = stab::succ_index(i, n);
    Rng rng(seed);
    // Thread-local protocol state: own state plus neighbor caches, seeded
    // coherently from the shared initial configuration.
    State self = initial_[i];
    State cache_pred = initial_[pred];
    State cache_succ = initial_[succ];
    bool holding = holders_[i].load(std::memory_order_seq_cst) != 0;

    auto publish = [&] {
      const bool h = token_(i, self, cache_pred, cache_succ);
      if (h != holding) {
        holders_[i].store(h ? 1 : 0, std::memory_order_seq_cst);
        version_.fetch_add(1, std::memory_order_seq_cst);
        holding = h;
        if (activation_) activation_(i, h);
      }
    };
    auto send_to = [&](std::size_t target, bool as_pred) {
      messages_sent_.fetch_add(1, std::memory_order_relaxed);
      if (rng.bernoulli(params_.loss_probability)) {
        messages_lost_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      nodes_[target]->inbox.post_state(as_pred, self);
    };
    auto broadcast = [&] {
      // Predecessor first: the update chain that can re-trigger us runs
      // through our successor, so the pred-directed copy must be posted
      // before the succ-directed one (see the class comment).
      send_to(pred, /*as_pred=*/false);  // we are our predecessor's succ
      send_to(succ, /*as_pred=*/true);   // we are our successor's pred
    };

    // Initial broadcast primes the neighbors' caches.
    broadcast();

    std::optional<State> got_pred;
    std::optional<State> got_succ;
    std::optional<State> got_corrupt;
    while (!st.stop_requested()) {
      const bool received = nodes_[i]->inbox.take(
          params_.refresh_interval, got_pred, got_succ, got_corrupt);
      if (st.stop_requested()) break;
      if (!received) {
        // Refresh timer: rebroadcast the current state (Algorithm 4
        // line 11) so lost messages are eventually repaired.
        broadcast();
        continue;
      }
      if (got_corrupt) self = *got_corrupt;
      if (got_pred) cache_pred = *got_pred;
      if (got_succ) cache_succ = *got_succ;
      const int rule =
          protocol_.enabled_rule(i, self, cache_pred, cache_succ);
      if (rule != stab::kDisabled) {
        self = protocol_.apply(i, rule, self, cache_pred, cache_succ);
        rule_execs_.fetch_add(1, std::memory_order_relaxed);
      }
      // Publish before sending: a neighbor that acts on this state update
      // must already be able to observe our new token bit.
      publish();
      broadcast();
    }
  }

  P protocol_;
  RuntimeParams params_;
  TokenFn token_;
  ActivationFn activation_;
  std::vector<State> initial_;

  std::vector<std::unique_ptr<NodeShared>> nodes_;
  std::vector<std::jthread> threads_;
  bool running_ = false;

  std::unique_ptr<std::atomic<std::uint8_t>[]> holders_;
  std::atomic<std::uint64_t> version_{0};
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> messages_lost_{0};
  std::atomic<std::uint64_t> rule_execs_{0};
};

}  // namespace ssr::runtime
