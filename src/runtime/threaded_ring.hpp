// Real-thread execution of a ring protocol under the CST discipline: one
// std::jthread per node, latest-value mailboxes as links, the pop timeout
// as the refresh timer. This is the "wireless sensor node" substitute —
// message transmission takes real (scheduler-dependent) time, so the model
// gap the paper analyzes in §5 exists physically here, not just in
// simulation.
//
// Concurrency design (per the CP.* Core Guidelines rules):
//  * each node's protocol state and caches are owned exclusively by its
//    thread — never shared;
//  * cross-thread communication is only (a) latest-value mailboxes and
//    (b) a seqlocked per-node "holds a token" bit board (HolderBoard)
//    used for consistent snapshots;
//  * a node publishes its token bit *before* sending the state update that
//    could cause a neighbor to act on it. This ordering is what makes
//    SSRmin's graceful-handover guarantee hold for real samplers: the old
//    holder only clears its bit after observing an acknowledgment whose
//    sender had already set its own bit.
//
// Fault injection: a runtime::FaultPlan (RuntimeParams::fault_plan; the
// legacy loss_probability knob folds into it) drives both probabilistic
// per-message faults and scripted windows. Corruption has no wire layer to
// flip bits in here — a checksummed radio turns corruption into loss
// (Lemma 9's model), so a corrupted message is counted and dropped.
// Reordering is implemented at the sender: the message is held back and
// delivered *after* the next message on the same link, so the receiver
// genuinely observes a stale state overwrite a fresh one — exactly the
// hazard the latest-value-mailbox design note below warns about.
//
// Why latest-value mailboxes and not FIFO queues: CST messages carry the
// sender's *whole state*, so a receiver loses nothing by only ever seeing
// the newest value — and it loses a theorem by seeing older ones. With
// queued inboxes a backlogged node can act on a stale <0.1> snapshot of
// its successor from the successor's previous token tenure, fire Rule 2
// early, and open a genuine zero-token window; Theorem 3's proof tacitly
// assumes transient periods do not overlap, i.e. receivers act on fresh
// neighbor states (we measured this failure before switching — see
// EXPERIMENTS.md E13). A per-receiver mutex guarding both slots restores
// the needed transitivity: if a node observes the handshake trigger from
// one neighbor, it also observes every state that happened-before it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>
#include "runtime/fault_plan.hpp"
#include "runtime/holder_board.hpp"
#include "runtime/sampler.hpp"
#include "runtime/telemetry.hpp"
#include "stabilizing/protocol.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ssr::runtime {

struct RuntimeParams {
  /// CST refresh period: a node with a silent inbox rebroadcasts its state
  /// this often.
  std::chrono::microseconds refresh_interval{1000};
  /// Convenience knob: probability that a single message transmission is
  /// dropped. Folded into fault_plan (probability union) at construction.
  double loss_probability = 0.0;
  /// Seed for the per-node fault/jitter generators.
  std::uint64_t seed = 1;
  /// Inbox capacity; overflow drops the stalest update.
  std::size_t channel_capacity = 64;
  /// Full fault schedule (see runtime/fault_plan.hpp). Window times count
  /// from start().
  FaultPlan fault_plan;

  void validate() const;
  /// fault_plan with loss_probability folded in.
  FaultPlan effective_plan() const {
    return fault_plan.with_legacy(loss_probability);
  }
};

template <stab::RingProtocol P>
class ThreadedRing {
 public:
  using State = typename P::State;
  using TokenFn =
      std::function<bool(std::size_t, const State&, const State&, const State&)>;
  /// Optional hook fired from the node's own thread whenever its token
  /// holding flips; must be thread-safe. Arguments: node id, now-holding.
  using ActivationFn = std::function<void(std::size_t, bool)>;

  ThreadedRing(P protocol, std::vector<State> initial, TokenFn token,
               RuntimeParams params)
      : protocol_(std::move(protocol)),
        params_(params),
        token_(std::move(token)),
        initial_(std::move(initial)),
        board_(initial_.size() > 0 ? initial_.size() : 1),
        injector_(params_.effective_plan(), initial_.size() > 1 ? initial_.size() : 2) {
    params_.validate();
    SSR_REQUIRE(initial_.size() == protocol_.size(),
                "configuration size must equal ring size");
    for (std::size_t i = 0; i < initial_.size(); ++i) {
      nodes_.push_back(std::make_unique<NodeShared>(params_.channel_capacity));
    }
    // Publish the initial (coherent) holder bits from the constructor so a
    // sampler never observes a bogus startup window.
    publish_initial_holders();
  }

  ~ThreadedRing() { stop(); }

  ThreadedRing(const ThreadedRing&) = delete;
  ThreadedRing& operator=(const ThreadedRing&) = delete;

  std::size_t size() const { return nodes_.size(); }

  void set_activation_callback(ActivationFn fn) {
    SSR_REQUIRE(!running_, "set the callback before start()");
    activation_ = std::move(fn);
  }

  /// Launches the node threads. Idempotent; restartable after stop() (the
  /// run restarts from the initial configuration, with the fault clock and
  /// crash windows re-armed; counters keep accumulating).
  void start() {
    if (running_) return;
    running_ = true;
    injector_.rearm();
    epoch_ = std::chrono::steady_clock::now();
    publish_initial_holders();
    for (auto& node : nodes_) node->inbox.open();
    Rng seeder(params_.seed);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const std::uint64_t node_seed = seeder();
      threads_.emplace_back([this, i, node_seed](std::stop_token st) {
        node_main(i, node_seed, st);
      });
    }
  }

  /// Requests all node threads to stop and joins them. Idempotent.
  void stop() {
    if (!running_) return;
    for (auto& t : threads_) t.request_stop();
    for (auto& node : nodes_) node->inbox.close();
    threads_.clear();  // jthread joins on destruction
    running_ = false;
  }

  /// Injects a transient fault: node i's state is overwritten with @p s
  /// (processed by the node thread in FIFO order with normal messages).
  void corrupt(std::size_t i, State s) {
    SSR_REQUIRE(i < nodes_.size(), "node index out of range");
    nodes_[i]->inbox.post_corrupt(std::move(s));
  }

  /// Consistent holder snapshot (seqlocked; see HolderBoard).
  HolderSnapshot sample(int max_retries = 64) const {
    return board_.sample(max_retries);
  }

  /// Samples the holder bits every @p interval for @p duration and
  /// aggregates coverage statistics. Runs on the caller's thread. When
  /// @p telemetry is given, the holder timeline, fault windows and
  /// per-node counters are recorded into it (wall-clock timestamps on the
  /// injector's fault clock).
  SamplerReport observe(std::chrono::milliseconds duration,
                        std::chrono::microseconds interval,
                        Telemetry* telemetry = nullptr) {
    SSR_REQUIRE(running_, "call start() before observe()");
    if (telemetry != nullptr) telemetry->set_plan(injector_.plan());
    SamplerReport report = sample_holders(
        [this] { return sample(); }, [this] { return now_us(); }, duration,
        interval, telemetry);
    report.messages_sent = sum_counter(&PerNodeCounters::sent);
    report.messages_lost = sum_counter(&PerNodeCounters::dropped) +
                           sum_counter(&PerNodeCounters::corrupted);
    report.rule_executions = sum_counter(&PerNodeCounters::rules);
    if (telemetry != nullptr) fill_node_telemetry(*telemetry);
    return report;
  }

  std::uint64_t rule_executions() const {
    return sum_counter(&PerNodeCounters::rules);
  }

  std::uint64_t crash_restarts() const {
    return sum_counter(&PerNodeCounters::crashes);
  }

  const FaultPlan& fault_plan() const { return injector_.plan(); }

  /// Copies the per-node counters into @p telemetry.
  void fill_node_telemetry(Telemetry& telemetry) const {
    std::vector<NodeTelemetry> counters(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const PerNodeCounters& c = nodes_[i]->counters;
      NodeTelemetry& t = counters[i];
      t.frames_sent = c.sent.load(std::memory_order_relaxed);
      t.frames_dropped = c.dropped.load(std::memory_order_relaxed);
      t.frames_duplicated = c.duplicated.load(std::memory_order_relaxed);
      t.frames_reordered = c.reordered.load(std::memory_order_relaxed);
      t.frames_corrupted = c.corrupted.load(std::memory_order_relaxed);
      t.frames_received = c.received.load(std::memory_order_relaxed);
      t.rule_executions = c.rules.load(std::memory_order_relaxed);
      t.crash_restarts = c.crashes.load(std::memory_order_relaxed);
    }
    telemetry.set_node_counters(std::move(counters));
  }

 private:
  /// Latest-value mailbox: one slot per neighbor direction plus a fault-
  /// injection slot. A single mutex guards all slots so a reader that
  /// observes one neighbor's update also observes every update that
  /// happened-before it (see the class comment).
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::optional<State> from_pred;
    std::optional<State> from_succ;
    std::optional<State> corrupt;
    bool closed = false;

    void post_state(bool is_pred, const State& s) {
      {
        std::lock_guard lock(mutex);
        if (closed) return;
        (is_pred ? from_pred : from_succ) = s;
      }
      cv.notify_one();
    }

    void post_corrupt(State s) {
      {
        std::lock_guard lock(mutex);
        if (closed) return;
        corrupt = std::move(s);
      }
      cv.notify_all();
    }

    void close() {
      {
        std::lock_guard lock(mutex);
        closed = true;
      }
      cv.notify_all();
    }

    /// Reopens after close() and clears stale slots (restart support; must
    /// not race with node threads — callers hold the start/stop sequence).
    void open() {
      std::lock_guard lock(mutex);
      closed = false;
      from_pred.reset();
      from_succ.reset();
      corrupt.reset();
    }

    /// Waits for any slot (or timeout), then drains all slots atomically.
    /// Returns false on pure timeout (nothing received).
    bool take(std::chrono::microseconds timeout, std::optional<State>& pred,
              std::optional<State>& succ, std::optional<State>& corrupted) {
      std::unique_lock lock(mutex);
      cv.wait_for(lock, timeout, [&] {
        return from_pred || from_succ || corrupt || closed;
      });
      pred = std::exchange(from_pred, std::nullopt);
      succ = std::exchange(from_succ, std::nullopt);
      corrupted = std::exchange(corrupt, std::nullopt);
      return pred.has_value() || succ.has_value() || corrupted.has_value();
    }
  };

  /// Per-node fault/wire counters; written only by the owning node thread,
  /// read by the sampler. Cache-line aligned to avoid false sharing on the
  /// hot send path.
  struct alignas(64) PerNodeCounters {
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> duplicated{0};
    std::atomic<std::uint64_t> reordered{0};
    std::atomic<std::uint64_t> corrupted{0};
    std::atomic<std::uint64_t> received{0};
    std::atomic<std::uint64_t> rules{0};
    std::atomic<std::uint64_t> crashes{0};
  };

  struct NodeShared {
    explicit NodeShared(std::size_t /*capacity*/) {}
    Mailbox inbox;
    PerNodeCounters counters;
  };

  double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  std::uint64_t sum_counter(
      std::atomic<std::uint64_t> PerNodeCounters::* member) const {
    std::uint64_t total = 0;
    for (const auto& node : nodes_) {
      total += (node->counters.*member).load(std::memory_order_relaxed);
    }
    return total;
  }

  void publish_initial_holders() {
    const std::size_t n = initial_.size();
    board_.publish_batch([&](auto&& set) {
      for (std::size_t i = 0; i < n; ++i) {
        set(i, token_(i, initial_[i], initial_[stab::pred_index(i, n)],
                      initial_[stab::succ_index(i, n)]));
      }
    });
  }

  void node_main(std::size_t i, std::uint64_t seed, std::stop_token st) {
    const std::size_t n = nodes_.size();
    const std::size_t pred = stab::pred_index(i, n);
    const std::size_t succ = stab::succ_index(i, n);
    Rng rng(seed);
    PerNodeCounters& counters = nodes_[i]->counters;
    const bool scripted = !injector_.plan().windows.empty();
    const auto pause_slice =
        std::min(params_.refresh_interval, std::chrono::microseconds{200});
    // Thread-local protocol state: own state plus neighbor caches, seeded
    // coherently from the shared initial configuration.
    State self = initial_[i];
    State cache_pred = initial_[pred];
    State cache_succ = initial_[succ];
    bool holding = token_(i, self, cache_pred, cache_succ);
    // Reorder hold slots, one per outgoing link (pred-/succ-directed): a
    // held message is transmitted after the next one on the same link.
    std::optional<State> held_to_pred;
    std::optional<State> held_to_succ;

    auto publish = [&] {
      const bool h = token_(i, self, cache_pred, cache_succ);
      if (h != holding) {
        board_.publish(i, h);
        holding = h;
        if (activation_) activation_(i, h);
      }
    };
    auto send_to = [&](std::size_t target, bool as_pred,
                       std::optional<State>& held) {
      const FrameFate fate = injector_.on_send(i, target, now_us(), rng);
      if (fate.drop) {
        counters.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (fate.corrupt_bits > 0) {
        // No wire layer to flip bits in: a checksummed radio turns
        // corruption into loss (Lemma 9's model).
        counters.corrupted.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (fate.reorder && !held.has_value()) {
        held = self;
        counters.reordered.fetch_add(1, std::memory_order_relaxed);
        return;  // transmitted after the next message on this link
      }
      nodes_[target]->inbox.post_state(as_pred, self);
      counters.sent.fetch_add(1, std::memory_order_relaxed);
      if (fate.duplicate) {
        nodes_[target]->inbox.post_state(as_pred, self);
        counters.sent.fetch_add(1, std::memory_order_relaxed);
        counters.duplicated.fetch_add(1, std::memory_order_relaxed);
      }
      if (held.has_value()) {
        // Flush the held (now stale) message after the fresh one.
        nodes_[target]->inbox.post_state(as_pred, *held);
        counters.sent.fetch_add(1, std::memory_order_relaxed);
        held.reset();
      }
    };
    auto broadcast = [&] {
      // Predecessor first: the update chain that can re-trigger us runs
      // through our successor, so the pred-directed copy must be posted
      // before the succ-directed one (see the class comment).
      send_to(pred, /*as_pred=*/false, held_to_pred);  // we are pred's succ
      send_to(succ, /*as_pred=*/true, held_to_succ);   // we are succ's pred
    };

    // Initial broadcast primes the neighbors' caches.
    broadcast();

    std::optional<State> got_pred;
    std::optional<State> got_succ;
    std::optional<State> got_corrupt;
    while (!st.stop_requested()) {
      if (scripted) {
        const double t = now_us();
        if (injector_.take_crash(i, t)) {
          // Crash with state reset: protocol state and caches are wiped;
          // the node restarts from the default state when the window ends.
          self = State{};
          cache_pred = State{};
          cache_succ = State{};
          counters.crashes.fetch_add(1, std::memory_order_relaxed);
          publish();
        }
        if (injector_.node_down(i, t)) {
          std::this_thread::sleep_for(pause_slice);
          continue;
        }
      }
      const bool received = nodes_[i]->inbox.take(
          params_.refresh_interval, got_pred, got_succ, got_corrupt);
      if (st.stop_requested()) break;
      if (!received) {
        // Refresh timer: rebroadcast the current state (Algorithm 4
        // line 11) so lost messages are eventually repaired.
        broadcast();
        continue;
      }
      if (got_corrupt) self = *got_corrupt;
      if (got_pred) {
        cache_pred = *got_pred;
        counters.received.fetch_add(1, std::memory_order_relaxed);
      }
      if (got_succ) {
        cache_succ = *got_succ;
        counters.received.fetch_add(1, std::memory_order_relaxed);
      }
      const int rule =
          protocol_.enabled_rule(i, self, cache_pred, cache_succ);
      if (rule != stab::kDisabled) {
        self = protocol_.apply(i, rule, self, cache_pred, cache_succ);
        counters.rules.fetch_add(1, std::memory_order_relaxed);
      }
      // Publish before sending: a neighbor that acts on this state update
      // must already be able to observe our new token bit.
      publish();
      broadcast();
    }
  }

  P protocol_;
  RuntimeParams params_;
  TokenFn token_;
  ActivationFn activation_;
  std::vector<State> initial_;

  std::vector<std::unique_ptr<NodeShared>> nodes_;
  std::vector<std::jthread> threads_;
  bool running_ = false;
  std::chrono::steady_clock::time_point epoch_{};

  HolderBoard board_;
  FaultInjector injector_;
};

}  // namespace ssr::runtime
