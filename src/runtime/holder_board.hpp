// Seqlock-protected holder-bit board shared by the real runtimes.
//
// The original scheme (store the holder byte, then bump a version counter
// once; readers compare version before/after) was not a real seqlock: a
// writer that had stored its bit but not yet bumped the counter was
// invisible to the version check, so a reader could observe a mid-update
// holder vector with v1 == v2 and certify the torn snapshot as
// consistent. This board implements the classic odd/even protocol with
// serialized writers:
//
//   writer:  lock(write mutex); version ← odd; write bits; version ← even
//   reader:  v1 ← version; if v1 odd, retry; read bits; v2 ← version;
//            consistent iff v1 == v2
//
// Writers serialize on a mutex (publications are rare — a holder flip per
// handover), so "version is odd" is exactly "some writer is mid-flight",
// and an even, unchanged version brackets a quiescent read. Readers never
// take the mutex. All accesses are seq_cst: the bits are single bytes and
// the publish rate is a few kHz at most, so the simplest memory-order
// reasoning wins over saving a fence. The pair invariant is stress-tested
// under TSan by tests/test_seqlock_stress.cpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "runtime/sampler.hpp"
#include "util/assert.hpp"

namespace ssr::runtime {

class HolderBoard {
 public:
  explicit HolderBoard(std::size_t n)
      : n_(n), bits_(std::make_unique<std::atomic<std::uint8_t>[]>(n)) {
    SSR_REQUIRE(n >= 1, "holder board needs at least one bit");
    for (std::size_t i = 0; i < n_; ++i)
      bits_[i].store(0, std::memory_order_relaxed);
  }

  HolderBoard(const HolderBoard&) = delete;
  HolderBoard& operator=(const HolderBoard&) = delete;

  std::size_t size() const { return n_; }

  /// Seqlocked single-bit publication.
  void publish(std::size_t i, bool holds) {
    publish_batch([&](auto&& set) { set(i, holds); });
  }

  /// Seqlocked multi-bit publication: @p fn receives a set(i, bool)
  /// callable; every bit written inside one call lands in the same
  /// version window, so consistent snapshots see all of them or none.
  template <typename Fn>
  void publish_batch(Fn&& fn) {
    std::lock_guard lock(write_mutex_);
    version_.fetch_add(1, std::memory_order_seq_cst);  // odd: write begins
    fn([this](std::size_t i, bool holds) {
      SSR_ASSERT(i < n_, "holder index out of range");
      bits_[i].store(holds ? 1 : 0, std::memory_order_seq_cst);
    });
    version_.fetch_add(1, std::memory_order_seq_cst);  // even: write ends
  }

  /// Optimistic consistent snapshot; retries while writers interleave.
  /// After @p max_retries the last (possibly torn) read is returned with
  /// consistent = false.
  HolderSnapshot sample(int max_retries = 64) const {
    HolderSnapshot snap;
    snap.holders.resize(n_);
    for (int attempt = 0; attempt < max_retries; ++attempt) {
      const std::uint64_t v1 = version_.load(std::memory_order_seq_cst);
      if ((v1 & 1) != 0) continue;  // a writer is mid-flight
      for (std::size_t i = 0; i < n_; ++i) {
        snap.holders[i] = bits_[i].load(std::memory_order_seq_cst) != 0;
      }
      const std::uint64_t v2 = version_.load(std::memory_order_seq_cst);
      if (v1 == v2) {
        snap.consistent = true;
        return snap;
      }
    }
    snap.consistent = false;
    return snap;
  }

 private:
  std::size_t n_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> bits_;
  std::atomic<std::uint64_t> version_{0};
  std::mutex write_mutex_;
};

}  // namespace ssr::runtime
