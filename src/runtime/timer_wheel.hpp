// Hierarchical (hashed) timer wheel for the multi-ring reactor.
//
// A reactor hosting 100k+ rings arms two timers per ring (refresh broadcast
// and loss-recovery deadline). A std::priority_queue would pay O(log n) per
// arm/cancel with n in the hundreds of thousands; the classic Varghese &
// Lauck hierarchical wheel makes arm, cancel and per-tick advance all O(1)
// amortized, which is what keeps the event loop's idle cost flat as rings
// are added.
//
// Design:
//   * 4 levels x 256 slots. Level 0 has 1-tick resolution; each higher
//     level is 256x coarser. Horizon = 256^4 ticks (~4.3e9), far beyond
//     any refresh interval we schedule.
//   * Timers further than level 0's horizon land in a coarse slot and
//     *cascade* down one level each time their slot's boundary is crossed,
//     reaching level 0 before they fire. A timer never fires early.
//   * Cancellation is O(1) and lazy: the entry is tombstoned in a dense
//     vector and skipped (and reclaimed) when its slot is drained.
//   * Firing order is deterministic: timers that expire on the same tick
//     fire in the order they were scheduled (TimerIds are monotonic, and
//     the drain sorts same-tick entries by id). The virtual-clock reactor
//     relies on this for byte-identical telemetry across runs.
//
// The wheel knows nothing about time units: callers map ticks to whatever
// granularity they want (the reactor uses 1 tick = 1 ms virtual, or one
// epoll_wait round real-time).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace ssr::runtime {

/// Opaque handle for cancellation. Stable for the life of the timer.
using TimerId = std::uint64_t;

inline constexpr TimerId kInvalidTimer = 0;

/// Hierarchical timer wheel mapping TimerId -> user cookie (uint64).
///
/// The cookie is returned from expire(); the reactor packs
/// (ring index, timer kind) into it so firing needs no map lookup.
class TimerWheel {
 public:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;  // 256
  static constexpr std::uint64_t kSlotMask = kSlots - 1;

  TimerWheel() : slots_(kLevels * kSlots) {}

  /// Current tick (the last value passed to advance_to, initially 0).
  [[nodiscard]] std::uint64_t now() const { return now_; }

  /// Number of live (scheduled, not cancelled, not fired) timers.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Schedules a timer to fire at absolute tick @p deadline with @p cookie.
  /// A deadline at or before now() fires on the next advance_to call.
  TimerId schedule_at(std::uint64_t deadline, std::uint64_t cookie) {
    const TimerId id = next_id_++;
    Entry entry;
    entry.id = id;
    entry.deadline = deadline < now_ ? now_ : deadline;
    entry.cookie = cookie;
    place(entry);
    live_ids_.insert(id);
    ++live_;
    return id;
  }

  /// Schedules @p delay ticks from now.
  TimerId schedule_in(std::uint64_t delay, std::uint64_t cookie) {
    return schedule_at(now_ + delay, cookie);
  }

  /// Cancels a timer. Returns true if it was still pending. O(1): the
  /// entry is tombstoned and reclaimed when its slot drains.
  bool cancel(TimerId id) {
    if (id == kInvalidTimer) return false;
    if (!live_ids_.erase(id)) return false;  // already fired or cancelled
    cancelled_.insert(id);
    --live_;
    return true;
  }

  /// Advances the wheel to @p tick (inclusive), appending every expired
  /// (cookie) to @p fired in deterministic order: by deadline, then by
  /// schedule order within a deadline. Cancelled timers are skipped.
  void advance_to(std::uint64_t tick, std::vector<std::uint64_t>& fired) {
    while (now_ <= tick) {
      drain_due(fired);
      if (now_ == tick) break;
      ++now_;
      // Crossing into a new slot at a coarser level cascades its entries
      // down; level-0 entries for the new tick fire on the next loop pass.
      for (int level = 1; level < kLevels; ++level) {
        const std::uint64_t shift =
            static_cast<std::uint64_t>(level) * kSlotBits;
        if ((now_ & ((std::uint64_t{1} << shift) - 1)) != 0) break;
        cascade(level, slot_index(level, now_ >> shift));
      }
    }
  }

  /// Next pending deadline, or max uint64 if the wheel is empty. O(slots)
  /// scan — used by the virtual-clock driver to jump idle gaps, not on the
  /// per-frame hot path.
  [[nodiscard]] std::uint64_t next_deadline() const {
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (const auto& slot : slots_) {
      for (const auto& entry : slot) {
        if (cancelled_.contains(entry.id)) continue;
        if (entry.deadline < best) best = entry.deadline;
      }
    }
    return best;
  }

 private:
  struct Entry {
    TimerId id = kInvalidTimer;
    std::uint64_t deadline = 0;
    std::uint64_t cookie = 0;
  };

  /// Open-addressed tombstone set. The common case is few cancellations
  /// outstanding at once (slots drain and reclaim them), so a small
  /// rebuilding hash set beats std::unordered_set's per-node allocations.
  class IdSet {
   public:
    bool insert(TimerId id) {
      if (contains(id)) return false;
      // Rehash on live + tombstone load so probe always finds an empty
      // slot — a table full of tombstones would loop forever.
      if ((count_ + tombstones_ + 1) * 4 > table_.size() * 3) grow();
      insert_raw(id);
      ++count_;
      return true;
    }

    bool erase(TimerId id) {
      if (table_.empty()) return false;
      std::size_t i = probe(id);
      if (table_[i] != id) return false;
      table_[i] = kTombstone;
      --count_;
      ++tombstones_;
      return true;
    }

    [[nodiscard]] bool contains(TimerId id) const {
      if (table_.empty()) return false;
      return table_[probe(id)] == id;
    }

   private:
    static constexpr TimerId kEmpty = 0;
    static constexpr TimerId kTombstone =
        std::numeric_limits<TimerId>::max();

    [[nodiscard]] std::size_t probe(TimerId id) const {
      // splitmix-style scramble; table size is a power of two.
      std::uint64_t h = id * 0x9E3779B97F4A7C15ull;
      h ^= h >> 29;
      std::size_t i = h & (table_.size() - 1);
      while (table_[i] != kEmpty && table_[i] != id) {
        i = (i + 1) & (table_.size() - 1);
      }
      return i;
    }

    void insert_raw(TimerId id) {
      std::size_t i = probe(id);
      // probe() stops at kEmpty or a match; reuse a tombstone if the
      // linear run crossed one first.
      std::uint64_t h = id * 0x9E3779B97F4A7C15ull;
      h ^= h >> 29;
      std::size_t j = h & (table_.size() - 1);
      while (table_[j] != kEmpty && table_[j] != id) {
        if (table_[j] == kTombstone) {
          i = j;
          --tombstones_;
          break;
        }
        j = (j + 1) & (table_.size() - 1);
      }
      table_[i] = id;
    }

    void grow() {
      std::vector<TimerId> old = std::move(table_);
      // Size to the live count: a rehash also purges tombstones, so the
      // table may stay the same size (or shrink back to the floor).
      std::size_t want = 16;
      while (count_ * 2 >= want) want *= 2;
      table_.assign(want, kEmpty);
      tombstones_ = 0;
      for (TimerId id : old) {
        if (id != kEmpty && id != kTombstone) insert_raw(id);
      }
    }

    std::vector<TimerId> table_;
    std::size_t count_ = 0;
    std::size_t tombstones_ = 0;
  };

  [[nodiscard]] std::size_t slot_index(int level, std::uint64_t ticks) const {
    return static_cast<std::size_t>(level) * kSlots +
           static_cast<std::size_t>(ticks & kSlotMask);
  }

  /// Places an entry in the finest level whose horizon covers its delay.
  void place(const Entry& entry) {
    const std::uint64_t delay =
        entry.deadline > now_ ? entry.deadline - now_ : 0;
    for (int level = 0; level < kLevels; ++level) {
      const std::uint64_t shift = static_cast<std::uint64_t>(level) * kSlotBits;
      const std::uint64_t horizon = std::uint64_t{1}
                                    << (shift + kSlotBits);
      if (delay < horizon || level == kLevels - 1) {
        slots_[slot_index(level, entry.deadline >> shift)].push_back(entry);
        return;
      }
    }
  }

  /// Fires every due level-0 entry for the current tick in schedule order.
  /// A cascade can append a coarse-born entry *after* a directly-scheduled
  /// one with the same deadline, so slot order alone is not schedule
  /// order; TimerIds are monotonic with scheduling, so sorting the (few)
  /// due entries by id restores it.
  void drain_due(std::vector<std::uint64_t>& fired) {
    auto& slot = slots_[slot_index(0, now_)];
    if (slot.empty()) return;
    std::vector<Entry> pending;
    std::vector<Entry> due;
    for (const Entry& entry : slot) {
      if (cancelled_.erase(entry.id)) continue;
      if (entry.deadline <= now_) {
        due.push_back(entry);
        live_ids_.erase(entry.id);
        --live_;
      } else {
        // Same slot index, later lap of the wheel — keep for next time.
        pending.push_back(entry);
      }
    }
    slot = std::move(pending);
    std::sort(due.begin(), due.end(),
              [](const Entry& a, const Entry& b) { return a.id < b.id; });
    for (const Entry& entry : due) fired.push_back(entry.cookie);
  }

  /// Moves every entry of a coarse slot down to its proper finer level.
  void cascade(int level, std::size_t slot) {
    auto entries = std::move(slots_[slot]);
    slots_[slot].clear();
    for (const Entry& entry : entries) {
      if (cancelled_.erase(entry.id)) continue;
      place_below(entry, level);
    }
  }

  /// Like place() but never back into @p from_level or coarser (a cascaded
  /// entry always strictly descends, so cascading terminates).
  void place_below(const Entry& entry, int from_level) {
    const std::uint64_t delay =
        entry.deadline > now_ ? entry.deadline - now_ : 0;
    for (int level = 0; level < from_level; ++level) {
      const std::uint64_t shift = static_cast<std::uint64_t>(level) * kSlotBits;
      const std::uint64_t horizon = std::uint64_t{1}
                                    << (shift + kSlotBits);
      if (delay < horizon || level == from_level - 1) {
        slots_[slot_index(level, entry.deadline >> shift)].push_back(entry);
        return;
      }
    }
    // from_level == 0 cannot happen (cascade starts at level 1).
    slots_[slot_index(0, entry.deadline)].push_back(entry);
  }

  std::vector<std::vector<Entry>> slots_;
  IdSet cancelled_;
  IdSet live_ids_;
  std::uint64_t now_ = 0;
  std::size_t live_ = 0;
  TimerId next_id_ = 1;
};

}  // namespace ssr::runtime
