// Shared fault-injection vocabulary for the message-passing runtimes.
//
// The paper's empirical section (§5, Figs. 11-13) and its fault model
// (§2.2: loss, duplication, corruption) are only half the story for a
// deployed ring: Herman's safe-register construction and Dolev-Herman's
// "unsupportive environments" analysis both show that it is *structured*
// fault patterns — bursts on one link, an asymmetric dead direction, a
// partitioned ring, a node that crashes and restarts from a blank state —
// that actually break token circulation, not i.i.d. per-frame loss. A
// FaultPlan describes both kinds:
//
//   * probabilistic per-frame faults (drop, duplicate, reorder,
//     multi-bit corruption), decided by the caller-supplied Rng so a
//     seeded run replays the same fault sequence;
//   * scripted fault *windows* on the shared fault clock (microseconds
//     since the runtime was started / the simulation began): burst loss
//     on a chosen directional link, a directional link failure, a ring
//     partition along two cut edges, a node pause, and a node
//     crash-restart with state reset.
//
// One plan is consumed by all three executors — ThreadedRing (real
// threads), UdpSsrRing (real loopback sockets) and msgpass::CstSimulation
// (deterministic virtual time) — so the same adversarial schedule can be
// replayed against the paper's algorithm in every model. The legacy
// RuntimeParams::loss_probability / UdpParams::drop_probability /
// UdpParams::corruption_probability knobs survive as thin conveniences
// that are folded into the plan's probabilities (probability union).
//
// The textual spec format (FaultPlan::parse / FaultPlan::describe):
//
//   spec      := item (';' item)*
//   item      := prob | window
//   prob      := ('drop'|'dup'|'reorder'|'corrupt') '=' P
//              | 'corrupt-bits' '=' N
//   window    := kind '@' time '-' time [':' arg (',' arg)*]
//   kind      := 'burst' | 'linkdown' | 'partition' | 'pause' | 'crash'
//   time      := number ['us'|'ms'|'s']          (default microseconds)
//   arg       := 'link' '=' (index|'*') '->' (index|'*')   (burst, linkdown)
//              | 'node' '=' index                          (pause, crash)
//              | 'cut' '=' index '/' index                 (partition)
//
// Example: "drop=0.05;burst@200ms-400ms;linkdown@500ms-600ms:link=1->2;
//           partition@700ms-750ms:cut=0/2;crash@900ms-950ms:node=3"
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/rng.hpp"

namespace ssr::runtime {

/// Wildcard node index in link selectors ("every sender" / "every
/// receiver").
inline constexpr std::size_t kAnyNode = std::numeric_limits<std::size_t>::max();

/// Per-frame fault probabilities, applied to every transmission that no
/// scripted window already claimed.
struct FaultProbabilities {
  double drop = 0.0;       ///< frame is silently discarded before send
  double duplicate = 0.0;  ///< frame is delivered twice
  double reorder = 0.0;    ///< frame is held back and delivered stale
  double corrupt = 0.0;    ///< frame has corrupt_bits random bits flipped
  std::size_t corrupt_bits = 1;

  bool any() const {
    return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 || corrupt > 0.0;
  }
};

/// A scripted fault, active on [begin_us, end_us) of the fault clock.
struct FaultWindow {
  enum class Kind : std::uint8_t {
    kBurstLoss,     ///< every matching frame is dropped
    kLinkDown,      ///< directional link failure (same matching as burst;
                    ///< distinct kind for intent and telemetry labels)
    kPartition,     ///< ring cut along edges (cut_a,cut_a+1),(cut_b,cut_b+1)
    kNodePause,     ///< node stops processing and sending
    kCrashRestart,  ///< node is down for the window and restarts with a
                    ///< reset (default-constructed) state
  };

  Kind kind = Kind::kBurstLoss;
  double begin_us = 0.0;
  double end_us = 0.0;
  /// Directional link selector (kBurstLoss / kLinkDown); kAnyNode matches
  /// every sender / receiver.
  std::size_t from = kAnyNode;
  std::size_t to = kAnyNode;
  /// Target node (kNodePause / kCrashRestart).
  std::size_t node = kAnyNode;
  /// Partition cut edges: the ring edges (cut_a, cut_a+1) and
  /// (cut_b, cut_b+1) are removed in both directions.
  std::size_t cut_a = 0;
  std::size_t cut_b = 0;

  bool active(double now_us) const {
    return now_us >= begin_us && now_us < end_us;
  }
};

const char* to_string(FaultWindow::Kind kind);

/// A complete fault schedule: background probabilities plus scripted
/// windows. Plain data — the runtimes instantiate a FaultInjector from it.
struct FaultPlan {
  FaultProbabilities probabilities;
  std::vector<FaultWindow> windows;

  bool empty() const { return !probabilities.any() && windows.empty(); }

  /// Checks ranges ([0,1) probabilities, begin < end, selectors < n).
  /// Throws std::invalid_argument on violation.
  void validate(std::size_t n) const;

  /// Parses the textual spec format documented at the top of this header.
  /// Throws std::invalid_argument with a pointer at the offending item.
  static FaultPlan parse(const std::string& spec);

  /// Canonical spec string; FaultPlan::parse(describe()) round-trips.
  std::string describe() const;

  Json to_json() const;

  /// Returns a copy of this plan with @p drop / @p corrupt folded into the
  /// probabilistic faults via probability union (1 - (1-a)(1-b)). This is
  /// how the legacy RuntimeParams / UdpParams knobs become plans.
  FaultPlan with_legacy(double drop, double corrupt = 0.0) const;
};

/// What the injector decided for one frame.
struct FrameFate {
  bool drop = false;
  bool duplicate = false;
  bool reorder = false;
  std::size_t corrupt_bits = 0;  ///< 0 = leave the frame intact
  /// True when a scripted window (not a probability draw) caused the drop.
  bool window_drop = false;
};

/// Decision engine for one runtime instance. All randomness comes from the
/// caller's Rng (per-node streams in the real runtimes, the simulation
/// stream in msgpass), so the injector itself is read-only on the frame
/// path and safe to share between node threads. The only mutable state is
/// the per-crash-window "already fired" flag, which is owned by the target
/// node's thread (take_crash must only be called by the context that owns
/// that node's state).
class FaultInjector {
 public:
  /// Validates @p plan against ring size @p n.
  FaultInjector(FaultPlan plan, std::size_t n);

  const FaultPlan& plan() const { return plan_; }
  std::size_t ring_size() const { return n_; }

  /// Frame-level verdict for a transmission from -> to at @p now_us on the
  /// fault clock. A window match consumes no randomness; the probability
  /// draws happen in a fixed order (drop, corrupt, duplicate, reorder) so
  /// seeded runs replay exactly.
  FrameFate on_send(std::size_t from, std::size_t to, double now_us,
                    Rng& rng) const;

  /// True while @p node is scripted down (pause window or crash-restart
  /// dead time).
  bool node_down(std::size_t node, double now_us) const;

  /// Fires at most once per crash window once now_us >= begin: the caller
  /// must reset the node's state. Single-owner access (see class comment).
  bool take_crash(std::size_t node, double now_us);

  /// Re-arms every crash window (for a stop()/start() restart cycle; must
  /// not race with node threads).
  void rearm();

 private:
  bool frame_blocked(const FaultWindow& w, std::size_t from,
                     std::size_t to) const;

  FaultPlan plan_;
  std::size_t n_;
  std::vector<std::uint8_t> crash_fired_;  // parallel to plan_.windows
};

}  // namespace ssr::runtime
