// SSRmin over real UDP sockets on the loopback interface — the closest
// in-process stand-in for the paper's wireless sensor network. Each node
// is a thread with its own datagram socket; states travel as CRC-framed
// wire messages (src/wire); corrupted frames are rejected by checksum and
// thus behave as losses, exactly the fault model Lemma 9 assumes.
//
// Fault injection happens at the sender, driven by a runtime::FaultPlan
// (UdpParams::fault_plan; the legacy drop/corruption probability knobs
// fold into it). Corruption here is real: bits are flipped in the encoded
// frame and the receiver's CRC does the rejecting. Reordered frames are
// held in a per-link slot and transmitted after the next frame on that
// link. Scripted windows (burst loss, link down, partition, pause, crash
// with state reset) run on a wall-clock fault clock counted from start().
//
// Differences from Algorithm 4, both documented and deliberate:
//   * a node broadcasts when its state CHANGES and on the periodic refresh
//     timer, rather than after every receipt — same repair semantics,
//     without the receipt->send->receipt storm that would melt a loopback
//     interface;
//   * receivers drain their socket and keep only the newest valid frame
//     per neighbor (latest-value semantics; see the ThreadedRing comment
//     about why this is required for Theorem 3's guarantee).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/ssrmin.hpp"
#include "runtime/fault_plan.hpp"
#include "runtime/holder_board.hpp"
#include "runtime/sampler.hpp"
#include "runtime/telemetry.hpp"
#include "util/rng.hpp"

namespace ssr::runtime {

struct UdpParams {
  /// Refresh period (socket receive timeout).
  std::chrono::microseconds refresh_interval{2000};
  /// Convenience knob: probability that an outgoing frame has one random
  /// bit flipped (exercises the CRC rejection path). Folded into
  /// fault_plan at construction.
  double corruption_probability = 0.0;
  /// Convenience knob: probability that an outgoing frame is synthetically
  /// dropped. Folded into fault_plan at construction.
  double drop_probability = 0.0;
  std::uint64_t seed = 1;
  /// Full fault schedule (see runtime/fault_plan.hpp). Window times count
  /// from start().
  FaultPlan fault_plan;

  void validate() const;
  /// fault_plan with the legacy drop/corruption knobs folded in.
  FaultPlan effective_plan() const {
    return fault_plan.with_legacy(drop_probability, corruption_probability);
  }
};

/// Aggregate wire-level counters.
struct UdpStats {
  std::uint64_t frames_sent = 0;        ///< actually handed to the kernel
  std::uint64_t frames_dropped = 0;     ///< injector drops (incl. windows)
  std::uint64_t frames_duplicated = 0;  ///< extra copies transmitted
  std::uint64_t frames_reordered = 0;   ///< held back for stale delivery
  std::uint64_t frames_corrupted = 0;   ///< transmitted with flipped bits
  std::uint64_t frames_received = 0;    ///< valid frames accepted
  std::uint64_t frames_rejected = 0;    ///< CRC/parse/zero-length/truncated
  /// Subset of frames_rejected that carried a newer wire version (a v2
  /// multiring frame arriving at this v1 single-ring node).
  std::uint64_t frames_wrong_version = 0;
  /// Receive-queue overflow drops reported by the kernel (SK_MEMINFO).
  std::uint64_t kernel_rx_drops = 0;
  std::uint64_t send_errors = 0;        ///< sendto() failures
  std::uint64_t rule_executions = 0;
  std::uint64_t crash_restarts = 0;
};

/// A ring of SSRmin nodes communicating over loopback UDP.
class UdpSsrRing {
 public:
  UdpSsrRing(core::SsrMinRing ring, core::SsrConfig initial, UdpParams params);
  ~UdpSsrRing();

  UdpSsrRing(const UdpSsrRing&) = delete;
  UdpSsrRing& operator=(const UdpSsrRing&) = delete;

  std::size_t size() const { return ports_.size(); }
  /// The UDP port each node is bound to (loopback).
  const std::vector<std::uint16_t>& ports() const { return ports_; }

  /// Launches the node threads. Restartable after stop(): the run restarts
  /// from the initial configuration on the same sockets, with the fault
  /// clock and crash windows re-armed (counters keep accumulating).
  void start();
  void stop();

  /// Consistent holder snapshot (seqlocked; see HolderBoard).
  HolderSnapshot sample(int max_retries = 64) const;

  /// Samples holder bits periodically for the duration; see ThreadedRing.
  /// When @p telemetry is given, the holder timeline, fault windows and
  /// per-node counters are recorded into it.
  SamplerReport observe(std::chrono::milliseconds duration,
                        std::chrono::microseconds interval,
                        Telemetry* telemetry = nullptr);

  UdpStats stats() const;
  const FaultPlan& fault_plan() const { return injector_.plan(); }

  /// Copies the per-node counters into @p telemetry.
  void fill_node_telemetry(Telemetry& telemetry) const;

 private:
  /// Per-node wire counters; written only by the owning node thread,
  /// cache-line aligned to dodge false sharing on the send path.
  struct alignas(64) PerNodeCounters {
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> duplicated{0};
    std::atomic<std::uint64_t> reordered{0};
    std::atomic<std::uint64_t> corrupted{0};
    std::atomic<std::uint64_t> received{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> wrong_version{0};
    std::atomic<std::uint64_t> send_errors{0};
    std::atomic<std::uint64_t> rules{0};
    std::atomic<std::uint64_t> crashes{0};
  };

  void node_main(std::size_t i, std::uint64_t seed);
  void publish_initial_holders();
  double now_us() const;
  std::uint64_t sum_counter(
      std::atomic<std::uint64_t> PerNodeCounters::* member) const;

  core::SsrMinRing ring_;
  UdpParams params_;
  core::SsrConfig initial_;

  std::vector<int> sockets_;
  std::vector<std::uint16_t> ports_;
  std::vector<std::jthread> threads_;
  std::atomic<bool> stopping_{false};
  bool running_ = false;
  std::chrono::steady_clock::time_point epoch_{};

  HolderBoard board_;
  FaultInjector injector_;
  std::unique_ptr<PerNodeCounters[]> counters_;
};

}  // namespace ssr::runtime
