// SSRmin over real UDP sockets on the loopback interface — the closest
// in-process stand-in for the paper's wireless sensor network. Each node
// is a thread with its own datagram socket; states travel as CRC-framed
// wire messages (src/wire); corrupted frames are rejected by checksum and
// thus behave as losses, exactly the fault model Lemma 9 assumes.
//
// Differences from Algorithm 4, both documented and deliberate:
//   * a node broadcasts when its state CHANGES and on the periodic refresh
//     timer, rather than after every receipt — same repair semantics,
//     without the receipt->send->receipt storm that would melt a loopback
//     interface;
//   * receivers drain their socket and keep only the newest valid frame
//     per neighbor (latest-value semantics; see the ThreadedRing comment
//     about why this is required for Theorem 3's guarantee).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/ssrmin.hpp"
#include "runtime/threaded_ring.hpp"  // HolderSnapshot, SamplerReport
#include "util/rng.hpp"

namespace ssr::runtime {

struct UdpParams {
  /// Refresh period (socket receive timeout).
  std::chrono::microseconds refresh_interval{2000};
  /// Probability that an outgoing frame has one random bit flipped
  /// (exercises the CRC rejection path).
  double corruption_probability = 0.0;
  /// Probability that an outgoing frame is synthetically dropped.
  double drop_probability = 0.0;
  std::uint64_t seed = 1;

  void validate() const;
};

/// Aggregate wire-level counters.
struct UdpStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_dropped = 0;     ///< synthetic drops before send
  std::uint64_t frames_received = 0;    ///< valid frames accepted
  std::uint64_t frames_rejected = 0;    ///< checksum / parse failures
  std::uint64_t rule_executions = 0;
};

/// A ring of SSRmin nodes communicating over loopback UDP.
class UdpSsrRing {
 public:
  UdpSsrRing(core::SsrMinRing ring, core::SsrConfig initial, UdpParams params);
  ~UdpSsrRing();

  UdpSsrRing(const UdpSsrRing&) = delete;
  UdpSsrRing& operator=(const UdpSsrRing&) = delete;

  std::size_t size() const { return ports_.size(); }
  /// The UDP port each node is bound to (loopback).
  const std::vector<std::uint16_t>& ports() const { return ports_; }

  void start();
  void stop();

  /// Consistent holder snapshot (same optimistic versioned scheme as
  /// ThreadedRing).
  HolderSnapshot sample(int max_retries = 64) const;

  /// Samples holder bits periodically for the duration; see ThreadedRing.
  SamplerReport observe(std::chrono::milliseconds duration,
                        std::chrono::microseconds interval);

  UdpStats stats() const;

 private:
  void node_main(std::size_t i, std::uint64_t seed);

  core::SsrMinRing ring_;
  UdpParams params_;
  core::SsrConfig initial_;

  std::vector<int> sockets_;
  std::vector<std::uint16_t> ports_;
  std::vector<std::jthread> threads_;
  std::atomic<bool> stopping_{false};
  bool running_ = false;

  std::unique_ptr<std::atomic<std::uint8_t>[]> holders_;
  std::atomic<std::uint64_t> version_{0};

  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_dropped_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> frames_rejected_{0};
  std::atomic<std::uint64_t> rule_execs_{0};
};

}  // namespace ssr::runtime
