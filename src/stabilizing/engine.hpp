// The state-reading / composite-atomicity execution engine (paper §2.1).
//
// One engine step: the daemon selects a non-empty subset V' of the enabled
// processes; every P_i in V' atomically reads the *pre-step* states of
// itself and its neighbors and writes its next state. All writes of a step
// are simultaneous — the engine snapshots neighbor reads before applying
// any command, which is what the composite atomicity + distributed daemon
// semantics require (and what makes synchronous schedules meaningful).
//
// Enabled-set maintenance is incremental: because a guard of P_i reads
// only the states of P_{i-1}, P_i and P_{i+1} (the RingProtocol contract),
// a step that moves k processes can only change enabledness at those k
// processes and their ring neighbors. The engine therefore keeps a
// persistent per-process rule cache plus the sorted enabled set, and
// repairs both in O(k) guard evaluations per step instead of rescanning
// all n processes. The naive full scan survives as a debug oracle
// (set_debug_scan_checks / enabled_cache_consistent) and is exercised by a
// differential test.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "stabilizing/daemon.hpp"
#include "stabilizing/protocol.hpp"
#include "util/assert.hpp"

namespace ssr::stab {

/// Executes a RingProtocol over an explicit configuration.
template <RingProtocol P>
class Engine {
 public:
  using State = typename P::State;
  using Configuration = std::vector<State>;

  Engine(P protocol, Configuration initial)
      : protocol_(std::move(protocol)), config_(std::move(initial)) {
    SSR_REQUIRE(config_.size() == protocol_.size(),
                "configuration size must equal ring size");
    SSR_REQUIRE(config_.size() >= 2, "ring needs at least two processes");
    rule_cache_.resize(config_.size());
    rebuild_enabled_cache();
  }

  const P& protocol() const { return protocol_; }
  const Configuration& config() const { return config_; }
  std::size_t size() const { return config_.size(); }

  /// Replaces the whole configuration (e.g. transient-fault injection).
  void reset(Configuration c) {
    SSR_REQUIRE(c.size() == config_.size(), "ring size cannot change");
    config_ = std::move(c);
    rebuild_enabled_cache();
  }

  /// Overwrites one process's state (single-process transient fault).
  /// Repairs the enabled cache at i and its two neighbors only.
  void corrupt(std::size_t i, State s) {
    SSR_REQUIRE(i < config_.size(), "process index out of range");
    config_[i] = std::move(s);
    const std::size_t n = config_.size();
    dirty_.clear();
    dirty_.push_back(pred_index(i, n));
    dirty_.push_back(i);
    dirty_.push_back(succ_index(i, n));
    repair_enabled_cache();
  }

  /// Rule currently enabled at process i (kDisabled if none). Served from
  /// the incremental cache; scan_rule() is the uncached equivalent.
  int enabled_rule(std::size_t i) const {
    SSR_REQUIRE(i < config_.size(), "process index out of range");
    return rule_cache_[i];
  }

  bool is_enabled(std::size_t i) const { return enabled_rule(i) != kDisabled; }

  /// Number of currently enabled processes.
  std::size_t enabled_count() const { return enabled_indices_.size(); }

  /// Zero-copy view of the current enabled set, in the shape daemons
  /// consume. Invalidated by step/corrupt/reset.
  EnabledView enabled_view() const {
    return EnabledView{enabled_indices_, enabled_rules_, config_.size()};
  }

  /// Sorted indices of all enabled processes, with their rule ids (copied
  /// out of the cache; prefer enabled_view() on hot paths).
  void enabled(std::vector<std::size_t>& indices, std::vector<int>& rules) const {
    indices = enabled_indices_;
    rules = enabled_rules_;
  }

  /// Sorted enabled indices. References the engine's persistent cache (no
  /// allocation); invalidated by step/corrupt/reset. Passing it straight
  /// back into step() is safe — the step reads the selection before it
  /// touches the cache.
  const std::vector<std::size_t>& enabled_indices() const {
    return enabled_indices_;
  }

  /// Applies one composite-atomicity step at the given processes. Every
  /// selected process must be enabled; all selected processes read the
  /// pre-step configuration. Returns the rules executed (parallel to
  /// @p selected); the reference stays valid until the next step() call.
  const std::vector<int>& step(std::span<const std::size_t> selected) {
    SSR_REQUIRE(!selected.empty(), "a step must move at least one process");
    const std::size_t n = config_.size();
    scratch_writes_.clear();
    step_rules_.clear();
    scratch_writes_.reserve(selected.size());
    step_rules_.reserve(selected.size());
    // @p selected may alias enabled_indices_; it is not read again after
    // this loop.
    for (std::size_t i : selected) {
      SSR_REQUIRE(i < n, "selected process index out of range");
      const State& self = config_[i];
      const State& pred = config_[pred_index(i, n)];
      const State& succ = config_[succ_index(i, n)];
      const int rule = rule_cache_[i];
      SSR_REQUIRE(rule != kDisabled, "daemon selected a disabled process");
      scratch_writes_.emplace_back(i, protocol_.apply(i, rule, self, pred, succ));
      step_rules_.push_back(rule);
    }
    dirty_.clear();
    for (auto& [i, s] : scratch_writes_) {
      config_[i] = std::move(s);
      dirty_.push_back(pred_index(i, n));
      dirty_.push_back(i);
      dirty_.push_back(succ_index(i, n));
    }
    repair_enabled_cache();
    ++steps_;
    moves_ += selected.size();
    if (debug_scan_checks_) {
      SSR_ASSERT(enabled_cache_consistent(),
                 "incremental enabled cache diverged from the full scan");
    }
    return step_rules_;
  }

  /// Asks the daemon for a selection and applies it. Returns false (and
  /// performs nothing) iff no process is enabled — which, for the protocols
  /// in this library, would falsify the paper's no-deadlock lemma.
  bool step_with(Daemon& daemon) {
    if (enabled_indices_.empty()) return false;
    daemon.select_into(enabled_view(), selection_scratch_);
    SSR_REQUIRE(!selection_scratch_.empty(),
                "daemon returned an empty selection");
    step(selection_scratch_);
    return true;
  }

  /// Number of daemon steps executed so far.
  std::uint64_t steps() const { return steps_; }
  /// Total process moves (sum of selection sizes over all steps).
  std::uint64_t moves() const { return moves_; }

  /// Uncached enabled rule at i — the pre-incremental O(1)-per-process
  /// guard evaluation, kept as the oracle for cache validation.
  int scan_rule(std::size_t i) const {
    const std::size_t n = config_.size();
    return protocol_.enabled_rule(i, config_[i], config_[pred_index(i, n)],
                                  config_[succ_index(i, n)]);
  }

  /// Full-scan differential check: does the incremental cache equal a
  /// fresh O(n) rescan? Used by tests and the debug-check mode.
  bool enabled_cache_consistent() const {
    std::size_t pos = 0;
    for (std::size_t i = 0; i < config_.size(); ++i) {
      const int r = scan_rule(i);
      if (rule_cache_[i] != r) return false;
      if (r != kDisabled) {
        if (pos >= enabled_indices_.size() || enabled_indices_[pos] != i ||
            enabled_rules_[pos] != r) {
          return false;
        }
        ++pos;
      }
    }
    return pos == enabled_indices_.size();
  }

  /// When on, every step() re-derives the enabled set with the naive full
  /// scan and asserts it matches the incremental cache. O(n) per step —
  /// meant for tests and debugging, not measurement runs.
  void set_debug_scan_checks(bool on) { debug_scan_checks_ = on; }

 private:
  /// O(n) rebuild, used at construction and reset().
  void rebuild_enabled_cache() {
    enabled_indices_.clear();
    enabled_rules_.clear();
    for (std::size_t i = 0; i < config_.size(); ++i) {
      const int r = scan_rule(i);
      rule_cache_[i] = r;
      if (r != kDisabled) {
        enabled_indices_.push_back(i);
        enabled_rules_.push_back(r);
      }
    }
  }

  /// Re-evaluates the guards at the (unsorted, possibly duplicated)
  /// indices in dirty_ and splices the changes into the sorted enabled
  /// set. Guard work is O(|dirty|); the splice is a linear merge over the
  /// enabled list, which involves no guard evaluations.
  void repair_enabled_cache() {
    std::sort(dirty_.begin(), dirty_.end());
    dirty_.erase(std::unique(dirty_.begin(), dirty_.end()), dirty_.end());
    merged_indices_.clear();
    merged_rules_.clear();
    std::size_t a = 0;  // cursor into the old enabled list
    for (std::size_t d : dirty_) {
      while (a < enabled_indices_.size() && enabled_indices_[a] < d) {
        merged_indices_.push_back(enabled_indices_[a]);
        merged_rules_.push_back(enabled_rules_[a]);
        ++a;
      }
      if (a < enabled_indices_.size() && enabled_indices_[a] == d) ++a;
      const int r = scan_rule(d);
      rule_cache_[d] = r;
      if (r != kDisabled) {
        merged_indices_.push_back(d);
        merged_rules_.push_back(r);
      }
    }
    while (a < enabled_indices_.size()) {
      merged_indices_.push_back(enabled_indices_[a]);
      merged_rules_.push_back(enabled_rules_[a]);
      ++a;
    }
    enabled_indices_.swap(merged_indices_);
    enabled_rules_.swap(merged_rules_);
  }

  P protocol_;
  Configuration config_;
  std::uint64_t steps_ = 0;
  std::uint64_t moves_ = 0;
  bool debug_scan_checks_ = false;
  // Incremental enabled-set cache: rule_cache_[i] is the enabled rule at
  // process i (kDisabled if none); enabled_indices_/enabled_rules_ are the
  // sorted enabled set derived from it. Always in sync with config_.
  std::vector<int> rule_cache_;
  std::vector<std::size_t> enabled_indices_;
  std::vector<int> enabled_rules_;
  // Scratch for repair_enabled_cache (reused to avoid per-step allocation).
  std::vector<std::size_t> dirty_;
  std::vector<std::size_t> merged_indices_;
  std::vector<int> merged_rules_;
  // Reused across step calls (same reason); step_rules_ doubles as the
  // returned rule list.
  std::vector<std::pair<std::size_t, State>> scratch_writes_;
  std::vector<int> step_rules_;
  // Daemon selection buffer for step_with (select_into avoids the per-step
  // vector the old Daemon::select interface allocated).
  std::vector<std::size_t> selection_scratch_;
};

/// Outcome of a bounded run (see run_until below).
struct RunResult {
  bool reached = false;        ///< predicate became true within the budget
  bool deadlocked = false;     ///< no process was enabled before that
  std::uint64_t steps = 0;     ///< daemon steps consumed by this run
  std::uint64_t moves = 0;     ///< process moves consumed by this run
};

/// Runs the engine under the daemon until predicate(config) holds, a
/// deadlock occurs, or max_steps is exhausted. The predicate is evaluated
/// on the initial configuration first (zero-step success is possible).
template <RingProtocol P, typename Predicate>
RunResult run_until(Engine<P>& engine, Daemon& daemon, Predicate&& predicate,
                    std::uint64_t max_steps) {
  RunResult result;
  const std::uint64_t steps0 = engine.steps();
  const std::uint64_t moves0 = engine.moves();
  for (std::uint64_t t = 0; t <= max_steps; ++t) {
    if (predicate(engine.config())) {
      result.reached = true;
      break;
    }
    if (t == max_steps) break;
    if (!engine.step_with(daemon)) {
      result.deadlocked = true;
      break;
    }
  }
  result.steps = engine.steps() - steps0;
  result.moves = engine.moves() - moves0;
  return result;
}

}  // namespace ssr::stab
