// The state-reading / composite-atomicity execution engine (paper §2.1).
//
// One engine step: the daemon selects a non-empty subset V' of the enabled
// processes; every P_i in V' atomically reads the *pre-step* states of
// itself and its neighbors and writes its next state. All writes of a step
// are simultaneous — the engine snapshots neighbor reads before applying
// any command, which is what the composite atomicity + distributed daemon
// semantics require (and what makes synchronous schedules meaningful).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "stabilizing/daemon.hpp"
#include "stabilizing/protocol.hpp"
#include "util/assert.hpp"

namespace ssr::stab {

/// Executes a RingProtocol over an explicit configuration.
template <RingProtocol P>
class Engine {
 public:
  using State = typename P::State;
  using Configuration = std::vector<State>;

  Engine(P protocol, Configuration initial)
      : protocol_(std::move(protocol)), config_(std::move(initial)) {
    SSR_REQUIRE(config_.size() == protocol_.size(),
                "configuration size must equal ring size");
    SSR_REQUIRE(config_.size() >= 2, "ring needs at least two processes");
  }

  const P& protocol() const { return protocol_; }
  const Configuration& config() const { return config_; }
  std::size_t size() const { return config_.size(); }

  /// Replaces the whole configuration (e.g. transient-fault injection).
  void reset(Configuration c) {
    SSR_REQUIRE(c.size() == config_.size(), "ring size cannot change");
    config_ = std::move(c);
  }

  /// Overwrites one process's state (single-process transient fault).
  void corrupt(std::size_t i, State s) {
    SSR_REQUIRE(i < config_.size(), "process index out of range");
    config_[i] = std::move(s);
  }

  /// Rule currently enabled at process i (kDisabled if none).
  int enabled_rule(std::size_t i) const {
    const std::size_t n = config_.size();
    return protocol_.enabled_rule(i, config_[i], config_[pred_index(i, n)],
                                  config_[succ_index(i, n)]);
  }

  bool is_enabled(std::size_t i) const { return enabled_rule(i) != kDisabled; }

  /// Sorted indices of all enabled processes, with their rule ids.
  void enabled(std::vector<std::size_t>& indices, std::vector<int>& rules) const {
    indices.clear();
    rules.clear();
    for (std::size_t i = 0; i < config_.size(); ++i) {
      const int r = enabled_rule(i);
      if (r != kDisabled) {
        indices.push_back(i);
        rules.push_back(r);
      }
    }
  }

  std::vector<std::size_t> enabled_indices() const {
    std::vector<std::size_t> idx;
    std::vector<int> rules;
    enabled(idx, rules);
    return idx;
  }

  /// Applies one composite-atomicity step at the given processes. Every
  /// selected process must be enabled; all selected processes read the
  /// pre-step configuration. Returns the rules executed (parallel to
  /// @p selected); the reference stays valid until the next step() call.
  const std::vector<int>& step(std::span<const std::size_t> selected) {
    SSR_REQUIRE(!selected.empty(), "a step must move at least one process");
    const std::size_t n = config_.size();
    scratch_writes_.clear();
    step_rules_.clear();
    scratch_writes_.reserve(selected.size());
    step_rules_.reserve(selected.size());
    for (std::size_t i : selected) {
      SSR_REQUIRE(i < n, "selected process index out of range");
      const State& self = config_[i];
      const State& pred = config_[pred_index(i, n)];
      const State& succ = config_[succ_index(i, n)];
      const int rule = protocol_.enabled_rule(i, self, pred, succ);
      SSR_REQUIRE(rule != kDisabled, "daemon selected a disabled process");
      scratch_writes_.emplace_back(i, protocol_.apply(i, rule, self, pred, succ));
      step_rules_.push_back(rule);
    }
    for (auto& [i, s] : scratch_writes_) config_[i] = std::move(s);
    ++steps_;
    moves_ += selected.size();
    return step_rules_;
  }

  /// Asks the daemon for a selection and applies it. Returns false (and
  /// performs nothing) iff no process is enabled — which, for the protocols
  /// in this library, would falsify the paper's no-deadlock lemma.
  bool step_with(Daemon& daemon) {
    enabled(scratch_indices_, scratch_rules_);
    if (scratch_indices_.empty()) return false;
    const EnabledView view{scratch_indices_, scratch_rules_, config_.size()};
    const std::vector<std::size_t> chosen = daemon.select(view);
    SSR_REQUIRE(!chosen.empty(), "daemon returned an empty selection");
    step(chosen);
    return true;
  }

  /// Number of daemon steps executed so far.
  std::uint64_t steps() const { return steps_; }
  /// Total process moves (sum of selection sizes over all steps).
  std::uint64_t moves() const { return moves_; }

 private:
  P protocol_;
  Configuration config_;
  std::uint64_t steps_ = 0;
  std::uint64_t moves_ = 0;
  // Reused across step_with calls to avoid per-step allocation.
  std::vector<std::size_t> scratch_indices_;
  std::vector<int> scratch_rules_;
  // Reused across step calls (same reason); step_rules_ doubles as the
  // returned rule list.
  std::vector<std::pair<std::size_t, State>> scratch_writes_;
  std::vector<int> step_rules_;
};

/// Outcome of a bounded run (see run_until below).
struct RunResult {
  bool reached = false;        ///< predicate became true within the budget
  bool deadlocked = false;     ///< no process was enabled before that
  std::uint64_t steps = 0;     ///< daemon steps consumed by this run
  std::uint64_t moves = 0;     ///< process moves consumed by this run
};

/// Runs the engine under the daemon until predicate(config) holds, a
/// deadlock occurs, or max_steps is exhausted. The predicate is evaluated
/// on the initial configuration first (zero-step success is possible).
template <RingProtocol P, typename Predicate>
RunResult run_until(Engine<P>& engine, Daemon& daemon, Predicate&& predicate,
                    std::uint64_t max_steps) {
  RunResult result;
  const std::uint64_t steps0 = engine.steps();
  const std::uint64_t moves0 = engine.moves();
  for (std::uint64_t t = 0; t <= max_steps; ++t) {
    if (predicate(engine.config())) {
      result.reached = true;
      break;
    }
    if (t == max_steps) break;
    if (!engine.step_with(daemon)) {
      result.deadlocked = true;
      break;
    }
  }
  result.steps = engine.steps() - steps0;
  result.moves = engine.moves() - moves0;
  return result;
}

}  // namespace ssr::stab
