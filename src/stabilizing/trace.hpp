// Execution trace recording and Figure-4-style pretty printing.
//
// The paper presents executions as tables: one row per configuration, one
// column per process, each cell showing the local state, token-holding
// marks ('P' / 'S' / 'T') and the enabled rule ("/g"). TraceRecorder
// captures configurations plus the daemon's selections; TracePrinter turns
// them into exactly that kind of table given protocol-specific formatting
// callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "stabilizing/engine.hpp"
#include "stabilizing/protocol.hpp"
#include "util/table.hpp"

namespace ssr::stab {

/// One recorded step: the configuration *before* the step, which processes
/// the daemon selected and which rules they executed.
template <RingProtocol P>
struct TraceEntry {
  std::vector<typename P::State> config;
  std::vector<std::size_t> selected;
  std::vector<int> rules;
};

/// Records an execution driven through its run() helper.
template <RingProtocol P>
class TraceRecorder {
 public:
  using Entry = TraceEntry<P>;

  /// Runs @p steps daemon steps (or until deadlock) recording every
  /// pre-step configuration plus a final entry with the terminal
  /// configuration (empty selection).
  void run(Engine<P>& engine, Daemon& daemon, std::uint64_t steps) {
    for (std::uint64_t t = 0; t < steps; ++t) {
      Entry e;
      e.config = engine.config();
      std::vector<std::size_t> idx;
      std::vector<int> rules;
      engine.enabled(idx, rules);
      if (idx.empty()) {
        entries_.push_back(std::move(e));
        return;
      }
      const EnabledView view{idx, rules, engine.size()};
      e.selected = daemon.select(view);
      e.rules = engine.step(e.selected);
      entries_.push_back(std::move(e));
    }
    Entry final_entry;
    final_entry.config = engine.config();
    entries_.push_back(std::move(final_entry));
  }

  const std::vector<Entry>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

 private:
  std::vector<Entry> entries_;
};

/// Formatting hooks a protocol provides to render its states.
template <typename State>
struct TraceStyle {
  /// Renders the raw local state, e.g. "3.0.1" for SSRmin.
  std::function<std::string(const State&)> format_state;
  /// Token/annotation marks for process i in the given configuration, e.g.
  /// "PS" when P_i holds both tokens. May be empty.
  std::function<std::string(const std::vector<State>&, std::size_t)> annotate;
};

/// Renders a recorded trace as a step-by-process table in the style of the
/// paper's Figure 4: cells look like "3.0.1PS/1" (state, token marks,
/// enabled rule of the process *that was selected* in that step).
template <RingProtocol P>
std::string format_trace(const std::vector<TraceEntry<P>>& entries,
                         const TraceStyle<typename P::State>& style) {
  if (entries.empty()) return "";
  const std::size_t n = entries.front().config.size();
  std::vector<std::string> header{"Step"};
  for (std::size_t i = 0; i < n; ++i) header.push_back("P" + std::to_string(i));
  TextTable table(std::move(header));
  for (std::size_t t = 0; t < entries.size(); ++t) {
    const auto& e = entries[t];
    table.row();
    table.cell(std::to_string(t + 1));
    for (std::size_t i = 0; i < n; ++i) {
      std::string cell = style.format_state(e.config[i]);
      if (style.annotate) cell += style.annotate(e.config, i);
      for (std::size_t k = 0; k < e.selected.size(); ++k) {
        if (e.selected[k] == i) {
          cell += "/" + std::to_string(e.rules[k]);
          break;
        }
      }
      table.cell(std::move(cell));
    }
  }
  return table.render();
}

}  // namespace ssr::stab
