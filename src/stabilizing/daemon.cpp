#include "stabilizing/daemon.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ssr::stab {

std::vector<std::size_t> CentralRoundRobinDaemon::select(
    const EnabledView& view) {
  SSR_REQUIRE(!view.indices.empty(), "daemon invoked with no enabled process");
  // Scan ids cursor_, cursor_+1, ... (mod n) and take the first enabled.
  for (std::size_t off = 0; off < view.ring_size; ++off) {
    const std::size_t id = (cursor_ + off) % view.ring_size;
    if (std::binary_search(view.indices.begin(), view.indices.end(), id)) {
      cursor_ = (id + 1) % view.ring_size;
      return {id};
    }
  }
  // Unreachable: indices is non-empty and every id is < ring_size.
  SSR_ASSERT(false, "round-robin scan found no enabled process");
}

std::vector<std::size_t> CentralRandomDaemon::select(const EnabledView& view) {
  SSR_REQUIRE(!view.indices.empty(), "daemon invoked with no enabled process");
  const auto k = static_cast<std::size_t>(rng_.below(view.indices.size()));
  return {view.indices[k]};
}

std::vector<std::size_t> SynchronousDaemon::select(const EnabledView& view) {
  SSR_REQUIRE(!view.indices.empty(), "daemon invoked with no enabled process");
  return {view.indices.begin(), view.indices.end()};
}

RandomSubsetDaemon::RandomSubsetDaemon(Rng rng, double probability)
    : rng_(rng), p_(probability) {
  SSR_REQUIRE(probability > 0.0 && probability <= 1.0,
              "selection probability must be in (0, 1]");
}

std::vector<std::size_t> RandomSubsetDaemon::select(const EnabledView& view) {
  SSR_REQUIRE(!view.indices.empty(), "daemon invoked with no enabled process");
  std::vector<std::size_t> out;
  for (std::size_t id : view.indices) {
    if (rng_.bernoulli(p_)) out.push_back(id);
  }
  if (out.empty()) {
    const auto k = static_cast<std::size_t>(rng_.below(view.indices.size()));
    out.push_back(view.indices[k]);
  }
  return out;
}

RuleAvoidingDaemon::RuleAvoidingDaemon(Rng rng, std::vector<int> avoid_rules)
    : rng_(rng), avoid_(std::move(avoid_rules)) {}

bool RuleAvoidingDaemon::avoided(int rule) const {
  return std::find(avoid_.begin(), avoid_.end(), rule) != avoid_.end();
}

std::vector<std::size_t> RuleAvoidingDaemon::select(const EnabledView& view) {
  SSR_REQUIRE(!view.indices.empty(), "daemon invoked with no enabled process");
  std::vector<std::size_t> preferred;
  for (std::size_t k = 0; k < view.indices.size(); ++k) {
    if (!avoided(view.rules[k])) preferred.push_back(view.indices[k]);
  }
  if (!preferred.empty()) {
    // Schedule one non-avoided process at a time to stretch the execution
    // as far as possible before a forced avoided move.
    const auto k = static_cast<std::size_t>(rng_.below(preferred.size()));
    return {preferred[k]};
  }
  ++forced_steps_;
  const auto k = static_cast<std::size_t>(rng_.below(view.indices.size()));
  return {view.indices[k]};
}

std::vector<std::size_t> StarvingDaemon::select(const EnabledView& view) {
  SSR_REQUIRE(!view.indices.empty(), "daemon invoked with no enabled process");
  std::vector<std::size_t> candidates;
  for (std::size_t id : view.indices) {
    if (id != victim_) candidates.push_back(id);
  }
  if (candidates.empty()) return {victim_};
  const auto k = static_cast<std::size_t>(rng_.below(candidates.size()));
  return {candidates[k]};
}

std::vector<std::size_t> MaxIndexDaemon::select(const EnabledView& view) {
  SSR_REQUIRE(!view.indices.empty(), "daemon invoked with no enabled process");
  return {view.indices.back()};
}

std::unique_ptr<Daemon> make_daemon(const std::string& name, Rng rng) {
  if (name == "central-round-robin")
    return std::make_unique<CentralRoundRobinDaemon>();
  if (name == "central-random")
    return std::make_unique<CentralRandomDaemon>(rng);
  if (name == "distributed-synchronous")
    return std::make_unique<SynchronousDaemon>();
  if (name == "distributed-random-subset")
    return std::make_unique<RandomSubsetDaemon>(rng, 0.5);
  if (name == "adversary-max-index") return std::make_unique<MaxIndexDaemon>();
  SSR_REQUIRE(false, "unknown daemon name: " + name);
}

std::vector<std::string> daemon_names() {
  return {"central-round-robin", "central-random", "distributed-synchronous",
          "distributed-random-subset", "adversary-max-index"};
}

}  // namespace ssr::stab
