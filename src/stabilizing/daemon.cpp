#include "stabilizing/daemon.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ssr::stab {

void CentralRoundRobinDaemon::select_into(const EnabledView& view,
                                          std::vector<std::size_t>& out) {
  SSR_REQUIRE(!view.indices.empty(), "daemon invoked with no enabled process");
  out.clear();
  // Scan ids cursor_, cursor_+1, ... (mod n) and take the first enabled.
  for (std::size_t off = 0; off < view.ring_size; ++off) {
    const std::size_t id = (cursor_ + off) % view.ring_size;
    if (std::binary_search(view.indices.begin(), view.indices.end(), id)) {
      cursor_ = (id + 1) % view.ring_size;
      out.push_back(id);
      return;
    }
  }
  // Unreachable: indices is non-empty and every id is < ring_size.
  SSR_ASSERT(false, "round-robin scan found no enabled process");
}

void CentralRandomDaemon::select_into(const EnabledView& view,
                                      std::vector<std::size_t>& out) {
  SSR_REQUIRE(!view.indices.empty(), "daemon invoked with no enabled process");
  const auto k = static_cast<std::size_t>(rng_.below(view.indices.size()));
  out.clear();
  out.push_back(view.indices[k]);
}

void SynchronousDaemon::select_into(const EnabledView& view,
                                    std::vector<std::size_t>& out) {
  SSR_REQUIRE(!view.indices.empty(), "daemon invoked with no enabled process");
  out.assign(view.indices.begin(), view.indices.end());
}

RandomSubsetDaemon::RandomSubsetDaemon(Rng rng, double probability)
    : rng_(rng), p_(probability) {
  SSR_REQUIRE(probability > 0.0 && probability <= 1.0,
              "selection probability must be in (0, 1]");
}

void RandomSubsetDaemon::select_into(const EnabledView& view,
                                     std::vector<std::size_t>& out) {
  SSR_REQUIRE(!view.indices.empty(), "daemon invoked with no enabled process");
  out.clear();
  for (std::size_t id : view.indices) {
    if (rng_.bernoulli(p_)) out.push_back(id);
  }
  if (out.empty()) {
    const auto k = static_cast<std::size_t>(rng_.below(view.indices.size()));
    out.push_back(view.indices[k]);
  }
}

RuleAvoidingDaemon::RuleAvoidingDaemon(Rng rng, std::vector<int> avoid_rules)
    : rng_(rng), avoid_(std::move(avoid_rules)) {}

bool RuleAvoidingDaemon::avoided(int rule) const {
  return std::find(avoid_.begin(), avoid_.end(), rule) != avoid_.end();
}

void RuleAvoidingDaemon::select_into(const EnabledView& view,
                                     std::vector<std::size_t>& out) {
  SSR_REQUIRE(!view.indices.empty(), "daemon invoked with no enabled process");
  // preferred_ doubles as the scratch for the non-avoided candidates; out
  // receives exactly one id either way.
  preferred_.clear();
  for (std::size_t k = 0; k < view.indices.size(); ++k) {
    if (!avoided(view.rules[k])) preferred_.push_back(view.indices[k]);
  }
  out.clear();
  if (!preferred_.empty()) {
    // Schedule one non-avoided process at a time to stretch the execution
    // as far as possible before a forced avoided move.
    const auto k = static_cast<std::size_t>(rng_.below(preferred_.size()));
    out.push_back(preferred_[k]);
    return;
  }
  ++forced_steps_;
  const auto k = static_cast<std::size_t>(rng_.below(view.indices.size()));
  out.push_back(view.indices[k]);
}

void StarvingDaemon::select_into(const EnabledView& view,
                                 std::vector<std::size_t>& out) {
  SSR_REQUIRE(!view.indices.empty(), "daemon invoked with no enabled process");
  candidates_.clear();
  for (std::size_t id : view.indices) {
    if (id != victim_) candidates_.push_back(id);
  }
  out.clear();
  if (candidates_.empty()) {
    out.push_back(victim_);
    return;
  }
  const auto k = static_cast<std::size_t>(rng_.below(candidates_.size()));
  out.push_back(candidates_[k]);
}

void MaxIndexDaemon::select_into(const EnabledView& view,
                                 std::vector<std::size_t>& out) {
  SSR_REQUIRE(!view.indices.empty(), "daemon invoked with no enabled process");
  out.clear();
  out.push_back(view.indices.back());
}

std::unique_ptr<Daemon> make_daemon(const std::string& name, Rng rng) {
  if (name == "central-round-robin")
    return std::make_unique<CentralRoundRobinDaemon>();
  if (name == "central-random")
    return std::make_unique<CentralRandomDaemon>(rng);
  if (name == "distributed-synchronous")
    return std::make_unique<SynchronousDaemon>();
  if (name == "distributed-random-subset")
    return std::make_unique<RandomSubsetDaemon>(rng, 0.5);
  if (name == "adversary-max-index") return std::make_unique<MaxIndexDaemon>();
  SSR_REQUIRE(false, "unknown daemon name: " + name);
}

std::vector<std::string> daemon_names() {
  return {"central-round-robin", "central-random", "distributed-synchronous",
          "distributed-random-subset", "adversary-max-index"};
}

}  // namespace ssr::stab
