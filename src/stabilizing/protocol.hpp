// The protocol abstraction shared by every algorithm in this library.
//
// The paper's computation model (§2.1): a ring of n processes, each running
// a finite set of prioritized guarded commands. A guard of P_i reads the
// local states of P_{i-1}, P_i and P_{i+1}; a command rewrites P_i's state
// from those same three values. A process is *enabled* iff some guard holds;
// with prioritized rules, at most one rule is enabled per process.
//
// A RingProtocol models exactly that: it owns the static parameters (ring
// size n, Dijkstra constant K, ...), exposes which rule (if any) is enabled
// at position i given the three neighboring states, and applies a rule to
// produce the process's next state. Protocols are value types with no
// mutable execution state — all execution state lives in a Configuration
// held by the engine, which is what lets the model checker, the
// state-reading engine, the message-passing simulator and the threaded
// runtime all reuse one protocol definition.
#pragma once

#include <concepts>
#include <cstddef>
#include <vector>

namespace ssr::stab {

/// Sentinel rule id meaning "no guard holds" (process disabled).
inline constexpr int kDisabled = 0;

// clang-format off
template <typename P>
concept RingProtocol = requires(const P p, std::size_t i,
                                const typename P::State& s) {
  typename P::State;
  requires std::equality_comparable<typename P::State>;
  requires std::copyable<typename P::State>;
  /// Number of processes on the ring.
  { p.size() } -> std::convertible_to<std::size_t>;
  /// Highest-priority enabled rule id (>= 1) at position i, or kDisabled.
  { p.enabled_rule(i, s, s, s) } -> std::convertible_to<int>;
  /// Next state of P_i when executing the given rule. Precondition: the
  /// rule is enabled.
  { p.apply(i, int{}, s, s, s) } -> std::same_as<typename P::State>;
};
// clang-format on

/// A configuration is the n-tuple of local states (paper §2.1).
template <RingProtocol P>
using ConfigurationOf = std::vector<typename P::State>;

/// Index of the predecessor of i on a ring of n processes.
constexpr std::size_t pred_index(std::size_t i, std::size_t n) {
  return (i + n - 1) % n;
}

/// Index of the successor of i on a ring of n processes.
constexpr std::size_t succ_index(std::size_t i, std::size_t n) {
  return (i + 1) % n;
}

}  // namespace ssr::stab
