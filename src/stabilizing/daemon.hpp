// Schedulers ("daemons", paper §2.1).
//
// At each step the daemon observes the set of enabled processes and selects
// a non-empty subset to move. The paper assumes the *unfair distributed*
// daemon: any non-empty subset may be selected at any step, and a
// continuously enabled process may be starved forever. Correctness results
// must therefore hold for every daemon implemented here; the adversarial
// daemons exist to probe worst cases (Lemma 5's bound, unfairness).
//
// Daemons are deliberately decoupled from the protocol type: they see only
// process indices and the id of each process's enabled rule, which is all
// the paper's scheduler model exposes.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ssr::stab {

/// What the daemon can observe when making a scheduling decision.
struct EnabledView {
  /// Sorted indices of the enabled processes. Never empty when select() is
  /// called (a deadlocked configuration never reaches the daemon).
  std::span<const std::size_t> indices;
  /// Rule id enabled at indices[k] (parallel array).
  std::span<const int> rules;
  /// Total ring size n.
  std::size_t ring_size = 0;
};

/// Scheduler interface. Implementations must produce a non-empty subset of
/// view.indices (as indices of processes, not positions in the span).
///
/// select_into is the virtual core: it clears @p out and fills it with the
/// selection, so hot paths (Engine::step_with, the sweep loops) can reuse
/// one buffer across steps instead of allocating a fresh vector per step.
/// select is a convenience wrapper for tests and cold paths.
class Daemon {
 public:
  virtual ~Daemon() = default;
  virtual void select_into(const EnabledView& view,
                           std::vector<std::size_t>& out) = 0;
  virtual std::string name() const = 0;

  /// Allocating wrapper around select_into.
  std::vector<std::size_t> select(const EnabledView& view) {
    std::vector<std::size_t> out;
    select_into(view, out);
    return out;
  }
};

/// Central daemon, round-robin flavor: scans process ids cyclically from
/// just past the last scheduled process and picks the first enabled one.
/// This is the fair central daemon used to replay the paper's Figure 4.
class CentralRoundRobinDaemon final : public Daemon {
 public:
  void select_into(const EnabledView& view,
                   std::vector<std::size_t>& out) override;
  std::string name() const override { return "central-round-robin"; }

 private:
  std::size_t cursor_ = 0;
};

/// Central daemon, random flavor: one uniformly random enabled process.
class CentralRandomDaemon final : public Daemon {
 public:
  explicit CentralRandomDaemon(Rng rng) : rng_(rng) {}
  void select_into(const EnabledView& view,
                   std::vector<std::size_t>& out) override;
  std::string name() const override { return "central-random"; }

 private:
  Rng rng_;
};

/// Distributed daemon, synchronous flavor: every enabled process moves.
/// This is the maximal (and maximally concurrent) choice the distributed
/// daemon can make.
class SynchronousDaemon final : public Daemon {
 public:
  void select_into(const EnabledView& view,
                   std::vector<std::size_t>& out) override;
  std::string name() const override { return "distributed-synchronous"; }
};

/// Distributed daemon, random-subset flavor: each enabled process is
/// independently selected with probability p; if the coin flips leave the
/// set empty, one uniformly random enabled process is chosen (the daemon
/// must select a non-empty set).
class RandomSubsetDaemon final : public Daemon {
 public:
  RandomSubsetDaemon(Rng rng, double probability);
  void select_into(const EnabledView& view,
                   std::vector<std::size_t>& out) override;
  std::string name() const override { return "distributed-random-subset"; }

 private:
  Rng rng_;
  double p_;
};

/// Unfair adversary that avoids scheduling any process whose enabled rule
/// is in the avoid set for as long as some process outside the set is
/// enabled. Used to realize Lemma 5's worst case (executions free of Rules
/// 2 and 4 of SSRmin). When only avoided rules are enabled it schedules a
/// single random one of them (it must pick something, per the model).
class RuleAvoidingDaemon final : public Daemon {
 public:
  RuleAvoidingDaemon(Rng rng, std::vector<int> avoid_rules);
  void select_into(const EnabledView& view,
                   std::vector<std::size_t>& out) override;
  std::string name() const override { return "adversary-rule-avoiding"; }

  /// Number of steps so far in which the daemon was forced to schedule an
  /// avoided rule (i.e. every enabled process had an avoided rule).
  std::uint64_t forced_steps() const { return forced_steps_; }

 private:
  bool avoided(int rule) const;

  Rng rng_;
  std::vector<int> avoid_;
  std::vector<std::size_t> preferred_;  // reusable selection scratch
  std::uint64_t forced_steps_ = 0;
};

/// Unfair adversary that starves one victim process: the victim is never
/// scheduled unless it is the only enabled process. Demonstrates that the
/// algorithm's guarantees hold under unfairness.
class StarvingDaemon final : public Daemon {
 public:
  StarvingDaemon(Rng rng, std::size_t victim) : rng_(rng), victim_(victim) {}
  void select_into(const EnabledView& view,
                   std::vector<std::size_t>& out) override;
  std::string name() const override { return "adversary-starving"; }

 private:
  Rng rng_;
  std::size_t victim_;
  std::vector<std::size_t> candidates_;  // reusable selection scratch
};

/// Adversary that always selects the enabled process with the highest
/// process id. Deterministic; tends to delay the bottom process, which is
/// a classically slow schedule for Dijkstra-style rings.
class MaxIndexDaemon final : public Daemon {
 public:
  void select_into(const EnabledView& view,
                   std::vector<std::size_t>& out) override;
  std::string name() const override { return "adversary-max-index"; }
};

/// Factory helpers so benches/tests can sweep over daemon families by name.
std::unique_ptr<Daemon> make_daemon(const std::string& name, Rng rng);

/// Names accepted by make_daemon.
std::vector<std::string> daemon_names();

}  // namespace ssr::stab
