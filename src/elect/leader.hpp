// Self-stabilizing leader election on id-based rings (minimum finding
// with hop counters — the classic ghost-killing construction).
//
// Why it is here: SSRmin assumes a *distinguished bottom process* P_0
// (paper §2.3). On a ring whose nodes only have unique ids, that
// assumption is discharged by electing the minimum id self-stabilizingly;
// SSRmin then runs with "bottom = elected leader" (hierarchical
// composition of self-stabilizing layers — see test_leader.cpp's
// composition test). The algorithm is silent, so the standard
// transformation results the paper cites ([5, 17]) apply to it directly.
//
// Local state: (lid, dist) — the believed leader id and the believed hop
// distance from that leader along the ring. Single rule per node i with
// predecessor p:
//
//     desired(i) = (lid_p, dist_p + 1)   if dist_p + 1 < n and lid_p < id_i
//                  (id_i, 0)             otherwise
//     Rule 1: state_i != desired(i)  ->  state_i := desired(i)
//
// A corrupted "ghost" leader id smaller than every real id cannot sustain
// itself: its support must strictly increase dist around the ring, and
// dist saturates at n - 1, after which the proposal is rejected and the
// ghost starves. Fixpoints are exactly "everyone believes the true
// minimum with correct distances" — verified exhaustively by the graph
// model checker over all ((max_id + 1) * n)^n configurations for small n.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/check.hpp"
#include "graph/protocol.hpp"
#include "graph/topology.hpp"
#include "util/rng.hpp"

namespace ssr::elect {

struct LeaderState {
  std::uint32_t lid = 0;   ///< believed leader id
  std::uint32_t dist = 0;  ///< believed hop distance from the leader
  friend auto operator<=>(const LeaderState&, const LeaderState&) = default;
};

class MinIdLeader {
 public:
  using State = LeaderState;

  static constexpr int kRuleCorrect = 1;

  /// @param ids unique node ids, position-indexed (ids[i] = id of node i).
  explicit MinIdLeader(std::vector<std::uint32_t> ids);

  const graph::Topology& topology() const { return topology_; }
  std::size_t size() const { return ids_.size(); }
  std::uint32_t id_of(std::size_t i) const { return ids_.at(i); }
  std::uint32_t max_id() const { return max_id_; }
  std::uint32_t min_id() const { return min_id_; }
  /// Ring position of the node with the minimum id.
  std::size_t leader_position() const { return leader_position_; }

  int enabled_rule(std::size_t i, const State& self,
                   std::span<const State> neighbors) const;
  State apply(std::size_t i, int rule, const State& self,
              std::span<const State> neighbors) const;

  /// The target state of node i given its predecessor's state.
  State desired(std::size_t i, const State& pred) const;

  /// A node considers itself the leader iff lid == its own id.
  bool believes_leader(std::size_t i, const State& s) const {
    return s.lid == ids_[i];
  }

 private:
  /// Position of node i's ring predecessor within neighbors(i).
  std::size_t pred_slot(std::size_t i) const;

  std::vector<std::uint32_t> ids_;
  graph::Topology topology_;
  std::uint32_t max_id_ = 0;
  std::uint32_t min_id_ = 0;
  std::size_t leader_position_ = 0;
};

using LeaderConfig = std::vector<LeaderState>;

/// Legitimate: everyone believes the true minimum id with the correct
/// ring distance from its holder.
bool is_legitimate(const MinIdLeader& ring, const LeaderConfig& config);

/// The unique legitimate configuration.
LeaderConfig legitimate_config(const MinIdLeader& ring);

LeaderConfig random_config(const MinIdLeader& ring, Rng& rng);

/// Exhaustive checker over all ((max_id + 1) * n)^n configurations.
graph::GraphModelChecker<MinIdLeader> make_leader_checker(
    std::vector<std::uint32_t> ids);

}  // namespace ssr::elect
