#include "elect/leader.hpp"

#include <algorithm>

#include "graph/check.hpp"
#include "util/assert.hpp"

namespace ssr::elect {

MinIdLeader::MinIdLeader(std::vector<std::uint32_t> ids)
    : ids_(std::move(ids)), topology_(graph::Topology::ring(ids_.size())) {
  SSR_REQUIRE(ids_.size() >= 3, "ring needs at least three nodes");
  std::vector<std::uint32_t> sorted = ids_;
  std::sort(sorted.begin(), sorted.end());
  SSR_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
              "node ids must be unique");
  max_id_ = sorted.back();
  min_id_ = sorted.front();
  leader_position_ = static_cast<std::size_t>(
      std::find(ids_.begin(), ids_.end(), min_id_) - ids_.begin());
}

std::size_t MinIdLeader::pred_slot(std::size_t i) const {
  const std::size_t n = ids_.size();
  const std::size_t pred = (i + n - 1) % n;
  const auto neigh = topology_.neighbors(i);
  for (std::size_t k = 0; k < neigh.size(); ++k) {
    if (neigh[k] == pred) return k;
  }
  SSR_ASSERT(false, "ring predecessor missing from neighbor list");
}

MinIdLeader::State MinIdLeader::desired(std::size_t i,
                                        const State& pred) const {
  const std::size_t n = ids_.size();
  if (pred.lid < ids_[i] && pred.dist + 1 < n) {
    return State{pred.lid, pred.dist + 1};
  }
  return State{ids_[i], 0};
}

int MinIdLeader::enabled_rule(std::size_t i, const State& self,
                              std::span<const State> neighbors) const {
  SSR_REQUIRE(neighbors.size() == topology_.neighbors(i).size(),
              "neighbor vector size mismatch");
  const State& pred = neighbors[pred_slot(i)];
  return self == desired(i, pred) ? graph::kDisabled : kRuleCorrect;
}

MinIdLeader::State MinIdLeader::apply(std::size_t i, int rule,
                                      const State& self,
                                      std::span<const State> neighbors) const {
  SSR_REQUIRE(rule == kRuleCorrect, "unknown leader-election rule id");
  SSR_REQUIRE(enabled_rule(i, self, neighbors) == rule,
              "rule applied while disabled");
  return desired(i, neighbors[pred_slot(i)]);
}

bool is_legitimate(const MinIdLeader& ring, const LeaderConfig& config) {
  SSR_REQUIRE(config.size() == ring.size(), "configuration size mismatch");
  return config == legitimate_config(ring);
}

LeaderConfig legitimate_config(const MinIdLeader& ring) {
  const std::size_t n = ring.size();
  const std::size_t m = ring.leader_position();
  LeaderConfig config(n);
  for (std::size_t i = 0; i < n; ++i) {
    config[i].lid = ring.min_id();
    config[i].dist = static_cast<std::uint32_t>((i + n - m) % n);
  }
  return config;
}

LeaderConfig random_config(const MinIdLeader& ring, Rng& rng) {
  LeaderConfig config(ring.size());
  for (auto& s : config) {
    s.lid = static_cast<std::uint32_t>(rng.below(ring.max_id() + 1));
    s.dist = static_cast<std::uint32_t>(rng.below(ring.size()));
  }
  return config;
}

graph::GraphModelChecker<MinIdLeader> make_leader_checker(
    std::vector<std::uint32_t> ids) {
  MinIdLeader protocol(std::move(ids));
  const auto n = static_cast<std::uint32_t>(protocol.size());
  const std::uint32_t lid_radix = protocol.max_id() + 1;
  const std::uint32_t radix = lid_radix * n;
  const LeaderConfig target = legitimate_config(protocol);
  auto legit = [target](const LeaderConfig& config) {
    return config == target;
  };
  return graph::GraphModelChecker<MinIdLeader>(
      std::move(protocol), radix,
      [lid_radix](const LeaderState& s) { return s.dist * lid_radix + s.lid; },
      [lid_radix](std::uint32_t code) {
        return LeaderState{code % lid_radix, code / lid_radix};
      },
      std::move(legit));
}

}  // namespace ssr::elect
