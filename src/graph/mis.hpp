// Self-stabilizing maximal independent set (after Turau 2007, which works
// under the unfair distributed daemon) — the general-topology counterpart
// of mutual inclusion. A maximal independent set is a *dominating* set,
// so "be in the critical section iff you are in the MIS" solves the LOCAL
// mutual inclusion problem (every closed neighborhood has an active node)
// on arbitrary graphs, silently. The paper cites exactly this problem
// family ([10], [14]) and names general topologies as future work (§6);
// this module provides the static/silent end of the design space to
// compare against SSRmin's rotating-token end (fair duty, ring-only).
//
// Local state: status in {OUT, WAIT, IN}. Rules (ids are distinct for
// diagnosability; a node is enabled by at most one):
//
//   Rule 1 (retreat):  WAIT && (some neighbor IN)                -> OUT
//   Rule 2 (volunteer):OUT  && (no neighbor IN)                  -> WAIT
//   Rule 3 (commit):   WAIT && no neighbor IN
//                           && no WAIT neighbor with smaller id  -> IN
//   Rule 4 (yield):    IN   && (some IN neighbor with smaller id)-> OUT
//
// Stable (silent) configurations are exactly: no WAITs, the IN set is
// independent, and every OUT node has an IN neighbor — i.e. a maximal
// independent set. Verified exhaustively by the graph model checker
// (tests/test_mis.cpp, bench_mis).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/protocol.hpp"
#include "graph/topology.hpp"
#include "util/rng.hpp"

namespace ssr::graph {

enum class MisStatus : std::uint8_t { kOut = 0, kWait = 1, kIn = 2 };

struct MisState {
  MisStatus status = MisStatus::kOut;
  friend auto operator<=>(const MisState&, const MisState&) = default;
};

std::string to_string(MisStatus status);

class TurauMis {
 public:
  using State = MisState;

  static constexpr int kRuleRetreat = 1;
  static constexpr int kRuleVolunteer = 2;
  static constexpr int kRuleCommit = 3;
  static constexpr int kRuleYield = 4;

  explicit TurauMis(Topology topology);

  const Topology& topology() const { return topology_; }
  std::size_t size() const { return topology_.size(); }

  int enabled_rule(std::size_t i, const State& self,
                   std::span<const State> neighbors) const;
  State apply(std::size_t i, int rule, const State& self,
              std::span<const State> neighbors) const;

 private:
  Topology topology_;
};

using MisConfig = std::vector<MisState>;

/// Node ids currently IN.
std::vector<std::size_t> mis_members(const MisConfig& config);

/// No two IN nodes adjacent.
bool is_independent(const Topology& topology, const MisConfig& config);

/// Every node is IN or has an IN neighbor.
bool is_dominating(const Topology& topology, const MisConfig& config);

/// The silent legitimate predicate: no WAITs, independent, dominating.
bool is_stable_mis(const Topology& topology, const MisConfig& config);

/// The local mutual inclusion check on an arbitrary active-set: every
/// closed neighborhood N[i] contains an active node.
bool local_inclusion_holds(const Topology& topology,
                           const std::vector<bool>& active);

MisConfig random_config(const Topology& topology, Rng& rng);

}  // namespace ssr::graph
