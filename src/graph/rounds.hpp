// Synchronous-round execution of graph protocols over lossy broadcast —
// exactly the setting of the paper's reference [17] (Turau & Weyer,
// "Randomized self-stabilizing algorithms for wireless sensor networks"),
// which studies silent algorithms like MIS under per-round randomized rule
// firing with unreliable radio broadcast.
//
// Per round: (1) every node broadcasts its state; each (node, neighbor)
// delivery is lost independently with probability `loss`, surviving
// deliveries update the receiver's cache of that neighbor; (2) every node
// whose rule is enabled on its cached view fires it with probability
// `exec_probability`. All firings in a round are simultaneous.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "graph/protocol.hpp"
#include "msgpass/rounds.hpp"  // RoundParams
#include "util/rng.hpp"

namespace ssr::graph {

template <GraphProtocol P>
class GraphRoundSimulation {
 public:
  using State = typename P::State;
  using Config = std::vector<State>;

  GraphRoundSimulation(P protocol, Config initial, msgpass::RoundParams params)
      : protocol_(std::move(protocol)),
        params_(params),
        rng_(params.seed),
        states_(std::move(initial)) {
    params_.validate();
    SSR_REQUIRE(states_.size() == protocol_.topology().size(),
                "configuration size must equal node count");
    const std::size_t n = states_.size();
    caches_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j : protocol_.topology().neighbors(i)) {
        caches_[i].push_back(states_[j]);
      }
    }
  }

  std::size_t size() const { return states_.size(); }
  std::uint64_t rounds() const { return rounds_; }
  const Config& global_config() const { return states_; }

  void randomize_caches(const std::function<State(Rng&)>& gen) {
    for (auto& row : caches_) {
      for (auto& s : row) s = gen(rng_);
    }
  }

  bool coherent() const {
    const std::size_t n = states_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const auto neigh = protocol_.topology().neighbors(i);
      for (std::size_t k = 0; k < neigh.size(); ++k) {
        if (!(caches_[i][k] == states_[neigh[k]])) return false;
      }
    }
    return true;
  }

  /// One synchronous round; returns the number of rule firings.
  std::size_t step() {
    const std::size_t n = states_.size();
    // Phase 1: lossy broadcast into the caches.
    for (std::size_t i = 0; i < n; ++i) {
      const auto neigh = protocol_.topology().neighbors(i);
      for (std::size_t k = 0; k < neigh.size(); ++k) {
        if (!rng_.bernoulli(params_.loss)) {
          caches_[i][k] = states_[neigh[k]];
        }
      }
    }
    // Phase 2: simultaneous randomized firing on cached views.
    std::vector<std::pair<std::size_t, State>> writes;
    for (std::size_t i = 0; i < n; ++i) {
      const int rule = protocol_.enabled_rule(i, states_[i], caches_[i]);
      if (rule == kDisabled) continue;
      if (!rng_.bernoulli(params_.exec_probability)) continue;
      writes.emplace_back(i,
                          protocol_.apply(i, rule, states_[i], caches_[i]));
    }
    for (auto& [i, s] : writes) states_[i] = std::move(s);
    ++rounds_;
    return writes.size();
  }

  /// Runs until predicate(global configuration) holds; nullopt if the
  /// round budget runs out.
  template <typename Predicate>
  std::optional<std::uint64_t> run_until(Predicate&& predicate,
                                         std::uint64_t max_rounds) {
    const std::uint64_t start = rounds_;
    for (std::uint64_t r = 0; r <= max_rounds; ++r) {
      if (predicate(states_)) return rounds_ - start;
      if (r == max_rounds) break;
      step();
    }
    return std::nullopt;
  }

 private:
  P protocol_;
  msgpass::RoundParams params_;
  Rng rng_;
  std::uint64_t rounds_ = 0;
  Config states_;
  /// caches_[i][k] = last received state of topology().neighbors(i)[k].
  std::vector<std::vector<State>> caches_;
};

}  // namespace ssr::graph
