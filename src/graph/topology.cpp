#include "graph/topology.hpp"

#include <algorithm>
#include <numeric>

namespace ssr::graph {

Topology::Topology(std::size_t n) : adjacency_(n) {
  SSR_REQUIRE(n >= 1, "graph needs at least one node");
}

void Topology::add_edge(std::size_t a, std::size_t b) {
  SSR_REQUIRE(a < adjacency_.size() && b < adjacency_.size(),
              "edge endpoint out of range");
  SSR_REQUIRE(a != b, "self-loops are not allowed");
  if (has_edge(a, b)) return;
  adjacency_[a].insert(
      std::lower_bound(adjacency_[a].begin(), adjacency_[a].end(), b), b);
  adjacency_[b].insert(
      std::lower_bound(adjacency_[b].begin(), adjacency_[b].end(), a), a);
  edges_ += 2;
}

bool Topology::has_edge(std::size_t a, std::size_t b) const {
  SSR_REQUIRE(a < adjacency_.size() && b < adjacency_.size(),
              "edge endpoint out of range");
  return std::binary_search(adjacency_[a].begin(), adjacency_[a].end(), b);
}

std::size_t Topology::max_degree() const {
  std::size_t best = 0;
  for (const auto& adj : adjacency_) best = std::max(best, adj.size());
  return best;
}

bool Topology::connected() const {
  const std::size_t n = adjacency_.size();
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<std::size_t> stack{0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    for (std::size_t v : adjacency_[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == n;
}

Topology Topology::ring(std::size_t n) {
  SSR_REQUIRE(n >= 3, "ring needs at least three nodes");
  Topology g(n);
  for (std::size_t i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  return g;
}

Topology Topology::path(std::size_t n) {
  SSR_REQUIRE(n >= 2, "path needs at least two nodes");
  Topology g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Topology Topology::star(std::size_t n) {
  SSR_REQUIRE(n >= 2, "star needs at least two nodes");
  Topology g(n);
  for (std::size_t i = 1; i < n; ++i) g.add_edge(0, i);
  return g;
}

Topology Topology::complete(std::size_t n) {
  SSR_REQUIRE(n >= 2, "complete graph needs at least two nodes");
  Topology g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) g.add_edge(i, j);
  }
  return g;
}

Topology Topology::grid(std::size_t rows, std::size_t cols) {
  SSR_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  Topology g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Topology Topology::random_connected(std::size_t n, double p, Rng& rng) {
  SSR_REQUIRE(n >= 2, "need at least two nodes");
  SSR_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  Topology g(n);
  // Random spanning tree: connect each node to a uniformly random earlier
  // node, over a random permutation.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  for (std::size_t k = 1; k < n; ++k) {
    const std::size_t parent = order[rng.below(k)];
    g.add_edge(order[k], parent);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!g.has_edge(i, j) && rng.bernoulli(p)) g.add_edge(i, j);
    }
  }
  return g;
}

}  // namespace ssr::graph
