// Event-driven CST execution for general-graph protocols — the
// message-passing counterpart of graph::GraphEngine, mirroring
// msgpass::CstSimulation (same network parameters, link discipline, loss/
// duplication model and coverage accounting) but with one cache and one
// pair of directed links per graph edge.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "graph/protocol.hpp"
#include "msgpass/cst.hpp"  // NetworkParams, CoverageStats, Time
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ssr::graph {

template <GraphProtocol P>
class GraphCstSimulation {
 public:
  using State = typename P::State;
  using Config = std::vector<State>;
  /// Activity predicate on a node's local view (e.g. "is in the MIS").
  using ActiveFn = std::function<bool(std::size_t, const State&,
                                      std::span<const State>)>;

  GraphCstSimulation(P protocol, Config initial, ActiveFn active,
                     msgpass::NetworkParams params)
      : protocol_(std::move(protocol)),
        params_(params),
        active_(std::move(active)),
        rng_(params.seed),
        states_(std::move(initial)) {
    params_.validate();
    const std::size_t n = protocol_.topology().size();
    SSR_REQUIRE(states_.size() == n, "configuration size mismatch");
    caches_.resize(n);
    links_.resize(n);
    exec_pending_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto neigh = protocol_.topology().neighbors(i);
      for (std::size_t j : neigh) caches_[i].push_back(states_[j]);
      links_[i].resize(neigh.size());
    }
    for (std::size_t i = 0; i < n; ++i) {
      push_timer(i, rng_.uniform01() * params_.refresh_interval);
      maybe_schedule_execution(i);
    }
    holder_count_ = count_active();
  }

  std::size_t size() const { return states_.size(); }
  msgpass::Time now() const { return now_; }
  const Config& global_config() const { return states_; }

  bool coherent() const {
    const std::size_t n = states_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const auto neigh = protocol_.topology().neighbors(i);
      for (std::size_t k = 0; k < neigh.size(); ++k) {
        if (!(caches_[i][k] == states_[neigh[k]])) return false;
      }
    }
    return true;
  }

  void randomize_caches(const std::function<State(Rng&)>& gen) {
    for (auto& row : caches_) {
      for (auto& s : row) s = gen(rng_);
    }
    holder_count_ = count_active();
  }

  std::size_t active_count() const { return holder_count_; }

  std::vector<bool> active_view() const {
    const std::size_t n = states_.size();
    std::vector<bool> active(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      active[i] = active_(i, states_[i], caches_[i]);
    }
    return active;
  }

  /// Runs for @p duration of simulated time.
  msgpass::CoverageStats run(msgpass::Time duration) {
    return run_impl(now_ + duration,
                    [](const GraphCstSimulation&) { return false; });
  }

  /// Runs until stop(*this) or the deadline.
  template <typename StopFn>
  msgpass::CoverageStats run_until(StopFn&& stop, msgpass::Time deadline,
                                   bool* stopped_early) {
    auto stats = run_impl(deadline, std::forward<StopFn>(stop));
    if (stopped_early != nullptr) *stopped_early = stopped_;
    return stats;
  }

 private:
  struct Link {
    bool busy = false;
    std::optional<State> pending;
  };

  struct Event {
    msgpass::Time time = 0.0;
    std::uint64_t seq = 0;
    enum class Kind : std::uint8_t { kDelivery, kTimer, kExecute } kind =
        Kind::kTimer;
    std::size_t node = 0;    ///< receiver / owner
    std::size_t sender = 0;
    std::size_t slot = 0;    ///< sender's link slot index toward node
    State payload{};
    bool lost = false;

    friend bool operator>(const Event& a, const Event& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void push_timer(std::size_t i, msgpass::Time at) {
    Event e;
    e.time = at;
    e.seq = next_seq_++;
    e.kind = Event::Kind::kTimer;
    e.node = i;
    queue_.push(std::move(e));
  }

  /// Sends node i's state along its k-th incident edge.
  void send(std::size_t i, std::size_t k) {
    Link& l = links_[i][k];
    if (l.busy) {
      l.pending = states_[i];
      return;
    }
    transmit(i, k, states_[i]);
  }

  void broadcast(std::size_t i) {
    for (std::size_t k = 0; k < links_[i].size(); ++k) send(i, k);
  }

  void transmit(std::size_t i, std::size_t k, const State& payload) {
    Link& l = links_[i][k];
    l.busy = true;
    Event e;
    e.time = now_ + params_.draw_delay(rng_);
    e.seq = next_seq_++;
    e.kind = Event::Kind::kDelivery;
    e.node = protocol_.topology().neighbors(i)[k];
    e.sender = i;
    e.slot = k;
    e.payload = payload;
    e.lost = rng_.bernoulli(params_.loss_probability);
    queue_.push(std::move(e));
  }

  void maybe_schedule_execution(std::size_t i) {
    if (exec_pending_[i]) return;
    const int rule = protocol_.enabled_rule(i, states_[i], caches_[i]);
    if (rule == kDisabled) return;
    exec_pending_[i] = 1;
    Event e;
    e.time = now_ + params_.service_min +
             rng_.uniform01() * (params_.service_max - params_.service_min);
    e.seq = next_seq_++;
    e.kind = Event::Kind::kExecute;
    e.node = i;
    queue_.push(std::move(e));
  }

  void handle_delivery(const Event& e, msgpass::CoverageStats& stats) {
    ++stats.deliveries;
    Link& l = links_[e.sender][e.slot];
    SSR_ASSERT(l.busy, "delivery on an idle link");
    l.busy = false;
    if (l.pending.has_value()) {
      State parked = *l.pending;
      l.pending.reset();
      transmit(e.sender, e.slot, parked);
    }
    if (e.lost) {
      ++stats.losses;
      return;
    }
    // Locate the sender in the receiver's neighbor order.
    const std::size_t i = e.node;
    const auto neigh = protocol_.topology().neighbors(i);
    for (std::size_t k = 0; k < neigh.size(); ++k) {
      if (neigh[k] == e.sender) {
        caches_[i][k] = e.payload;
        break;
      }
    }
    maybe_schedule_execution(i);
    broadcast(i);
  }

  void handle_execute(const Event& e, msgpass::CoverageStats& stats) {
    const std::size_t i = e.node;
    SSR_ASSERT(exec_pending_[i], "execute event without a pending flag");
    exec_pending_[i] = 0;
    const int rule = protocol_.enabled_rule(i, states_[i], caches_[i]);
    if (rule == kDisabled) return;
    states_[i] = protocol_.apply(i, rule, states_[i], caches_[i]);
    ++stats.rule_executions;
    broadcast(i);
    maybe_schedule_execution(i);
  }

  void handle_timer(const Event& e) {
    broadcast(e.node);
    const double jitter = 0.9 + 0.2 * rng_.uniform01();
    push_timer(e.node, now_ + params_.refresh_interval * jitter);
  }

  std::size_t count_active() const {
    std::size_t count = 0;
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (active_(i, states_[i], caches_[i])) ++count;
    }
    return count;
  }

  template <typename StopFn>
  msgpass::CoverageStats run_impl(msgpass::Time deadline, StopFn&& stop) {
    msgpass::CoverageStats stats;
    stopped_ = false;
    if (stop(*this)) {
      stopped_ = true;
      return stats;
    }
    while (!queue_.empty() && queue_.top().time <= deadline) {
      const Event e = queue_.top();
      queue_.pop();
      const msgpass::Time dt = e.time - now_;
      stats.observed_time += dt;
      if (holder_count_ == 0) stats.zero_token_time += dt;
      now_ = e.time;
      switch (e.kind) {
        case Event::Kind::kDelivery:
          handle_delivery(e, stats);
          break;
        case Event::Kind::kTimer:
          handle_timer(e);
          break;
        case Event::Kind::kExecute:
          handle_execute(e, stats);
          break;
      }
      ++stats.events;
      const std::size_t count = count_active();
      if (count != holder_count_) ++stats.handovers;
      stats.min_holders = std::min(stats.min_holders, count);
      stats.max_holders = std::max(stats.max_holders, count);
      holder_count_ = count;
      if (stop(*this)) {
        stopped_ = true;
        return stats;
      }
    }
    if (now_ < deadline) {
      stats.observed_time += deadline - now_;
      if (holder_count_ == 0) stats.zero_token_time += deadline - now_;
      now_ = deadline;
    }
    if (stats.min_holders == std::numeric_limits<std::size_t>::max()) {
      stats.min_holders = holder_count_;
      stats.max_holders = std::max(stats.max_holders, holder_count_);
    }
    return stats;
  }

  P protocol_;
  msgpass::NetworkParams params_;
  ActiveFn active_;
  Rng rng_;
  msgpass::Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;

  Config states_;
  std::vector<std::vector<State>> caches_;   ///< caches_[i][k]
  std::vector<std::vector<Link>> links_;     ///< links_[i][k]: i -> nbr k
  std::vector<std::uint8_t> exec_pending_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::size_t holder_count_ = 0;
};

}  // namespace ssr::graph
