// Event-driven CST execution for general-graph protocols — the
// message-passing counterpart of graph::GraphEngine, mirroring
// msgpass::CstSimulation (same network parameters, link discipline, loss
// model and coverage accounting) but with one cache and one pair of
// directed links per graph edge.
//
// Runs on the same sharded conservative engine (msgpass/pdes.hpp): nodes
// are partitioned into NetworkParams::workers contiguous id ranges, and
// the global-window synchronization needs no per-channel clocks — every
// cross-node event is a delivery at least delay_min away, on any
// topology. Neighbor lists, caches and links are flattened into CSR
// arrays so a shard's hot loop walks contiguous memory. Determinism
// matches the ring engine: per-node stream_rng streams, (time, creator,
// seq) event keys, and a key-ordered flip merge make every statistic
// byte-identical at any worker count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "graph/protocol.hpp"
#include "msgpass/cst.hpp"  // NetworkParams, CoverageStats, Time
#include "msgpass/pdes.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ssr::graph {

namespace pdes = ssr::msgpass::pdes;

template <GraphProtocol P>
class GraphCstSimulation {
 public:
  using State = typename P::State;
  using Config = std::vector<State>;
  /// Activity predicate on a node's local view (e.g. "is in the MIS").
  using ActiveFn = std::function<bool(std::size_t, const State&,
                                      std::span<const State>)>;

  GraphCstSimulation(P protocol, Config initial, ActiveFn active,
                     msgpass::NetworkParams params)
      : protocol_(std::move(protocol)),
        params_(params),
        active_(std::move(active)),
        aux_rng_(params.seed),
        states_(std::move(initial)) {
    params_.validate();
    const std::size_t n = protocol_.topology().size();
    SSR_REQUIRE(states_.size() == n, "configuration size mismatch");
    SSR_REQUIRE(n < (std::size_t{1} << 32),
                "graph size must fit the 32-bit event-key node field");
    workers_ = msgpass::resolve_workers(params_.workers, n);
    layout_ = pdes::ShardLayout(n, workers_);

    // CSR-flatten the topology: edge (i, k) lives at off_[i] + k.
    off_.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      off_[i + 1] = off_[i] + protocol_.topology().neighbors(i).size();
    }
    const std::size_t edges = off_[n];
    nbr_.reserve(edges);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j : protocol_.topology().neighbors(i)) {
        nbr_.push_back(static_cast<std::uint32_t>(j));
      }
    }
    // Receiver-side slot of each directed edge, so a delivery can update
    // the right cache entry without rescanning the neighbor list.
    rev_slot_.assign(edges, 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t e = off_[i]; e < off_[i + 1]; ++e) {
        const std::size_t j = nbr_[e];
        bool found = false;
        for (std::size_t f = off_[j]; f < off_[j + 1]; ++f) {
          if (nbr_[f] == i) {
            rev_slot_[e] = static_cast<std::uint32_t>(f - off_[j]);
            found = true;
            break;
          }
        }
        SSR_REQUIRE(found, "topology is not symmetric");
      }
    }

    cache_.resize(edges);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t e = off_[i]; e < off_[i + 1]; ++e) {
        cache_[e] = states_[nbr_[e]];
      }
    }
    link_busy_.assign(edges, 0);
    link_has_pending_.assign(edges, 0);
    link_pending_.resize(edges);
    exec_pending_.assign(n, 0);
    holder_bit_.assign(n, 0);
    node_seq_.assign(n, 0);
    node_rng_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      node_rng_.push_back(stream_rng(params_.seed, i));

    shards_.resize(workers_);
    for (std::size_t s = 0; s < workers_; ++s) {
      Shard& sh = shards_[s];
      sh.id = s;
      sh.lo = layout_.begin(s);
      sh.hi = layout_.end(s);
      const std::size_t span_edges = off_[sh.hi] - off_[sh.lo];
      sh.heap = pdes::make_heap_reserved(2 * span_edges +
                                         2 * (sh.hi - sh.lo) + 64);
      sh.slab.reserve(span_edges + 16);
      sh.outbox.resize(workers_);
    }
    for (std::size_t i = 0; i < n; ++i) {
      Shard& sh = shards_[layout_.shard_of(i)];
      pdes::HeapRec timer;
      timer.time = node_rng_[i].uniform01() * params_.refresh_interval;
      timer.order = pdes::make_order(i, node_seq_[i]++);
      timer.kind = pdes::EvKind::kTimer;
      sh.heap.push(timer);
      maybe_schedule_execution(sh, i, 0.0);
    }
    recompute_holders();
  }

  std::size_t size() const { return states_.size(); }
  msgpass::Time now() const { return now_; }
  const Config& global_config() const { return states_; }
  /// Resolved shard count the engine actually runs with.
  std::size_t workers() const { return workers_; }

  bool coherent() const {
    for (std::size_t e = 0; e < nbr_.size(); ++e) {
      if (!(cache_[e] == states_[nbr_[e]])) return false;
    }
    return true;
  }

  void randomize_caches(const std::function<State(Rng&)>& gen) {
    for (auto& s : cache_) s = gen(aux_rng_);
    recompute_holders();
  }

  std::size_t active_count() const { return holder_count_; }

  std::vector<bool> active_view() const {
    const std::size_t n = states_.size();
    std::vector<bool> active(n, false);
    for (std::size_t i = 0; i < n; ++i) active[i] = eval_active(i);
    return active;
  }

  /// Runs for @p duration of simulated time.
  msgpass::CoverageStats run(msgpass::Time duration) {
    return run_impl(now_ + duration,
                    [](const GraphCstSimulation&) { return false; });
  }

  /// Runs until stop(*this) or the deadline; the predicate is evaluated at
  /// every synchronization-round horizon (worker-count-independent).
  template <typename StopFn>
  msgpass::CoverageStats run_until(StopFn&& stop, msgpass::Time deadline,
                                   bool* stopped_early) {
    auto stats = run_impl(deadline, std::forward<StopFn>(stop));
    if (stopped_early != nullptr) *stopped_early = stopped_;
    return stats;
  }

 private:
  /// In-flight frame payload plus its addressing, interned per shard.
  struct Frame {
    State payload{};
    std::uint32_t dest = 0;
    std::uint32_t dest_slot = 0;  ///< receiver-side cache slot
  };

  struct BoundaryFrame {
    msgpass::Time time = 0.0;
    std::uint64_t order = 0;
    Frame frame{};
    std::uint8_t flags = 0;
  };

  struct alignas(64) Shard {
    std::size_t id = 0;
    std::size_t lo = 0;
    std::size_t hi = 0;
    pdes::EventHeap heap;
    pdes::PayloadSlab<Frame> slab;
    std::vector<pdes::FlipEntry> flips;
    std::vector<std::vector<BoundaryFrame>> outbox;  ///< per dest shard
    msgpass::Time clock = 0.0;
    pdes::ShardCounters ctr;
  };

  std::span<const State> caches_of(std::size_t i) const {
    return {cache_.data() + off_[i], off_[i + 1] - off_[i]};
  }

  bool eval_active(std::size_t i) const {
    return active_(i, states_[i], caches_of(i));
  }

  void recompute_holders() {
    holder_count_ = 0;
    for (std::size_t i = 0; i < states_.size(); ++i) {
      const bool h = eval_active(i);
      holder_bit_[i] = h ? 1 : 0;
      if (h) ++holder_count_;
    }
  }

  /// Sends node i's state along its k-th incident edge.
  void send(Shard& sh, std::size_t i, std::size_t k, msgpass::Time now) {
    const std::size_t e = off_[i] + k;
    if (link_busy_[e]) {
      link_pending_[e] = states_[i];
      link_has_pending_[e] = 1;
      return;
    }
    transmit(sh, i, k, states_[i], now);
  }

  void broadcast(Shard& sh, std::size_t i, msgpass::Time now) {
    const std::size_t deg = off_[i + 1] - off_[i];
    for (std::size_t k = 0; k < deg; ++k) send(sh, i, k, now);
  }

  void transmit(Shard& sh, std::size_t i, std::size_t k, const State& payload,
                msgpass::Time now) {
    const std::size_t e = off_[i] + k;
    link_busy_[e] = 1;
    ++sh.ctr.transmissions;
    Rng& rng = node_rng_[i];
    const double delay = params_.draw_delay(rng);
    std::uint8_t flags = 0;
    if (rng.bernoulli(params_.loss_probability)) flags |= pdes::kEvLost;
    const msgpass::Time arrive = pdes::advance_time(now, delay);
    const std::uint32_t delivery_seq = node_seq_[i]++;
    const std::uint32_t free_seq = node_seq_[i]++;
    const std::size_t dest = nbr_[e];
    const std::size_t dest_shard = layout_.shard_of(dest);
    Frame frame{payload, static_cast<std::uint32_t>(dest), rev_slot_[e]};
    if (dest_shard == sh.id) {
      pdes::HeapRec rec;
      rec.time = arrive;
      rec.order = pdes::make_order(i, delivery_seq);
      rec.slot =
          (flags & pdes::kEvLost) ? pdes::kNoSlot : sh.slab.intern(frame);
      rec.kind = pdes::EvKind::kDelivery;
      rec.flags = flags;
      sh.heap.push(rec);
    } else {
      sh.outbox[dest_shard].push_back(
          {arrive, pdes::make_order(i, delivery_seq), frame, flags});
    }
    // Sender-local link completion (see msgpass::CstSimulation::transmit);
    // slot carries the local link index, which exceeds the dir byte.
    pdes::HeapRec link_free;
    link_free.time = arrive;
    link_free.order = pdes::make_order(i, free_seq);
    link_free.slot = static_cast<std::uint32_t>(k);
    link_free.kind = pdes::EvKind::kLinkFree;
    sh.heap.push(link_free);
  }

  void maybe_schedule_execution(Shard& sh, std::size_t i, msgpass::Time now) {
    if (exec_pending_[i]) return;
    const int rule = protocol_.enabled_rule(i, states_[i], caches_of(i));
    if (rule == kDisabled) return;
    exec_pending_[i] = 1;
    const double service =
        params_.service_min +
        node_rng_[i].uniform01() * (params_.service_max - params_.service_min);
    pdes::HeapRec rec;
    rec.time = pdes::advance_time(now, service);
    rec.order = pdes::make_order(i, node_seq_[i]++);
    rec.kind = pdes::EvKind::kExecute;
    sh.heap.push(rec);
  }

  void handle_execute(Shard& sh, std::size_t v, msgpass::Time now) {
    SSR_ASSERT(exec_pending_[v], "execute event without a pending flag");
    exec_pending_[v] = 0;
    const int rule = protocol_.enabled_rule(v, states_[v], caches_of(v));
    if (rule == kDisabled) return;
    states_[v] = protocol_.apply(v, rule, states_[v], caches_of(v));
    ++sh.ctr.rule_executions;
    broadcast(sh, v, now);
    maybe_schedule_execution(sh, v, now);
  }

  void handle_timer(Shard& sh, std::size_t v, msgpass::Time now) {
    broadcast(sh, v, now);
    const double jitter = 0.9 + 0.2 * node_rng_[v].uniform01();
    pdes::HeapRec next;
    next.time = pdes::advance_time(now, params_.refresh_interval * jitter);
    next.order = pdes::make_order(v, node_seq_[v]++);
    next.kind = pdes::EvKind::kTimer;
    sh.heap.push(next);
  }

  void dispatch(Shard& sh, const pdes::HeapRec& rec) {
    const std::size_t creator = pdes::order_creator(rec.order);
    if (rec.kind == pdes::EvKind::kLinkFree) {
      const std::size_t e = off_[creator] + rec.slot;
      SSR_ASSERT(link_busy_[e], "link-free on an idle link");
      link_busy_[e] = 0;
      if (link_has_pending_[e]) {
        link_has_pending_[e] = 0;
        transmit(sh, creator, rec.slot, link_pending_[e], rec.time);
      }
      return;
    }
    std::size_t v = creator;
    if (rec.kind == pdes::EvKind::kDelivery) {
      ++sh.ctr.deliveries;
      ++sh.ctr.events;
      if (rec.flags & pdes::kEvLost) {
        // A lost frame changes no node state, so it cannot flip any
        // predicate; count it and move on.
        ++sh.ctr.losses;
        return;
      }
      const Frame frame = sh.slab.take(rec.slot);
      v = frame.dest;
      cache_[off_[v] + frame.dest_slot] = frame.payload;
      maybe_schedule_execution(sh, v, rec.time);
      broadcast(sh, v, rec.time);
    } else {
      ++sh.ctr.events;
      if (rec.kind == pdes::EvKind::kTimer) {
        handle_timer(sh, v, rec.time);
      } else {
        handle_execute(sh, v, rec.time);
      }
    }
    const bool post = eval_active(v);
    if (post != (holder_bit_[v] != 0)) {
      holder_bit_[v] = post ? 1 : 0;
      sh.flips.push_back({rec.time, rec.order, static_cast<std::uint32_t>(v),
                          static_cast<std::uint8_t>(post)});
    }
  }

  void process_shard(Shard& sh, msgpass::Time horizon, msgpass::Time deadline) {
    while (!sh.heap.empty()) {
      const pdes::HeapRec rec = sh.heap.top();
      if (rec.time >= horizon || rec.time > deadline) break;
      SSR_ASSERT(rec.time >= sh.clock,
                 "event pop regressed below the shard clock (lookahead or "
                 "Time-precision violation)");
      sh.clock = rec.time;
      sh.heap.pop();
      dispatch(sh, rec);
    }
  }

  void drain_inbound(std::size_t w) {
    Shard& sh = shards_[w];
    for (std::size_t o = 0; o < workers_; ++o) {
      if (o == w) continue;
      for (const BoundaryFrame& f : shards_[o].outbox[w]) {
        pdes::HeapRec rec;
        rec.time = f.time;
        rec.order = f.order;
        rec.slot =
            (f.flags & pdes::kEvLost) ? pdes::kNoSlot : sh.slab.intern(f.frame);
        rec.kind = pdes::EvKind::kDelivery;
        rec.flags = f.flags;
        sh.heap.push(rec);
      }
    }
  }

  template <typename StopFn>
  msgpass::CoverageStats run_impl(msgpass::Time deadline, StopFn&& stop) {
    msgpass::CoverageStats stats;
    stopped_ = false;
    for (Shard& sh : shards_) sh.ctr = pdes::ShardCounters{};
    if (stop(*this)) {
      stopped_ = true;
      return stats;
    }
    const msgpass::Time start = now_;
    pdes::CoverageAccumulator acc(start, holder_count_, nullptr, nullptr);
    std::vector<std::vector<pdes::FlipEntry>*> flip_logs;
    flip_logs.reserve(workers_);
    for (Shard& sh : shards_) flip_logs.push_back(&sh.flips);
    if (workers_ > 1 && pool_ == nullptr) {
      pool_ = std::make_unique<util::ThreadPool>(workers_);
    }

    for (;;) {
      msgpass::Time t_next = std::numeric_limits<msgpass::Time>::infinity();
      for (const Shard& sh : shards_) {
        if (!sh.heap.empty()) t_next = std::min(t_next, sh.heap.top().time);
      }
      if (t_next > deadline) break;  // also catches all-heaps-empty
      const msgpass::Time horizon =
          pdes::advance_time(t_next, params_.delay_min);
      if (workers_ == 1) {
        process_shard(shards_[0], horizon, deadline);
      } else {
        pool_->run_on_all([&](std::size_t w) {
          for (auto& box : shards_[w].outbox) box.clear();
          process_shard(shards_[w], horizon, deadline);
        });
        pool_->run_on_all([&](std::size_t w) { drain_inbound(w); });
      }
      acc.merge_shards(flip_logs);
      holder_count_ = acc.count();
      now_ = std::min(horizon, deadline);
      if (stop(*this)) {
        stopped_ = true;
        break;
      }
    }
    if (!stopped_ && now_ < deadline) now_ = deadline;
    acc.finish(now_);
    holder_count_ = acc.count();
    stats.observed_time = now_ - start;
    stats.zero_token_time = acc.zero_time();
    stats.zero_intervals = static_cast<std::size_t>(acc.zero_intervals());
    stats.handovers = acc.handovers();
    stats.min_holders = acc.min_holders();
    stats.max_holders = acc.max_holders();
    for (const Shard& sh : shards_) {
      stats.events += sh.ctr.events;
      stats.deliveries += sh.ctr.deliveries;
      stats.transmissions += sh.ctr.transmissions;
      stats.losses += sh.ctr.losses;
      stats.rule_executions += sh.ctr.rule_executions;
      stats.crash_restarts += sh.ctr.crash_restarts;
    }
    return stats;
  }

  P protocol_;
  msgpass::NetworkParams params_;
  ActiveFn active_;
  msgpass::Time now_ = 0.0;
  bool stopped_ = false;
  std::size_t workers_ = 1;
  pdes::ShardLayout layout_;
  Rng aux_rng_;  ///< coordinator-only draws (randomize_caches)

  Config states_;
  std::vector<std::size_t> off_;        ///< CSR offsets, size n+1
  std::vector<std::uint32_t> nbr_;      ///< CSR neighbor ids
  std::vector<std::uint32_t> rev_slot_; ///< receiver-side slot per edge
  std::vector<State> cache_;            ///< cache_[off_[i]+k] = view of nbr k
  std::vector<std::uint8_t> link_busy_;
  std::vector<std::uint8_t> link_has_pending_;
  std::vector<State> link_pending_;
  std::vector<std::uint8_t> exec_pending_;
  std::vector<std::uint8_t> holder_bit_;
  std::vector<Rng> node_rng_;
  std::vector<std::uint32_t> node_seq_;

  std::vector<Shard> shards_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::size_t holder_count_ = 0;
};

}  // namespace ssr::graph
