#include "graph/mis.hpp"

#include <string>

#include "util/assert.hpp"

namespace ssr::graph {

std::string to_string(MisStatus status) {
  switch (status) {
    case MisStatus::kOut:
      return "OUT";
    case MisStatus::kWait:
      return "WAIT";
    case MisStatus::kIn:
      return "IN";
  }
  return "?";
}

TurauMis::TurauMis(Topology topology) : topology_(std::move(topology)) {}

int TurauMis::enabled_rule(std::size_t i, const State& self,
                           std::span<const State> neighbors) const {
  const auto ids = topology_.neighbors(i);
  SSR_REQUIRE(neighbors.size() == ids.size(), "neighbor vector size mismatch");
  bool in_neighbor = false;
  bool smaller_in_neighbor = false;
  bool smaller_wait_neighbor = false;
  for (std::size_t k = 0; k < neighbors.size(); ++k) {
    if (neighbors[k].status == MisStatus::kIn) {
      in_neighbor = true;
      if (ids[k] < i) smaller_in_neighbor = true;
    } else if (neighbors[k].status == MisStatus::kWait && ids[k] < i) {
      smaller_wait_neighbor = true;
    }
  }
  switch (self.status) {
    case MisStatus::kWait:
      if (in_neighbor) return kRuleRetreat;
      if (!smaller_wait_neighbor) return kRuleCommit;
      return kDisabled;
    case MisStatus::kOut:
      if (!in_neighbor) return kRuleVolunteer;
      return kDisabled;
    case MisStatus::kIn:
      if (smaller_in_neighbor) return kRuleYield;
      return kDisabled;
  }
  return kDisabled;
}

TurauMis::State TurauMis::apply(std::size_t i, int rule, const State& self,
                                std::span<const State> neighbors) const {
  SSR_REQUIRE(enabled_rule(i, self, neighbors) == rule,
              "rule applied while not the enabled rule");
  switch (rule) {
    case kRuleRetreat:
    case kRuleYield:
      return State{MisStatus::kOut};
    case kRuleVolunteer:
      return State{MisStatus::kWait};
    case kRuleCommit:
      return State{MisStatus::kIn};
    default:
      SSR_REQUIRE(false, "unknown MIS rule id");
  }
}

std::vector<std::size_t> mis_members(const MisConfig& config) {
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < config.size(); ++i) {
    if (config[i].status == MisStatus::kIn) members.push_back(i);
  }
  return members;
}

bool is_independent(const Topology& topology, const MisConfig& config) {
  SSR_REQUIRE(config.size() == topology.size(), "config/topology mismatch");
  for (std::size_t i = 0; i < config.size(); ++i) {
    if (config[i].status != MisStatus::kIn) continue;
    for (std::size_t j : topology.neighbors(i)) {
      if (config[j].status == MisStatus::kIn) return false;
    }
  }
  return true;
}

bool is_dominating(const Topology& topology, const MisConfig& config) {
  SSR_REQUIRE(config.size() == topology.size(), "config/topology mismatch");
  for (std::size_t i = 0; i < config.size(); ++i) {
    if (config[i].status == MisStatus::kIn) continue;
    bool covered = false;
    for (std::size_t j : topology.neighbors(i)) {
      if (config[j].status == MisStatus::kIn) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

bool is_stable_mis(const Topology& topology, const MisConfig& config) {
  for (const auto& s : config) {
    if (s.status == MisStatus::kWait) return false;
  }
  return is_independent(topology, config) && is_dominating(topology, config);
}

bool local_inclusion_holds(const Topology& topology,
                           const std::vector<bool>& active) {
  SSR_REQUIRE(active.size() == topology.size(), "active/topology mismatch");
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (active[i]) continue;
    bool covered = false;
    for (std::size_t j : topology.neighbors(i)) {
      if (active[j]) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

MisConfig random_config(const Topology& topology, Rng& rng) {
  MisConfig config(topology.size());
  for (auto& s : config) {
    s.status = static_cast<MisStatus>(rng.below(3));
  }
  return config;
}

}  // namespace ssr::graph
