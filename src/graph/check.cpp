#include "graph/check.hpp"

namespace ssr::graph {

GraphModelChecker<TurauMis> make_mis_checker(Topology topology) {
  Topology topo_copy = topology;  // the protocol owns one copy
  TurauMis protocol(std::move(topo_copy));
  auto legit = [topology](const MisConfig& config) {
    return is_stable_mis(topology, config);
  };
  return GraphModelChecker<TurauMis>(
      std::move(protocol), 3,
      [](const MisState& s) { return static_cast<std::uint32_t>(s.status); },
      [](std::uint32_t code) {
        SSR_REQUIRE(code < 3, "bad MIS state code");
        return MisState{static_cast<MisStatus>(code)};
      },
      std::move(legit));
}

}  // namespace ssr::graph
