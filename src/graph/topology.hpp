// General network topologies — the substrate for the paper's stated
// future work ("design of a self-stabilizing mutual inclusion algorithm
// ... for general network topology", §6). Undirected simple graphs with
// stable adjacency lists; rings, paths, stars, complete graphs and random
// connected graphs as constructors.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ssr::graph {

/// Undirected simple graph with n nodes (0..n-1).
class Topology {
 public:
  explicit Topology(std::size_t n);

  std::size_t size() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edges_ / 2; }

  /// Adds the undirected edge {a, b}. Idempotent; rejects self-loops.
  void add_edge(std::size_t a, std::size_t b);

  bool has_edge(std::size_t a, std::size_t b) const;

  /// Sorted neighbor ids of node i.
  std::span<const std::size_t> neighbors(std::size_t i) const {
    SSR_REQUIRE(i < adjacency_.size(), "node index out of range");
    return adjacency_[i];
  }

  std::size_t degree(std::size_t i) const { return neighbors(i).size(); }
  std::size_t max_degree() const;

  bool connected() const;

  // --- constructors for standard families ---------------------------------
  static Topology ring(std::size_t n);
  static Topology path(std::size_t n);
  static Topology star(std::size_t n);  ///< node 0 is the hub
  static Topology complete(std::size_t n);
  static Topology grid(std::size_t rows, std::size_t cols);
  /// Connected random graph: a random spanning tree plus each remaining
  /// edge independently with probability p.
  static Topology random_connected(std::size_t n, double p, Rng& rng);

 private:
  std::vector<std::vector<std::size_t>> adjacency_;
  std::size_t edges_ = 0;  // directed count (2x undirected)
};

}  // namespace ssr::graph
