// Guarded-command protocols on general graphs. The ring framework
// (stabilizing/protocol.hpp) fixes the neighborhood to {pred, succ}; here
// a rule reads the whole (ordered) neighbor-state vector, which is the
// state-reading model on arbitrary topologies. Used by the general-
// topology extensions (the paper's §6 future work).
#pragma once

#include <concepts>
#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "graph/topology.hpp"
#include "stabilizing/daemon.hpp"
#include "util/assert.hpp"

namespace ssr::graph {

/// Sentinel rule id meaning "no guard holds".
inline constexpr int kDisabled = 0;

// clang-format off
template <typename P>
concept GraphProtocol = requires(const P p, std::size_t i,
                                 const typename P::State& s,
                                 std::span<const typename P::State> neigh) {
  typename P::State;
  requires std::equality_comparable<typename P::State>;
  requires std::copyable<typename P::State>;
  { p.topology() } -> std::convertible_to<const Topology&>;
  /// Highest-priority enabled rule at node i; neighbor states are ordered
  /// as topology().neighbors(i).
  { p.enabled_rule(i, s, neigh) } -> std::convertible_to<int>;
  { p.apply(i, int{}, s, neigh) } -> std::same_as<typename P::State>;
};
// clang-format on

/// Composite-atomicity engine over a graph protocol (mirror of
/// stab::Engine; reuses the ring daemons).
template <GraphProtocol P>
class GraphEngine {
 public:
  using State = typename P::State;
  using Configuration = std::vector<State>;

  GraphEngine(P protocol, Configuration initial)
      : protocol_(std::move(protocol)), config_(std::move(initial)) {
    SSR_REQUIRE(config_.size() == protocol_.topology().size(),
                "configuration size must equal node count");
  }

  const P& protocol() const { return protocol_; }
  const Configuration& config() const { return config_; }
  std::size_t size() const { return config_.size(); }

  void reset(Configuration c) {
    SSR_REQUIRE(c.size() == config_.size(), "node count cannot change");
    config_ = std::move(c);
  }

  void corrupt(std::size_t i, State s) {
    SSR_REQUIRE(i < config_.size(), "node index out of range");
    config_[i] = std::move(s);
  }

  int enabled_rule(std::size_t i) const {
    gather(i, scratch_);
    return protocol_.enabled_rule(i, config_[i], scratch_);
  }

  bool is_enabled(std::size_t i) const { return enabled_rule(i) != kDisabled; }

  void enabled(std::vector<std::size_t>& indices,
               std::vector<int>& rules) const {
    indices.clear();
    rules.clear();
    for (std::size_t i = 0; i < config_.size(); ++i) {
      const int r = enabled_rule(i);
      if (r != kDisabled) {
        indices.push_back(i);
        rules.push_back(r);
      }
    }
  }

  /// Sorted enabled indices, filled into member scratch (no per-call
  /// allocation). Invalidated by the next enabled_indices()/step_with().
  const std::vector<std::size_t>& enabled_indices() const {
    enabled(scratch_indices_, scratch_rules_);
    return scratch_indices_;
  }

  /// One composite-atomicity step at the selected (enabled) nodes.
  std::vector<int> step(std::span<const std::size_t> selected) {
    SSR_REQUIRE(!selected.empty(), "a step must move at least one node");
    std::vector<std::pair<std::size_t, State>> writes;
    std::vector<int> rules;
    for (std::size_t i : selected) {
      SSR_REQUIRE(i < config_.size(), "selected node out of range");
      gather(i, scratch_);
      const int rule = protocol_.enabled_rule(i, config_[i], scratch_);
      SSR_REQUIRE(rule != kDisabled, "daemon selected a disabled node");
      writes.emplace_back(i, protocol_.apply(i, rule, config_[i], scratch_));
      rules.push_back(rule);
    }
    for (auto& [i, s] : writes) config_[i] = std::move(s);
    ++steps_;
    moves_ += selected.size();
    return rules;
  }

  /// Daemon-driven step; returns false iff no node is enabled (for silent
  /// algorithms this is the stabilized fixpoint, not an error).
  bool step_with(stab::Daemon& daemon) {
    enabled(scratch_indices_, scratch_rules_);
    if (scratch_indices_.empty()) return false;
    const stab::EnabledView view{scratch_indices_, scratch_rules_,
                                 config_.size()};
    const auto chosen = daemon.select(view);
    SSR_REQUIRE(!chosen.empty(), "daemon returned an empty selection");
    step(chosen);
    return true;
  }

  std::uint64_t steps() const { return steps_; }
  std::uint64_t moves() const { return moves_; }

 private:
  void gather(std::size_t i, std::vector<State>& out) const {
    SSR_REQUIRE(i < config_.size(), "node index out of range");
    const auto neigh = protocol_.topology().neighbors(i);
    out.clear();
    for (std::size_t j : neigh) out.push_back(config_[j]);
  }

  P protocol_;
  Configuration config_;
  std::uint64_t steps_ = 0;
  std::uint64_t moves_ = 0;
  mutable std::vector<State> scratch_;
  mutable std::vector<std::size_t> scratch_indices_;
  mutable std::vector<int> scratch_rules_;
};

/// Runs until no node is enabled (silence) or the step budget is spent.
/// Returns the steps consumed, or nullopt if the budget ran out first.
template <GraphProtocol P>
std::optional<std::uint64_t> run_to_silence(GraphEngine<P>& engine,
                                            stab::Daemon& daemon,
                                            std::uint64_t max_steps) {
  const std::uint64_t start = engine.steps();
  for (std::uint64_t t = 0; t <= max_steps; ++t) {
    if (!engine.step_with(daemon)) return engine.steps() - start;
  }
  return std::nullopt;
}

}  // namespace ssr::graph
