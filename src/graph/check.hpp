// Exhaustive verification of *silent* graph protocols (MIS and friends):
//
//   * fixpoint soundness:    every silent configuration satisfies the
//                            legitimacy predicate;
//   * fixpoint completeness: every legitimate configuration is silent;
//   * convergence:           no cycle among non-silent configurations
//                            under the full distributed daemon, i.e.
//                            every execution reaches silence;
//   * worst-case steps to silence (exact, adversarial daemon).
//
// The mirror of verify::ModelChecker for the general-topology framework.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "graph/mis.hpp"
#include "graph/protocol.hpp"
#include "util/assert.hpp"

namespace ssr::graph {

struct GraphCheckReport {
  std::uint64_t total_configs = 0;
  std::uint64_t silent_configs = 0;
  std::uint64_t legitimate_configs = 0;

  bool fixpoints_sound = true;       ///< silent => legitimate
  std::optional<std::uint64_t> unsound_witness;
  bool fixpoints_complete = true;    ///< legitimate => silent
  std::optional<std::uint64_t> incomplete_witness;

  bool convergence_holds = true;
  std::optional<std::uint64_t> cycle_witness;
  std::uint64_t worst_case_steps = 0;
  std::optional<std::uint64_t> worst_case_witness;

  bool all_ok() const {
    return fixpoints_sound && fixpoints_complete && convergence_holds;
  }
  std::string summary() const {
    std::string s = "configs=" + std::to_string(total_configs) +
                    " silent=" + std::to_string(silent_configs) +
                    " legit=" + std::to_string(legitimate_configs);
    s += std::string(" sound=") + (fixpoints_sound ? "yes" : "NO");
    s += std::string(" complete=") + (fixpoints_complete ? "yes" : "NO");
    s += std::string(" convergence=") + (convergence_holds ? "yes" : "NO");
    if (convergence_holds)
      s += " worst_steps=" + std::to_string(worst_case_steps);
    return s;
  }
};

template <GraphProtocol P>
class GraphModelChecker {
 public:
  using State = typename P::State;
  using Config = std::vector<State>;
  using Encoder = std::function<std::uint32_t(const State&)>;
  using Decoder = std::function<State(std::uint32_t)>;
  using LegitPredicate = std::function<bool(const Config&)>;

  GraphModelChecker(P protocol, std::uint32_t states_per_node, Encoder encode,
                    Decoder decode, LegitPredicate legit)
      : protocol_(std::move(protocol)),
        radix_(states_per_node),
        encode_(std::move(encode)),
        decode_(std::move(decode)),
        legit_(std::move(legit)) {
    SSR_REQUIRE(radix_ >= 2, "need at least two states per node");
    std::uint64_t total = 1;
    for (std::size_t i = 0; i < protocol_.topology().size(); ++i) {
      SSR_REQUIRE(total <= (1ULL << 33) / radix_,
                  "configuration space too large for exhaustive checking");
      total *= radix_;
    }
    total_ = total;
  }

  std::uint64_t total() const { return total_; }

  std::uint64_t encode(const Config& config) const {
    std::uint64_t idx = 0;
    for (std::size_t i = config.size(); i-- > 0;)
      idx = idx * radix_ + encode_(config[i]);
    return idx;
  }

  Config decode(std::uint64_t idx) const {
    Config config(protocol_.topology().size());
    for (auto& s : config) {
      s = decode_(static_cast<std::uint32_t>(idx % radix_));
      idx /= radix_;
    }
    return config;
  }

  GraphCheckReport run() const {
    GraphCheckReport report;
    report.total_configs = total_;

    std::vector<std::uint8_t> silent(total_, 0);
    std::vector<std::size_t> idx;
    std::vector<int> rules;
    for (std::uint64_t c = 0; c < total_; ++c) {
      const Config config = decode(c);
      enabled(config, idx, rules);
      const bool is_silent = idx.empty();
      const bool is_legit = legit_(config);
      silent[c] = is_silent ? 1 : 0;
      if (is_silent) ++report.silent_configs;
      if (is_legit) ++report.legitimate_configs;
      if (is_silent && !is_legit && report.fixpoints_sound) {
        report.fixpoints_sound = false;
        report.unsound_witness = c;
      }
      if (is_legit && !is_silent && report.fixpoints_complete) {
        report.fixpoints_complete = false;
        report.incomplete_witness = c;
      }
    }

    // Convergence + exact worst case: tri-color DFS over non-silent
    // configurations (same scheme as verify::ModelChecker).
    constexpr std::uint8_t kWhite = 0, kGray = 1, kBlack = 2;
    std::vector<std::uint8_t> color(total_, kWhite);
    std::vector<std::uint32_t> height(total_, 0);
    struct Frame {
      std::uint64_t node;
      std::vector<std::uint64_t> succ;
      std::size_t next = 0;
      std::uint32_t best = 0;
    };
    std::vector<Frame> stack;
    std::vector<std::uint64_t> succs;

    for (std::uint64_t root = 0; root < total_; ++root) {
      if (silent[root] || color[root] != kWhite) continue;
      if (!report.convergence_holds) break;
      color[root] = kGray;
      Frame f;
      f.node = root;
      successors(decode(root), f.succ);
      stack.clear();
      stack.push_back(std::move(f));
      while (!stack.empty()) {
        Frame& top = stack.back();
        if (top.next < top.succ.size()) {
          const std::uint64_t s = top.succ[top.next++];
          if (silent[s]) {
            top.best = std::max(top.best, 1u);
            continue;
          }
          if (color[s] == kGray) {
            report.convergence_holds = false;
            report.cycle_witness = s;
            break;
          }
          if (color[s] == kBlack) {
            top.best = std::max(top.best, height[s] + 1);
            continue;
          }
          color[s] = kGray;
          Frame child;
          child.node = s;
          successors(decode(s), child.succ);
          stack.push_back(std::move(child));
          continue;
        }
        color[top.node] = kBlack;
        height[top.node] = top.best;
        if (top.best > report.worst_case_steps) {
          report.worst_case_steps = top.best;
          report.worst_case_witness = top.node;
        }
        const std::uint32_t done = top.best;
        stack.pop_back();
        if (!stack.empty()) {
          stack.back().best = std::max(stack.back().best, done + 1);
        }
      }
    }
    return report;
  }

 private:
  void enabled(const Config& config, std::vector<std::size_t>& idx,
               std::vector<int>& rules) const {
    idx.clear();
    rules.clear();
    std::vector<State> neigh;
    for (std::size_t i = 0; i < config.size(); ++i) {
      neigh.clear();
      for (std::size_t j : protocol_.topology().neighbors(i))
        neigh.push_back(config[j]);
      const int r = protocol_.enabled_rule(i, config[i], neigh);
      if (r != kDisabled) {
        idx.push_back(i);
        rules.push_back(r);
      }
    }
  }

  void successors(const Config& config, std::vector<std::uint64_t>& out) const {
    out.clear();
    std::vector<std::size_t> idx;
    std::vector<int> rules;
    enabled(config, idx, rules);
    const std::size_t m = idx.size();
    SSR_ASSERT(m < 20, "enabled set too large for subset enumeration");
    if (m == 0) return;
    std::vector<State> neigh;
    // Precompute each enabled node's next state once (composite atomicity:
    // all read the pre-step configuration).
    std::vector<State> next_state;
    next_state.reserve(m);
    for (std::size_t k = 0; k < m; ++k) {
      neigh.clear();
      for (std::size_t j : protocol_.topology().neighbors(idx[k]))
        neigh.push_back(config[j]);
      next_state.push_back(
          protocol_.apply(idx[k], rules[k], config[idx[k]], neigh));
    }
    Config next = config;
    for (std::uint32_t mask = 1; mask < (1u << m); ++mask) {
      for (std::size_t k = 0; k < m; ++k) {
        if (mask & (1u << k)) next[idx[k]] = next_state[k];
      }
      out.push_back(encode(next));
      for (std::size_t k = 0; k < m; ++k) {
        if (mask & (1u << k)) next[idx[k]] = config[idx[k]];
      }
    }
  }

  P protocol_;
  std::uint64_t radix_;
  Encoder encode_;
  Decoder decode_;
  LegitPredicate legit_;
  std::uint64_t total_ = 0;
};

/// Ready-made checker for TurauMis on a topology.
GraphModelChecker<TurauMis> make_mis_checker(Topology topology);

}  // namespace ssr::graph
