#include "dijkstra/dual.hpp"

#include "util/assert.hpp"

namespace ssr::dijkstra {

DualKStateRing::DualKStateRing(std::size_t n, std::uint32_t K)
    : n_(n), k_(K) {
  SSR_REQUIRE(n >= 2, "ring needs at least two processes");
  SSR_REQUIRE(K > n, "K-state ring requires K > n for stabilization");
}

int DualKStateRing::enabled_rule(std::size_t i, const State& self,
                                 const State& pred,
                                 const State& /*succ*/) const {
  const bool ga = kstate_guard(i, self.a, pred.a);
  const bool gb = kstate_guard(i, self.b, pred.b);
  if (ga && gb) return kRuleBoth;
  if (ga) return kRuleA;
  if (gb) return kRuleB;
  return stab::kDisabled;
}

DualKStateRing::State DualKStateRing::apply(std::size_t i, int rule,
                                            const State& self,
                                            const State& pred,
                                            const State& /*succ*/) const {
  State next = self;
  switch (rule) {
    case kRuleA:
      SSR_REQUIRE(kstate_guard(i, self.a, pred.a), "instance A disabled");
      next.a = kstate_command(i, pred.a, k_);
      break;
    case kRuleB:
      SSR_REQUIRE(kstate_guard(i, self.b, pred.b), "instance B disabled");
      next.b = kstate_command(i, pred.b, k_);
      break;
    case kRuleBoth:
      SSR_REQUIRE(kstate_guard(i, self.a, pred.a) &&
                      kstate_guard(i, self.b, pred.b),
                  "some instance disabled");
      next.a = kstate_command(i, pred.a, k_);
      next.b = kstate_command(i, pred.b, k_);
      break;
    default:
      SSR_REQUIRE(false, "unknown rule id for DualKStateRing");
  }
  return next;
}

bool DualKStateRing::holds_token(std::size_t i, const State& self,
                                 const State& pred) const {
  return kstate_guard(i, self.a, pred.a) || kstate_guard(i, self.b, pred.b);
}

std::size_t token_count(const DualKStateRing& ring, const DualConfig& config) {
  SSR_REQUIRE(config.size() == ring.size(), "configuration/ring size mismatch");
  const std::size_t n = config.size();
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& pred = config[stab::pred_index(i, n)];
    if (kstate_guard(i, config[i].a, pred.a)) ++count;
    if (kstate_guard(i, config[i].b, pred.b)) ++count;
  }
  return count;
}

std::size_t privileged_count(const DualKStateRing& ring,
                             const DualConfig& config) {
  SSR_REQUIRE(config.size() == ring.size(), "configuration/ring size mismatch");
  const std::size_t n = config.size();
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (ring.holds_token(i, config[i], config[stab::pred_index(i, n)])) ++count;
  }
  return count;
}

bool is_legitimate(const DualKStateRing& ring, const DualConfig& config) {
  SSR_REQUIRE(config.size() == ring.size(), "configuration/ring size mismatch");
  const std::size_t n = config.size();
  std::size_t tokens_a = 0;
  std::size_t tokens_b = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& pred = config[stab::pred_index(i, n)];
    if (kstate_guard(i, config[i].a, pred.a)) ++tokens_a;
    if (kstate_guard(i, config[i].b, pred.b)) ++tokens_b;
  }
  return tokens_a == 1 && tokens_b == 1;
}

DualConfig random_config(const DualKStateRing& ring, Rng& rng) {
  DualConfig c(ring.size());
  for (auto& s : c) {
    s.a = static_cast<std::uint32_t>(rng.below(ring.modulus()));
    s.b = static_cast<std::uint32_t>(rng.below(ring.modulus()));
  }
  return c;
}

stab::TraceStyle<DualLocal> trace_style(const DualKStateRing& ring) {
  stab::TraceStyle<DualLocal> style;
  style.format_state = [](const DualLocal& s) {
    return std::to_string(s.a) + "|" + std::to_string(s.b);
  };
  style.annotate = [ring](const std::vector<DualLocal>& config,
                          std::size_t i) -> std::string {
    const std::size_t n = config.size();
    const auto& pred = config[stab::pred_index(i, n)];
    std::string marks;
    if (kstate_guard(i, config[i].a, pred.a)) marks += "T1";
    if (kstate_guard(i, config[i].b, pred.b)) marks += "T2";
    return marks;
  };
  return style;
}

}  // namespace ssr::dijkstra
