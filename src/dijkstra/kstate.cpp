#include "dijkstra/kstate.hpp"

#include "util/assert.hpp"

namespace ssr::dijkstra {

KStateRing::KStateRing(std::size_t n, std::uint32_t K) : n_(n), k_(K) {
  SSR_REQUIRE(n >= 2, "ring needs at least two processes");
  // Dijkstra's proof uses K > n; Hoepman ("even if K = N") showed the
  // K = n boundary still stabilizes on rings, and the exhaustive checker
  // verifies that machine-checked for small n, so K = n is admitted here.
  SSR_REQUIRE(K >= n, "K-state ring requires K >= n for stabilization");
}

KStateRing::State KStateRing::apply(std::size_t i, int rule, const State& self,
                                    const State& pred,
                                    const State& /*succ*/) const {
  SSR_REQUIRE(rule == kRule, "K-state ring has a single rule");
  SSR_REQUIRE(kstate_guard(i, self.x, pred.x), "rule applied while disabled");
  return State{kstate_command(i, pred.x, k_)};
}

std::size_t token_count(const KStateRing& ring, const KStateConfig& config) {
  SSR_REQUIRE(config.size() == ring.size(), "configuration/ring size mismatch");
  const std::size_t n = config.size();
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (ring.holds_token(i, config[i], config[stab::pred_index(i, n)])) ++count;
  }
  return count;
}

bool is_legitimate(const KStateRing& ring, const KStateConfig& config) {
  // Paper §2.3: the configuration must be (x, ..., x) or
  // (x+1, ..., x+1, x, ..., x) with 1 <= l <= n-1 leading x+1 entries,
  // arithmetic mod K. Note this is stricter than "exactly one token":
  // e.g. (5, 3, 3) has one token but a step of 2 and is not of the
  // required form (it is, however, reachable only from illegitimate
  // configurations, so closure still holds for the strict set).
  SSR_REQUIRE(config.size() == ring.size(), "configuration/ring size mismatch");
  const std::size_t n = config.size();
  const std::uint32_t K = ring.modulus();
  const std::uint32_t x = config[n - 1].x;
  std::size_t l = 0;  // number of leading x+1 entries
  while (l < n && config[l].x == (x + 1) % K) ++l;
  if (l == n) return false;  // (x+1)^n is the all-equal form for x' = x+1
  for (std::size_t i = l; i < n; ++i) {
    if (config[i].x != x) return false;
  }
  return true;
}

std::vector<KStateConfig> enumerate_legitimate(const KStateRing& ring) {
  const std::size_t n = ring.size();
  const std::uint32_t K = ring.modulus();
  std::vector<KStateConfig> out;
  out.reserve(static_cast<std::size_t>(K) * n);
  for (std::uint32_t x = 0; x < K; ++x) {
    for (std::size_t l = 0; l < n; ++l) {
      // l = 0: all equal to x. l >= 1: first l entries are x+1, rest x.
      KStateConfig c(n);
      for (std::size_t i = 0; i < n; ++i) {
        c[i].x = (i < l) ? (x + 1) % K : x;
      }
      out.push_back(std::move(c));
    }
  }
  return out;
}

KStateConfig random_config(const KStateRing& ring, Rng& rng) {
  KStateConfig c(ring.size());
  for (auto& s : c) s.x = static_cast<std::uint32_t>(rng.below(ring.modulus()));
  return c;
}

std::uint64_t convergence_step_bound(std::size_t n) {
  return 3ULL * n * (n - 1) / 2;
}

stab::TraceStyle<KStateLocal> trace_style(const KStateRing& ring) {
  stab::TraceStyle<KStateLocal> style;
  style.format_state = [](const KStateLocal& s) { return std::to_string(s.x); };
  style.annotate = [ring](const std::vector<KStateLocal>& config,
                          std::size_t i) -> std::string {
    const std::size_t n = config.size();
    return ring.holds_token(i, config[i], config[stab::pred_index(i, n)])
               ? "T"
               : "";
  };
  return style;
}

}  // namespace ssr::dijkstra
