// Two independent Dijkstra K-state instances run concurrently on the same
// ring — the naive multi-token construction the paper rules out in Figure
// 12. In the state-reading model this keeps two tokens alive (each instance
// keeps exactly one), so it looks like a mutual-inclusion solution; the
// message-passing experiments show that both tokens can be "in flight"
// simultaneously, leaving an instant with no token-holding node. SSRmin's
// handshake exists precisely to prevent that.
#pragma once

#include <cstdint>
#include <vector>

#include "dijkstra/kstate.hpp"
#include "stabilizing/protocol.hpp"
#include "stabilizing/trace.hpp"
#include "util/rng.hpp"

namespace ssr::dijkstra {

/// Local state: one counter per instance.
struct DualLocal {
  std::uint32_t a = 0;  ///< counter of instance A
  std::uint32_t b = 0;  ///< counter of instance B
  friend auto operator<=>(const DualLocal&, const DualLocal&) = default;
};

/// Product protocol of two K-state rings. Rule ids: 1 = move instance A
/// only, 2 = move instance B only, 3 = move both (both guards hold). The
/// composite move models a node's single atomic step serving both
/// instances, which is how a real node would execute two protocol stacks.
class DualKStateRing {
 public:
  using State = DualLocal;

  static constexpr int kRuleA = 1;
  static constexpr int kRuleB = 2;
  static constexpr int kRuleBoth = 3;

  DualKStateRing(std::size_t n, std::uint32_t K);

  std::size_t size() const { return n_; }
  std::uint32_t modulus() const { return k_; }

  int enabled_rule(std::size_t i, const State& self, const State& pred,
                   const State& succ) const;
  State apply(std::size_t i, int rule, const State& self, const State& pred,
              const State& succ) const;

  /// A node holds a token iff it holds the token of either instance.
  bool holds_token(std::size_t i, const State& self, const State& pred) const;

 private:
  std::size_t n_;
  std::uint32_t k_;
};

using DualConfig = std::vector<DualLocal>;

/// Total number of tokens across both instances (0..2 per process).
std::size_t token_count(const DualKStateRing& ring, const DualConfig& config);

/// Number of processes holding at least one token.
std::size_t privileged_count(const DualKStateRing& ring,
                             const DualConfig& config);

/// Legitimate iff each instance individually has exactly one token.
bool is_legitimate(const DualKStateRing& ring, const DualConfig& config);

DualConfig random_config(const DualKStateRing& ring, Rng& rng);

stab::TraceStyle<DualLocal> trace_style(const DualKStateRing& ring);

}  // namespace ssr::dijkstra
