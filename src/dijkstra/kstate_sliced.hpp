// Bit-sliced Dijkstra K-state kernel: 64 Monte-Carlo lanes per word.
//
// The K-state protocol is the degenerate case of the sliced SSRmin kernel:
// one rule ("if G_i then C_i"), no flag planes. It exists so the batched
// benches can run their Dijkstra baselines through the same sim::BatchEngine
// harness, and so the differential tests cover two protocols, not one.
//
// Legitimacy bit-parallel: is_legitimate (all equal, or a single +1 step)
// is exactly "exactly one guard holds" AND "every x_i != x_{i-1} boundary
// at i >= 1 steps by +1 mod K" — the same 2-bit vertical counter plus
// util::SlicedDigits::step_shape reduction SSRmin uses for its x-part.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "dijkstra/kstate.hpp"
#include "util/assert.hpp"
#include "util/bitplane.hpp"

namespace ssr::dijkstra {

class SlicedKState {
 public:
  using Ring = KStateRing;
  using Config = KStateConfig;

  static constexpr int kRuleCount = 1;

  explicit SlicedKState(const KStateRing& ring)
      : ring_(ring),
        n_(ring.size()),
        digits_(n_, ring.modulus()),
        enabled_(n_, 0),
        dirty_mark_(n_, 0) {}

  std::size_t size() const { return n_; }
  const KStateRing& ring() const { return ring_; }

  void load_lane(unsigned lane, const Config& config) {
    SSR_REQUIRE(config.size() == n_, "configuration/ring size mismatch");
    for (std::size_t i = 0; i < n_; ++i) digits_.set_lane(i, lane, config[i].x);
    all_dirty_ = true;
  }

  Config extract_lane(unsigned lane) const {
    Config config(n_);
    for (std::size_t i = 0; i < n_; ++i) config[i].x = digits_.get_lane(i, lane);
    return config;
  }

  void compute() {
    enabled_changes_.clear();
    if (all_dirty_) {
      for (std::size_t i = 0; i < n_; ++i) refresh_guard(i);
      all_dirty_ = false;
      full_rebuild_ = true;
      en_count_.fill(0);
      for (std::size_t i = 0; i < n_; ++i) {
        for (std::uint64_t w = enabled_[i]; w != 0; w &= w - 1) {
          ++en_count_[std::countr_zero(w)];
        }
      }
    } else {
      full_rebuild_ = false;
      for (std::size_t i : dirty_) {
        const std::uint64_t old = enabled_[i];
        refresh_guard(i);
        const std::uint64_t diff = old ^ enabled_[i];
        if (diff == 0) continue;
        enabled_changes_.emplace_back(i, diff);
        for (std::uint64_t gained = enabled_[i] & ~old; gained != 0;
             gained &= gained - 1) {
          ++en_count_[std::countr_zero(gained)];
        }
        for (std::uint64_t lost = old & ~enabled_[i]; lost != 0;
             lost &= lost - 1) {
          --en_count_[std::countr_zero(lost)];
        }
      }
    }
    for (std::size_t i : dirty_) dirty_mark_[i] = 0;
    dirty_.clear();
  }

  /// True iff the last compute() rebuilt every plane (enabled_changes()
  /// is then meaningless and any cached transposition must be redone).
  bool full_rebuild() const { return full_rebuild_; }

  /// (index, old XOR new) pairs for every enabled-plane word the last
  /// incremental compute() changed — what lets BatchEngine patch its
  /// lane-major bitmaps in O(changed bits) instead of re-transposing.
  const std::vector<std::pair<std::size_t, std::uint64_t>>& enabled_changes()
      const {
    return enabled_changes_;
  }

  void mark_all_dirty() { all_dirty_ = true; }

  /// Lanewise G_i — identically the enabled plane (the single rule).
  const std::vector<std::uint64_t>& enabled() const { return enabled_; }

  /// Per-lane token (= enabled) count, maintained incrementally.
  std::uint32_t enabled_count(unsigned lane) const { return en_count_[lane]; }

  /// Lanewise "at least one process enabled", from the per-lane counts.
  std::uint64_t any_enabled_mask() const {
    std::uint64_t any = 0;
    for (unsigned l = 0; l < 64; ++l) {
      any |= static_cast<std::uint64_t>(en_count_[l] != 0) << l;
    }
    return any;
  }

  const std::vector<std::uint64_t>& rule(int r) const {
    SSR_REQUIRE(r == KStateRing::kRule, "K-state has a single rule");
    return enabled_;
  }

  void apply(const std::vector<std::uint64_t>& sel) {
    SSR_REQUIRE(sel.size() == n_, "selection/ring size mismatch");
    digits_.apply_command(sel.data());
    for (std::size_t i = 0; i < n_; ++i) {
      if (sel[i] == 0) continue;
      SSR_ASSERT((sel[i] & ~enabled_[i]) == 0,
                 "selected a disabled (process, lane)");
      mark_dirty(i);
      mark_dirty(i + 1 == n_ ? 0 : i + 1);
    }
  }

  struct LegitMasks {
    std::uint64_t milestone = 0;   ///< same as legitimate for K-state
    std::uint64_t legitimate = 0;  ///< dijkstra::is_legitimate per lane
  };

  LegitMasks legit_masks() const {
    // "Exactly one token" straight from the incremental per-lane counts.
    std::uint64_t one = 0;
    for (unsigned l = 0; l < 64; ++l) {
      one |= static_cast<std::uint64_t>(en_count_[l] == 1) << l;
    }
    if (one == 0) return {};
    const std::uint64_t legit = digits_.step_shape(one);
    return {legit, legit};
  }

 private:
  void refresh_guard(std::size_t i) {
    digits_.update_neq(i);
    enabled_[i] = i == 0 ? ~digits_.neq(0) : digits_.neq(i);
  }

  void mark_dirty(std::size_t i) {
    if (all_dirty_ || dirty_mark_[i]) return;
    dirty_mark_[i] = 1;
    dirty_.push_back(i);
  }

  KStateRing ring_;  // small value type; copied so the kernel is movable
  std::size_t n_;
  util::SlicedDigits digits_;
  std::vector<std::uint64_t> enabled_;
  std::array<std::uint32_t, 64> en_count_{};  // per-lane enabled counts
  std::vector<std::pair<std::size_t, std::uint64_t>> enabled_changes_;
  std::vector<std::uint8_t> dirty_mark_;
  std::vector<std::size_t> dirty_;
  bool all_dirty_ = true;
  bool full_rebuild_ = false;
};

}  // namespace ssr::dijkstra
