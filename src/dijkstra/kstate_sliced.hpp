// Bit-sliced Dijkstra K-state kernel: one lane per bit of the lane word W
// (64 for u64, 256/512 for the WideWord SIMD backends).
//
// The K-state protocol is the degenerate case of the sliced SSRmin kernel:
// one rule ("if G_i then C_i"), no flag planes. It exists so the batched
// benches can run their Dijkstra baselines through the same sim::BatchEngine
// harness, and so the differential tests cover two protocols, not one.
//
// Legitimacy bit-parallel: is_legitimate (all equal, or a single +1 step)
// is exactly "exactly one guard holds" AND "every x_i != x_{i-1} boundary
// at i >= 1 steps by +1 mod K" — the incremental per-lane counts plus
// util::BasicSlicedDigits::step_shape reduction SSRmin uses for its x-part.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "dijkstra/kstate.hpp"
#include "util/assert.hpp"
#include "util/bitplane.hpp"

namespace ssr::dijkstra {

template <typename W>
class BasicSlicedKState {
 public:
  using Ring = KStateRing;
  using Config = KStateConfig;
  using Word = W;
  using Traits = util::LaneTraits<W>;

  static constexpr int kRuleCount = 1;
  static constexpr unsigned kLanes = Traits::kLanes;

  explicit BasicSlicedKState(const KStateRing& ring)
      : ring_(ring),
        n_(ring.size()),
        digits_(n_, ring.modulus()),
        enabled_(n_, Traits::zero()),
        dirty_mark_(n_, 0) {}

  std::size_t size() const { return n_; }
  const KStateRing& ring() const { return ring_; }

  void load_lane(unsigned lane, const Config& config) {
    SSR_REQUIRE(config.size() == n_, "configuration/ring size mismatch");
    for (std::size_t i = 0; i < n_; ++i) digits_.set_lane(i, lane, config[i].x);
    all_dirty_ = true;
  }

  /// Bulk masked write of one process's counter: every lane in `mask`
  /// takes digit `x`. Dirties only the process and its successor (the two
  /// guards reading x_i), so a run-decomposed refill (sliced Phase A)
  /// keeps compute() incremental.
  void fill_lanes(std::size_t i, const W& mask, std::uint32_t x) {
    digits_.set_lanes_masked(i, mask, x);
    mark_dirty(i);
    mark_dirty(i + 1 == n_ ? 0 : i + 1);
  }

  Config extract_lane(unsigned lane) const {
    Config config(n_);
    for (std::size_t i = 0; i < n_; ++i) config[i].x = digits_.get_lane(i, lane);
    return config;
  }

  void compute() {
    enabled_changes_.clear();
    if (all_dirty_) {
      for (std::size_t i = 0; i < n_; ++i) refresh_guard(i);
      all_dirty_ = false;
      full_rebuild_ = true;
      en_count_.fill(0);
      for (std::size_t i = 0; i < n_; ++i) {
        Traits::for_each_lane(enabled_[i],
                              [&](unsigned lane) { ++en_count_[lane]; });
      }
    } else {
      full_rebuild_ = false;
      for (std::size_t i : dirty_) {
        const W old = enabled_[i];
        refresh_guard(i);
        const W diff = old ^ enabled_[i];
        if (!Traits::any(diff)) continue;
        enabled_changes_.emplace_back(i, diff);
        Traits::for_each_lane(enabled_[i] & ~old,
                              [&](unsigned lane) { ++en_count_[lane]; });
        Traits::for_each_lane(old & ~enabled_[i],
                              [&](unsigned lane) { --en_count_[lane]; });
      }
    }
    for (std::size_t i : dirty_) dirty_mark_[i] = 0;
    dirty_.clear();
  }

  /// True iff the last compute() rebuilt every plane (enabled_changes()
  /// is then meaningless and any cached transposition must be redone).
  bool full_rebuild() const { return full_rebuild_; }

  /// (index, old XOR new) pairs for every enabled-plane word the last
  /// incremental compute() changed — what lets BatchEngine patch its
  /// lane-major bitmaps in O(changed bits) instead of re-transposing.
  const std::vector<std::pair<std::size_t, W>>& enabled_changes() const {
    return enabled_changes_;
  }

  void mark_all_dirty() { all_dirty_ = true; }

  /// Lanewise G_i — identically the enabled plane (the single rule).
  const std::vector<W>& enabled() const { return enabled_; }

  /// Per-lane token (= enabled) count, maintained incrementally.
  std::uint32_t enabled_count(unsigned lane) const { return en_count_[lane]; }

  /// Lanewise "P_i holds the token" — for K-state that is the guard plane
  /// itself; named to match the SSRmin kernel for the sliced Phase A.
  const W& privileged_plane(std::size_t i) const { return enabled_[i]; }

  /// Lanewise "at least one process enabled", from the per-lane counts.
  W any_enabled_mask() const {
    W any = Traits::zero();
    for (unsigned g = 0; g < Traits::kLimbs; ++g) {
      std::uint64_t bits = 0;
      for (unsigned b = 0; b < 64; ++b) {
        bits |= static_cast<std::uint64_t>(en_count_[g * 64 + b] != 0) << b;
      }
      Traits::set_limb(any, g, bits);
    }
    return any;
  }

  const std::vector<W>& rule(int r) const {
    SSR_REQUIRE(r == KStateRing::kRule, "K-state has a single rule");
    return enabled_;
  }

  void apply(const std::vector<W>& sel) {
    SSR_REQUIRE(sel.size() == n_, "selection/ring size mismatch");
    digits_.apply_command(sel.data());
    for (std::size_t i = 0; i < n_; ++i) {
      if (!Traits::any(sel[i])) continue;
      SSR_ASSERT(!Traits::any(sel[i] & ~enabled_[i]),
                 "selected a disabled (process, lane)");
      mark_dirty(i);
      mark_dirty(i + 1 == n_ ? 0 : i + 1);
    }
  }

  struct LegitMasks {
    W milestone = Traits::zero();   ///< same as legitimate for K-state
    W legitimate = Traits::zero();  ///< dijkstra::is_legitimate per lane
  };

  LegitMasks legit_masks() const {
    // "Exactly one token" straight from the incremental per-lane counts.
    W one = Traits::zero();
    for (unsigned g = 0; g < Traits::kLimbs; ++g) {
      std::uint64_t bits = 0;
      for (unsigned b = 0; b < 64; ++b) {
        bits |= static_cast<std::uint64_t>(en_count_[g * 64 + b] == 1) << b;
      }
      Traits::set_limb(one, g, bits);
    }
    if (!Traits::any(one)) return {};
    const W legit = digits_.step_shape(one);
    return {legit, legit};
  }

 private:
  void refresh_guard(std::size_t i) {
    digits_.update_neq(i);
    enabled_[i] = i == 0 ? ~digits_.neq(0) : digits_.neq(i);
  }

  void mark_dirty(std::size_t i) {
    if (all_dirty_ || dirty_mark_[i]) return;
    dirty_mark_[i] = 1;
    dirty_.push_back(i);
  }

  KStateRing ring_;  // small value type; copied so the kernel is movable
  std::size_t n_;
  util::BasicSlicedDigits<W> digits_;
  std::vector<W> enabled_;
  std::array<std::uint32_t, kLanes> en_count_{};  // per-lane enabled counts
  std::vector<std::pair<std::size_t, W>> enabled_changes_;
  std::vector<std::uint8_t> dirty_mark_;
  std::vector<std::size_t> dirty_;
  bool all_dirty_ = true;
  bool full_rebuild_ = false;
};

/// The classic 64-lane kernel every scalar-u64 call site keeps using.
using SlicedKState = BasicSlicedKState<std::uint64_t>;

}  // namespace ssr::dijkstra
