// Dijkstra's self-stabilizing K-state token ring (paper Algorithm 1).
//
// The classical 1974 mutual-exclusion token ring on a unidirectional ring:
// each process holds one counter x_i in {0..K-1}. The bottom process P_0 is
// enabled ("holds the token") iff x_0 = x_{n-1} and then increments; every
// other P_i is enabled iff x_i != x_{i-1} and then copies. With K >= n the
// ring self-stabilizes to exactly one token under the unfair distributed
// daemon (Dijkstra proved K > n; Hoepman tightened the ring case to
// K = n, and the exhaustive checker confirms that boundary for small n).
//
// SSRmin embeds this algorithm as its primary-token sub-protocol (macros
// G_i / C_i of paper Algorithm 2), so the guard/command logic lives in
// free functions reused by ssr::core.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stabilizing/protocol.hpp"
#include "stabilizing/trace.hpp"
#include "util/rng.hpp"

namespace ssr::dijkstra {

/// Local state of a K-state process: just the counter.
struct KStateLocal {
  std::uint32_t x = 0;
  friend auto operator<=>(const KStateLocal&, const KStateLocal&) = default;
};

/// G_i of Algorithm 2: the token/enabledness condition of Dijkstra's ring.
/// For the bottom process (i == 0): x_i == x_pred; otherwise x_i != x_pred.
constexpr bool kstate_guard(std::size_t i, std::uint32_t x_self,
                            std::uint32_t x_pred) {
  return i == 0 ? (x_self == x_pred) : (x_self != x_pred);
}

/// C_i of Algorithm 2: the command. Bottom increments the predecessor's
/// value mod K; others copy it.
constexpr std::uint32_t kstate_command(std::size_t i, std::uint32_t x_pred,
                                       std::uint32_t K) {
  return i == 0 ? (x_pred + 1) % K : x_pred;
}

/// The K-state protocol (satisfies stab::RingProtocol). Rule id 1 is the
/// single rule "if G_i then C_i" (paper's D1/D2 collapsed, Algorithm 2).
class KStateRing {
 public:
  using State = KStateLocal;

  /// Rule id of the unique rule.
  static constexpr int kRule = 1;

  /// Requires n >= 2 and K >= n (the Hoepman bound for stabilization on a
  /// ring under the distributed daemon).
  KStateRing(std::size_t n, std::uint32_t K);

  std::size_t size() const { return n_; }
  std::uint32_t modulus() const { return k_; }

  int enabled_rule(std::size_t i, const State& self, const State& pred,
                   const State& /*succ*/) const {
    return kstate_guard(i, self.x, pred.x) ? kRule : stab::kDisabled;
  }

  State apply(std::size_t i, int rule, const State& self, const State& pred,
              const State& /*succ*/) const;

  /// Token condition: identical to the guard (paper Algorithm 1 lines 6, 10).
  bool holds_token(std::size_t i, const State& self, const State& pred) const {
    return kstate_guard(i, self.x, pred.x);
  }

 private:
  std::size_t n_;
  std::uint32_t k_;
};

using KStateConfig = std::vector<KStateLocal>;

/// Number of token-holding processes in the configuration.
std::size_t token_count(const KStateRing& ring, const KStateConfig& config);

/// Legitimacy (paper §2.3): the configuration is (x, x, ..., x) or
/// (x+1, ..., x+1, x, ..., x) with 1 <= l <= n-1 leading x+1 entries,
/// arithmetic mod K. Equivalent to token_count == 1.
bool is_legitimate(const KStateRing& ring, const KStateConfig& config);

/// All legitimate configurations: n * K of them.
std::vector<KStateConfig> enumerate_legitimate(const KStateRing& ring);

/// Uniformly random (generally illegitimate) configuration.
KStateConfig random_config(const KStateRing& ring, Rng& rng);

/// Worst-case convergence bound under the unfair distributed daemon,
/// 3n(n-1)/2 steps (Altisen et al. 2019, cited as [1] by the paper and used
/// in its Lemma 8).
std::uint64_t convergence_step_bound(std::size_t n);

/// Trace formatting hooks ("3" / "T" marks) for Figure-11-style tables.
stab::TraceStyle<KStateLocal> trace_style(const KStateRing& ring);

}  // namespace ssr::dijkstra
