// Tests for the real-thread runtime: SSRmin's graceful-handover guarantee
// must survive contact with actual concurrency — consistent sampler
// snapshots taken while node threads run never see zero token holders.
// (Kept short and small-n: this suite runs on minimal CI hardware.)
#include "runtime/threaded_ring.hpp"

#include <gtest/gtest.h>

#include "core/legitimacy.hpp"
#include "runtime/factories.hpp"

namespace ssr::runtime {
namespace {

using namespace std::chrono_literals;

RuntimeParams fast_params(std::uint64_t seed = 1) {
  RuntimeParams p;
  p.refresh_interval = 500us;
  p.loss_probability = 0.0;
  p.seed = seed;
  p.channel_capacity = 64;
  return p;
}

TEST(RuntimeParams, Validation) {
  RuntimeParams p = fast_params();
  EXPECT_NO_THROW(p.validate());
  p.refresh_interval = std::chrono::microseconds{0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = fast_params();
  p.loss_probability = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = fast_params();
  p.channel_capacity = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ThreadedRing, RejectsSizeMismatch) {
  core::SsrMinRing ring(4, 5);
  EXPECT_THROW(make_ssrmin_threaded(ring, core::SsrConfig(3), fast_params()),
               std::invalid_argument);
}

TEST(ThreadedRing, InitialSnapshotShowsOneHolder) {
  core::SsrMinRing ring(4, 5);
  auto tr = make_ssrmin_threaded(ring, core::canonical_legitimate(ring, 0),
                                 fast_params());
  // Before start(): the constructor published the coherent initial bits.
  const HolderSnapshot snap = tr->sample();
  EXPECT_TRUE(snap.consistent);
  std::size_t holders = 0;
  for (bool b : snap.holders)
    if (b) ++holders;
  EXPECT_EQ(holders, 1u);  // P0 holds both tokens
}

TEST(ThreadedRing, GracefulHandoverNeverZeroHolders) {
  core::SsrMinRing ring(4, 5);
  auto tr = make_ssrmin_threaded(ring, core::canonical_legitimate(ring, 0),
                                 fast_params(3));
  tr->start();
  const SamplerReport report = tr->observe(400ms, 200us);
  tr->stop();
  EXPECT_GT(report.consistent_samples, 100u);
  EXPECT_EQ(report.zero_holder_samples, 0u)
      << "a consistent snapshot observed zero token holders";
  EXPECT_GE(report.min_holders, 1u);
  EXPECT_LE(report.max_holders, 2u);
  // The ring actually ran: rules executed and the token moved.
  EXPECT_GT(report.rule_executions, 10u);
  EXPECT_GT(report.handovers, 0u);
  EXPECT_GT(report.messages_sent, 0u);
}

TEST(ThreadedRing, SurvivesMessageLoss) {
  core::SsrMinRing ring(4, 5);
  RuntimeParams p = fast_params(5);
  p.loss_probability = 0.2;
  auto tr = make_ssrmin_threaded(ring, core::canonical_legitimate(ring, 0), p);
  tr->start();
  const SamplerReport report = tr->observe(400ms, 200us);
  tr->stop();
  EXPECT_GT(report.messages_lost, 0u);
  EXPECT_GT(report.rule_executions, 5u);
  // With loss, a node whose freshest view of its successor was dropped can
  // transiently act on a stale acknowledgment, so brief zero windows are
  // possible until the refresh repairs the cache (Theorem 4 is an
  // eventual guarantee under loss, not an invariant). They must be rare.
  ASSERT_GT(report.consistent_samples, 0u);
  EXPECT_LT(static_cast<double>(report.zero_holder_samples),
            0.05 * static_cast<double>(report.consistent_samples));
}

TEST(ThreadedRing, RecoversAfterCorruption) {
  core::SsrMinRing ring(4, 5);
  auto tr = make_ssrmin_threaded(ring, core::canonical_legitimate(ring, 0),
                                 fast_params(7));
  tr->start();
  tr->observe(100ms, 500us);
  // Transient fault: scramble node 2 completely.
  tr->corrupt(2, core::SsrState{4, true, true});
  // The system keeps running and keeps making progress afterwards.
  const std::uint64_t before = tr->rule_executions();
  const SamplerReport after = tr->observe(300ms, 500us);
  tr->stop();
  EXPECT_GT(tr->rule_executions(), before);
  EXPECT_GT(after.consistent_samples, 50u);
  // Self-stabilization: by the end of the window the holder count is back
  // within the mutual-inclusion band on the vast majority of samples.
  EXPECT_LT(static_cast<double>(after.zero_holder_samples),
            0.2 * static_cast<double>(after.consistent_samples));
}

TEST(ThreadedRing, ActivationCallbackFires) {
  core::SsrMinRing ring(4, 5);
  auto tr = make_ssrmin_threaded(ring, core::canonical_legitimate(ring, 0),
                                 fast_params(9));
  std::atomic<int> activations{0};
  std::atomic<int> deactivations{0};
  tr->set_activation_callback([&](std::size_t, bool active) {
    (active ? activations : deactivations).fetch_add(1);
  });
  tr->start();
  std::this_thread::sleep_for(300ms);
  tr->stop();
  EXPECT_GT(activations.load(), 0);
  EXPECT_GT(deactivations.load(), 0);
}

TEST(ThreadedRing, StartStopIdempotent) {
  core::SsrMinRing ring(4, 5);
  auto tr = make_ssrmin_threaded(ring, core::canonical_legitimate(ring, 0),
                                 fast_params());
  tr->start();
  tr->start();
  std::this_thread::sleep_for(20ms);
  tr->stop();
  tr->stop();
  // Destruction after stop must also be clean (checked by ASan/valgrind
  // runs; here we just exercise the path).
  SUCCEED();
}

TEST(ThreadedRing, RestartCycleRunsCleanly) {
  core::SsrMinRing ring(4, 5);
  auto tr = make_ssrmin_threaded(ring, core::canonical_legitimate(ring, 0),
                                 fast_params(13));
  tr->start();
  const SamplerReport first = tr->observe(150ms, 300us);
  tr->stop();
  // Second cycle restarts from the initial configuration on the same
  // object; the sampler must still see the graceful handover.
  tr->start();
  const SamplerReport second = tr->observe(150ms, 300us);
  tr->stop();
  EXPECT_GT(first.consistent_samples, 50u);
  EXPECT_GT(second.consistent_samples, 50u);
  EXPECT_EQ(second.zero_holder_samples, 0u);
  EXPECT_GE(second.min_holders, 1u);
  // Counters accumulate across cycles.
  EXPECT_GE(second.messages_sent, first.messages_sent);
}

TEST(ThreadedRing, FaultPlanBurstWindowKeepsAHolder) {
  core::SsrMinRing ring(4, 5);
  RuntimeParams p = fast_params(15);
  p.fault_plan = FaultPlan::parse("burst@60ms-120ms");
  auto tr = make_ssrmin_threaded(ring, core::canonical_legitimate(ring, 0), p);
  Telemetry telemetry(4);
  telemetry.set_context("threaded", "ssrmin", 15);
  tr->start();
  const SamplerReport report = tr->observe(300ms, 300us, &telemetry);
  tr->stop();
  // Theorem 3 through a total blackout: all frames die for 60ms but no
  // state is lost, so holders persist. (A handover straddling the window
  // edge can still open a brief stale-view gap — loss is loss — so this
  // asserts "essentially always covered", like the loss tests.)
  EXPECT_GT(report.messages_lost, 10u);  // the burst actually dropped frames
  ASSERT_GT(report.consistent_samples, 0u);
  EXPECT_LT(static_cast<double>(report.zero_holder_samples),
            0.05 * static_cast<double>(report.consistent_samples));
  ASSERT_EQ(telemetry.window_outcomes().size(), 1u);
  EXPECT_TRUE(telemetry.window_outcomes()[0].recovered);
  EXPECT_LT(telemetry.zero_holder_dwell_us(), 0.05 * telemetry.observed_us());
}

TEST(ThreadedRing, CrashWindowResetsTheNodeOnce) {
  core::SsrMinRing ring(4, 5);
  RuntimeParams p = fast_params(17);
  p.fault_plan = FaultPlan::parse("crash@40ms-80ms:node=2");
  auto tr = make_ssrmin_threaded(ring, core::canonical_legitimate(ring, 0), p);
  Telemetry telemetry(4);
  tr->start();
  const SamplerReport report = tr->observe(300ms, 300us, &telemetry);
  tr->stop();
  EXPECT_EQ(tr->crash_restarts(), 1u);
  // Stabilization after the wipe: the run keeps making progress and the
  // tail of the window sees holders again (Theorem 4 is eventual).
  EXPECT_GT(report.rule_executions, 10u);
  ASSERT_EQ(telemetry.window_outcomes().size(), 1u);
  EXPECT_TRUE(telemetry.window_outcomes()[0].recovered);
}

TEST(ThreadedRing, DijkstraRunsButMayBlackout) {
  // The Dijkstra baseline also runs on threads; its samples may observe
  // zero holders (we do not assert they must — timing-dependent — only
  // that SSRmin's guarantee does not trivially hold for any protocol by
  // construction of the harness: the Dijkstra ring reports holder counts
  // of at most one).
  dijkstra::KStateRing ring(4, 5);
  auto tr = make_kstate_threaded(ring, dijkstra::KStateConfig(4),
                                 fast_params(11));
  tr->start();
  const SamplerReport report = tr->observe(300ms, 200us);
  tr->stop();
  EXPECT_GT(report.rule_executions, 10u);
  EXPECT_LE(report.max_holders, 2u);  // transiently 2 while a cache is stale
}

}  // namespace
}  // namespace ssr::runtime
