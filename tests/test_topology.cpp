// Tests for the general-graph topology substrate.
#include "graph/topology.hpp"

#include <gtest/gtest.h>

namespace ssr::graph {
namespace {

TEST(Topology, AddEdgeIsSymmetricAndIdempotent) {
  Topology g(4);
  g.add_edge(0, 2);
  g.add_edge(2, 0);  // idempotent
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.degree(1), 0u);
}

TEST(Topology, RejectsSelfLoopsAndBadIndices) {
  Topology g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(g.has_edge(3, 0), std::invalid_argument);
  EXPECT_THROW(Topology(0), std::invalid_argument);
}

TEST(Topology, NeighborsAreSorted) {
  Topology g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto n = g.neighbors(2);
  EXPECT_EQ(std::vector<std::size_t>(n.begin(), n.end()),
            (std::vector<std::size_t>{0, 3, 4}));
}

TEST(Topology, RingStructure) {
  const Topology g = Topology::ring(5);
  EXPECT_EQ(g.edge_count(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(g.degree(i), 2u);
    EXPECT_TRUE(g.has_edge(i, (i + 1) % 5));
  }
  EXPECT_TRUE(g.connected());
  EXPECT_THROW(Topology::ring(2), std::invalid_argument);
}

TEST(Topology, PathStructure) {
  const Topology g = Topology::path(4);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_TRUE(g.connected());
}

TEST(Topology, StarStructure) {
  const Topology g = Topology::star(6);
  EXPECT_EQ(g.edge_count(), 5u);
  EXPECT_EQ(g.degree(0), 5u);
  EXPECT_EQ(g.max_degree(), 5u);
  for (std::size_t i = 1; i < 6; ++i) EXPECT_EQ(g.degree(i), 1u);
  EXPECT_TRUE(g.connected());
}

TEST(Topology, CompleteStructure) {
  const Topology g = Topology::complete(5);
  EXPECT_EQ(g.edge_count(), 10u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(g.degree(i), 4u);
}

TEST(Topology, GridStructure) {
  const Topology g = Topology::grid(2, 3);
  EXPECT_EQ(g.size(), 6u);
  EXPECT_EQ(g.edge_count(), 7u);  // 2*2 horizontal + 3 vertical
  EXPECT_TRUE(g.connected());
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(0, 4));
}

TEST(Topology, DisconnectedDetected) {
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.connected());
}

TEST(Topology, RandomConnectedIsConnected) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const Topology g = Topology::random_connected(12, 0.1, rng);
    EXPECT_TRUE(g.connected());
    EXPECT_GE(g.edge_count(), 11u);  // at least the spanning tree
  }
}

TEST(Topology, RandomConnectedProbabilityScalesEdges) {
  Rng rng(9);
  const Topology sparse = Topology::random_connected(20, 0.0, rng);
  const Topology dense = Topology::random_connected(20, 0.9, rng);
  EXPECT_EQ(sparse.edge_count(), 19u);  // pure spanning tree
  EXPECT_GT(dense.edge_count(), 100u);
}

}  // namespace
}  // namespace ssr::graph
