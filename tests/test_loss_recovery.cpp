// Lemma 9 / Theorem 4: starting from an ARBITRARY configuration with
// ARBITRARY cache contents, under uniform random message loss, the CST
// execution of SSRmin eventually reaches a legitimate configuration with
// cache coherence — and from then on the token count stays in [1, 2]
// forever.
#include <gtest/gtest.h>

#include "core/legitimacy.hpp"
#include "msgpass/factories.hpp"

namespace ssr::msgpass {
namespace {

NetworkParams lossy_net(std::uint64_t seed, double loss) {
  NetworkParams p;
  p.delay_min = 0.5;
  p.delay_max = 1.5;
  p.loss_probability = loss;
  p.refresh_interval = 6.0;
  p.service_min = 0.3;
  p.service_max = 0.8;
  p.seed = seed;
  return p;
}

core::SsrState random_state(Rng& rng, std::uint32_t K) {
  core::SsrState s;
  s.x = static_cast<std::uint32_t>(rng.below(K));
  s.rts = rng.bernoulli(0.5);
  s.tra = rng.bernoulli(0.5);
  return s;
}

struct Case {
  std::uint64_t seed;
  double loss;
};

class LossRecovery : public ::testing::TestWithParam<Case> {};

TEST_P(LossRecovery, Theorem4ArbitraryStartStabilizesAndStaysCovered) {
  const auto [seed, loss] = GetParam();
  const std::size_t n = 5;
  const std::uint32_t K = 6;
  core::SsrMinRing ring(n, K);
  Rng rng(seed);
  core::SsrConfig init = core::random_config(ring, rng);
  auto sim = make_ssrmin_cst(ring, init, lossy_net(seed, loss));
  sim.randomize_caches([K](Rng& r) { return random_state(r, K); });

  // Phase 1: run until legitimate + coherent (Lemma 9).
  bool stabilized = false;
  auto stop = [&ring](const CstSimulation<core::SsrMinRing>& s) {
    return s.coherent() && core::is_legitimate(ring, s.global_config());
  };
  sim.run_until(stop, 60000.0, &stabilized);
  ASSERT_TRUE(stabilized) << "seed=" << seed << " loss=" << loss
                          << " did not stabilize in simulated budget";

  // Phase 2: from here on, the holder count never leaves [1, 2]
  // (Theorem 4's "remains so forever", observed over a long window).
  const CoverageStats after = sim.run(3000.0);
  EXPECT_EQ(after.min_holders, 1u);
  EXPECT_LE(after.max_holders, 2u);
  EXPECT_EQ(after.zero_intervals, 0u);
  EXPECT_DOUBLE_EQ(after.zero_token_time, 0.0);
}

std::vector<Case> cases() {
  std::vector<Case> out;
  for (std::uint64_t seed : {3u, 17u, 29u, 41u}) {
    for (double loss : {0.0, 0.1, 0.3}) out.push_back({seed, loss});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LossRecovery, ::testing::ValuesIn(cases()),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return "s" + std::to_string(param_info.param.seed) + "_loss" +
             std::to_string(static_cast<int>(param_info.param.loss * 100));
    });

TEST(LossRecovery, HigherLossDelaysButDoesNotPreventStabilization) {
  const std::size_t n = 4;
  const std::uint32_t K = 5;
  core::SsrMinRing ring(n, K);
  double previous_time = -1.0;
  (void)previous_time;
  for (double loss : {0.0, 0.4}) {
    Rng rng(8);
    auto sim = make_ssrmin_cst(ring, core::random_config(ring, rng),
                               lossy_net(123, loss));
    sim.randomize_caches([K](Rng& r) { return random_state(r, K); });
    bool stabilized = false;
    auto stop = [&ring](const CstSimulation<core::SsrMinRing>& s) {
      return s.coherent() && core::is_legitimate(ring, s.global_config());
    };
    sim.run_until(stop, 120000.0, &stabilized);
    EXPECT_TRUE(stabilized) << "loss " << loss;
  }
}

TEST(LossRecovery, BadCacheIncoherenceAloneIsRepaired) {
  // Legitimate global configuration but garbage caches ("bad
  // incoherence"): the refresh traffic alone must restore coherence.
  const std::size_t n = 5;
  const std::uint32_t K = 6;
  core::SsrMinRing ring(n, K);
  auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 1),
                             lossy_net(77, 0.1));
  sim.randomize_caches([K](Rng& r) { return random_state(r, K); });
  bool stabilized = false;
  auto stop = [&ring](const CstSimulation<core::SsrMinRing>& s) {
    return s.coherent() && core::is_legitimate(ring, s.global_config());
  };
  sim.run_until(stop, 60000.0, &stabilized);
  EXPECT_TRUE(stabilized);
}

}  // namespace
}  // namespace ssr::msgpass
