// Tests for the telemetry recorder: exact time integration, fault-window
// recovery clocks, and the determinism contract — fed from the virtual-
// time simulator, the JSON export is bit-identical across runs.
#include "runtime/telemetry.hpp"

#include <gtest/gtest.h>

#include "core/legitimacy.hpp"
#include "msgpass/factories.hpp"

namespace ssr::runtime {
namespace {

std::vector<bool> holders(std::initializer_list<int> bits) {
  std::vector<bool> v;
  for (int b : bits) v.push_back(b != 0);
  return v;
}

TEST(Telemetry, IntegratesHolderTimeline) {
  Telemetry t(3);
  t.observe(0.0, holders({1, 0, 0}));
  t.observe(100.0, holders({0, 0, 0}));  // handover to nobody
  t.observe(150.0, holders({0, 1, 0}));  // token reappears
  t.finish(250.0);
  EXPECT_DOUBLE_EQ(t.observed_us(), 250.0);
  EXPECT_DOUBLE_EQ(t.holder_time_us()[1], 100.0 + 100.0);
  EXPECT_DOUBLE_EQ(t.holder_time_us()[0], 50.0);
  EXPECT_DOUBLE_EQ(t.zero_holder_dwell_us(), 50.0);
  EXPECT_EQ(t.zero_intervals(), 1u);
  EXPECT_EQ(t.handovers(), 2u);
  EXPECT_EQ(t.min_holders(), 0u);
  EXPECT_EQ(t.max_holders(), 1u);
}

TEST(Telemetry, CountsAboveRingSizeClampToRingSize) {
  Telemetry t(2);
  t.observe(0.0, holders({1, 1}));
  t.finish(10.0);
  EXPECT_DOUBLE_EQ(t.holder_time_us()[2], 10.0);
  EXPECT_EQ(t.max_holders(), 2u);
}

TEST(Telemetry, WindowRecoveryClock) {
  Telemetry t(2);
  FaultPlan plan = FaultPlan::parse("burst@100-200;burst@900-950");
  t.set_plan(plan);
  t.observe(0.0, holders({1, 0}));
  t.observe(150.0, holders({0, 0}));  // dead during the window
  t.observe(230.0, holders({0, 0}));  // window over, still no holder
  t.observe(260.0, holders({0, 1}));  // first holder after the window end
  t.finish(300.0);
  ASSERT_EQ(t.window_outcomes().size(), 2u);
  EXPECT_TRUE(t.window_outcomes()[0].recovered);
  EXPECT_DOUBLE_EQ(t.window_outcomes()[0].time_to_recover_us, 60.0);
  // The run ended before the second window: it never recovered.
  EXPECT_FALSE(t.window_outcomes()[1].recovered);
}

TEST(Telemetry, RejectsMisuse) {
  Telemetry t(2);
  t.observe(10.0, holders({1, 0}));
  EXPECT_THROW(t.observe(5.0, holders({1, 0})), std::invalid_argument);
  EXPECT_THROW(t.observe(20.0, holders({1, 0, 0})), std::invalid_argument);
  EXPECT_THROW(t.set_node_counters(std::vector<NodeTelemetry>(3)),
               std::invalid_argument);
  t.finish(20.0);
  EXPECT_THROW(t.observe(30.0, holders({1, 0})), std::invalid_argument);
  EXPECT_THROW(Telemetry(0), std::invalid_argument);
}

TEST(Telemetry, JsonCarriesContextAndHistogram) {
  Telemetry t(2);
  t.set_context("unit", "ssrmin", 99);
  t.observe(0.0, holders({1, 0}));
  t.finish(10.0);
  const std::string json = t.to_json_string();
  EXPECT_NE(json.find("\"runtime\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 99"), std::string::npos);
  EXPECT_NE(json.find("ssr-telemetry-v1"), std::string::npos);
  EXPECT_NE(json.find("holder_time_us"), std::string::npos);
}

// --- determinism against the virtual-time simulator ----------------------

runtime::Telemetry run_sim_with_telemetry(const FaultPlan& plan,
                                          std::uint64_t seed) {
  const std::size_t n = 4;
  core::SsrMinRing ring(n, 5);
  msgpass::NetworkParams net;
  net.seed = seed;
  net.fault_plan = plan;
  auto sim =
      msgpass::make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0), net);
  Telemetry telemetry(n);
  telemetry.set_context("cst-sim", "ssrmin", seed);
  telemetry.set_plan(plan);
  sim.set_observer([&telemetry](msgpass::Time from, msgpass::Time,
                                const std::vector<bool>& h) {
    telemetry.observe(from * 1000.0, h);
  });
  const auto stats = sim.run(600.0);
  telemetry.finish(sim.fault_clock_us());
  telemetry.set_aggregates(stats.transmissions, stats.losses,
                           stats.deliveries, stats.rule_executions);
  return telemetry;
}

TEST(TelemetryDifferential, SimulatedRunsAreBitIdentical) {
  const FaultPlan plan = FaultPlan::parse(
      "drop=0.1;dup=0.05;reorder=0.05;burst@100ms-150ms;"
      "linkdown@250ms-300ms:link=1->2;crash@400ms-450ms:node=2");
  const Telemetry a = run_sim_with_telemetry(plan, 21);
  const Telemetry b = run_sim_with_telemetry(plan, 21);
  // The whole export — timeline integrals, window recovery clocks,
  // aggregate counters — is a pure function of (seed, plan).
  EXPECT_EQ(a.to_json_string(), b.to_json_string());
  // And the run actually exercised the plan.
  EXPECT_GT(a.observed_us(), 0.0);
  EXPECT_GE(a.handovers(), 1u);
  // A different seed gives a different trajectory (sanity of the check
  // above: equal strings are not vacuous).
  const Telemetry c = run_sim_with_telemetry(plan, 22);
  EXPECT_NE(a.to_json_string(), c.to_json_string());
}

TEST(TelemetryDifferential, EmptyPlanIsInert) {
  // A default (empty) fault plan must not perturb the RNG stream: the
  // simulation's coverage statistics are bit-identical with and without
  // the fault-plan machinery engaged.
  const std::size_t n = 4;
  core::SsrMinRing ring(n, 5);
  msgpass::NetworkParams with_plan;
  with_plan.seed = 5;
  with_plan.loss_probability = 0.1;
  with_plan.fault_plan = FaultPlan::parse("");
  msgpass::NetworkParams without_plan = with_plan;
  without_plan.fault_plan = FaultPlan{};
  auto sim_a = msgpass::make_ssrmin_cst(
      ring, core::canonical_legitimate(ring, 0), with_plan);
  auto sim_b = msgpass::make_ssrmin_cst(
      ring, core::canonical_legitimate(ring, 0), without_plan);
  const auto a = sim_a.run(400.0);
  const auto b = sim_b.run(400.0);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.losses, b.losses);
  EXPECT_EQ(a.rule_executions, b.rule_executions);
  EXPECT_EQ(a.handovers, b.handovers);
  EXPECT_DOUBLE_EQ(a.zero_token_time, b.zero_token_time);
}

TEST(TelemetryDifferential, CrashWindowRemovesHoldersAndRecovers) {
  // A crash that wipes the current holder's state must produce a nonzero
  // zero-holder dwell (outside Theorem 3's fault model), and the ring must
  // stabilize again afterwards (Theorem 4 / self-stabilization).
  const FaultPlan plan = FaultPlan::parse("crash@100ms-150ms:node=0");
  const Telemetry t = run_sim_with_telemetry(plan, 3);
  ASSERT_EQ(t.window_outcomes().size(), 1u);
  EXPECT_TRUE(t.window_outcomes()[0].recovered);
  EXPECT_GE(t.min_holders(), 0u);
  // After recovery the system held tokens for most of the run.
  EXPECT_GT(t.holder_time_us()[1] + t.holder_time_us()[2],
            0.5 * t.observed_us());
}

}  // namespace
}  // namespace ssr::runtime
