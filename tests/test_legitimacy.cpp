// Tests for Definition 1 (the legitimate-configuration predicate),
// its enumeration, and the Dijkstra-part milestone used by Lemmas 7-8.
#include "core/legitimacy.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ssr::core {
namespace {

SsrState make_state(std::uint32_t x, int rts, int tra) {
  return SsrState{x, rts != 0, tra != 0};
}

TEST(Enumerate, CountIsThreeNK) {
  for (std::size_t n : {3u, 4u, 6u, 9u}) {
    const auto K = static_cast<std::uint32_t>(n + 2);
    const SsrMinRing ring(n, K);
    const auto all = enumerate_legitimate(ring);
    EXPECT_EQ(all.size(), 3u * n * K);
    std::set<SsrConfig> unique(all.begin(), all.end());
    EXPECT_EQ(unique.size(), all.size()) << "duplicates in enumeration";
  }
}

TEST(Enumerate, EveryEnumeratedConfigClassifies) {
  const SsrMinRing ring(5, 6);
  for (const auto& config : enumerate_legitimate(ring)) {
    const auto info = classify_legitimate(ring, config);
    ASSERT_TRUE(info.has_value());
    EXPECT_TRUE(is_legitimate(ring, config));
  }
}

TEST(Classify, DefinitionOneForms) {
  const SsrMinRing ring(4, 5);
  // (x.0.1, x.0.0, x.0.0, x.0.0): P0 holds primary + secondary.
  {
    const SsrConfig c{make_state(2, 0, 1), make_state(2, 0, 0),
                      make_state(2, 0, 0), make_state(2, 0, 0)};
    const auto info = classify_legitimate(ring, c);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->primary_holder, 0u);
    EXPECT_EQ(info->shape, LegitimateShape::kHolderTra);
  }
  // (x.1.0, x.0.0, ...): same holder, offer pending.
  {
    const SsrConfig c{make_state(2, 1, 0), make_state(2, 0, 0),
                      make_state(2, 0, 0), make_state(2, 0, 0)};
    const auto info = classify_legitimate(ring, c);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->shape, LegitimateShape::kHolderRts);
  }
  // (x.1.0, x.0.1, ...): handoff in progress between P0 and P1.
  {
    const SsrConfig c{make_state(2, 1, 0), make_state(2, 0, 1),
                      make_state(2, 0, 0), make_state(2, 0, 0)};
    const auto info = classify_legitimate(ring, c);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->shape, LegitimateShape::kHandoffPending);
  }
  // Interior holder: (x+1.0.0, x+1.0.0, x.0.1, x.0.0).
  {
    const SsrConfig c{make_state(3, 0, 0), make_state(3, 0, 0),
                      make_state(2, 0, 1), make_state(2, 0, 0)};
    const auto info = classify_legitimate(ring, c);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->primary_holder, 2u);
    EXPECT_EQ(info->shape, LegitimateShape::kHolderTra);
  }
}

TEST(Classify, WrapAroundHandoff) {
  // gamma_{3n-1} of the closure proof: (x+1.0.1, x+1.0.0, ..., x.1.0) —
  // primary at P_{n-1}, secondary at P_0.
  const SsrMinRing ring(4, 5);
  const SsrConfig c{make_state(3, 0, 1), make_state(3, 0, 0),
                    make_state(3, 0, 0), make_state(2, 1, 0)};
  const auto info = classify_legitimate(ring, c);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->primary_holder, 3u);
  EXPECT_EQ(info->shape, LegitimateShape::kHandoffPending);
}

TEST(Classify, RejectsWrongXStep) {
  const SsrMinRing ring(4, 6);
  // Step of height 2 in the x-part: not Definition 1 even though the flag
  // pattern is fine.
  const SsrConfig c{make_state(4, 0, 0), make_state(4, 0, 0),
                    make_state(2, 0, 1), make_state(2, 0, 0)};
  EXPECT_FALSE(is_legitimate(ring, c));
}

TEST(Classify, RejectsStrayFlags) {
  const SsrMinRing ring(4, 5);
  // Legitimate x-part but a second process with tra set.
  const SsrConfig c{make_state(2, 0, 1), make_state(2, 0, 0),
                    make_state(2, 0, 1), make_state(2, 0, 0)};
  EXPECT_FALSE(is_legitimate(ring, c));
}

TEST(Classify, RejectsDoubleFlagAtHolder) {
  const SsrMinRing ring(4, 5);
  const SsrConfig c{make_state(2, 1, 1), make_state(2, 0, 0),
                    make_state(2, 0, 0), make_state(2, 0, 0)};
  EXPECT_FALSE(is_legitimate(ring, c));
}

TEST(Classify, RejectsAllZeroFlags) {
  // (x.0.0, ..., x.0.0) appears in the convergence proof as the last
  // illegitimate configuration (Lemma 6) — it is NOT legitimate.
  const SsrMinRing ring(4, 5);
  const SsrConfig c{make_state(2, 0, 0), make_state(2, 0, 0),
                    make_state(2, 0, 0), make_state(2, 0, 0)};
  EXPECT_FALSE(is_legitimate(ring, c));
}

TEST(Classify, RejectsMultipleGuardHolders) {
  const SsrMinRing ring(4, 5);
  const SsrConfig c{make_state(0, 0, 1), make_state(1, 0, 0),
                    make_state(2, 0, 0), make_state(3, 0, 0)};
  EXPECT_FALSE(is_legitimate(ring, c));
}

TEST(Classify, SecondaryAheadWithoutRtsIsIllegitimate) {
  // Holder <0.1> with the successor also <0.1> (two secondaries).
  const SsrMinRing ring(4, 5);
  const SsrConfig c{make_state(2, 0, 1), make_state(2, 0, 1),
                    make_state(2, 0, 0), make_state(2, 0, 0)};
  EXPECT_FALSE(is_legitimate(ring, c));
}

TEST(Canonical, MatchesDefinition) {
  const SsrMinRing ring(5, 6);
  const SsrConfig c = canonical_legitimate(ring, 3);
  ASSERT_EQ(c.size(), 5u);
  EXPECT_EQ(c[0], make_state(3, 0, 1));
  for (std::size_t i = 1; i < 5; ++i) EXPECT_EQ(c[i], make_state(3, 0, 0));
  const auto info = classify_legitimate(ring, c);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->primary_holder, 0u);
  EXPECT_THROW(canonical_legitimate(ring, 6), std::invalid_argument);
}

TEST(DijkstraPart, LegitimateXPartDetected) {
  const SsrMinRing ring(4, 5);
  // x-part (3,3,2,2) is Dijkstra-legitimate (token at P2); flags arbitrary.
  const SsrConfig good{make_state(3, 1, 1), make_state(3, 0, 1),
                       make_state(2, 1, 0), make_state(2, 0, 0)};
  EXPECT_TRUE(dijkstra_part_legitimate(ring, good));
  EXPECT_FALSE(is_legitimate(ring, good));  // flags are inconsistent though
  // x-part (0,1,2,3): many tokens.
  const SsrConfig bad{make_state(0, 0, 0), make_state(1, 0, 0),
                      make_state(2, 0, 0), make_state(3, 0, 0)};
  EXPECT_FALSE(dijkstra_part_legitimate(ring, bad));
}

TEST(Legitimacy, SizeMismatchRejected) {
  const SsrMinRing ring(4, 5);
  const SsrConfig short_config{make_state(0, 0, 0)};
  EXPECT_THROW(is_legitimate(ring, short_config), std::invalid_argument);
}

}  // namespace
}  // namespace ssr::core
