// Multi-ring reactor tests: hundreds of independent rings multiplexed on
// one event loop must each behave exactly like a single-ring runtime —
// stabilize from arbitrary states, survive per-ring scripted faults, and
// (virtual transport) reproduce telemetry byte-for-byte from the seed.
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "runtime/fault_plan.hpp"
#include "runtime/reactor.hpp"

namespace ssr::runtime {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

ReactorConfig mixed_config(std::size_t rings, std::uint64_t seed) {
  ReactorConfig config;
  config.rings = rings;
  config.nodes = 4;
  config.mixed = true;  // cycle ssrmin / kstate / dual across rings
  config.transport = ReactorTransport::kVirtual;
  config.start = RingStart::kRandom;
  config.seed = seed;
  config.refresh_interval = microseconds(5000);
  return config;
}

// 256 mixed-protocol rings from random configurations: every single ring
// must converge to a legitimate configuration with at least one token
// holder, and tokens must keep circulating (handovers accumulate).
TEST(MultiRing, MixedRingsAllStabilizeFromRandomStates) {
  MultiRingReactor reactor(mixed_config(256, 42));
  const ReactorReport report = reactor.run(milliseconds(120));

  EXPECT_EQ(report.rings, 256u);
  EXPECT_EQ(report.rings_legitimate, 256u) << "some rings never stabilized";
  EXPECT_EQ(report.rings_with_holder, 256u);
  EXPECT_GT(report.handovers, 256u * 10);
  EXPECT_GT(report.frames_sent, 0u);
  EXPECT_GT(report.frames_received, 0u);
  EXPECT_GT(report.handovers_per_sec, 0.0);
  // Token circulation means handover intervals were recorded.
  EXPECT_GT(report.p50_us, 0.0);
  EXPECT_GE(report.p99_us, report.p50_us);
  EXPECT_GE(report.p999_us, report.p99_us);

  // Per-ring: every ring executed rules and gained tokens independently.
  for (std::size_t r = 0; r < 256; ++r) {
    EXPECT_TRUE(reactor.table().is_legitimate(r)) << "ring " << r;
    EXPECT_GT(reactor.table().counters(r).handovers, 0u) << "ring " << r;
  }
}

// Scripted fault windows apply to each ring independently: burst loss,
// a ring partition and two crash-restarts with state reset. Every ring
// must re-stabilize after the last window closes.
TEST(MultiRing, ScriptedCrashAndPartitionWindowsReStabilize) {
  ReactorConfig config = mixed_config(256, 7);
  config.fault_plan = FaultPlan::parse(
      "burst@20ms-26ms;"
      "partition@30ms-36ms:cut=0/2;"
      "crash@50ms-51ms:node=1;"
      "crash@70ms-71ms:node=2");
  MultiRingReactor reactor(config);
  const ReactorReport report = reactor.run(milliseconds(160));

  // Both crash windows fired on every ring.
  EXPECT_EQ(report.crash_restarts, 2u * 256u);
  // Burst loss actually dropped traffic.
  EXPECT_GT(report.frames_dropped, 0u);
  // Loss-recovery refreshes kicked idle rings back to life.
  EXPECT_GT(report.refresh_broadcasts, 0u);
  // And every ring recovered to a legitimate circulating state.
  EXPECT_EQ(report.rings_legitimate, 256u) << "a ring failed to re-stabilize";
  EXPECT_EQ(report.rings_with_holder, 256u);
  for (std::size_t r = 0; r < 256; ++r) {
    EXPECT_TRUE(reactor.table().is_legitimate(r)) << "ring " << r;
    EXPECT_EQ(reactor.table().counters(r).crash_restarts, 2u) << "ring " << r;
  }
}

// The virtual transport is a pure function of (config, seed): two reactors
// with identical configs must produce byte-identical telemetry JSON,
// including per-ring PR-3 Telemetry blocks, and a different seed must not.
TEST(MultiRing, SeededTelemetryJsonIsByteDeterministic) {
  ReactorConfig config = mixed_config(48, 20260809);
  config.per_ring_telemetry = true;
  config.fault_plan = FaultPlan::parse("drop=0.02;crash@15ms-16ms:node=0");

  MultiRingReactor a(config);
  MultiRingReactor b(config);
  const ReactorReport ra = a.run(milliseconds(60));
  const ReactorReport rb = b.run(milliseconds(60));
  EXPECT_EQ(ra.handovers, rb.handovers);
  EXPECT_EQ(ra.frames_sent, rb.frames_sent);
  EXPECT_EQ(ra.rule_executions, rb.rule_executions);

  const std::string ja = a.telemetry_json(ra).dump(2);
  const std::string jb = b.telemetry_json(rb).dump(2);
  EXPECT_EQ(ja, jb) << "seeded virtual runs must be byte-reproducible";
  EXPECT_NE(ja.find("\"schema\": \"ssr-multiring-telemetry-v1\""),
            std::string::npos);
  EXPECT_NE(ja.find("ssr-telemetry-v1"), std::string::npos)
      << "per-ring PR-3 telemetry blocks missing";

  ReactorConfig other = config;
  other.seed = 99;
  MultiRingReactor c(other);
  const ReactorReport rc = c.run(milliseconds(60));
  EXPECT_NE(ja, c.telemetry_json(rc).dump(2))
      << "different seeds should diverge";
}

// A plan whose windows never match must consume zero RNG draws on the
// frame path: a run with no plan at all and a run with a far-future
// window must produce identical protocol evolution.
TEST(MultiRing, InertFaultPlanDoesNotPerturbDeterminism) {
  ReactorConfig bare = mixed_config(32, 5);
  ReactorConfig inert = mixed_config(32, 5);
  // Window far beyond the run: matches nothing, but exercises the
  // window-scan path on every frame.
  inert.fault_plan = FaultPlan::parse("burst@10s-11s");

  MultiRingReactor a(bare);
  MultiRingReactor b(inert);
  const ReactorReport ra = a.run(milliseconds(40));
  const ReactorReport rb = b.run(milliseconds(40));
  EXPECT_EQ(ra.handovers, rb.handovers);
  EXPECT_EQ(ra.frames_sent, rb.frames_sent);
  EXPECT_EQ(ra.rule_executions, rb.rule_executions);
  for (std::size_t r = 0; r < 32; ++r) {
    EXPECT_EQ(a.table().holder_mask(r), b.table().holder_mask(r))
        << "ring " << r;
  }
}

// Legitimate-start rings never lose legitimacy under a clean transport
// (closure of the legitimate set, multi-ring edition).
TEST(MultiRing, LegitimateStartStaysLegitimate) {
  ReactorConfig config = mixed_config(64, 3);
  config.start = RingStart::kLegitimate;
  MultiRingReactor reactor(config);
  const ReactorReport report = reactor.run(milliseconds(50));
  EXPECT_EQ(report.rings_legitimate, 64u);
  EXPECT_EQ(report.rings_with_holder, 64u);
  EXPECT_GT(report.handovers, 0u);
}

// The real epoll/recvmmsg path: shard threads on loopback sockets. Timing
// is nondeterministic, so assertions are structural — traffic flowed,
// rings stabilized, and kernel-buffer drops are surfaced (not asserted
// zero: a loaded CI box may overflow, which is exactly what the counter
// is for).
TEST(MultiRing, UdpTransportHostsRingsOnSharedSockets) {
  ReactorConfig config = mixed_config(64, 11);
  config.transport = ReactorTransport::kUdp;
  config.shards = 2;
  config.refresh_interval = microseconds(2000);
  MultiRingReactor reactor(config);
  const ReactorReport report = reactor.run(milliseconds(400));

  EXPECT_EQ(report.shards, 2u);
  EXPECT_GT(report.frames_sent, 0u);
  EXPECT_GT(report.frames_received, 0u);
  EXPECT_GT(report.handovers, 0u);
  // Loopback with refresh recovery: every ring stabilizes in 400ms
  // (refresh makes this robust even if early bursts overflowed the
  // socket buffer).
  EXPECT_EQ(report.rings_legitimate, 64u);
  EXPECT_EQ(report.rings_with_holder, 64u);
}

// validate() rejects geometries the table cannot host.
TEST(MultiRing, ConfigValidation) {
  ReactorConfig config;
  config.nodes = 2;  // < 3
  EXPECT_THROW(config.validate(), std::exception);
  config.nodes = 65;  // > 64 (holder bitmask)
  EXPECT_THROW(config.validate(), std::exception);
  config.nodes = 4;
  config.modulus = 4;  // K must exceed n
  EXPECT_THROW(config.validate(), std::exception);
  config.modulus = 0;
  config.rings = 0;
  EXPECT_THROW(config.validate(), std::exception);
}

}  // namespace
}  // namespace ssr::runtime
