// Tests for the bit-sliced batch engine (sim::BatchEngine and the
// core::SlicedSsrMin / dijkstra::SlicedKState kernels).
//
// The load-bearing property: every lane of a batched run is bit-identical
// to a scalar stab::Engine run of the same trial — same configurations
// after every step, same step/move/forced counters, same RunResult legs —
// because the lanes consume exactly the scalar RNG streams. The
// differential tests here pin that across protocols x daemon families x
// ring sizes x seeds, and the sweep-shaped tests pin that batched tables
// are byte-identical at any worker count and equal to scalar tables.
#include "sim/batch_engine.hpp"

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "core/ssrmin_sliced.hpp"
#include "dijkstra/kstate.hpp"
#include "dijkstra/kstate_sliced.hpp"
#include "sim/batch_dispatch.hpp"
#include "sim/sweep.hpp"
#include "util/lane_backend.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"
#include "util/bitplane.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace ssr::sim {
namespace {

// ---------------------------------------------------------------------------
// util::transpose64 — the plane <-> lane-bitmap pivot.

TEST(Transpose64, MatchesBitwiseDefinition) {
  Rng rng(7);
  std::array<std::uint64_t, 64> in;
  for (auto& w : in) w = rng();
  auto out = in;
  util::transpose64(out.data());
  // Convention: bit position == column. out[c] bit r == in[r] bit c.
  for (int r = 0; r < 64; ++r) {
    for (int c = 0; c < 64; ++c) {
      EXPECT_EQ((out[c] >> r) & 1u, (in[r] >> c) & 1u)
          << "r=" << r << " c=" << c;
    }
  }
}

TEST(Transpose64, IsAnInvolution) {
  Rng rng(8);
  std::array<std::uint64_t, 64> in;
  for (auto& w : in) w = rng();
  auto twice = in;
  util::transpose64(twice.data());
  util::transpose64(twice.data());
  EXPECT_EQ(twice, in);
}

// ---------------------------------------------------------------------------
// Kernel plane correctness against the scalar protocol.

template <typename Kernel, typename Ring>
void expect_planes_match_scalar(const Ring& ring) {
  Kernel kernel(ring);
  Rng rng(1234);
  std::vector<typename Kernel::Config> configs(64);
  for (unsigned lane = 0; lane < 64; ++lane) {
    configs[lane] = random_config(ring, rng);
    kernel.load_lane(lane, configs[lane]);
  }
  kernel.compute();
  const std::size_t n = ring.size();
  for (unsigned lane = 0; lane < 64; ++lane) {
    // Round trip.
    EXPECT_EQ(kernel.extract_lane(lane), configs[lane]) << "lane " << lane;
    // Rule planes vs the scalar guard evaluation.
    stab::Engine<Ring> engine(ring, configs[lane]);
    for (std::size_t i = 0; i < n; ++i) {
      const int scalar_rule = engine.enabled_rule(i);
      EXPECT_EQ((kernel.enabled()[i] >> lane) & 1u,
                scalar_rule != stab::kDisabled ? 1u : 0u)
          << "lane " << lane << " i=" << i;
      for (int r = 1; r <= Kernel::kRuleCount; ++r) {
        EXPECT_EQ((kernel.rule(r)[i] >> lane) & 1u,
                  scalar_rule == r ? 1u : 0u)
            << "lane " << lane << " i=" << i << " rule " << r;
      }
    }
  }
}

TEST(SlicedKernels, SsrMinPlanesMatchScalar) {
  for (std::size_t n : {3u, 5u, 8u, 12u}) {
    expect_planes_match_scalar<core::SlicedSsrMin>(
        core::SsrMinRing(n, static_cast<std::uint32_t>(n + 1)));
  }
  // K a power of two exercises the digit_inc_mod wrap = carry-out path.
  expect_planes_match_scalar<core::SlicedSsrMin>(core::SsrMinRing(7, 8));
}

TEST(SlicedKernels, KStatePlanesMatchScalar) {
  for (std::size_t n : {3u, 5u, 8u, 12u}) {
    expect_planes_match_scalar<dijkstra::SlicedKState>(
        dijkstra::KStateRing(n, static_cast<std::uint32_t>(n + 1)));
  }
  expect_planes_match_scalar<dijkstra::SlicedKState>(
      dijkstra::KStateRing(7, 8));
}

// ---------------------------------------------------------------------------
// Lanewise legitimacy masks.

TEST(SlicedKernels, SsrMinLegitMasksMatchScalar) {
  const core::SsrMinRing ring(4, 5);
  // Every legitimate configuration must light both mask bits...
  const auto legits = core::enumerate_legitimate(ring);
  for (std::size_t base = 0; base < legits.size(); base += 64) {
    core::SlicedSsrMin kernel(ring);
    const std::size_t lanes = std::min<std::size_t>(64, legits.size() - base);
    for (std::size_t l = 0; l < lanes; ++l) {
      kernel.load_lane(static_cast<unsigned>(l), legits[base + l]);
    }
    // Unused lanes carry copies of lane 0 so their bits are defined.
    for (std::size_t l = lanes; l < 64; ++l) {
      kernel.load_lane(static_cast<unsigned>(l), legits[base]);
    }
    kernel.compute();
    const auto masks = kernel.legit_masks();
    EXPECT_EQ(masks.legitimate, ~0ULL) << "base " << base;
    EXPECT_EQ(masks.milestone, ~0ULL) << "base " << base;
  }
  // ...and random lanes must agree with the scalar predicates bit by bit.
  Rng rng(77);
  core::SlicedSsrMin kernel(ring);
  std::vector<core::SsrConfig> configs(64);
  for (unsigned lane = 0; lane < 64; ++lane) {
    configs[lane] = core::random_config(ring, rng);
    kernel.load_lane(lane, configs[lane]);
  }
  kernel.compute();
  const auto masks = kernel.legit_masks();
  for (unsigned lane = 0; lane < 64; ++lane) {
    EXPECT_EQ((masks.legitimate >> lane) & 1u,
              core::is_legitimate(ring, configs[lane]) ? 1u : 0u)
        << "lane " << lane;
    EXPECT_EQ((masks.milestone >> lane) & 1u,
              core::dijkstra_part_legitimate(ring, configs[lane]) ? 1u : 0u)
        << "lane " << lane;
  }
}

TEST(SlicedKernels, KStateLegitMasksMatchScalar) {
  const dijkstra::KStateRing ring(4, 5);
  const auto legits = dijkstra::enumerate_legitimate(ring);
  ASSERT_LE(legits.size(), 64u * 64u);
  Rng rng(78);
  dijkstra::SlicedKState kernel(ring);
  std::vector<dijkstra::KStateConfig> configs(64);
  for (unsigned lane = 0; lane < 64; ++lane) {
    configs[lane] = lane < legits.size() ? legits[lane]
                                         : dijkstra::random_config(ring, rng);
    kernel.load_lane(lane, configs[lane]);
  }
  kernel.compute();
  const auto masks = kernel.legit_masks();
  for (unsigned lane = 0; lane < 64; ++lane) {
    EXPECT_EQ((masks.legitimate >> lane) & 1u,
              dijkstra::is_legitimate(ring, configs[lane]) ? 1u : 0u)
        << "lane " << lane;
    EXPECT_EQ(masks.milestone, masks.legitimate);
  }
}

// ---------------------------------------------------------------------------
// Incremental plane maintenance vs the full recompute.

TEST(SlicedKernels, IncrementalMatchesAllDirtyRecompute) {
  const core::SsrMinRing ring(9, 10);
  core::SlicedSsrMin incremental(ring);
  core::SlicedSsrMin oracle(ring);
  Rng rng(4321);
  for (unsigned lane = 0; lane < 64; ++lane) {
    const auto config = core::random_config(ring, rng);
    incremental.load_lane(lane, config);
    oracle.load_lane(lane, config);
  }
  for (int step = 0; step < 40; ++step) {
    incremental.compute();
    oracle.mark_all_dirty();
    oracle.compute();
    for (std::size_t i = 0; i < ring.size(); ++i) {
      ASSERT_EQ(incremental.enabled()[i], oracle.enabled()[i])
          << "step " << step << " i=" << i;
      ASSERT_EQ(incremental.guards()[i], oracle.guards()[i])
          << "step " << step << " i=" << i;
      for (int r = 1; r <= core::SlicedSsrMin::kRuleCount; ++r) {
        ASSERT_EQ(incremental.rule(r)[i], oracle.rule(r)[i])
            << "step " << step << " i=" << i << " rule " << r;
      }
    }
    // A pseudo-random subset of the enabled bits moves each step.
    std::vector<std::uint64_t> sel(ring.size());
    for (std::size_t i = 0; i < ring.size(); ++i) {
      sel[i] = incremental.enabled()[i] & rng();
    }
    incremental.apply(sel);
    oracle.apply(sel);
  }
  for (unsigned lane = 0; lane < 64; ++lane) {
    EXPECT_EQ(incremental.extract_lane(lane), oracle.extract_lane(lane));
  }
}

// ---------------------------------------------------------------------------
// Per-step differential: BatchEngine lane == scalar Engine trial.

/// Steps all 64 lanes alongside 64 scalar engines for `max_steps`, asserting
/// configuration and counter equality after every step.
template <typename Kernel, typename Ring>
void expect_lockstep_traces(const Ring& ring, const std::string& daemon_name,
                            std::uint64_t seed, int max_steps) {
  const LaneDaemonSpec spec = daemon_name == "adversary-rule-avoiding"
                                  ? rule_avoiding_spec(
                                        {core::SsrMinRing::kRuleSendPrimary,
                                         core::SsrMinRing::kRuleFixGuardTrue})
                                  : lane_daemon_spec(daemon_name);
  BatchEngine<Kernel> batch{Kernel(ring), spec};
  std::vector<std::unique_ptr<stab::Engine<Ring>>> scalar(64);
  std::vector<std::unique_ptr<stab::Daemon>> daemons(64);
  for (unsigned lane = 0; lane < 64; ++lane) {
    Rng rng = trial_rng(seed, lane);
    auto config = random_config(ring, rng);
    const Rng daemon_rng = rng.split();
    scalar[lane] = std::make_unique<stab::Engine<Ring>>(ring, config);
    if (daemon_name == "adversary-rule-avoiding") {
      daemons[lane] = std::make_unique<stab::RuleAvoidingDaemon>(
          daemon_rng, std::vector<int>{core::SsrMinRing::kRuleSendPrimary,
                                       core::SsrMinRing::kRuleFixGuardTrue});
    } else {
      daemons[lane] = stab::make_daemon(daemon_name, daemon_rng);
    }
    batch.load_lane(lane, config, daemon_rng);
  }
  for (int t = 0; t < max_steps; ++t) {
    batch.refresh();
    const std::uint64_t mask = batch.active() & batch.any_enabled();
    if (mask == 0) break;  // would falsify the no-deadlock lemma
    batch.step(mask);
    for (std::uint64_t m = mask; m != 0; m &= m - 1) {
      const auto lane = static_cast<unsigned>(std::countr_zero(m));
      ASSERT_TRUE(scalar[lane]->step_with(*daemons[lane]));
      ASSERT_EQ(batch.extract_lane(lane), scalar[lane]->config())
          << daemon_name << " n=" << ring.size() << " lane " << lane
          << " step " << t;
      ASSERT_EQ(batch.steps(lane), scalar[lane]->steps());
      ASSERT_EQ(batch.moves(lane), scalar[lane]->moves());
    }
  }
  if (daemon_name == "adversary-rule-avoiding") {
    for (unsigned lane = 0; lane < 64; ++lane) {
      auto* avoiding =
          dynamic_cast<stab::RuleAvoidingDaemon*>(daemons[lane].get());
      ASSERT_NE(avoiding, nullptr);
      EXPECT_EQ(batch.forced_steps(lane), avoiding->forced_steps())
          << "lane " << lane;
    }
  }
}

TEST(BatchEngine, SsrMinLanesMatchScalarTraces) {
  const std::vector<std::string> daemons{
      "central-round-robin", "central-random", "distributed-synchronous",
      "distributed-random-subset", "adversary-max-index",
      "adversary-rule-avoiding"};
  for (const auto& daemon : daemons) {
    ASSERT_TRUE(daemon == "adversary-rule-avoiding" ||
                batch_daemon_supported(daemon));
    for (std::size_t n : {3u, 5u, 8u, 12u}) {
      for (std::uint64_t seed : {11u, 97u}) {
        expect_lockstep_traces<core::SlicedSsrMin>(
            core::SsrMinRing(n, static_cast<std::uint32_t>(n + 1)), daemon,
            seed, 120);
      }
    }
  }
  // K = 2^d digit-wrap edge under the busiest daemon.
  expect_lockstep_traces<core::SlicedSsrMin>(
      core::SsrMinRing(7, 8), "distributed-synchronous", 5, 120);
}

TEST(BatchEngine, KStateLanesMatchScalarTraces) {
  const std::vector<std::string> daemons{
      "central-round-robin", "central-random", "distributed-synchronous",
      "distributed-random-subset", "adversary-max-index"};
  for (const auto& daemon : daemons) {
    for (std::size_t n : {3u, 5u, 8u, 12u}) {
      expect_lockstep_traces<dijkstra::SlicedKState>(
          dijkstra::KStateRing(n, static_cast<std::uint32_t>(n + 1)), daemon,
          31, 120);
    }
  }
  expect_lockstep_traces<dijkstra::SlicedKState>(dijkstra::KStateRing(7, 8),
                                                 "central-random", 13, 120);
}

TEST(BatchEngine, UnsupportedDaemonIsReported) {
  EXPECT_FALSE(batch_daemon_supported("adversary-starving"));
  EXPECT_FALSE(batch_daemon_supported("no-such-daemon"));
  EXPECT_TRUE(batch_daemon_supported("central-random"));
}

// ---------------------------------------------------------------------------
// run_convergence_block vs the scalar run_until composition.

TEST(RunConvergenceBlock, MatchesScalarTwoPhaseComposition) {
  // 150 trials in one block: two full 64-lane generations plus a partial
  // one, so lane refill is on the tested path.
  const std::size_t n = 8;
  const core::SsrMinRing ring(n, static_cast<std::uint32_t>(n + 1));
  const std::uint64_t budget = 80ULL * n * n + 400;
  const std::uint64_t trials = 150;
  for (const auto& daemon_name :
       {"central-round-robin", "central-random", "distributed-synchronous",
        "distributed-random-subset", "adversary-max-index"}) {
    const auto batched = run_convergence_block<core::SlicedSsrMin>(
        ring, lane_daemon_spec(daemon_name), 1234 + n, BlockRange{0, trials},
        budget, /*two_phase=*/true);
    ASSERT_EQ(batched.size(), trials);
    for (std::uint64_t t = 0; t < trials; ++t) {
      Rng rng = trial_rng(1234 + n, t);
      stab::Engine<core::SsrMinRing> engine(ring,
                                            core::random_config(ring, rng));
      auto daemon = stab::make_daemon(daemon_name, rng.split());
      auto dij = [&ring](const core::SsrConfig& c) {
        return core::dijkstra_part_legitimate(ring, c);
      };
      const auto r1 = stab::run_until(engine, *daemon, dij, budget);
      auto legit = [&ring](const core::SsrConfig& c) {
        return core::is_legitimate(ring, c);
      };
      const auto r2 = stab::run_until(engine, *daemon, legit, budget);
      EXPECT_EQ(batched[t].milestone.reached, r1.reached)
          << daemon_name << " trial " << t;
      EXPECT_EQ(batched[t].milestone.deadlocked, r1.deadlocked);
      EXPECT_EQ(batched[t].milestone.steps, r1.steps)
          << daemon_name << " trial " << t;
      EXPECT_EQ(batched[t].milestone.moves, r1.moves)
          << daemon_name << " trial " << t;
      EXPECT_EQ(batched[t].result.reached, r2.reached);
      EXPECT_EQ(batched[t].result.deadlocked, r2.deadlocked);
      EXPECT_EQ(batched[t].result.steps, r2.steps)
          << daemon_name << " trial " << t;
      EXPECT_EQ(batched[t].result.moves, r2.moves)
          << daemon_name << " trial " << t;
    }
  }
}

TEST(RunConvergenceBlock, MatchesScalarSinglePhaseDijkstra) {
  const std::size_t n = 10;
  const dijkstra::KStateRing ring(n, static_cast<std::uint32_t>(n + 1));
  const std::uint64_t budget = 2000;
  const std::uint64_t trials = 100;
  const auto batched = run_convergence_block<dijkstra::SlicedKState>(
      ring, lane_daemon_spec("central-random"), 777 + n, BlockRange{0, trials},
      budget, /*two_phase=*/false);
  ASSERT_EQ(batched.size(), trials);
  for (std::uint64_t t = 0; t < trials; ++t) {
    Rng rng = trial_rng(777 + n, t);
    stab::Engine<dijkstra::KStateRing> engine(
        ring, dijkstra::random_config(ring, rng));
    stab::CentralRandomDaemon daemon{rng.split()};
    auto legit = [&ring](const dijkstra::KStateConfig& c) {
      return dijkstra::is_legitimate(ring, c);
    };
    const auto r = stab::run_until(engine, daemon, legit, budget);
    EXPECT_EQ(batched[t].result.reached, r.reached) << "trial " << t;
    EXPECT_EQ(batched[t].result.steps, r.steps) << "trial " << t;
    EXPECT_EQ(batched[t].result.moves, r.moves) << "trial " << t;
  }
}

// ---------------------------------------------------------------------------
// The bench-shaped contract: batched tables are identical at 1/2/8 workers
// and equal to the scalar table.

std::string mini_convergence_table(bool batched, std::size_t threads) {
  const std::size_t n = 6;
  const core::SsrMinRing ring(n, static_cast<std::uint32_t>(n + 1));
  const std::uint64_t budget = 80ULL * n * n + 400;
  const std::uint64_t trials = 90;
  TrialSweep sweep({.threads = threads});
  std::vector<std::uint64_t> steps;
  if (batched) {
    const auto blocks = plan_blocks(trials, sweep.threads());
    const auto per_block = sweep.map(blocks.size(), [&](std::uint64_t b) {
      return run_convergence_block<core::SlicedSsrMin>(
          ring, lane_daemon_spec("distributed-random-subset"), 555, blocks[b],
          budget, /*two_phase=*/true);
    });
    for (const auto& block : per_block) {
      for (const auto& trial : block) {
        steps.push_back(trial.milestone.steps + trial.result.steps);
      }
    }
  } else {
    const auto results = sweep.run_trials(
        555, trials, [&](std::uint64_t, Rng& rng) {
          stab::Engine<core::SsrMinRing> engine(
              ring, core::random_config(ring, rng));
          auto daemon = stab::make_daemon("distributed-random-subset",
                                          rng.split());
          auto dij = [&ring](const core::SsrConfig& c) {
            return core::dijkstra_part_legitimate(ring, c);
          };
          const auto r1 = stab::run_until(engine, *daemon, dij, budget);
          auto legit = [&ring](const core::SsrConfig& c) {
            return core::is_legitimate(ring, c);
          };
          const auto r2 = stab::run_until(engine, *daemon, legit, budget);
          return r1.steps + r2.steps;
        });
    steps.assign(results.begin(), results.end());
  }
  TextTable table({"trial", "steps"});
  for (std::size_t t = 0; t < steps.size(); ++t) {
    table.row().cell(t).cell(steps[t]);
  }
  return table.render();
}

TEST(BatchEngine, SweepTablesBitIdenticalAcrossWorkerCounts) {
  const std::string scalar = mini_convergence_table(false, 1);
  const std::string batched1 = mini_convergence_table(true, 1);
  EXPECT_EQ(batched1, scalar);
  EXPECT_EQ(mini_convergence_table(true, 2), batched1);
  EXPECT_EQ(mini_convergence_table(true, 8), batched1);
  EXPECT_EQ(mini_convergence_table(false, 8), scalar);
}

// ---------------------------------------------------------------------------
// plan_blocks invariants.

TEST(PlanBlocks, CoversTrialsContiguously) {
  for (std::uint64_t trials : {1u, 17u, 64u, 65u, 150u, 1000u}) {
    for (std::size_t workers : {1u, 2u, 8u, 32u}) {
      for (unsigned lanes : {64u, 256u, 512u}) {
        const auto blocks = plan_blocks(trials, workers, lanes);
        ASSERT_FALSE(blocks.empty());
        std::uint64_t expected_first = 0;
        for (const auto& b : blocks) {
          EXPECT_EQ(b.first, expected_first);
          EXPECT_GT(b.count, 0u);
          expected_first += b.count;
        }
        EXPECT_EQ(expected_first, trials);
        EXPECT_LE(blocks.size(), trials);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Wide lane words: the 256/512-lane kernels in lockstep with scalar
// engines. WideWord is portable limb-loop C++, so this TU instantiates
// them directly (no SIMD flags needed); the flag-compiled TUs contain the
// very same template instantiations, so trace identity proved here plus
// outcome identity proved on the dispatch entry points below covers the
// deployed backends.

template <typename Kernel, typename Ring>
void expect_wide_lockstep_traces(const Ring& ring,
                                 const std::string& daemon_name,
                                 std::uint64_t seed, int max_steps) {
  using Word = typename Kernel::Word;
  using Traits = util::LaneTraits<Word>;
  BatchEngine<Kernel> batch{Kernel(ring), lane_daemon_spec(daemon_name)};
  std::vector<std::unique_ptr<stab::Engine<Ring>>> scalar(Traits::kLanes);
  std::vector<std::unique_ptr<stab::Daemon>> daemons(Traits::kLanes);
  for (unsigned lane = 0; lane < Traits::kLanes; ++lane) {
    Rng rng = trial_rng(seed, lane);
    auto config = random_config(ring, rng);
    const Rng daemon_rng = rng.split();
    scalar[lane] = std::make_unique<stab::Engine<Ring>>(ring, config);
    daemons[lane] = stab::make_daemon(daemon_name, daemon_rng);
    batch.load_lane(lane, config, daemon_rng);
  }
  for (int t = 0; t < max_steps; ++t) {
    batch.refresh();
    const Word mask = batch.active() & batch.any_enabled();
    if (!Traits::any(mask)) break;
    batch.step(mask);
    Traits::for_each_lane(mask, [&](unsigned lane) {
      ASSERT_TRUE(scalar[lane]->step_with(*daemons[lane]));
      ASSERT_EQ(batch.extract_lane(lane), scalar[lane]->config())
          << daemon_name << " n=" << ring.size() << " lanes="
          << Traits::kLanes << " lane " << lane << " step " << t;
      ASSERT_EQ(batch.steps(lane), scalar[lane]->steps());
      ASSERT_EQ(batch.moves(lane), scalar[lane]->moves());
    });
  }
}

TEST(BatchEngineWide, SsrMinWideLanesMatchScalarTraces) {
  const core::SsrMinRing ring(5, 6);
  for (const char* daemon : {"central-random", "distributed-synchronous"}) {
    expect_wide_lockstep_traces<core::BasicSlicedSsrMin<util::Lane256>>(
        ring, daemon, 19, 80);
    expect_wide_lockstep_traces<core::BasicSlicedSsrMin<util::Lane512>>(
        ring, daemon, 23, 80);
  }
  // K = 2^d digit-wrap edge at 256 lanes.
  expect_wide_lockstep_traces<core::BasicSlicedSsrMin<util::Lane256>>(
      core::SsrMinRing(7, 8), "distributed-synchronous", 5, 60);
}

TEST(BatchEngineWide, KStateWideLanesMatchScalarTraces) {
  expect_wide_lockstep_traces<dijkstra::BasicSlicedKState<util::Lane256>>(
      dijkstra::KStateRing(5, 6), "central-random", 7, 80);
  expect_wide_lockstep_traces<dijkstra::BasicSlicedKState<util::Lane512>>(
      dijkstra::KStateRing(5, 6), "distributed-synchronous", 9, 80);
}

// ---------------------------------------------------------------------------
// Runtime dispatch: every backend (including ones the CPU lacks, which
// must silently degrade) returns byte-identical outcome vectors, and the
// SSRING_LANE_BACKEND=u64 override pins the guaranteed-portable fallback.

void expect_outcomes_equal(const std::vector<BatchTrialOutcome>& a,
                           const std::vector<BatchTrialOutcome>& b,
                           const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].milestone.reached, b[t].milestone.reached)
        << what << " trial " << t;
    EXPECT_EQ(a[t].milestone.deadlocked, b[t].milestone.deadlocked)
        << what << " trial " << t;
    EXPECT_EQ(a[t].milestone.steps, b[t].milestone.steps)
        << what << " trial " << t;
    EXPECT_EQ(a[t].milestone.moves, b[t].milestone.moves)
        << what << " trial " << t;
    EXPECT_EQ(a[t].result.reached, b[t].result.reached)
        << what << " trial " << t;
    EXPECT_EQ(a[t].result.deadlocked, b[t].result.deadlocked)
        << what << " trial " << t;
    EXPECT_EQ(a[t].result.steps, b[t].result.steps) << what << " trial " << t;
    EXPECT_EQ(a[t].result.moves, b[t].result.moves) << what << " trial " << t;
  }
}

TEST(BatchDispatch, AllBackendsProduceIdenticalOutcomes) {
  const std::uint64_t trials = 150;
  {
    const core::SsrMinRing ring(6, 7);
    const std::uint64_t budget = 80ULL * 36 + 400;
    const auto spec = lane_daemon_spec("distributed-random-subset");
    const auto baseline = run_convergence_block<core::SlicedSsrMin>(
        ring, spec, 99, BlockRange{0, trials}, budget, /*two_phase=*/true);
    for (util::LaneBackend backend :
         {util::LaneBackend::kU64, util::LaneBackend::kAvx2,
          util::LaneBackend::kAvx512}) {
      const auto got = run_convergence_block_ssrmin(
          ring, spec, 99, BlockRange{0, trials}, budget, /*two_phase=*/true,
          backend);
      expect_outcomes_equal(baseline, got,
                            std::string("ssrmin backend ") +
                                util::lane_backend_name(backend));
    }
  }
  {
    const dijkstra::KStateRing ring(8, 9);
    const auto spec = lane_daemon_spec("central-random");
    const auto baseline = run_convergence_block<dijkstra::SlicedKState>(
        ring, spec, 55, BlockRange{0, trials}, 2000, /*two_phase=*/false);
    for (util::LaneBackend backend :
         {util::LaneBackend::kU64, util::LaneBackend::kAvx2,
          util::LaneBackend::kAvx512}) {
      const auto got = run_convergence_block_kstate(
          ring, spec, 55, BlockRange{0, trials}, 2000, /*two_phase=*/false,
          backend);
      expect_outcomes_equal(baseline, got,
                            std::string("kstate backend ") +
                                util::lane_backend_name(backend));
    }
  }
}

TEST(BatchDispatch, EnvOverridePinsTheU64Fallback) {
  // The -march=native deployment hazard: whatever the host CPU offers,
  // forcing SSRING_LANE_BACKEND=u64 must select the portable 64-lane
  // path, and that path must reproduce the widest backend's outcomes.
  ::setenv("SSRING_LANE_BACKEND", "u64", 1);
  EXPECT_EQ(util::detect_lane_backend(), util::LaneBackend::kU64);
  const core::SsrMinRing ring(5, 6);
  const auto spec = lane_daemon_spec("central-random");
  const auto forced = run_convergence_block_ssrmin(
      ring, spec, 42, BlockRange{0, 100}, 3000, /*two_phase=*/true,
      util::detect_lane_backend());
  ::unsetenv("SSRING_LANE_BACKEND");
  const auto widest = run_convergence_block_ssrmin(
      ring, spec, 42, BlockRange{0, 100}, 3000, /*two_phase=*/true,
      util::detect_lane_backend());
  expect_outcomes_equal(forced, widest, "forced-u64 vs auto");
  // The auto answer is always a usable backend; u64 is always available.
  EXPECT_TRUE(util::lane_backend_available(util::LaneBackend::kU64));
  EXPECT_TRUE(util::lane_backend_available(util::detect_lane_backend()));
  EXPECT_EQ(util::lane_backend_lanes(util::LaneBackend::kU64), 64u);
  EXPECT_EQ(std::string(util::lane_backend_name(util::LaneBackend::kU64)),
            "u64");
}

}  // namespace
}  // namespace ssr::sim
