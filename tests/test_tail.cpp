// The delay-variance boundary of Theorem 3 (finding F1, experiment E22).
//
// Mechanism, found by tracing the first zero-holder instant: a state
// message carrying <rts = 1> from the successor's PREVIOUS token tenure
// can arrive at the holder after the token lapped the ring. The holder's
// local view then matches Rule 4's repair guard (self <1.0>, successor
// not <0.0>/<0.1>-consistent), the "fix" fires, and both tokens are
// destroyed until the new x value propagates. For this to happen one
// message must stay in transit longer than the FASTEST possible handshake
// lap — so it is delay *variance* relative to the lap time that matters:
//  * moderate variance (max/min ~ 3): never observed, matching Theorem 3;
//  * extreme bounded variance (max/min ~ 60) on the smallest ring: rare
//    windows;
//  * unbounded (exponential) tails: windows at a measurable rate,
//    shrinking exponentially with ring size (longer laps).
#include <gtest/gtest.h>

#include "core/legitimacy.hpp"
#include "msgpass/factories.hpp"

namespace ssr::msgpass {
namespace {

NetworkParams tail_net(std::uint64_t seed, DelayModel model,
                       double delay_min = 0.05, double delay_max = 3.05) {
  NetworkParams p;
  p.delay_min = delay_min;
  p.delay_max = delay_max;
  p.delay_model = model;
  p.service_min = 0.05;
  p.service_max = 0.1;
  p.refresh_interval = 40.0;
  p.seed = seed;
  return p;
}

TEST(DelayTail, ModerateVarianceKeepsTheInvariant) {
  // max/min = 3: no single message can outlive a handshake lap.
  core::SsrMinRing ring(3, 4);
  auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0),
                             tail_net(1, DelayModel::kUniform, 0.5, 1.5));
  const CoverageStats stats = sim.run(200000.0);
  EXPECT_EQ(stats.min_holders, 1u);
  EXPECT_EQ(stats.zero_intervals, 0u);
  EXPECT_GT(stats.handovers, 1000u);
}

TEST(DelayTail, ExtremeBoundedVarianceOpensRareWindows) {
  // Still bounded (uniform), but max/min = 61 on the smallest ring: a
  // slow stale message can overlap a burst of fast handshake messages.
  core::SsrMinRing ring(3, 4);
  auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0),
                             tail_net(11, DelayModel::kUniform));
  const CoverageStats stats = sim.run(400000.0);
  EXPECT_EQ(stats.min_holders, 0u);
  EXPECT_GT(stats.zero_intervals, 0u);
  EXPECT_GT(stats.coverage(), 0.999);  // still vanishingly rare
}

TEST(DelayTail, ExponentialTailsOpenZeroWindows) {
  core::SsrMinRing ring(3, 4);
  auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0),
                             tail_net(1, DelayModel::kExponentialTail));
  const CoverageStats stats = sim.run(500000.0);
  EXPECT_EQ(stats.min_holders, 0u);
  EXPECT_GT(stats.zero_intervals, 100u);
  // ...but self-stabilization contains the damage: coverage stays high.
  EXPECT_GT(stats.coverage(), 0.98);
}

TEST(DelayTail, TailWindowsShrinkWithRingSize) {
  // The stale state must survive ~(n-1)/n of a revolution, which costs
  // ~3(n-1) mean delays — exponentially less likely as n grows.
  double smaller = -1.0;
  for (std::size_t n : {3u, 6u}) {
    core::SsrMinRing ring(n, static_cast<std::uint32_t>(n + 1));
    auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0),
                               tail_net(7, DelayModel::kExponentialTail));
    const CoverageStats stats = sim.run(300000.0);
    const double zero_fraction = stats.zero_token_time / stats.observed_time;
    if (smaller >= 0.0) {
      EXPECT_LT(zero_fraction, smaller)
          << "larger rings should suffer fewer tail-induced windows";
    }
    smaller = zero_fraction;
  }
}

TEST(DelayTail, DrawDelayRespectsModel) {
  NetworkParams p = tail_net(3, DelayModel::kUniform);
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const double d = p.draw_delay(rng);
    EXPECT_GE(d, p.delay_min);
    EXPECT_LE(d, p.delay_max);
  }
  p.delay_model = DelayModel::kExponentialTail;
  bool beyond_uniform_bound = false;
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double d = p.draw_delay(rng);
    EXPECT_GE(d, p.delay_min);
    if (d > p.delay_max) beyond_uniform_bound = true;
    sum += d;
  }
  EXPECT_TRUE(beyond_uniform_bound);  // the tail exists
  EXPECT_NEAR(sum / 20000.0, p.delay_min + (p.delay_max - p.delay_min),
              0.1);  // mean = min + spread
}

}  // namespace
}  // namespace ssr::msgpass
