// The paper's published bounds, asserted against measured/exhaustive
// quantities: worst cases from the model checker must respect Theorem 2's
// expression, Lemma 5's 3n, and the structural counts of Definition 1.
#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include "core/legitimacy.hpp"
#include "verify/checkers.hpp"

namespace ssr::core {
namespace {

TEST(Bounds, PublishedExpressions) {
  EXPECT_EQ(lemma5_rule_free_bound(5), 15u);
  EXPECT_EQ(dijkstra_move_bound(5), 30u);
  EXPECT_EQ(lemma7_bound(5), 79u);
  EXPECT_EQ(lemma8_prefix_bound(5), 1500u);  // 60 n^2
  EXPECT_EQ(theorem2_bound(5), 1579u);
  EXPECT_EQ(states_per_process(6), 24u);
  EXPECT_EQ(legitimate_count(5, 6), 90u);
  EXPECT_EQ(revolution_steps(7), 21u);
}

TEST(Bounds, ExhaustiveWorstCasesRespectTheorem2) {
  for (auto [n, K] : {std::pair<std::size_t, std::uint32_t>{3, 4},
                      std::pair<std::size_t, std::uint32_t>{3, 5},
                      std::pair<std::size_t, std::uint32_t>{4, 5}}) {
    auto checker = verify::make_ssrmin_checker(n, K);
    const auto report = checker.run();
    ASSERT_TRUE(report.all_ok());
    EXPECT_LE(report.worst_case_steps, theorem2_bound(n))
        << "n=" << n << " K=" << K;
    // The bound is loose by design: the exact worst case is far below it.
    EXPECT_LT(report.worst_case_steps, theorem2_bound(n) / 10);
    EXPECT_EQ(report.legitimate_configs, legitimate_count(n, K));
  }
}

TEST(Bounds, DijkstraWorstCaseWithinMoveBoundPlusCirculation) {
  for (std::size_t n : {3u, 4u, 5u}) {
    const auto K = static_cast<std::uint32_t>(n + 1);
    auto checker = verify::make_kstate_checker(n, K);
    verify::CheckOptions options;
    options.min_privileged = 1;
    options.max_privileged = 1;
    const auto report = checker.run(options);
    ASSERT_TRUE(report.all_ok());
    // Strict Definition-form target costs at most one extra circulation.
    EXPECT_LE(report.worst_case_steps, dijkstra_move_bound(n) + 2 * n);
  }
}

TEST(Bounds, StatesPerProcessMatchesProtocol) {
  const SsrMinRing ring(5, 9);
  EXPECT_EQ(ring.states_per_process(), states_per_process(9));
}

TEST(Bounds, EnumerationMatchesLegitimateCount) {
  const SsrMinRing ring(6, 8);
  EXPECT_EQ(enumerate_legitimate(ring).size(), legitimate_count(6, 8));
}

}  // namespace
}  // namespace ssr::core
