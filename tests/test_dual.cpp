// Tests for the two-independent-Dijkstra-instances baseline (Figure 12's
// naive multi-token construction).
#include "dijkstra/dual.hpp"

#include <gtest/gtest.h>

#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"

namespace ssr::dijkstra {
namespace {

DualConfig make_config(std::initializer_list<std::pair<std::uint32_t, std::uint32_t>> xs) {
  DualConfig c;
  for (auto [a, b] : xs) c.push_back(DualLocal{a, b});
  return c;
}

TEST(DualRing, RuleSelection) {
  DualKStateRing ring(3, 4);
  // P1: instance A enabled (a1 != a0), instance B disabled (b1 == b0).
  const DualConfig c = make_config({{1, 0}, {0, 0}, {0, 0}});
  EXPECT_EQ(ring.enabled_rule(1, c[1], c[0], c[2]), DualKStateRing::kRuleA);
  // P0 (bottom): A needs a0 == a2 -> 1 == 0 false; B: 0 == 0 true.
  EXPECT_EQ(ring.enabled_rule(0, c[0], c[2], c[1]), DualKStateRing::kRuleB);
  // P2: A: a2 == a1? others guard is inequality: 0 != 0 false; B same.
  EXPECT_EQ(ring.enabled_rule(2, c[2], c[1], c[0]), stab::kDisabled);
}

TEST(DualRing, BothInstancesEnabledUsesCombinedRule) {
  DualKStateRing ring(3, 4);
  const DualConfig c = make_config({{0, 0}, {1, 1}, {1, 1}});
  // P0: A: 0 == 1? bottom guard equality with pred P2 -> 0 == 1 false.
  // P1: A: 1 != 0 true, B: 1 != 0 true -> both.
  EXPECT_EQ(ring.enabled_rule(1, c[1], c[0], c[2]), DualKStateRing::kRuleBoth);
  const DualLocal next = ring.apply(1, DualKStateRing::kRuleBoth, c[1], c[0], c[2]);
  EXPECT_EQ(next.a, 0u);
  EXPECT_EQ(next.b, 0u);
}

TEST(DualRing, ApplySingleInstanceLeavesOtherUntouched) {
  DualKStateRing ring(3, 4);
  const DualConfig c = make_config({{1, 2}, {0, 2}, {0, 2}});
  ASSERT_EQ(ring.enabled_rule(1, c[1], c[0], c[2]), DualKStateRing::kRuleA);
  const DualLocal next = ring.apply(1, DualKStateRing::kRuleA, c[1], c[0], c[2]);
  EXPECT_EQ(next.a, 1u);
  EXPECT_EQ(next.b, 2u);
}

TEST(DualRing, ApplyRejectsWrongRule) {
  DualKStateRing ring(3, 4);
  const DualConfig c = make_config({{1, 2}, {0, 2}, {0, 2}});
  EXPECT_THROW(ring.apply(1, DualKStateRing::kRuleB, c[1], c[0], c[2]),
               std::invalid_argument);
  EXPECT_THROW(ring.apply(1, 99, c[1], c[0], c[2]), std::invalid_argument);
}

TEST(DualRing, TokenCountSumsInstances) {
  DualKStateRing ring(3, 4);
  // All equal in both instances: bottom holds both tokens.
  const DualConfig c = make_config({{0, 0}, {0, 0}, {0, 0}});
  EXPECT_EQ(token_count(ring, c), 2u);
  EXPECT_EQ(privileged_count(ring, c), 1u);  // both tokens at P0
  EXPECT_TRUE(is_legitimate(ring, c));
}

TEST(DualRing, TokensAtDifferentProcesses) {
  DualKStateRing ring(4, 5);
  // Instance A token at P1 (a: 1,0,0,0); instance B token at P3
  // (b: 1,1,1,0).
  const DualConfig c =
      make_config({{1, 1}, {0, 1}, {0, 1}, {0, 0}});
  EXPECT_EQ(token_count(ring, c), 2u);
  EXPECT_EQ(privileged_count(ring, c), 2u);
  EXPECT_TRUE(is_legitimate(ring, c));
}

TEST(DualRing, IllegitimateWhenAnInstanceHasManyTokens) {
  DualKStateRing ring(4, 5);
  const DualConfig c =
      make_config({{1, 0}, {0, 0}, {1, 0}, {0, 0}});  // A has 3+ tokens
  EXPECT_FALSE(is_legitimate(ring, c));
}

TEST(DualRing, AlwaysAtLeastOnePrivileged) {
  // Each instance always has >= 1 token, so privileged_count >= 1 in every
  // configuration (the state-reading guarantee Figure 12 contrasts with).
  DualKStateRing ring(3, 4);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const DualConfig c = random_config(ring, rng);
    EXPECT_GE(privileged_count(ring, c), 1u);
    EXPECT_GE(token_count(ring, c), 2u);
  }
}

class DualConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DualConvergence, BothInstancesStabilize) {
  const std::size_t n = 6;
  DualKStateRing ring(n, 7);
  Rng rng(GetParam());
  stab::Engine<DualKStateRing> engine(ring, random_config(ring, rng));
  stab::RandomSubsetDaemon daemon{Rng(GetParam() + 100), 0.5};
  auto legit = [&ring](const DualConfig& c) { return is_legitimate(ring, c); };
  const auto result = stab::run_until(engine, daemon, legit, 20000);
  EXPECT_TRUE(result.reached) << "seed=" << GetParam();
  // Once legitimate, stays legitimate.
  for (int t = 0; t < 50; ++t) {
    ASSERT_TRUE(engine.step_with(daemon));
    ASSERT_TRUE(is_legitimate(ring, engine.config()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualConvergence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(DualTraceStyle, MarksPerInstanceTokens) {
  DualKStateRing ring(3, 4);
  auto style = trace_style(ring);
  const DualConfig c = make_config({{0, 1}, {0, 0}, {0, 0}});
  EXPECT_EQ(style.format_state(c[0]), "0|1");
  // P0: A token (all equal); B token? bottom: b0 == b2 -> 1 == 0 no.
  EXPECT_EQ(style.annotate(c, 0), "T1");
  // P1: B: b1 != b0 -> 0 != 1 yes.
  EXPECT_EQ(style.annotate(c, 1), "T2");
}

}  // namespace
}  // namespace ssr::dijkstra
