// Cross-validation of the model checker's worst-case figure: replaying
// the height-greedy adversary must realize exactly the predicted number
// of steps, decreasing the potential by one per step.
#include "verify/adversary.hpp"

#include <gtest/gtest.h>

#include "core/legitimacy.hpp"
#include "verify/checkers.hpp"

namespace ssr::verify {
namespace {

TEST(Adversary, ReplayRealizesPredictedWorstCaseN3) {
  auto checker = make_ssrmin_checker(3, 4);
  CheckOptions options;
  options.keep_heights = true;
  const CheckReport report = checker.run(options);
  ASSERT_TRUE(report.all_ok());
  ASSERT_FALSE(report.heights.empty());

  const std::uint64_t worst = worst_configuration(report);
  EXPECT_EQ(report.heights[worst], report.worst_case_steps);

  const ReplayResult replay = replay_worst_execution(checker, report, worst);
  EXPECT_EQ(replay.steps, report.worst_case_steps);
  EXPECT_TRUE(replay.potential_decreased_by_one);
  EXPECT_EQ(replay.path.size(), replay.steps + 1);
  // The path ends in a legitimate configuration and stays illegitimate
  // before it.
  core::SsrMinRing ring(3, 4);
  for (std::size_t k = 0; k + 1 < replay.path.size(); ++k) {
    EXPECT_FALSE(core::is_legitimate(
        ring, checker.codec().decode(replay.path[k])));
  }
  EXPECT_TRUE(core::is_legitimate(
      ring, checker.codec().decode(replay.path.back())));
}

TEST(Adversary, ReplayFromEveryHeightBandN3) {
  auto checker = make_ssrmin_checker(3, 4);
  CheckOptions options;
  options.keep_heights = true;
  const CheckReport report = checker.run(options);
  ASSERT_TRUE(report.all_ok());
  // Sample one configuration per height value and replay it.
  std::vector<bool> seen(report.worst_case_steps + 1, false);
  for (std::uint64_t c = 0; c < report.heights.size(); ++c) {
    const std::uint32_t h = report.heights[c];
    if (h == 0 || seen[h]) continue;
    seen[h] = true;
    const ReplayResult replay = replay_worst_execution(checker, report, c);
    EXPECT_EQ(replay.steps, h) << "config " << c;
    EXPECT_TRUE(replay.potential_decreased_by_one);
  }
}

TEST(Adversary, ReplayRealizesPredictedWorstCaseN4) {
  auto checker = make_ssrmin_checker(4, 5);
  CheckOptions options;
  options.keep_heights = true;
  const CheckReport report = checker.run(options);
  ASSERT_TRUE(report.all_ok());
  const std::uint64_t worst = worst_configuration(report);
  const ReplayResult replay = replay_worst_execution(checker, report, worst);
  EXPECT_EQ(replay.steps, report.worst_case_steps);
  EXPECT_TRUE(replay.potential_decreased_by_one);
}

TEST(Adversary, PackedHeightsDriveIdenticalReplaysInEveryStorageMode) {
  // Regression for the packed (u16 + sparse escape) height table: the
  // height-greedy replay must realize the same worst case whichever Phase
  // B backend produced the table.
  auto checker = make_ssrmin_checker(3, 4);
  CheckOptions options;
  options.keep_heights = true;
  std::vector<std::uint64_t> paths_seen;
  for (PhaseBStorage storage :
       {PhaseBStorage::kLegacyCsr, PhaseBStorage::kCompressed,
        PhaseBStorage::kCsrFree}) {
    options.storage = storage;
    const CheckReport report = checker.run(options);
    ASSERT_TRUE(report.all_ok()) << to_string(storage);
    ASSERT_EQ(report.heights.escape_entries(), 0u) << to_string(storage);
    const std::uint64_t worst = worst_configuration(report);
    const ReplayResult replay = replay_worst_execution(checker, report, worst);
    EXPECT_EQ(replay.steps, report.worst_case_steps) << to_string(storage);
    EXPECT_TRUE(replay.potential_decreased_by_one) << to_string(storage);
    paths_seen.push_back(worst);
  }
  // All three backends agree on the worst configuration itself.
  EXPECT_EQ(paths_seen[0], paths_seen[1]);
  EXPECT_EQ(paths_seen[0], paths_seen[2]);
}

TEST(Adversary, LegitimateStartReplaysZeroSteps) {
  auto checker = make_ssrmin_checker(3, 4);
  CheckOptions options;
  options.keep_heights = true;
  const CheckReport report = checker.run(options);
  core::SsrMinRing ring(3, 4);
  const std::uint64_t code =
      checker.codec().encode(core::canonical_legitimate(ring, 1));
  const ReplayResult replay = replay_worst_execution(checker, report, code);
  EXPECT_EQ(replay.steps, 0u);
}

TEST(Adversary, RequiresHeights) {
  auto checker = make_ssrmin_checker(3, 4);
  const CheckReport report = checker.run();  // keep_heights = false
  EXPECT_THROW(replay_worst_execution(checker, report, 0),
               std::invalid_argument);
  EXPECT_THROW(worst_configuration(report), std::invalid_argument);
}

}  // namespace
}  // namespace ssr::verify
