// Tests for the (l, k)-critical-section specification layer.
#include "inclusion/critical_section.hpp"

#include <gtest/gtest.h>

namespace ssr::incl {
namespace {

TEST(Spec, Satisfaction) {
  const CriticalSectionSpec spec{1, 2};
  EXPECT_FALSE(spec.satisfied_by(0));
  EXPECT_TRUE(spec.satisfied_by(1));
  EXPECT_TRUE(spec.satisfied_by(2));
  EXPECT_FALSE(spec.satisfied_by(3));
}

TEST(Spec, Factories) {
  EXPECT_EQ(mutual_exclusion_spec().min_in_cs, 0u);
  EXPECT_EQ(mutual_exclusion_spec().max_in_cs, 1u);
  EXPECT_EQ(mutual_inclusion_spec(7).min_in_cs, 1u);
  EXPECT_EQ(mutual_inclusion_spec(7).max_in_cs, 7u);
  EXPECT_EQ(ssrmin_spec().min_in_cs, 1u);
  EXPECT_EQ(ssrmin_spec().max_in_cs, 2u);
  EXPECT_THROW(mutual_inclusion_spec(0), std::invalid_argument);
}

TEST(Spec, ToString) {
  EXPECT_EQ(ssrmin_spec().to_string(), "(1, 2)-critical-section");
}

TEST(Monitor, CountsViolationsBothDirections) {
  SpecMonitor m(ssrmin_spec());
  m.observe(1);
  m.observe(2);
  m.observe(0);  // below
  m.observe(3);  // above
  m.observe(1);
  EXPECT_EQ(m.observations(), 5u);
  EXPECT_EQ(m.violations_below(), 1u);
  EXPECT_EQ(m.violations_above(), 1u);
  EXPECT_FALSE(m.clean());
}

TEST(Monitor, CleanWhenAlwaysInBand) {
  SpecMonitor m(ssrmin_spec());
  for (int i = 0; i < 100; ++i) m.observe(1 + (i % 2));
  EXPECT_TRUE(m.clean());
}

TEST(Monitor, TimeWeightedCompliance) {
  SpecMonitor m(ssrmin_spec());
  m.observe_interval(9.0, 1);
  m.observe_interval(1.0, 0);
  EXPECT_DOUBLE_EQ(m.observed_time(), 10.0);
  EXPECT_DOUBLE_EQ(m.violation_time(), 1.0);
  EXPECT_DOUBLE_EQ(m.compliance(), 0.9);
}

TEST(Monitor, ComplianceIsOneWithoutObservations) {
  SpecMonitor m(mutual_exclusion_spec());
  EXPECT_DOUBLE_EQ(m.compliance(), 1.0);
}

TEST(Monitor, NegativeIntervalRejected) {
  SpecMonitor m(ssrmin_spec());
  EXPECT_THROW(m.observe_interval(-1.0, 1), std::invalid_argument);
}

TEST(Monitor, MutualExclusionViewOfSsrMinViolates) {
  // SSRmin is NOT a mutual exclusion algorithm: two privileged processes
  // are legal. A mutual-exclusion monitor flags them.
  SpecMonitor m(mutual_exclusion_spec());
  m.observe(2);
  EXPECT_EQ(m.violations_above(), 1u);
}

}  // namespace
}  // namespace ssr::incl
