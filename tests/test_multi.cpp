// Tests for the multi-instance SSRmin composition — the (l, k)-critical-
// section family: k instances give at least k and at most 2k privileged
// slots after stabilization, each with graceful handover.
#include "inclusion/multi.hpp"

#include <gtest/gtest.h>

#include "msgpass/cst.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"

namespace ssr::incl {
namespace {

TEST(MultiSsrMin, ConstructionConstraints) {
  EXPECT_THROW(MultiSsrMin(5, 6, 0), std::invalid_argument);
  EXPECT_THROW(MultiSsrMin(2, 6, 2), std::invalid_argument);  // n >= 3
  const MultiSsrMin ring(6, 7, 3);
  EXPECT_EQ(ring.instances(), 3u);
  EXPECT_EQ(ring.size(), 6u);
}

TEST(MultiSsrMin, StaggeredStartIsLegitimateWithSpacedTokens) {
  const MultiSsrMin ring(9, 10, 3);
  const MultiConfig c = staggered_legitimate(ring);
  EXPECT_TRUE(is_legitimate(ring, c));
  EXPECT_EQ(privileged_slots(ring, c), 3u);  // one holder per instance
  EXPECT_EQ(privileged_nodes(ring, c), 3u);  // at distinct nodes
}

TEST(MultiSsrMin, SlotsBandInLegitimateConfigs) {
  // After stabilization, slots stay in [k, 2k] along any execution.
  const std::size_t n = 6;
  const std::size_t k = 2;
  const MultiSsrMin ring(n, 7, k);
  stab::Engine<MultiSsrMin> engine(ring, staggered_legitimate(ring));
  stab::RandomSubsetDaemon daemon{Rng(5), 0.5};
  for (int t = 0; t < 600; ++t) {
    const std::size_t slots = privileged_slots(ring, engine.config());
    ASSERT_GE(slots, k) << "step " << t;
    ASSERT_LE(slots, 2 * k) << "step " << t;
    ASSERT_GE(privileged_nodes(ring, engine.config()), 1u);
    ASSERT_TRUE(is_legitimate(ring, engine.config()));
    ASSERT_TRUE(engine.step_with(daemon));
  }
}

TEST(MultiSsrMin, ConvergesFromRandomConfigurations) {
  const std::size_t n = 5;
  const MultiSsrMin ring(n, 6, 2);
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    stab::Engine<MultiSsrMin> engine(ring, random_config(ring, rng));
    stab::CentralRandomDaemon daemon{rng.split()};
    auto legit = [&ring](const MultiConfig& c) {
      return is_legitimate(ring, c);
    };
    const auto result = stab::run_until(engine, daemon, legit, 20000);
    EXPECT_TRUE(result.reached) << "trial " << trial;
  }
}

TEST(MultiSsrMin, CompositeMoveFiresAllEnabledInstances) {
  const MultiSsrMin ring(5, 6, 2);
  // Both instances canonical (token at P0): P0 enabled in both; one step
  // must advance both instances' flags.
  MultiConfig c(5);
  for (auto& s : c) s.slots.resize(2);
  for (std::size_t j = 0; j < 2; ++j) c[0].slots[j].tra = true;
  stab::Engine<MultiSsrMin> engine(ring, c);
  const auto enabled = engine.enabled_indices();
  ASSERT_EQ(enabled, std::vector<std::size_t>{0});
  engine.step(enabled);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_TRUE(engine.config()[0].slots[j].rts);   // both fired Rule 1
    EXPECT_FALSE(engine.config()[0].slots[j].tra);
  }
}

TEST(MultiSsrMin, ApplyRejectsBadState) {
  const MultiSsrMin ring(5, 6, 2);
  MultiState bad;
  bad.slots.resize(1);  // wrong slot count
  EXPECT_THROW(ring.enabled_rule(0, bad, bad, bad), std::invalid_argument);
}

TEST(MultiSsrMin, MessagePassingRedundantCoverage) {
  // Under CST, each instance keeps its own >= 1 token guarantee (Theorem 3
  // applies per instance, because the composite rule executes each
  // instance's rule against that instance's cached views). Three
  // simulations with identical seed/protocol evolve identically; only the
  // measured predicate differs.
  const std::size_t n = 6;
  const std::size_t k = 2;
  const MultiSsrMin ring(n, 7, k);
  msgpass::NetworkParams net;
  net.seed = 9;

  auto run_with = [&](auto predicate) {
    msgpass::CstSimulation<MultiSsrMin> sim(ring, staggered_legitimate(ring),
                                            predicate, net);
    return sim.run(3000.0);
  };

  // Node-level coverage: >= 1 privileged node, <= 2k.
  const auto nodes = run_with(
      [ring](std::size_t i, const MultiState& self, const MultiState& pred,
             const MultiState& succ) {
        return ring.tokens_at(i, self, pred, succ) > 0;
      });
  EXPECT_GE(nodes.min_holders, 1u);
  EXPECT_LE(nodes.max_holders, 2 * k);
  EXPECT_GT(nodes.handovers, 20u);

  // Per-instance coverage: each instance individually never token-less —
  // hence at least k privileged slots at every instant.
  for (std::size_t j = 0; j < k; ++j) {
    const auto inst = run_with(
        [ring, j](std::size_t i, const MultiState& self,
                  const MultiState& pred, const MultiState& succ) {
          return ring.base().holds_primary(i, self.slots[j],
                                           pred.slots[j]) ||
                 ring.base().holds_secondary(self.slots[j], succ.slots[j]);
        });
    EXPECT_EQ(inst.min_holders, 1u) << "instance " << j;
    EXPECT_LE(inst.max_holders, 2u) << "instance " << j;
    EXPECT_EQ(inst.zero_intervals, 0u) << "instance " << j;
  }
}

}  // namespace
}  // namespace ssr::incl
