// Unit tests for the slim Phase B storage primitives: the varint move
// record codec (round-trip + fuzz), the two-level MoveStore layout, the
// packed HeightTable with its sparse escape, the TwoLevelBitset, and the
// projected-memory mode-selection guard that replaced the old hard cap.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/packed_bitset.hpp"
#include "util/rng.hpp"
#include "verify/checkers.hpp"
#include "verify/phaseb_store.hpp"

namespace {

using namespace ssr;
using verify::HeightTable;
using verify::MoveRecordCodec;
using verify::MoveStore;
using verify::PhaseBStorage;

// --- MoveRecordCodec -------------------------------------------------------

TEST(MoveRecordCodec, RoundTripsHandPickedRecords) {
  const MoveRecordCodec codec(5, 24);  // ssrmin(5, K=6): radix 4K = 24
  EXPECT_EQ(codec.delta_bits(), 6u);   // bit_width(2 * 23) = 6

  struct Case {
    std::uint32_t mask;
    std::vector<std::int32_t> deltas;
  };
  const Case cases[] = {
      {0b00001, {5}},
      {0b10001, {-23, 23}},
      {0b01110, {0, -1, 1}},   // zero delta (state-preserving rule) kept
      {0b11111, {-23, -1, 0, 1, 23}},
  };
  std::uint8_t buf[64];
  for (const Case& c : cases) {
    const std::size_t written = codec.encode(c.mask, c.deltas.data(), buf);
    EXPECT_EQ(written, codec.encoded_size(c.mask));
    EXPECT_LE(written, codec.max_encoded_size());
    std::uint32_t mask = 0;
    std::int32_t deltas[32];
    const std::size_t read = codec.decode(buf, mask, deltas);
    EXPECT_EQ(read, written);
    EXPECT_EQ(mask, c.mask);
    for (std::size_t k = 0; k < c.deltas.size(); ++k) {
      EXPECT_EQ(deltas[k], c.deltas[k]) << "bit " << k;
    }
  }
}

TEST(MoveRecordCodec, FuzzRoundTripAcrossSizesAndRadixes) {
  Rng rng(20260806);
  std::uint8_t buf[64];
  std::int32_t out[32];
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t n = 1 + rng.below(32);
    const std::uint64_t radix = 2 + rng.below(64);
    const MoveRecordCodec codec(n, radix);
    std::uint32_t mask = 0;
    std::vector<std::int32_t> deltas;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.below(2) == 0) continue;
      mask |= std::uint32_t{1} << i;
      deltas.push_back(static_cast<std::int32_t>(rng.below(2 * radix - 1)) -
                       static_cast<std::int32_t>(radix - 1));
    }
    const std::size_t written = codec.encode(mask, deltas.data(), buf);
    ASSERT_EQ(written, codec.encoded_size(mask));
    ASSERT_LE(written, codec.max_encoded_size());
    std::uint32_t got_mask = 0;
    const std::size_t read = codec.decode(buf, got_mask, out);
    ASSERT_EQ(read, written);
    ASSERT_EQ(got_mask, mask);
    for (std::size_t k = 0; k < deltas.size(); ++k) {
      ASSERT_EQ(out[k], deltas[k]) << "iter " << iter << " slot " << k;
    }
  }
}

TEST(MoveRecordCodec, RejectsUnsupportedShapes) {
  EXPECT_THROW(MoveRecordCodec(0, 4), std::invalid_argument);
  EXPECT_THROW(MoveRecordCodec(33, 4), std::invalid_argument);
  EXPECT_THROW(MoveRecordCodec(4, 1), std::invalid_argument);
}

// --- MoveStore -------------------------------------------------------------

TEST(MoveStore, TwoLevelOffsetsAddressEveryRecord) {
  const MoveRecordCodec codec(4, 8);
  MoveStore store;
  store.prepare(10000, codec);
  EXPECT_EQ(store.block_shift(), 12u);

  // Give config c a record of size (c % 5): sizes vary within blocks.
  auto size_of = [](std::uint64_t c) {
    return static_cast<std::uint16_t>(c % 5);
  };
  for (std::uint64_t b = 0; b < store.block_count(); ++b) {
    std::uint16_t running = 0;
    for (std::uint64_t c = store.block_begin(b); c < store.block_end(b); ++c) {
      store.set_local_offset(c, running);
      running = static_cast<std::uint16_t>(running + size_of(c));
    }
    store.set_block_bytes(b, running);
  }
  store.finalize_layout();
  // Write each record's first byte as a fingerprint, then check
  // record_at() finds it and consecutive records never overlap.
  for (std::uint64_t c = 0; c < 10000; ++c) {
    if (size_of(c) == 0) continue;
    *store.slot(c) = static_cast<std::uint8_t>(c * 37 % 251);
  }
  for (std::uint64_t c = 0; c < 10000; ++c) {
    if (size_of(c) == 0) continue;
    EXPECT_EQ(*store.record_at(c), static_cast<std::uint8_t>(c * 37 % 251))
        << "config " << c;
    if (c + 1 < 10000 && (c + 1) % 4096 != 0) {
      EXPECT_EQ(store.record_at(c) + size_of(c), store.record_at(c + 1));
    }
  }
  EXPECT_GT(store.stream_bytes(), 0u);
  EXPECT_GT(store.offset_bytes(), 0u);
}

TEST(MoveStore, ShrinksBlockShiftForHugeRecords) {
  // n = 32, radix 64: delta_bits = 7, max record = 1 + varint(2^32-1 mask
  // bytes)... encoded mask of 32 bits needs 5 varint bytes, deltas 28
  // bytes -> 33 bytes/record. 4096 * 33 > 65535, so the shift must drop.
  const MoveRecordCodec codec(32, 64);
  MoveStore store;
  store.prepare(100000, codec);
  EXPECT_LT(store.block_shift(), 12u);
  EXPECT_LE((std::uint64_t{1} << store.block_shift()) *
                codec.max_encoded_size(),
            65535u);
}

// --- HeightTable -----------------------------------------------------------

TEST(HeightTable, PackRoundTripsWithSparseEscape) {
  std::vector<std::uint32_t> raw = {0, 1, 65534, 65535, 1u << 20, 7};
  const HeightTable t = HeightTable::pack(raw);
  ASSERT_EQ(t.size(), raw.size());
  for (std::uint64_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(t[i], raw[i]) << "index " << i;
  }
  EXPECT_EQ(t.escape_entries(), 2u);  // 65535 and 2^20 escape

  HeightTable u;
  u.assign(raw.size(), 0);
  for (std::uint64_t i = 0; i < raw.size(); ++i) u.set(i, raw[i]);
  EXPECT_TRUE(t == u);
  u.set(2, 3);
  EXPECT_FALSE(t == u);
}

TEST(HeightTable, AdoptedDenseTableHasNoEscapes) {
  const HeightTable t = HeightTable::adopt({0, 7, 43, 16});
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t[2], 43u);
  EXPECT_EQ(t.escape_entries(), 0u);
  EXPECT_FALSE(t.empty());
  EXPECT_TRUE(HeightTable().empty());
}

// --- TwoLevelBitset --------------------------------------------------------

TEST(TwoLevelBitset, SetTestClearCountFindFirst) {
  util::TwoLevelBitset bits(100000);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_EQ(bits.find_first(), 100000u);
  for (std::uint64_t i : {0ull, 63ull, 64ull, 4095ull, 4096ull, 99999ull}) {
    bits.set(i);
  }
  EXPECT_EQ(bits.count(), 6u);
  EXPECT_EQ(bits.find_first(), 0u);
  EXPECT_TRUE(bits.test(4095));
  EXPECT_FALSE(bits.test(4094));
  bits.clear(0);
  EXPECT_EQ(bits.find_first(), 63u);
  EXPECT_EQ(bits.count(), 5u);
}

TEST(TwoLevelBitset, ForEachSetVisitsExactlyTheSetBits) {
  util::TwoLevelBitset bits(50000);
  std::vector<std::uint64_t> want;
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t idx = rng.below(50000);
    if (!bits.test(idx)) {
      bits.set(idx);
      want.push_back(idx);
    }
  }
  std::sort(want.begin(), want.end());
  std::vector<std::uint64_t> got;
  bits.for_each_set(0, bits.size(), [&](std::uint64_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);

  // Range-restricted scan with unaligned bounds.
  std::vector<std::uint64_t> ranged;
  bits.for_each_set(1000, 49000,
                    [&](std::uint64_t i) { ranged.push_back(i); });
  std::vector<std::uint64_t> want_ranged;
  for (std::uint64_t i : want) {
    if (i >= 1000 && i < 49000) want_ranged.push_back(i);
  }
  EXPECT_EQ(ranged, want_ranged);

  // The peel pattern: clearing while iterating drains the set, and a
  // second sweep over the (summary-reconciled) empty bitset sees nothing.
  bits.for_each_set(0, bits.size(), [&](std::uint64_t i) { bits.clear(i); });
  EXPECT_EQ(bits.count(), 0u);
  bool any = false;
  bits.for_each_set(0, bits.size(), [&](std::uint64_t) { any = true; });
  EXPECT_FALSE(any);
}

// --- projections + mode selection ------------------------------------------

TEST(PhaseBSelection, AutoPicksCompressedWhenItFits) {
  std::uint64_t projected = 0;
  const PhaseBStorage mode = verify::select_phaseb_storage(
      PhaseBStorage::kAuto, 1 << 20, 5, 24, std::uint64_t{1} << 30,
      &projected);
  EXPECT_EQ(mode, PhaseBStorage::kCompressed);
  EXPECT_EQ(projected, verify::projected_compressed_bytes(1 << 20, 5, 24));
  EXPECT_LE(projected, std::uint64_t{1} << 30);
}

TEST(PhaseBSelection, AutoFallsBackToCsrFreeUnderPressure) {
  const std::uint64_t total = 1 << 20;
  // A budget between the two projections forces the fallback.
  const std::uint64_t comp = verify::projected_compressed_bytes(total, 5, 24);
  const std::uint64_t free = verify::projected_csrfree_bytes(total);
  ASSERT_LT(free, comp);
  std::uint64_t projected = 0;
  const PhaseBStorage mode = verify::select_phaseb_storage(
      PhaseBStorage::kAuto, total, 5, 24, (comp + free) / 2, &projected);
  EXPECT_EQ(mode, PhaseBStorage::kCsrFree);
  EXPECT_EQ(projected, free);
}

TEST(PhaseBSelection, ErrorNamesProjectedBytesAndFittingMode) {
  const std::uint64_t total = 1 << 20;
  const std::uint64_t comp = verify::projected_compressed_bytes(total, 5, 24);
  const std::uint64_t free = verify::projected_csrfree_bytes(total);
  std::uint64_t projected = 0;
  // Requesting compressed under a budget only csr-free fits must say so.
  try {
    verify::select_phaseb_storage(PhaseBStorage::kCompressed, total, 5, 24,
                                  (comp + free) / 2, &projected);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("csr-free mode would fit"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(comp)), std::string::npos) << msg;
  }
  // Nothing fits: the error names both projections and asks to shrink.
  try {
    verify::select_phaseb_storage(PhaseBStorage::kAuto, total, 5, 24,
                                  free / 2, &projected);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no storage mode fits"), std::string::npos) << msg;
    EXPECT_NE(msg.find("reduce n or K"), std::string::npos) << msg;
  }
}

TEST(PhaseBSelection, CheckerRunHonorsTheBudgetGuard) {
  // End to end: a run with an impossible budget throws the projected-
  // memory error instead of the old hard 2^33 cap, and a sweep-only run
  // (no convergence pass) is exempt.
  auto checker = verify::make_ssrmin_checker(3, 4);
  verify::CheckOptions options;
  options.memory_budget_bytes = 1;  // nothing fits in one byte
  EXPECT_THROW(checker.run(options), std::invalid_argument);
  options.check_convergence = false;
  EXPECT_NO_THROW(checker.run(options));
}

TEST(PhaseBSelection, MeasuredPeakReconcilesWithProjection) {
  // The projection is an upper bound for the mode actually run: measured
  // peak <= projected peak, for both slim backends.
  auto checker = verify::make_ssrmin_checker(4, 5);
  verify::CheckOptions options;
  for (PhaseBStorage storage :
       {PhaseBStorage::kCompressed, PhaseBStorage::kCsrFree}) {
    options.storage = storage;
    const verify::CheckReport report = checker.run(options);
    EXPECT_GT(report.stats.measured_peak_bytes, 0u);
    EXPECT_LE(report.stats.measured_peak_bytes,
              report.stats.projected_peak_bytes)
        << verify::to_string(storage);
    EXPECT_GT(report.stats.edge_count, 0u);
  }
}

}  // namespace
