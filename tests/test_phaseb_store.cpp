// Unit tests for the slim Phase B storage primitives: the varint move
// record codec (round-trip + fuzz), the two-level MoveStore layout, the
// packed HeightTable with its sparse escape, the TwoLevelBitset, the
// disk-spilled record store (round-trip fuzz + hardened error paths), the
// cgroup-aware memory budget, and the projected-memory mode-selection
// guard that replaced the old hard cap.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "util/packed_bitset.hpp"
#include "util/rng.hpp"
#include "verify/checkers.hpp"
#include "verify/phaseb_store.hpp"
#include "verify/spill_store.hpp"

namespace {

using namespace ssr;
using verify::HeightTable;
using verify::MoveRecordCodec;
using verify::MoveStore;
using verify::PhaseBStorage;

// --- MoveRecordCodec -------------------------------------------------------

TEST(MoveRecordCodec, RoundTripsHandPickedRecords) {
  const MoveRecordCodec codec(5, 24);  // ssrmin(5, K=6): radix 4K = 24
  EXPECT_EQ(codec.delta_bits(), 6u);   // bit_width(2 * 23) = 6

  struct Case {
    std::uint32_t mask;
    std::vector<std::int32_t> deltas;
  };
  const Case cases[] = {
      {0b00001, {5}},
      {0b10001, {-23, 23}},
      {0b01110, {0, -1, 1}},   // zero delta (state-preserving rule) kept
      {0b11111, {-23, -1, 0, 1, 23}},
  };
  std::uint8_t buf[64];
  for (const Case& c : cases) {
    const std::size_t written = codec.encode(c.mask, c.deltas.data(), buf);
    EXPECT_EQ(written, codec.encoded_size(c.mask));
    EXPECT_LE(written, codec.max_encoded_size());
    std::uint32_t mask = 0;
    std::int32_t deltas[32];
    const std::size_t read = codec.decode(buf, mask, deltas);
    EXPECT_EQ(read, written);
    EXPECT_EQ(mask, c.mask);
    for (std::size_t k = 0; k < c.deltas.size(); ++k) {
      EXPECT_EQ(deltas[k], c.deltas[k]) << "bit " << k;
    }
  }
}

TEST(MoveRecordCodec, FuzzRoundTripAcrossSizesAndRadixes) {
  Rng rng(20260806);
  std::uint8_t buf[64];
  std::int32_t out[32];
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t n = 1 + rng.below(32);
    const std::uint64_t radix = 2 + rng.below(64);
    const MoveRecordCodec codec(n, radix);
    std::uint32_t mask = 0;
    std::vector<std::int32_t> deltas;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.below(2) == 0) continue;
      mask |= std::uint32_t{1} << i;
      deltas.push_back(static_cast<std::int32_t>(rng.below(2 * radix - 1)) -
                       static_cast<std::int32_t>(radix - 1));
    }
    const std::size_t written = codec.encode(mask, deltas.data(), buf);
    ASSERT_EQ(written, codec.encoded_size(mask));
    ASSERT_LE(written, codec.max_encoded_size());
    std::uint32_t got_mask = 0;
    const std::size_t read = codec.decode(buf, got_mask, out);
    ASSERT_EQ(read, written);
    ASSERT_EQ(got_mask, mask);
    for (std::size_t k = 0; k < deltas.size(); ++k) {
      ASSERT_EQ(out[k], deltas[k]) << "iter " << iter << " slot " << k;
    }
  }
}

TEST(MoveRecordCodec, RejectsUnsupportedShapes) {
  EXPECT_THROW(MoveRecordCodec(0, 4), std::invalid_argument);
  EXPECT_THROW(MoveRecordCodec(33, 4), std::invalid_argument);
  EXPECT_THROW(MoveRecordCodec(4, 1), std::invalid_argument);
}

// --- MoveStore -------------------------------------------------------------

TEST(MoveStore, TwoLevelOffsetsAddressEveryRecord) {
  const MoveRecordCodec codec(4, 8);
  MoveStore store;
  store.prepare(10000, codec);
  EXPECT_EQ(store.block_shift(), 12u);

  // Give config c a record of size (c % 5): sizes vary within blocks.
  auto size_of = [](std::uint64_t c) {
    return static_cast<std::uint16_t>(c % 5);
  };
  for (std::uint64_t b = 0; b < store.block_count(); ++b) {
    std::uint16_t running = 0;
    for (std::uint64_t c = store.block_begin(b); c < store.block_end(b); ++c) {
      store.set_local_offset(c, running);
      running = static_cast<std::uint16_t>(running + size_of(c));
    }
    store.set_block_bytes(b, running);
  }
  store.finalize_layout();
  // Write each record's first byte as a fingerprint, then check
  // record_at() finds it and consecutive records never overlap.
  for (std::uint64_t c = 0; c < 10000; ++c) {
    if (size_of(c) == 0) continue;
    *store.slot(c) = static_cast<std::uint8_t>(c * 37 % 251);
  }
  for (std::uint64_t c = 0; c < 10000; ++c) {
    if (size_of(c) == 0) continue;
    EXPECT_EQ(*store.record_at(c), static_cast<std::uint8_t>(c * 37 % 251))
        << "config " << c;
    if (c + 1 < 10000 && (c + 1) % 4096 != 0) {
      EXPECT_EQ(store.record_at(c) + size_of(c), store.record_at(c + 1));
    }
  }
  EXPECT_GT(store.stream_bytes(), 0u);
  EXPECT_GT(store.offset_bytes(), 0u);
}

TEST(MoveStore, ShrinksBlockShiftForHugeRecords) {
  // n = 32, radix 64: delta_bits = 7, max record = 1 + varint(2^32-1 mask
  // bytes)... encoded mask of 32 bits needs 5 varint bytes, deltas 28
  // bytes -> 33 bytes/record. 4096 * 33 > 65535, so the shift must drop.
  const MoveRecordCodec codec(32, 64);
  MoveStore store;
  store.prepare(100000, codec);
  EXPECT_LT(store.block_shift(), 12u);
  EXPECT_LE((std::uint64_t{1} << store.block_shift()) *
                codec.max_encoded_size(),
            65535u);
}

// --- SpillMoveStore --------------------------------------------------------

TEST(SpillStore, RoundTripFuzzMirrorsTheCodecFuzz) {
  // The spill pipeline end to end — two-pass layout, double-buffered
  // block writes through the background flusher, fstat-checked mmap,
  // prefetch thread — must hand back byte-identical records for random
  // (n, radix, mask, delta) populations, mirroring the in-RAM codec fuzz.
  Rng rng(20260809);
  std::uint8_t buf[64];
  std::int32_t out[32];
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t n = 1 + rng.below(32);
    const std::uint64_t radix = 2 + rng.below(64);
    const MoveRecordCodec codec(n, radix);
    const std::uint64_t total = 3000 + rng.below(9000);

    std::vector<std::uint32_t> masks(total);
    std::vector<std::vector<std::int32_t>> deltas(total);
    for (std::uint64_t c = 0; c < total; ++c) {
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.below(2) == 0) continue;
        masks[c] |= std::uint32_t{1} << i;
        deltas[c].push_back(
            static_cast<std::int32_t>(rng.below(2 * radix - 1)) -
            static_cast<std::int32_t>(radix - 1));
      }
    }

    verify::SpillMoveStore store;
    store.prepare(total, codec, testing::TempDir(),
                  verify::projected_spill_file_bytes(total, n, radix));
    verify::MoveLayout& layout = store.layout();
    for (std::uint64_t b = 0; b < layout.block_count(); ++b) {
      std::uint16_t running = 0;
      for (std::uint64_t c = layout.block_begin(b); c < layout.block_end(b);
           ++c) {
        layout.set_local_offset(c, running);
        running =
            static_cast<std::uint16_t>(running + codec.encoded_size(masks[c]));
      }
      layout.set_block_bytes(b, running);
    }
    store.finalize_layout();

    verify::SpillBlockWriter writer(store.write_queue(), std::size_t{64} << 10);
    std::uint64_t expected_bytes = 0;
    for (std::uint64_t b = 0; b < layout.block_count(); ++b) {
      const std::uint64_t bbytes = layout.block_bytes(b);
      if (bbytes == 0) continue;
      std::uint8_t* base = writer.begin_block(bbytes);
      for (std::uint64_t c = layout.block_begin(b); c < layout.block_end(b);
           ++c) {
        const std::size_t written =
            codec.encode(masks[c], deltas[c].data(), buf);
        ASSERT_EQ(written, codec.encoded_size(masks[c]));
        std::copy(buf, buf + written, base + layout.local_offset(c));
      }
      writer.end_block(layout.block_base(b), bbytes);
      expected_bytes += bbytes;
    }
    store.seal_for_read(4);
    ASSERT_EQ(store.stream_bytes(), expected_bytes) << "iter " << iter;

    store.begin_round();
    for (std::uint64_t c = 0; c < total; ++c) {
      store.note_progress(layout.offset_of(c));
      std::uint32_t got_mask = 0;
      const std::size_t read = codec.decode(store.record_at(c), got_mask, out);
      ASSERT_EQ(read, codec.encoded_size(masks[c])) << "iter " << iter;
      ASSERT_EQ(got_mask, masks[c]) << "iter " << iter << " config " << c;
      for (std::size_t k = 0; k < deltas[c].size(); ++k) {
        ASSERT_EQ(out[k], deltas[c][k])
            << "iter " << iter << " config " << c << " slot " << k;
      }
    }
    store.release();
  }
}

TEST(SpillStore, UnwritableTmpdirNamesDirAndProjectedBytes) {
  const MoveRecordCodec codec(4, 8);
  verify::SpillMoveStore store;
  store.prepare(100, codec, "/nonexistent-ssring-tmpdir", 12345);
  store.layout().set_block_bytes(0, 16);  // a non-empty stream to create
  try {
    store.finalize_layout();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("/nonexistent-ssring-tmpdir"), std::string::npos) << msg;
    EXPECT_NE(msg.find("projected spill bytes=12345"), std::string::npos)
        << msg;
  }
}

TEST(SpillStore, TruncatedSpillFileIsAnErrorNotASigbus) {
  std::string path = testing::TempDir() + "/ssring-truncated-XXXXXX";
  const int fd = ::mkstemp(path.data());
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::write(fd, "abcd", 4), 4);
  ASSERT_EQ(::close(fd), 0);

  verify::SpillFile file;
  file.open_path(path, 999);
  try {
    file.map_readonly(4096);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
    EXPECT_NE(msg.find("4096 expected"), std::string::npos) << msg;
    EXPECT_NE(msg.find("projected spill bytes=999"), std::string::npos) << msg;
  }
  file.close();
  ::unlink(path.c_str());
}

TEST(SpillStore, EnospcMidWriteSurfacesAsRequireError) {
  // /dev/full fails every write with ENOSPC — the direct write path and
  // the background flush queue must both turn that into the named error.
  struct stat st {};
  if (::stat("/dev/full", &st) != 0) {
    GTEST_SKIP() << "/dev/full not available";
  }
  std::uint8_t block[256] = {};
  {
    verify::SpillFile file;
    file.open_path("/dev/full", 777);
    try {
      file.write_at(0, block, sizeof block);
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("/dev/full"), std::string::npos) << msg;
      EXPECT_NE(msg.find("write failed"), std::string::npos) << msg;
      EXPECT_NE(msg.find("projected spill bytes=777"), std::string::npos)
          << msg;
    }
  }
  {
    verify::SpillFile file;
    file.open_path("/dev/full", 777);
    verify::SpillWriteQueue queue(file);
    queue.start();
    bool busy = false;
    queue.submit(block, 0, sizeof block, &busy);
    EXPECT_THROW(queue.finish(), std::invalid_argument);
  }
}

// --- HeightTable -----------------------------------------------------------

TEST(HeightTable, PackRoundTripsWithSparseEscape) {
  std::vector<std::uint32_t> raw = {0, 1, 65534, 65535, 1u << 20, 7};
  const HeightTable t = HeightTable::pack(raw);
  ASSERT_EQ(t.size(), raw.size());
  for (std::uint64_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(t[i], raw[i]) << "index " << i;
  }
  EXPECT_EQ(t.escape_entries(), 2u);  // 65535 and 2^20 escape

  HeightTable u;
  u.assign(raw.size(), 0);
  for (std::uint64_t i = 0; i < raw.size(); ++i) u.set(i, raw[i]);
  EXPECT_TRUE(t == u);
  u.set(2, 3);
  EXPECT_FALSE(t == u);
}

TEST(HeightTable, AdoptedDenseTableHasNoEscapes) {
  const HeightTable t = HeightTable::adopt({0, 7, 43, 16});
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t[2], 43u);
  EXPECT_EQ(t.escape_entries(), 0u);
  EXPECT_FALSE(t.empty());
  EXPECT_TRUE(HeightTable().empty());
}

// --- TwoLevelBitset --------------------------------------------------------

TEST(TwoLevelBitset, SetTestClearCountFindFirst) {
  util::TwoLevelBitset bits(100000);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_EQ(bits.find_first(), 100000u);
  for (std::uint64_t i : {0ull, 63ull, 64ull, 4095ull, 4096ull, 99999ull}) {
    bits.set(i);
  }
  EXPECT_EQ(bits.count(), 6u);
  EXPECT_EQ(bits.find_first(), 0u);
  EXPECT_TRUE(bits.test(4095));
  EXPECT_FALSE(bits.test(4094));
  bits.clear(0);
  EXPECT_EQ(bits.find_first(), 63u);
  EXPECT_EQ(bits.count(), 5u);
}

TEST(TwoLevelBitset, ForEachSetVisitsExactlyTheSetBits) {
  util::TwoLevelBitset bits(50000);
  std::vector<std::uint64_t> want;
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t idx = rng.below(50000);
    if (!bits.test(idx)) {
      bits.set(idx);
      want.push_back(idx);
    }
  }
  std::sort(want.begin(), want.end());
  std::vector<std::uint64_t> got;
  bits.for_each_set(0, bits.size(), [&](std::uint64_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);

  // Range-restricted scan with unaligned bounds.
  std::vector<std::uint64_t> ranged;
  bits.for_each_set(1000, 49000,
                    [&](std::uint64_t i) { ranged.push_back(i); });
  std::vector<std::uint64_t> want_ranged;
  for (std::uint64_t i : want) {
    if (i >= 1000 && i < 49000) want_ranged.push_back(i);
  }
  EXPECT_EQ(ranged, want_ranged);

  // The peel pattern: clearing while iterating drains the set, and a
  // second sweep over the (summary-reconciled) empty bitset sees nothing.
  bits.for_each_set(0, bits.size(), [&](std::uint64_t i) { bits.clear(i); });
  EXPECT_EQ(bits.count(), 0u);
  bool any = false;
  bits.for_each_set(0, bits.size(), [&](std::uint64_t) { any = true; });
  EXPECT_FALSE(any);
}

// --- projections + mode selection ------------------------------------------

TEST(PhaseBSelection, AutoPicksCompressedWhenItFits) {
  std::uint64_t projected = 0;
  const PhaseBStorage mode = verify::select_phaseb_storage(
      PhaseBStorage::kAuto, 1 << 20, 5, 24, std::uint64_t{1} << 30,
      &projected);
  EXPECT_EQ(mode, PhaseBStorage::kCompressed);
  EXPECT_EQ(projected, verify::projected_compressed_bytes(1 << 20, 5, 24));
  EXPECT_LE(projected, std::uint64_t{1} << 30);
}

TEST(PhaseBSelection, AutoFallsBackToCsrFreeUnderPressure) {
  const std::uint64_t total = 1 << 20;
  // A budget between the two projections forces the fallback.
  const std::uint64_t comp = verify::projected_compressed_bytes(total, 5, 24);
  const std::uint64_t free = verify::projected_csrfree_bytes(total);
  ASSERT_LT(free, comp);
  std::uint64_t projected = 0;
  const PhaseBStorage mode = verify::select_phaseb_storage(
      PhaseBStorage::kAuto, total, 5, 24, (comp + free) / 2, &projected);
  EXPECT_EQ(mode, PhaseBStorage::kCsrFree);
  EXPECT_EQ(projected, free);
}

TEST(PhaseBSelection, ErrorNamesProjectedBytesAndFittingMode) {
  const std::uint64_t total = 1 << 20;
  const std::uint64_t comp = verify::projected_compressed_bytes(total, 5, 24);
  const std::uint64_t free = verify::projected_csrfree_bytes(total);
  std::uint64_t projected = 0;
  // Requesting compressed under a budget only csr-free fits must say so.
  try {
    verify::select_phaseb_storage(PhaseBStorage::kCompressed, total, 5, 24,
                                  (comp + free) / 2, &projected);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("csr-free mode would fit"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(comp)), std::string::npos) << msg;
  }
  // Nothing fits: the error names both projections and asks to shrink.
  try {
    verify::select_phaseb_storage(PhaseBStorage::kAuto, total, 5, 24,
                                  free / 2, &projected);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no storage mode fits"), std::string::npos) << msg;
    EXPECT_NE(msg.find("reduce n or K"), std::string::npos) << msg;
  }
}

TEST(PhaseBSelection, AutoPicksSpillWhenNoInRamModeFits) {
  const std::uint64_t total = 1 << 20;
  const std::uint64_t free = verify::projected_csrfree_bytes(total);
  const std::uint64_t spill =
      verify::projected_spill_resident_bytes(total, 5, 24);
  // The spill tier only exists below csr-free — that ordering is what the
  // watch-free peel buys.
  ASSERT_LT(spill, free);
  std::uint64_t projected = 0;
  std::uint64_t spill_file = 0;
  const PhaseBStorage mode =
      verify::select_phaseb_storage(PhaseBStorage::kAuto, total, 5, 24,
                                    (spill + free) / 2, &projected,
                                    &spill_file);
  EXPECT_EQ(mode, PhaseBStorage::kSpill);
  EXPECT_EQ(projected, spill);
  EXPECT_EQ(spill_file, verify::projected_spill_file_bytes(total, 5, 24));

  // Below even the spill-resident floor, the error names the disk split.
  try {
    verify::select_phaseb_storage(PhaseBStorage::kSpill, total, 5, 24,
                                  spill / 2, &projected);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("spill resident=" + std::to_string(spill)),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("no storage mode fits"), std::string::npos) << msg;
  }
}

// --- memory budget ---------------------------------------------------------

TEST(MemoryBudget, CgroupLimitCapsTheDefault) {
  // An env-injected fake cgroup hierarchy: the default budget must take
  // min(physical RAM, cgroup limit), read v2 then v1, and treat both
  // "unlimited" spellings as no limit.
  std::string root = testing::TempDir() + "/ssring-cgroup-XXXXXX";
  ASSERT_NE(::mkdtemp(root.data()), nullptr);
  ASSERT_EQ(setenv("SSRING_CGROUP_ROOT", root.c_str(), 1), 0);

  const std::uint64_t phys =
      static_cast<std::uint64_t>(sysconf(_SC_PHYS_PAGES)) *
      static_cast<std::uint64_t>(sysconf(_SC_PAGE_SIZE));

  // cgroup v2: a 1 GiB limit.
  const std::uint64_t gib = std::uint64_t{1} << 30;
  { std::ofstream(root + "/memory.max") << gib << "\n"; }
  EXPECT_EQ(verify::cgroup_memory_limit_bytes(), gib);
  EXPECT_EQ(verify::default_memory_budget(), std::min(phys, gib) / 4 * 3);

  // cgroup v2 unlimited: budget falls back to physical RAM.
  { std::ofstream(root + "/memory.max") << "max\n"; }
  EXPECT_EQ(verify::cgroup_memory_limit_bytes(), 0u);
  EXPECT_EQ(verify::default_memory_budget(), phys / 4 * 3);

  // cgroup v1 fallback path.
  ASSERT_EQ(::unlink((root + "/memory.max").c_str()), 0);
  ASSERT_EQ(::mkdir((root + "/memory").c_str(), 0755), 0);
  const std::uint64_t half_gib = gib / 2;
  {
    std::ofstream(root + "/memory/memory.limit_in_bytes") << half_gib << "\n";
  }
  EXPECT_EQ(verify::cgroup_memory_limit_bytes(), half_gib);

  // cgroup v1 spells "no limit" as a near-2^63 page-rounded sentinel.
  {
    std::ofstream(root + "/memory/memory.limit_in_bytes")
        << "9223372036854771712\n";
  }
  EXPECT_EQ(verify::cgroup_memory_limit_bytes(), 0u);

  ASSERT_EQ(unsetenv("SSRING_CGROUP_ROOT"), 0);
  ::unlink((root + "/memory/memory.limit_in_bytes").c_str());
  ::rmdir((root + "/memory").c_str());
  ::rmdir(root.c_str());
}

TEST(PhaseBSelection, CheckerRunHonorsTheBudgetGuard) {
  // End to end: a run with an impossible budget throws the projected-
  // memory error instead of the old hard 2^33 cap, and a sweep-only run
  // (no convergence pass) is exempt.
  auto checker = verify::make_ssrmin_checker(3, 4);
  verify::CheckOptions options;
  options.memory_budget_bytes = 1;  // nothing fits in one byte
  EXPECT_THROW(checker.run(options), std::invalid_argument);
  options.check_convergence = false;
  EXPECT_NO_THROW(checker.run(options));
}

TEST(PhaseBSelection, MeasuredPeakReconcilesWithProjection) {
  // The projection is an upper bound for the mode actually run: measured
  // (resident) peak <= projected peak, for all three slim backends — the
  // spilled stream is disk, not RAM, and must stay out of measured peak.
  auto checker = verify::make_ssrmin_checker(4, 5);
  verify::CheckOptions options;
  for (PhaseBStorage storage :
       {PhaseBStorage::kCompressed, PhaseBStorage::kCsrFree,
        PhaseBStorage::kSpill}) {
    options.storage = storage;
    const verify::CheckReport report = checker.run(options);
    EXPECT_GT(report.stats.measured_peak_bytes, 0u);
    EXPECT_LE(report.stats.measured_peak_bytes,
              report.stats.projected_peak_bytes)
        << verify::to_string(storage);
    EXPECT_GT(report.stats.edge_count, 0u);
    if (storage == PhaseBStorage::kSpill) {
      EXPECT_GT(report.stats.spill_bytes, 0u);
      EXPECT_GT(report.stats.blocks_read, 0u);
      EXPECT_FALSE(report.stats.spill_path.empty());
    }
  }
}

}  // namespace
