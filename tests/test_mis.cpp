// Tests for the self-stabilizing MIS (local mutual inclusion on general
// topologies): rule semantics, exhaustive verification on several
// topologies via the graph model checker, randomized convergence, and the
// MIS => local-mutual-inclusion connection.
#include "graph/mis.hpp"

#include <gtest/gtest.h>

#include "graph/check.hpp"
#include "graph/cst.hpp"
#include "graph/protocol.hpp"
#include "graph/rounds.hpp"
#include "stabilizing/daemon.hpp"

namespace ssr::graph {
namespace {

MisConfig make_config(std::initializer_list<MisStatus> statuses) {
  MisConfig c;
  for (auto s : statuses) c.push_back(MisState{s});
  return c;
}

constexpr auto kOut = MisStatus::kOut;
constexpr auto kWait = MisStatus::kWait;
constexpr auto kIn = MisStatus::kIn;

TEST(MisRules, VolunteerWhenUncovered) {
  const Topology g = Topology::path(3);
  TurauMis mis(g);
  const MisConfig c = make_config({kOut, kOut, kOut});
  GraphEngine<TurauMis> engine(mis, c);
  // All three uncovered OUTs volunteer.
  EXPECT_EQ(engine.enabled_rule(0), TurauMis::kRuleVolunteer);
  EXPECT_EQ(engine.enabled_rule(1), TurauMis::kRuleVolunteer);
  EXPECT_EQ(engine.enabled_rule(2), TurauMis::kRuleVolunteer);
}

TEST(MisRules, CommitOnlyForSmallestWaitingNeighborhood) {
  const Topology g = Topology::path(3);
  TurauMis mis(g);
  GraphEngine<TurauMis> engine(mis, make_config({kWait, kWait, kWait}));
  EXPECT_EQ(engine.enabled_rule(0), TurauMis::kRuleCommit);
  EXPECT_EQ(engine.enabled_rule(1), kDisabled);  // 0 is a smaller WAIT
  EXPECT_EQ(engine.enabled_rule(2), kDisabled);  // 1 is a smaller WAIT
}

TEST(MisRules, RetreatBeatsCommit) {
  const Topology g = Topology::path(3);
  TurauMis mis(g);
  GraphEngine<TurauMis> engine(mis, make_config({kWait, kIn, kOut}));
  EXPECT_EQ(engine.enabled_rule(0), TurauMis::kRuleRetreat);
}

TEST(MisRules, LargerOfAdjacentInsYields) {
  const Topology g = Topology::path(3);
  TurauMis mis(g);
  GraphEngine<TurauMis> engine(mis, make_config({kIn, kIn, kOut}));
  EXPECT_EQ(engine.enabled_rule(0), kDisabled);  // smaller id keeps it
  EXPECT_EQ(engine.enabled_rule(1), TurauMis::kRuleYield);
}

TEST(MisPredicates, StableMisRecognized) {
  const Topology g = Topology::path(4);
  EXPECT_TRUE(is_stable_mis(g, make_config({kIn, kOut, kIn, kOut})));
  EXPECT_TRUE(is_stable_mis(g, make_config({kOut, kIn, kOut, kIn})));
  // Not dominating: node 3 uncovered.
  EXPECT_FALSE(is_stable_mis(g, make_config({kIn, kOut, kOut, kOut})));
  // Not independent.
  EXPECT_FALSE(is_stable_mis(g, make_config({kIn, kIn, kOut, kIn})));
  // Residual WAIT.
  EXPECT_FALSE(is_stable_mis(g, make_config({kIn, kOut, kWait, kIn})));
}

TEST(MisPredicates, LocalInclusionFromMis) {
  const Topology g = Topology::star(5);
  // Hub IN dominates everyone.
  std::vector<bool> active{true, false, false, false, false};
  EXPECT_TRUE(local_inclusion_holds(g, active));
  // Leaves IN dominate the hub and themselves.
  active = {false, true, true, true, true};
  EXPECT_TRUE(local_inclusion_holds(g, active));
  active = {false, true, false, false, false};
  EXPECT_FALSE(local_inclusion_holds(g, active));  // leaf 2 uncovered
}

struct TopoCase {
  std::string name;
  Topology topology;
};

std::vector<TopoCase> exhaustive_topologies() {
  Rng rng(5);
  std::vector<TopoCase> cases;
  cases.push_back({"ring5", Topology::ring(5)});
  cases.push_back({"path6", Topology::path(6)});
  cases.push_back({"star6", Topology::star(6)});
  cases.push_back({"complete5", Topology::complete(5)});
  cases.push_back({"grid2x3", Topology::grid(2, 3)});
  cases.push_back({"random7", Topology::random_connected(7, 0.3, rng)});
  return cases;
}

class MisExhaustive : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MisExhaustive, FixpointsAreExactlyStableMisAndAlwaysReached) {
  const TopoCase tc = exhaustive_topologies()[GetParam()];
  auto checker = make_mis_checker(tc.topology);
  const GraphCheckReport report = checker.run();
  EXPECT_TRUE(report.fixpoints_sound) << tc.name << ": " << report.summary();
  EXPECT_TRUE(report.fixpoints_complete) << tc.name;
  EXPECT_TRUE(report.convergence_holds) << tc.name;
  EXPECT_GT(report.silent_configs, 0u);
  EXPECT_EQ(report.silent_configs, report.legitimate_configs);
  EXPECT_GT(report.worst_case_steps, 0u);
}

INSTANTIATE_TEST_SUITE_P(Topologies, MisExhaustive,
                         ::testing::Range<std::size_t>(0, 6),
                         [](const ::testing::TestParamInfo<std::size_t>& param_info) {
                           return exhaustive_topologies()[param_info.param].name;
                         });

TEST(MisConvergence, RandomizedLargerGraphs) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const Topology g = Topology::random_connected(24, 0.15, rng);
    TurauMis mis(g);
    GraphEngine<TurauMis> engine(mis, random_config(g, rng));
    stab::RandomSubsetDaemon daemon{rng.split(), 0.5};
    const auto steps = run_to_silence(engine, daemon, 100000);
    ASSERT_TRUE(steps.has_value()) << "trial " << trial;
    EXPECT_TRUE(is_stable_mis(g, engine.config()));
    // The MIS is a dominating set: local mutual inclusion holds.
    std::vector<bool> active(g.size());
    for (std::size_t i = 0; i < g.size(); ++i) {
      active[i] = engine.config()[i].status == MisStatus::kIn;
    }
    EXPECT_TRUE(local_inclusion_holds(g, active));
  }
}

TEST(MisConvergence, SilentAfterStabilization) {
  Rng rng(13);
  const Topology g = Topology::grid(3, 4);
  TurauMis mis(g);
  GraphEngine<TurauMis> engine(mis, random_config(g, rng));
  stab::SynchronousDaemon daemon;
  const auto steps = run_to_silence(engine, daemon, 100000);
  ASSERT_TRUE(steps.has_value());
  // Once silent, stays silent (no enabled node).
  EXPECT_TRUE(engine.enabled_indices().empty());
  EXPECT_FALSE(engine.step_with(daemon));
}

TEST(MisConvergence, SingleFaultRecovers) {
  Rng rng(17);
  const Topology g = Topology::ring(9);
  TurauMis mis(g);
  GraphEngine<TurauMis> engine(mis, random_config(g, rng));
  stab::CentralRandomDaemon daemon{rng.split()};
  ASSERT_TRUE(run_to_silence(engine, daemon, 100000).has_value());
  for (int fault = 0; fault < 20; ++fault) {
    const auto victim = static_cast<std::size_t>(rng.below(g.size()));
    engine.corrupt(victim, MisState{static_cast<MisStatus>(rng.below(3))});
    const auto steps = run_to_silence(engine, daemon, 100000);
    ASSERT_TRUE(steps.has_value());
    EXPECT_TRUE(is_stable_mis(g, engine.config()));
  }
}

TEST(MisRounds, ConvergesUnderLossyWsnExecution) {
  // Reference [17]'s setting: synchronous rounds, lossy broadcast,
  // randomized firing. The MIS must reach a stable configuration with
  // coherent caches and then stay silent.
  Rng rng(23);
  for (auto [loss, exec_p] : {std::pair<double, double>{0.0, 1.0},
                              std::pair<double, double>{0.2, 0.8},
                              std::pair<double, double>{0.4, 0.5}}) {
    const Topology g = Topology::random_connected(12, 0.2, rng);
    TurauMis mis(g);
    msgpass::RoundParams params;
    params.loss = loss;
    params.exec_probability = exec_p;
    params.seed = rng();
    GraphRoundSimulation<TurauMis> sim(mis, random_config(g, rng), params);
    bool settled = false;
    for (std::uint64_t round = 0; round < 50000 && !settled; ++round) {
      sim.step();
      settled = sim.coherent() && is_stable_mis(g, sim.global_config());
    }
    ASSERT_TRUE(settled) << "loss=" << loss << " exec_p=" << exec_p;
    // Silent thereafter: the configuration never changes again.
    const MisConfig frozen = sim.global_config();
    for (int r = 0; r < 200; ++r) {
      sim.step();
      ASSERT_EQ(sim.global_config(), frozen) << "round +" << r;
    }
  }
}

TEST(MisRounds, RandomizedCachesRepaired) {
  Rng rng(29);
  const Topology g = Topology::grid(3, 3);
  TurauMis mis(g);
  msgpass::RoundParams params;
  params.loss = 0.3;
  params.seed = 7;
  GraphRoundSimulation<TurauMis> sim(mis, random_config(g, rng), params);
  sim.randomize_caches([&](Rng& r) {
    return MisState{static_cast<MisStatus>(r.below(3))};
  });
  bool settled = false;
  for (std::uint64_t round = 0; round < 50000 && !settled; ++round) {
    sim.step();
    settled = sim.coherent() && is_stable_mis(g, sim.global_config());
  }
  EXPECT_TRUE(settled);
}

GraphCstSimulation<TurauMis> make_mis_cst(const Topology& topo,
                                          MisConfig initial,
                                          msgpass::NetworkParams net) {
  TurauMis mis(topo);
  auto active = [](std::size_t, const MisState& self,
                   std::span<const MisState>) {
    return self.status == MisStatus::kIn;
  };
  return GraphCstSimulation<TurauMis>(std::move(mis), std::move(initial),
                                      active, net);
}

TEST(MisCst, EventDrivenMessagePassingStabilizes) {
  Rng rng(31);
  for (double loss : {0.0, 0.2}) {
    const Topology g = Topology::random_connected(10, 0.25, rng);
    msgpass::NetworkParams net;
    net.loss_probability = loss;
    net.seed = rng();
    auto sim = make_mis_cst(g, random_config(g, rng), net);
    bool settled = false;
    auto stop = [&g](const GraphCstSimulation<TurauMis>& s) {
      return s.coherent() && is_stable_mis(g, s.global_config());
    };
    sim.run_until(stop, 50000.0, &settled);
    ASSERT_TRUE(settled) << "loss=" << loss;
    // Silent + coherent: nothing ever changes again; local mutual
    // inclusion holds at every subsequent instant.
    const MisConfig frozen = sim.global_config();
    const auto stats = sim.run(500.0);
    EXPECT_EQ(sim.global_config(), frozen);
    EXPECT_EQ(stats.rule_executions, 0u);
    std::vector<bool> active(g.size());
    for (std::size_t i = 0; i < g.size(); ++i) {
      active[i] = frozen[i].status == MisStatus::kIn;
    }
    EXPECT_TRUE(local_inclusion_holds(g, active));
  }
}

TEST(MisCst, CorruptedCachesRepaired) {
  Rng rng(37);
  const Topology g = Topology::grid(2, 4);
  msgpass::NetworkParams net;
  net.loss_probability = 0.1;
  net.seed = 5;
  auto sim = make_mis_cst(g, random_config(g, rng), net);
  sim.randomize_caches([](Rng& r) {
    return MisState{static_cast<MisStatus>(r.below(3))};
  });
  bool settled = false;
  auto stop = [&g](const GraphCstSimulation<TurauMis>& s) {
    return s.coherent() && is_stable_mis(g, s.global_config());
  };
  sim.run_until(stop, 50000.0, &settled);
  EXPECT_TRUE(settled);
}

TEST(MisStatusNames, Distinct) {
  EXPECT_EQ(to_string(kOut), "OUT");
  EXPECT_EQ(to_string(kWait), "WAIT");
  EXPECT_EQ(to_string(kIn), "IN");
}

TEST(MisApply, RejectsWrongRule) {
  const Topology g = Topology::path(3);
  TurauMis mis(g);
  const MisConfig c = make_config({kOut, kOut, kOut});
  std::vector<MisState> neigh{c[1]};
  EXPECT_THROW(mis.apply(0, TurauMis::kRuleCommit, c[0], neigh),
               std::invalid_argument);
}

}  // namespace
}  // namespace ssr::graph
