// Serial-vs-sharded differential for the conservative parallel CST
// engine: every statistic the simulator produces — CoverageStats with its
// float fields compared bit-for-bit, final global configurations, token
// views, and the runtime::Telemetry JSON export — must be byte-identical
// at 1, 2 and 8 workers, across protocols (SSRmin / Dijkstra / dual),
// delay models, loss/duplication probabilities and scripted FaultPlan
// crash windows. This is the same determinism bar the model checker and
// TrialSweep are held to (PR 1 / PR 2), and it is what lets every bench
// or experiment flip NetworkParams::workers without re-baselining.
//
// Also runs under TSan in CI: the multi-worker runs double as a race
// detector for the shard boundaries (outbox exchange, per-node injector
// state, byte-granular flag arrays).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/legitimacy.hpp"
#include "graph/cst.hpp"
#include "graph/mis.hpp"
#include "graph/topology.hpp"
#include "msgpass/cst.hpp"
#include "msgpass/factories.hpp"
#include "runtime/telemetry.hpp"

namespace ssr::msgpass {
namespace {

constexpr std::size_t kWorkerCounts[] = {1, 2, 8};

NetworkParams base_net(std::uint64_t seed) {
  NetworkParams p;
  p.delay_min = 0.5;
  p.delay_max = 1.5;
  p.refresh_interval = 8.0;
  p.service_min = 0.4;
  p.service_max = 0.9;
  p.seed = seed;
  return p;
}

/// Everything one run produces, in exactly comparable form.
struct RunRecord {
  CoverageStats stats;
  Time now = 0.0;
  bool stopped = false;
  std::size_t holder_count = 0;
  std::vector<bool> token_view;
  std::string config;     ///< final global config, printed losslessly
  std::string telemetry;  ///< Telemetry JSON (empty if not recorded)
};

/// CoverageStats comparison. Doubles are compared with EXPECT_EQ on
/// purpose: the contract is byte-identity, not tolerance.
void expect_same(const RunRecord& ref, const RunRecord& got,
                 const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(ref.stats.observed_time, got.stats.observed_time);
  EXPECT_EQ(ref.stats.zero_token_time, got.stats.zero_token_time);
  EXPECT_EQ(ref.stats.zero_intervals, got.stats.zero_intervals);
  EXPECT_EQ(ref.stats.min_holders, got.stats.min_holders);
  EXPECT_EQ(ref.stats.max_holders, got.stats.max_holders);
  EXPECT_EQ(ref.stats.events, got.stats.events);
  EXPECT_EQ(ref.stats.deliveries, got.stats.deliveries);
  EXPECT_EQ(ref.stats.transmissions, got.stats.transmissions);
  EXPECT_EQ(ref.stats.losses, got.stats.losses);
  EXPECT_EQ(ref.stats.rule_executions, got.stats.rule_executions);
  EXPECT_EQ(ref.stats.crash_restarts, got.stats.crash_restarts);
  EXPECT_EQ(ref.stats.handovers, got.stats.handovers);
  EXPECT_EQ(ref.now, got.now);
  EXPECT_EQ(ref.stopped, got.stopped);
  EXPECT_EQ(ref.holder_count, got.holder_count);
  EXPECT_EQ(ref.token_view, got.token_view);
  EXPECT_EQ(ref.config, got.config);
  EXPECT_EQ(ref.telemetry, got.telemetry);
}

std::string print_config(const core::SsrConfig& config) {
  std::string out;
  for (const auto& s : config) {
    out += std::to_string(s.x) + (s.rts ? "R" : "r") + (s.tra ? "T" : "t") +
           ";";
  }
  return out;
}

std::string print_config(const std::vector<dijkstra::KStateLocal>& config) {
  std::string out;
  for (const auto& s : config) out += std::to_string(s.x) + ";";
  return out;
}

std::string print_config(const std::vector<dijkstra::DualLocal>& config) {
  std::string out;
  for (const auto& s : config) {
    out += std::to_string(s.a) + "/" + std::to_string(s.b) + ";";
  }
  return out;
}

/// Runs @p sim for @p duration, recording telemetry when @p telemetry.
template <typename Sim>
RunRecord run_fixed(Sim& sim, Time duration, bool telemetry) {
  RunRecord rec;
  runtime::Telemetry t(sim.size());
  if (telemetry) {
    t.set_context("cst-parallel-test", "cst", 1);
    sim.set_observer([&t](Time from, Time /*to*/,
                          const std::vector<bool>& holders) {
      t.observe(from * 1000.0, holders);
    });
  }
  rec.stats = sim.run(duration);
  if (telemetry) {
    t.finish(sim.fault_clock_us());
    t.set_aggregates(rec.stats.transmissions, rec.stats.losses,
                     rec.stats.deliveries, rec.stats.rule_executions);
    rec.telemetry = t.to_json_string();
  }
  rec.now = sim.now();
  rec.holder_count = sim.holder_count();
  rec.token_view = sim.token_view();
  rec.config = print_config(sim.global_config());
  return rec;
}

void run_ssrmin_scenario(const NetworkParams& base, Time duration,
                         bool randomize, bool telemetry,
                         const std::string& label) {
  core::SsrMinRing ring(11, 12);
  RunRecord ref;
  for (std::size_t w : kWorkerCounts) {
    NetworkParams net = base;
    net.workers = w;
    auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0), net);
    EXPECT_EQ(sim.workers(), w);
    if (randomize) {
      sim.randomize_caches([](Rng& r) {
        core::SsrState s;
        s.x = static_cast<std::uint32_t>(r.below(12));
        s.rts = r.bernoulli(0.5);
        s.tra = r.bernoulli(0.5);
        return s;
      });
    }
    RunRecord rec = run_fixed(sim, duration, telemetry);
    if (w == kWorkerCounts[0]) {
      ref = rec;
      // The reference run must have actually simulated something.
      EXPECT_GT(ref.stats.events, 0u);
    } else {
      expect_same(ref, rec, label + " workers=" + std::to_string(w));
    }
  }
}

TEST(CstParallel, SsrMinFaultFree) {
  run_ssrmin_scenario(base_net(21), 400.0, false, false, "fault-free");
}

TEST(CstParallel, SsrMinLossAndDuplication) {
  NetworkParams net = base_net(22);
  net.loss_probability = 0.15;
  net.duplicate_probability = 0.1;
  run_ssrmin_scenario(net, 600.0, true, false, "loss+dup");
}

TEST(CstParallel, SsrMinExponentialTailDelays) {
  NetworkParams net = base_net(23);
  net.delay_model = DelayModel::kExponentialTail;
  net.delay_max = 3.0;
  run_ssrmin_scenario(net, 400.0, true, false, "exp-tail");
}

TEST(CstParallel, SsrMinFaultPlanWithCrashWindows) {
  // microseconds_per_tick = 1000, so tick t is millisecond t on the fault
  // clock: two crash windows, a pause and background probabilistic faults
  // all land inside the 600-tick run.
  NetworkParams net = base_net(24);
  net.loss_probability = 0.05;
  net.fault_plan = runtime::FaultPlan::parse(
      "drop=0.05;dup=0.03;reorder=0.02;"
      "crash@100ms-140ms:node=3;crash@250ms-300ms:node=7;"
      "pause@400ms-430ms:node=0;burst@480ms-500ms");
  run_ssrmin_scenario(net, 600.0, true, false, "fault-plan");
}

TEST(CstParallel, TelemetryJsonByteIdentical) {
  NetworkParams net = base_net(25);
  net.loss_probability = 0.1;
  net.fault_plan =
      runtime::FaultPlan::parse("crash@120ms-170ms:node=5;drop=0.04");
  run_ssrmin_scenario(net, 500.0, true, true, "telemetry");
}

TEST(CstParallel, DijkstraKStateWithLoss) {
  dijkstra::KStateRing ring(11, 12);
  NetworkParams base = base_net(26);
  base.loss_probability = 0.2;
  RunRecord ref;
  for (std::size_t w : kWorkerCounts) {
    NetworkParams net = base;
    net.workers = w;
    auto sim = make_kstate_cst(ring, dijkstra::KStateConfig(11), net);
    sim.randomize_caches([](Rng& r) {
      dijkstra::KStateLocal s;
      s.x = static_cast<std::uint32_t>(r.below(12));
      return s;
    });
    RunRecord rec = run_fixed(sim, 500.0, false);
    if (w == kWorkerCounts[0]) {
      ref = rec;
      EXPECT_GT(ref.stats.events, 0u);
    } else {
      expect_same(ref, rec, "dijkstra workers=" + std::to_string(w));
    }
  }
}

TEST(CstParallel, DualDijkstra) {
  dijkstra::DualKStateRing ring(10, 11);
  RunRecord ref;
  for (std::size_t w : kWorkerCounts) {
    NetworkParams net = base_net(27);
    net.loss_probability = 0.1;
    net.workers = w;
    auto sim = make_dual_cst(ring, dijkstra::DualConfig(10), net);
    RunRecord rec = run_fixed(sim, 400.0, false);
    if (w == kWorkerCounts[0]) {
      ref = rec;
      EXPECT_GT(ref.stats.events, 0u);
    } else {
      expect_same(ref, rec, "dual workers=" + std::to_string(w));
    }
  }
}

TEST(CstParallel, RunUntilStopsAtTheSameRound) {
  // run_until evaluates its predicate at round horizons, which are a
  // function of event times only — so the stop instant (and the partial
  // stats) must also be worker-count-independent.
  core::SsrMinRing ring(9, 10);
  RunRecord ref;
  for (std::size_t w : kWorkerCounts) {
    NetworkParams net = base_net(28);
    net.loss_probability = 0.25;
    net.workers = w;
    auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0), net);
    sim.randomize_caches([](Rng& r) {
      core::SsrState s;
      s.x = static_cast<std::uint32_t>(r.below(10));
      s.rts = r.bernoulli(0.5);
      s.tra = r.bernoulli(0.5);
      return s;
    });
    RunRecord rec;
    auto stop = [&ring](const CstSimulation<core::SsrMinRing>& s) {
      return s.coherent() && core::is_legitimate(ring, s.global_config());
    };
    rec.stats = sim.run_until(stop, 50000.0, &rec.stopped);
    rec.now = sim.now();
    rec.holder_count = sim.holder_count();
    rec.token_view = sim.token_view();
    rec.config = print_config(sim.global_config());
    if (w == kWorkerCounts[0]) {
      ref = rec;
      EXPECT_TRUE(ref.stopped);
      EXPECT_LT(ref.now, 50000.0);
    } else {
      expect_same(ref, rec, "run_until workers=" + std::to_string(w));
    }
  }
}

TEST(CstParallel, ConsecutiveWindowsStayAligned) {
  // Multiple run() windows on one simulation: per-window stats and the
  // carried-over engine state must stay identical, not just a single shot.
  core::SsrMinRing ring(10, 11);
  std::vector<RunRecord> ref;
  for (std::size_t w : kWorkerCounts) {
    NetworkParams net = base_net(29);
    net.loss_probability = 0.1;
    net.duplicate_probability = 0.05;
    net.workers = w;
    auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0), net);
    std::vector<RunRecord> windows;
    for (int k = 0; k < 3; ++k) windows.push_back(run_fixed(sim, 150.0, false));
    if (w == kWorkerCounts[0]) {
      ref = windows;
    } else {
      for (std::size_t k = 0; k < ref.size(); ++k) {
        expect_same(ref[k], windows[k],
                    "window " + std::to_string(k) + " workers=" +
                        std::to_string(w));
      }
    }
  }
}

TEST(CstParallel, WorkerCountIsClampedToRingSize) {
  core::SsrMinRing ring(4, 5);
  NetworkParams net = base_net(30);
  net.workers = 64;
  auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0), net);
  EXPECT_EQ(sim.workers(), 4u);
  net.workers = 0;  // hardware concurrency, >= 1 and clamped to n
  auto sim0 = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0), net);
  EXPECT_GE(sim0.workers(), 1u);
  EXPECT_LE(sim0.workers(), 4u);
}

}  // namespace
}  // namespace ssr::msgpass

namespace ssr::graph {
namespace {

TEST(CstParallel, GraphMisDifferential) {
  Rng rng(31);
  const Topology g = Topology::random_connected(20, 0.2, rng);
  TurauMis mis(g);
  MisConfig initial;
  for (std::size_t i = 0; i < g.size(); ++i) {
    initial.push_back(MisState{static_cast<MisStatus>(rng.below(3))});
  }
  auto active = [](std::size_t, const MisState& self,
                   std::span<const MisState>) {
    return self.status == MisStatus::kIn;
  };
  struct GraphRecord {
    msgpass::CoverageStats stats;
    msgpass::Time now = 0.0;
    std::size_t active_count = 0;
    std::vector<bool> view;
    MisConfig config;
  };
  GraphRecord ref;
  for (std::size_t w : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    msgpass::NetworkParams net;
    net.loss_probability = 0.15;
    net.seed = 33;
    net.workers = w;
    GraphCstSimulation<TurauMis> sim(mis, initial, active, net);
    EXPECT_EQ(sim.workers(), w);
    GraphRecord rec;
    rec.stats = sim.run(400.0);
    rec.now = sim.now();
    rec.active_count = sim.active_count();
    rec.view = sim.active_view();
    rec.config = sim.global_config();
    if (w == 1) {
      ref = rec;
      EXPECT_GT(ref.stats.events, 0u);
    } else {
      SCOPED_TRACE("graph workers=" + std::to_string(w));
      EXPECT_EQ(ref.stats.observed_time, rec.stats.observed_time);
      EXPECT_EQ(ref.stats.zero_token_time, rec.stats.zero_token_time);
      EXPECT_EQ(ref.stats.events, rec.stats.events);
      EXPECT_EQ(ref.stats.deliveries, rec.stats.deliveries);
      EXPECT_EQ(ref.stats.transmissions, rec.stats.transmissions);
      EXPECT_EQ(ref.stats.losses, rec.stats.losses);
      EXPECT_EQ(ref.stats.rule_executions, rec.stats.rule_executions);
      EXPECT_EQ(ref.stats.handovers, rec.stats.handovers);
      EXPECT_EQ(ref.stats.min_holders, rec.stats.min_holders);
      EXPECT_EQ(ref.stats.max_holders, rec.stats.max_holders);
      EXPECT_EQ(ref.now, rec.now);
      EXPECT_EQ(ref.active_count, rec.active_count);
      EXPECT_EQ(ref.view, rec.view);
      EXPECT_EQ(ref.config, rec.config);
    }
  }
}

}  // namespace
}  // namespace ssr::graph
