// Tests for trace recording and Figure-4-style formatting.
#include "stabilizing/trace.hpp"

#include <gtest/gtest.h>

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "dijkstra/kstate.hpp"
#include "stabilizing/daemon.hpp"

namespace ssr::stab {
namespace {

TEST(TraceRecorder, RecordsRequestedSteps) {
  dijkstra::KStateRing ring(4, 5);
  dijkstra::KStateConfig init(4);  // all zero: legitimate, P0 enabled
  Engine<dijkstra::KStateRing> engine(ring, init);
  CentralRoundRobinDaemon daemon;
  TraceRecorder<dijkstra::KStateRing> rec;
  rec.run(engine, daemon, 8);
  // 8 stepped entries + the final configuration entry.
  ASSERT_EQ(rec.entries().size(), 9u);
  for (std::size_t t = 0; t < 8; ++t) {
    EXPECT_EQ(rec.entries()[t].selected.size(), 1u) << "step " << t;
    EXPECT_EQ(rec.entries()[t].rules.size(), 1u);
  }
  EXPECT_TRUE(rec.entries().back().selected.empty());
}

TEST(TraceRecorder, ConfigIsPreStepSnapshot) {
  dijkstra::KStateRing ring(3, 4);
  dijkstra::KStateConfig init(3);
  Engine<dijkstra::KStateRing> engine(ring, init);
  CentralRoundRobinDaemon daemon;
  TraceRecorder<dijkstra::KStateRing> rec;
  rec.run(engine, daemon, 1);
  ASSERT_EQ(rec.entries().size(), 2u);
  EXPECT_EQ(rec.entries()[0].config[0].x, 0u);  // before the bottom moved
  EXPECT_EQ(rec.entries()[1].config[0].x, 1u);  // after
}

TEST(FormatTrace, ProducesHeaderAndCells) {
  core::SsrMinRing ring(5, 6);
  Engine<core::SsrMinRing> engine(ring, core::canonical_legitimate(ring, 3));
  CentralRoundRobinDaemon daemon;
  TraceRecorder<core::SsrMinRing> rec;
  rec.run(engine, daemon, 3);
  const std::string out =
      format_trace<core::SsrMinRing>(rec.entries(), core::trace_style(ring));
  EXPECT_NE(out.find("Step"), std::string::npos);
  EXPECT_NE(out.find("P0"), std::string::npos);
  EXPECT_NE(out.find("P4"), std::string::npos);
  // Figure 4 step 1 cell for P0: state 3.0.1, both tokens, Rule 1 enabled.
  EXPECT_NE(out.find("3.0.1PS/1"), std::string::npos);
}

TEST(FormatTrace, EmptyTraceRendersEmpty) {
  const std::vector<TraceEntry<core::SsrMinRing>> empty;
  core::SsrMinRing ring(5, 6);
  EXPECT_EQ(format_trace<core::SsrMinRing>(empty, core::trace_style(ring)),
            "");
}

TEST(FormatTrace, AnnotationlessStyleWorks) {
  dijkstra::KStateRing ring(3, 4);
  Engine<dijkstra::KStateRing> engine(ring, dijkstra::KStateConfig(3));
  CentralRoundRobinDaemon daemon;
  TraceRecorder<dijkstra::KStateRing> rec;
  rec.run(engine, daemon, 2);
  TraceStyle<dijkstra::KStateLocal> bare;
  bare.format_state = [](const dijkstra::KStateLocal& s) {
    return std::to_string(s.x);
  };
  EXPECT_NO_THROW(format_trace<dijkstra::KStateRing>(rec.entries(), bare));
}

TEST(TraceRecorder, ClearResets) {
  dijkstra::KStateRing ring(3, 4);
  Engine<dijkstra::KStateRing> engine(ring, dijkstra::KStateConfig(3));
  CentralRoundRobinDaemon daemon;
  TraceRecorder<dijkstra::KStateRing> rec;
  rec.run(engine, daemon, 2);
  EXPECT_FALSE(rec.entries().empty());
  rec.clear();
  EXPECT_TRUE(rec.entries().empty());
}

}  // namespace
}  // namespace ssr::stab
