// Differential tests for the incremental enabled-set cache in stab::Engine.
//
// The engine maintains the enabled set in O(k) per step by exploiting the
// RingProtocol locality contract (guards read only pred/self/succ). These
// tests drive SSRmin and Dijkstra rings through thousands of randomly
// daemon-selected steps — plus corrupt() faults and reset()s — and after
// every mutation compare the cache against an independent naive full scan
// (scan_rule), the pre-incremental oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/ssrmin.hpp"
#include "dijkstra/kstate.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"
#include "util/rng.hpp"

namespace ssr::stab {
namespace {

// Independent oracle: rebuilds the enabled set from scratch with
// scan_rule and compares every per-process rule and the sorted index/rule
// lists against the cache. Deliberately does not reuse
// enabled_cache_consistent() alone, so a bug in that helper cannot mask a
// cache bug.
template <RingProtocol P>
::testing::AssertionResult cache_matches_full_scan(const Engine<P>& engine) {
  std::vector<std::size_t> indices;
  std::vector<int> rules;
  for (std::size_t i = 0; i < engine.size(); ++i) {
    const int r = engine.scan_rule(i);
    if (engine.enabled_rule(i) != r) {
      return ::testing::AssertionFailure()
             << "rule cache stale at process " << i << ": cached "
             << engine.enabled_rule(i) << ", fresh scan " << r;
    }
    if (r != kDisabled) {
      indices.push_back(i);
      rules.push_back(r);
    }
  }
  if (engine.enabled_indices() != indices) {
    return ::testing::AssertionFailure() << "enabled index list diverged";
  }
  const EnabledView view = engine.enabled_view();
  if (view.indices.size() != indices.size() || view.ring_size != engine.size()) {
    return ::testing::AssertionFailure() << "enabled_view shape diverged";
  }
  for (std::size_t k = 0; k < indices.size(); ++k) {
    if (view.indices[k] != indices[k] || view.rules[k] != rules[k]) {
      return ::testing::AssertionFailure()
             << "enabled_view entry " << k << " diverged";
    }
  }
  if (!engine.enabled_cache_consistent()) {
    return ::testing::AssertionFailure()
           << "enabled_cache_consistent() is false";
  }
  return ::testing::AssertionSuccess();
}

// Drives the engine with randomly chosen daemons, random corrupt() faults
// and occasional reset()s, checking the cache after every mutation.
template <RingProtocol P, typename RandomState>
void differential_run(const P& protocol, Rng rng, RandomState&& random_state,
                      int steps) {
  typename Engine<P>::Configuration initial;
  for (std::size_t i = 0; i < protocol.size(); ++i) {
    initial.push_back(random_state(rng));
  }
  Engine<P> engine(protocol, std::move(initial));
  ASSERT_TRUE(cache_matches_full_scan(engine));

  const std::vector<std::string> daemon_names{
      "central-random", "distributed-synchronous",
      "distributed-random-subset", "adversary-max-index"};
  std::vector<std::unique_ptr<Daemon>> daemons;
  for (const auto& name : daemon_names) {
    daemons.push_back(make_daemon(name, rng.split()));
  }

  for (int t = 0; t < steps; ++t) {
    const std::uint64_t action = rng.below(100);
    if (action < 4) {
      // Single-process transient fault.
      const std::size_t i = rng.below(engine.size());
      engine.corrupt(i, random_state(rng));
    } else if (action < 6) {
      // Full configuration replacement.
      typename Engine<P>::Configuration c;
      for (std::size_t i = 0; i < engine.size(); ++i) {
        c.push_back(random_state(rng));
      }
      engine.reset(std::move(c));
    } else {
      Daemon& daemon = *daemons[rng.below(daemons.size())];
      if (!engine.step_with(daemon)) {
        // Deadlock would falsify the paper's no-deadlock lemma for these
        // protocols; re-randomize instead of spinning.
        typename Engine<P>::Configuration c;
        for (std::size_t i = 0; i < engine.size(); ++i) {
          c.push_back(random_state(rng));
        }
        engine.reset(std::move(c));
      }
    }
    ASSERT_TRUE(cache_matches_full_scan(engine)) << "after mutation " << t;
  }
}

TEST(EngineIncremental, DifferentialSsrMinRings) {
  for (std::size_t n : {3, 4, 7, 12}) {
    const core::SsrMinRing ring(n, static_cast<std::uint32_t>(n + 1));
    differential_run(
        ring, Rng(1000 + n),
        [&ring](Rng& rng) {
          return core::random_config(ring, rng)[0];
        },
        1500);
  }
}

TEST(EngineIncremental, DifferentialDijkstraRings) {
  for (std::size_t n : {2, 3, 5, 9}) {
    const dijkstra::KStateRing ring(n, static_cast<std::uint32_t>(n + 1));
    differential_run(
        ring, Rng(2000 + n),
        [&ring](Rng& rng) {
          return dijkstra::KStateLocal{
              static_cast<std::uint32_t>(rng.below(ring.modulus()))};
        },
        1500);
  }
}

TEST(EngineIncremental, DebugScanChecksAcceptHonestSteps) {
  const dijkstra::KStateRing ring(5, 6);
  Engine<dijkstra::KStateRing> engine(
      ring, {dijkstra::KStateLocal{3}, dijkstra::KStateLocal{1},
             dijkstra::KStateLocal{4}, dijkstra::KStateLocal{1},
             dijkstra::KStateLocal{5}});
  engine.set_debug_scan_checks(true);
  Rng rng(7);
  auto daemon = make_daemon("central-random", rng.split());
  for (int t = 0; t < 200; ++t) {
    ASSERT_TRUE(engine.step_with(*daemon));
  }
  EXPECT_EQ(engine.steps(), 200u);
}

TEST(EngineIncremental, EnabledIndicesIsAllocationFreeReference) {
  const dijkstra::KStateRing ring(4, 5);
  Engine<dijkstra::KStateRing> engine(
      ring, {dijkstra::KStateLocal{2}, dijkstra::KStateLocal{0},
             dijkstra::KStateLocal{0}, dijkstra::KStateLocal{0}});
  // Same persistent cache object on every call — no per-call allocation.
  EXPECT_EQ(&engine.enabled_indices(), &engine.enabled_indices());
  EXPECT_EQ(engine.enabled_count(), engine.enabled_indices().size());
}

TEST(EngineIncremental, StepAcceptsAliasedEnabledIndices) {
  // Synchronous schedule written the natural way: select everything the
  // engine says is enabled, passing the engine's own cached vector back
  // into step(). The step rewrites that cache, so this exercises the
  // documented aliasing guarantee.
  const dijkstra::KStateRing ring(6, 7);
  Engine<dijkstra::KStateRing> engine(
      ring, {dijkstra::KStateLocal{3}, dijkstra::KStateLocal{0},
             dijkstra::KStateLocal{6}, dijkstra::KStateLocal{2},
             dijkstra::KStateLocal{2}, dijkstra::KStateLocal{5}});
  engine.set_debug_scan_checks(true);
  for (int t = 0; t < 100 && engine.enabled_count() > 0; ++t) {
    engine.step(engine.enabled_indices());
    ASSERT_TRUE(engine.enabled_cache_consistent());
  }
  // The Dijkstra ring must still hold exactly one token once legitimate;
  // either way the cache stayed coherent throughout.
  EXPECT_TRUE(engine.enabled_cache_consistent());
}

TEST(EngineIncremental, CorruptRepairsOnlyNeighborhoodButStaysGlobal) {
  const core::SsrMinRing ring(8, 9);
  Rng rng(31);
  Engine<core::SsrMinRing> engine(ring, core::random_config(ring, rng));
  for (int t = 0; t < 300; ++t) {
    const std::size_t i = rng.below(engine.size());
    auto fault = core::random_config(ring, rng)[i];
    engine.corrupt(i, fault);
    ASSERT_TRUE(cache_matches_full_scan(engine)) << "after corrupt " << t;
  }
}

TEST(EngineIncremental, ResetRebuildsCache) {
  const dijkstra::KStateRing ring(5, 6);
  Engine<dijkstra::KStateRing> engine(
      ring, {dijkstra::KStateLocal{0}, dijkstra::KStateLocal{0},
             dijkstra::KStateLocal{0}, dijkstra::KStateLocal{0},
             dijkstra::KStateLocal{0}});
  Rng rng(41);
  for (int t = 0; t < 50; ++t) {
    std::vector<dijkstra::KStateLocal> c;
    for (std::size_t i = 0; i < engine.size(); ++i) {
      c.push_back(
          dijkstra::KStateLocal{static_cast<std::uint32_t>(rng.below(6))});
    }
    engine.reset(std::move(c));
    ASSERT_TRUE(cache_matches_full_scan(engine));
  }
}

}  // namespace
}  // namespace ssr::stab
