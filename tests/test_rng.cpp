// Unit tests for the deterministic PRNG substrate.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <numeric>
#include <vector>

namespace ssr {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentSequences) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 90);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBound> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBound)];
  // Each bucket expects 10000; allow +-6% (far beyond 5 sigma).
  for (int c : counts) {
    EXPECT_GT(c, 9400);
    EXPECT_LT(c, 10600);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeSingleton) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.range(5, 5), 5);
}

TEST(Rng, RangeRejectsInverted) {
  Rng rng(3);
  EXPECT_THROW(rng.range(2, 1), std::invalid_argument);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(12);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(8);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kDraws, 4.0, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(8);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(77);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitGoldenValues) {
  // Pins the exact child streams of split() so the derivation documented
  // in rng.hpp (parent draw XOR the golden-ratio gamma, expanded through
  // splitmix64) can never silently change: archived experiment outputs
  // seeded through split() depend on these values.
  Rng parent(77);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  const std::uint64_t c1a = child1();
  const std::uint64_t c1b = child1();
  const std::uint64_t c2a = child2();
  const std::uint64_t c2b = child2();
  EXPECT_EQ(c1a, 10033645877983962903ULL);
  EXPECT_EQ(c1b, 3382699647230552330ULL);
  EXPECT_EQ(c2a, 6794363092842912903ULL);
  EXPECT_EQ(c2b, 12685241977874229872ULL);
}

TEST(Rng, SplitMatchesDocumentedDerivation) {
  // split() must equal Rng(parent_draw ^ 0x9e3779b97f4a7c15), per the
  // contract in rng.hpp.
  Rng parent(123);
  Rng reference(123);
  const std::uint64_t draw = reference();
  Rng expected(draw ^ 0x9e3779b97f4a7c15ULL);
  Rng child = parent.split();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child(), expected());
  // The parent advanced by exactly one draw.
  EXPECT_EQ(parent(), reference());
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(13);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
  EXPECT_NE(v, original);  // 50! permutations; identity is (essentially) impossible
}

TEST(Rng, ShuffleHandlesSmallContainers) {
  Rng rng(13);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, ShuffleUniformOverSmallPermutations) {
  Rng rng(21);
  std::map<std::array<int, 3>, int> counts;
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    std::array<int, 3> a{0, 1, 2};
    rng.shuffle(a);
    ++counts[a];
  }
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [perm, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 1.0 / 6.0, 0.01);
  }
}

TEST(Splitmix, KnownFixedpointFree) {
  // splitmix64 must expand a zero seed into nonzero state words.
  std::uint64_t s = 0;
  const std::uint64_t w1 = splitmix64_next(s);
  const std::uint64_t w2 = splitmix64_next(s);
  EXPECT_NE(w1, 0u);
  EXPECT_NE(w2, 0u);
  EXPECT_NE(w1, w2);
}

}  // namespace
}  // namespace ssr
