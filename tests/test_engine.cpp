// Tests for the composite-atomicity execution engine, driven with the
// Dijkstra K-state protocol as the concrete workload.
#include "stabilizing/engine.hpp"

#include <gtest/gtest.h>

#include "dijkstra/kstate.hpp"
#include "stabilizing/daemon.hpp"

namespace ssr::stab {
namespace {

using dijkstra::KStateConfig;
using dijkstra::KStateLocal;
using dijkstra::KStateRing;

KStateConfig make_config(std::initializer_list<std::uint32_t> xs) {
  KStateConfig c;
  for (auto x : xs) c.push_back(KStateLocal{x});
  return c;
}

TEST(Engine, RejectsSizeMismatch) {
  KStateRing ring(4, 5);
  EXPECT_THROW(Engine<KStateRing>(ring, make_config({0, 0, 0})),
               std::invalid_argument);
}

TEST(Engine, EnabledSetMatchesGuards) {
  KStateRing ring(4, 5);
  // (2, 0, 0, 0): P0 disabled (x0 != x3), P1 enabled (x1 != x0).
  Engine<KStateRing> engine(ring, make_config({2, 0, 0, 0}));
  EXPECT_EQ(engine.enabled_rule(0), kDisabled);
  EXPECT_EQ(engine.enabled_rule(1), KStateRing::kRule);
  EXPECT_EQ(engine.enabled_rule(2), kDisabled);
  EXPECT_EQ(engine.enabled_rule(3), kDisabled);
  EXPECT_EQ(engine.enabled_indices(), std::vector<std::size_t>{1});
}

TEST(Engine, StepAppliesCommand) {
  KStateRing ring(4, 5);
  Engine<KStateRing> engine(ring, make_config({2, 0, 0, 0}));
  const std::vector<std::size_t> sel{1};
  auto rules = engine.step(sel);
  EXPECT_EQ(rules, std::vector<int>{KStateRing::kRule});
  EXPECT_EQ(engine.config()[1].x, 2u);
  EXPECT_EQ(engine.steps(), 1u);
  EXPECT_EQ(engine.moves(), 1u);
}

TEST(Engine, BottomIncrementsModK) {
  KStateRing ring(3, 4);
  Engine<KStateRing> engine(ring, make_config({3, 3, 3}));
  ASSERT_EQ(engine.enabled_rule(0), KStateRing::kRule);
  const std::vector<std::size_t> sel{0};
  engine.step(sel);
  EXPECT_EQ(engine.config()[0].x, 0u);  // (3 + 1) mod 4
}

TEST(Engine, CompositeAtomicityReadsPreStepStates) {
  KStateRing ring(4, 5);
  // (1, 0, 0, 0): P1 enabled; P0 also? x0=1 vs x3=0 -> bottom guard is
  // equality -> disabled. Make two enabled: (1, 0, 1, 1): P1 (0!=1) and
  // P3? x3=1, x2=1 -> disabled. P2: 1!=0 enabled. P0: x0=1,x3=1 -> enabled.
  Engine<KStateRing> engine(ring, make_config({1, 0, 1, 1}));
  auto enabled = engine.enabled_indices();
  ASSERT_EQ(enabled, (std::vector<std::size_t>{0, 1, 2}));
  // Move P1 and P2 simultaneously: both must read pre-step neighbors.
  const std::vector<std::size_t> sel{1, 2};
  engine.step(sel);
  // P1 copies old x0 = 1; P2 copies old x1 = 0 (not P1's new value).
  EXPECT_EQ(engine.config()[1].x, 1u);
  EXPECT_EQ(engine.config()[2].x, 0u);
  EXPECT_EQ(engine.moves(), 2u);
  EXPECT_EQ(engine.steps(), 1u);
}

TEST(Engine, StepRejectsDisabledProcess) {
  KStateRing ring(4, 5);
  Engine<KStateRing> engine(ring, make_config({2, 0, 0, 0}));
  const std::vector<std::size_t> sel{2};
  EXPECT_THROW(engine.step(sel), std::invalid_argument);
}

TEST(Engine, StepRejectsEmptySelection) {
  KStateRing ring(4, 5);
  Engine<KStateRing> engine(ring, make_config({2, 0, 0, 0}));
  const std::vector<std::size_t> sel{};
  EXPECT_THROW(engine.step(sel), std::invalid_argument);
}

TEST(Engine, StepRejectsOutOfRangeIndex) {
  KStateRing ring(4, 5);
  Engine<KStateRing> engine(ring, make_config({2, 0, 0, 0}));
  const std::vector<std::size_t> sel{9};
  EXPECT_THROW(engine.step(sel), std::invalid_argument);
}

TEST(Engine, CorruptInjectsTransientFault) {
  KStateRing ring(4, 5);
  Engine<KStateRing> engine(ring, make_config({0, 0, 0, 0}));
  engine.corrupt(2, KStateLocal{4});
  EXPECT_EQ(engine.config()[2].x, 4u);
  EXPECT_THROW(engine.corrupt(7, KStateLocal{0}), std::invalid_argument);
}

TEST(Engine, ResetReplacesConfiguration) {
  KStateRing ring(3, 4);
  Engine<KStateRing> engine(ring, make_config({0, 0, 0}));
  engine.reset(make_config({1, 2, 3}));
  EXPECT_EQ(engine.config()[2].x, 3u);
  EXPECT_THROW(engine.reset(make_config({1, 2})), std::invalid_argument);
}

TEST(Engine, StepWithDaemonAdvances) {
  KStateRing ring(4, 5);
  Engine<KStateRing> engine(ring, make_config({3, 1, 4, 1}));
  CentralRandomDaemon daemon{Rng(7)};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.step_with(daemon));  // K-state ring never deadlocks
  }
  EXPECT_EQ(engine.steps(), 10u);
}

TEST(RunUntil, StopsAtPredicate) {
  KStateRing ring(5, 6);
  Rng rng(11);
  Engine<KStateRing> engine(ring, dijkstra::random_config(ring, rng));
  CentralRandomDaemon daemon{Rng(8)};
  auto legit = [&ring](const KStateConfig& c) {
    return dijkstra::is_legitimate(ring, c);
  };
  const RunResult result = run_until(engine, daemon, legit, 100000);
  EXPECT_TRUE(result.reached);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_TRUE(dijkstra::is_legitimate(ring, engine.config()));
}

TEST(RunUntil, ZeroStepSuccessWhenAlreadySatisfied) {
  KStateRing ring(3, 4);
  Engine<KStateRing> engine(ring, make_config({0, 0, 0}));
  CentralRoundRobinDaemon daemon;
  auto legit = [&ring](const KStateConfig& c) {
    return dijkstra::is_legitimate(ring, c);
  };
  const RunResult result = run_until(engine, daemon, legit, 100);
  EXPECT_TRUE(result.reached);
  EXPECT_EQ(result.steps, 0u);
}

/// A deliberately terminating protocol (one shot per process) to exercise
/// the engine's deadlock reporting, which the paper's protocols never
/// trigger (Lemma 4).
struct OneShotRing {
  struct State {
    bool fired = false;
    friend bool operator==(const State&, const State&) = default;
  };
  std::size_t n = 3;
  std::size_t size() const { return n; }
  int enabled_rule(std::size_t, const State& self, const State&,
                   const State&) const {
    return self.fired ? kDisabled : 1;
  }
  State apply(std::size_t, int, const State&, const State&,
              const State&) const {
    return State{true};
  }
};

TEST(Engine, DeadlockReportedWhenNothingEnabled) {
  Engine<OneShotRing> engine(OneShotRing{}, std::vector<OneShotRing::State>(3));
  SynchronousDaemon daemon;
  EXPECT_TRUE(engine.step_with(daemon));   // everyone fires once
  EXPECT_FALSE(engine.step_with(daemon));  // silent now
  auto never = [](const std::vector<OneShotRing::State>&) { return false; };
  const RunResult result = run_until(engine, daemon, never, 100);
  EXPECT_TRUE(result.deadlocked);
  EXPECT_FALSE(result.reached);
}

TEST(RunUntil, BudgetExhaustionReportsNotReached) {
  KStateRing ring(3, 4);
  Engine<KStateRing> engine(ring, make_config({0, 0, 0}));
  CentralRoundRobinDaemon daemon;
  auto never = [](const KStateConfig&) { return false; };
  const RunResult result = run_until(engine, daemon, never, 25);
  EXPECT_FALSE(result.reached);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.steps, 25u);
}

}  // namespace
}  // namespace ssr::stab
