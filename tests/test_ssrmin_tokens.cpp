// Token-predicate tests for SSRmin: Lemma 2 (exactly one primary and one
// secondary token in every legitimate configuration), Lemma 3 (a primary
// token exists in *every* configuration), and the [1, 2] privileged bound
// of Theorem 1.
#include <gtest/gtest.h>

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"

namespace ssr::core {
namespace {

SsrState make_state(std::uint32_t x, int rts, int tra) {
  return SsrState{x, rts != 0, tra != 0};
}

TEST(PrimaryToken, EqualsDijkstraGuard) {
  SsrMinRing ring(5, 6);
  // Bottom: equality with predecessor.
  EXPECT_TRUE(ring.holds_primary(0, make_state(2, 0, 0), make_state(2, 1, 1)));
  EXPECT_FALSE(ring.holds_primary(0, make_state(2, 0, 0), make_state(3, 0, 0)));
  // Other: inequality.
  EXPECT_TRUE(ring.holds_primary(3, make_state(2, 0, 0), make_state(3, 0, 0)));
  EXPECT_FALSE(ring.holds_primary(3, make_state(2, 0, 0), make_state(2, 0, 0)));
}

TEST(SecondaryToken, TraAlwaysGrantsIt) {
  SsrMinRing ring(5, 6);
  for (std::uint32_t succ_flags = 0; succ_flags < 4; ++succ_flags) {
    const SsrState succ{1, (succ_flags & 2u) != 0, (succ_flags & 1u) != 0};
    EXPECT_TRUE(ring.holds_secondary(make_state(0, 0, 1), succ));
    EXPECT_TRUE(ring.holds_secondary(make_state(0, 1, 1), succ));
  }
}

TEST(SecondaryToken, RtsRequiresSilentSuccessor) {
  SsrMinRing ring(5, 6);
  // rts = 1 holds the token only while the successor shows <0.0> — this is
  // the model-gap-tolerance clause (paper §3.1 discussion).
  EXPECT_TRUE(ring.holds_secondary(make_state(0, 1, 0), make_state(1, 0, 0)));
  EXPECT_FALSE(ring.holds_secondary(make_state(0, 1, 0), make_state(1, 0, 1)));
  EXPECT_FALSE(ring.holds_secondary(make_state(0, 1, 0), make_state(1, 1, 0)));
  EXPECT_FALSE(ring.holds_secondary(make_state(0, 1, 0), make_state(1, 1, 1)));
}

TEST(SecondaryToken, PlainStateHoldsNothing) {
  SsrMinRing ring(5, 6);
  EXPECT_FALSE(ring.holds_secondary(make_state(0, 0, 0), make_state(1, 0, 0)));
}

class LegitTokens : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LegitTokens, Lemma2ExactlyOnePrimaryAndOneSecondary) {
  const std::size_t n = GetParam();
  const SsrMinRing ring(n, static_cast<std::uint32_t>(n + 1));
  const auto all = enumerate_legitimate(ring);
  ASSERT_FALSE(all.empty());
  for (const auto& config : all) {
    EXPECT_EQ(primary_token_count(ring, config), 1u);
    EXPECT_EQ(secondary_token_count(ring, config), 1u);
    const std::size_t priv = privileged_count(ring, config);
    EXPECT_GE(priv, 1u);
    EXPECT_LE(priv, 2u);
  }
}

TEST_P(LegitTokens, TokenHoldersAreNeighborsOrSame) {
  // Paper §3.1: "two processes that hold tokens are neighbors (or the
  // same)".
  const std::size_t n = GetParam();
  const SsrMinRing ring(n, static_cast<std::uint32_t>(n + 1));
  for (const auto& config : enumerate_legitimate(ring)) {
    const auto holdings = token_holdings(ring, config);
    std::size_t primary_at = n;
    std::size_t secondary_at = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (holdings[i].primary) primary_at = i;
      if (holdings[i].secondary) secondary_at = i;
    }
    ASSERT_LT(primary_at, n);
    ASSERT_LT(secondary_at, n);
    const bool same = primary_at == secondary_at;
    const bool succ = stab::succ_index(primary_at, n) == secondary_at;
    EXPECT_TRUE(same || succ)
        << "primary at " << primary_at << ", secondary at " << secondary_at;
  }
}

INSTANTIATE_TEST_SUITE_P(RingSizes, LegitTokens,
                         ::testing::Values(3, 4, 5, 8, 12));

TEST(Lemma3, PrimaryTokenExistsInEveryConfiguration) {
  // Exhaustive for n = 3, K = 4 over the full (4K)^3 = 4096 configurations.
  const SsrMinRing ring(3, 4);
  for (std::uint32_t c0 = 0; c0 < 16; ++c0) {
    for (std::uint32_t c1 = 0; c1 < 16; ++c1) {
      for (std::uint32_t c2 = 0; c2 < 16; ++c2) {
        const SsrConfig config{decode_state(c0, 4), decode_state(c1, 4),
                               decode_state(c2, 4)};
        EXPECT_GE(primary_token_count(ring, config), 1u);
        // Hence at least one privileged process in any configuration — the
        // state-reading mutual inclusion guarantee.
        EXPECT_GE(privileged_count(ring, config), 1u);
      }
    }
  }
}

TEST(Lemma3, RandomConfigurationsLargerRings) {
  const SsrMinRing ring(9, 10);
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    const SsrConfig config = random_config(ring, rng);
    EXPECT_GE(primary_token_count(ring, config), 1u);
  }
}

TEST(TokenHoldings, ReportsPerProcessFlags) {
  SsrMinRing ring(3, 4);
  // (x.1.0, x.0.1, x.0.0): P0 primary (guard true: equality with P2) and
  // P1 secondary via tra.
  const SsrConfig config{make_state(1, 1, 0), make_state(1, 0, 1),
                         make_state(1, 0, 0)};
  const auto holdings = token_holdings(ring, config);
  EXPECT_TRUE(holdings[0].primary);
  EXPECT_FALSE(holdings[0].secondary);  // successor shows <0.1>, not <0.0>
  EXPECT_FALSE(holdings[1].primary);
  EXPECT_TRUE(holdings[1].secondary);
  EXPECT_FALSE(holdings[2].primary);
  EXPECT_FALSE(holdings[2].secondary);
}

TEST(TraceStyleMarks, PrimaryAndSecondary) {
  SsrMinRing ring(5, 6);
  auto style = trace_style(ring);
  const SsrConfig config = canonical_legitimate(ring, 3);
  EXPECT_EQ(style.annotate(config, 0), "PS");
  EXPECT_EQ(style.annotate(config, 1), "");
  EXPECT_EQ(style.format_state(config[0]), "3.0.1");
}

TEST(RandomConfig, CoversFlagSpace) {
  SsrMinRing ring(4, 5);
  Rng rng(31);
  bool saw[4] = {false, false, false, false};
  for (int i = 0; i < 200; ++i) {
    for (const auto& s : random_config(ring, rng)) {
      EXPECT_LT(s.x, 5u);
      saw[s.flags()] = true;
    }
  }
  EXPECT_TRUE(saw[0] && saw[1] && saw[2] && saw[3]);
}

}  // namespace
}  // namespace ssr::core
