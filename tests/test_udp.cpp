// Tests for the loopback-UDP runtime: real sockets, CRC-framed states,
// graceful handover measured by the consistent sampler.
#include "runtime/udp_ring.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>

#include "core/legitimacy.hpp"
#include "runtime/net_util.hpp"
#include "wire/codec.hpp"

namespace ssr::runtime {
namespace {

using namespace std::chrono_literals;

UdpParams fast_params(std::uint64_t seed = 1) {
  UdpParams p;
  p.refresh_interval = 1000us;
  p.seed = seed;
  return p;
}

TEST(UdpParams, Validation) {
  UdpParams p = fast_params();
  EXPECT_NO_THROW(p.validate());
  p.refresh_interval = std::chrono::microseconds{0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = fast_params();
  p.corruption_probability = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = fast_params();
  p.drop_probability = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(UdpRing, BindsDistinctLoopbackPorts) {
  core::SsrMinRing ring(4, 5);
  UdpSsrRing udp(ring, core::canonical_legitimate(ring, 0), fast_params());
  ASSERT_EQ(udp.ports().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NE(udp.ports()[i], 0u);
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_NE(udp.ports()[i], udp.ports()[j]);
    }
  }
}

TEST(UdpRing, RejectsSizeMismatch) {
  core::SsrMinRing ring(4, 5);
  EXPECT_THROW(UdpSsrRing(ring, core::SsrConfig(3), fast_params()),
               std::invalid_argument);
}

TEST(UdpRing, GracefulHandoverOverRealSockets) {
  core::SsrMinRing ring(4, 5);
  UdpSsrRing udp(ring, core::canonical_legitimate(ring, 0), fast_params(3));
  udp.start();
  const SamplerReport report = udp.observe(500ms, 300us);
  udp.stop();
  EXPECT_GT(report.consistent_samples, 100u);
  EXPECT_EQ(report.zero_holder_samples, 0u);
  EXPECT_GE(report.min_holders, 1u);
  EXPECT_LE(report.max_holders, 2u);
  EXPECT_GT(report.rule_executions, 10u);
  EXPECT_GT(report.handovers, 0u);
}

TEST(UdpRing, CorruptedFramesAreRejectedNotApplied) {
  core::SsrMinRing ring(4, 5);
  UdpParams p = fast_params(7);
  p.corruption_probability = 0.3;
  UdpSsrRing udp(ring, core::canonical_legitimate(ring, 0), p);
  udp.start();
  const SamplerReport report = udp.observe(500ms, 300us);
  udp.stop();
  const UdpStats stats = udp.stats();
  // Roughly 30% of frames were bit-flipped; the checksum must have caught
  // (essentially) all of them, and the ring must still have made progress.
  EXPECT_GT(stats.frames_rejected, 10u);
  EXPECT_GT(stats.frames_received, 10u);
  EXPECT_GT(report.rule_executions, 5u);
  // Corruption behaves as loss: brief stale-view windows are possible but
  // must be rare (Theorem 4 is eventual under loss).
  ASSERT_GT(report.consistent_samples, 0u);
  EXPECT_LT(static_cast<double>(report.zero_holder_samples),
            0.05 * static_cast<double>(report.consistent_samples));
}

TEST(UdpRing, SyntheticDropsAreCounted) {
  core::SsrMinRing ring(4, 5);
  UdpParams p = fast_params(9);
  p.drop_probability = 0.25;
  UdpSsrRing udp(ring, core::canonical_legitimate(ring, 0), p);
  udp.start();
  udp.observe(300ms, 500us);
  udp.stop();
  const UdpStats stats = udp.stats();
  EXPECT_GT(stats.frames_dropped, 5u);
  EXPECT_GT(stats.rule_executions, 3u);
  // The accounting is disjoint: frames_sent counts datagrams actually
  // handed to the kernel, frames_dropped counts frames the injector ate
  // before any syscall. Their sum is the attempt count, so the observed
  // drop ratio must sit near the configured probability.
  EXPECT_GT(stats.frames_sent, 0u);
  const double attempts =
      static_cast<double>(stats.frames_sent + stats.frames_dropped);
  const double ratio = static_cast<double>(stats.frames_dropped) / attempts;
  EXPECT_NEAR(ratio, 0.25, 0.12);
}

TEST(UdpRing, RestartCycleRunsCleanly) {
  core::SsrMinRing ring(4, 5);
  UdpSsrRing udp(ring, core::canonical_legitimate(ring, 0), fast_params(13));
  udp.start();
  const SamplerReport first = udp.observe(200ms, 500us);
  udp.stop();
  // Restart on the same sockets: stale in-flight datagrams from the first
  // cycle are drained, so the second cycle starts from the coherent
  // initial configuration and the handover guarantee holds again.
  udp.start();
  const SamplerReport second = udp.observe(200ms, 500us);
  udp.stop();
  EXPECT_GT(first.consistent_samples, 50u);
  EXPECT_GT(second.consistent_samples, 50u);
  EXPECT_EQ(second.zero_holder_samples, 0u);
  EXPECT_GE(second.min_holders, 1u);
  EXPECT_GE(second.messages_sent, first.messages_sent);  // counters accumulate
}

TEST(UdpRing, HostileDatagramsAreRejectedNotApplied) {
  core::SsrMinRing ring(4, 5);
  UdpSsrRing udp(ring, core::canonical_legitimate(ring, 0), fast_params(15));
  udp.start();
  udp.observe(50ms, 500us);
  const std::uint64_t rejected_before = udp.stats().frames_rejected;

  // An outside socket lobs malformed datagrams at node 0's port: empty
  // payloads (recv() == 0, historically confused with a closed stream),
  // oversized payloads (> the receive buffer, detected via MSG_TRUNC),
  // and well-sized garbage that fails the frame CRC.
  const int attacker = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(attacker, 0);
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_port = htons(udp.ports()[0]);
  dst.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  std::array<std::uint8_t, 600> oversized{};
  std::array<std::uint8_t, 32> garbage{};
  for (std::size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<std::uint8_t>(0xA5u ^ i);
  }
  for (int i = 0; i < 20; ++i) {
    ::sendto(attacker, nullptr, 0, 0, reinterpret_cast<sockaddr*>(&dst),
             sizeof(dst));
    ::sendto(attacker, oversized.data(), oversized.size(), 0,
             reinterpret_cast<sockaddr*>(&dst), sizeof(dst));
    ::sendto(attacker, garbage.data(), garbage.size(), 0,
             reinterpret_cast<sockaddr*>(&dst), sizeof(dst));
  }
  const SamplerReport report = udp.observe(200ms, 500us);
  udp.stop();
  ::close(attacker);

  const UdpStats stats = udp.stats();
  EXPECT_GT(stats.frames_rejected, rejected_before)
      << "malformed datagrams must be counted, not silently swallowed";
  // None of it perturbed the protocol: the ring kept its holders.
  EXPECT_GT(report.consistent_samples, 50u);
  EXPECT_EQ(report.zero_holder_samples, 0u);
  EXPECT_GE(report.min_holders, 1u);
}

TEST(UdpRing, V2FramesAreToleratedAndCountedByName) {
  // A v2 (multiring) frame arriving at a v1 single-ring node must be
  // rejected — the node has no ring table — but counted as wrong_version,
  // distinct from CRC noise, and must not perturb the protocol.
  core::SsrMinRing ring(4, 5);
  UdpSsrRing udp(ring, core::canonical_legitimate(ring, 0), fast_params(21));
  udp.start();
  udp.observe(50ms, 500us);

  const int outsider = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(outsider, 0);
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_port = htons(udp.ports()[0]);
  dst.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  // Checksum-valid v2 frames carrying a plausible SSR state payload.
  const wire::Bytes payload = wire::encode_state(core::SsrState{1, true, false});
  const wire::Bytes v2 = wire::encode_frame_v2(12345, 3, payload);
  for (int i = 0; i < 25; ++i) {
    ::sendto(outsider, v2.data(), v2.size(), 0,
             reinterpret_cast<sockaddr*>(&dst), sizeof(dst));
  }
  const SamplerReport report = udp.observe(200ms, 500us);
  udp.stop();
  ::close(outsider);

  const UdpStats stats = udp.stats();
  EXPECT_GT(stats.frames_wrong_version, 0u)
      << "v2 frames must be counted by name";
  EXPECT_GE(stats.frames_rejected, stats.frames_wrong_version)
      << "wrong_version is a subset of rejected";
  EXPECT_GT(report.consistent_samples, 50u);
  EXPECT_EQ(report.zero_holder_samples, 0u);
  EXPECT_GE(report.min_holders, 1u);
}

TEST(UdpRing, ExplicitKernelBuffersAndDropCounter) {
  core::SsrMinRing ring(4, 5);
  UdpSsrRing udp(ring, core::canonical_legitimate(ring, 0), fast_params(23));
  // The ring owns its fds, so probe the buffer policy through a socket
  // built by the same helper (the kernel reports back twice the request,
  // possibly clamped to rmem_max — either way it must be nonzero).
  std::uint16_t port = 0;
  const int fd = make_loopback_udp_socket(port);
  int rcv = 0;
  socklen_t len = sizeof(rcv);
  ASSERT_EQ(::getsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcv, &len), 0);
  EXPECT_GT(rcv, 0);
  ::close(fd);
  // A quiescent ring has no kernel receive-queue overflow.
  EXPECT_EQ(udp.stats().kernel_rx_drops, 0u);
  // Telemetry plumbs the per-node counter through.
  Telemetry telemetry(4);
  udp.fill_node_telemetry(telemetry);
  const std::string json = telemetry.to_json_string();
  EXPECT_NE(json.find("kernel_rx_drops"), std::string::npos);
  EXPECT_NE(json.find("frames_wrong_version"), std::string::npos);
}

TEST(UdpRing, FaultPlanBurstWindowKeepsAHolder) {
  core::SsrMinRing ring(4, 5);
  UdpParams p = fast_params(17);
  p.fault_plan = FaultPlan::parse("burst@40ms-90ms");
  UdpSsrRing udp(ring, core::canonical_legitimate(ring, 0), p);
  Telemetry telemetry(4);
  telemetry.set_context("udp", "ssrmin", 17);
  udp.start();
  const SamplerReport report = udp.observe(250ms, 500us, &telemetry);
  udp.stop();
  const UdpStats stats = udp.stats();
  EXPECT_GT(stats.frames_dropped, 5u);  // the burst actually dropped frames
  // Theorem 3 through the blackout, modulo the stale-view caveat shared
  // with the loss tests: zero-holder views must be rare, and the telemetry
  // window must register a recovery.
  ASSERT_GT(report.consistent_samples, 0u);
  EXPECT_LT(static_cast<double>(report.zero_holder_samples),
            0.05 * static_cast<double>(report.consistent_samples));
  ASSERT_EQ(telemetry.window_outcomes().size(), 1u);
  EXPECT_TRUE(telemetry.window_outcomes()[0].recovered);
}

TEST(UdpRing, InitialSnapshotBeforeStart) {
  core::SsrMinRing ring(4, 5);
  UdpSsrRing udp(ring, core::canonical_legitimate(ring, 2), fast_params());
  const HolderSnapshot snap = udp.sample();
  EXPECT_TRUE(snap.consistent);
  std::size_t holders = 0;
  for (bool b : snap.holders)
    if (b) ++holders;
  EXPECT_EQ(holders, 1u);  // P0 holds both tokens in the canonical start
  const UdpStats stats = udp.stats();
  EXPECT_EQ(stats.frames_sent, 0u);
  EXPECT_EQ(stats.rule_executions, 0u);
}

TEST(UdpRing, StartStopIdempotentAndRestartable) {
  core::SsrMinRing ring(4, 5);
  UdpSsrRing udp(ring, core::canonical_legitimate(ring, 0), fast_params());
  udp.start();
  udp.start();
  std::this_thread::sleep_for(30ms);
  udp.stop();
  udp.stop();
  SUCCEED();
}

}  // namespace
}  // namespace ssr::runtime
