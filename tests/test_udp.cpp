// Tests for the loopback-UDP runtime: real sockets, CRC-framed states,
// graceful handover measured by the consistent sampler.
#include "runtime/udp_ring.hpp"

#include <gtest/gtest.h>

#include "core/legitimacy.hpp"

namespace ssr::runtime {
namespace {

using namespace std::chrono_literals;

UdpParams fast_params(std::uint64_t seed = 1) {
  UdpParams p;
  p.refresh_interval = 1000us;
  p.seed = seed;
  return p;
}

TEST(UdpParams, Validation) {
  UdpParams p = fast_params();
  EXPECT_NO_THROW(p.validate());
  p.refresh_interval = std::chrono::microseconds{0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = fast_params();
  p.corruption_probability = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = fast_params();
  p.drop_probability = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(UdpRing, BindsDistinctLoopbackPorts) {
  core::SsrMinRing ring(4, 5);
  UdpSsrRing udp(ring, core::canonical_legitimate(ring, 0), fast_params());
  ASSERT_EQ(udp.ports().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NE(udp.ports()[i], 0u);
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_NE(udp.ports()[i], udp.ports()[j]);
    }
  }
}

TEST(UdpRing, RejectsSizeMismatch) {
  core::SsrMinRing ring(4, 5);
  EXPECT_THROW(UdpSsrRing(ring, core::SsrConfig(3), fast_params()),
               std::invalid_argument);
}

TEST(UdpRing, GracefulHandoverOverRealSockets) {
  core::SsrMinRing ring(4, 5);
  UdpSsrRing udp(ring, core::canonical_legitimate(ring, 0), fast_params(3));
  udp.start();
  const SamplerReport report = udp.observe(500ms, 300us);
  udp.stop();
  EXPECT_GT(report.consistent_samples, 100u);
  EXPECT_EQ(report.zero_holder_samples, 0u);
  EXPECT_GE(report.min_holders, 1u);
  EXPECT_LE(report.max_holders, 2u);
  EXPECT_GT(report.rule_executions, 10u);
  EXPECT_GT(report.handovers, 0u);
}

TEST(UdpRing, CorruptedFramesAreRejectedNotApplied) {
  core::SsrMinRing ring(4, 5);
  UdpParams p = fast_params(7);
  p.corruption_probability = 0.3;
  UdpSsrRing udp(ring, core::canonical_legitimate(ring, 0), p);
  udp.start();
  const SamplerReport report = udp.observe(500ms, 300us);
  udp.stop();
  const UdpStats stats = udp.stats();
  // Roughly 30% of frames were bit-flipped; the checksum must have caught
  // (essentially) all of them, and the ring must still have made progress.
  EXPECT_GT(stats.frames_rejected, 10u);
  EXPECT_GT(stats.frames_received, 10u);
  EXPECT_GT(report.rule_executions, 5u);
  // Corruption behaves as loss: brief stale-view windows are possible but
  // must be rare (Theorem 4 is eventual under loss).
  ASSERT_GT(report.consistent_samples, 0u);
  EXPECT_LT(static_cast<double>(report.zero_holder_samples),
            0.05 * static_cast<double>(report.consistent_samples));
}

TEST(UdpRing, SyntheticDropsAreCounted) {
  core::SsrMinRing ring(4, 5);
  UdpParams p = fast_params(9);
  p.drop_probability = 0.25;
  UdpSsrRing udp(ring, core::canonical_legitimate(ring, 0), p);
  udp.start();
  udp.observe(300ms, 500us);
  udp.stop();
  const UdpStats stats = udp.stats();
  EXPECT_GT(stats.frames_dropped, 5u);
  EXPECT_GT(stats.rule_executions, 3u);
  // Drop accounting is a subset of send accounting.
  EXPECT_LE(stats.frames_dropped, stats.frames_sent);
}

TEST(UdpRing, InitialSnapshotBeforeStart) {
  core::SsrMinRing ring(4, 5);
  UdpSsrRing udp(ring, core::canonical_legitimate(ring, 2), fast_params());
  const HolderSnapshot snap = udp.sample();
  EXPECT_TRUE(snap.consistent);
  std::size_t holders = 0;
  for (bool b : snap.holders)
    if (b) ++holders;
  EXPECT_EQ(holders, 1u);  // P0 holds both tokens in the canonical start
  const UdpStats stats = udp.stats();
  EXPECT_EQ(stats.frames_sent, 0u);
  EXPECT_EQ(stats.rule_executions, 0u);
}

TEST(UdpRing, StartStopIdempotentAndRestartable) {
  core::SsrMinRing ring(4, 5);
  UdpSsrRing udp(ring, core::canonical_legitimate(ring, 0), fast_params());
  udp.start();
  udp.start();
  std::this_thread::sleep_for(30ms);
  udp.stop();
  udp.stop();
  SUCCEED();
}

}  // namespace
}  // namespace ssr::runtime
