// Model-gap experiments as tests (paper §5, Figures 11-13 and Theorem 3):
//
//  * SSRmin via CST from a legitimate, cache-coherent start keeps the
//    number of token-holding nodes in [1, 2] at EVERY simulated instant —
//    the model gap tolerance / graceful handover guarantee;
//  * Dijkstra's ring via CST exhibits zero-token windows (Figure 11);
//  * two independent Dijkstra instances still reach zero-token instants
//    (Figure 12).
#include <gtest/gtest.h>

#include "core/legitimacy.hpp"
#include "msgpass/factories.hpp"

namespace ssr::msgpass {
namespace {

NetworkParams net(std::uint64_t seed, double loss = 0.0) {
  NetworkParams p;
  p.delay_min = 0.5;
  p.delay_max = 1.5;
  p.loss_probability = loss;
  p.refresh_interval = 6.0;
  p.service_min = 0.3;
  p.service_max = 0.9;
  p.seed = seed;
  return p;
}

class ModelGap : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelGap, Theorem3SsrMinNeverLosesAllTokens) {
  const std::size_t n = 6;
  core::SsrMinRing ring(n, 7);
  auto sim =
      make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0), net(GetParam()));
  const CoverageStats stats = sim.run(2000.0);
  EXPECT_EQ(stats.min_holders, 1u) << "seed " << GetParam();
  EXPECT_LE(stats.max_holders, 2u);
  EXPECT_EQ(stats.zero_intervals, 0u);
  EXPECT_DOUBLE_EQ(stats.zero_token_time, 0.0);
  EXPECT_DOUBLE_EQ(stats.coverage(), 1.0);
  // Sanity: this was a live run, not a frozen one.
  EXPECT_GT(stats.rule_executions, 100u);
  EXPECT_GT(stats.handovers, 10u);
}

TEST_P(ModelGap, Theorem3HoldsUnderMessageLossToo) {
  // Once legitimate + coherent, losses only delay handovers; they cannot
  // create a zero-token instant (the holder keeps its token until the
  // acknowledgment is visible).
  const std::size_t n = 5;
  core::SsrMinRing ring(n, 6);
  auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 2),
                             net(GetParam(), 0.25));
  const CoverageStats stats = sim.run(2000.0);
  EXPECT_EQ(stats.min_holders, 1u);
  EXPECT_LE(stats.max_holders, 2u);
  EXPECT_EQ(stats.zero_intervals, 0u);
  EXPECT_GT(stats.losses, 0u);
}

TEST_P(ModelGap, Figure11DijkstraHasTokenExtinctionWindows) {
  const std::size_t n = 6;
  dijkstra::KStateRing ring(n, 7);
  auto sim = make_kstate_cst(ring, dijkstra::KStateConfig(n), net(GetParam()));
  const CoverageStats stats = sim.run(2000.0);
  // The token moved many times; each handover opens a window in which no
  // node's local view holds the token.
  EXPECT_GT(stats.rule_executions, 50u);
  EXPECT_EQ(stats.min_holders, 0u);
  EXPECT_GT(stats.zero_intervals, 10u);
  EXPECT_GT(stats.zero_token_time, 0.0);
  EXPECT_LT(stats.coverage(), 1.0);
}

TEST_P(ModelGap, Figure12DualDijkstraStillReachesZeroTokens) {
  const std::size_t n = 6;
  dijkstra::DualKStateRing ring(n, 7);
  dijkstra::DualConfig init(n);
  for (std::size_t i = 0; i < n; ++i) init[i].b = (i < n / 2) ? 1 : 0;
  auto sim = make_dual_cst(ring, init, net(GetParam()));
  const CoverageStats stats = sim.run(4000.0);
  // Two tokens in flight simultaneously do happen: zero-holder instants.
  EXPECT_EQ(stats.min_holders, 0u) << "seed " << GetParam();
  EXPECT_GT(stats.zero_token_time, 0.0);
  // But two tokens beat one: better coverage than the single-token ring
  // under the same network — just never the 100% SSRmin delivers.
  dijkstra::KStateRing single(n, 7);
  auto single_sim =
      make_kstate_cst(single, dijkstra::KStateConfig(n), net(GetParam()));
  const CoverageStats single_stats = single_sim.run(4000.0);
  EXPECT_GT(stats.coverage(), single_stats.coverage());
  EXPECT_LT(stats.coverage(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelGap, ::testing::Values(1, 7, 13));

TEST(ModelGap, SsrMinStaysWithinTwoHoldersAcrossDelays) {
  // Sweep the delay magnitude: the [1, 2] bound is delay-independent.
  core::SsrMinRing ring(5, 6);
  for (double delay : {0.2, 1.0, 4.0}) {
    NetworkParams p = net(5);
    p.delay_min = delay * 0.5;
    p.delay_max = delay;
    auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0), p);
    const CoverageStats stats = sim.run(1000.0);
    EXPECT_EQ(stats.min_holders, 1u) << "delay " << delay;
    EXPECT_LE(stats.max_holders, 2u) << "delay " << delay;
  }
}

TEST(ModelGap, DijkstraGapGrowsWithDelay) {
  // The extinction windows are transit-time windows: longer link delays
  // mean strictly more unmonitored time (the quantitative shape behind
  // Figure 11).
  const std::size_t n = 5;
  dijkstra::KStateRing ring(n, 6);
  double previous_gap = -1.0;
  for (double delay : {0.5, 2.0, 8.0}) {
    NetworkParams p = net(9);
    p.delay_min = delay * 0.9;
    p.delay_max = delay;
    p.refresh_interval = 4.0 * delay;
    auto sim = make_kstate_cst(ring, dijkstra::KStateConfig(n), p);
    const CoverageStats stats = sim.run(4000.0);
    EXPECT_GT(stats.zero_token_time, previous_gap)
        << "delay " << delay << " should widen the total gap";
    previous_gap = stats.zero_token_time;
  }
}

TEST(ModelGap, GoodIncoherenceIsTransient) {
  // §5's good-incoherence discussion: along a legitimate execution the
  // caches alternate between coherent and (good-)incoherent; coherence
  // recurs infinitely often.
  core::SsrMinRing ring(4, 5);
  auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0), net(2));
  int coherent_seen = 0;
  int incoherent_seen = 0;
  for (int window = 0; window < 400; ++window) {
    sim.run(1.0);
    if (sim.coherent()) {
      ++coherent_seen;
    } else {
      ++incoherent_seen;
    }
  }
  EXPECT_GT(coherent_seen, 10);
  EXPECT_GT(incoherent_seen, 10);
}

}  // namespace
}  // namespace ssr::msgpass
