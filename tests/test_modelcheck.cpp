// Exhaustive model-checking tests: machine-checked versions of Lemmas 1,
// 2, 4 and 6 over the complete configuration space for small (n, K), for
// both SSRmin and the Dijkstra baseline.
#include "verify/checkers.hpp"

#include <gtest/gtest.h>

#include "core/legitimacy.hpp"

namespace ssr::verify {
namespace {

TEST(ConfigCodec, RoundTripsAllConfigs) {
  core::SsrMinRing ring(3, 4);
  ConfigCodec<core::SsrState> codec(
      3, 16, [](const core::SsrState& s) { return core::encode_state(s, 4); },
      [](std::uint32_t c) { return core::decode_state(c, 4); });
  EXPECT_EQ(codec.total(), 4096u);
  for (std::uint64_t idx : {0ULL, 1ULL, 17ULL, 4095ULL}) {
    EXPECT_EQ(codec.encode(codec.decode(idx)), idx);
  }
  EXPECT_THROW(codec.decode(4096), std::invalid_argument);
}

TEST(ConfigCodec, RejectsOversizedSpace) {
  auto enc = [](const core::SsrState& s) { return core::encode_state(s, 64); };
  auto dec = [](std::uint32_t c) { return core::decode_state(c, 64); };
  EXPECT_THROW(ConfigCodec<core::SsrState>(16, 256, enc, dec),
               std::invalid_argument);
}

TEST(ModelCheck, SsrMinN3K4AllTheoremsHold) {
  auto checker = make_ssrmin_checker(3, 4);
  const CheckReport report = checker.run();
  EXPECT_TRUE(report.all_ok()) << report.summary();
  EXPECT_EQ(report.total_configs, 4096u);
  EXPECT_EQ(report.legitimate_configs, 3u * 3 * 4);  // 3nK (Definition 1)
  EXPECT_TRUE(report.deadlock_free);                 // Lemma 4
  EXPECT_TRUE(report.closure_holds);                 // Lemma 1
  EXPECT_TRUE(report.token_bounds_hold);             // Lemma 2 / Theorem 1
  EXPECT_TRUE(report.convergence_holds);             // Lemma 6
  // Mutual inclusion even outside Lambda (state-reading model): Lemma 3.
  EXPECT_GE(report.min_privileged_anywhere, 1u);
  // Theorem 2: worst case stabilization is finite and at most the O(n^2)
  // envelope used by the benches.
  EXPECT_GT(report.worst_case_steps, 0u);
  EXPECT_LT(report.worst_case_steps, 60u * 3 * 3 + 200);
}

TEST(ModelCheck, SsrMinN4K5AllTheoremsHold) {
  auto checker = make_ssrmin_checker(4, 5);
  const CheckReport report = checker.run();
  EXPECT_TRUE(report.all_ok()) << report.summary();
  EXPECT_EQ(report.total_configs, 160000u);  // (4*5)^4
  EXPECT_EQ(report.legitimate_configs, 3u * 4 * 5);
  EXPECT_GE(report.min_privileged_anywhere, 1u);
  EXPECT_LT(report.worst_case_steps, 60u * 4 * 4 + 200);
}

TEST(ModelCheck, GoldenWorstCaseValues) {
  // Exact worst-case stabilization times, pinned as golden values: any
  // change to the rules, the legitimacy predicate or the checker shows up
  // here first. (16 and 43 are the exact adversarial worst cases measured
  // by exhaustive search and realized by the optimal-adversary replay.)
  EXPECT_EQ(make_ssrmin_checker(3, 4).run().worst_case_steps, 16u);
  EXPECT_EQ(make_ssrmin_checker(4, 5).run().worst_case_steps, 43u);
  CheckOptions dij;
  dij.min_privileged = 1;
  dij.max_privileged = 1;
  EXPECT_EQ(make_kstate_checker(4, 5).run(dij).worst_case_steps, 14u);
  EXPECT_EQ(make_kstate_checker(5, 6).run(dij).worst_case_steps, 25u);
}

TEST(ModelCheck, SsrMinLargerKStillSound) {
  // K larger than the minimum n+1 must not break anything (Theorem 1 only
  // requires K > n).
  auto checker = make_ssrmin_checker(3, 6);
  const CheckReport report = checker.run();
  EXPECT_TRUE(report.all_ok()) << report.summary();
  EXPECT_EQ(report.legitimate_configs, 3u * 3 * 6);
}

TEST(ModelCheck, DijkstraN3K4) {
  auto checker = make_kstate_checker(3, 4);
  const CheckOptions options{.min_privileged = 1, .max_privileged = 1};
  const CheckReport report = checker.run(options);
  EXPECT_TRUE(report.all_ok()) << report.summary();
  EXPECT_EQ(report.total_configs, 64u);
  EXPECT_EQ(report.legitimate_configs, 3u * 4);  // nK
  EXPECT_GE(report.min_privileged_anywhere, 1u);
}

TEST(ModelCheck, DijkstraN4K5) {
  auto checker = make_kstate_checker(4, 5);
  const CheckOptions options{.min_privileged = 1, .max_privileged = 1};
  const CheckReport report = checker.run(options);
  EXPECT_TRUE(report.all_ok()) << report.summary();
  EXPECT_EQ(report.legitimate_configs, 4u * 5);
  // The exact worst case stays within a small factor of the published
  // 3n(n-1)/2 bound on Dijkstra moves (the strict Definition-1 target may
  // cost up to one extra circulation beyond "exactly one token").
  EXPECT_LE(report.worst_case_steps,
            dijkstra::convergence_step_bound(4) + 3 * 4);
}

TEST(ModelCheck, DijkstraHoepmanBoundaryKEqualsN) {
  // Hoepman: Dijkstra's ring stabilizes "even if K = N". The exhaustive
  // check confirms the boundary, and the worst cases are identical to the
  // K = n + 1 goldens — the extra state buys no adversarial depth.
  CheckOptions dij;
  dij.min_privileged = 1;
  dij.max_privileged = 1;
  const CheckReport r44 = make_kstate_checker(4, 4).run(dij);
  EXPECT_TRUE(r44.all_ok()) << r44.summary();
  EXPECT_EQ(r44.worst_case_steps, 14u);
  const CheckReport r55 = make_kstate_checker(5, 5).run(dij);
  EXPECT_TRUE(r55.all_ok()) << r55.summary();
  EXPECT_EQ(r55.worst_case_steps, 25u);
  const CheckReport r66 = make_kstate_checker(6, 6).run(dij);
  EXPECT_TRUE(r66.all_ok()) << r66.summary();
  EXPECT_EQ(r66.worst_case_steps, 39u);
}

TEST(ModelCheck, StatsSummaryMentionsKeyFields) {
  auto checker = make_ssrmin_checker(3, 4);
  const CheckReport report = checker.run();
  const std::string s = report.stats.summary();
  EXPECT_NE(s.find("phase_b_storage="), std::string::npos);
  EXPECT_NE(s.find("projected_peak="), std::string::npos);
  EXPECT_NE(s.find("measured_peak="), std::string::npos);
  EXPECT_NE(s.find("bytes_per_edge="), std::string::npos);
  EXPECT_NE(s.find("rounds="), std::string::npos);
  EXPECT_EQ(report.stats.rounds, report.worst_case_steps);
  EXPECT_GT(report.stats.edge_count, 0u);
}

TEST(ModelCheck, OptionsSkipConvergence) {
  auto checker = make_ssrmin_checker(3, 4);
  CheckOptions options;
  options.check_convergence = false;
  const CheckReport report = checker.run(options);
  EXPECT_EQ(report.worst_case_steps, 0u);
  EXPECT_TRUE(report.closure_holds);
}

TEST(ModelCheck, TokenBoundViolationDetected) {
  // Negative control: demand privileged count in [3, 3] — must fail, since
  // legitimate configurations have one or two privileged processes.
  auto checker = make_ssrmin_checker(3, 4);
  CheckOptions options;
  options.min_privileged = 3;
  options.max_privileged = 3;
  options.check_convergence = false;
  const CheckReport report = checker.run(options);
  EXPECT_FALSE(report.token_bounds_hold);
  ASSERT_TRUE(report.token_witness.has_value());
  // The witness decodes to a real legitimate configuration.
  const auto config = checker.codec().decode(*report.token_witness);
  core::SsrMinRing ring(3, 4);
  EXPECT_TRUE(core::is_legitimate(ring, config));
}

TEST(ModelCheck, SummaryMentionsKeyFields) {
  auto checker = make_ssrmin_checker(3, 4);
  CheckOptions options;
  options.check_convergence = false;
  const std::string s = checker.run(options).summary();
  EXPECT_NE(s.find("configs="), std::string::npos);
  EXPECT_NE(s.find("closure="), std::string::npos);
  EXPECT_NE(s.find("deadlock_free="), std::string::npos);
}

}  // namespace
}  // namespace ssr::verify
