// Tests for the ASCII token-timeline renderer (the Figures 11-13 visual).
#include "msgpass/timeline.hpp"

#include <gtest/gtest.h>

#include "core/legitimacy.hpp"
#include "msgpass/factories.hpp"

namespace ssr::msgpass {
namespace {

TEST(Timeline, RecordsColumnsAtResolution) {
  TimelineRecorder rec(2, 1.0);
  rec.record(0.0, 3.0, {true, false});
  rec.record(3.0, 5.0, {false, true});
  EXPECT_EQ(rec.column_count(), 5u);
  const std::string out = rec.render();
  EXPECT_NE(out.find("v0  |###.."), std::string::npos);
  EXPECT_NE(out.find("v1  |...##"), std::string::npos);
  EXPECT_NE(out.find("any |#####"), std::string::npos);
}

TEST(Timeline, MarksZeroAndDoubleHolderColumns) {
  TimelineRecorder rec(2, 1.0);
  rec.record(0.0, 1.0, {true, true});    // double
  rec.record(1.0, 2.0, {false, false});  // zero
  rec.record(2.0, 3.0, {true, false});   // single
  const std::string out = rec.render();
  EXPECT_NE(out.find("any |2!#"), std::string::npos);
  EXPECT_NEAR(rec.zero_fraction(), 1.0 / 3.0, 1e-9);
}

TEST(Timeline, PartialColumnsSampleLeftEdge) {
  TimelineRecorder rec(1, 1.0);
  // Interval covering no column edge leaves no mark...
  rec.record(0.2, 0.8, {true});
  EXPECT_EQ(rec.column_count(), 0u);
  // ...and the interval holding the edge at t=1.0 owns column 1.
  rec.record(0.8, 1.2, {true});
  EXPECT_EQ(rec.column_count(), 2u);
  EXPECT_NE(rec.render().find("v0  |.#"), std::string::npos);
}

TEST(Timeline, TruncatesAtMaxCols) {
  TimelineRecorder rec(1, 1.0);
  rec.record(0.0, 50.0, {true});
  const std::string out = rec.render(10);
  // Row = "v0  |" + 10 chars + "\n".
  const auto pos = out.find('|');
  const auto end = out.find('\n');
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(end - pos - 1, 10u);
}

TEST(Timeline, RejectsBadConstruction) {
  EXPECT_THROW(TimelineRecorder(0, 1.0), std::invalid_argument);
  EXPECT_THROW(TimelineRecorder(3, 0.0), std::invalid_argument);
}

TEST(Timeline, RejectsWrongHolderWidth) {
  TimelineRecorder rec(3, 1.0);
  EXPECT_THROW(rec.record(0.0, 1.0, {true}), std::invalid_argument);
}

TEST(Timeline, AttachedToSimulationShowsFullCoverage) {
  core::SsrMinRing ring(5, 6);
  NetworkParams params;
  params.seed = 4;
  auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0), params);
  TimelineRecorder rec(5, 0.5);
  rec.attach(sim);
  sim.run(200.0);
  EXPECT_GT(rec.column_count(), 300u);
  // Theorem 3: no zero-holder column, ever.
  EXPECT_DOUBLE_EQ(rec.zero_fraction(), 0.0);
  EXPECT_EQ(rec.render().find('!'), std::string::npos);
}

TEST(Timeline, DijkstraTimelineShowsGaps) {
  dijkstra::KStateRing ring(5, 6);
  NetworkParams params;
  params.seed = 4;
  auto sim = make_kstate_cst(ring, dijkstra::KStateConfig(5), params);
  TimelineRecorder rec(5, 0.5);
  rec.attach(sim);
  sim.run(200.0);
  EXPECT_GT(rec.zero_fraction(), 0.0);
  EXPECT_NE(rec.render().find('!'), std::string::npos);
}

}  // namespace
}  // namespace ssr::msgpass
