// Tests for the JSON writer and the table CSV/JSON exports.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include "util/table.hpp"

namespace ssr {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("line\nbreak").dump(), "\"line\\nbreak\"");
  EXPECT_EQ(Json("tab\there").dump(), "\"tab\\there\"");
  EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Json obj = Json::object();
  obj.set("zeta", 1).set("alpha", 2);
  EXPECT_EQ(obj.dump(), "{\"zeta\":1,\"alpha\":2}");
  // Overwriting keeps the slot.
  obj.set("zeta", 9);
  EXPECT_EQ(obj.dump(), "{\"zeta\":9,\"alpha\":2}");
  EXPECT_EQ(obj.size(), 2u);
}

TEST(Json, NestedStructures) {
  Json root = Json::object();
  Json arr = Json::array();
  arr.push(1).push("two").push(Json::object().set("k", false));
  root.set("items", std::move(arr));
  EXPECT_EQ(root.dump(), "{\"items\":[1,\"two\",{\"k\":false}]}");
}

TEST(Json, PrettyPrinting) {
  Json obj = Json::object();
  obj.set("a", 1);
  const std::string pretty = obj.dump(2);
  EXPECT_EQ(pretty, "{\n  \"a\": 1\n}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::object().dump(2), "{}");
  EXPECT_EQ(Json::array().dump(2), "[]");
}

TEST(Json, NullPromotesOnMutation) {
  Json j;
  j.set("k", 1);
  EXPECT_TRUE(j.is_object());
  Json a;
  a.push(5);
  EXPECT_TRUE(a.is_array());
}

TEST(Json, TypeMisuseRejected) {
  Json arr = Json::array();
  EXPECT_THROW(arr.set("k", 1), std::invalid_argument);
  Json obj = Json::object();
  EXPECT_THROW(obj.push(1), std::invalid_argument);
}

TEST(TableExport, Csv) {
  TextTable t({"name", "value"});
  t.row().cell("plain").cell(3);
  t.row().cell("with,comma").cell("quote\"inside");
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv,
            "name,value\n"
            "plain,3\n"
            "\"with,comma\",\"quote\"\"inside\"\n");
}

TEST(TableExport, JsonTypesInferred) {
  TextTable t({"n", "rate", "ok", "label"});
  t.row().cell(5).cell(0.25, 2).cell(true).cell("hello");
  const std::string json = t.to_json(0);
  EXPECT_EQ(json, "[{\"n\":5,\"rate\":0.25,\"ok\":true,\"label\":\"hello\"}]");
}

TEST(TableExport, JsonShortRowsPadWithEmptyStrings) {
  TextTable t({"a", "b"});
  t.row().cell(1);
  EXPECT_EQ(t.to_json(0), "[{\"a\":1,\"b\":\"\"}]");
}

}  // namespace
}  // namespace ssr
