// Tests for the deterministic parallel Monte Carlo trial harness.
//
// The load-bearing property (same discipline as test_modelcheck_parallel):
// every table a ported bench renders must be bit-identical at any worker
// count, because per-trial RNG streams depend only on (seed, trial index)
// and results are folded in trial order. The determinism tests here run
// the same miniature bench at 1, 2 and 8 workers and compare the rendered
// table and JSON strings byte for byte.
#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ssr::sim {
namespace {

// ---------------------------------------------------------------------------
// trial_rng: the per-trial stream derivation.

TEST(TrialRng, GoldenValues) {
  // Pinned first two draws of selected (seed, trial) streams. These values
  // define the cross-version determinism contract: if they change, every
  // archived BENCH_*.json statistic silently changes meaning.
  struct Golden {
    std::uint64_t seed, trial, first, second;
  };
  const Golden goldens[] = {
      {0, 0, 18110106563157542208ULL, 8650457082529208451ULL},
      {0, 1, 7421629122807502682ULL, 16129990183657047738ULL},
      {42, 0, 1865750160070900731ULL, 6791145067590612263ULL},
      {42, 7, 15084523808955195758ULL, 3751774649734410950ULL},
      {1234, 3, 4461986863706032418ULL, 7212097382807872165ULL},
      // Lane-boundary and deep-jump pins for the batched engine: trial 63
      // is the last lane of the first BatchEngine generation, 64 the first
      // refill, and 2^20 a deep O(1) splitmix jump.
      {2024, 0, 14269995523884565860ULL, 6161159987890047326ULL},
      {2024, 63, 13139198476505500762ULL, 4547016984391418086ULL},
      {2024, 64, 3000979179683410642ULL, 11800171329161107635ULL},
      {2024, 1u << 20, 1250524431563887437ULL, 17787581319846823980ULL},
  };
  for (const Golden& g : goldens) {
    Rng r = trial_rng(g.seed, g.trial);
    EXPECT_EQ(r(), g.first) << "seed=" << g.seed << " trial=" << g.trial;
    EXPECT_EQ(r(), g.second) << "seed=" << g.seed << " trial=" << g.trial;
  }
}

TEST(TrialRng, MatchesSequentialSplitmixStream) {
  // trial t's Rng is seeded by the (t+1)-th output of the splitmix64
  // stream starting at `seed` — the O(1) jump must agree with walking the
  // stream sequentially.
  const std::uint64_t seed = 42;
  std::uint64_t state = seed;
  for (std::uint64_t t = 0; t < 16; ++t) {
    const std::uint64_t word = splitmix64_next(state);
    Rng expected(word);
    Rng actual = trial_rng(seed, t);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(actual(), expected());
  }
}

TEST(TrialRng, DistinctTrialsDecorrelated) {
  Rng a = trial_rng(7, 0);
  Rng b = trial_rng(7, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

// ---------------------------------------------------------------------------
// TrialSweep::map / run_trials mechanics.

TEST(TrialSweep, MapReturnsResultsInIndexOrder) {
  TrialSweep sweep({.threads = 4});
  const auto results =
      sweep.map(257, [](std::uint64_t t) { return t * t; });
  ASSERT_EQ(results.size(), 257u);
  for (std::uint64_t t = 0; t < results.size(); ++t) {
    EXPECT_EQ(results[t], t * t);
  }
}

TEST(TrialSweep, MapZeroUnitsIsEmpty) {
  TrialSweep sweep({.threads = 2});
  const auto results = sweep.map(0, [](std::uint64_t) { return 1; });
  EXPECT_TRUE(results.empty());
}

TEST(TrialSweep, RunTrialsUsesPrivateStreams) {
  // Whatever the scheduling, trial t must see exactly trial_rng(seed, t).
  TrialSweep sweep({.threads = 3});
  const std::uint64_t seed = 99;
  const auto results = sweep.run_trials(
      seed, 64, [](std::uint64_t, Rng& rng) { return rng(); });
  for (std::uint64_t t = 0; t < results.size(); ++t) {
    EXPECT_EQ(results[t], trial_rng(seed, t)());
  }
}

TEST(TrialSweep, RejectsZeroChunk) {
  EXPECT_THROW(TrialSweep({.threads = 1, .chunk = 0}),
               std::invalid_argument);
}

TEST(TrialSweep, ExceptionFromUnitRethrowsOnCaller) {
  TrialSweep sweep({.threads = 2});
  EXPECT_THROW(sweep.map(16,
                         [](std::uint64_t t) {
                           if (t == 11) throw std::runtime_error("trial 11");
                           return t;
                         }),
               std::runtime_error);
}

TEST(TrialSweep, ReusableAcrossCalls) {
  TrialSweep sweep({.threads = 2});
  for (int round = 0; round < 3; ++round) {
    const auto r = sweep.map(10, [](std::uint64_t t) { return t + 1; });
    EXPECT_EQ(r[9], 10u);
  }
}

// ---------------------------------------------------------------------------
// The acceptance property: a bench-shaped table is bit-identical at 1, 2
// and 8 workers.

// Miniature bench_convergence row: SSRmin convergence statistics on a
// small ring, folded into a rendered TextTable + JSON exactly the way the
// ported benches do it.
std::pair<std::string, std::string> mini_bench(std::size_t threads) {
  TrialSweep sweep({.threads = threads});
  TextTable table({"n", "trials", "mean steps", "p90 steps", "max steps",
                   "all converged"});
  for (std::size_t n : {4, 5}) {
    const auto K = static_cast<std::uint32_t>(n + 1);
    const core::SsrMinRing ring(n, K);
    const auto results = sweep.run_trials(
        1234 + n, 24, [&](std::uint64_t, Rng& rng) {
          stab::Engine<core::SsrMinRing> engine(ring,
                                                core::random_config(ring, rng));
          auto daemon = stab::make_daemon("central-random", rng.split());
          auto legit = [&ring](const core::SsrConfig& c) {
            return core::is_legitimate(ring, c);
          };
          const auto r =
              stab::run_until(engine, *daemon, legit, 80ULL * n * n + 400);
          return r.reached ? static_cast<double>(r.steps) : -1.0;
        });
    SampleSet steps;
    bool all_ok = true;
    for (double s : results) {
      if (s < 0.0) {
        all_ok = false;
        continue;
      }
      steps.add(s);
    }
    table.row()
        .cell(n)
        .cell(std::size_t{24})
        .cell(steps.mean(), 3)
        .cell(steps.percentile(90), 3)
        .cell(steps.max(), 0)
        .cell(all_ok);
  }
  return {table.render(), table.to_json()};
}

TEST(TrialSweep, BenchTableBitIdenticalAcrossWorkerCounts) {
  const auto [text1, json1] = mini_bench(1);
  const auto [text2, json2] = mini_bench(2);
  const auto [text8, json8] = mini_bench(8);
  EXPECT_EQ(text1, text2);
  EXPECT_EQ(text1, text8);
  EXPECT_EQ(json1, json2);
  EXPECT_EQ(json1, json8);
  // Sanity: the miniature bench produced real statistics, not a vacuous
  // empty table.
  EXPECT_NE(text1.find("yes"), std::string::npos);
}

TEST(TrialSweep, SampleSetFoldOrderIndependent) {
  // Belt-and-suspenders half of the determinism recipe: even if a caller
  // folds samples in a worker-dependent order, SampleSet statistics only
  // depend on the sample multiset.
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.uniform01() * 100.0);
  SampleSet forward;
  SampleSet backward;
  for (std::size_t i = 0; i < xs.size(); ++i) forward.add(xs[i]);
  for (std::size_t i = xs.size(); i-- > 0;) backward.add(xs[i]);
  EXPECT_EQ(forward.mean(), backward.mean());
  EXPECT_EQ(forward.stddev(), backward.stddev());
  EXPECT_EQ(forward.percentile(95), backward.percentile(95));
  EXPECT_EQ(forward.median(), backward.median());
}

TEST(TrialSweep, SampleSetMergeMatchesConcatenation) {
  Rng rng(17);
  SampleSet a;
  SampleSet b;
  SampleSet whole;
  for (int i = 0; i < 64; ++i) {
    const double x = rng.uniform01() * 10.0;
    (i % 2 ? a : b).add(x);
    whole.add(x);
  }
  SampleSet merged_ab = a;
  merged_ab.merge(b);
  SampleSet merged_ba = b;
  merged_ba.merge(a);
  EXPECT_EQ(merged_ab.count(), whole.count());
  EXPECT_EQ(merged_ab.mean(), whole.mean());
  EXPECT_EQ(merged_ab.mean(), merged_ba.mean());
  EXPECT_EQ(merged_ab.stddev(), merged_ba.stddev());
  EXPECT_EQ(merged_ab.percentile(75), merged_ba.percentile(75));
}

// All workers actually participate when there is enough work (regression
// guard for a pool that silently serializes).
TEST(TrialSweep, ThreadsReportsPoolWidth) {
  EXPECT_EQ(TrialSweep({.threads = 1}).threads(), 1u);
  EXPECT_EQ(TrialSweep({.threads = 4}).threads(), 4u);
}

}  // namespace
}  // namespace ssr::sim
