// Lemma 5: 3n is the maximum length of any execution of SSRmin that
// contains no execution of Rule 2 or Rule 4. We drive an adversarial
// daemon that schedules Rules 1/3/5 whenever any process offers one, and
// verify that it is always *forced* to execute Rule 2 or 4 within 3n steps
// — from arbitrary initial configurations and throughout long runs.
#include <gtest/gtest.h>

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"

namespace ssr::core {
namespace {

bool contains_rule24(const std::vector<int>& rules) {
  for (int r : rules) {
    if (r == SsrMinRing::kRuleSendPrimary || r == SsrMinRing::kRuleFixGuardTrue)
      return true;
  }
  return false;
}

class Lemma5 : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Lemma5, RuleFreeRunsNeverExceedThreeN) {
  const std::size_t n = GetParam();
  const auto K = static_cast<std::uint32_t>(n + 1);
  const SsrMinRing ring(n, K);
  Rng rng(n * 1000 + 17);
  for (int trial = 0; trial < 15; ++trial) {
    stab::Engine<SsrMinRing> engine(ring, random_config(ring, rng));
    stab::RuleAvoidingDaemon daemon{
        rng.split(),
        {SsrMinRing::kRuleSendPrimary, SsrMinRing::kRuleFixGuardTrue}};
    std::uint64_t gap = 0;  // consecutive steps without Rule 2/4
    std::vector<std::size_t> idx;
    std::vector<int> rules;
    for (int t = 0; t < 2000; ++t) {
      engine.enabled(idx, rules);
      ASSERT_FALSE(idx.empty()) << "deadlock (contradicts Lemma 4)";
      const stab::EnabledView view{idx, rules, n};
      const auto selected = daemon.select(view);
      const auto executed = engine.step(selected);
      if (contains_rule24(executed)) {
        gap = 0;
      } else {
        ++gap;
        ASSERT_LE(gap, 3 * n)
            << "execution avoided Rules 2/4 for more than 3n steps "
            << "(trial " << trial << ", step " << t << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RingSizes, Lemma5, ::testing::Values(3, 4, 5, 8, 12));

TEST(Lemma5, SynchronousScheduleAlsoBounded) {
  // The bound holds for every daemon; check the synchronous schedule too.
  const std::size_t n = 9;
  const SsrMinRing ring(n, 10);
  Rng rng(321);
  for (int trial = 0; trial < 10; ++trial) {
    stab::Engine<SsrMinRing> engine(ring, random_config(ring, rng));
    stab::SynchronousDaemon daemon;
    std::uint64_t gap = 0;
    std::vector<std::size_t> idx;
    std::vector<int> rules;
    for (int t = 0; t < 1000; ++t) {
      engine.enabled(idx, rules);
      ASSERT_FALSE(idx.empty());
      const stab::EnabledView view{idx, rules, n};
      const auto selected = daemon.select(view);
      const auto executed = engine.step(selected);
      if (contains_rule24(executed)) {
        gap = 0;
      } else {
        ++gap;
        ASSERT_LE(gap, 3 * n);
      }
    }
  }
}

TEST(Lemma5, PerProcessMoveCountWithoutRule24IsAtMostThree) {
  // The proof's per-process accounting: while Rules 2/4 never execute,
  // each individual process moves at most three times (Rules 5, 3, 5 in
  // the worst case).
  const std::size_t n = 6;
  const SsrMinRing ring(n, 7);
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    stab::Engine<SsrMinRing> engine(ring, random_config(ring, rng));
    stab::RuleAvoidingDaemon daemon{
        rng.split(),
        {SsrMinRing::kRuleSendPrimary, SsrMinRing::kRuleFixGuardTrue}};
    std::vector<int> moves(n, 0);
    std::vector<std::size_t> idx;
    std::vector<int> rules;
    for (int t = 0; t < 500; ++t) {
      engine.enabled(idx, rules);
      ASSERT_FALSE(idx.empty());
      const stab::EnabledView view{idx, rules, n};
      const auto selected = daemon.select(view);
      const auto executed = engine.step(selected);
      if (contains_rule24(executed)) {
        std::fill(moves.begin(), moves.end(), 0);
        continue;
      }
      for (std::size_t i : selected) {
        ++moves[i];
        ASSERT_LE(moves[i], 3)
            << "process " << i << " moved four times without Rules 2/4";
      }
    }
  }
}

}  // namespace
}  // namespace ssr::core
