// Tests for the execution-invariant monitors, plus the randomized soak
// test that drives long executions from arbitrary configurations under
// every daemon while the full invariant suite watches.
#include "verify/invariants.hpp"

#include <gtest/gtest.h>

#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"

namespace ssr::verify {
namespace {

core::SsrState make_state(std::uint32_t x, int rts, int tra) {
  return core::SsrState{x, rts != 0, tra != 0};
}

TEST(PrivilegedBand, FlagsZeroPrivileged) {
  // Fabricate an impossible zero-privileged snapshot by evaluating a
  // configuration against the WRONG ring size... we cannot: Lemma 3 makes
  // zero-privileged unreachable. Instead verify the monitor is quiet on a
  // legitimate configuration and on random ones.
  core::SsrMinRing ring(4, 5);
  PrivilegedBandInvariant inv(ring);
  EXPECT_EQ(inv.observe(core::canonical_legitimate(ring, 1)), "");
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(inv.observe(core::random_config(ring, rng)), "");
  }
}

TEST(TokenAdjacency, QuietOnLegitNoisyNever) {
  core::SsrMinRing ring(5, 6);
  TokenAdjacencyInvariant inv(ring);
  for (const auto& config : core::enumerate_legitimate(ring)) {
    EXPECT_EQ(inv.observe(config), "");
  }
  // Illegitimate configurations are out of scope for this monitor.
  core::SsrConfig junk(5);
  junk[0] = make_state(1, 1, 1);
  junk[3] = make_state(4, 1, 1);
  EXPECT_EQ(inv.observe(junk), "");
}

TEST(Closure, DetectsLeavingLambda) {
  core::SsrMinRing ring(4, 5);
  ClosureInvariant inv(ring);
  EXPECT_EQ(inv.observe(core::canonical_legitimate(ring, 0)), "");
  // Feed an illegitimate configuration right after a legitimate one.
  core::SsrConfig bad(4);
  bad[1] = make_state(2, 1, 1);
  const std::string violation = inv.observe(bad);
  EXPECT_NE(violation.find("left the legitimate set"), std::string::npos);
}

TEST(Closure, AllowsConvergencePhase) {
  core::SsrMinRing ring(4, 5);
  ClosureInvariant inv(ring);
  // Illegitimate first: nothing to report, even repeatedly.
  core::SsrConfig bad(4);
  bad[1] = make_state(2, 1, 1);
  EXPECT_EQ(inv.observe(bad), "");
  EXPECT_EQ(inv.observe(bad), "");
  EXPECT_EQ(inv.observe(core::canonical_legitimate(ring, 0)), "");
}

TEST(ShapeCycle, AcceptsTheRealCycle) {
  core::SsrMinRing ring(5, 6);
  ShapeCycleInvariant inv(ring);
  stab::Engine<core::SsrMinRing> engine(ring,
                                        core::canonical_legitimate(ring, 2));
  stab::SynchronousDaemon daemon;
  for (int t = 0; t < 60; ++t) {
    EXPECT_EQ(inv.observe(engine.config()), "") << "step " << t;
    ASSERT_TRUE(engine.step_with(daemon));
  }
}

TEST(ShapeCycle, RejectsTeleportingHolder) {
  core::SsrMinRing ring(5, 6);
  ShapeCycleInvariant inv(ring);
  EXPECT_EQ(inv.observe(core::canonical_legitimate(ring, 2)), "");
  // Jump the holder two positions ahead without the handoff shape.
  core::SsrConfig far(5);
  for (std::size_t i = 0; i < 5; ++i) far[i].x = (i < 2) ? 3 : 2;
  far[2].tra = true;  // holder P2, shape (a)
  const std::string violation = inv.observe(far);
  EXPECT_NE(violation.find("shape sequence"), std::string::npos);
}

TEST(XPartMonotone, DetectsRegression) {
  core::SsrMinRing ring(4, 5);
  XPartMonotoneInvariant inv(ring);
  EXPECT_EQ(inv.observe(core::canonical_legitimate(ring, 0)), "");
  core::SsrConfig multi(4);
  for (std::size_t i = 0; i < 4; ++i) multi[i].x = static_cast<std::uint32_t>(i);
  const std::string violation = inv.observe(multi);
  EXPECT_NE(violation.find("Dijkstra"), std::string::npos);
}

TEST(Suite, CleanAlongHonestExecutions) {
  core::SsrMinRing ring(6, 7);
  InvariantSuite suite(ring);
  stab::Engine<core::SsrMinRing> engine(ring,
                                        core::canonical_legitimate(ring, 4));
  stab::CentralRandomDaemon daemon{Rng(8)};
  for (int t = 0; t < 400; ++t) {
    suite.observe(engine.config());
    ASSERT_TRUE(engine.step_with(daemon));
  }
  EXPECT_TRUE(suite.clean()) << suite.violations().front();
  EXPECT_EQ(suite.observations(), 400u);
}

// The soak test: arbitrary initial configurations, every daemon family,
// long runs — the full suite must stay silent (convergence phase included,
// since every monitor is written to tolerate illegitimate prefixes).
class Soak : public ::testing::TestWithParam<std::string> {};

TEST_P(Soak, ThousandsOfStepsNoViolations) {
  const std::size_t n = 7;
  core::SsrMinRing ring(n, 8);
  Rng rng(2718);
  for (int trial = 0; trial < 5; ++trial) {
    InvariantSuite suite(ring);
    stab::Engine<core::SsrMinRing> engine(ring,
                                          core::random_config(ring, rng));
    auto daemon = stab::make_daemon(GetParam(), rng.split());
    for (int t = 0; t < 2000; ++t) {
      suite.observe(engine.config());
      ASSERT_TRUE(engine.step_with(*daemon));
    }
    EXPECT_TRUE(suite.clean())
        << GetParam() << " trial " << trial << ": "
        << suite.violations().front();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Daemons, Soak,
    ::testing::Values("central-round-robin", "central-random",
                      "distributed-synchronous", "distributed-random-subset",
                      "adversary-max-index"),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ssr::verify
